#!/bin/sh
# warm_restart_smoke.sh — end-to-end proof that the sx4d cache survives
# a restart, driven through the resilient sx4ctl client: boot a daemon
# with a snapshot file, answer the canonical query (a miss), stop the
# daemon (SIGTERM → graceful drain → on-drain snapshot), boot a second
# daemon from the same snapshot, and require the same query to be an
# exact cache hit with a byte-identical body. Doubles as the sx4ctl
# single-binary smoke: every query goes through the client's retry
# loop, and the first post-boot query exercises retry-on-503/refused
# while the daemon is still coming up. Run from the repository root
# (make warm-restart-smoke does).
set -eu

SX4D=${SX4D:-bin/sx4d}
SX4CTL=${SX4CTL:-bin/sx4ctl}
WORK=$(mktemp -d)
PID=""
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

[ -x "$SX4D" ] || { echo "warm-restart-smoke: $SX4D not built" >&2; exit 1; }
[ -x "$SX4CTL" ] || { echo "warm-restart-smoke: $SX4CTL not built" >&2; exit 1; }

SNAP="$WORK/cache.snap"

boot() {
    : > "$WORK/port"
    "$SX4D" -addr 127.0.0.1:0 -portfile "$WORK/port" -cache "$SNAP" &
    PID=$!
    i=0
    while [ ! -s "$WORK/port" ]; do
        i=$((i + 1))
        [ "$i" -le 50 ] || { echo "warm-restart-smoke: daemon never published its port" >&2; exit 1; }
        kill -0 "$PID" 2>/dev/null || { echo "warm-restart-smoke: daemon exited early" >&2; exit 1; }
        sleep 0.1
    done
    ADDR=$(cat "$WORK/port")
}

# First life: the canonical query executes fresh.
boot
"$SX4CTL" -addr "http://$ADDR" run -machine sx4-32 -benchmarks COPY,IA -expect-cache miss > "$WORK/first" \
    || { echo "warm-restart-smoke: first query failed or was not a miss" >&2; exit 1; }

# Graceful stop: SIGTERM drains and writes the snapshot.
kill -TERM "$PID"
wait "$PID" || { echo "warm-restart-smoke: daemon did not stop cleanly" >&2; exit 1; }
PID=""
[ -s "$SNAP" ] || { echo "warm-restart-smoke: no snapshot written on drain" >&2; exit 1; }

# Second life: the same query must be answered from the restored cache,
# byte-identically, on the first ask.
boot
"$SX4CTL" -addr "http://$ADDR" run -machine sx4-32 -benchmarks COPY,IA -expect-cache hit > "$WORK/second" \
    || { echo "warm-restart-smoke: post-restart query was not a cache hit" >&2; exit 1; }
cmp -s "$WORK/first" "$WORK/second" \
    || { echo "warm-restart-smoke: post-restart body diverged" >&2; exit 1; }

# The daemon knows it warm-started.
"$SX4CTL" -addr "http://$ADDR" stats | grep -q 'warm_start=true' \
    || { echo "warm-restart-smoke: stats do not report warm start" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID" || true
PID=""

echo "warm-restart-smoke: ok (cache survived SIGTERM restart; sx4ctl verified hit + byte-identical body)"
