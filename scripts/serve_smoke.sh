#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the sx4d daemon: boot it on an
# ephemeral port, probe /healthz, submit the canonical /v1/run query
# twice, diff the body against the committed golden artifact, and
# require the repeat to be an exact cache hit. Run from the repository
# root (make serve-smoke does); requires curl.
set -eu

BIN=${SX4D:-bin/sx4d}
GOLDEN=internal/check/testdata/goldens/serve.golden
WORK=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

[ -x "$BIN" ] || { echo "serve-smoke: $BIN not built" >&2; exit 1; }
[ -f "$GOLDEN" ] || { echo "serve-smoke: golden $GOLDEN missing" >&2; exit 1; }

"$BIN" -addr 127.0.0.1:0 -portfile "$WORK/port" &
PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$WORK/port" ]; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { echo "serve-smoke: daemon never published its port" >&2; exit 1; }
    kill -0 "$PID" 2>/dev/null || { echo "serve-smoke: daemon exited early" >&2; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$WORK/port")

curl -sSf "http://$ADDR/healthz" | grep -q '"status":"ok"' \
    || { echo "serve-smoke: healthz probe failed" >&2; exit 1; }

curl -sSf -D "$WORK/h1" -o "$WORK/run1" \
    -d '{"machine":"sx4-32"}' "http://$ADDR/v1/run"
diff -u "$GOLDEN" "$WORK/run1" \
    || { echo "serve-smoke: /v1/run body diverged from $GOLDEN" >&2; exit 1; }

curl -sSf -D "$WORK/h2" -o "$WORK/run2" \
    -d '{"machine":"sx4-32"}' "http://$ADDR/v1/run"
cmp -s "$WORK/run1" "$WORK/run2" \
    || { echo "serve-smoke: repeat query returned different bytes" >&2; exit 1; }
grep -qi '^x-sx4d-cache: hit' "$WORK/h2" \
    || { echo "serve-smoke: repeat query was not a cache hit" >&2; exit 1; }

echo "serve-smoke: ok ($ADDR: healthz, golden /v1/run, exact cache hit)"
