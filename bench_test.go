// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each benchmark
// reports the headline metric of its experiment via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the paper's numbers alongside
// the harness cost. EXPERIMENTS.md records paper-versus-model values.
package sx4bench_test

import (
	"io"
	"testing"

	"sx4bench"
	"sx4bench/internal/ccm2"
	"sx4bench/internal/core"
	"sx4bench/internal/elefunt"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/fp128"
	"sx4bench/internal/hint"
	"sx4bench/internal/kernels"
	"sx4bench/internal/linpack"
	"sx4bench/internal/machine"
	"sx4bench/internal/mom"
	"sx4bench/internal/ncar"
	"sx4bench/internal/paranoia"
	"sx4bench/internal/pop"
	"sx4bench/internal/prodload"
	"sx4bench/internal/radabs"
	"sx4bench/internal/spharm"
	"sx4bench/internal/sx4"
	"sx4bench/internal/vmath"
)

func mach() *sx4bench.Machine { return sx4bench.Benchmarked() }

// --- Table 1: HINT vs RADABS on the comparison machines ---

func BenchmarkTable1(b *testing.B) {
	var mq float64
	for i := 0; i < b.N; i++ {
		tab := ncar.Table1()
		_ = tab
		mq = hint.ModelMQUIPS(machine.CrayYMP().Scalar())
	}
	b.ReportMetric(mq, "YMP-MQUIPS")
}

// --- Table 2: configuration (trivially cheap; kept for completeness) ---

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ncar.Table2()
	}
}

// --- Table 3: ELEFUNT intrinsic rates ---

func BenchmarkTable3(b *testing.B) {
	m := mach()
	const n = 1 << 20
	var exp float64
	for i := 0; i < b.N; i++ {
		r := m.Run(elefunt.PerfTrace("EXP", n), sx4.RunOpts{Procs: 1})
		exp = float64(n) / r.Seconds / 1e6
	}
	b.ReportMetric(exp, "EXP-Mcalls/s")
}

// --- Table 4: resolutions ---

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ncar.Table4()
	}
}

// --- Table 5: one-year simulations ---

func BenchmarkTable5(b *testing.B) {
	m := mach()
	res, _ := ccm2.ResolutionByName("T42L18")
	var total float64
	for i := 0; i < b.N; i++ {
		_, _, total = ccm2.YearSim(m, res, 32)
	}
	b.ReportMetric(total, "T42-year-s(paper:1327.53)")
}

// --- Table 6: ensemble test ---

func BenchmarkTable6(b *testing.B) {
	m := mach()
	var degr float64
	for i := 0; i < b.N; i++ {
		degr = ccm2.EnsembleTest(m).DegradationPct
	}
	b.ReportMetric(degr, "degradation-%(paper:1.89)")
}

// --- Table 7: MOM scalability ---

func BenchmarkTable7(b *testing.B) {
	m := mach()
	var s32 float64
	for i := 0; i < b.N; i++ {
		s32 = mom.Benchmark350(m, 1) / mom.Benchmark350(m, 32)
	}
	b.ReportMetric(s32, "speedup@32(paper:9.06)")
}

// --- Figure 5: memory bandwidth sweeps ---

func BenchmarkFig5Copy(b *testing.B) {
	m := mach()
	k := kernels.Copy{N: 1 << 20, M: 1}
	var mbps float64
	for i := 0; i < b.N; i++ {
		meas := core.Run(m, k.Trace(), sx4.RunOpts{Procs: 1}, 20, nil, k.PayloadBytes())
		mbps = meas.MBps()
	}
	b.ReportMetric(mbps, "MB/s")
}

func BenchmarkFig5IA(b *testing.B) {
	m := mach()
	k := kernels.IA{N: 1 << 20, M: 1}
	var mbps float64
	for i := 0; i < b.N; i++ {
		meas := core.Run(m, k.Trace(), sx4.RunOpts{Procs: 1}, 20, nil, k.PayloadBytes())
		mbps = meas.MBps()
	}
	b.ReportMetric(mbps, "MB/s")
}

func BenchmarkFig5Xpose(b *testing.B) {
	m := mach()
	k := kernels.Xpose{N: 1000, M: 1}
	var mbps float64
	for i := 0; i < b.N; i++ {
		meas := core.Run(m, k.Trace(), sx4.RunOpts{Procs: 1}, 20, nil, k.PayloadBytes())
		mbps = meas.MBps()
	}
	b.ReportMetric(mbps, "MB/s")
}

func BenchmarkFig5FullSweep(b *testing.B) {
	m := mach()
	for i := 0; i < b.N; i++ {
		_ = ncar.Fig5(m, 4)
	}
}

// --- Figures 6 and 7: RFFT and VFFT ---

func BenchmarkFig6RFFT(b *testing.B) {
	m := mach()
	n := 256
	inst := fftpack.RFFTInstances(n)
	var mf float64
	for i := 0; i < b.N; i++ {
		r := m.Run(fftpack.RFFTTrace(n, inst), sx4.RunOpts{Procs: 1})
		mf = fftpack.NominalMFLOPS(n, inst, r.Seconds)
	}
	b.ReportMetric(mf, "MFLOPS")
}

func BenchmarkFig7VFFT(b *testing.B) {
	m := mach()
	var mf float64
	for i := 0; i < b.N; i++ {
		r := m.Run(fftpack.VFFTTrace(256, 500), sx4.RunOpts{Procs: 1})
		mf = fftpack.NominalMFLOPS(256, 500, r.Seconds)
	}
	b.ReportMetric(mf, "MFLOPS")
}

// --- Figure 8: CCM2 scalability ---

func BenchmarkFig8T170(b *testing.B) {
	m := mach()
	res, _ := ccm2.ResolutionByName("T170L18")
	var gf float64
	for i := 0; i < b.N; i++ {
		gf = ccm2.SustainedGFLOPS(m, res, 32)
	}
	b.ReportMetric(gf, "GFLOPS(paper:24)")
}

func BenchmarkFig8AllCurves(b *testing.B) {
	m := mach()
	for i := 0; i < b.N; i++ {
		_ = ncar.Fig8(m)
	}
}

// --- Scalar anchors ---

func BenchmarkRADABS(b *testing.B) {
	m := mach()
	p := radabs.Trace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	var mf float64
	for i := 0; i < b.N; i++ {
		mf = m.Run(p, sx4.RunOpts{Procs: 1}).MFLOPS()
	}
	b.ReportMetric(mf, "MFLOPS(paper:865.9)")
}

func BenchmarkPOP(b *testing.B) {
	m := mach()
	var mf float64
	for i := 0; i < b.N; i++ {
		mf = pop.SustainedMFLOPS(m)
	}
	b.ReportMetric(mf, "MFLOPS(paper:537)")
}

func BenchmarkProdload(b *testing.B) {
	m := mach()
	var min float64
	for i := 0; i < b.N; i++ {
		min = prodload.Run(m).TotalMinutes()
	}
	b.ReportMetric(min, "minutes(paper:93.47)")
}

// --- Section 3 comparators ---

func BenchmarkLINPACK1000(b *testing.B) {
	m := mach()
	var mf float64
	for i := 0; i < b.N; i++ {
		mf = linpack.MFLOPS(m, 1000)
	}
	b.ReportMetric(mf, "MFLOPS")
}

func BenchmarkHINTHost(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		steps := hint.Run(5000)
		q = steps[len(steps)-1].Quality
	}
	b.ReportMetric(q, "quality@5000")
}

// --- Host numerical kernels (the real computations) ---

func BenchmarkHostRealFFT(b *testing.B) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fftpack.RealForward(x)
	}
}

func BenchmarkHostStockham(b *testing.B) {
	n, m := 256, 64
	re := make([]float64, n*m)
	im := make([]float64, n*m)
	for i := range re {
		re[i] = float64(i % 13)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fftpack.StockhamMulti(re, im, n, m, false)
	}
}

func BenchmarkHostSpharmTransform(b *testing.B) {
	tr := spharm.NewCanonical(42)
	grid := make([]float64, tr.GridLen())
	for i := range grid {
		grid[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := tr.Forward(grid)
		grid = tr.Inverse(spec)
	}
}

func BenchmarkHostRadabsColumn(b *testing.B) {
	col := radabs.NewColumn(radabs.DefaultLevels)
	for i := 0; i < b.N; i++ {
		_ = radabs.Absorptivity(col)
	}
}

func BenchmarkHostCCM2Step(b *testing.B) {
	res := ccm2.Resolution{Name: "T21L1", T: 21, NLat: 32, NLon: 64, NLev: 1, TimeStepMin: 10}
	model := ccm2.NewModel(res, 1)
	dt := model.StableTimeStep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(dt)
	}
}

func BenchmarkHostMOMStep(b *testing.B) {
	m := mom.New(mom.LowRes)
	dt := m.StableTimeStep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(dt)
	}
}

func BenchmarkHostPOPStep(b *testing.B) {
	p := pop.New(pop.Config{Name: "bench", NLon: 90, NLat: 44, NLev: 5, DxDeg: 4})
	dt := p.GravityWaveCFL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(dt)
	}
}

func BenchmarkHostVMathExp(b *testing.B) {
	src := make([]float64, 4096)
	dst := make([]float64, 4096)
	for i := range src {
		src[i] = -10 + float64(i)*0.005
	}
	b.SetBytes(8 * 4096)
	for i := 0; i < b.N; i++ {
		vmath.Exp(dst, src)
	}
}

func BenchmarkHostFP128Sum(b *testing.B) {
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = float64(i%997) * 1e-3
	}
	b.SetBytes(8 << 16)
	for i := 0; i < b.N; i++ {
		_ = fp128.Sum(xs)
	}
}

func BenchmarkHostSemiImplicitStep(b *testing.B) {
	res := ccm2.Resolution{Name: "T21L1", T: 21, NLat: 32, NLon: 64, NLev: 1, TimeStepMin: 10}
	model := ccm2.NewModel(res, 1)
	model.SemiImplicit = true
	dt := model.TimeStep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(dt)
	}
}

func BenchmarkHostRadabsVector(b *testing.B) {
	col := radabs.NewColumn(radabs.DefaultLevels)
	for i := 0; i < b.N; i++ {
		_ = radabs.AbsorptivityVector(col)
	}
}

func BenchmarkHostParanoia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := paranoia.Run()
		if !r.Pass() {
			b.Fatal("arithmetic broken")
		}
	}
}

// --- End-to-end: everything the paper reports ---

func BenchmarkAllExperiments(b *testing.B) {
	m := mach()
	for i := 0; i < b.N; i++ {
		if err := sx4bench.RunAll(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSerial and BenchmarkRunAllParallel are the headline
// pair recorded in BENCH_BASELINE.json: the full experiment stream on
// one worker versus the scheduler's GOMAXPROCS fan-out (identical
// output either way).
func BenchmarkRunAllSerial(b *testing.B) {
	m := mach()
	for i := 0; i < b.N; i++ {
		if err := sx4bench.RunAllWorkers(io.Discard, m, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	m := mach()
	for i := 0; i < b.N; i++ {
		if err := sx4bench.RunAllWorkers(io.Discard, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}
