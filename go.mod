module sx4bench

go 1.24
