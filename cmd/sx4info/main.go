// Command sx4info prints the modeled SX-4 configuration: the Table 2
// specification sheet and the component inventory of Section 2 of the
// paper (CPU, MMU, XMU, IOP, IXS, SUPER-UX).
package main

import (
	"flag"
	"fmt"
	"os"

	"sx4bench/internal/core"
	"sx4bench/internal/ncar"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/sx4/ixs"
	"sx4bench/internal/sx4/xmu"
)

func main() {
	cpus := flag.Int("cpus", 32, "processors per node (1-32)")
	nodes := flag.Int("nodes", 1, "nodes joined by the IXS (1-16)")
	benchmarked := flag.Bool("benchmarked", true, "use the paper's 9.2 ns system")
	flag.Parse()

	var cfg sx4.Config
	if *benchmarked && *cpus == 32 && *nodes == 1 {
		cfg = sx4.Benchmarked()
	} else {
		cfg = sx4.NewConfig(*cpus, *nodes)
	}
	m := sx4.New(cfg)
	fmt.Println(m)
	fmt.Println()
	if err := core.WriteTable(os.Stdout, ncar.Table2()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("\nComponent inventory (paper Section 2):")
	fmt.Printf("  CPU:  %d vector pipes/set x 4 sets, %d-element vector registers,\n",
		cfg.VectorPipes, cfg.VectorRegElems)
	fmt.Printf("        2-issue superscalar unit, 64 KB I+D caches, communications registers\n")
	fmt.Printf("  MMU:  %d SSRAM banks, %d-clock bank cycle, %.0f GB/s/CPU port, %.0f GB/s/node sustained\n",
		cfg.MemoryBanks, cfg.BankBusyClocks, cfg.PortBytesPerSec()/1e9, cfg.NodeMemoryBytesPerSec()/1e9)
	x := xmu.New(cfg.XMUGB)
	fmt.Printf("  XMU:  %.0f GB extended memory at %.0f GB/s (direct-mapped arrays, SFS cache, swap)\n",
		cfg.XMUGB, x.BytesPerSec/1e9)
	sub := iop.New()
	fmt.Printf("  IOP:  %d processors x %.1f GB/s, %d HIPPI channels, %.0f GB disk at %.0f MB/s\n",
		sub.IOPs, sub.IOPBytesPerSec/1e9, sub.HIPPIChannels, sub.DiskArray.CapacityGB, sub.DiskArray.BytesPerSec/1e6)
	if *nodes > 1 {
		x := ixs.New(*nodes)
		fmt.Printf("  IXS:  %d nodes, %.0f GB/s per node channel, %.0f GB/s bisection\n",
			x.Nodes, x.PerNodeBytesPerSec/1e9, x.BisectionBytesPerSec/1e9)
	}
	fmt.Printf("  OS:   SUPER-UX (NQS batch, Resource Blocking, checkpoint/restart, SFS)\n")
}
