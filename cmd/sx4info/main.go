// Command sx4info prints the modeled machine configurations. For the
// SX-4 (the default) it renders the Table 2 specification sheet and the
// component inventory of Section 2 of the paper (CPU, MMU, XMU, IOP,
// IXS, SUPER-UX); for any other registered machine it prints the
// specification and scalar-path summary the cross-machine sweeps use.
//
// Usage:
//
//	sx4info                      # the benchmarked SX-4/32
//	sx4info -cpus 16 -nodes 4    # a production configuration
//	sx4info -machine ymp         # one comparison machine
//	sx4info -machine all         # every registered machine
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sx4bench"
	"sx4bench/internal/core"
	"sx4bench/internal/ncar"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/sx4/ixs"
	"sx4bench/internal/sx4/xmu"
)

func main() {
	machine := flag.String("machine", "",
		fmt.Sprintf("registered machine to describe, or 'all' (known: %s); empty = the SX-4 built from -cpus/-nodes", strings.Join(sx4bench.Machines(), ", ")))
	cpus := flag.Int("cpus", 32, "processors per node (1-32)")
	nodes := flag.Int("nodes", 1, "nodes joined by the IXS (1-16)")
	benchmarked := flag.Bool("benchmarked", true, "use the paper's 9.2 ns system")
	flag.Parse()

	if err := run(os.Stdout, *machine, *cpus, *nodes, *benchmarked); err != nil {
		fmt.Fprintln(os.Stderr, "sx4info:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(w io.Writer, machine string, cpus, nodes int, benchmarked bool) error {
	switch machine {
	case "":
		var m *sx4bench.Machine
		if benchmarked && cpus == 32 && nodes == 1 {
			m = sx4bench.Benchmarked()
		} else {
			m = sx4bench.Production(cpus, nodes)
		}
		return printSX4(w, m)
	case "all":
		for _, name := range sx4bench.Machines() {
			tgt, err := sx4bench.Lookup(name)
			if err != nil {
				return err
			}
			if err := printTarget(w, name, tgt); err != nil {
				return err
			}
		}
		return nil
	}
	tgt, err := sx4bench.Lookup(machine)
	if err != nil {
		return err
	}
	return printTarget(w, machine, tgt)
}

// printTarget describes one registered machine from its Target surface:
// the specification sheet and the scalar path the HINT model sees.
func printTarget(w io.Writer, name string, tgt sx4bench.Target) error {
	spec := tgt.Spec()
	if _, err := fmt.Fprintf(w, "%-8s %s\n", name, tgt.Name()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  spec:   %.2f ns clock (%.0f MHz), %d CPUs x %d nodes, peak %.0f MFLOPS/CPU\n",
		spec.ClockNS, 1e3/spec.ClockNS, spec.CPUs, spec.Nodes, spec.PeakMFLOPSPerCPU); err != nil {
		return err
	}
	sc := tgt.Scalar()
	mem := fmt.Sprintf("no cache, %.0f clocks/word to memory", sc.MemClocksPerWord)
	if sc.HasCache {
		mem = fmt.Sprintf("cached, %.1f words/clock", sc.CacheWordsPerClock)
	}
	if _, err := fmt.Fprintf(w, "  scalar: %.1f-issue, %s\n", sc.IssuePerClock, mem); err != nil {
		return err
	}
	if spec.DiskBytesPerSec > 0 {
		if _, err := fmt.Fprintf(w, "  disk:   %.0f MB/s\n", spec.DiskBytesPerSec/1e6); err != nil {
			return err
		}
	}
	return nil
}

// printSX4 renders the full SX-4 inventory the command has always
// printed for the paper's machine.
func printSX4(w io.Writer, m *sx4bench.Machine) error {
	cfg := m.Config()
	if _, err := fmt.Fprintf(w, "%s\n\n", m); err != nil {
		return err
	}
	if err := core.WriteTable(w, ncar.Table2()); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nComponent inventory (paper Section 2):")
	fmt.Fprintf(w, "  CPU:  %d vector pipes/set x 4 sets, %d-element vector registers,\n",
		cfg.VectorPipes, cfg.VectorRegElems)
	fmt.Fprintf(w, "        2-issue superscalar unit, 64 KB I+D caches, communications registers\n")
	fmt.Fprintf(w, "  MMU:  %d SSRAM banks, %d-clock bank cycle, %.0f GB/s/CPU port, %.0f GB/s/node sustained\n",
		cfg.MemoryBanks, cfg.BankBusyClocks, cfg.PortBytesPerSec()/1e9, cfg.NodeMemoryBytesPerSec()/1e9)
	x := xmu.New(cfg.XMUGB)
	fmt.Fprintf(w, "  XMU:  %.0f GB extended memory at %.0f GB/s (direct-mapped arrays, SFS cache, swap)\n",
		cfg.XMUGB, x.BytesPerSec/1e9)
	sub := iop.New()
	fmt.Fprintf(w, "  IOP:  %d processors x %.1f GB/s, %d HIPPI channels, %.0f GB disk at %.0f MB/s\n",
		sub.IOPs, sub.IOPBytesPerSec/1e9, sub.HIPPIChannels, sub.DiskArray.CapacityGB, sub.DiskArray.BytesPerSec/1e6)
	if cfg.Nodes > 1 {
		ix := ixs.New(cfg.Nodes)
		fmt.Fprintf(w, "  IXS:  %d nodes, %.0f GB/s per node channel, %.0f GB/s bisection\n",
			ix.Nodes, ix.PerNodeBytesPerSec/1e9, ix.BisectionBytesPerSec/1e9)
	}
	fmt.Fprintf(w, "  OS:   SUPER-UX (NQS batch, Resource Blocking, checkpoint/restart, SFS)\n")
	return nil
}
