package main

import (
	"bytes"
	"strings"
	"testing"

	"sx4bench"
)

func TestRunUnknownMachine(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "nosuch", 32, 1, true)
	if err == nil {
		t.Fatal("run accepted an unknown machine")
	}
	if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "known:") {
		t.Errorf("error %q does not name the machine and the known set", err)
	}
	if buf.Len() != 0 {
		t.Errorf("unknown machine wrote %d bytes of output", buf.Len())
	}
}

func TestRunAllMachines(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", 32, 1, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range sx4bench.Machines() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-machine all output missing %q", name)
		}
	}
	// Compute-only comparators must not claim a disk subsystem.
	if got := strings.Count(buf.String(), "disk:"); got != 2 {
		t.Errorf("disk line printed %d times, want 2 (the SX-4 configurations)", got)
	}
}

func TestRunDefaultSX4(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 32, 1, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SX-4", "Component inventory", "SUPER-UX"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("default output missing %q", want)
		}
	}
}

func TestRunMultiNodeShowsIXS(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 16, 4, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IXS:") {
		t.Errorf("multi-node configuration missing IXS line:\n%s", buf.String())
	}
}
