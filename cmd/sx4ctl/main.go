// Command sx4ctl is the resilient command-line client for the sx4d
// daemon: internal/client with a front panel. It retries shed load
// with capped, seeded-jitter backoff and honors the daemon's
// Retry-After hints, so scripts built on it survive an overloaded or
// restarting server.
//
// Usage:
//
//	sx4ctl [-addr URL] run -machine sx4-32 [-benchmarks COPY,IA] [-cpus N] [-fault-seed N]
//	sx4ctl [-addr URL] sweep < queries.ndjson
//	sx4ctl [-addr URL] stats
//
// run answers one query and prints the response JSON; -expect-cache
// asserts the X-Sx4d-Cache state (the warm-restart smoke uses
// `-expect-cache hit` to prove a restarted daemon kept its cache).
// sweep streams NDJSON queries from stdin and prints one answer line
// per query, in order. stats prints the daemon's counters.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sx4bench/internal/client"
	"sx4bench/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sx4ctl [-addr URL] [-retries N] [-jitter-seed N] [-timeout D] run|sweep|stats [args]\n")
}

func run(args []string) int {
	global := flag.NewFlagSet("sx4ctl", flag.ContinueOnError)
	addr := global.String("addr", "http://127.0.0.1:8700", "daemon base URL")
	retries := global.Int("retries", 0, "max retries after the first attempt (0 = default)")
	seed := global.Int64("jitter-seed", 0, "deterministic backoff jitter seed")
	timeout := global.Duration("timeout", 2*time.Minute, "overall deadline per command (0 = none)")
	if err := global.Parse(args); err != nil {
		return 2
	}
	if global.NArg() < 1 {
		usage()
		return 2
	}
	c := client.New(client.Config{
		BaseURL:    strings.TrimRight(*addr, "/"),
		MaxRetries: *retries,
		JitterSeed: *seed,
	})
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cmd, rest := global.Arg(0), global.Args()[1:]
	switch cmd {
	case "run":
		return runQuery(ctx, c, rest)
	case "sweep":
		return runSweep(ctx, c, rest)
	case "stats":
		return runStats(ctx, c, rest)
	default:
		fmt.Fprintf(os.Stderr, "sx4ctl: unknown command %q\n", cmd)
		usage()
		return 2
	}
}

func runQuery(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("sx4ctl run", flag.ContinueOnError)
	machine := fs.String("machine", "", "registry machine name (required)")
	benchmarks := fs.String("benchmarks", "", "comma-separated suite members (empty = whole suite)")
	cpus := fs.Int("cpus", 0, "CPU allocation (0 = machine's full count)")
	faultSeed := fs.Int64("fault-seed", 0, "fault schedule seed (0 = fault-free)")
	expect := fs.String("expect-cache", "", "fail unless X-Sx4d-Cache matches (hit|miss|coalesced)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return 2
	}
	if *machine == "" {
		fmt.Fprintln(os.Stderr, "sx4ctl run: -machine is required")
		return 2
	}
	req := serve.RunRequest{Machine: *machine, CPUs: *cpus, FaultSeed: *faultSeed}
	if *benchmarks != "" {
		for _, b := range strings.Split(*benchmarks, ",") {
			req.Benchmarks = append(req.Benchmarks, strings.TrimSpace(b))
		}
	}
	res, err := c.Run(ctx, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sx4ctl run: %v\n", err)
		return 1
	}
	os.Stdout.Write(res.Body)
	if *expect != "" && res.CacheState != *expect {
		fmt.Fprintf(os.Stderr, "sx4ctl run: cache state %q, expected %q\n", res.CacheState, *expect)
		return 1
	}
	return 0
}

func runSweep(ctx context.Context, c *client.Client, args []string) int {
	fs := flag.NewFlagSet("sx4ctl sweep", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return 2
	}
	var reqs []serve.RunRequest
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		req, err := serve.DecodeRunRequest([]byte(line))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sx4ctl sweep: %v\n", err)
			return 2
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sx4ctl sweep: reading stdin: %v\n", err)
		return 1
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	err := c.Sweep(ctx, reqs, func(i int, line []byte) error {
		out.Write(line)
		out.WriteByte('\n')
		return out.Flush()
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sx4ctl sweep: %v\n", err)
		return 1
	}
	return 0
}

func runStats(ctx context.Context, c *client.Client, args []string) int {
	if len(args) != 0 {
		fmt.Fprintln(os.Stderr, "sx4ctl stats: no arguments expected")
		return 2
	}
	st, err := c.Stats(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sx4ctl stats: %v\n", err)
		return 1
	}
	fmt.Printf("requests=%d run_queries=%d cache_hits=%d coalesced=%d executed=%d errors=%d\n",
		st.Requests, st.RunQueries, st.CacheHits, st.Coalesced, st.RunsExecuted, st.Errors)
	fmt.Printf("admission: requested=%d admitted=%d shed=%d queue_timeouts=%d queue_cancelled=%d completed=%d in_flight=%d queue_depth=%d\n",
		st.AdmitRequests, st.Admitted, st.Shed, st.QueueTimeouts, st.QueueCancelled, st.Completed, st.InFlight, st.QueueDepth)
	fmt.Printf("cache: entries=%d hit_rate=%.3f warm_start=%v restored=%d\n",
		st.CacheEntries, st.CacheHitRate, st.WarmStart, st.RestoredEntries)
	return 0
}
