// Command benchjson converts `go test -bench` text output on stdin
// into a JSON baseline file. Each benchmark line becomes one record
// with ns/op, allocation counters and any custom metrics; the header's
// goos/goarch/cpu context rides along, and the RunAll serial/parallel
// pair is summarized as a speedup ratio when both are present. The
// parsing lives in internal/benchjson.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem . | benchjson -o BENCH_BASELINE.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sx4bench/internal/benchjson"
	"sx4bench/internal/core"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	b, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := benchjson.Validate(b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	// Atomic: an interrupted run must not truncate the baseline the
	// bench-compare gate reads.
	if err := core.WriteFileAtomic(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
