// Command benchjson converts `go test -bench` text output on stdin
// into a JSON baseline file. Each benchmark line becomes one record
// with ns/op, allocation counters and any custom metrics; the header's
// goos/goarch/cpu context rides along, and the RunAll serial/parallel
// pair is summarized as a speedup ratio when both are present.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem . | benchjson -o BENCH_BASELINE.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout.
type Baseline struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// RunAllSpeedup is serial ns/op divided by parallel ns/op for the
	// BenchmarkRunAllSerial / BenchmarkRunAllParallel pair.
	RunAllSpeedup float64 `json:"runall_parallel_speedup,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	b, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Baseline, error) {
	var b Baseline
	var serial, parallel float64
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			b.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			b.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			b.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Benchmarks = append(b.Benchmarks, r)
		switch strings.SplitN(r.Name, "-", 2)[0] {
		case "BenchmarkRunAllSerial":
			serial = r.NsPerOp
		case "BenchmarkRunAllParallel":
			parallel = r.NsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return b, err
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("no benchmark lines on stdin")
	}
	if serial > 0 && parallel > 0 {
		b.RunAllSpeedup = serial / parallel
	}
	return b, nil
}

// parseLine reads one "BenchmarkX-8  123  456 ns/op  7 B/op ..." line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 && r.Metrics == nil {
		return Result{}, false
	}
	return r, true
}
