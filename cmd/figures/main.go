// Command figures regenerates the paper's tables and figures from the
// model. Each experiment identifier maps to one table or figure of the
// evaluation section (see DESIGN.md for the index).
//
// Usage:
//
//	figures -exp table7            # one experiment
//	figures -exp all               # everything
//	figures -exp fig5 -csv         # CSV for plotting
//	figures -exp table5 -machine ymp
//	figures -exp crossmachine      # the whole suite on every machine
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sx4bench"
	"sx4bench/internal/core"
	"sx4bench/internal/ncar"
	"sx4bench/internal/target"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table7, fig5..fig8, radabs, pop, prodload, correctness, io, multinode, report, profile, crossmachine, all)")
	machine := flag.String("machine", "sx4-32",
		fmt.Sprintf("machine to run the experiments on (known: %s)", strings.Join(sx4bench.Machines(), ", ")))
	csv := flag.Bool("csv", false, "emit CSV instead of text (figures and tables only)")
	plot := flag.Bool("plot", false, "render figures as ASCII log-log charts")
	workers := flag.Int("workers", 0, "experiment-level parallelism for -exp all (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	cacheStats := flag.Bool("cachestats", false, "print machine-model timing-cache hit/miss counters to stderr on exit")
	flag.Parse()

	m, err := sx4bench.Lookup(*machine)
	if err != nil {
		fail(err)
	}
	if *cacheStats {
		defer func() {
			if counted, ok := m.(interface{ CacheStats() target.CacheStats }); ok {
				fmt.Fprintf(os.Stderr, "figures: timing cache %s\n", counted.CacheStats())
			}
		}()
	}
	if err := run(os.Stdout, m, *exp, *csv, *plot, *workers); err != nil {
		fail(err)
	}
}

// run is the testable body of the command.
func run(w io.Writer, m sx4bench.Target, exp string, csv, plot bool, workers int) error {
	if exp == "all" {
		return sx4bench.RunAllWorkers(w, m, workers)
	}
	if csv {
		return writeCSV(w, m, exp)
	}
	if plot {
		return writePlot(w, m, exp)
	}
	return sx4bench.RunExperiment(w, m, exp)
}

func writePlot(w io.Writer, m sx4bench.Target, exp string) error {
	var f sx4bench.Figure
	switch exp {
	case "fig5":
		f = ncar.Fig5(m, 4)
	case "fig6":
		f = ncar.Fig6(m)
	case "fig7":
		f = ncar.Fig7(m)
	case "fig8":
		f = ncar.Fig8(m)
	default:
		return fmt.Errorf("no plot form for %q", exp)
	}
	return core.WritePlot(w, f, 72, 22)
}

func writeCSV(w io.Writer, m sx4bench.Target, exp string) error {
	switch exp {
	case "fig5":
		return core.WriteFigureCSV(w, ncar.Fig5(m, 4))
	case "fig6":
		return core.WriteFigureCSV(w, ncar.Fig6(m))
	case "fig7":
		return core.WriteFigureCSV(w, ncar.Fig7(m))
	case "fig8":
		return core.WriteFigureCSV(w, ncar.Fig8(m))
	case "table1":
		return core.WriteTableCSV(w, ncar.Table1())
	case "table2":
		return core.WriteTableCSV(w, ncar.Table2())
	case "table3":
		return core.WriteTableCSV(w, ncar.Table3(m))
	case "table4":
		return core.WriteTableCSV(w, ncar.Table4())
	case "table5":
		return core.WriteTableCSV(w, ncar.Table5(m))
	case "table6":
		return core.WriteTableCSV(w, ncar.Table6(m))
	case "table7":
		return core.WriteTableCSV(w, ncar.Table7(m))
	case "crossmachine":
		tab, err := ncar.CrossMachineTable()
		if err != nil {
			return err
		}
		return core.WriteTableCSV(w, tab)
	}
	return fmt.Errorf("no CSV form for %q", exp)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
