// Command figures regenerates the paper's tables and figures from the
// model. Each experiment identifier maps to one table or figure of the
// evaluation section (see DESIGN.md for the index).
//
// Usage:
//
//	figures -exp table7        # one experiment
//	figures -exp all           # everything
//	figures -exp fig5 -csv     # CSV for plotting
package main

import (
	"flag"
	"fmt"
	"os"

	"sx4bench"
	"sx4bench/internal/core"
	"sx4bench/internal/ncar"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table7, fig5..fig8, radabs, pop, prodload, correctness, io, multinode, report, all)")
	csv := flag.Bool("csv", false, "emit CSV instead of text (figures and tables only)")
	plot := flag.Bool("plot", false, "render figures as ASCII log-log charts")
	workers := flag.Int("workers", 0, "experiment-level parallelism for -exp all (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	cacheStats := flag.Bool("cachestats", false, "print machine-model timing-cache hit/miss counters to stderr on exit")
	flag.Parse()

	m := sx4bench.Benchmarked()
	if *cacheStats {
		defer func() {
			fmt.Fprintf(os.Stderr, "figures: timing cache %s\n", m.CacheStats())
		}()
	}
	if *exp == "all" {
		if err := sx4bench.RunAllWorkers(os.Stdout, m, *workers); err != nil {
			fail(err)
		}
		return
	}
	if *csv {
		if err := writeCSV(m, *exp); err != nil {
			fail(err)
		}
		return
	}
	if *plot {
		if err := writePlot(m, *exp); err != nil {
			fail(err)
		}
		return
	}
	if err := sx4bench.RunExperiment(os.Stdout, m, *exp); err != nil {
		fail(err)
	}
}

func writePlot(m *sx4bench.Machine, exp string) error {
	var f sx4bench.Figure
	switch exp {
	case "fig5":
		f = ncar.Fig5(m, 4)
	case "fig6":
		f = ncar.Fig6(m)
	case "fig7":
		f = ncar.Fig7(m)
	case "fig8":
		f = ncar.Fig8(m)
	default:
		return fmt.Errorf("no plot form for %q", exp)
	}
	return core.WritePlot(os.Stdout, f, 72, 22)
}

func writeCSV(m *sx4bench.Machine, exp string) error {
	switch exp {
	case "fig5":
		return core.WriteFigureCSV(os.Stdout, ncar.Fig5(m, 4))
	case "fig6":
		return core.WriteFigureCSV(os.Stdout, ncar.Fig6(m))
	case "fig7":
		return core.WriteFigureCSV(os.Stdout, ncar.Fig7(m))
	case "fig8":
		return core.WriteFigureCSV(os.Stdout, ncar.Fig8(m))
	case "table1":
		return core.WriteTableCSV(os.Stdout, ncar.Table1())
	case "table2":
		return core.WriteTableCSV(os.Stdout, ncar.Table2())
	case "table3":
		return core.WriteTableCSV(os.Stdout, ncar.Table3(m))
	case "table4":
		return core.WriteTableCSV(os.Stdout, ncar.Table4())
	case "table5":
		return core.WriteTableCSV(os.Stdout, ncar.Table5(m))
	case "table6":
		return core.WriteTableCSV(os.Stdout, ncar.Table6(m))
	case "table7":
		return core.WriteTableCSV(os.Stdout, ncar.Table7(m))
	}
	return fmt.Errorf("no CSV form for %q", exp)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
