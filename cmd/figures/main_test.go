package main

import (
	"bytes"
	"strings"
	"testing"

	"sx4bench"
)

func TestLookupUnknownMachine(t *testing.T) {
	if _, err := sx4bench.Lookup("nosuch"); err == nil {
		t.Fatal("Lookup accepted an unknown machine")
	} else if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "known:") {
		t.Errorf("error %q does not name the machine and the known set", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sx4bench.Benchmarked(), "nosuch", false, false, 1); err == nil {
		t.Error("run accepted an unknown experiment id")
	}
	if err := run(&buf, sx4bench.Benchmarked(), "nosuch", true, false, 1); err == nil {
		t.Error("run -csv accepted an unknown experiment id")
	}
	if err := run(&buf, sx4bench.Benchmarked(), "nosuch", false, true, 1); err == nil {
		t.Error("run -plot accepted an unknown experiment id")
	}
}

func TestRunExperimentOnComparator(t *testing.T) {
	m, err := sx4bench.Lookup("ymp")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, m, "table5", false, false, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "T42L18") {
		t.Errorf("table5 on ymp missing resolution row:\n%s", buf.String())
	}
}

func TestRunCrossMachineCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sx4bench.Benchmarked(), "crossmachine", true, false, 1); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, want := range []string{"SUN Sparc 20", "CRI C90", "SX-4/32"} {
		if !strings.Contains(head, want) {
			t.Errorf("crossmachine CSV header %q missing column %q", head, want)
		}
	}
}
