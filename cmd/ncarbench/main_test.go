package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMainUnknownMachine(t *testing.T) {
	var buf bytes.Buffer
	err := runMain(&buf, "nosuch", "RADABS", 0, 1, false)
	if err == nil {
		t.Fatal("runMain accepted an unknown machine")
	}
	if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "known:") {
		t.Errorf("error %q does not name the machine and the known set", err)
	}
	if buf.Len() != 0 {
		t.Errorf("unknown machine wrote %d bytes of output", buf.Len())
	}
}

func TestRunMainUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "sx4-32", "NOSUCH", 0, 1, false); err == nil {
		t.Error("runMain accepted an unknown benchmark")
	}
}

func TestRunMainShortSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "all", "", 0, 1, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 7 {
		t.Errorf("-machine all -short printed %d lines, want one per registered machine (>= 7)", len(lines))
	}
	for _, want := range []string{"SUN Sparc 20", "CRI Y-MP", "SX-4/32"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("short sweep output missing %q", want)
		}
	}
}

func TestRunMainSingleMachineBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "ymp", "RADABS", 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CRI Y-MP") {
		t.Errorf("RADABS on ymp does not name the machine:\n%s", buf.String())
	}
}

func TestRunMainListsSuiteByDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, "sx4-32", "", 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NCAR Benchmark Suite") {
		t.Errorf("no -run did not list the suite:\n%s", buf.String())
	}
}
