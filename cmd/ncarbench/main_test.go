package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sx4bench/internal/ncar"
)

func TestRunMainUnknownMachine(t *testing.T) {
	var buf bytes.Buffer
	err := runMain(&buf, options{machine: "nosuch", benchmark: "RADABS", workers: 1})
	if err == nil {
		t.Fatal("runMain accepted an unknown machine")
	}
	if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "known:") {
		t.Errorf("error %q does not name the machine and the known set", err)
	}
	if buf.Len() != 0 {
		t.Errorf("unknown machine wrote %d bytes of output", buf.Len())
	}
}

func TestRunMainUnknownBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, options{machine: "sx4-32", benchmark: "NOSUCH", workers: 1}); err == nil {
		t.Error("runMain accepted an unknown benchmark")
	}
}

func TestRunMainShortSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, options{machine: "all", workers: 1, short: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 7 {
		t.Errorf("-machine all -short printed %d lines, want one per registered machine (>= 7)", len(lines))
	}
	for _, want := range []string{"SUN Sparc 20", "CRI Y-MP", "SX-4/32"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("short sweep output missing %q", want)
		}
	}
}

func TestRunMainSingleMachineBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, options{machine: "ymp", benchmark: "RADABS", workers: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CRI Y-MP") {
		t.Errorf("RADABS on ymp does not name the machine:\n%s", buf.String())
	}
}

func TestRunMainListsSuiteByDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, options{machine: "sx4-32", workers: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NCAR Benchmark Suite") {
		t.Errorf("no -run did not list the suite:\n%s", buf.String())
	}
}

func TestRunMainSeededFaults(t *testing.T) {
	var buf bytes.Buffer
	err := runMain(&buf, options{machine: "sx4-32", benchmark: "RADABS", workers: 1, faults: "1996"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "resilient: RADABS") {
		t.Errorf("-faults run missing the resilience summary line:\n%s", buf.String())
	}
}

func TestRunMainFaultScheduleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.txt")
	if err := os.WriteFile(path, []byte("# kill early, retry succeeds\n0.001 jobkill 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runMain(&buf, options{machine: "sx4-32", benchmark: "RADABS", workers: 1, faults: path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 attempt(s)") {
		t.Errorf("schedule file did not force a retry:\n%s", buf.String())
	}
}

func TestRunMainBadFaultsArg(t *testing.T) {
	var buf bytes.Buffer
	err := runMain(&buf, options{machine: "sx4-32", benchmark: "RADABS", workers: 1, faults: "/no/such/schedule"})
	if err == nil {
		t.Fatal("runMain accepted an unreadable -faults value")
	}
	if !strings.Contains(err.Error(), "-faults") {
		t.Errorf("error %q does not explain the -faults value", err)
	}
}

func TestRunMainDeadlineExceeded(t *testing.T) {
	var buf bytes.Buffer
	err := runMain(&buf, options{machine: "sx4-32", benchmark: "RADABS", workers: 1, deadline: 1e-9})
	if !errors.Is(err, ncar.ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestRunMainFaultsDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := runMain(&buf, options{machine: "sx4-32", benchmark: "all", workers: workers, faults: "1996"}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	if parallel := render(4); parallel != serial {
		t.Error("-run all -faults output differs between -workers 1 and -workers 4")
	}
}
func TestRunMainCacheStats(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, options{machine: "sx4-1", benchmark: "RADABS", workers: 1, cachestats: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cachestats SX-4/1:") {
		t.Fatalf("-cachestats output missing the counter line:\n%s", out)
	}
	for _, want := range []string{"shards (deepest holds", "generation", "stale entries dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("cachestats line missing %q:\n%s", want, out)
		}
	}

	// Off by default: the same run without the flag prints no counters.
	buf.Reset()
	if err := runMain(&buf, options{machine: "sx4-1", benchmark: "RADABS", workers: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "cachestats") {
		t.Errorf("counters printed without -cachestats:\n%s", buf.String())
	}
}

func TestRunMainFleetCapacity(t *testing.T) {
	run := func(workers int) string {
		var buf bytes.Buffer
		err := runMain(&buf, options{fleet: "sx4-32,c90", scenarios: 6, fleetseed: 7, workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	if !strings.Contains(serial, "Fleet capacity planning") || !strings.Contains(serial, "diurnal") {
		t.Fatalf("capacity output missing the table:\n%s", serial)
	}
	// The capacity table is byte-identical for every -workers value.
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != serial {
			t.Errorf("-workers %d output differs:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

func TestRunMainFleetFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := runMain(&buf, options{scenarios: 10}); err == nil {
		t.Error("-scenarios without -fleet accepted")
	}
	if err := runMain(&buf, options{fleet: "nosuchmachine"}); err == nil {
		t.Error("unknown fleet member accepted")
	}
	if err := runMain(&buf, options{fleet: "sx4-32", scenarios: -1}); err == nil {
		t.Error("negative -scenarios accepted")
	}
}
