// Command ncarbench runs the NCAR Benchmark Suite (or a single named
// member) against any registered machine model and prints the results,
// following the paper's category structure.
//
// Usage:
//
//	ncarbench                          # list the suite
//	ncarbench -run COPY                # one benchmark on the SX-4/32
//	ncarbench -run all                 # the full suite
//	ncarbench -machine ymp -run RADABS # one benchmark on the Cray Y-MP
//	ncarbench -machine all -run all    # the suite on every machine
//	ncarbench -machine all -short      # one-line smoke sweep (CI)
//	ncarbench -run CCM2 -cpus 16
//	ncarbench -run RADABS -faults 1996 # under a seeded fault schedule
//	ncarbench -run all -faults sched.txt -deadline 600
//
// Fleet capacity planning (the multi-node Monte Carlo):
//
//	ncarbench -fleet sx4-32x2,c90                  # canonical 100-scenario plan
//	ncarbench -fleet sx4-32x4 -scenarios 1000      # bigger fleet, bigger sweep
//	ncarbench -fleet sx4-32,c90 -scenarios 240 -fleetseed 7 -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sx4bench"
	"sx4bench/internal/core"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/fault"
	"sx4bench/internal/fleet"
	"sx4bench/internal/ncar"
	"sx4bench/internal/target"
)

// options collects the command's flags.
type options struct {
	machine   string
	benchmark string
	cpus      int
	workers   int
	short     bool

	// faults selects a schedule: empty (fault-free), a decimal seed
	// for a generated plan, or a schedule-file path.
	faults string
	// deadline bounds each benchmark's simulated completion time in
	// seconds; 0 means none.
	deadline float64
	// retries caps the attempts per benchmark; 0 means the default.
	retries int
	// cachestats prints each machine's timing-memo counters — shard
	// occupancy and generation drops included — after its results.
	cachestats bool

	// fleet, when non-empty, switches to capacity-planning mode: a
	// Monte Carlo of week-long scenarios over the specified fleet.
	fleet     string
	scenarios int
	fleetseed int64
}

func main() {
	var o options
	flag.StringVar(&o.benchmark, "run", "", "benchmark name (see list), or 'all'")
	flag.StringVar(&o.machine, "machine", "sx4-32",
		fmt.Sprintf("machine to benchmark, or 'all' (known: %s)", strings.Join(sx4bench.Machines(), ", ")))
	flag.IntVar(&o.cpus, "cpus", 0, "processors for the application benchmarks (0 = the machine's full CPU count)")
	flag.IntVar(&o.workers, "workers", 0, "suite-level parallelism for -run all (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	flag.BoolVar(&o.short, "short", false, "print one line of scalar anchors per machine instead of full results")
	flag.StringVar(&o.faults, "faults", "", "fault schedule: a seed for a generated plan, or a schedule-file path ('<at> <kind> <unit>' lines)")
	flag.Float64Var(&o.deadline, "deadline", 0, "simulated-seconds deadline per benchmark under -faults (0 = none)")
	flag.IntVar(&o.retries, "retries", 0, "max attempts per benchmark under -faults (0 = default)")
	flag.BoolVar(&o.cachestats, "cachestats", false, "print each machine's timing-memo counters (shard occupancy, generation drops) after its results")
	flag.StringVar(&o.fleet, "fleet", "", "fleet spec for capacity planning, e.g. 'sx4-32x2,c90' (registry names with optional xN replication)")
	flag.IntVar(&o.scenarios, "scenarios", 0, "Monte Carlo scenario count for -fleet (0 = the canonical 100)")
	flag.Int64Var(&o.fleetseed, "fleetseed", 0, "fleet seed every -fleet scenario derives from (0 = the canonical 1996)")
	flag.Parse()

	if err := runMain(os.Stdout, o); err != nil {
		fail(err)
	}
}

// runMain is the testable body of the command.
func runMain(w io.Writer, o options) error {
	if o.fleet != "" {
		return runCapacity(w, o)
	}
	if o.scenarios != 0 || o.fleetseed != 0 {
		return fmt.Errorf("-scenarios and -fleetseed need -fleet")
	}
	injector, err := loadFaults(o.faults)
	if err != nil {
		return err
	}
	targets, err := resolveTargets(o.machine)
	if err != nil {
		return err
	}
	if o.short {
		for _, tgt := range targets {
			if err := ncar.ShortSummary(w, tgt); err != nil {
				return err
			}
			if err := printCacheStats(w, tgt, o.cachestats); err != nil {
				return err
			}
		}
		return nil
	}
	benchmark := o.benchmark
	if benchmark == "" {
		// -machine all with no -run means the whole suite; a single
		// machine with no -run just lists the suite.
		if o.machine != "all" {
			list(w)
			return nil
		}
		benchmark = "all"
	}
	rop := ncar.ResilientOpts{
		Injector:        injector,
		DeadlineSeconds: o.deadline,
		MaxAttempts:     o.retries,
	}
	resilient := injector != nil || o.deadline > 0 || o.retries > 0
	for _, tgt := range targets {
		if len(targets) > 1 {
			if _, err := fmt.Fprintf(w, "\n===== %s =====\n", tgt.Name()); err != nil {
				return err
			}
		}
		if err := runOn(w, tgt, benchmark, o.cpus, o.workers, resilient, rop); err != nil {
			return err
		}
		if err := printCacheStats(w, tgt, o.cachestats); err != nil {
			return err
		}
	}
	return nil
}

// runCapacity answers one fleet capacity question: scenarios week-long
// Monte Carlo draws (arrival mixes × per-node fault plans × degraded
// fleets) over the specified fleet, printed as the capacity table. The
// output is byte-identical for every -workers value.
func runCapacity(w io.Writer, o options) error {
	scenarios := o.scenarios
	if scenarios == 0 {
		scenarios = fleet.DefaultScenarios
	}
	if scenarios < 0 {
		return fmt.Errorf("-scenarios %d must be positive", o.scenarios)
	}
	seed := o.fleetseed
	if seed == 0 {
		seed = fleet.DefaultSeed
	}
	tab, err := ncar.CapacityTableFor(o.fleet, scenarios, seed, o.workers)
	if err != nil {
		return err
	}
	return core.WriteTable(w, tab)
}

// printCacheStats reports a machine's timing-memo counters when asked.
// Machines without a memo (or with one disabled) are skipped silently;
// the optional target.CacheStatser interface keeps the command above
// the model layer.
func printCacheStats(w io.Writer, tgt sx4bench.Target, enabled bool) error {
	if !enabled {
		return nil
	}
	cs, ok := tgt.(target.CacheStatser)
	if !ok {
		return nil
	}
	st := cs.CacheStats()
	if st.Hits+st.Misses == 0 && st.Entries == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"cachestats %s: %s; %d shards (deepest holds %d); generation %d, %d stale entries dropped\n",
		tgt.Name(), st, st.Shards, st.MaxShardEntries, st.Generation, st.GenerationDrops)
	return err
}

// loadFaults resolves the -faults value: empty means no injector, a
// decimal integer seeds a generated plan, anything else is read as a
// schedule file.
func loadFaults(arg string) (fault.Injector, error) {
	if arg == "" {
		return nil, nil
	}
	if seed, err := strconv.ParseInt(arg, 10, 64); err == nil {
		return fault.NewPlan(seed, fault.CanonicalHorizon, fault.CanonicalEvents), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("-faults is neither a seed nor a readable schedule file: %w", err)
	}
	defer f.Close()
	plan, err := fault.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("-faults %s: %w", arg, err)
	}
	return plan, nil
}

// resolveTargets maps a -machine value to the machines to benchmark.
func resolveTargets(machine string) ([]sx4bench.Target, error) {
	if machine == "all" {
		var targets []sx4bench.Target
		for _, name := range sx4bench.Machines() {
			tgt, err := sx4bench.Lookup(name)
			if err != nil {
				return nil, err
			}
			targets = append(targets, tgt)
		}
		return targets, nil
	}
	tgt, err := sx4bench.Lookup(machine)
	if err != nil {
		return nil, err
	}
	return []sx4bench.Target{tgt}, nil
}

// runOn runs one benchmark name (or the whole suite) on one machine.
// In resilient mode every benchmark runs under the fault schedule on
// its own simulated timeline (t = 0 at its start), so the output is
// deterministic for any -workers value; a benchmark that cannot
// complete reports its named error and fails the run.
func runOn(w io.Writer, tgt sx4bench.Target, benchmark string, cpus, workers int, resilient bool, rop ncar.ResilientOpts) error {
	one := func(tw io.Writer, name string) error {
		if !resilient {
			return ncar.RunBenchmark(tw, tgt, name, cpus)
		}
		res, err := ncar.RunResilient(tw, tgt, name, cpus, rop)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(tw, "resilient: %s on %s: %d attempt(s), finished t=%.2fs (%s)\n",
			res.Benchmark, res.Machine, res.Attempts, res.FinishedAt, res.Degraded)
		return err
	}
	if benchmark != "all" {
		return one(w, benchmark)
	}
	var tasks []sched.Task
	for _, b := range ncar.Suite() {
		b := b
		tasks = append(tasks, sched.Task{ID: b.Name, Run: func(tw io.Writer) error {
			if _, err := fmt.Fprintf(tw, "\n--- %s (%s) ---\n", b.Name, b.Category); err != nil {
				return err
			}
			return one(tw, b.Name)
		}})
	}
	return sched.Stream(w, workers, tasks)
}

func list(w io.Writer) {
	fmt.Fprintln(w, "The NCAR Benchmark Suite:")
	last := ncar.Category(-1)
	for _, b := range ncar.Suite() {
		if b.Category != last {
			fmt.Fprintf(w, "\n%s:\n", b.Category)
			last = b.Category
		}
		fmt.Fprintf(w, "  %-9s %s (KTRIES=%d)\n", b.Name, b.Description, b.KTries)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncarbench:", err)
	os.Exit(1)
}
