// Command ncarbench runs the NCAR Benchmark Suite (or a single named
// member) against the SX-4 model and prints the results, following the
// paper's category structure.
//
// Usage:
//
//	ncarbench                  # list the suite
//	ncarbench -run COPY        # one benchmark
//	ncarbench -run all         # the full suite
//	ncarbench -run CCM2 -cpus 16
package main

import (
	"flag"
	"fmt"
	"os"

	"sx4bench"
	"sx4bench/internal/ncar"
	"sx4bench/internal/sx4"
)

func main() {
	run := flag.String("run", "", "benchmark name (see list), or 'all'")
	cpus := flag.Int("cpus", 32, "processors for the application benchmarks")
	flag.Parse()

	m := sx4bench.Benchmarked()
	if *run == "" {
		list()
		return
	}
	if *run == "all" {
		for _, b := range ncar.Suite() {
			fmt.Printf("\n--- %s (%s) ---\n", b.Name, b.Category)
			if err := ncar.RunBenchmark(os.Stdout, machineOf(m), b.Name, *cpus); err != nil {
				fail(err)
			}
		}
		return
	}
	if err := ncar.RunBenchmark(os.Stdout, machineOf(m), *run, *cpus); err != nil {
		fail(err)
	}
}

// machineOf unwraps the facade alias for the internal API.
func machineOf(m *sx4bench.Machine) *sx4.Machine { return m }

func list() {
	fmt.Println("The NCAR Benchmark Suite:")
	last := ncar.Category(-1)
	for _, b := range ncar.Suite() {
		if b.Category != last {
			fmt.Printf("\n%s:\n", b.Category)
			last = b.Category
		}
		fmt.Printf("  %-9s %s (KTRIES=%d)\n", b.Name, b.Description, b.KTries)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncarbench:", err)
	os.Exit(1)
}
