// Command ncarbench runs the NCAR Benchmark Suite (or a single named
// member) against any registered machine model and prints the results,
// following the paper's category structure.
//
// Usage:
//
//	ncarbench                          # list the suite
//	ncarbench -run COPY                # one benchmark on the SX-4/32
//	ncarbench -run all                 # the full suite
//	ncarbench -machine ymp -run RADABS # one benchmark on the Cray Y-MP
//	ncarbench -machine all -run all    # the suite on every machine
//	ncarbench -machine all -short      # one-line smoke sweep (CI)
//	ncarbench -run CCM2 -cpus 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sx4bench"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/ncar"
)

func main() {
	run := flag.String("run", "", "benchmark name (see list), or 'all'")
	machine := flag.String("machine", "sx4-32",
		fmt.Sprintf("machine to benchmark, or 'all' (known: %s)", strings.Join(sx4bench.Machines(), ", ")))
	cpus := flag.Int("cpus", 0, "processors for the application benchmarks (0 = the machine's full CPU count)")
	workers := flag.Int("workers", 0, "suite-level parallelism for -run all (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	short := flag.Bool("short", false, "print one line of scalar anchors per machine instead of full results")
	flag.Parse()

	if err := runMain(os.Stdout, *machine, *run, *cpus, *workers, *short); err != nil {
		fail(err)
	}
}

// runMain is the testable body of the command.
func runMain(w io.Writer, machine, benchmark string, cpus, workers int, short bool) error {
	targets, err := resolveTargets(machine)
	if err != nil {
		return err
	}
	if short {
		for _, tgt := range targets {
			if err := ncar.ShortSummary(w, tgt); err != nil {
				return err
			}
		}
		return nil
	}
	if benchmark == "" {
		// -machine all with no -run means the whole suite; a single
		// machine with no -run just lists the suite.
		if machine != "all" {
			list(w)
			return nil
		}
		benchmark = "all"
	}
	for _, tgt := range targets {
		if len(targets) > 1 {
			if _, err := fmt.Fprintf(w, "\n===== %s =====\n", tgt.Name()); err != nil {
				return err
			}
		}
		if err := runOn(w, tgt, benchmark, cpus, workers); err != nil {
			return err
		}
	}
	return nil
}

// resolveTargets maps a -machine value to the machines to benchmark.
func resolveTargets(machine string) ([]sx4bench.Target, error) {
	if machine == "all" {
		var targets []sx4bench.Target
		for _, name := range sx4bench.Machines() {
			tgt, err := sx4bench.Lookup(name)
			if err != nil {
				return nil, err
			}
			targets = append(targets, tgt)
		}
		return targets, nil
	}
	tgt, err := sx4bench.Lookup(machine)
	if err != nil {
		return nil, err
	}
	return []sx4bench.Target{tgt}, nil
}

// runOn runs one benchmark name (or the whole suite) on one machine.
func runOn(w io.Writer, tgt sx4bench.Target, benchmark string, cpus, workers int) error {
	if benchmark != "all" {
		return ncar.RunBenchmark(w, tgt, benchmark, cpus)
	}
	var tasks []sched.Task
	for _, b := range ncar.Suite() {
		b := b
		tasks = append(tasks, sched.Task{ID: b.Name, Run: func(tw io.Writer) error {
			if _, err := fmt.Fprintf(tw, "\n--- %s (%s) ---\n", b.Name, b.Category); err != nil {
				return err
			}
			return ncar.RunBenchmark(tw, tgt, b.Name, cpus)
		}})
	}
	return sched.Stream(w, workers, tasks)
}

func list(w io.Writer) {
	fmt.Fprintln(w, "The NCAR Benchmark Suite:")
	last := ncar.Category(-1)
	for _, b := range ncar.Suite() {
		if b.Category != last {
			fmt.Fprintf(w, "\n%s:\n", b.Category)
			last = b.Category
		}
		fmt.Fprintf(w, "  %-9s %s (KTRIES=%d)\n", b.Name, b.Description, b.KTries)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncarbench:", err)
	os.Exit(1)
}
