// Command ncarbench runs the NCAR Benchmark Suite (or a single named
// member) against the SX-4 model and prints the results, following the
// paper's category structure.
//
// Usage:
//
//	ncarbench                  # list the suite
//	ncarbench -run COPY        # one benchmark
//	ncarbench -run all         # the full suite
//	ncarbench -run CCM2 -cpus 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sx4bench"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/ncar"
	"sx4bench/internal/sx4"
)

func main() {
	run := flag.String("run", "", "benchmark name (see list), or 'all'")
	cpus := flag.Int("cpus", 32, "processors for the application benchmarks")
	workers := flag.Int("workers", 0, "suite-level parallelism for -run all (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	flag.Parse()

	m := sx4bench.Benchmarked()
	if *run == "" {
		list()
		return
	}
	if *run == "all" {
		var tasks []sched.Task
		for _, b := range ncar.Suite() {
			b := b
			tasks = append(tasks, sched.Task{ID: b.Name, Run: func(w io.Writer) error {
				if _, err := fmt.Fprintf(w, "\n--- %s (%s) ---\n", b.Name, b.Category); err != nil {
					return err
				}
				return ncar.RunBenchmark(w, machineOf(m), b.Name, *cpus)
			}})
		}
		if err := sched.Stream(os.Stdout, *workers, tasks); err != nil {
			fail(err)
		}
		return
	}
	if err := ncar.RunBenchmark(os.Stdout, machineOf(m), *run, *cpus); err != nil {
		fail(err)
	}
}

// machineOf unwraps the facade alias for the internal API.
func machineOf(m *sx4bench.Machine) *sx4.Machine { return m }

func list() {
	fmt.Println("The NCAR Benchmark Suite:")
	last := ncar.Category(-1)
	for _, b := range ncar.Suite() {
		if b.Category != last {
			fmt.Printf("\n%s:\n", b.Category)
			last = b.Category
		}
		fmt.Printf("  %-9s %s (KTRIES=%d)\n", b.Name, b.Description, b.KTries)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncarbench:", err)
	os.Exit(1)
}
