// sx4lint checks the repository's determinism, layering and
// golden-stability invariants: eight custom analyzers over fully
// type-checked packages (see internal/analysis and DESIGN.md's
// "Static analysis" section), three of them interprocedural via
// facts threaded along the import graph.
//
// Two modes:
//
//	sx4lint ./...                      # standalone multichecker
//	go vet -vettool=$(pwd)/bin/sx4lint ./...   # vet driver protocol
//
// The standalone mode loads packages itself (via `go list -export`)
// and prints file:line:col diagnostics, exiting 1 if any. The vettool
// mode speaks the go command's unitchecker protocol: -V=full / -flags
// handshakes plus one JSON .cfg per package, diagnostics on stderr,
// exit 2 when a package is dirty.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"sx4bench/internal/analysis"
	"sx4bench/internal/analysis/sx4lint"
)

func main() {
	printVersion := flag.String("V", "", "print version and exit (go vet handshake)")
	printFlags := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet handshake)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sx4lint [packages]\n\nanalyzers:\n")
		for _, a := range sx4lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *printVersion != "" {
		// The go command stamps its vet cache with this line; the
		// content hash of the binary invalidates cached vet results
		// whenever the analyzers change.
		fmt.Printf("sx4lint version devel buildID=%s\n", selfID())
		return
	}
	if *printFlags {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := analysis.RunVetCfg(args[0], sx4lint.Analyzers())
		exit(diags, err, os.Stderr, 2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, sx4lint.Analyzers())
	exit(diags, err, os.Stdout, 1)
}

// selfID content-hashes this executable for the -V=full handshake.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

func exit(diags []analysis.Diagnostic, err error, w *os.File, dirtyCode int) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		os.Exit(dirtyCode)
	}
	os.Exit(0)
}
