// Command goldens maintains the golden-artifact files backing the
// differential verification suite in internal/check. With no flags it
// verifies every artifact against the committed goldens and exits
// non-zero on any drift; -update regenerates the files after an
// intentional model change (then inspect `git diff` before committing).
// Golden files are written atomically (temp file + rename), so an
// interrupted -update never leaves a truncated golden on disk.
//
// Usage:
//
//	go run ./cmd/goldens                       # verify, exit 1 on mismatch
//	go run ./cmd/goldens -update               # rewrite changed goldens
//	go run ./cmd/goldens -list                 # print the artifact ids
//	go run ./cmd/goldens -artifact resilience  # verify one artifact
//
// Run from the repository root, or point -dir at the golden directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"sx4bench/internal/check"
)

func main() {
	dir := flag.String("dir", check.DefaultDir, "golden directory")
	update := flag.Bool("update", false, "rewrite goldens that differ")
	list := flag.Bool("list", false, "list artifact ids and exit")
	artifact := flag.String("artifact", "", "restrict to one artifact id (default: all)")
	flag.Parse()

	ids := check.Artifacts()
	if *artifact != "" {
		found := false
		for _, id := range ids {
			if id == *artifact {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "goldens: unknown artifact %q (known: %v)\n", *artifact, ids)
			os.Exit(1)
		}
		ids = []string{*artifact}
	}

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	if *update {
		changed, err := check.UpdateIDs(*dir, ids)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goldens:", err)
			os.Exit(1)
		}
		if len(changed) == 0 {
			fmt.Printf("goldens: %d artifacts up to date in %s\n", len(ids), *dir)
			return
		}
		for _, id := range changed {
			fmt.Println("updated", check.GoldenPath(*dir, id))
		}
		return
	}

	mismatches, err := check.VerifyIDs(*dir, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldens:", err)
		os.Exit(1)
	}
	if len(mismatches) == 0 {
		fmt.Printf("goldens: %d artifacts match %s\n", len(ids), *dir)
		return
	}
	for _, m := range mismatches {
		fmt.Fprintln(os.Stderr, "goldens:", m)
	}
	fmt.Fprintln(os.Stderr, "goldens: run `make goldens` if the change is intentional")
	os.Exit(1)
}