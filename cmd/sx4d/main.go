// Command sx4d serves the simulation models over HTTP: the NCAR suite
// as a service. POST /v1/run answers one query (suite × machine ×
// fault seed), POST /v1/sweep streams answers to NDJSON bulk
// submissions, GET /v1/machines lists the registry, GET /v1/stats
// reports the cache and coalescing counters, and GET /healthz is the
// liveness probe. Identical queries are exact cache hits: every
// response is a pure function of the request and the machine
// configuration, content-addressed and served byte-identically on
// repeat.
//
// Usage:
//
//	go run ./cmd/sx4d                          # listen on 127.0.0.1:8700
//	go run ./cmd/sx4d -addr 127.0.0.1:0 -portfile /tmp/sx4d.port
//	curl -s localhost:8700/healthz
//	curl -s -d '{"machine":"sx4-32"}' localhost:8700/v1/run
//
// With -addr :0 the kernel picks a free port; -portfile publishes the
// bound address for scripts (the serve-smoke harness uses this). The
// daemon drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sx4bench/internal/serve"

	_ "sx4bench" // link the models in; their inits register the machines
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8700", "listen address (host:port; port 0 picks a free port)")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening")
	maxconcurrent := flag.Int("maxconcurrent", 0, "max simultaneous simulation executions (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-query wall-time bound (0 = none)")
	maxbody := flag.Int64("maxbody", 0, "request body size cap in bytes (0 = default)")
	queuewait := flag.Duration("queuewait", 0, "max admission-queue wait before 503 (0 = request deadline only)")
	queuedepth := flag.Int("queuedepth", 0, "admission queue depth per endpoint class (0 = default)")
	cachefile := flag.String("cache", "", "cache snapshot path: warm-start from it on boot, write it on drain (empty = no persistence)")
	snapinterval := flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence when -cache is set")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "sx4d: unexpected arguments: %v\n", flag.Args())
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sx4d: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sx4d: %v\n", err)
			ln.Close()
			return 1
		}
	}
	fmt.Printf("sx4d listening on %s\n", bound)

	srv := serve.New(serve.Config{
		MaxConcurrent:  *maxconcurrent,
		MaxBodyBytes:   *maxbody,
		RequestTimeout: *timeout,
		QueueWait:      *queuewait,
		QueueDepth:     *queuedepth,
		Now:            time.Now,
	})
	if *cachefile != "" {
		// Warm-start before serving: a damaged snapshot is logged and
		// ignored (serve cold, overwrite it at the next snapshot) — the
		// daemon must come up even when its disk state does not.
		n, err := srv.LoadSnapshot(*cachefile)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "sx4d: ignoring snapshot: %v\n", err)
		case n > 0:
			fmt.Printf("sx4d restored %d cached responses from %s\n", n, *cachefile)
		}
	}

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// Periodic snapshots bound the cache lost to a hard kill to one
	// interval; the on-drain snapshot below makes a clean stop lossless.
	snapdone := make(chan struct{})
	if *cachefile != "" && *snapinterval > 0 {
		ticker := time.NewTicker(*snapinterval)
		go func() {
			defer close(snapdone)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := srv.WriteSnapshot(*cachefile); err != nil {
						fmt.Fprintf(os.Stderr, "sx4d: snapshot: %v\n", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		close(snapdone)
	}

	// drain snapshots the final state once serving has stopped, so the
	// file on disk reflects every query the daemon ever answered.
	drain := func() {
		<-snapdone
		if *cachefile == "" {
			return
		}
		if err := srv.WriteSnapshot(*cachefile); err != nil {
			fmt.Fprintf(os.Stderr, "sx4d: final snapshot: %v\n", err)
		}
	}

	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight queries finish.
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "sx4d: shutdown: %v\n", err)
			drain()
			return 1
		}
		drain()
		fmt.Println("sx4d stopped")
		return 0
	case err := <-errc:
		drain()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "sx4d: %v\n", err)
			return 1
		}
		return 0
	}
}
