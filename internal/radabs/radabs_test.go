package radabs

import (
	"testing"

	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

func TestColumnProfilePhysical(t *testing.T) {
	c := NewColumn(DefaultLevels)
	for k := 0; k < DefaultLevels; k++ {
		if c.Temp[k] < 180 || c.Temp[k] > 320 {
			t.Errorf("level %d temperature %v unphysical", k, c.Temp[k])
		}
		if c.H2O[k] < 0 || c.H2O[k] > 0.05 {
			t.Errorf("level %d moisture %v unphysical", k, c.H2O[k])
		}
		if k > 0 && c.Press[k] <= c.Press[k-1] {
			t.Errorf("pressure not increasing downward at level %d", k)
		}
	}
	if c.Press[DefaultLevels-1] > 102000 {
		t.Errorf("surface pressure %v too high", c.Press[DefaultLevels-1])
	}
}

func TestNewColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewColumn(1) did not panic")
		}
	}()
	NewColumn(1)
}

func TestAbsorptivityRange(t *testing.T) {
	a := Absorptivity(NewColumn(DefaultLevels))
	for k1 := range a {
		for k2 := range a[k1] {
			v := a[k1][k2]
			if k1 == k2 {
				if v != 0 {
					t.Errorf("diagonal abs[%d][%d] = %v, want 0", k1, k2, v)
				}
				continue
			}
			if v < 0 || v >= 1 {
				t.Errorf("abs[%d][%d] = %v out of [0,1)", k1, k2, v)
			}
			if v == 0 {
				t.Errorf("abs[%d][%d] = 0; distinct levels always absorb a little", k1, k2)
			}
		}
	}
}

func TestAbsorptivitySymmetricPath(t *testing.T) {
	a := Absorptivity(NewColumn(DefaultLevels))
	for k1 := range a {
		for k2 := range a[k1] {
			if a[k1][k2] != a[k2][k1] {
				t.Errorf("abs not symmetric at (%d,%d): %v vs %v", k1, k2, a[k1][k2], a[k2][k1])
			}
		}
	}
}

func TestAbsorptivityMonotoneInSeparation(t *testing.T) {
	// More intervening absorber means more absorption: moving the far
	// level further away must not decrease absorptivity.
	a := Absorptivity(NewColumn(DefaultLevels))
	for k2 := 2; k2 < DefaultLevels; k2++ {
		if a[0][k2] < a[0][k2-1]-1e-12 {
			t.Errorf("absorptivity decreased with separation: a[0][%d]=%v < a[0][%d]=%v",
				k2, a[0][k2], k2-1, a[0][k2-1])
		}
	}
}

func TestMoistColumnAbsorbsMore(t *testing.T) {
	dry := NewColumn(DefaultLevels)
	wet := NewColumn(DefaultLevels)
	for k := range wet.H2O {
		wet.H2O[k] *= 3
	}
	ad := Absorptivity(dry)
	aw := Absorptivity(wet)
	// Compare a mid-separation pair where the band is not saturated.
	k1, k2 := 0, DefaultLevels/2
	if ad[k1][k2] >= 0.99 {
		t.Fatalf("test pair already saturated: %v", ad[k1][k2])
	}
	if aw[k1][k2] <= ad[k1][k2] {
		t.Errorf("tripling moisture did not increase absorption: %v vs %v",
			aw[k1][k2], ad[k1][k2])
	}
}

func TestVectorMatchesScalar(t *testing.T) {
	// The vector-style implementation (vmath whole-array intrinsics)
	// must agree with the scalar one to library accuracy.
	c := NewColumn(DefaultLevels)
	scalar := Absorptivity(c)
	vector := AbsorptivityVector(c)
	for k1 := range scalar {
		for k2 := range scalar[k1] {
			d := scalar[k1][k2] - vector[k1][k2]
			if d < -1e-12 || d > 1e-12 {
				t.Fatalf("abs[%d][%d]: scalar %v vs vector %v", k1, k2,
					scalar[k1][k2], vector[k1][k2])
			}
		}
	}
}

func TestVectorSymmetricAndBounded(t *testing.T) {
	a := AbsorptivityVector(NewColumn(10))
	for k1 := range a {
		for k2 := range a[k1] {
			if a[k1][k2] != a[k2][k1] {
				t.Fatal("vector result not symmetric")
			}
			if a[k1][k2] < 0 || a[k1][k2] >= 1 {
				t.Fatalf("vector abs out of range: %v", a[k1][k2])
			}
		}
	}
}

func TestPairsAndFlops(t *testing.T) {
	if Pairs(18) != 18*17 {
		t.Errorf("Pairs(18) = %d", Pairs(18))
	}
	f := FlopsPerColumn(18)
	if f <= 0 {
		t.Fatalf("FlopsPerColumn = %d", f)
	}
	// Trace flop accounting must agree with the analytic count.
	p := Trace(100, 18)
	if got, want := p.Flops(), FlopsPerColumn(18)*100; got != want {
		t.Errorf("trace flops = %d, want %d", got, want)
	}
}

func TestSX4Calibration(t *testing.T) {
	// The paper: RADABS sustains 865.9 Cray Y-MP equivalent MFLOPS on
	// one CPU of the benchmarked SX-4. The model must land in band.
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	p := Trace(BenchmarkColumns, DefaultLevels)
	r := m.Run(p, sx4.RunOpts{Procs: 1})
	mf := r.MFLOPS()
	if mf < 780 || mf > 950 {
		t.Errorf("SX-4/1 RADABS = %.1f MFLOPS, want within [780, 950] (paper: 865.9)", mf)
	}
}

func TestEmbarrassinglyParallel(t *testing.T) {
	// RADABS is embarrassingly parallel in the horizontal: 32 CPUs
	// should speed it up nearly 32x.
	m := sx4.New(sx4.Benchmarked())
	p := Trace(BenchmarkColumns, DefaultLevels)
	t1 := m.Run(p, sx4.RunOpts{Procs: 1}).Seconds
	t32 := m.Run(p, sx4.RunOpts{Procs: 32}).Seconds
	if s := t1 / t32; s < 25 || s > 32.1 {
		t.Errorf("32-CPU RADABS speedup = %.1f, want within [25, 32]", s)
	}
}

func TestTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Trace(0,0) did not panic")
		}
	}()
	Trace(0, 0)
}

func TestIntrinsicMixMatchesAccounting(t *testing.T) {
	p := Trace(10, 4)
	counts := map[prog.Intrinsic]int{}
	for _, op := range p.Phases[0].Loops[0].Body {
		if op.Class == prog.VIntrinsic {
			counts[op.Intr]++
		}
	}
	if counts[prog.Exp] != expPerPair || counts[prog.Log] != logPerPair ||
		counts[prog.Pow] != powPerPair || counts[prog.Sqrt] != sqrtPerPair {
		t.Errorf("intrinsic mix %v does not match accounting", counts)
	}
}
