// Package radabs implements the RADABS benchmark: the radiation-physics
// absorptivity kernel from the NCAR Community Climate Model (CCM2), the
// single most time-consuming subroutine of the model. It is "to NCAR's
// climate codes what LINPACK is to numerical linear algebra": intrinsic
// heavy (EXP, LOG, PWR, SQRT), embarrassingly parallel over the
// latitude-longitude columns, and an upper bound on CCM2 performance.
//
// The physics here is a simplified longwave absorptivity/emissivity
// computation in the spirit of CCM2's radabs routine: for every pair of
// model levels it forms gas path lengths and evaluates band
// transmissions through exponentials, square roots, logarithms and
// powers. The numbers it produces obey the physical invariants the
// tests check (absorptivities in [0,1), monotone in absorber path); the
// flop accounting follows the Y-MP hardware-monitor convention.
package radabs

import (
	"fmt"
	"math"

	"sx4bench/internal/sx4/prog"
)

// DefaultLevels is CCM2's operational vertical resolution (L18).
const DefaultLevels = 18

// Column holds one vertical column of atmospheric state.
type Column struct {
	Press []float64 // level pressures [Pa], increasing downward
	Temp  []float64 // level temperatures [K]
	H2O   []float64 // water-vapor mass mixing ratio [kg/kg]
	CO2   float64   // CO2 volume mixing ratio
}

// NewColumn returns a standard-atmosphere-like column with nlev levels,
// the identical initial data the benchmark replicates in every column.
func NewColumn(nlev int) Column {
	if nlev < 2 {
		panic(fmt.Sprintf("radabs: need at least 2 levels, got %d", nlev))
	}
	c := Column{
		Press: make([]float64, nlev),
		Temp:  make([]float64, nlev),
		H2O:   make([]float64, nlev),
		CO2:   3.55e-4,
	}
	for k := 0; k < nlev; k++ {
		// Sigma-like spacing from ~2 hPa to ~1000 hPa.
		sigma := (float64(k) + 0.5) / float64(nlev)
		c.Press[k] = 200.0 + (101325.0-200.0)*sigma*sigma
		// Troposphere lapse with a stratospheric floor.
		c.Temp[k] = math.Max(216.65, 288.15-71.5*(1-sigma))
		// Moisture decays sharply with height.
		c.H2O[k] = 1.0e-2 * math.Pow(sigma, 3)
	}
	return c
}

// Absorptivity computes the level-pair absorptivity matrix abs[k1][k2]
// for the column: the fraction of radiation emitted at level k2 that is
// absorbed before reaching k1.
func Absorptivity(c Column) [][]float64 {
	nlev := len(c.Press)
	out := make([][]float64, nlev)
	for k1 := 0; k1 < nlev; k1++ {
		out[k1] = make([]float64, nlev)
		for k2 := 0; k2 < nlev; k2++ {
			if k1 == k2 {
				continue
			}
			out[k1][k2] = pairAbsorptivity(c, k1, k2)
		}
	}
	return out
}

// pairAbsorptivity evaluates one level pair. The structure mirrors the
// benchmark's accounting: a handful of multi-line arithmetic
// expressions plus 2 EXP, 1 LOG, 1 PWR and 1 SQRT per pair.
func pairAbsorptivity(c Column, k1, k2 int) float64 {
	lo, hi := k1, k2
	if lo > hi {
		lo, hi = hi, lo
	}
	// Absorber paths between the levels (pressure-weighted).
	var uH2O, uCO2, pBar float64
	for k := lo; k < hi; k++ {
		dp := c.Press[k+1] - c.Press[k]
		uH2O += c.H2O[k] * dp / 9.80616
		uCO2 += c.CO2 * dp / 9.80616
		pBar += 0.5 * (c.Press[k+1] + c.Press[k]) * dp
	}
	dpTot := c.Press[hi] - c.Press[lo]
	pBar /= dpTot
	tBar := 0.5 * (c.Temp[lo] + c.Temp[hi])

	// Pressure-broadened effective paths.
	pr := pBar / 101325.0
	uEffH2O := uH2O * pr * math.Sqrt(288.15/tBar)
	uEffCO2 := uCO2 * math.Pow(pr, 0.85)

	// Band transmissions: strong-line water vapor, CO2 15-micron wing.
	tauH2O := math.Exp(-8.1 * uEffH2O / (1 + 19.0*uEffH2O))
	tauCO2 := math.Exp(-2.3 * uEffCO2)

	// Continuum correction grows logarithmically with path.
	cont := 0.015 * math.Log(1+140.0*uH2O)

	a := 1 - tauH2O*tauCO2 + cont
	if a < 0 {
		a = 0
	}
	if a > 0.999 {
		a = 0.999
	}
	return a
}

// Pairs returns the number of level pairs evaluated per column.
func Pairs(nlev int) int64 { return int64(nlev) * int64(nlev-1) }

// Per-pair operation accounting (Y-MP hardware-monitor convention):
// the "numerous complex, multi-line equations" plus the intrinsic
// credits of prog.IntrinsicFlops.
const (
	mulPerPair = 12
	addPerPair = 10
	divPerPair = 2
	// Intrinsic calls per pair.
	expPerPair  = 2
	logPerPair  = 1
	powPerPair  = 1
	sqrtPerPair = 1
	// Memory traffic per pair (state loads, table gathers, result).
	loadsPerPair   = 6
	gathersPerPair = 2
	storesPerPair  = 1
)

// FlopsPerColumn returns the credited flop count for one column.
func FlopsPerColumn(nlev int) int64 {
	perPair := int64(mulPerPair + addPerPair + divPerPair +
		expPerPair*prog.IntrinsicFlops[prog.Exp] +
		logPerPair*prog.IntrinsicFlops[prog.Log] +
		powPerPair*prog.IntrinsicFlops[prog.Pow] +
		sqrtPerPair*prog.IntrinsicFlops[prog.Sqrt])
	return perPair * Pairs(nlev)
}

// Trace builds the operation trace for ncol columns of nlev levels.
// The physics is vectorized over the horizontal columns (vector length
// ncol); the level-pair loop is the trip axis. Band-table lookups go
// through the gather path.
func Trace(ncol, nlev int) prog.Program {
	if ncol < 1 || nlev < 2 {
		panic(fmt.Sprintf("radabs: bad shape ncol=%d nlev=%d", ncol, nlev))
	}
	body := []prog.Op{
		{Class: prog.VLoad, VL: ncol * loadsPerPair, Stride: 1},
		{Class: prog.VGather, VL: ncol * gathersPerPair, Span: 4096},
		{Class: prog.VMul, VL: ncol, FlopsPerElem: mulPerPair},
		{Class: prog.VAdd, VL: ncol, FlopsPerElem: addPerPair},
		{Class: prog.VDiv, VL: ncol, FlopsPerElem: divPerPair},
	}
	for i := 0; i < expPerPair; i++ {
		body = append(body, prog.Op{Class: prog.VIntrinsic, VL: ncol, Intr: prog.Exp})
	}
	body = append(body,
		prog.Op{Class: prog.VIntrinsic, VL: ncol, Intr: prog.Log},
		prog.Op{Class: prog.VIntrinsic, VL: ncol, Intr: prog.Pow},
		prog.Op{Class: prog.VIntrinsic, VL: ncol, Intr: prog.Sqrt},
		prog.Op{Class: prog.VStore, VL: ncol * storesPerPair, Stride: 1},
	)
	return prog.Program{
		Name: fmt.Sprintf("RADABS(ncol=%d,nlev=%d)", ncol, nlev),
		Phases: []prog.Phase{{
			Name:     "radabs",
			Parallel: true,
			Loops:    []prog.Loop{{Trips: Pairs(nlev), Body: body}},
		}},
	}
}

// BenchmarkShape is the standard benchmark configuration: a T42-like
// horizontal chunk of columns at L18.
const BenchmarkColumns = 8192
