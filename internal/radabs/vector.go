package radabs

import (
	"math"

	"sx4bench/internal/vmath"
)

// AbsorptivityVector computes the same absorptivity matrix as
// Absorptivity but in vector style: all level pairs are laid out in
// slices and the intrinsic-heavy steps run through the vmath library
// as whole-array operations — the loop structure the SX-4's compiler
// wants, and the one the RADABS trace models.
func AbsorptivityVector(c Column) [][]float64 {
	nlev := len(c.Press)
	type pairIdx struct{ k1, k2 int }
	var pairs []pairIdx
	for k1 := 0; k1 < nlev; k1++ {
		for k2 := k1 + 1; k2 < nlev; k2++ {
			pairs = append(pairs, pairIdx{k1, k2})
		}
	}
	n := len(pairs)
	uH2O := make([]float64, n)
	uEffH2O := make([]float64, n)
	uEffCO2 := make([]float64, n)

	// Gather phase: path integrals per pair (prefix sums make this a
	// vectorizable gather in the real code; here it stays explicit).
	type prefix struct{ h2o, co2, pw float64 }
	pre := make([]prefix, nlev)
	for k := 0; k < nlev-1; k++ {
		dp := c.Press[k+1] - c.Press[k]
		pre[k+1] = prefix{
			h2o: pre[k].h2o + c.H2O[k]*dp/9.80616,
			co2: pre[k].co2 + c.CO2*dp/9.80616,
			pw:  pre[k].pw + 0.5*(c.Press[k+1]+c.Press[k])*dp,
		}
	}
	powBase := make([]float64, n)
	powExp := make([]float64, n)
	sqrtArg := make([]float64, n)
	for i, p := range pairs {
		lo, hi := p.k1, p.k2
		h2o := pre[hi].h2o - pre[lo].h2o
		co2 := pre[hi].co2 - pre[lo].co2
		pBar := (pre[hi].pw - pre[lo].pw) / (c.Press[hi] - c.Press[lo])
		tBar := 0.5 * (c.Temp[lo] + c.Temp[hi])
		pr := pBar / 101325.0
		uH2O[i] = h2o
		sqrtArg[i] = 288.15 / tBar
		uEffH2O[i] = h2o * pr // * sqrt factor applied below
		powBase[i] = pr
		powExp[i] = 0.85
		uEffCO2[i] = co2 // * pr^0.85 applied below
	}

	// Vectorized intrinsic phase.
	sq := make([]float64, n)
	vmath.Sqrt(sq, sqrtArg)
	prPow := make([]float64, n)
	vmath.Pow(prPow, powBase, powExp)
	expArgW := make([]float64, n)
	expArgC := make([]float64, n)
	logArg := make([]float64, n)
	for i := 0; i < n; i++ {
		uEffH2O[i] *= sq[i]
		uEffCO2[i] *= prPow[i]
		expArgW[i] = -8.1 * uEffH2O[i] / (1 + 19.0*uEffH2O[i])
		expArgC[i] = -2.3 * uEffCO2[i]
		logArg[i] = 1 + 140.0*uH2O[i]
	}
	tauW := make([]float64, n)
	tauC := make([]float64, n)
	cont := make([]float64, n)
	vmath.Exp(tauW, expArgW)
	vmath.Exp(tauC, expArgC)
	vmath.Log(cont, logArg)

	out := make([][]float64, nlev)
	for k := range out {
		out[k] = make([]float64, nlev)
	}
	for i, p := range pairs {
		a := 1 - tauW[i]*tauC[i] + 0.015*cont[i]
		a = math.Min(math.Max(a, 0), 0.999)
		out[p.k1][p.k2] = a
		out[p.k2][p.k1] = a
	}
	return out
}
