// Package sx4 models the NEC SX-4 parallel vector supercomputer as
// described in Hammond, Loft & Tannenbaum, "Architecture and
// Application: The Performance of the NEC SX-4 on the NCAR Benchmark
// Suite" (SC'96).
//
// The package provides a calibrated analytic performance model: programs
// are expressed as operation traces (package prog) and executed by a
// Machine, which accounts for vector pipeline throughput, vector startup,
// memory-bank conflicts, per-CPU port limits, node-level memory
// contention, and synchronization cost. The model is not cycle-exact; it
// reproduces the performance *shape* the paper measures (long- versus
// short-vector behaviour, stride and gather penalties, multiprocessor
// scaling and interference).
package sx4

import "fmt"

// Config describes one SX-4 system configuration. The zero value is not
// usable; construct configurations with NewConfig, Benchmarked, or
// Production.
type Config struct {
	// Name is a human-readable model designation, e.g. "SX-4/32".
	Name string

	// ClockNS is the machine cycle time in nanoseconds. The paper
	// benchmarks a 9.2 ns system; the production clock is 8.0 ns.
	ClockNS float64

	// CPUs is the number of processors in one node (1..32).
	CPUs int

	// Nodes is the number of nodes connected by the IXS (1..16).
	Nodes int

	// VectorPipes is the number of parallel pipes in each functional
	// pipe set (add/shift, multiply, divide, logical). The SX-4 has 8.
	VectorPipes int

	// VectorRegElems is the strip length of one vector instruction:
	// 8 VPP chips x 32 elements = 256.
	VectorRegElems int

	// MemoryBanks is the number of independent SSRAM banks per node
	// (up to 1024).
	MemoryBanks int

	// BankBusyClocks is the bank cycle (busy) time in clocks (2).
	BankBusyClocks int

	// PortWordsPerClock is the per-CPU crossbar port width in 64-bit
	// words per clock; 16 words/clock x 8 B x 125 MHz = 16 GB/s.
	PortWordsPerClock int

	// NodeWordsPerClock is the per-node sustainable memory system
	// bandwidth in words/clock (512 GB/s at 8 ns = 512 words/clock).
	NodeWordsPerClock int

	// VectorStartupClocks is the pipeline fill + issue overhead charged
	// per vector instruction for arithmetic pipes.
	VectorStartupClocks int

	// MemStartupClocks is the startup overhead per vector memory
	// instruction (address generation + crossbar + bank latency).
	MemStartupClocks int

	// GatherWordsPerClock is the sustainable list-vector (gather/
	// scatter) element rate in words per clock; indirect access does
	// not stream at full port rate.
	GatherWordsPerClock float64

	// StridedPenalty is the minimum slowdown of non-unit, non-stride-2
	// vector memory streams (see membank.System.StridedPenalty).
	StridedPenalty float64

	// IntrinsicScale multiplies the DefaultIntrinsicClocks table, for
	// modeling machines whose vector math library is slower or faster
	// relative to their pipes than the SX-4's. Zero means 1.
	IntrinsicScale float64

	// ScalarIssuePerClock is the superscalar issue width (2).
	ScalarIssuePerClock int

	// LoopOverheadClocks is the scalar loop-control overhead charged
	// per innermost-loop trip of a vectorized loop nest.
	LoopOverheadClocks float64

	// BarrierBaseClocks and BarrierPerCPUClocks give the cost of a
	// communication-register barrier among p CPUs:
	// BarrierBaseClocks + p*BarrierPerCPUClocks.
	BarrierBaseClocks   float64
	BarrierPerCPUClocks float64

	// InterferenceFrac is the fractional slowdown of memory traffic
	// when all CPUs of a node are busy, from residual bank conflicts
	// between independent streams. Calibrated so the CCM2 ensemble
	// test degrades by ~1.9% (Table 6).
	InterferenceFrac float64

	// MainMemoryGB and XMUGB are the main and extended memory
	// capacities per node.
	MainMemoryGB float64
	XMUGB        float64

	// XMUWordsPerClock is XMU bandwidth in words/clock (16 GB/s at
	// 8 ns = 16 words/clock, shared by the node).
	XMUWordsPerClock int

	// IOPs is the number of I/O processors; each has 1.6 GB/s.
	IOPs             int
	IOPBytesPerSec   float64
	HIPPIBytesPerSec float64 // per HIPPI channel (~100 MB/s each way)

	// DiskCapacityGB and DiskBytesPerSec describe the attached
	// conventional (not solid-state) disk subsystem.
	DiskCapacityGB  float64
	DiskBytesPerSec float64

	// IXSBytesPerSecPerNode is the per-node IXS channel bandwidth
	// (8 GB/s in + 8 GB/s out); IXSBisectionBytesPerSec is the
	// crossbar total (128 GB/s for 16 nodes).
	IXSBytesPerSecPerNode   float64
	IXSBisectionBytesPerSec float64
	IXSLatencyNS            float64

	// PowerKVA is the chassis power requirement (123 KVA for an
	// SX-4/32, versus >400 KVA for a 16-CPU ECL C90).
	PowerKVA float64
}

// NewConfig returns an SX-4 configuration with cpus processors per node
// and the given number of nodes, using the production 8.0 ns clock.
func NewConfig(cpus, nodes int) Config {
	if cpus < 1 || cpus > 32 {
		panic(fmt.Sprintf("sx4: cpus must be in [1,32], got %d", cpus))
	}
	if nodes < 1 || nodes > 16 {
		panic(fmt.Sprintf("sx4: nodes must be in [1,16], got %d", nodes))
	}
	name := fmt.Sprintf("SX-4/%d", cpus*nodes)
	if nodes > 1 {
		name = fmt.Sprintf("SX-4/%dM%d", cpus*nodes, nodes)
	}
	return Config{
		Name:                    name,
		ClockNS:                 8.0,
		CPUs:                    cpus,
		Nodes:                   nodes,
		VectorPipes:             8,
		VectorRegElems:          256,
		MemoryBanks:             1024,
		BankBusyClocks:          2,
		PortWordsPerClock:       16,
		NodeWordsPerClock:       512,
		VectorStartupClocks:     24,
		MemStartupClocks:        48,
		GatherWordsPerClock:     2.0,
		StridedPenalty:          2.5,
		ScalarIssuePerClock:     2,
		LoopOverheadClocks:      10,
		BarrierBaseClocks:       80,
		BarrierPerCPUClocks:     12,
		InterferenceFrac:        0.019,
		MainMemoryGB:            8,
		XMUGB:                   4,
		XMUWordsPerClock:        16,
		IOPs:                    4,
		IOPBytesPerSec:          1.6e9,
		HIPPIBytesPerSec:        95e6,
		DiskCapacityGB:          282,
		DiskBytesPerSec:         60e6,
		IXSBytesPerSecPerNode:   8e9,
		IXSBisectionBytesPerSec: 128e9,
		IXSLatencyNS:            2000,
		PowerKVA:                122.8,
	}
}

// Benchmarked returns the configuration of the system measured in the
// paper (February 1996): an SX-4/32 with a 9.2 ns clock, 8 GB of main
// memory, and a 4 GB XMU (Table 2).
func Benchmarked() Config {
	c := NewConfig(32, 1)
	c.ClockNS = 9.2
	return c
}

// BenchmarkedSingleCPU returns a single processor of the benchmarked
// system, used for the SX-4/1 kernel results (Figures 5-7, Table 3).
func BenchmarkedSingleCPU() Config {
	c := Benchmarked()
	// Kernel benchmarks ran on one CPU of the 32-CPU node.
	return c
}

// ClockHz returns the clock frequency in Hertz.
func (c Config) ClockHz() float64 { return 1e9 / c.ClockNS }

// PeakFlopsPerCPU returns the peak floating-point rate of one processor
// in flops/s: concurrent add and multiply pipe sets, 8 pipes each.
func (c Config) PeakFlopsPerCPU() float64 {
	return float64(2*c.VectorPipes) * c.ClockHz()
}

// PeakFlops returns the peak rate of the whole configuration.
func (c Config) PeakFlops() float64 {
	return c.PeakFlopsPerCPU() * float64(c.CPUs*c.Nodes)
}

// PortBytesPerSec returns the per-CPU memory port bandwidth in bytes/s.
func (c Config) PortBytesPerSec() float64 {
	return float64(c.PortWordsPerClock*8) * c.ClockHz()
}

// NodeMemoryBytesPerSec returns the per-node sustainable memory
// bandwidth in bytes/s (512 GB/s for a 32-CPU node at 8 ns).
func (c Config) NodeMemoryBytesPerSec() float64 {
	return float64(c.NodeWordsPerClock*8) * c.ClockHz()
}

// TotalCPUs returns the number of processors across all nodes.
func (c Config) TotalCPUs() int { return c.CPUs * c.Nodes }

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.ClockNS <= 0:
		return fmt.Errorf("sx4: non-positive clock %v", c.ClockNS)
	case c.CPUs < 1 || c.CPUs > 32:
		return fmt.Errorf("sx4: cpus %d out of range [1,32]", c.CPUs)
	case c.Nodes < 1 || c.Nodes > 16:
		return fmt.Errorf("sx4: nodes %d out of range [1,16]", c.Nodes)
	case c.VectorPipes <= 0 || c.VectorRegElems <= 0:
		return fmt.Errorf("sx4: invalid vector unit geometry")
	case c.MemoryBanks <= 0 || c.BankBusyClocks <= 0:
		return fmt.Errorf("sx4: invalid memory system")
	case c.PortWordsPerClock <= 0 || c.NodeWordsPerClock <= 0:
		return fmt.Errorf("sx4: invalid bandwidth limits")
	}
	return nil
}
