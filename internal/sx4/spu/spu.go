// Package spu models the SX-4's superscalar scalar unit (Figure 4 of
// the paper): a RISC core issuing up to two instructions per clock
// (actually 1-4 in a given clock to service instruction states), with
// 64 KB data and instruction caches, an 8 KB instruction buffer,
// branch prediction, data prefetching and out-of-order execution. All
// instructions — including vector ones — issue through this unit; it
// is also the unit HINT-style scalar workloads exercise.
package spu

import "fmt"

// Unit describes a scalar-unit configuration.
type Unit struct {
	// IssuePerClock is the sustained issue width (2 on the SX-4; the
	// issue stage can initiate 1-4 in any given clock).
	IssuePerClock float64
	// DCacheKB and ICacheKB are the cache sizes.
	DCacheKB, ICacheKB int
	// CacheWordsPerClock is the data-cache bandwidth.
	CacheWordsPerClock float64
	// MissPenaltyClocks is the main-memory load penalty; prefetching
	// hides part of it for regular streams (PrefetchCover).
	MissPenaltyClocks float64
	PrefetchCover     float64 // fraction of miss penalty hidden on streams
	// Branch prediction: penalty per mispredicted branch and the
	// predictor's accuracy.
	BranchPenaltyClocks float64
	PredictAccuracy     float64
}

// NewSX4 returns the SX-4 scalar unit.
func NewSX4() Unit {
	return Unit{
		IssuePerClock:       2,
		DCacheKB:            64,
		ICacheKB:            64,
		CacheWordsPerClock:  2,
		MissPenaltyClocks:   30,
		PrefetchCover:       0.5,
		BranchPenaltyClocks: 6,
		PredictAccuracy:     0.85,
	}
}

// Validate reports configuration errors.
func (u Unit) Validate() error {
	if u.IssuePerClock <= 0 || u.CacheWordsPerClock <= 0 {
		return fmt.Errorf("spu: non-positive rates in %+v", u)
	}
	if u.PredictAccuracy < 0 || u.PredictAccuracy > 1 || u.PrefetchCover < 0 || u.PrefetchCover > 1 {
		return fmt.Errorf("spu: fractions out of [0,1] in %+v", u)
	}
	return nil
}

// Loop describes one scalar loop for timing.
type Loop struct {
	Iterations int
	// Per-iteration costs.
	Instructions float64 // non-memory instructions
	MemRefs      float64 // loads+stores
	Branches     float64 // conditional branches
	// WorkingSetBytes is the loop's data footprint; Streaming marks
	// regular (prefetchable) access.
	WorkingSetBytes int64
	Streaming       bool
}

// Clocks estimates the loop's execution time in scalar-unit clocks.
func (u Unit) Clocks(l Loop) float64 {
	if err := u.Validate(); err != nil {
		panic(err)
	}
	if l.Iterations <= 0 {
		return 0
	}
	issue := l.Instructions / u.IssuePerClock
	var mem float64
	if l.WorkingSetBytes <= int64(u.DCacheKB)*1024 {
		mem = l.MemRefs / u.CacheWordsPerClock
	} else {
		miss := u.MissPenaltyClocks
		if l.Streaming {
			miss *= 1 - u.PrefetchCover
		}
		mem = l.MemRefs * miss
	}
	branch := l.Branches * (1 - u.PredictAccuracy) * u.BranchPenaltyClocks
	return float64(l.Iterations) * (issue + mem + branch)
}

// MispredictCost returns the expected branch cost per branch.
func (u Unit) MispredictCost() float64 {
	return (1 - u.PredictAccuracy) * u.BranchPenaltyClocks
}
