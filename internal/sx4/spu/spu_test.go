package spu

import "testing"

func hintLikeLoop(iters int, wsBytes int64) Loop {
	return Loop{
		Iterations:      iters,
		Instructions:    40,
		MemRefs:         10,
		Branches:        4,
		WorkingSetBytes: wsBytes,
		Streaming:       false,
	}
}

func TestSX4UnitValid(t *testing.T) {
	if err := NewSX4().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := NewSX4()
	bad.IssuePerClock = 0
	if bad.Validate() == nil {
		t.Error("zero issue width accepted")
	}
	bad = NewSX4()
	bad.PredictAccuracy = 1.5
	if bad.Validate() == nil {
		t.Error("accuracy > 1 accepted")
	}
}

func TestCacheResidentFasterThanMemory(t *testing.T) {
	u := NewSX4()
	inCache := u.Clocks(hintLikeLoop(1000, 32<<10))
	outCache := u.Clocks(hintLikeLoop(1000, 4<<20))
	if inCache >= outCache {
		t.Errorf("cache-resident loop (%v) should beat memory-bound (%v)", inCache, outCache)
	}
	if outCache < 3*inCache {
		t.Errorf("memory penalty too mild: %v vs %v", outCache, inCache)
	}
}

func TestPrefetchHelpsStreams(t *testing.T) {
	u := NewSX4()
	random := hintLikeLoop(1000, 4<<20)
	stream := random
	stream.Streaming = true
	if u.Clocks(stream) >= u.Clocks(random) {
		t.Error("prefetching should reduce streaming-miss cost")
	}
}

func TestBranchPredictionMatters(t *testing.T) {
	good := NewSX4()
	bad := NewSX4()
	bad.PredictAccuracy = 0
	l := hintLikeLoop(1000, 16<<10)
	if bad.Clocks(l) <= good.Clocks(l) {
		t.Error("worse predictor should cost more")
	}
	if got := good.MispredictCost(); got <= 0 || got >= good.BranchPenaltyClocks {
		t.Errorf("mispredict cost %v out of range", got)
	}
}

func TestZeroIterationsFree(t *testing.T) {
	if NewSX4().Clocks(Loop{}) != 0 {
		t.Error("empty loop should cost nothing")
	}
}

func TestIssueWidthScales(t *testing.T) {
	wide := NewSX4()
	narrow := NewSX4()
	narrow.IssuePerClock = 1
	l := Loop{Iterations: 100, Instructions: 40, WorkingSetBytes: 1024}
	if narrow.Clocks(l) <= wide.Clocks(l) {
		t.Error("narrower issue should be slower")
	}
}
