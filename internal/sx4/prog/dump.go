package prog

import (
	"fmt"
	"io"
)

// Dump writes a human-readable listing of the program — the moral
// equivalent of the compiler's vectorization report, useful when
// calibrating a trace against the paper's descriptions.
func (p Program) Dump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "program %s: %d phases, %d flops, %d words\n",
		p.Name, len(p.Phases), p.Flops(), p.Words()); err != nil {
		return err
	}
	for pi, ph := range p.Phases {
		mode := "serial"
		if ph.Parallel {
			mode = "parallel"
		}
		if _, err := fmt.Fprintf(w, "  phase %d %q (%s, %d barriers", pi, ph.Name, mode, ph.Barriers); err != nil {
			return err
		}
		if ph.SerialClocks > 0 {
			if _, err := fmt.Fprintf(w, ", %.0f serial clocks", ph.SerialClocks); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, ")"); err != nil {
			return err
		}
		for li, l := range ph.Loops {
			if _, err := fmt.Fprintf(w, "    loop %d x%d:\n", li, l.Trips); err != nil {
				return err
			}
			for _, op := range l.Body {
				if err := dumpOp(w, op); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func dumpOp(w io.Writer, op Op) error {
	switch op.Class {
	case Scalar:
		_, err := fmt.Fprintf(w, "      scalar x%d\n", op.Count)
		return err
	case VIntrinsic:
		_, err := fmt.Fprintf(w, "      %-9s VL=%-7d %s\n", op.Class, op.VL, op.Intr)
		return err
	case VLoad, VStore:
		_, err := fmt.Fprintf(w, "      %-9s VL=%-7d stride=%d\n", op.Class, op.VL, op.Stride)
		return err
	case VGather, VScatter:
		_, err := fmt.Fprintf(w, "      %-9s VL=%-7d span=%d\n", op.Class, op.VL, op.Span)
		return err
	}
	fl := op.FlopsPerElem
	if fl == 0 {
		fl = 1
	}
	_, err := fmt.Fprintf(w, "      %-9s VL=%-7d flops/elem=%d\n", op.Class, op.VL, fl)
	return err
}
