package prog

import (
	"reflect"
	"testing"
)

func compileFixture() Program {
	return Program{
		Name: "fixture",
		Phases: []Phase{
			{
				Name:     "serial-setup",
				Parallel: false,
				Loops: []Loop{{Trips: 10, Body: []Op{
					{Class: Scalar, Count: 50},
				}}},
				SerialClocks: 1234,
			},
			{
				Name:     "zero-trip",
				Parallel: true,
				Loops:    []Loop{{Trips: 0, Body: []Op{{Class: VAdd, VL: 64}}}},
			},
			{
				Name:     "compute",
				Parallel: true,
				Loops: []Loop{
					{Trips: 64, Body: []Op{
						{Class: VLoad, VL: 256, Stride: 1},
						{Class: VMul, VL: 256, FlopsPerElem: 2},
						{Class: VStore, VL: 256, Stride: 2},
					}},
					{Trips: 8, Body: []Op{
						{Class: VGather, VL: 100, Span: 512},
						{Class: VIntrinsic, VL: 100, Intr: Exp},
					}},
				},
				Barriers: 1,
			},
		},
	}
}

func TestCompileStructure(t *testing.T) {
	p := compileFixture()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != p.Name {
		t.Errorf("Name = %q, want %q", c.Name, p.Name)
	}
	if c.Fingerprint != p.Fingerprint() {
		t.Errorf("Fingerprint = %#x, want %#x", c.Fingerprint, p.Fingerprint())
	}
	if c.Flops != p.Flops() || c.Words != p.Words() {
		t.Errorf("totals = (%d flops, %d words), want (%d, %d)",
			c.Flops, c.Words, p.Flops(), p.Words())
	}
	if got, want := len(c.Phases), len(p.Phases); got != want {
		t.Fatalf("len(Phases) = %d, want %d", got, want)
	}
	// Zero-trip loops are compiled out of the executable loop set but
	// still counted in the phase totals.
	if got := c.Phases[1].Loops.Len(); got != 0 {
		t.Errorf("zero-trip phase compiled %d loops, want 0", got)
	}
	if got, want := len(c.Loops), 3; got != want {
		t.Errorf("len(Loops) = %d, want %d", got, want)
	}
	for i, ph := range c.Phases {
		src := p.Phases[i]
		if ph.Name != src.Name || ph.Parallel != src.Parallel ||
			ph.Barriers != src.Barriers || ph.SerialClocks != src.SerialClocks {
			t.Errorf("phase %d fields differ: %+v vs source %+v", i, ph, src)
		}
		if ph.Flops != src.Flops() {
			t.Errorf("phase %d Flops = %d, want %d", i, ph.Flops, src.Flops())
		}
		var words int64
		for _, l := range src.Loops {
			words += l.Words()
		}
		if ph.Words != words {
			t.Errorf("phase %d Words = %d, want %d", i, ph.Words, words)
		}
	}
	// Bodies round-trip through the flat op array.
	compute := c.Phases[2]
	loops := c.PhaseLoops(compute)
	if len(loops) != 2 {
		t.Fatalf("compute phase has %d loops, want 2", len(loops))
	}
	if !reflect.DeepEqual(c.Body(loops[0]), p.Phases[2].Loops[0].Body) {
		t.Errorf("loop 0 body differs: %v", c.Body(loops[0]))
	}
	if !reflect.DeepEqual(c.Body(loops[1]), p.Phases[2].Loops[1].Body) {
		t.Errorf("loop 1 body differs: %v", c.Body(loops[1]))
	}
	for _, l := range loops {
		if l.Trips <= 0 {
			t.Errorf("compiled loop with Trips = %d", l.Trips)
		}
	}
}

func TestCompileInvalid(t *testing.T) {
	bad := Simple("bad", 10, Op{Class: VAdd, VL: 0})
	if _, err := Compile(bad); err == nil {
		t.Error("Compile accepted an invalid program")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on an invalid program")
		}
	}()
	MustCompile(bad)
}

func TestCompileEmpty(t *testing.T) {
	c, err := Compile(Program{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Phases) != 0 || len(c.Loops) != 0 || len(c.Ops) != 0 {
		t.Errorf("empty program compiled to %d/%d/%d phases/loops/ops",
			len(c.Phases), len(c.Loops), len(c.Ops))
	}
	if c.Flops != 0 || c.Words != 0 {
		t.Errorf("empty program totals: %d flops, %d words", c.Flops, c.Words)
	}
}

// TestCompileSharesNoState: compiling twice yields independent values
// that agree field for field (the compiled form is a pure function of
// the program).
func TestCompileDeterministic(t *testing.T) {
	p := compileFixture()
	a := MustCompile(p)
	b := MustCompile(p.Clone())
	if !reflect.DeepEqual(a, b) {
		t.Error("Compile is not deterministic across a program clone")
	}
}
