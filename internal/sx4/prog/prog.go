// Package prog defines the operation-trace intermediate representation
// executed by the sx4 machine model.
//
// A Program is a sequence of Phases. Each Phase is either serial or
// parallel (its loop trips are divided among the processors assigned to
// the run) and contains vectorized loop nests. Each Loop executes its
// body Ops once per trip; an Op names a resource class (a vector pipe
// set, the memory port, a vectorized intrinsic, or scalar work), a
// vector length, and an access pattern for memory operations.
//
// Benchmarks build Programs analytically from their loop structure; the
// numerical packages cross-check the analytic flop counts against
// instrumented counters in their tests.
package prog

import "fmt"

// Class identifies the resource a vector operation occupies.
type Class int

const (
	// VAdd occupies the add/shift pipe set (1 flop per element).
	VAdd Class = iota
	// VMul occupies the multiply pipe set (1 flop per element).
	VMul
	// VDiv occupies the divide pipe set; a divide sustains fewer
	// elements per clock than add/multiply.
	VDiv
	// VLogical occupies the logical/mask pipe set (0 flops).
	VLogical
	// VLoad is a strided vector load (Stride field applies).
	VLoad
	// VStore is a strided vector store.
	VStore
	// VGather is an indirect (list-vector) load.
	VGather
	// VScatter is an indirect (list-vector) store.
	VScatter
	// VIntrinsic is a vectorized elementary function (Intr field).
	VIntrinsic
	// Scalar is non-vectorizable work measured in scalar instructions
	// per trip (VL is ignored; Count holds the instruction count).
	Scalar
)

var classNames = [...]string{
	"vadd", "vmul", "vdiv", "vlogical",
	"vload", "vstore", "vgather", "vscatter",
	"vintrinsic", "scalar",
}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// IsMemory reports whether the class moves data through the memory port.
func (c Class) IsMemory() bool {
	return c == VLoad || c == VStore || c == VGather || c == VScatter
}

// IsIndirect reports whether the class is list-vector access.
func (c Class) IsIndirect() bool { return c == VGather || c == VScatter }

// Intrinsic identifies a vectorized elementary function.
type Intrinsic int

const (
	Exp Intrinsic = iota
	Log
	Pow
	Sin
	Cos
	Sqrt
	numIntrinsics
)

var intrNames = [...]string{"EXP", "LOG", "PWR", "SIN", "COS", "SQRT"}

func (i Intrinsic) String() string {
	if i < 0 || int(i) >= len(intrNames) {
		return fmt.Sprintf("intrinsic(%d)", int(i))
	}
	return intrNames[i]
}

// NumIntrinsics is the number of modeled intrinsic functions.
const NumIntrinsics = int(numIntrinsics)

// IntrinsicFlops gives the "Cray Y-MP equivalent" flop weight assigned
// to one call of each intrinsic, following the hardware-monitor
// convention the paper's MFLOPS figures use. The weights approximate
// the operation count of the Cray scientific library routines.
var IntrinsicFlops = [NumIntrinsics]int{
	Exp:  12,
	Log:  12,
	Pow:  25,
	Sin:  14,
	Cos:  14,
	Sqrt: 8,
}

// Op is one operation in a loop body, executed once per loop trip.
type Op struct {
	Class Class
	// VL is the vector length of the operation (elements per trip).
	// Lengths above the machine strip length are strip-mined by the
	// engine. Ignored for Scalar ops.
	VL int
	// Stride is the element stride for VLoad/VStore (1 = contiguous).
	Stride int
	// Span is the index working-set size for gather/scatter (elements
	// addressable by the index vector); 0 means "large".
	Span int
	// Intr selects the function for VIntrinsic ops.
	Intr Intrinsic
	// Count is the scalar instruction count per trip for Scalar ops.
	Count int
	// FlopsPerElem overrides the default flop weight of the class when
	// positive (e.g. a fused multiply-add loop body accounted as one
	// op). The default is 1 for VAdd/VMul/VDiv, the IntrinsicFlops
	// weight for VIntrinsic, and 0 otherwise.
	FlopsPerElem int
}

// Flops returns the flop count contributed by one trip of the op.
func (o Op) Flops() int64 {
	per := o.FlopsPerElem
	if per == 0 {
		switch o.Class {
		case VAdd, VMul, VDiv:
			per = 1
		case VIntrinsic:
			per = IntrinsicFlops[o.Intr]
		default:
			per = 0
		}
	}
	if o.Class == Scalar {
		return int64(per)
	}
	return int64(per) * int64(o.VL)
}

// Words returns the number of 64-bit words moved through the memory
// port by one trip of the op.
func (o Op) Words() int64 {
	if !o.Class.IsMemory() {
		return 0
	}
	w := int64(o.VL)
	if o.Class.IsIndirect() {
		// The index vector itself is loaded through the port.
		w += int64(o.VL)
	}
	return w
}

// Loop is a vectorized loop nest: the body executes once per trip.
type Loop struct {
	Trips int64
	Body  []Op
}

// Flops returns the total flops executed by the loop.
func (l Loop) Flops() int64 {
	var f int64
	for _, op := range l.Body {
		f += op.Flops()
	}
	return f * l.Trips
}

// Words returns the total memory-port words moved by the loop.
func (l Loop) Words() int64 {
	var w int64
	for _, op := range l.Body {
		w += op.Words()
	}
	return w * l.Trips
}

// Phase is a region of a program between synchronization points.
type Phase struct {
	// Name labels the phase in reports ("fft", "legendre", ...).
	Name string
	// Parallel phases divide loop trips among the run's processors;
	// serial phases execute on one processor while others wait.
	Parallel bool
	// Loops are executed in sequence within the phase.
	Loops []Loop
	// Barriers is the number of communication-register barriers
	// executed at the end of the phase (0 for serial phases is
	// typical; parallel phases usually end in one).
	Barriers int
	// SerialClocks adds fixed scalar work (e.g. I/O setup) to the
	// phase, not divided among processors.
	SerialClocks float64
}

// Flops returns the total flops of the phase.
func (p Phase) Flops() int64 {
	var f int64
	for _, l := range p.Loops {
		f += l.Flops()
	}
	return f
}

// Program is a complete operation trace.
type Program struct {
	Name   string
	Phases []Phase
}

// Flops returns the program's total flop count.
func (p Program) Flops() int64 {
	var f int64
	for _, ph := range p.Phases {
		f += ph.Flops()
	}
	return f
}

// Words returns the program's total memory words moved.
func (p Program) Words() int64 {
	var w int64
	for _, ph := range p.Phases {
		for _, l := range ph.Loops {
			w += l.Words()
		}
	}
	return w
}

// Bytes returns the program's memory traffic in bytes (64-bit words).
func (p Program) Bytes() int64 { return 8 * p.Words() }

// Clone returns a structurally identical deep copy: no slice is shared
// with the receiver. Clones fingerprint and execute identically to the
// original, which is what the differential verification suite uses to
// check fingerprint/run-cache coherence.
func (p Program) Clone() Program {
	out := Program{Name: p.Name}
	if p.Phases == nil {
		return out
	}
	out.Phases = make([]Phase, len(p.Phases))
	for i, ph := range p.Phases {
		cp := ph
		if ph.Loops != nil {
			cp.Loops = make([]Loop, len(ph.Loops))
			for j, l := range ph.Loops {
				cl := l
				if l.Body != nil {
					cl.Body = append([]Op(nil), l.Body...)
				}
				cp.Loops[j] = cl
			}
		}
		out.Phases[i] = cp
	}
	return out
}

// Simple wraps a single parallel phase with one loop, a common case for
// kernels.
func Simple(name string, trips int64, body ...Op) Program {
	return Program{
		Name: name,
		Phases: []Phase{{
			Name:     name,
			Parallel: true,
			Loops:    []Loop{{Trips: trips, Body: body}},
		}},
	}
}

// Validate checks structural invariants of the program.
func (p Program) Validate() error {
	for i, ph := range p.Phases {
		for j, l := range ph.Loops {
			if l.Trips < 0 {
				return fmt.Errorf("prog %q: phase %d loop %d: negative trips", p.Name, i, j)
			}
			for k, op := range l.Body {
				if op.Class != Scalar && op.VL <= 0 {
					return fmt.Errorf("prog %q: phase %d loop %d op %d (%v): non-positive VL", p.Name, i, j, k, op.Class)
				}
				if op.Class == Scalar && op.Count <= 0 {
					return fmt.Errorf("prog %q: phase %d loop %d op %d: scalar op needs Count", p.Name, i, j, k)
				}
				if op.Class == VIntrinsic && (op.Intr < 0 || int(op.Intr) >= NumIntrinsics) {
					return fmt.Errorf("prog %q: phase %d loop %d op %d: bad intrinsic", p.Name, i, j, k)
				}
			}
		}
	}
	return nil
}
