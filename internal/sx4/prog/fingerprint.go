package prog

import "math"

// fpMix folds one 64-bit word into the hash: an xor followed by a
// SplitMix64-style finalizer, so every input bit diffuses across the
// whole state. Word-at-a-time mixing keeps Fingerprint cheap enough to
// compute on every Machine.Run call (the timing cache recomputes it
// once per lookup, including the KTRIES repeats).
func fpMix(h, v uint64) uint64 {
	h ^= v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func fpString(h uint64, s string) uint64 {
	h = fpMix(h, uint64(len(s)))
	var w uint64
	for i := 0; i < len(s); i++ {
		w = w<<8 | uint64(s[i])
		if i%8 == 7 {
			h = fpMix(h, w)
			w = 0
		}
	}
	if len(s)%8 != 0 {
		h = fpMix(h, w)
	}
	return h
}

// Fingerprint returns a 64-bit hash of the complete program structure:
// the name, every phase's parallelism, barrier and serial-clock fields,
// and every op of every loop body. Two programs with the same
// fingerprint execute identically on a given machine, which is what
// lets the machine model memoize trace timings (see the timing cache
// in package sx4).
func (p Program) Fingerprint() uint64 {
	h := uint64(0xcbf29ce484222325)
	h = fpString(h, p.Name)
	h = fpMix(h, uint64(len(p.Phases)))
	for _, ph := range p.Phases {
		h = fpString(h, ph.Name)
		var par uint64
		if ph.Parallel {
			par = 1
		}
		h = fpMix(h, par)
		h = fpMix(h, uint64(ph.Barriers))
		h = fpMix(h, math.Float64bits(ph.SerialClocks))
		h = fpMix(h, uint64(len(ph.Loops)))
		for _, l := range ph.Loops {
			h = fpMix(h, uint64(l.Trips))
			h = fpMix(h, uint64(len(l.Body)))
			for _, op := range l.Body {
				h = fpMix(h, uint64(op.Class))
				h = fpMix(h, uint64(op.VL))
				h = fpMix(h, uint64(int64(op.Stride)))
				h = fpMix(h, uint64(op.Span))
				h = fpMix(h, uint64(op.Intr))
				h = fpMix(h, uint64(op.Count))
				h = fpMix(h, uint64(op.FlopsPerElem))
			}
		}
	}
	return h
}
