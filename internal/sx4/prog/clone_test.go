package prog

import (
	"reflect"
	"testing"
)

func cloneFixture() Program {
	return Program{
		Name: "fixture",
		Phases: []Phase{
			{Name: "a", Parallel: true, Barriers: 1, Loops: []Loop{
				{Trips: 10, Body: []Op{
					{Class: VLoad, VL: 256, Stride: 1},
					{Class: VAdd, VL: 256},
					{Class: VStore, VL: 256, Stride: 2},
				}},
			}},
			{Name: "b", SerialClocks: 100, Loops: []Loop{
				{Trips: 3, Body: []Op{{Class: Scalar, Count: 40}}},
			}},
		},
	}
}

func TestCloneEqualAndIndependent(t *testing.T) {
	p := cloneFixture()
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatalf("clone differs:\n%+v\n%+v", p, c)
	}
	if p.Fingerprint() != c.Fingerprint() {
		t.Error("clone fingerprints differ")
	}
	c.Phases[0].Loops[0].Body[1].VL = 7
	c.Phases[1].Loops[0].Trips = 99
	if p.Phases[0].Loops[0].Body[1].VL != 256 || p.Phases[1].Loops[0].Trips != 3 {
		t.Error("mutating the clone mutated the original: slices shared")
	}
	if p.Fingerprint() == c.Fingerprint() {
		t.Error("structural mutation did not change the fingerprint")
	}
}

func TestCloneEmpty(t *testing.T) {
	var p Program
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Errorf("zero-value clone differs: %+v vs %+v", p, c)
	}
	if p.Fingerprint() != c.Fingerprint() {
		t.Error("zero-value fingerprints differ")
	}
}
