package prog

import "testing"

func TestFingerprintDeterministic(t *testing.T) {
	p := Simple("fp", 10,
		Op{Class: VLoad, VL: 100, Stride: 1},
		Op{Class: VMul, VL: 100},
	)
	q := Simple("fp", 10,
		Op{Class: VLoad, VL: 100, Stride: 1},
		Op{Class: VMul, VL: 100},
	)
	if p.Fingerprint() != q.Fingerprint() {
		t.Error("structurally identical programs fingerprint differently")
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	base := Simple("fp", 10, Op{Class: VLoad, VL: 100, Stride: 1})
	variants := []Program{
		Simple("fp2", 10, Op{Class: VLoad, VL: 100, Stride: 1}),  // name
		Simple("fp", 11, Op{Class: VLoad, VL: 100, Stride: 1}),   // trips
		Simple("fp", 10, Op{Class: VLoad, VL: 101, Stride: 1}),   // VL
		Simple("fp", 10, Op{Class: VLoad, VL: 100, Stride: 2}),   // stride
		Simple("fp", 10, Op{Class: VStore, VL: 100, Stride: 1}),  // class
		Simple("fp", 10, Op{Class: VGather, VL: 100, Span: 100}), // span
	}
	seen := map[uint64]int{base.Fingerprint(): -1}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %d collides with %d", i, prev)
		}
		seen[fp] = i
	}

	// Field boundaries must not smear: a phase with SerialClocks=1 and
	// Barriers=0 differs from Barriers=1, SerialClocks=0.
	a := Program{Name: "x", Phases: []Phase{{Name: "p", Barriers: 1}}}
	b := Program{Name: "x", Phases: []Phase{{Name: "p", SerialClocks: 1}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("barrier/serial-clock fields collide")
	}
}
