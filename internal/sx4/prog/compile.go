package prog

// Compiled is the flattened, phase-indexed form of a Program: every
// phase, loop and op of the trace laid out in three contiguous arrays,
// with the aggregate counts (flops, words) and the structure-covering
// fingerprint computed once at compile time. A machine model walking a
// Compiled trace touches O(phases + loops) flat slice elements instead
// of re-deriving per-op state on every Run, and never re-validates or
// re-fingerprints the program.
//
// Compilation is purely structural — nothing machine-specific enters —
// so one Compiled is valid for every target. The concrete machines
// layer their configuration-dependent per-loop timing invariants on
// top (see the compiled-timing caches in internal/sx4 and
// internal/machine), keyed by the fingerprint recorded here.
//
// A Compiled is immutable after Compile returns and safe to share
// across goroutines.
type Compiled struct {
	// Name is the source program's name.
	Name string
	// Fingerprint is the source program's structure hash
	// (Program.Fingerprint), computed once.
	Fingerprint uint64
	// Phases, Loops and Ops are the flattened trace: each phase spans a
	// contiguous range of Loops, each loop a contiguous range of Ops.
	Phases []CompiledPhase
	Loops  []CompiledLoop
	Ops    []Op
	// Flops and Words are the program totals (Program.Flops/Words).
	Flops int64
	Words int64
}

// Span is a half-open index range [Lo, Hi) into one of the flat arrays.
type Span struct{ Lo, Hi int }

// Len returns the number of indices the span covers.
func (s Span) Len() int { return s.Hi - s.Lo }

// CompiledPhase is one phase of a compiled trace.
type CompiledPhase struct {
	Name         string
	Parallel     bool
	Barriers     int
	SerialClocks float64
	// Flops and Words are the phase totals over every loop, including
	// zero-trip loops (which contribute zero), exactly as the
	// interpreted engine accumulates them.
	Flops int64
	Words int64
	// Loops indexes the phase's loops in Compiled.Loops. Zero-trip
	// loops are compiled out: their cost and totals are identically
	// zero, so the executed loop set carries Trips > 0 only.
	Loops Span
}

// CompiledLoop is one executable (Trips > 0) loop of a compiled trace.
type CompiledLoop struct {
	Trips int64
	// Flops and Words are the loop totals across all trips.
	Flops int64
	Words int64
	// Ops indexes the loop body in Compiled.Ops.
	Ops Span
}

// Body returns the loop's op slice.
func (c *Compiled) Body(l CompiledLoop) []Op { return c.Ops[l.Ops.Lo:l.Ops.Hi] }

// PhaseLoops returns the phase's executable loops.
func (c *Compiled) PhaseLoops(ph CompiledPhase) []CompiledLoop {
	return c.Loops[ph.Loops.Lo:ph.Loops.Hi]
}

// Compile flattens the program into its phase-indexed form. The
// program is validated first; an invalid program returns the
// Validate error and a nil Compiled.
func Compile(p Program) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		Name:        p.Name,
		Fingerprint: p.Fingerprint(),
		Phases:      make([]CompiledPhase, 0, len(p.Phases)),
	}
	// Size the flat arrays exactly so compilation allocates once per
	// array and the spans index preallocated backing storage.
	var nLoops, nOps int
	for _, ph := range p.Phases {
		for _, l := range ph.Loops {
			if l.Trips > 0 {
				nLoops++
				nOps += len(l.Body)
			}
		}
	}
	c.Loops = make([]CompiledLoop, 0, nLoops)
	c.Ops = make([]Op, 0, nOps)

	for _, ph := range p.Phases {
		cp := CompiledPhase{
			Name:         ph.Name,
			Parallel:     ph.Parallel,
			Barriers:     ph.Barriers,
			SerialClocks: ph.SerialClocks,
			Loops:        Span{Lo: len(c.Loops)},
		}
		for _, l := range ph.Loops {
			cp.Flops += l.Flops()
			cp.Words += l.Words()
			if l.Trips <= 0 {
				continue
			}
			cl := CompiledLoop{
				Trips: l.Trips,
				Flops: l.Flops(),
				Words: l.Words(),
				Ops:   Span{Lo: len(c.Ops)},
			}
			c.Ops = append(c.Ops, l.Body...)
			cl.Ops.Hi = len(c.Ops)
			c.Loops = append(c.Loops, cl)
		}
		cp.Loops.Hi = len(c.Loops)
		c.Phases = append(c.Phases, cp)
		c.Flops += cp.Flops
		c.Words += cp.Words
	}
	return c, nil
}

// MustCompile is Compile for programs known to be valid; it panics on
// error, mirroring the interpreted engine's panic on an invalid trace.
func MustCompile(p Program) *Compiled {
	c, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return c
}
