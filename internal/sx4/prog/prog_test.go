package prog

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpFlopsDefaults(t *testing.T) {
	cases := []struct {
		op   Op
		want int64
	}{
		{Op{Class: VAdd, VL: 100}, 100},
		{Op{Class: VMul, VL: 100}, 100},
		{Op{Class: VDiv, VL: 50}, 50},
		{Op{Class: VLogical, VL: 100}, 0},
		{Op{Class: VLoad, VL: 100, Stride: 1}, 0},
		{Op{Class: VStore, VL: 100, Stride: 1}, 0},
		{Op{Class: VIntrinsic, VL: 10, Intr: Exp}, 10 * int64(IntrinsicFlops[Exp])},
		{Op{Class: VIntrinsic, VL: 10, Intr: Sqrt}, 10 * int64(IntrinsicFlops[Sqrt])},
		{Op{Class: VAdd, VL: 10, FlopsPerElem: 2}, 20},
		{Op{Class: Scalar, Count: 7, FlopsPerElem: 3}, 3},
	}
	for _, c := range cases {
		if got := c.op.Flops(); got != c.want {
			t.Errorf("%+v Flops() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestOpWords(t *testing.T) {
	cases := []struct {
		op   Op
		want int64
	}{
		{Op{Class: VLoad, VL: 100, Stride: 1}, 100},
		{Op{Class: VStore, VL: 100, Stride: 4}, 100},
		{Op{Class: VGather, VL: 100}, 200}, // data + index
		{Op{Class: VScatter, VL: 100}, 200},
		{Op{Class: VAdd, VL: 100}, 0},
		{Op{Class: Scalar, Count: 10}, 0},
	}
	for _, c := range cases {
		if got := c.op.Words(); got != c.want {
			t.Errorf("%+v Words() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestLoopAccounting(t *testing.T) {
	l := Loop{
		Trips: 10,
		Body: []Op{
			{Class: VLoad, VL: 64, Stride: 1},
			{Class: VMul, VL: 64},
			{Class: VAdd, VL: 64},
			{Class: VStore, VL: 64, Stride: 1},
		},
	}
	if got := l.Flops(); got != 10*128 {
		t.Errorf("Loop.Flops = %d, want 1280", got)
	}
	if got := l.Words(); got != 10*128 {
		t.Errorf("Loop.Words = %d, want 1280", got)
	}
}

func TestProgramTotals(t *testing.T) {
	p := Program{
		Name: "axpy",
		Phases: []Phase{
			{
				Name:     "main",
				Parallel: true,
				Loops: []Loop{{
					Trips: 4,
					Body: []Op{
						{Class: VLoad, VL: 256, Stride: 1},
						{Class: VLoad, VL: 256, Stride: 1},
						{Class: VMul, VL: 256},
						{Class: VAdd, VL: 256},
						{Class: VStore, VL: 256, Stride: 1},
					},
				}},
			},
			{Name: "tail", Loops: []Loop{{Trips: 1, Body: []Op{{Class: Scalar, Count: 5, FlopsPerElem: 2}}}}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := p.Flops(), int64(4*512+2); got != want {
		t.Errorf("Program.Flops = %d, want %d", got, want)
	}
	if got, want := p.Words(), int64(4*768); got != want {
		t.Errorf("Program.Words = %d, want %d", got, want)
	}
	if got, want := p.Bytes(), int64(8*4*768); got != want {
		t.Errorf("Program.Bytes = %d, want %d", got, want)
	}
}

func TestSimpleBuilder(t *testing.T) {
	p := Simple("copy", 100, Op{Class: VLoad, VL: 32, Stride: 1}, Op{Class: VStore, VL: 32, Stride: 1})
	if len(p.Phases) != 1 || !p.Phases[0].Parallel {
		t.Fatalf("Simple produced %+v, want one parallel phase", p.Phases)
	}
	if p.Phases[0].Loops[0].Trips != 100 {
		t.Errorf("trips = %d, want 100", p.Phases[0].Loops[0].Trips)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []Program{
		{Name: "neg", Phases: []Phase{{Loops: []Loop{{Trips: -1}}}}},
		{Name: "vl", Phases: []Phase{{Loops: []Loop{{Trips: 1, Body: []Op{{Class: VAdd, VL: 0}}}}}}},
		{Name: "scalar", Phases: []Phase{{Loops: []Loop{{Trips: 1, Body: []Op{{Class: Scalar}}}}}}},
		{Name: "intr", Phases: []Phase{{Loops: []Loop{{Trips: 1, Body: []Op{{Class: VIntrinsic, VL: 8, Intr: Intrinsic(99)}}}}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%q) = nil, want error", p.Name)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if VAdd.String() != "vadd" || VGather.String() != "vgather" || Scalar.String() != "scalar" {
		t.Error("unexpected class names")
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Error("out-of-range class should include its number")
	}
	if Exp.String() != "EXP" || Pow.String() != "PWR" {
		t.Error("unexpected intrinsic names")
	}
	if !strings.Contains(Intrinsic(99).String(), "99") {
		t.Error("out-of-range intrinsic should include its number")
	}
}

func TestMemoryClassPredicates(t *testing.T) {
	for _, c := range []Class{VLoad, VStore, VGather, VScatter} {
		if !c.IsMemory() {
			t.Errorf("%v.IsMemory() = false", c)
		}
	}
	for _, c := range []Class{VAdd, VMul, VDiv, VLogical, VIntrinsic, Scalar} {
		if c.IsMemory() {
			t.Errorf("%v.IsMemory() = true", c)
		}
	}
	if !VGather.IsIndirect() || !VScatter.IsIndirect() || VLoad.IsIndirect() {
		t.Error("IsIndirect misclassifies")
	}
}

func TestFlopsNonNegativeProperty(t *testing.T) {
	f := func(vl uint8, class uint8, fpe uint8) bool {
		op := Op{Class: Class(int(class) % 10), VL: int(vl) + 1, Count: 1, FlopsPerElem: int(fpe)}
		if op.Class == VIntrinsic {
			op.Intr = Exp
		}
		return op.Flops() >= 0 && op.Words() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	p := Program{
		Name: "demo",
		Phases: []Phase{
			{Name: "work", Parallel: true, Barriers: 1, Loops: []Loop{{
				Trips: 3,
				Body: []Op{
					{Class: VLoad, VL: 64, Stride: 2},
					{Class: VGather, VL: 32, Span: 100},
					{Class: VMul, VL: 64, FlopsPerElem: 4},
					{Class: VIntrinsic, VL: 64, Intr: Exp},
					{Class: Scalar, Count: 10},
				},
			}}},
			{Name: "tail", SerialClocks: 500},
		},
	}
	var b strings.Builder
	if err := p.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"program demo", "parallel", "serial", "stride=2",
		"span=100", "flops/elem=4", "EXP", "scalar x10", "500 serial clocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseFlopsSumsLoops(t *testing.T) {
	ph := Phase{Loops: []Loop{
		{Trips: 2, Body: []Op{{Class: VAdd, VL: 10}}},
		{Trips: 3, Body: []Op{{Class: VMul, VL: 10}}},
	}}
	if got := ph.Flops(); got != 50 {
		t.Errorf("Phase.Flops = %d, want 50", got)
	}
}
