package sx4

import (
	"fmt"
	"math"

	"sx4bench/internal/sx4/membank"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// DefaultIntrinsicClocks gives the sustained cost, in clocks per
// element, of the SUPER-UX vectorized math library functions on the
// SX-4. Library calls are dependent polynomial chains with range
// reduction, table lookups and masking, so — unlike simple vector
// arithmetic — they do not hide under concurrent pipe sets; the model
// charges them as serial time per element. The values are calibration
// constants chosen so that ELEFUNT rates land at realistic tens of
// millions of calls per second and RADABS lands near the paper's
// 865.9 Y-MP-equivalent MFLOPS.
var DefaultIntrinsicClocks = [prog.NumIntrinsics]float64{
	prog.Exp:  1.6,
	prog.Log:  1.7,
	prog.Pow:  3.8,
	prog.Sin:  1.5,
	prog.Cos:  1.5,
	prog.Sqrt: 0.75,
}

// divElemsPerClock returns the sustained element rate of the divide
// pipe set: a full-precision divide iterates, sustaining a quarter of
// the add/multiply rate (2 results per clock on the SX-4's 8 pipes).
func divElemsPerClock(pipes int) float64 { return float64(pipes) / 4.0 }

// The run vocabulary lives in the machine-agnostic package target (the
// leaf every execution layer shares); the aliases keep the historical
// sx4.RunOpts / sx4.Result spellings working unchanged.

// RunOpts controls one simulated execution.
type RunOpts = target.RunOpts

// PhaseTime reports the simulated cost of one program phase.
type PhaseTime = target.PhaseTime

// Result is the outcome of a simulated run.
type Result = target.Result

// Machine executes operation traces against an SX-4 configuration. It
// is safe for concurrent use: runs are pure functions of the (immutable
// after New) configuration, and the timing memo is concurrency-safe.
type Machine struct {
	cfg       Config
	mem       membank.System
	intrinsic [prog.NumIntrinsics]float64 // clocks per element

	fingerprint uint64       // configFingerprint(cfg), cache key part
	cache       *target.Memo // memoized trace timings; nil disables
	// progs caches compiled trace timings (see compiled.go) keyed by
	// program fingerprint; nil routes runs through the interpreted
	// engine.
	progs *target.FPCache[*compiledProgram]
}

// Machine implements target.Target.
var _ target.Target = (*Machine)(nil)

// New returns a machine for the given configuration.
func New(cfg Config) *Machine {
	m := &Machine{}
	if err := m.setConfig(cfg); err != nil {
		panic(err)
	}
	m.cache = target.NewMemo()
	m.progs = &target.FPCache[*compiledProgram]{}
	return m
}

// setConfig validates cfg and (re)derives every configuration-dependent
// field: the memory system, the intrinsic cost table, and the cache-key
// fingerprint. On error the machine is left unchanged.
func (m *Machine) setConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.cfg = cfg
	m.mem = membank.System{
		Banks:          cfg.MemoryBanks,
		BusyClocks:     cfg.BankBusyClocks,
		Pipes:          cfg.VectorPipes,
		StridedPenalty: cfg.StridedPenalty,
	}
	m.intrinsic = DefaultIntrinsicClocks
	if cfg.IntrinsicScale > 0 {
		for i := range m.intrinsic {
			m.intrinsic[i] *= cfg.IntrinsicScale
		}
	}
	m.fingerprint = configFingerprint(cfg)
	return nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Name returns the configuration name.
func (m *Machine) Name() string { return m.cfg.Name }

// Scalar returns the SX-4 scalar-path description: a superscalar unit
// with a 4-way set-associative data cache in front of the banked main
// memory (unlike the Crays, which have none).
func (m *Machine) Scalar() target.ScalarProfile {
	return target.ScalarProfile{
		ClockNS:            m.cfg.ClockNS,
		IssuePerClock:      float64(m.cfg.ScalarIssuePerClock),
		HasCache:           true,
		CacheWordsPerClock: 1,
		MemClocksPerWord:   8,
	}
}

// Spec returns the machine's specification sheet.
func (m *Machine) Spec() target.Spec {
	return target.Spec{
		CPUs:              m.cfg.CPUs,
		Nodes:             m.cfg.Nodes,
		ClockNS:           m.cfg.ClockNS,
		PeakMFLOPSPerCPU:  m.cfg.PeakFlopsPerCPU() / 1e6,
		DiskBytesPerSec:   m.cfg.DiskBytesPerSec,
		VectorPipes:       m.cfg.VectorPipes,
		PortWordsPerClock: m.cfg.PortWordsPerClock,
		MainMemoryGB:      m.cfg.MainMemoryGB,
		XMUGB:             m.cfg.XMUGB,
		DiskCapacityGB:    m.cfg.DiskCapacityGB,
		PowerKVA:          m.cfg.PowerKVA,
	}
}

// Fingerprint returns the configuration fingerprint (the timing-memo
// key component).
func (m *Machine) Fingerprint() uint64 { return m.fingerprint }

// Clone returns a fresh machine with the same configuration and a cold
// timing memo.
func (m *Machine) Clone() target.Target { return New(m.cfg) }

// tripCost is the resource usage of one trip of a loop body.
type tripCost struct {
	issue, add, mul, div, logical float64
	load, store                   float64 // pipe-busy clocks
	portWords                     float64 // words through the CPU port
	startup                       float64 // deepest one-time startup
	scalar                        float64
	intr                          float64 // serial intrinsic-library time
	memBusy                       float64 // load+store pipe busy (for contention scaling)
}

func (m *Machine) opCost(op prog.Op, c *tripCost) {
	cfg := &m.cfg
	pipes := float64(cfg.VectorPipes)
	strips := 1
	if op.Class != prog.Scalar && op.VL > cfg.VectorRegElems {
		strips = (op.VL + cfg.VectorRegElems - 1) / cfg.VectorRegElems
	}
	c.issue += 2 * float64(strips)
	vl := float64(op.VL)

	// Arithmetic ops with FlopsPerElem > 1 stand for that many pipe
	// operations per element, occupying the pipe set accordingly.
	weight := 1.0
	if op.FlopsPerElem > 1 {
		weight = float64(op.FlopsPerElem)
	}

	startup := float64(cfg.VectorStartupClocks)
	switch op.Class {
	case prog.VAdd:
		c.add += weight * vl / pipes
	case prog.VMul:
		c.mul += weight * vl / pipes
	case prog.VDiv:
		c.div += weight * vl / divElemsPerClock(cfg.VectorPipes)
	case prog.VLogical:
		c.logical += vl / pipes
	case prog.VLoad:
		f := m.mem.StrideFactor(op.Stride)
		c.load += vl * f / pipes
		c.portWords += vl
		startup = float64(cfg.MemStartupClocks)
	case prog.VStore:
		f := m.mem.StrideFactor(op.Stride)
		c.store += vl * f / pipes
		c.portWords += vl
		startup = float64(cfg.MemStartupClocks)
	case prog.VGather:
		f := m.mem.GatherFactor(cfg.GatherWordsPerClock, op.Span)
		c.load += vl * f / pipes
		c.portWords += 2 * vl // data + index vector
		startup = float64(cfg.MemStartupClocks)
	case prog.VScatter:
		f := m.mem.GatherFactor(cfg.GatherWordsPerClock, op.Span)
		c.store += vl * f / pipes
		c.portWords += 2 * vl
		startup = float64(cfg.MemStartupClocks)
	case prog.VIntrinsic:
		c.intr += vl * m.intrinsic[op.Intr]
		startup = float64(cfg.VectorStartupClocks) * 2 // library call chain
	case prog.Scalar:
		c.scalar += float64(op.Count) / float64(cfg.ScalarIssuePerClock)
		startup = 0
	}
	if s := startup * float64(strips) / math.Max(1, float64(strips)); s > c.startup {
		// startup is paid once per trip on the deepest chain; strip
		// boundaries refill but overlap with draining pipes.
		c.startup = s
	}
}

// tripClocks returns the clock count of one loop-body trip and the
// memory-pipe busy time within it.
func (m *Machine) tripClocks(body []prog.Op) tripCost {
	var c tripCost
	for _, op := range body {
		m.opCost(op, &c)
	}
	c.memBusy = math.Max(c.load, c.store)
	port := c.portWords / float64(m.cfg.PortWordsPerClock)
	if port > c.memBusy {
		c.memBusy = port
	}
	return c
}

func (c tripCost) clocks(loopOverhead float64, memFactor float64) float64 {
	mem := c.memBusy * memFactor
	t := c.issue
	for _, v := range []float64{c.add, c.mul, c.div, c.logical, mem, c.scalar} {
		if v > t {
			t = v
		}
	}
	// Intrinsic library time is a dependent chain: it does not overlap
	// the loop's other vector work.
	return t + c.intr + c.startup + loopOverhead
}

// memBound reports whether memory is the binding cost of the trip:
// the largest overlapped resource and bigger than the serial intrinsic
// time.
func (c tripCost) memBound() bool {
	return c.memBusy >= c.add && c.memBusy >= c.mul && c.memBusy >= c.div &&
		c.memBusy >= c.issue && c.memBusy >= c.intr && c.memBusy > 0
}

// Run simulates the program on the machine. Identical (program, opts)
// pairs are served from the timing memo after the first evaluation;
// memo misses execute the compiled trace (flattened once per program
// fingerprint, see compiled.go) unless the compiled path is disabled,
// in which case the interpreted engine below runs. All three routes
// are bit-identical.
func (m *Machine) Run(p prog.Program, opts RunOpts) Result {
	if m.cache == nil && m.progs == nil {
		return m.simulate(p, opts)
	}
	fp := p.Fingerprint()
	var k target.MemoKey
	if m.cache != nil {
		k = target.MemoKey{Config: m.fingerprint, Program: fp, Opts: opts}
		if r, ok := m.cache.Lookup(k); ok {
			return r
		}
	}
	var r Result
	if m.progs != nil {
		cp := m.progs.LoadOrStore(fp, func() *compiledProgram {
			return m.compile(prog.MustCompile(p))
		})
		r = m.runCompiled(cp, opts)
	} else {
		r = m.simulate(p, opts)
	}
	if m.cache != nil {
		m.cache.Store(k, r)
	}
	return r
}

// simulate evaluates the machine model by interpreting the trace,
// consulting neither the memo nor the compiled-trace cache: the
// differential oracle the compiled path is checked against.
func (m *Machine) simulate(p prog.Program, opts RunOpts) Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	procs := opts.Procs
	if procs <= 0 {
		procs = 1
	}
	if procs > m.cfg.CPUs {
		procs = m.cfg.CPUs
	}
	active := opts.ActiveCPUs
	if active < procs {
		active = procs
	}
	if active > m.cfg.CPUs {
		active = m.cfg.CPUs
	}

	res := Result{Program: p.Name, Procs: procs}
	if len(p.Phases) > 0 {
		res.Phases = make([]PhaseTime, 0, len(p.Phases))
	}
	for _, ph := range p.Phases {
		pt := m.phaseClocks(ph, procs, active)
		res.Clocks += pt.Clocks
		res.Flops += pt.Flops
		res.Words += pt.Words
		res.Phases = append(res.Phases, pt)
	}
	res.Seconds = res.Clocks * m.cfg.ClockNS * 1e-9
	return res
}

func (m *Machine) phaseClocks(ph prog.Phase, procs, active int) PhaseTime {
	pt := PhaseTime{Name: ph.Name, Flops: ph.Flops(), Serial: !ph.Parallel}
	execProcs := 1
	execActive := active
	if ph.Parallel {
		execProcs = procs
	} else if execActive < 1 {
		execActive = 1
	}

	for _, l := range ph.Loops {
		pt.Words += l.Words()
		if l.Trips == 0 {
			continue
		}
		c := m.tripClocks(l.Body)
		base := c.clocks(m.cfg.LoopOverheadClocks, 1)

		// Node-level memory contention: aggregate demand of the
		// concurrently streaming CPUs against the banked capacity.
		perCPUWordsPerClock := 0.0
		if base > 0 {
			perCPUWordsPerClock = c.portWords / base
		}
		streams := execProcs
		if execActive > streams {
			streams = execActive
		}
		demand := perCPUWordsPerClock * float64(streams)
		factor := m.mem.ContentionFactor(demand, m.mem.CapacityWordsPerClock())
		trip := c.clocks(m.cfg.LoopOverheadClocks, factor)
		// Cross-job interference: residual bank and crossbar conflicts
		// from the *other* jobs' CPUs sharing the node slow everything
		// slightly (the ensemble-test effect, Table 6). The job's own
		// allocation (procs), busy or idle, does not interfere with
		// itself beyond the demand term above.
		if other := execActive - procs; other > 0 && m.cfg.CPUs > 1 {
			trip *= 1 + m.cfg.InterferenceFrac*float64(other)/float64(m.cfg.CPUs-1)
		}
		if c.memBound() {
			pt.MemBound = true
		}

		trips := l.Trips
		if ph.Parallel && execProcs > 1 {
			trips = (l.Trips + int64(execProcs) - 1) / int64(execProcs)
		}
		pt.Clocks += float64(trips) * trip
	}
	if ph.Barriers > 0 && procs > 1 {
		pt.Clocks += float64(ph.Barriers) *
			(m.cfg.BarrierBaseClocks + m.cfg.BarrierPerCPUClocks*float64(procs))
	}
	pt.Clocks += ph.SerialClocks
	return pt
}

// Seconds converts clocks to seconds at the machine's cycle time.
func (m *Machine) Seconds(clocks float64) float64 {
	return clocks * m.cfg.ClockNS * 1e-9
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%.1f ns clock, %.1f GFLOPS peak)",
		m.cfg.Name, m.cfg.ClockNS, m.cfg.PeakFlops()/1e9)
}
