package ixs

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-node IXS accepted")
		}
	}()
	New(1)
}

func TestTransferTime(t *testing.T) {
	x := New(2)
	if x.TransferTime(0) != 0 {
		t.Error("zero transfer should be free")
	}
	// 8 GB at 8 GB/s ~ 1s.
	got := x.TransferTime(8e9)
	if got < 1.0 || got > 1.01 {
		t.Errorf("8 GB transfer = %v s, want ~1", got)
	}
}

func TestConcurrentRateCapsAtBisection(t *testing.T) {
	x := New(16)
	// Up to 16 concurrent pair transfers at 8 GB/s each = 128 GB/s,
	// exactly the bisection; more transfers share.
	if r := x.ConcurrentRate(8); r != x.PerNodeBytesPerSec {
		t.Errorf("8 transfers run at %v, want full channel rate", r)
	}
	r16 := x.ConcurrentRate(16)
	if r16 != x.PerNodeBytesPerSec {
		t.Errorf("16 transfers = %v, want channel rate (128 GB/s total)", r16)
	}
	r32 := x.ConcurrentRate(32)
	if r32 >= r16 {
		t.Errorf("oversubscribed crossbar should slow transfers: %v >= %v", r32, r16)
	}
	if agg := r32 * 32; agg > x.BisectionBytesPerSec*1.001 {
		t.Errorf("aggregate %v exceeds bisection", agg)
	}
}

func TestAllToAllScalesWithVolume(t *testing.T) {
	x := New(4)
	small := x.AllToAllTime(1 << 20)
	big := x.AllToAllTime(64 << 20)
	if big <= small {
		t.Errorf("bigger all-to-all should take longer: %v <= %v", big, small)
	}
	if x.AllToAllTime(0) != 0 {
		t.Error("empty all-to-all should be free")
	}
}

func TestBarrierCheap(t *testing.T) {
	x := New(16)
	if b := x.BarrierTime(); b <= 0 || b > 1e-3 {
		t.Errorf("global barrier = %v s, want microseconds", b)
	}
}

func TestMultiNodeEfficiency(t *testing.T) {
	x := New(4)
	// A big step with modest transpose volume parallelizes well...
	effBig := x.MultiNodeEfficiency(1.0, 64<<20)
	if effBig < 0.5 || effBig > 1 {
		t.Errorf("multinode efficiency for a 1 s step = %v, want [0.5, 1]", effBig)
	}
	// ...a tiny step is communication dominated.
	effSmall := x.MultiNodeEfficiency(1e-3, 64<<20)
	if effSmall >= effBig {
		t.Errorf("small step should be less efficient: %v >= %v", effSmall, effBig)
	}
}
