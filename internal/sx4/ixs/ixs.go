// Package ixs models the SX-4 internode crossbar (IXS): a fibre-channel
// connected non-blocking crossbar joining up to 16 nodes, 8 GB/s per
// node channel in each direction, 128 GB/s of bisection bandwidth, with
// global hardware addressing and internode communications registers
// that give the multinode system a single system image.
package ixs

import (
	"fmt"
	"math"
)

// IXS describes the crossbar configuration.
type IXS struct {
	Nodes                int
	PerNodeBytesPerSec   float64 // each direction
	BisectionBytesPerSec float64
	LatencySec           float64
}

// New returns an IXS joining n nodes (2..16).
func New(n int) IXS {
	if n < 2 || n > 16 {
		panic(fmt.Sprintf("ixs: node count %d out of range [2,16]", n))
	}
	return IXS{
		Nodes:                n,
		PerNodeBytesPerSec:   8e9,
		BisectionBytesPerSec: 128e9,
		LatencySec:           2e-6,
	}
}

// TransferTime returns the time for one point-to-point transfer.
func (x IXS) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return x.LatencySec + float64(bytes)/x.PerNodeBytesPerSec
}

// ConcurrentRate returns the per-transfer rate when `transfers`
// disjoint node pairs communicate simultaneously: limited first by the
// per-node channels, then by the crossbar bisection.
func (x IXS) ConcurrentRate(transfers int) float64 {
	if transfers <= 0 {
		return 0
	}
	per := x.PerNodeBytesPerSec
	if agg := per * float64(transfers); agg > x.BisectionBytesPerSec {
		per = x.BisectionBytesPerSec / float64(transfers)
	}
	return per
}

// AllToAllTime returns the time for every node to send bytesPerPair to
// every other node (nodes*(nodes-1) messages), pipelined through the
// per-node channels and capped by the bisection.
func (x IXS) AllToAllTime(bytesPerPair int64) float64 {
	if bytesPerPair <= 0 {
		return 0
	}
	n := float64(x.Nodes)
	perNodeBytes := float64(bytesPerPair) * (n - 1)
	channelTime := perNodeBytes / x.PerNodeBytesPerSec
	totalBytes := float64(bytesPerPair) * n * (n - 1)
	// Roughly half of all-to-all traffic crosses the bisection.
	bisectionTime := totalBytes / 2 / x.BisectionBytesPerSec
	return x.LatencySec*math.Ceil(n-1) + math.Max(channelTime, bisectionTime)
}

// BarrierTime returns the cost of a global internode barrier through
// the IXS communications registers.
func (x IXS) BarrierTime() float64 {
	// A fetch-op fan-in/fan-out across the crossbar.
	return 2 * x.LatencySec * math.Ceil(math.Log2(float64(x.Nodes)))
}

// MultiNodeEfficiency estimates the parallel efficiency of spreading a
// latitude-decomposed spectral model across the nodes, given the
// per-step transpose volume in bytes and the single-node step time:
// the CCM2 multinode projection used as a forward-looking ablation.
func (x IXS) MultiNodeEfficiency(stepSeconds float64, transposeBytes int64) float64 {
	comm := x.AllToAllTime(transposeBytes / int64(x.Nodes*(x.Nodes-1)))
	perNode := stepSeconds/float64(x.Nodes) + comm + x.BarrierTime()
	ideal := stepSeconds / float64(x.Nodes)
	return ideal / perNode
}
