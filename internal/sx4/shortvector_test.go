package sx4

import (
	"fmt"
	"testing"

	"sx4bench/internal/sx4/prog"
)

// TestShortVectorBoundary sweeps vector lengths 1, 255, 256 and 257 —
// around the 256-element vector register — through Machine.Run and pins
// the startup-cost behaviour the paper describes: at VL=1 the fixed
// vector/memory startup dwarfs the streaming time (the short-vector
// cliff of Figure 5), amortization improves monotonically up to the
// register length, and crossing it strip-mines the loop into a second
// vector instruction.
func TestShortVectorBoundary(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	body := func(vl int) []prog.Op {
		return []prog.Op{
			{Class: prog.VLoad, VL: vl, Stride: 1},
			{Class: prog.VAdd, VL: vl},
			{Class: prog.VStore, VL: vl, Stride: 1},
		}
	}
	run := func(vl int) Result {
		return m.Run(prog.Simple(fmt.Sprintf("sv%d", vl), 1, body(vl)...), RunOpts{Procs: 1})
	}

	sweep := []int{1, 255, 256, 257}
	total := make(map[int]float64)  // clocks per trip
	perEl := make(map[int]float64)  // clocks per element
	strips := make(map[int]float64) // issue clocks, 2 per strip
	for _, vl := range sweep {
		r := run(vl)
		total[vl] = r.Clocks
		perEl[vl] = r.Clocks / float64(vl)
		c := m.tripClocks(body(vl))
		strips[vl] = c.issue
	}

	// Total time never decreases with vector length...
	for i := 1; i < len(sweep); i++ {
		lo, hi := sweep[i-1], sweep[i]
		if total[hi] < total[lo] {
			t.Errorf("total clocks decreased: VL=%d %.3f < VL=%d %.3f", hi, total[hi], lo, total[lo])
		}
	}
	// ...while per-element cost falls steeply as startup amortizes.
	if perEl[1] < 100*perEl[255] {
		t.Errorf("VL=1 per-element cost %.3f not >= 100x VL=255 cost %.3f: startup should dominate",
			perEl[1], perEl[255])
	}
	if !(perEl[255] > perEl[256]) {
		t.Errorf("per-element cost not improving toward the register length: VL=255 %.5f, VL=256 %.5f",
			perEl[255], perEl[256])
	}

	// The discontinuity: VL=255 and 256 fit one vector register, VL=257
	// strip-mines into a second vector instruction with its own issue
	// slot. This is the accounting a refactor of the strip-mining loop
	// could silently drop.
	if strips[255] != strips[256] {
		t.Errorf("issue cost differs inside one strip: VL=255 %.1f, VL=256 %.1f", strips[255], strips[256])
	}
	if strips[257] != 2*strips[256] {
		t.Errorf("VL=257 issue cost = %.1f, want exactly double VL=256's %.1f (second strip)",
			strips[257], strips[256])
	}
	if d256, d257 := total[256]-total[255], total[257]-total[256]; d257 < d256 {
		t.Errorf("marginal cost of element 257 (%.4f) below element 256's (%.4f): strip boundary lost",
			d257, d256)
	}

	// One full register is the sweet spot of the sawtooth: the paper's
	// codes (and the VFFT instance sweep) batch work at VL=256 because a
	// 257th element costs a whole extra instruction for one element of
	// work. Pin the per-element optimum ordering.
	if !(perEl[256] <= perEl[255] && perEl[256] <= perEl[1]) {
		t.Errorf("VL=256 is not the per-element optimum of the sweep: %v", perEl)
	}
}

// TestShortVectorStartupCharges pins the absolute startup accounting at
// the boundary lengths: one trip of a VL=1 memory op costs at least the
// configured memory-startup latency, and the VL=256 trip is within a
// small factor of the pure streaming time.
func TestShortVectorStartupCharges(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	cfg := m.Config()
	one := m.Run(prog.Simple("sv1", 1, prog.Op{Class: prog.VLoad, VL: 1, Stride: 1}), RunOpts{Procs: 1})
	if one.Clocks < float64(cfg.MemStartupClocks) {
		t.Errorf("VL=1 load took %.1f clocks, less than the %d-clock memory startup",
			one.Clocks, cfg.MemStartupClocks)
	}
	full := m.Run(prog.Simple("sv256", 1, prog.Op{Class: prog.VLoad, VL: 256, Stride: 1}), RunOpts{Procs: 1})
	stream := 256.0 / float64(cfg.VectorPipes)
	if full.Clocks < stream {
		t.Errorf("VL=256 load took %.1f clocks, below the %.1f-clock streaming floor", full.Clocks, stream)
	}
	if full.Clocks > 4*stream {
		t.Errorf("VL=256 load took %.1f clocks; startup should be mostly amortized by one register (floor %.1f)",
			full.Clocks, stream)
	}
}
