package sx4

import (
	"fmt"

	"sx4bench/internal/fault"
	"sx4bench/internal/target"
)

// Machine implements target.Degrader: the SX-4's node-level
// reconfiguration story. SUPER-UX configures failed components out and
// the node keeps running in a degraded mode; the model expresses that
// as a fresh machine with a reduced configuration.
var _ target.Degrader = (*Machine)(nil)

// Degraded returns a fresh machine reconfigured around the failed
// components:
//
//   - each lost CPU shrinks the node's processor count;
//   - each bank halving configures out half of the working memory
//     banks (and the node bandwidth behind them);
//   - each port halving halves the per-CPU crossbar port width;
//   - each stalled IOP is removed from the I/O subsystem.
//
// The result has its own configuration fingerprint, so the timing memo
// can never serve healthy timings for degraded runs, and it is never
// faster than the original on any trace (fewer resources, same work).
// A degradation that leaves no surviving CPU returns an error wrapping
// target.ErrMachineDown.
func (m *Machine) Degraded(d fault.Degradation) (target.Target, error) {
	cfg, err := degradedConfig(m.cfg, d)
	if err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// degradedConfig applies a degradation to a configuration; shared with
// the Cray comparator models in internal/machine.
func degradedConfig(cfg Config, d Degradation) (Config, error) {
	if d.CPUsLost >= cfg.CPUs {
		return Config{}, fmt.Errorf("sx4: %s: %d of %d CPUs failed: %w",
			cfg.Name, d.CPUsLost, cfg.CPUs, target.ErrMachineDown)
	}
	cfg.CPUs -= d.CPUsLost
	for i := 0; i < d.BankHalvings; i++ {
		cfg.MemoryBanks = halved(cfg.MemoryBanks)
		cfg.NodeWordsPerClock = halved(cfg.NodeWordsPerClock)
	}
	for i := 0; i < d.PortHalvings; i++ {
		cfg.PortWordsPerClock = halved(cfg.PortWordsPerClock)
	}
	if d.IOPsStalled > 0 {
		cfg.IOPs -= d.IOPsStalled
		if cfg.IOPs < 1 {
			cfg.IOPs = 1
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("sx4: degraded configuration invalid: %w", err)
	}
	return cfg, nil
}

// Degradation is the machine-level fault impact (see internal/fault);
// the alias keeps model-layer signatures free of a second import.
type Degradation = fault.Degradation

func halved(n int) int {
	if n <= 1 {
		return 1
	}
	return n / 2
}
