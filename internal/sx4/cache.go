package sx4

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"sx4bench/internal/sx4/prog"
)

// The machine model is a pure function: for a fixed configuration, a
// given (program, RunOpts) pair always simulates to the same Result.
// The experiment runners exploit no such thing on their own — the
// KTRIES best-of-k rule re-times every trace k times, and the tables
// and figures re-time the same COPY/IA/XPOSE/FFT traces at overlapping
// (N, M) points. The timing cache memoizes evaluations so each
// distinct trace is simulated once per machine; the jitter the KTRIES
// rule smooths is applied by core.Noise *outside* the simulation, so
// caching does not change any reported number.

// runKey identifies one memoizable evaluation.
type runKey struct {
	config  uint64 // configuration fingerprint
	program uint64 // prog.Program fingerprint
	opts    RunOpts
}

// CacheStats reports timing-cache effectiveness counters.
type CacheStats struct {
	Hits, Misses uint64
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate)",
		s.Hits, s.Misses, 100*s.HitRate())
}

// timingCache is a concurrency-safe memo of simulated results.
type timingCache struct {
	mu     sync.RWMutex
	m      map[runKey]Result
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newTimingCache() *timingCache {
	return &timingCache{m: make(map[runKey]Result)}
}

func (c *timingCache) lookup(k runKey) (Result, bool) {
	c.mu.RLock()
	r, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

func (c *timingCache) store(k runKey, r Result) {
	c.mu.Lock()
	c.m[k] = r
	c.mu.Unlock()
}

func (c *timingCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// configFingerprint hashes every field of the configuration. Any
// calibration change invalidates all cached timings (the invalidation
// rule: the key covers the whole config, the whole trace, and the
// RunOpts; there is nothing else a simulation depends on).
func configFingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// SetCache enables or disables timing memoization (enabled by default).
// Disabling also drops any cached entries; the counters persist.
func (m *Machine) SetCache(enabled bool) {
	if enabled {
		if m.cache == nil {
			m.cache = newTimingCache()
		}
		return
	}
	m.cache = nil
}

// CacheStats returns the machine's timing-cache counters. A machine
// with caching disabled reports zeros.
func (m *Machine) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.stats()
}

// copyResult returns a deep copy so cached Phases cannot be aliased by
// concurrent callers.
func copyResult(r Result) Result {
	out := r
	out.Phases = append([]PhaseTime(nil), r.Phases...)
	return out
}

// runCached consults the memo before simulating, and is safe for
// concurrent use.
func (m *Machine) runCached(p prog.Program, opts RunOpts) (Result, bool) {
	if m.cache == nil {
		return Result{}, false
	}
	k := runKey{config: m.fingerprint, program: p.Fingerprint(), opts: opts}
	if r, ok := m.cache.lookup(k); ok {
		return copyResult(r), true
	}
	r := m.simulate(p, opts)
	m.cache.store(k, copyResult(r))
	return r, true
}
