package sx4

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"sx4bench/internal/sx4/prog"
)

// The machine model is a pure function: for a fixed configuration, a
// given (program, RunOpts) pair always simulates to the same Result.
// The experiment runners exploit no such thing on their own — the
// KTRIES best-of-k rule re-times every trace k times, and the tables
// and figures re-time the same COPY/IA/XPOSE/FFT traces at overlapping
// (N, M) points. The timing cache memoizes evaluations so each
// distinct trace is simulated once per machine; the jitter the KTRIES
// rule smooths is applied by core.Noise *outside* the simulation, so
// caching does not change any reported number.

// runKey identifies one memoizable evaluation.
type runKey struct {
	config  uint64 // configuration fingerprint
	program uint64 // prog.Program fingerprint
	opts    RunOpts
}

// CacheStats reports timing-cache effectiveness counters.
type CacheStats struct {
	Hits, Misses uint64
	// Entries is the number of memoized results currently held. Every
	// held entry is keyed on the machine's current config fingerprint:
	// SetConfig and SetCache sweep out entries keyed on a stale one.
	Entries int
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries)
}

// timingCache is a concurrency-safe memo of simulated results.
type timingCache struct {
	mu     sync.RWMutex
	m      map[runKey]Result
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newTimingCache() *timingCache {
	return &timingCache{m: make(map[runKey]Result)}
}

func (c *timingCache) lookup(k runKey) (Result, bool) {
	c.mu.RLock()
	r, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

func (c *timingCache) store(k runKey, r Result) {
	c.mu.Lock()
	c.m[k] = r
	c.mu.Unlock()
}

func (c *timingCache) stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// dropStale deletes every memoized entry whose key carries a config
// fingerprint other than current. Such entries can never be looked up
// again (the current fingerprint is part of every future key), so after
// a reconfiguration they are pure dead weight — and, worse, a coherence
// hazard should the fingerprint field ever go stale alongside them.
func (c *timingCache) dropStale(current uint64) {
	c.mu.Lock()
	for k := range c.m {
		if k.config != current {
			delete(c.m, k)
		}
	}
	c.mu.Unlock()
}

// configFingerprint hashes every field of the configuration. Any
// calibration change invalidates all cached timings (the invalidation
// rule: the key covers the whole config, the whole trace, and the
// RunOpts; there is nothing else a simulation depends on).
func configFingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// SetConfig reconfigures the machine in place (the calibration-sweep
// API: one machine, many candidate configurations, no reallocation).
// All derived state — the memory system, the intrinsic cost table, the
// cache-key fingerprint — is rebuilt, and memoized timings keyed on the
// old configuration fingerprint are dropped so the memo can never serve
// a result simulated under a different configuration. An invalid cfg is
// returned as an error and leaves the machine unchanged.
//
// Like SetCache, SetConfig must not race with concurrent Run calls:
// configure first, then share.
func (m *Machine) SetConfig(cfg Config) error {
	if err := m.setConfig(cfg); err != nil {
		return err
	}
	if m.cache != nil {
		m.cache.dropStale(m.fingerprint)
	}
	return nil
}

// SetCache enables or disables timing memoization (enabled by default).
// Disabling also drops any cached entries; the counters persist.
// Re-enabling over a live cache keeps entries keyed on the machine's
// current config fingerprint and sweeps out any stale ones, so a warm
// cache stays coherent across reconfiguration (the SetConfig /
// SetCache(true) sequence in either order).
func (m *Machine) SetCache(enabled bool) {
	if enabled {
		if m.cache == nil {
			m.cache = newTimingCache()
			return
		}
		m.cache.dropStale(m.fingerprint)
		return
	}
	m.cache = nil
}

// CacheStats returns the machine's timing-cache counters. A machine
// with caching disabled reports zeros.
func (m *Machine) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.stats()
}

// copyResult returns a deep copy so cached Phases cannot be aliased by
// concurrent callers.
func copyResult(r Result) Result {
	out := r
	out.Phases = append([]PhaseTime(nil), r.Phases...)
	return out
}

// runCached consults the memo before simulating, and is safe for
// concurrent use.
func (m *Machine) runCached(p prog.Program, opts RunOpts) (Result, bool) {
	if m.cache == nil {
		return Result{}, false
	}
	k := runKey{config: m.fingerprint, program: p.Fingerprint(), opts: opts}
	if r, ok := m.cache.lookup(k); ok {
		return copyResult(r), true
	}
	r := m.simulate(p, opts)
	m.cache.store(k, copyResult(r))
	return r, true
}
