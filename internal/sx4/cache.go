package sx4

import (
	"fmt"
	"hash/fnv"

	"sx4bench/internal/target"
)

// The machine model is a pure function: for a fixed configuration, a
// given (program, RunOpts) pair always simulates to the same Result.
// Timing memoization therefore cannot change any reported number; see
// target.Memo (where the memo implementation lives, shared with the
// comparison-machine models) for the full rationale.

// CacheStats reports timing-cache effectiveness counters.
type CacheStats = target.CacheStats

// configFingerprint hashes every field of the configuration. Any
// calibration change invalidates all cached timings (the invalidation
// rule: the key covers the whole config, the whole trace, and the
// RunOpts; there is nothing else a simulation depends on).
func configFingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// SetConfig reconfigures the machine in place (the calibration-sweep
// API: one machine, many candidate configurations, no reallocation).
// All derived state — the memory system, the intrinsic cost table, the
// cache-key fingerprint — is rebuilt, and memoized timings keyed on the
// old configuration fingerprint are dropped so the memo can never serve
// a result simulated under a different configuration. An invalid cfg is
// returned as an error and leaves the machine unchanged.
//
// Like SetCache, SetConfig must not race with concurrent Run calls:
// configure first, then share.
func (m *Machine) SetConfig(cfg Config) error {
	if err := m.setConfig(cfg); err != nil {
		return err
	}
	if m.cache != nil {
		m.cache.DropStale(m.fingerprint)
	}
	// Compiled trace timings are configuration-dependent (trip costs,
	// stride factors, loop overhead); none survive a reconfiguration.
	if m.progs != nil {
		m.progs.Clear()
	}
	return nil
}

// SetCache enables or disables timing memoization (enabled by default).
// Disabling also drops any cached entries; the counters persist.
// Re-enabling over a live cache keeps entries keyed on the machine's
// current config fingerprint and sweeps out any stale ones, so a warm
// cache stays coherent across reconfiguration (the SetConfig /
// SetCache(true) sequence in either order).
func (m *Machine) SetCache(enabled bool) {
	if enabled {
		if m.cache == nil {
			m.cache = target.NewMemo()
			return
		}
		m.cache.DropStale(m.fingerprint)
		return
	}
	m.cache = nil
}

// CacheStats returns the machine's timing-cache counters. A machine
// with caching disabled reports zeros.
func (m *Machine) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.Stats()
}

