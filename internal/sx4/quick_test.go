package sx4

import (
	"testing"
	"testing/quick"

	"sx4bench/internal/sx4/prog"
)

// Property-based tests of the machine model's structural invariants.

func TestMoreTripsNeverFaster(t *testing.T) {
	m := New(Benchmarked())
	f := func(vl uint8, trips uint8) bool {
		n := int(vl)%1024 + 1
		tr := int64(trips) + 1
		p1 := prog.Simple("a", tr,
			prog.Op{Class: prog.VLoad, VL: n, Stride: 1},
			prog.Op{Class: prog.VMul, VL: n})
		p2 := prog.Simple("b", tr+1,
			prog.Op{Class: prog.VLoad, VL: n, Stride: 1},
			prog.Op{Class: prog.VMul, VL: n})
		return m.Run(p2, RunOpts{Procs: 1}).Seconds >= m.Run(p1, RunOpts{Procs: 1}).Seconds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreProcsNeverSlowerOnParallelWork(t *testing.T) {
	m := New(Benchmarked())
	f := func(seed uint8) bool {
		trips := int64(seed)*8 + 64
		p := prog.Simple("w", trips,
			prog.Op{Class: prog.VLoad, VL: 512, Stride: 1},
			prog.Op{Class: prog.VMul, VL: 512},
			prog.Op{Class: prog.VAdd, VL: 512},
			prog.Op{Class: prog.VStore, VL: 512, Stride: 1})
		prev := m.Run(p, RunOpts{Procs: 1}).Seconds
		for _, procs := range []int{2, 4, 8, 16, 32} {
			cur := m.Run(p, RunOpts{Procs: procs}).Seconds
			if cur > prev*1.0001 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLongerVectorsMoreEfficient(t *testing.T) {
	// Rate (flops/s) never decreases when the same total work is
	// reorganized into longer vectors.
	m := New(BenchmarkedSingleCPU())
	f := func(k uint8) bool {
		total := 1 << 16
		short := int(k)%64 + 1
		long := short * 4
		mkProg := func(vl int) prog.Program {
			return prog.Simple("v", int64(total/vl),
				prog.Op{Class: prog.VLoad, VL: vl, Stride: 1},
				prog.Op{Class: prog.VMul, VL: vl})
		}
		tShort := m.Run(mkProg(short), RunOpts{Procs: 1}).Seconds
		tLong := m.Run(mkProg(long), RunOpts{Procs: 1}).Seconds
		return tLong <= tShort*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterferenceNeverSpeedsUp(t *testing.T) {
	m := New(Benchmarked())
	p := prog.Simple("w", 256,
		prog.Op{Class: prog.VLoad, VL: 4096, Stride: 1},
		prog.Op{Class: prog.VAdd, VL: 4096},
		prog.Op{Class: prog.VStore, VL: 4096, Stride: 1})
	f := func(active uint8) bool {
		a := int(active)%29 + 4
		alone := m.Run(p, RunOpts{Procs: 4, ActiveCPUs: 4}).Seconds
		loaded := m.Run(p, RunOpts{Procs: 4, ActiveCPUs: a}).Seconds
		return loaded >= alone*0.9999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlopsIndependentOfProcs(t *testing.T) {
	// Parallelization changes time, never the operation count.
	m := New(Benchmarked())
	f := func(trips uint8, procs uint8) bool {
		p := prog.Simple("w", int64(trips)+1,
			prog.Op{Class: prog.VMul, VL: 100, FlopsPerElem: 3})
		r1 := m.Run(p, RunOpts{Procs: 1})
		r2 := m.Run(p, RunOpts{Procs: int(procs)%32 + 1})
		return r1.Flops == r2.Flops && r1.Words == r2.Words
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockScalesLinearly(t *testing.T) {
	// The same trace on an 8.0 ns machine runs exactly 9.2/8.0 faster.
	fast := NewConfig(32, 1)
	slow := Benchmarked()
	mf := New(fast)
	ms := New(slow)
	p := prog.Simple("w", 100,
		prog.Op{Class: prog.VLoad, VL: 777, Stride: 1},
		prog.Op{Class: prog.VMul, VL: 777})
	rf := mf.Run(p, RunOpts{Procs: 8})
	rs := ms.Run(p, RunOpts{Procs: 8})
	ratio := rs.Seconds / rf.Seconds
	if ratio < 1.1499 || ratio > 1.1501 {
		t.Errorf("clock ratio = %v, want exactly 1.15", ratio)
	}
	if rf.Clocks != rs.Clocks {
		t.Error("clock count should not depend on cycle time")
	}
}
