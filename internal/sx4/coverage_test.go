package sx4

import (
	"testing"

	"sx4bench/internal/sx4/prog"
)

// Tests for edges the main suites do not reach.

func TestMachineName(t *testing.T) {
	m := New(Benchmarked())
	if m.Name() != "SX-4/32" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestZeroResultRates(t *testing.T) {
	var r Result
	if r.MFLOPS() != 0 || r.GFLOPS() != 0 || r.PortMBps() != 0 {
		t.Error("zero-duration result should report zero rates")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	bad := Benchmarked()
	bad.VectorPipes = 0
	defer func() {
		if recover() == nil {
			t.Error("New accepted an invalid config")
		}
	}()
	New(bad)
}

func TestRunPanicsOnInvalidProgram(t *testing.T) {
	m := New(Benchmarked())
	bad := prog.Program{Name: "bad", Phases: []prog.Phase{{
		Loops: []prog.Loop{{Trips: 1, Body: []prog.Op{{Class: prog.VAdd, VL: 0}}}},
	}}}
	defer func() {
		if recover() == nil {
			t.Error("Run accepted an invalid program")
		}
	}()
	m.Run(bad, RunOpts{Procs: 1})
}

func TestIntrinsicScaleApplied(t *testing.T) {
	slow := Benchmarked()
	slow.IntrinsicScale = 2
	mSlow := New(slow)
	mFast := New(Benchmarked())
	p := prog.Simple("intr", 1, prog.Op{Class: prog.VIntrinsic, VL: 1 << 16, Intr: prog.Exp})
	if mSlow.Run(p, RunOpts{Procs: 1}).Seconds <= mFast.Run(p, RunOpts{Procs: 1}).Seconds {
		t.Error("IntrinsicScale=2 not slower")
	}
}

func TestLogicalPipeCharged(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	n := 1 << 18
	base := m.Run(prog.Simple("l", 8, prog.Op{Class: prog.VLogical, VL: n}), RunOpts{Procs: 1})
	if base.Clocks <= 0 {
		t.Error("logical ops free")
	}
	if base.Flops != 0 {
		t.Error("logical ops counted as flops")
	}
}

func TestValidateMoreBranches(t *testing.T) {
	cases := []func(c *Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.VectorRegElems = 0 },
		func(c *Config) { c.MemoryBanks = 0 },
		func(c *Config) { c.BankBusyClocks = 0 },
		func(c *Config) { c.PortWordsPerClock = 0 },
		func(c *Config) { c.NodeWordsPerClock = 0 },
	}
	for i, mutate := range cases {
		c := Benchmarked()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStride2ConflictFreeEndToEnd(t *testing.T) {
	// The paper's guarantee surfaces at machine level: stride 2 runs
	// at the unit-stride rate.
	m := New(BenchmarkedSingleCPU())
	n := 1 << 18
	mk := func(stride int) float64 {
		return m.Run(prog.Simple("s", 8,
			prog.Op{Class: prog.VLoad, VL: n, Stride: stride}), RunOpts{Procs: 1}).Seconds
	}
	if mk(2) > mk(1)*1.0001 {
		t.Error("stride-2 load slower than unit stride; guarantee broken")
	}
	if mk(3) <= mk(1)*1.0001 {
		t.Error("stride-3 load should pay the strided penalty")
	}
}
