// Package iop models the SX-4 input-output subsystem: up to four I/O
// processors per node, each with 1.6 GB/s of bandwidth, operating
// asynchronously from the CPUs; HIPPI channels as the high-performance
// interconnect to the NCAR Mass Storage System; fast-wide SCSI-2 disk
// arrays; and the IOX multiplexer for slower channel types.
package iop

import (
	"fmt"
	"math"
)

// HIPPI channel characteristics: 800 Mbit/s links with per-packet
// protocol overhead.
type HIPPI struct {
	BytesPerSec       float64 // sustained payload rate of one channel
	LatencySec        float64 // per-transfer setup (connection) time
	PacketOverheadSec float64 // per-packet processing time
	MaxPacketBytes    int
}

// NewHIPPI returns the NCAR-configuration HIPPI channel model.
func NewHIPPI() HIPPI {
	return HIPPI{
		BytesPerSec:       95e6,
		LatencySec:        500e-6,
		PacketOverheadSec: 30e-6,
		MaxPacketBytes:    64 << 10,
	}
}

// TransferTime returns the time to move bytes using the given packet
// size (clamped to the channel maximum).
func (h HIPPI) TransferTime(bytes int64, packetBytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	if packetBytes <= 0 || packetBytes > h.MaxPacketBytes {
		packetBytes = h.MaxPacketBytes
	}
	packets := math.Ceil(float64(bytes) / float64(packetBytes))
	return h.LatencySec + packets*h.PacketOverheadSec + float64(bytes)/h.BytesPerSec
}

// Throughput returns the effective rate in bytes/s for a transfer.
func (h HIPPI) Throughput(bytes int64, packetBytes int) float64 {
	t := h.TransferTime(bytes, packetBytes)
	if t <= 0 {
		return 0
	}
	return float64(bytes) / t
}

// Disk models the attached conventional disk subsystem (not the XMU).
type Disk struct {
	BytesPerSec float64
	SeekSec     float64
	CapacityGB  float64
}

// NewDisk returns the benchmarked system's disk model (282 GB).
func NewDisk() Disk {
	return Disk{BytesPerSec: 60e6, SeekSec: 12e-3, CapacityGB: 282}
}

// WriteTime returns the time to write one contiguous record.
func (d Disk) WriteTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.SeekSec + float64(bytes)/d.BytesPerSec
}

// WriteRecords returns the time to write n records of recBytes each to
// a direct-access file; sequential records amortize seeks.
func (d Disk) WriteRecords(n int, recBytes int64) float64 {
	if n <= 0 || recBytes <= 0 {
		return 0
	}
	// One initial seek, then streaming with occasional reposition.
	seeks := 1 + n/64
	return float64(seeks)*d.SeekSec + float64(n)*float64(recBytes)/d.BytesPerSec
}

// Subsystem is one node's I/O complex.
type Subsystem struct {
	IOPs           int
	IOPBytesPerSec float64
	HIPPIChannels  int
	Channel        HIPPI
	DiskArray      Disk
}

// New returns the benchmarked node's subsystem: 4 IOPs, 2 HIPPI
// channels, one disk array.
func New() Subsystem {
	return Subsystem{
		IOPs:           4,
		IOPBytesPerSec: 1.6e9,
		HIPPIChannels:  2,
		Channel:        NewHIPPI(),
		DiskArray:      NewDisk(),
	}
}

// AggregateBandwidth returns the subsystem's total IOP bandwidth.
func (s Subsystem) AggregateBandwidth() float64 {
	return float64(s.IOPs) * s.IOPBytesPerSec
}

// ConcurrentHIPPI returns the per-transfer and aggregate throughput of
// n concurrent HIPPI transfers of the given size: transfers share the
// available channels, and the IOPs never bottleneck HIPPI-rate traffic.
func (s Subsystem) ConcurrentHIPPI(n int, bytes int64, packetBytes int) (perTransfer, aggregate float64) {
	if n <= 0 {
		return 0, 0
	}
	single := s.Channel.Throughput(bytes, packetBytes)
	channels := s.HIPPIChannels
	if n < channels {
		channels = n
	}
	aggregate = single * float64(channels)
	// Transfers beyond the channel count time-share.
	perTransfer = aggregate / float64(n)
	return perTransfer, aggregate
}

// Validate reports configuration errors.
func (s Subsystem) Validate() error {
	if s.IOPs < 1 || s.IOPs > 4 {
		return fmt.Errorf("iop: IOP count %d out of range [1,4]", s.IOPs)
	}
	if s.IOPBytesPerSec <= 0 || s.HIPPIChannels < 1 {
		return fmt.Errorf("iop: invalid subsystem %+v", s)
	}
	return nil
}
