package iop

import (
	"math"
	"testing"
)

func TestHIPPIThroughputGrowsWithPacketSize(t *testing.T) {
	h := NewHIPPI()
	bytes := int64(64 << 20)
	prev := 0.0
	for _, pkt := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		tp := h.Throughput(bytes, pkt)
		if tp <= prev {
			t.Errorf("throughput not increasing at packet %d: %v <= %v", pkt, tp, prev)
		}
		prev = tp
	}
}

func TestHIPPIApproachesLinkRate(t *testing.T) {
	h := NewHIPPI()
	tp := h.Throughput(1<<30, 64<<10)
	if tp < 0.8*h.BytesPerSec || tp > h.BytesPerSec {
		t.Errorf("large-transfer throughput %v, want near link rate %v", tp, h.BytesPerSec)
	}
}

func TestHIPPISmallTransfersLatencyBound(t *testing.T) {
	h := NewHIPPI()
	tp := h.Throughput(1<<10, 1<<10)
	if tp > 0.1*h.BytesPerSec {
		t.Errorf("1KB transfer at %v B/s; latency should dominate", tp)
	}
}

func TestHIPPIPacketClamp(t *testing.T) {
	h := NewHIPPI()
	a := h.TransferTime(1<<20, 0)
	b := h.TransferTime(1<<20, h.MaxPacketBytes)
	if a != b {
		t.Errorf("packet size 0 should clamp to max: %v vs %v", a, b)
	}
	if h.TransferTime(0, 1024) != 0 {
		t.Error("zero-byte transfer should cost nothing")
	}
}

func TestDiskWrite(t *testing.T) {
	d := NewDisk()
	small := d.WriteTime(1 << 10)
	if small < d.SeekSec {
		t.Errorf("small write %v below seek time", small)
	}
	big := d.WriteTime(600e6)
	if big < 9 || big > 12 {
		t.Errorf("600 MB write = %v s at 60 MB/s, want ~10", big)
	}
}

func TestDiskRecordsAmortizeSeeks(t *testing.T) {
	d := NewDisk()
	n, rec := 512, int64(1<<20)
	batched := d.WriteRecords(n, rec)
	individual := 0.0
	for i := 0; i < n; i++ {
		individual += d.WriteTime(rec)
	}
	if batched >= individual {
		t.Errorf("batched records (%v) should beat individual writes (%v)", batched, individual)
	}
}

func TestSubsystem(t *testing.T) {
	s := New()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.AggregateBandwidth(); math.Abs(got-6.4e9) > 1e6 {
		t.Errorf("aggregate IOP bandwidth = %v, want 6.4 GB/s", got)
	}
}

func TestConcurrentHIPPIScalesThenSaturates(t *testing.T) {
	s := New()
	bytes := int64(256 << 20)
	_, agg1 := s.ConcurrentHIPPI(1, bytes, 64<<10)
	_, agg2 := s.ConcurrentHIPPI(2, bytes, 64<<10)
	_, agg4 := s.ConcurrentHIPPI(4, bytes, 64<<10)
	if agg2 <= agg1 {
		t.Errorf("two transfers should use the second channel: %v <= %v", agg2, agg1)
	}
	if agg4 > agg2*1.001 {
		t.Errorf("beyond the channel count aggregate must saturate: %v > %v", agg4, agg2)
	}
	per2, _ := s.ConcurrentHIPPI(2, bytes, 64<<10)
	per4, _ := s.ConcurrentHIPPI(4, bytes, 64<<10)
	if per4 >= per2 {
		t.Errorf("per-transfer rate should drop when oversubscribed: %v >= %v", per4, per2)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := New()
	bad.IOPs = 9
	if bad.Validate() == nil {
		t.Error("9 IOPs accepted")
	}
}
