package xmu

import (
	"testing"
)

func TestTransferTime(t *testing.T) {
	x := New(4)
	if got := x.TransferTime(0); got != 0 {
		t.Errorf("zero transfer = %v", got)
	}
	// 16 GB at 16 GB/s ~ 1 s.
	if got := x.TransferTime(1.6e10 / 4); got < 0.24 || got > 0.26 {
		t.Errorf("4 GB stage = %v s, want ~0.25", got)
	}
}

func TestOutOfCoreComputeBound(t *testing.T) {
	x := New(32)
	// Heavy compute: staging hides behind it.
	arr := int64(8e9)
	got, err := x.OutOfCore(arr, 64<<20, 1e-9) // 1 ns/byte of work
	if err != nil {
		t.Fatal(err)
	}
	compute := 1e-9 * float64(arr)
	if got < compute || got > compute*1.05 {
		t.Errorf("compute-bound sweep = %v, want just over %v", got, compute)
	}
}

func TestOutOfCoreStagingBound(t *testing.T) {
	x := New(32)
	arr := int64(8e9)
	got, err := x.OutOfCore(arr, 64<<20, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	stage := float64(arr) / x.BytesPerSec
	if got < stage || got > stage*1.2 {
		t.Errorf("staging-bound sweep = %v, want just over %v", got, stage)
	}
}

func TestOutOfCoreCapacity(t *testing.T) {
	x := New(4)
	if _, err := x.OutOfCore(8e9, 1<<20, 1e-9); err == nil {
		t.Error("array beyond XMU capacity accepted")
	}
	if _, err := x.OutOfCore(0, 1<<20, 1e-9); err == nil {
		t.Error("zero array accepted")
	}
}

func TestCacheTimes(t *testing.T) {
	x := New(4)
	hit := x.CacheHitTime(1 << 20)
	miss := x.CacheMissTime(1<<20, 0.012)
	if miss <= hit {
		t.Errorf("miss (%v) should cost more than hit (%v)", miss, hit)
	}
	// XMU hits serve a 1 MB block in tens of microseconds — far
	// faster than any disk.
	if hit > 1e-3 {
		t.Errorf("XMU hit = %v s, want well under 1 ms", hit)
	}
}
