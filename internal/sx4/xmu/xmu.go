// Package xmu models the SX-4 extended memory unit: a semiconductor
// store of 60 ns DRAM behind a 16 GB/s port, up to 32 GB per node. The
// XMU serves as a direct-mapped staging area for Fortran data arrays
// too large for main memory (a compile-time option, no special
// programming), and as backing store for the SFS file-system cache,
// swap and /tmp — the same roles as the CRI SSD.
package xmu

import "fmt"

// XMU describes one node's extended memory unit.
type XMU struct {
	CapacityBytes int64
	BytesPerSec   float64
	LatencySec    float64
}

// New returns an XMU with the given capacity in GB at the standard
// 16 GB/s node bandwidth.
func New(capacityGB float64) XMU {
	return XMU{
		CapacityBytes: int64(capacityGB * 1e9),
		BytesPerSec:   16e9,
		LatencySec:    2e-6,
	}
}

// TransferTime returns the time to stage bytes between main memory and
// the XMU.
func (x XMU) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return x.LatencySec + float64(bytes)/x.BytesPerSec
}

// OutOfCore models a direct-mapped array sweep: arrayBytes of data
// processed in tiles of tileBytes, with computeSecPerByte of work per
// byte. Staging overlaps computation (the IOPs and XMU run
// asynchronously), so the sweep time is the maximum of the compute and
// staging streams plus one pipeline fill.
func (x XMU) OutOfCore(arrayBytes, tileBytes int64, computeSecPerByte float64) (float64, error) {
	if arrayBytes <= 0 || tileBytes <= 0 {
		return 0, fmt.Errorf("xmu: non-positive sizes")
	}
	if arrayBytes > x.CapacityBytes {
		return 0, fmt.Errorf("xmu: array (%d bytes) exceeds capacity (%d)", arrayBytes, x.CapacityBytes)
	}
	stage := float64(arrayBytes) / x.BytesPerSec
	tiles := (arrayBytes + tileBytes - 1) / tileBytes
	stage += float64(tiles) * x.LatencySec
	compute := computeSecPerByte * float64(arrayBytes)
	fill := x.TransferTime(tileBytes)
	if stage > compute {
		return stage + fill, nil
	}
	return compute + fill, nil
}

// CacheHitTime and CacheMissTime give the SFS file-cache service times
// for a block: hits are served from XMU, misses from the disk model's
// time plus the staging copy.
func (x XMU) CacheHitTime(blockBytes int64) float64 {
	return x.TransferTime(blockBytes)
}

// CacheMissTime combines a backing-store fetch with the XMU fill.
func (x XMU) CacheMissTime(blockBytes int64, backingSeconds float64) float64 {
	return backingSeconds + x.TransferTime(blockBytes)
}
