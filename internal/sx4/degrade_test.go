package sx4

import (
	"errors"
	"testing"

	"sx4bench/internal/fault"
	"sx4bench/internal/target"
)

func TestDegradeZeroIsIdentity(t *testing.T) {
	m := New(Benchmarked())
	got, err := target.Degrade(m, fault.Degradation{})
	if err != nil {
		t.Fatalf("zero degradation: %v", err)
	}
	if got != target.Target(m) {
		t.Error("zero degradation did not return the machine itself")
	}
}

func TestDegradedConfig(t *testing.T) {
	m := New(Benchmarked())
	d := fault.Degradation{CPUsLost: 8, BankHalvings: 1, PortHalvings: 1, IOPsStalled: 2}
	dt, err := m.Degraded(d)
	if err != nil {
		t.Fatal(err)
	}
	dm := dt.(*Machine)
	healthy, degraded := m.Config(), dm.Config()
	if degraded.CPUs != healthy.CPUs-8 {
		t.Errorf("degraded CPUs = %d, want %d", degraded.CPUs, healthy.CPUs-8)
	}
	if degraded.MemoryBanks != healthy.MemoryBanks/2 {
		t.Errorf("degraded banks = %d, want %d", degraded.MemoryBanks, healthy.MemoryBanks/2)
	}
	if degraded.NodeWordsPerClock != healthy.NodeWordsPerClock/2 {
		t.Errorf("degraded node width = %d, want %d", degraded.NodeWordsPerClock, healthy.NodeWordsPerClock/2)
	}
	if degraded.PortWordsPerClock != healthy.PortWordsPerClock/2 {
		t.Errorf("degraded port width = %d, want %d", degraded.PortWordsPerClock, healthy.PortWordsPerClock/2)
	}
	if degraded.IOPs != healthy.IOPs-2 {
		t.Errorf("degraded IOPs = %d, want %d", degraded.IOPs, healthy.IOPs-2)
	}
	if dm.Fingerprint() == m.Fingerprint() {
		t.Error("degraded machine fingerprints identically to healthy (memo would serve stale timings)")
	}
	// The original is untouched.
	if m.Config() != Benchmarked() {
		t.Error("Degraded mutated the healthy machine's configuration")
	}
}

func TestDegradedNeverFaster(t *testing.T) {
	// Enough trips that losing CPUs changes the per-processor share.
	prog := copyProgram(1<<16, 960)
	m := New(Benchmarked())
	for _, tc := range []struct {
		name string
		d    fault.Degradation
	}{
		{"cpu loss", fault.Degradation{CPUsLost: 8}},
		{"bank halving", fault.Degradation{BankHalvings: 1, PortHalvings: 1}},
		{"port halving", fault.Degradation{PortHalvings: 1}},
		{"iop stall", fault.Degradation{IOPsStalled: 1}},
		{"everything", fault.Degradation{CPUsLost: 16, BankHalvings: 2, PortHalvings: 2, IOPsStalled: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dt, err := m.Degraded(tc.d)
			if err != nil {
				t.Fatal(err)
			}
			// Ask both machines for full parallelism; Run clamps Procs
			// to the surviving CPU count, so the degraded machine runs
			// the same work on fewer, slower resources.
			opts := RunOpts{Procs: m.Config().CPUs}
			healthy := m.Run(prog, opts).Seconds
			degraded := dt.Run(prog, opts).Seconds
			if degraded < healthy {
				t.Errorf("degraded %gs faster than healthy %gs", degraded, healthy)
			}
			if tc.d.CPUsLost > 0 || tc.d.BankHalvings > 0 || tc.d.PortHalvings > 0 {
				if degraded <= healthy {
					t.Errorf("compute degradation had no timing impact: healthy %gs, degraded %gs", healthy, degraded)
				}
			}
		})
	}
}

func TestDegradedMachineDown(t *testing.T) {
	m := New(NewConfig(4, 1))
	for _, lost := range []int{4, 5, 100} {
		_, err := m.Degraded(fault.Degradation{CPUsLost: lost})
		if !errors.Is(err, target.ErrMachineDown) {
			t.Errorf("CPUsLost=%d: err = %v, want ErrMachineDown", lost, err)
		}
	}
	// One surviving CPU is still a machine.
	dt, err := m.Degraded(fault.Degradation{CPUsLost: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := dt.(*Machine).Config().CPUs; got != 1 {
		t.Errorf("surviving CPUs = %d, want 1", got)
	}
}

func TestDegradedFloorsAtOne(t *testing.T) {
	cfg := NewConfig(2, 1)
	m := New(cfg)
	dt, err := m.Degraded(fault.Degradation{BankHalvings: 40, PortHalvings: 40, IOPsStalled: 40})
	if err != nil {
		t.Fatal(err)
	}
	got := dt.(*Machine).Config()
	if got.MemoryBanks != 1 || got.PortWordsPerClock != 1 || got.NodeWordsPerClock != 1 || got.IOPs != 1 {
		t.Errorf("repeated degradation did not floor at 1: banks=%d port=%d node=%d iops=%d",
			got.MemoryBanks, got.PortWordsPerClock, got.NodeWordsPerClock, got.IOPs)
	}
}
