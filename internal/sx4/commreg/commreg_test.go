package commreg

import (
	"sync"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(8)
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Store(3, 42)
	if got := s.Load(3); got != 42 {
		t.Errorf("Load(3) = %d, want 42", got)
	}
}

func TestNewSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSet(0) did not panic")
		}
	}()
	NewSet(0)
}

func TestTestSet(t *testing.T) {
	s := NewSet(1)
	if s.TestSet(0) {
		t.Error("first TestSet returned true (already set)")
	}
	if !s.TestSet(0) {
		t.Error("second TestSet returned false")
	}
	s.Clear(0)
	if s.TestSet(0) {
		t.Error("TestSet after Clear returned true")
	}
}

func TestTestSetMutualExclusion(t *testing.T) {
	s := NewSet(1)
	const workers = 16
	const iters = 200
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for s.TestSet(0) {
				}
				counter++
				s.Clear(0)
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (lock not exclusive)", counter, workers*iters)
	}
}

func TestStoreAddConcurrent(t *testing.T) {
	s := NewSet(1)
	const workers = 32
	const each = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.StoreAdd(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Load(0); got != workers*each {
		t.Errorf("StoreAdd total = %d, want %d", got, workers*each)
	}
}

func TestStoreAndOr(t *testing.T) {
	s := NewSet(1)
	s.Store(0, 0b1100)
	s.StoreOr(0, 0b0011)
	if got := s.Load(0); got != 0b1111 {
		t.Errorf("after StoreOr: %b, want 1111", got)
	}
	s.StoreAnd(0, 0b1010)
	if got := s.Load(0); got != 0b1010 {
		t.Errorf("after StoreAnd: %b, want 1010", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const parties = 8
	b := NewBarrier(parties)
	if b.Parties() != parties {
		t.Fatalf("Parties = %d", b.Parties())
	}
	var phase [parties]int
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				phase[p] = round
				b.Wait()
				// After the barrier every party must have reached
				// this round.
				for q := 0; q < parties; q++ {
					if phase[q] < round {
						t.Errorf("party %d at phase %d < round %d", q, phase[q], round)
						return
					}
				}
				b.Wait()
			}
		}(p)
	}
	wg.Wait()
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must not deadlock
	}
}

func TestNewBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestReducer(t *testing.T) {
	r := NewReducer()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(0.5)
			}
		}()
	}
	wg.Wait()
	sum, hits := r.Sum()
	if hits != 1600 {
		t.Errorf("hits = %d, want 1600", hits)
	}
	if sum != 800 {
		t.Errorf("sum = %v, want 800", sum)
	}
	r.Reset()
	if sum, hits := r.Sum(); sum != 0 || hits != 0 {
		t.Errorf("after Reset: %v, %d", sum, hits)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, p := range []int{0, 1, 3, 8, 100} {
		n := 57
		seen := make([]int32, n)
		var mu sync.Mutex
		ParallelFor(p, n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Errorf("p=%d: index %d visited %d times", p, i, c)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(4, 0, func(int) { called = true })
	if called {
		t.Error("ParallelFor(_, 0) called f")
	}
}
