// Package commreg implements the SX-4's communications registers: a set
// of hardware registers with atomic test-set, store-add, store-and, and
// store-or instructions, optimized for synchronization of parallel
// tasks. Each processor has a dedicated set, plus one per chassis for
// the operating system; the IXS carries global internode registers.
//
// This package provides both a functional implementation (used by the
// host-parallel execution paths of the numerical models and by the
// SUPER-UX scheduler model) and the timing constants the machine model
// charges for barrier and reduction operations.
package commreg

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Set is a bank of 64-bit communications registers.
type Set struct {
	regs []atomic.Uint64
}

// NewSet returns a register set with n registers, all zero.
func NewSet(n int) *Set {
	if n <= 0 {
		panic(fmt.Sprintf("commreg: non-positive set size %d", n))
	}
	return &Set{regs: make([]atomic.Uint64, n)}
}

// Len returns the number of registers in the set.
func (s *Set) Len() int { return len(s.regs) }

// Load returns the current value of register i.
func (s *Set) Load(i int) uint64 { return s.regs[i].Load() }

// Store sets register i to v.
func (s *Set) Store(i int, v uint64) { s.regs[i].Store(v) }

// TestSet atomically sets the low bit of register i and reports the
// previous value of that bit: the classic acquire primitive.
func (s *Set) TestSet(i int) bool {
	for {
		old := s.regs[i].Load()
		if old&1 != 0 {
			return true
		}
		if s.regs[i].CompareAndSwap(old, old|1) {
			return false
		}
	}
}

// Clear resets register i to zero (releases a TestSet lock).
func (s *Set) Clear(i int) { s.regs[i].Store(0) }

// StoreAdd atomically adds v to register i and returns the new value.
func (s *Set) StoreAdd(i int, v uint64) uint64 { return s.regs[i].Add(v) }

// StoreAnd atomically ANDs v into register i and returns the new value.
func (s *Set) StoreAnd(i int, v uint64) uint64 { return s.regs[i].And(v) & v }

// StoreOr atomically ORs v into register i and returns the new value.
func (s *Set) StoreOr(i int, v uint64) uint64 { return s.regs[i].Or(v) | v }

// Barrier is a reusable sense-reversing barrier built from a
// communications register, as parallel runtimes on the SX-4 built
// theirs from store-add.
type Barrier struct {
	parties int
	count   atomic.Int64
	sense   atomic.Uint64
	mu      sync.Mutex
	cond    *sync.Cond
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("commreg: non-positive barrier parties %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties returns the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks until all parties have called Wait for this generation.
func (b *Barrier) Wait() {
	gen := b.sense.Load()
	if b.count.Add(1) == int64(b.parties) {
		b.count.Store(0)
		b.mu.Lock()
		b.sense.Add(1)
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	for b.sense.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Reducer accumulates a float64 sum across parties using a spin lock
// built on TestSet, mirroring store-add based reduction trees.
type Reducer struct {
	set  *Set
	mu   sync.Mutex
	sum  float64
	hits int
}

// NewReducer returns an empty reduction cell.
func NewReducer() *Reducer { return &Reducer{set: NewSet(1)} }

// Add contributes v to the reduction.
func (r *Reducer) Add(v float64) {
	r.mu.Lock()
	r.sum += v
	r.hits++
	r.mu.Unlock()
}

// Sum returns the accumulated value and the number of contributions.
func (r *Reducer) Sum() (float64, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum, r.hits
}

// Reset zeroes the reduction.
func (r *Reducer) Reset() {
	r.mu.Lock()
	r.sum, r.hits = 0, 0
	r.mu.Unlock()
}

// ParallelFor executes f(i) for i in [0, n) across p goroutines with a
// static block distribution — the shape of a microtasked vector loop on
// the SX-4. It blocks until all iterations complete.
func ParallelFor(p, n int, f func(i int)) {
	if p <= 0 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + p - 1) / p
	for w := 0; w < p; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
