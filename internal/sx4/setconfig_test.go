package sx4

import (
	"reflect"
	"testing"

	"sx4bench/internal/target"
)

// TestSetConfigInvalidatesMemo is the cache-coherence regression test:
// mutating the configuration between runs must never let a memoized
// timing from the old configuration leak into the new one.
func TestSetConfigInvalidatesMemo(t *testing.T) {
	m := New(Benchmarked())
	p := cacheTestProgram(256)
	warm := m.Run(p, RunOpts{Procs: 1}) // miss: simulate + store
	m.Run(p, RunOpts{Procs: 1})         // hit: cache is warm
	if s := m.CacheStats(); s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("warm-up stats = %+v, want 1 hit, 1 entry", s)
	}

	fast := Benchmarked()
	fast.ClockNS = 4.0
	if err := m.SetConfig(fast); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	if s := m.CacheStats(); s.Entries != 0 {
		t.Fatalf("stale entries survived SetConfig: %+v", s)
	}

	got := m.Run(p, RunOpts{Procs: 1})
	fresh := New(fast)
	fresh.SetCache(false)
	want := fresh.Run(p, RunOpts{Procs: 1})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-SetConfig run = %+v, want fresh simulation %+v", got, want)
	}
	if got.Seconds >= warm.Seconds {
		t.Errorf("4.0 ns run (%.3g s) not faster than 9.2 ns run (%.3g s): stale timing served",
			got.Seconds, warm.Seconds)
	}
	if got.Clocks != warm.Clocks {
		t.Errorf("clock count changed with ClockNS: %v vs %v", got.Clocks, warm.Clocks)
	}
}

// TestSetConfigSameConfigKeepsMemo: reasserting the current
// configuration must not throw the warm cache away.
func TestSetConfigSameConfigKeepsMemo(t *testing.T) {
	m := New(Benchmarked())
	m.Run(cacheTestProgram(128), RunOpts{Procs: 1})
	if err := m.SetConfig(Benchmarked()); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	if s := m.CacheStats(); s.Entries != 1 {
		t.Errorf("identical reconfiguration dropped the memo: %+v", s)
	}
}

// TestSetConfigInvalidLeavesMachineUsable: a rejected configuration
// must not corrupt the machine.
func TestSetConfigInvalidLeavesMachineUsable(t *testing.T) {
	m := New(Benchmarked())
	before := m.Run(cacheTestProgram(64), RunOpts{Procs: 1})
	bad := Benchmarked()
	bad.ClockNS = -1
	if err := m.SetConfig(bad); err == nil {
		t.Fatal("SetConfig accepted an invalid configuration")
	}
	if m.Config().ClockNS != 9.2 {
		t.Errorf("failed SetConfig mutated the config: %+v", m.Config())
	}
	after := m.Run(cacheTestProgram(64), RunOpts{Procs: 1})
	if !reflect.DeepEqual(before, after) {
		t.Error("failed SetConfig changed simulation results")
	}
}

// TestSetCacheSweepsStaleFingerprints pins the SetCache half of the
// coherence contract: re-enabling a live cache drops entries keyed on
// any fingerprint other than the machine's current one.
func TestSetCacheSweepsStaleFingerprints(t *testing.T) {
	m := New(Benchmarked())
	m.Run(cacheTestProgram(32), RunOpts{Procs: 1})

	// Plant an entry under a foreign config fingerprint, as a buggy
	// reconfiguration path would have left behind.
	stale := target.MemoKey{Config: m.fingerprint ^ 1, Program: 42, Opts: RunOpts{Procs: 1}}
	m.cache.Store(stale, Result{Program: "stale"})
	if s := m.CacheStats(); s.Entries != 2 {
		t.Fatalf("setup: %+v, want 2 entries", s)
	}

	m.SetCache(true)
	s := m.CacheStats()
	if s.Entries != 1 {
		t.Fatalf("SetCache(true) kept %d entries, want 1 (stale fingerprint swept)", s.Entries)
	}
	if _, ok := m.cache.Lookup(stale); ok {
		t.Error("stale-fingerprint entry survived SetCache(true)")
	}
}
