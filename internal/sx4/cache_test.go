package sx4

import (
	"reflect"
	"sync"
	"testing"

	"sx4bench/internal/sx4/prog"
)

func cacheTestProgram(vl int) prog.Program {
	return prog.Simple("cache-test", 100,
		prog.Op{Class: prog.VLoad, VL: vl, Stride: 1},
		prog.Op{Class: prog.VAdd, VL: vl},
		prog.Op{Class: prog.VStore, VL: vl, Stride: 1},
	)
}

// TestCacheMatchesFreshSimulation is the memo-correctness contract: a
// cached timing must equal a fresh simulation exactly, field for field.
func TestCacheMatchesFreshSimulation(t *testing.T) {
	m := New(Benchmarked())
	fresh := New(Benchmarked())
	fresh.SetCache(false)

	opts := []RunOpts{{Procs: 1}, {Procs: 8}, {Procs: 4, ActiveCPUs: 32}}
	for _, vl := range []int{1, 100, 256, 4096} {
		p := cacheTestProgram(vl)
		for _, o := range opts {
			first := m.Run(p, o)  // miss: simulate + store
			second := m.Run(p, o) // hit: served from memo
			direct := fresh.Run(p, o)
			if !reflect.DeepEqual(first, direct) {
				t.Fatalf("vl=%d opts=%+v: first cached run != uncached simulation", vl, o)
			}
			if !reflect.DeepEqual(second, direct) {
				t.Fatalf("vl=%d opts=%+v: memoized result != uncached simulation", vl, o)
			}
		}
	}
	stats := m.CacheStats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", stats)
	}
	if stats.Misses != 12 { // 4 lengths x 3 opts distinct keys
		t.Errorf("misses = %d, want 12 distinct keys", stats.Misses)
	}
	if fresh.CacheStats() != (CacheStats{}) {
		t.Errorf("disabled cache reports %+v", fresh.CacheStats())
	}
}

// TestCacheKeyDiscriminates: different programs, opts, or configs must
// not collide.
func TestCacheKeyDiscriminates(t *testing.T) {
	m := New(Benchmarked())
	a := m.Run(cacheTestProgram(100), RunOpts{Procs: 1})
	b := m.Run(cacheTestProgram(200), RunOpts{Procs: 1})
	c := m.Run(cacheTestProgram(100), RunOpts{Procs: 2})
	if a.Clocks == b.Clocks {
		t.Error("different programs timed identically (suspicious collision)")
	}
	if a.Clocks == c.Clocks {
		t.Error("different opts timed identically (suspicious collision)")
	}

	slow := Benchmarked()
	slow.ClockNS = 16.0
	m2 := New(slow)
	d := m2.Run(cacheTestProgram(100), RunOpts{Procs: 1})
	if a.Seconds == d.Seconds {
		t.Error("different configs timed identically")
	}
}

// TestCacheConcurrent hammers one machine from many goroutines; run
// under -race this is the engine-safety test.
func TestCacheConcurrent(t *testing.T) {
	m := New(Benchmarked())
	want := m.Run(cacheTestProgram(256), RunOpts{Procs: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				vl := 1 + (g*50+i)%7*64
				p := cacheTestProgram(vl)
				r := m.Run(p, RunOpts{Procs: 1})
				if r.Clocks <= 0 {
					t.Errorf("non-positive clocks for vl=%d", vl)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	again := m.Run(cacheTestProgram(256), RunOpts{Procs: 1})
	if !reflect.DeepEqual(want, again) {
		t.Error("concurrent use corrupted a cached result")
	}
}

// TestCachedResultNotAliased: mutating a returned result must not
// corrupt the memo.
func TestCachedResultNotAliased(t *testing.T) {
	m := New(Benchmarked())
	p := cacheTestProgram(128)
	r1 := m.Run(p, RunOpts{Procs: 1})
	if len(r1.Phases) == 0 {
		t.Fatal("no phases")
	}
	r1.Phases[0].Clocks = -1
	r2 := m.Run(p, RunOpts{Procs: 1})
	if r2.Phases[0].Clocks == -1 {
		t.Error("cached Phases slice aliased to caller's copy")
	}
}

func TestConfigFingerprintSensitivity(t *testing.T) {
	a := configFingerprint(Benchmarked())
	if a != configFingerprint(Benchmarked()) {
		t.Error("fingerprint not deterministic")
	}
	c := Benchmarked()
	c.StridedPenalty += 0.1
	if configFingerprint(c) == a {
		t.Error("calibration change did not change the fingerprint")
	}
}
