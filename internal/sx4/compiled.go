package sx4

import (
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// The compiled execution path. prog.Compile flattens a Program into
// contiguous phase/loop/op arrays once; compile below layers the
// configuration-dependent per-loop invariants on top (trip resource
// costs, uncontended trip clocks, per-CPU port demand, memory-bound
// classification). After that, every Run against the same trace is a
// walk over O(phases + loops) flat slices of precomputed floats — no
// per-op switch, no stride-factor derivation, no re-validation — and
// is bit-identical to the interpreted engine, which survives as the
// differential oracle (SetCompiled(false), pinned by the metamorphic
// suite in internal/check).

// loopTiming is one executable loop's configuration-dependent timing
// invariant: everything phaseClocks derives per trip that does not
// depend on the run's processor allocation.
type loopTiming struct {
	// cost is the per-trip resource usage (tripClocks of the body).
	cost tripCost
	// perCPUWords is the loop's uncontended memory-port demand in
	// words per clock per CPU: cost.portWords over the uncontended
	// trip time, zero when the trip is free.
	perCPUWords float64
	// memBound records cost.memBound() — whether memory is the
	// binding resource of the trip.
	memBound bool
	// trips is the loop's trip count (always > 0; zero-trip loops are
	// compiled out).
	trips int64
}

// phaseTiming is one phase of a compiled program.
type phaseTiming struct {
	name         string
	parallel     bool
	barriers     int
	serialClocks float64
	flops        int64
	words        int64
	// loops spans the phase's loopTimings in compiledProgram.loops.
	loops prog.Span
}

// compiledProgram is a program compiled against one machine
// configuration: immutable after compile, shared by every concurrent
// Run through the machine's compiled-trace cache.
type compiledProgram struct {
	name   string
	flops  int64
	words  int64
	phases []phaseTiming
	loops  []loopTiming
	// capacity is the memory system's aggregate word rate, hoisted out
	// of the per-loop contention test (it depends only on the bank
	// geometry, which SetConfig rebuilds along with this cache).
	capacity float64
}

// compile derives the machine-specific timing invariants from the
// flattened trace. The result depends on the configuration only
// through tripClocks and the loop-overhead constant, so SetConfig
// must (and does) drop the compiled-trace cache.
func (m *Machine) compile(c *prog.Compiled) *compiledProgram {
	cp := &compiledProgram{
		name:     c.Name,
		flops:    c.Flops,
		words:    c.Words,
		phases:   make([]phaseTiming, len(c.Phases)),
		loops:    make([]loopTiming, len(c.Loops)),
		capacity: m.mem.CapacityWordsPerClock(),
	}
	for i := range c.Loops {
		l := &c.Loops[i]
		cost := m.tripClocks(c.Body(*l))
		lt := loopTiming{
			cost:     cost,
			memBound: cost.memBound(),
			trips:    l.Trips,
		}
		// Identical to the interpreted engine: demand is port words
		// over the uncontended trip time, zero for a free trip.
		if base := cost.clocks(m.cfg.LoopOverheadClocks, 1); base > 0 {
			lt.perCPUWords = cost.portWords / base
		}
		cp.loops[i] = lt
	}
	for i := range c.Phases {
		ph := &c.Phases[i]
		cp.phases[i] = phaseTiming{
			name:         ph.Name,
			parallel:     ph.Parallel,
			barriers:     ph.Barriers,
			serialClocks: ph.SerialClocks,
			flops:        ph.Flops,
			words:        ph.Words,
			loops:        ph.Loops,
		}
	}
	return cp
}

// runCompiled evaluates a compiled program. The arithmetic mirrors
// simulate/phaseClocks operation for operation, so results are
// bit-identical to the interpreted path.
func (m *Machine) runCompiled(cp *compiledProgram, opts RunOpts) Result {
	procs := opts.Procs
	if procs <= 0 {
		procs = 1
	}
	if procs > m.cfg.CPUs {
		procs = m.cfg.CPUs
	}
	active := opts.ActiveCPUs
	if active < procs {
		active = procs
	}
	if active > m.cfg.CPUs {
		active = m.cfg.CPUs
	}

	res := Result{Program: cp.name, Procs: procs}
	if len(cp.phases) > 0 {
		res.Phases = make([]PhaseTime, len(cp.phases))
	}
	for i := range cp.phases {
		// Timed in place: the phase record is built directly in the
		// result slice, sparing a struct copy per phase.
		pt := &res.Phases[i]
		m.phaseClocksCompiled(pt, cp, &cp.phases[i], procs, active)
		res.Clocks += pt.Clocks
		res.Flops += pt.Flops
		res.Words += pt.Words
	}
	res.Seconds = res.Clocks * m.cfg.ClockNS * 1e-9
	return res
}

func (m *Machine) phaseClocksCompiled(pt *PhaseTime, cp *compiledProgram, ph *phaseTiming, procs, active int) {
	*pt = PhaseTime{Name: ph.name, Flops: ph.flops, Words: ph.words, Serial: !ph.parallel}
	execProcs := 1
	execActive := active
	if ph.parallel {
		execProcs = procs
	} else if execActive < 1 {
		execActive = 1
	}

	for li := ph.loops.Lo; li < ph.loops.Hi; li++ {
		lt := &cp.loops[li]
		streams := execProcs
		if execActive > streams {
			streams = execActive
		}
		demand := lt.perCPUWords * float64(streams)
		factor := m.mem.ContentionFactor(demand, cp.capacity)
		trip := lt.cost.clocks(m.cfg.LoopOverheadClocks, factor)
		if other := execActive - procs; other > 0 && m.cfg.CPUs > 1 {
			trip *= 1 + m.cfg.InterferenceFrac*float64(other)/float64(m.cfg.CPUs-1)
		}
		if lt.memBound {
			pt.MemBound = true
		}
		trips := lt.trips
		if ph.parallel && execProcs > 1 {
			trips = (lt.trips + int64(execProcs) - 1) / int64(execProcs)
		}
		pt.Clocks += float64(trips) * trip
	}
	if ph.barriers > 0 && procs > 1 {
		pt.Clocks += float64(ph.barriers) *
			(m.cfg.BarrierBaseClocks + m.cfg.BarrierPerCPUClocks*float64(procs))
	}
	pt.Clocks += ph.serialClocks
}

// RunCompiled is Run for a pre-flattened trace: the sweep-loop fast
// path. The Compiled form carries its fingerprint, so a run costs no
// per-op hashing at all — Run spends most of a memo-cold call
// re-hashing the trace structure for the cache key; RunCompiled reads
// c.Fingerprint instead. Results are bit-identical to Run on the
// source program (same memo key, same arithmetic), so the two entry
// points share one memo transparently.
func (m *Machine) RunCompiled(c *prog.Compiled, opts RunOpts) Result {
	var k target.MemoKey
	if m.cache != nil {
		k = target.MemoKey{Config: m.fingerprint, Program: c.Fingerprint, Opts: opts}
		if r, ok := m.cache.Lookup(k); ok {
			return r
		}
	}
	var r Result
	if m.progs != nil {
		cp := m.progs.LoadOrStore(c.Fingerprint, func() *compiledProgram { return m.compile(c) })
		r = m.runCompiled(cp, opts)
	} else {
		// Compiled path disabled: still honor the pre-flattened trace
		// (deriving the timing invariants per call, like simulate
		// derives per-loop costs per call) — the ablation stays
		// bit-identical without re-validating the source program.
		r = m.runCompiled(m.compile(c), opts)
	}
	if m.cache != nil {
		m.cache.Store(k, r)
	}
	return r
}

// SetCompiled enables or disables the compiled-trace execution path
// (enabled by default). Disabling drops the compiled-trace cache and
// routes every memo miss through the interpreted engine — the
// ablation knob the differential tests and the cold-sweep baseline
// benchmark use; reported numbers are bit-identical either way.
//
// Like SetCache and SetConfig, SetCompiled must not race with
// concurrent Run calls: configure first, then share.
func (m *Machine) SetCompiled(enabled bool) {
	if enabled {
		if m.progs == nil {
			m.progs = &target.FPCache[*compiledProgram]{}
		}
		return
	}
	m.progs = nil
}

// CompiledTraces returns the number of traces currently held in the
// machine's compiled-trace cache (zero when the compiled path is
// disabled).
func (m *Machine) CompiledTraces() int {
	if m.progs == nil {
		return 0
	}
	return m.progs.Len()
}
