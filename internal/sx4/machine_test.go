package sx4

import (
	"math"
	"testing"

	"sx4bench/internal/sx4/prog"
)

func copyProgram(n, m int64) prog.Program {
	return prog.Simple("copy", m,
		prog.Op{Class: prog.VLoad, VL: int(n), Stride: 1},
		prog.Op{Class: prog.VStore, VL: int(n), Stride: 1},
	)
}

func TestConfigPresets(t *testing.T) {
	b := Benchmarked()
	if b.ClockNS != 9.2 {
		t.Errorf("benchmarked clock = %v, want 9.2", b.ClockNS)
	}
	if b.CPUs != 32 || b.Nodes != 1 {
		t.Errorf("benchmarked CPUs/Nodes = %d/%d, want 32/1", b.CPUs, b.Nodes)
	}
	p := NewConfig(32, 1)
	if got := p.PeakFlopsPerCPU(); math.Abs(got-2e9) > 1e6 {
		t.Errorf("production peak/CPU = %v, want 2 GFLOPS", got)
	}
	if got := p.PeakFlops(); math.Abs(got-64e9) > 1e8 {
		t.Errorf("SX-4/32 peak = %v, want 64 GFLOPS", got)
	}
	if got := p.PortBytesPerSec(); math.Abs(got-16e9) > 1e8 {
		t.Errorf("port bandwidth = %v, want 16 GB/s", got)
	}
	if got := p.NodeMemoryBytesPerSec(); math.Abs(got-512e9) > 1e9 {
		t.Errorf("node bandwidth = %v, want 512 GB/s", got)
	}
	full := NewConfig(32, 16)
	if full.TotalCPUs() != 512 {
		t.Errorf("full config CPUs = %d, want 512", full.TotalCPUs())
	}
	if full.Name != "SX-4/512M16" {
		t.Errorf("full config name = %q", full.Name)
	}
}

func TestConfigValidate(t *testing.T) {
	good := NewConfig(4, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good): %v", err)
	}
	bad := good
	bad.ClockNS = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero clock")
	}
	bad = good
	bad.CPUs = 33
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted 33 CPUs")
	}
}

func TestNewConfigPanicsOutOfRange(t *testing.T) {
	for _, f := range []func(){
		func() { NewConfig(0, 1) },
		func() { NewConfig(33, 1) },
		func() { NewConfig(1, 0) },
		func() { NewConfig(1, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewConfig out of range did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCopyBandwidthApproachesPort(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	r := m.Run(copyProgram(1_000_000, 1), RunOpts{Procs: 1})
	// 8 words/clock of payload each way: the port moves 16 words/clock,
	// so traffic rate should be near the 16 GB/s port at 9.2 ns (13.9 GB/s).
	peak := m.Config().PortBytesPerSec() / 1e6
	if got := r.PortMBps(); got < 0.85*peak || got > peak {
		t.Errorf("long-vector COPY traffic = %.0f MB/s, want within [%.0f, %.0f]", got, 0.85*peak, peak)
	}
}

func TestCopyShortVectorsMuchSlower(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	long := m.Run(copyProgram(1_000_000, 1), RunOpts{Procs: 1})
	short := m.Run(copyProgram(1, 1_000_000), RunOpts{Procs: 1})
	if short.PortMBps() > long.PortMBps()/20 {
		t.Errorf("short-vector COPY %.1f MB/s vs long %.1f MB/s: startup should dominate",
			short.PortMBps(), long.PortMBps())
	}
}

func TestBandwidthMonotoneInVectorLength(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	total := int64(1 << 22)
	prev := 0.0
	for n := int64(1); n <= total; n *= 4 {
		r := m.Run(copyProgram(n, total/n), RunOpts{Procs: 1})
		bw := r.PortMBps()
		if bw+1e-9 < prev {
			t.Errorf("COPY bandwidth not monotone at N=%d: %.2f < %.2f", n, bw, prev)
		}
		prev = bw
	}
}

func TestGatherSlowerThanCopy(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	n := 1 << 20
	cp := m.Run(copyProgram(int64(n), 1), RunOpts{Procs: 1})
	ia := m.Run(prog.Simple("ia", 1,
		prog.Op{Class: prog.VLoad, VL: n, Stride: 1}, // index vector
		prog.Op{Class: prog.VGather, VL: n},
		prog.Op{Class: prog.VStore, VL: n, Stride: 1},
	), RunOpts{Procs: 1})
	if ia.Seconds <= cp.Seconds {
		t.Errorf("gather kernel (%.3gs) should be slower than copy (%.3gs)", ia.Seconds, cp.Seconds)
	}
	if ratio := ia.Seconds / cp.Seconds; ratio < 2 || ratio > 12 {
		t.Errorf("gather/copy time ratio = %.2f, want within [2, 12]", ratio)
	}
}

func TestStridedStoreConflicts(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	n := 1 << 18
	unit := m.Run(prog.Simple("s1", 8,
		prog.Op{Class: prog.VLoad, VL: n, Stride: 1},
		prog.Op{Class: prog.VStore, VL: n, Stride: 1},
	), RunOpts{Procs: 1})
	strided := m.Run(prog.Simple("s512", 8,
		prog.Op{Class: prog.VLoad, VL: n, Stride: 1},
		prog.Op{Class: prog.VStore, VL: n, Stride: 512},
	), RunOpts{Procs: 1})
	if strided.Seconds < 3*unit.Seconds {
		t.Errorf("stride-512 store (%.3gs) should be >=3x slower than unit (%.3gs)",
			strided.Seconds, unit.Seconds)
	}
}

func axpyProgram(n int64) prog.Program {
	return prog.Simple("axpy", 1,
		prog.Op{Class: prog.VLoad, VL: int(n), Stride: 1},
		prog.Op{Class: prog.VLoad, VL: int(n), Stride: 1},
		prog.Op{Class: prog.VMul, VL: int(n)},
		prog.Op{Class: prog.VAdd, VL: int(n)},
		prog.Op{Class: prog.VStore, VL: int(n), Stride: 1},
	)
}

func TestAxpyFlopsRate(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	r := m.Run(axpyProgram(1<<20), RunOpts{Procs: 1})
	if r.Flops != 2<<20 {
		t.Errorf("axpy flops = %d, want %d", r.Flops, 2<<20)
	}
	// AXPY moves 3 words per 2 flops: memory-bound at 16 words/clock
	// port -> ~10.7 flops/clock -> ~1.16 GFLOPS at 9.2 ns.
	gf := r.GFLOPS()
	if gf < 0.8 || gf > 1.25 {
		t.Errorf("axpy rate = %.2f GFLOPS, want within [0.8, 1.25]", gf)
	}
}

func TestComputeBoundKernelNearPeak(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	// 16 fused mul+add per loaded word: compute bound.
	n := 1 << 20
	ops := []prog.Op{{Class: prog.VLoad, VL: n, Stride: 1}}
	for i := 0; i < 16; i++ {
		ops = append(ops, prog.Op{Class: prog.VMul, VL: n}, prog.Op{Class: prog.VAdd, VL: n})
	}
	r := m.Run(prog.Simple("dense", 1, ops...), RunOpts{Procs: 1})
	peak := m.Config().PeakFlopsPerCPU() / 1e9
	if gf := r.GFLOPS(); gf < 0.85*peak || gf > peak*1.001 {
		t.Errorf("dense kernel = %.2f GFLOPS, want near peak %.2f", gf, peak)
	}
}

func TestDividePipeExceedsPeakRating(t *testing.T) {
	// Paper, Section 2.1: "With a vector add and vector multiply
	// operating concurrently, the pipes provide 2 GFLOPS peak
	// performance. If a vector divide is also operating at the same
	// time the processor can exceed its peak rating."
	m := New(BenchmarkedSingleCPU())
	n := 1 << 20
	p := prog.Simple("add+mul+div", 1,
		prog.Op{Class: prog.VAdd, VL: n},
		prog.Op{Class: prog.VMul, VL: n},
		prog.Op{Class: prog.VDiv, VL: n / 4}, // divide sustains 1/4 rate
	)
	r := m.Run(p, RunOpts{Procs: 1})
	nominal := m.Config().PeakFlopsPerCPU()
	if rate := float64(r.Flops) / r.Seconds; rate <= nominal {
		t.Errorf("add+mul+div rate %.3g flops/s should exceed the nominal peak %.3g", rate, nominal)
	}
}

func TestParallelSpeedup(t *testing.T) {
	m := New(Benchmarked())
	p := prog.Program{
		Name: "par",
		Phases: []prog.Phase{{
			Name: "work", Parallel: true, Barriers: 1,
			Loops: []prog.Loop{{Trips: 4096, Body: []prog.Op{
				{Class: prog.VLoad, VL: 4096, Stride: 1},
				{Class: prog.VMul, VL: 4096},
				{Class: prog.VMul, VL: 4096},
				{Class: prog.VMul, VL: 4096},
				{Class: prog.VAdd, VL: 4096},
				{Class: prog.VAdd, VL: 4096},
				{Class: prog.VAdd, VL: 4096},
				{Class: prog.VStore, VL: 4096, Stride: 1},
			}}},
		}},
	}
	t1 := m.Run(p, RunOpts{Procs: 1}).Seconds
	t32 := m.Run(p, RunOpts{Procs: 32}).Seconds
	speedup := t1 / t32
	if speedup < 20 || speedup > 32.01 {
		t.Errorf("32-CPU speedup = %.1f, want within [20, 32]", speedup)
	}
}

func TestSerialPhaseNotParallelized(t *testing.T) {
	m := New(Benchmarked())
	p := prog.Program{
		Name: "amdahl",
		Phases: []prog.Phase{
			{Name: "serial", Parallel: false, Loops: []prog.Loop{{Trips: 1000, Body: []prog.Op{{Class: prog.VAdd, VL: 256}}}}},
		},
	}
	t1 := m.Run(p, RunOpts{Procs: 1}).Seconds
	t32 := m.Run(p, RunOpts{Procs: 32}).Seconds
	if math.Abs(t1-t32)/t1 > 0.01 {
		t.Errorf("serial phase time changed with CPUs: %.3g vs %.3g", t1, t32)
	}
}

func TestEnsembleInterference(t *testing.T) {
	m := New(Benchmarked())
	// A memory-intensive job on 4 CPUs, alone vs. with the node full.
	p := prog.Program{
		Name: "job",
		Phases: []prog.Phase{{
			Name: "step", Parallel: true,
			Loops: []prog.Loop{{Trips: 1 << 12, Body: []prog.Op{
				{Class: prog.VLoad, VL: 4096, Stride: 1},
				{Class: prog.VMul, VL: 4096},
				{Class: prog.VAdd, VL: 4096},
				{Class: prog.VStore, VL: 4096, Stride: 1},
			}}},
		}},
	}
	alone := m.Run(p, RunOpts{Procs: 4}).Seconds
	crowded := m.Run(p, RunOpts{Procs: 4, ActiveCPUs: 32}).Seconds
	degr := (crowded - alone) / alone * 100
	if degr <= 0.5 || degr > 4 {
		t.Errorf("ensemble degradation = %.2f%%, want within (0.5, 4] (paper: 1.89%%)", degr)
	}
}

func TestIntrinsicRatesOrdering(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	rate := func(in prog.Intrinsic) float64 {
		n := 1 << 20
		r := m.Run(prog.Simple("intr", 1,
			prog.Op{Class: prog.VLoad, VL: n, Stride: 1},
			prog.Op{Class: prog.VIntrinsic, VL: n, Intr: in},
			prog.Op{Class: prog.VStore, VL: n, Stride: 1},
		), RunOpts{Procs: 1})
		return float64(n) / r.Seconds / 1e6 // Mcalls/s
	}
	sqrt, exp, pw := rate(prog.Sqrt), rate(prog.Exp), rate(prog.Pow)
	if !(sqrt > exp && exp > pw) {
		t.Errorf("intrinsic rate ordering SQRT(%.0f) > EXP(%.0f) > PWR(%.0f) violated", sqrt, exp, pw)
	}
	// Vectorized intrinsics should run at tens of Mcalls/s.
	if exp < 20 || exp > 500 {
		t.Errorf("EXP rate = %.0f Mcalls/s, want within [20, 500]", exp)
	}
}

func TestRunClampsProcs(t *testing.T) {
	m := New(Benchmarked())
	r := m.Run(copyProgram(1024, 16), RunOpts{Procs: 64})
	if r.Procs != 32 {
		t.Errorf("procs clamped to %d, want 32", r.Procs)
	}
	r = m.Run(copyProgram(1024, 16), RunOpts{})
	if r.Procs != 1 {
		t.Errorf("default procs = %d, want 1", r.Procs)
	}
}

func TestResultAccounting(t *testing.T) {
	m := New(BenchmarkedSingleCPU())
	p := copyProgram(1000, 10)
	r := m.Run(p, RunOpts{Procs: 1})
	if r.Words != p.Words() {
		t.Errorf("result words = %d, want %d", r.Words, p.Words())
	}
	if r.Seconds <= 0 || r.Clocks <= 0 {
		t.Errorf("non-positive time: %+v", r)
	}
	if len(r.Phases) != 1 || r.Phases[0].Name != "copy" {
		t.Errorf("phase breakdown missing: %+v", r.Phases)
	}
	if !r.Phases[0].MemBound {
		t.Error("copy phase should be memory bound")
	}
	if got := m.Seconds(r.Clocks); math.Abs(got-r.Seconds) > 1e-15 {
		t.Errorf("Seconds(clocks) = %v, want %v", got, r.Seconds)
	}
}

func TestMachineString(t *testing.T) {
	m := New(Benchmarked())
	s := m.String()
	if s == "" {
		t.Error("empty machine description")
	}
}

func TestZeroTripLoopFree(t *testing.T) {
	m := New(Benchmarked())
	p := prog.Program{Name: "empty", Phases: []prog.Phase{{Name: "x", Parallel: true,
		Loops: []prog.Loop{{Trips: 0, Body: []prog.Op{{Class: prog.VAdd, VL: 8}}}}}}}
	r := m.Run(p, RunOpts{Procs: 1})
	if r.Clocks != 0 {
		t.Errorf("zero-trip loop cost %v clocks, want 0", r.Clocks)
	}
}

func TestScalarWorkCharged(t *testing.T) {
	m := New(Benchmarked())
	p := prog.Simple("scalar", 100, prog.Op{Class: prog.Scalar, Count: 200})
	r := m.Run(p, RunOpts{Procs: 1})
	// 200 instructions / 2 per clock = 100 clocks/trip + overhead.
	if r.Clocks < 100*100 {
		t.Errorf("scalar clocks = %v, want >= 10000", r.Clocks)
	}
}
