package membank

import (
	"testing"
	"testing/quick"
)

func TestNewSX4Geometry(t *testing.T) {
	s := NewSX4()
	if s.Banks != 1024 || s.BusyClocks != 2 || s.Pipes != 8 {
		t.Fatalf("unexpected SX-4 geometry: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	for _, s := range []System{
		{Banks: 0, BusyClocks: 2, Pipes: 8},
		{Banks: 1024, BusyClocks: 0, Pipes: 8},
		{Banks: 1024, BusyClocks: 2, Pipes: 0},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestUnitAndStride2ConflictFree(t *testing.T) {
	s := NewSX4()
	for _, stride := range []int{1, -1, 2, -2} {
		if f := s.StrideFactor(stride); f != 1 {
			t.Errorf("StrideFactor(%d) = %v, want 1 (paper guarantee)", stride, f)
		}
	}
}

func TestOddStridesNoBankConflicts(t *testing.T) {
	s := NewSX4()
	// Odd strides are coprime with a power-of-two bank count: the
	// stream rotates through all banks, so only the base strided
	// penalty applies.
	for _, stride := range []int{3, 5, 7, 63, 127, 999} {
		if f := s.StrideFactor(stride); f != s.StridedPenalty {
			t.Errorf("StrideFactor(%d) = %v, want base penalty %v", stride, f, s.StridedPenalty)
		}
	}
}

func TestZeroStridedPenaltyMeansNone(t *testing.T) {
	s := NewSX4()
	s.StridedPenalty = 0
	if f := s.StrideFactor(7); f != 1 {
		t.Errorf("StrideFactor(7) with zero penalty = %v, want 1", f)
	}
}

func TestPowerOfTwoStridesDegrade(t *testing.T) {
	s := NewSX4()
	// stride 128 -> 8 distinct banks, need 16 -> bank factor 2, below
	// the base strided penalty.
	if f := s.StrideFactor(128); f != s.StridedPenalty {
		t.Errorf("StrideFactor(128) = %v, want %v", f, s.StridedPenalty)
	}
	// stride 1024 -> 1 bank, factor 16.
	if f := s.StrideFactor(1024); f != 16 {
		t.Errorf("StrideFactor(1024) = %v, want 16", f)
	}
	// Degradation is monotone in the power of two.
	prev := 0.0
	for _, stride := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		f := s.StrideFactor(stride)
		if f < prev {
			t.Errorf("StrideFactor(%d) = %v < previous %v; want monotone", stride, f, prev)
		}
		prev = f
	}
}

func TestStrideFactorAtLeastOne(t *testing.T) {
	s := NewSX4()
	f := func(stride int16) bool {
		return s.StrideFactor(int(stride)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrideFactorSignSymmetric(t *testing.T) {
	s := NewSX4()
	f := func(stride int16) bool {
		if stride == 0 {
			return true
		}
		return s.StrideFactor(int(stride)) == s.StrideFactor(-int(stride))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrideElementsPerClock(t *testing.T) {
	s := NewSX4()
	if got := s.StrideElementsPerClock(1); got != 8 {
		t.Errorf("unit stride rate = %v, want 8", got)
	}
	if got := s.StrideElementsPerClock(1024); got != 0.5 {
		t.Errorf("stride-1024 rate = %v, want 0.5", got)
	}
}

func TestGatherSlowerThanUnitStride(t *testing.T) {
	s := NewSX4()
	g := s.GatherFactor(2.0, 0)
	if g <= s.StrideFactor(1) {
		t.Errorf("GatherFactor = %v, want > unit-stride factor 1", g)
	}
	if g != 4 { // 8 pipes / 2 elements-per-clock
		t.Errorf("GatherFactor(2.0, large span) = %v, want 4", g)
	}
}

func TestGatherSmallSpanWorse(t *testing.T) {
	s := NewSX4()
	large := s.GatherFactor(2.0, 0)
	small := s.GatherFactor(2.0, 4)
	if small <= large {
		t.Errorf("gather with 4-element span (%v) should be slower than large span (%v)", small, large)
	}
	// Monotone improvement as the span grows.
	prev := s.GatherFactor(2.0, 2)
	for _, span := range []int{4, 8, 16, 64, 256, 1024, 4096} {
		f := s.GatherFactor(2.0, span)
		if f > prev+1e-12 {
			t.Errorf("GatherFactor(span=%d) = %v > previous %v; want non-increasing", span, f, prev)
		}
		prev = f
	}
}

func TestGatherFactorPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GatherFactor(0) did not panic")
		}
	}()
	NewSX4().GatherFactor(0, 0)
}

func TestContentionNoOversubscription(t *testing.T) {
	s := NewSX4()
	// 32 CPUs each demanding 16 words/clock exactly saturates the
	// 512-word/clock node: no slowdown yet.
	if f := s.ContentionFactor(512, 512); f != 1 {
		t.Errorf("saturated-node factor = %v, want 1", f)
	}
}

func TestContentionOversubscribed(t *testing.T) {
	s := NewSX4()
	if f := s.ContentionFactor(1024, 512); f != 2 {
		t.Errorf("2x oversubscription factor = %v, want 2", f)
	}
}

func TestContentionSingleCPUUnaffected(t *testing.T) {
	s := NewSX4()
	if f := s.ContentionFactor(16, 512); f != 1 {
		t.Errorf("single-CPU factor = %v, want 1", f)
	}
}

func TestContentionMonotoneInDemand(t *testing.T) {
	s := NewSX4()
	prev := 0.0
	for p := 1; p <= 32; p++ {
		f := s.ContentionFactor(float64(32*p), 512)
		if f < prev {
			t.Errorf("contention factor decreased at p=%d: %v < %v", p, f, prev)
		}
		prev = f
	}
}

func TestCapacityWordsPerClock(t *testing.T) {
	if got := NewSX4().CapacityWordsPerClock(); got != 512 {
		t.Errorf("capacity = %v words/clock, want 512", got)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 8, 4}, {1024, 512, 512}, {7, 1024, 1}, {-12, 8, 4}, {0, 5, 5},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
