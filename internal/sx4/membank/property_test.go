package membank

import (
	"math"
	"testing"
)

// geometries spans the hardware-plausible configuration space the
// differential verification suite's fuzz decoder draws from (plus the
// real SX-4 geometry), so the factor invariants below are checked on
// every machine the fuzz targets can construct, not just the default.
func geometries() []System {
	var out []System
	for _, banks := range []int{64, 128, 256, 512, 1024} {
		for _, busy := range []int{1, 2, 4} {
			for _, pipes := range []int{1, 2, 4, 8, 16} {
				for _, pen := range []float64{0, 1, 2.5} {
					out = append(out, System{
						Banks: banks, BusyClocks: busy,
						Pipes: pipes, StridedPenalty: pen,
					})
				}
			}
		}
	}
	return append(out, NewSX4())
}

// TestPropertyFactorsAtLeastOne: on every plausible geometry, no access
// pattern may ever be modeled as faster than the ideal pipe rate —
// every slowdown factor is finite and >= 1.
func TestPropertyFactorsAtLeastOne(t *testing.T) {
	spans := []int{0, 1, 7, 63, 64, 65, 1000, 1 << 14}
	rates := []float64{0.5, 1, 2, 4}
	for _, s := range geometries() {
		if err := s.Validate(); err != nil {
			t.Fatalf("geometry %+v invalid: %v", s, err)
		}
		for stride := -40; stride <= 40; stride++ {
			f := s.StrideFactor(stride)
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 1 {
				t.Fatalf("%+v: StrideFactor(%d) = %v", s, stride, f)
			}
		}
		for _, rate := range rates {
			for _, span := range spans {
				g := s.GatherFactor(rate, span)
				if math.IsNaN(g) || math.IsInf(g, 0) || g < 1 {
					t.Fatalf("%+v: GatherFactor(%v, %d) = %v", s, rate, span, g)
				}
			}
		}
	}
}

// TestPropertyGuaranteedStridesConflictFree: the paper's conflict-free
// guarantee for unit and stride-2 access (and broadcast) holds on every
// geometry, independent of bank count or penalty setting.
func TestPropertyGuaranteedStridesConflictFree(t *testing.T) {
	for _, s := range geometries() {
		for _, stride := range []int{0, 1, -1, 2, -2} {
			if f := s.StrideFactor(stride); f != 1 {
				t.Fatalf("%+v: StrideFactor(%d) = %v, want exactly 1", s, stride, f)
			}
		}
	}
}

// TestPropertyContentionFloor: node contention never speeds a run up,
// and is exactly 1 whenever demand fits the banked capacity.
func TestPropertyContentionFloor(t *testing.T) {
	for _, s := range geometries() {
		cap := s.CapacityWordsPerClock()
		for _, demand := range []float64{0, 1, cap / 2, cap, cap * 1.5, cap * 32} {
			f := s.ContentionFactor(demand, cap)
			if f < 1 || math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("%+v: ContentionFactor(%v, %v) = %v", s, demand, cap, f)
			}
			if demand <= cap && f != 1 {
				t.Fatalf("%+v: contention %v charged though demand %v fits capacity %v",
					s, f, demand, cap)
			}
		}
	}
}
