// Package membank models the SX-4 main memory unit: up to 1024 banks of
// 64-bit-wide synchronous SRAM with a two-clock bank cycle, reached
// through a non-blocking crossbar with a 16 GB/s port per processor.
//
// The paper guarantees conflict-free access for unit stride and stride 2
// from all 32 processors simultaneously; higher strides and list-vector
// (gather/scatter) access "benefit from the very short bank cycle time"
// but are not conflict free. This package quantifies those effects as a
// slowdown factor applied to the ideal pipe rate.
package membank

import "fmt"

// System describes a banked memory system.
type System struct {
	// Banks is the number of independently cycling banks.
	Banks int
	// BusyClocks is the bank cycle (recovery) time in clocks.
	BusyClocks int
	// Pipes is the number of parallel load/store pipes per vector
	// memory instruction (8 on the SX-4), i.e. the ideal element rate
	// per clock for one stream.
	Pipes int
	// StridedPenalty is the minimum slowdown of a non-unit,
	// non-stride-2 stream relative to the ideal rate, from crossbar
	// section conflicts and partial-line utilization; only unit and
	// stride-2 access carry the paper's conflict-free guarantee. A
	// zero value means no penalty.
	StridedPenalty float64
}

// NewSX4 returns the SX-4 main memory geometry: 1024 banks, 2-clock bank
// cycle, 8-wide load/store pipes.
func NewSX4() System {
	return System{Banks: 1024, BusyClocks: 2, Pipes: 8, StridedPenalty: 2.5}
}

// Validate reports whether the system description is usable.
func (s System) Validate() error {
	if s.Banks <= 0 || s.BusyClocks <= 0 || s.Pipes <= 0 {
		return fmt.Errorf("membank: invalid system %+v", s)
	}
	return nil
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// StrideFactor returns the slowdown factor (>= 1) for a vector memory
// stream with the given element stride, relative to the ideal rate of
// Pipes elements per clock.
//
// A stream at stride s touches Banks/gcd(s,Banks) distinct banks. To
// sustain Pipes elements per clock with a BusyClocks bank cycle the
// stream needs at least Pipes*BusyClocks distinct banks in its rotation;
// with fewer, throughput degrades proportionally. Stride 1 and 2 are
// conflict-free by construction (the paper's guarantee).
func (s System) StrideFactor(stride int) float64 {
	if stride == 0 {
		// Broadcast of a single element: served from one bank but a
		// single load; treat as conflict-free (register broadcast).
		return 1
	}
	if stride == 1 || stride == -1 || stride == 2 || stride == -2 {
		return 1
	}
	distinct := s.Banks / gcd(stride, s.Banks)
	needed := s.Pipes * s.BusyClocks
	f := 1.0
	if distinct < needed {
		f = float64(needed) / float64(distinct)
	}
	if s.StridedPenalty > f {
		f = s.StridedPenalty
	}
	return f
}

// StrideElementsPerClock returns the sustainable element rate for a
// strided stream.
func (s System) StrideElementsPerClock(stride int) float64 {
	return float64(s.Pipes) / s.StrideFactor(stride)
}

// GatherFactor returns the slowdown factor for list-vector (indirect)
// access with approximately uniform random indices over a working set of
// span elements. Random requests collide in banks occasionally; more
// importantly the SX-4's list-vector path generates one address per
// element through the gather pipe, which sustains well below the
// contiguous stream rate. gatherRate is the machine's sustainable
// gather rate in elements/clock (Config.GatherWordsPerClock).
func (s System) GatherFactor(gatherRate float64, span int) float64 {
	if gatherRate <= 0 {
		panic("membank: non-positive gather rate")
	}
	base := float64(s.Pipes) / gatherRate
	if base < 1 {
		base = 1
	}
	// When the index span is much smaller than the bank count the same
	// banks are hit repeatedly; model the extra serialization for very
	// small spans. For span >= Banks the correction vanishes.
	if span > 0 && span < s.Banks {
		occupancy := float64(s.Banks) / float64(span)
		extra := occupancy / float64(s.Banks/(s.Pipes*s.BusyClocks))
		if extra > 1 {
			base *= extra
		}
	}
	return base
}

// ContentionFactor returns the node-level memory slowdown when
// multiple CPUs stream concurrently: the ratio of aggregate ideal
// demand to the node's sustainable rate (Banks/BusyClocks words per
// clock, 512 for a full SX-4 node), floored at 1. Residual cross-job
// interference is modeled separately by the machine.
func (s System) ContentionFactor(demandWordsPerClock, capacityWordsPerClock float64) float64 {
	if capacityWordsPerClock > 0 && demandWordsPerClock > capacityWordsPerClock {
		return demandWordsPerClock / capacityWordsPerClock
	}
	return 1
}

// CapacityWordsPerClock returns the aggregate sustainable word rate of
// the banked memory: Banks/BusyClocks.
func (s System) CapacityWordsPerClock() float64 {
	return float64(s.Banks) / float64(s.BusyClocks)
}
