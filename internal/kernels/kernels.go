// Package kernels implements the NCAR memory-bandwidth kernels COPY,
// IA (indirect address), and XPOSE (matrix transposition).
//
// Each kernel exists in two forms: a host implementation operating on
// real arrays (used to verify semantics and to cross-check the analytic
// operation counts), and a trace builder producing the prog.Program the
// machine model times. The benchmarks sweep (N, M) pairs of roughly
// constant data volume: many small arrays at one end, a few large
// arrays at the other.
package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"sx4bench/internal/core/sched"
	"sx4bench/internal/sx4/commreg"
	"sx4bench/internal/sx4/prog"
)

// WordBytes is the size of the 64-bit elements all kernels move.
const WordBytes = 8

// Copy describes one instance of the COPY benchmark:
//
//	do j=1,M; do i=1,N; b(i,j)=a(i,j); end do; end do
type Copy struct{ N, M int }

// Trace returns the operation trace of the kernel: M trips of a unit
// stride load/store pair of vector length N.
func (k Copy) Trace() prog.Program {
	return prog.Simple(fmt.Sprintf("COPY(N=%d,M=%d)", k.N, k.M), int64(k.M),
		prog.Op{Class: prog.VLoad, VL: k.N, Stride: 1},
		prog.Op{Class: prog.VStore, VL: k.N, Stride: 1},
	)
}

// PayloadBytes counts the payload moved: each element of a is read and
// written to b (the STREAM COPY convention).
func (k Copy) PayloadBytes() int64 { return 2 * WordBytes * int64(k.N) * int64(k.M) }

// Host executes the copy on real arrays and returns b.
func (k Copy) Host(a []float64) []float64 {
	if len(a) != k.N*k.M {
		panic(fmt.Sprintf("kernels: COPY input length %d, want %d", len(a), k.N*k.M))
	}
	b := make([]float64, len(a))
	for j := 0; j < k.M; j++ {
		row := j * k.N
		for i := 0; i < k.N; i++ {
			b[row+i] = a[row+i]
		}
	}
	return b
}

// HostParallel executes the copy with the instance loop microtasked
// across workers (the repo convention: 0 means GOMAXPROCS, 1 the plain
// serial path). Rows are disjoint, so the output is identical to Host
// for any worker count.
func (k Copy) HostParallel(a []float64, workers int) []float64 {
	if len(a) != k.N*k.M {
		panic(fmt.Sprintf("kernels: COPY input length %d, want %d", len(a), k.N*k.M))
	}
	b := make([]float64, len(a))
	commreg.ParallelFor(sched.Workers(workers), k.M, func(j int) {
		row := j * k.N
		copy(b[row:row+k.N], a[row:row+k.N])
	})
	return b
}

// IA describes one instance of the indirect-address benchmark:
//
//	do j=1,M; do i=1,N; b(i,j)=a(indx(i),j); end do; end do
type IA struct{ N, M int }

// Trace returns the trace: per trip, the index vector load, the gather,
// and the contiguous store.
func (k IA) Trace() prog.Program {
	return prog.Simple(fmt.Sprintf("IA(N=%d,M=%d)", k.N, k.M), int64(k.M),
		prog.Op{Class: prog.VLoad, VL: k.N, Stride: 1}, // indx(i)
		prog.Op{Class: prog.VGather, VL: k.N, Span: k.N},
		prog.Op{Class: prog.VStore, VL: k.N, Stride: 1},
	)
}

// PayloadBytes counts only the elements of a moved to b, not the index
// values used — the paper's counting rule.
func (k IA) PayloadBytes() int64 { return 2 * WordBytes * int64(k.N) * int64(k.M) }

// Host executes the gather on real arrays.
func (k IA) Host(a []float64, indx []int) []float64 {
	if len(a) != k.N*k.M || len(indx) != k.N {
		panic("kernels: IA input shape mismatch")
	}
	b := make([]float64, k.N*k.M)
	for j := 0; j < k.M; j++ {
		row := j * k.N
		for i := 0; i < k.N; i++ {
			b[row+i] = a[row+indx[i]]
		}
	}
	return b
}

// HostParallel executes the gather with the instance loop microtasked
// across workers; identical output to Host for any worker count.
func (k IA) HostParallel(a []float64, indx []int, workers int) []float64 {
	if len(a) != k.N*k.M || len(indx) != k.N {
		panic("kernels: IA input shape mismatch")
	}
	b := make([]float64, k.N*k.M)
	commreg.ParallelFor(sched.Workers(workers), k.M, func(j int) {
		row := j * k.N
		for i := 0; i < k.N; i++ {
			b[row+i] = a[row+indx[i]]
		}
	})
	return b
}

// Permutation returns a deterministic pseudo-random permutation of
// [0, n), the index vector the IA benchmark gathers through.
func Permutation(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	p := rng.Perm(n)
	return p
}

// Xpose describes one instance of the matrix-transposition benchmark:
//
//	do k=1,M; do j=1,N; do i=1,N; b(i,j,k)=a(j,i,k); end do; ...
//
// In column-major storage the inner i-loop reads a at stride N and
// writes b at stride 1: a strided (scatter-like) access pattern.
type Xpose struct{ N, M int }

// Trace returns the trace: N*M trips of a stride-N load and unit store
// of vector length N.
func (k Xpose) Trace() prog.Program {
	return prog.Simple(fmt.Sprintf("XPOSE(N=%d,M=%d)", k.N, k.M), int64(k.N)*int64(k.M),
		prog.Op{Class: prog.VLoad, VL: k.N, Stride: k.N},
		prog.Op{Class: prog.VStore, VL: k.N, Stride: 1},
	)
}

// PayloadBytes counts each element of a moved to b.
func (k Xpose) PayloadBytes() int64 {
	return 2 * WordBytes * int64(k.N) * int64(k.N) * int64(k.M)
}

// Host transposes M matrices of size N x N stored contiguously.
func (k Xpose) Host(a []float64) []float64 {
	if len(a) != k.N*k.N*k.M {
		panic("kernels: XPOSE input shape mismatch")
	}
	b := make([]float64, len(a))
	n := k.N
	for m := 0; m < k.M; m++ {
		base := m * n * n
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				b[base+j*n+i] = a[base+i*n+j]
			}
		}
	}
	return b
}

// HostParallel transposes with the matrix (instance) loop microtasked
// across workers; identical output to Host for any worker count.
func (k Xpose) HostParallel(a []float64, workers int) []float64 {
	if len(a) != k.N*k.N*k.M {
		panic("kernels: XPOSE input shape mismatch")
	}
	b := make([]float64, len(a))
	n := k.N
	commreg.ParallelFor(sched.Workers(workers), k.M, func(m int) {
		base := m * n * n
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				b[base+j*n+i] = a[base+i*n+j]
			}
		}
	})
	return b
}

// CopySweep returns the paper's COPY sweep: the copy axis N ranges over
// 1..10^6 with N*M ~= 10^6.
func CopySweep(perDecade int) []Copy {
	var ks []Copy
	for _, p := range sweepPairs(1_000_000, 1, 1_000_000, perDecade) {
		ks = append(ks, Copy{N: p.n, M: p.m})
	}
	return ks
}

// IASweep returns the IA sweep: gather axis 1..10^6, constant volume.
func IASweep(perDecade int) []IA {
	var ks []IA
	for _, p := range sweepPairs(1_000_000, 1, 1_000_000, perDecade) {
		ks = append(ks, IA{N: p.n, M: p.m})
	}
	return ks
}

// XposeSweep returns the XPOSE sweep: matrix size 2..10^3 with
// N^2*M ~= 10^6 (instance axis 250000..1).
func XposeSweep(perDecade int) []Xpose {
	var ks []Xpose
	for _, p := range sweepPairs(1000, 2, 1000, perDecade) {
		m := 1_000_000 / (p.n * p.n)
		if m < 1 {
			m = 1
		}
		ks = append(ks, Xpose{N: p.n, M: m})
	}
	return ks
}

type pair struct{ n, m int }

func sweepPairs(volume, minN, maxN, perDecade int) []pair {
	var ps []pair
	seen := map[int]bool{}
	// log-spaced N values.
	ratio := float64(maxN) / float64(minN)
	steps := perDecade
	for ratio >= 10 {
		steps += perDecade
		ratio /= 10
	}
	for i := 0; i <= steps; i++ {
		f := float64(i) / float64(steps)
		n := int(0.5 + float64(minN)*math.Pow(float64(maxN)/float64(minN), f))
		if n < minN {
			n = minN
		}
		if n > maxN {
			n = maxN
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		m := volume / n
		if m < 1 {
			m = 1
		}
		ps = append(ps, pair{n, m})
	}
	return ps
}
