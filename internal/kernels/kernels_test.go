package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

func TestCopyHostSemantics(t *testing.T) {
	k := Copy{N: 7, M: 3}
	a := make([]float64, 21)
	for i := range a {
		a[i] = float64(i) * 1.5
	}
	b := k.Host(a)
	for i := range a {
		if b[i] != a[i] {
			t.Fatalf("b[%d] = %v, want %v", i, b[i], a[i])
		}
	}
}

func TestCopyHostPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad shape did not panic")
		}
	}()
	Copy{N: 4, M: 4}.Host(make([]float64, 3))
}

func TestIAHostSemantics(t *testing.T) {
	k := IA{N: 5, M: 2}
	a := []float64{10, 11, 12, 13, 14, 20, 21, 22, 23, 24}
	indx := []int{4, 3, 2, 1, 0}
	b := k.Host(a, indx)
	want := []float64{14, 13, 12, 11, 10, 24, 23, 22, 21, 20}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("b[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestIAGatherIsPermutationInverse(t *testing.T) {
	f := func(seed int64) bool {
		n := 32
		k := IA{N: n, M: 1}
		indx := Permutation(n, seed)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(i)
		}
		b := k.Host(a, indx)
		// b[i] = a[indx[i]]: the multiset of values is preserved.
		seen := make([]bool, n)
		for _, v := range b {
			seen[int(v)] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermutationValid(t *testing.T) {
	p := Permutation(100, 7)
	if len(p) != 100 {
		t.Fatalf("len = %d", len(p))
	}
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestXposeHostSemantics(t *testing.T) {
	k := Xpose{N: 3, M: 2}
	a := make([]float64, 18)
	for i := range a {
		a[i] = float64(i)
	}
	b := k.Host(a)
	for m := 0; m < 2; m++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				if b[m*9+j*3+i] != a[m*9+i*3+j] {
					t.Fatalf("transpose wrong at m=%d i=%d j=%d", m, i, j)
				}
			}
		}
	}
}

func TestXposeInvolution(t *testing.T) {
	k := Xpose{N: 8, M: 3}
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 8*8*3)
	for i := range a {
		a[i] = rng.Float64()
	}
	twice := k.Host(k.Host(a))
	for i := range a {
		if twice[i] != a[i] {
			t.Fatal("transpose twice != identity")
		}
	}
}

func TestTraceWordCountsMatchHostTraffic(t *testing.T) {
	// The analytic traces must move exactly the words the host loops
	// touch (the cross-check DESIGN.md promises).
	c := Copy{N: 100, M: 10}
	if got, want := c.Trace().Words(), int64(2*100*10); got != want {
		t.Errorf("COPY trace words = %d, want %d", got, want)
	}
	ia := IA{N: 100, M: 10}
	// index load + gather (data+index accounting) + store per trip.
	if got, want := ia.Trace().Words(), int64(10*(100+200+100)); got != want {
		t.Errorf("IA trace words = %d, want %d", got, want)
	}
	x := Xpose{N: 16, M: 4}
	if got, want := x.Trace().Words(), int64(16*4)*int64(2*16); got != want {
		t.Errorf("XPOSE trace words = %d, want %d", got, want)
	}
}

func TestPayloadBytes(t *testing.T) {
	if got := (Copy{N: 10, M: 10}).PayloadBytes(); got != 1600 {
		t.Errorf("COPY payload = %d, want 1600", got)
	}
	if got := (IA{N: 10, M: 10}).PayloadBytes(); got != 1600 {
		t.Errorf("IA payload = %d, want 1600 (indices not counted)", got)
	}
	if got := (Xpose{N: 10, M: 3}).PayloadBytes(); got != 2*8*100*3 {
		t.Errorf("XPOSE payload = %d", got)
	}
}

func TestSweepShapes(t *testing.T) {
	cs := CopySweep(4)
	if len(cs) < 15 {
		t.Errorf("COPY sweep has %d points, want >= 15", len(cs))
	}
	if cs[0].N != 1 || cs[len(cs)-1].N != 1_000_000 {
		t.Errorf("COPY sweep range %d..%d", cs[0].N, cs[len(cs)-1].N)
	}
	for _, k := range cs {
		vol := k.N * k.M
		if vol < 500_000 || vol > 2_000_000 {
			t.Errorf("COPY pair (%d,%d) volume %d not constant", k.N, k.M, vol)
		}
	}
	xs := XposeSweep(4)
	if xs[0].N != 2 || xs[len(xs)-1].N != 1000 {
		t.Errorf("XPOSE sweep range %d..%d, want 2..1000", xs[0].N, xs[len(xs)-1].N)
	}
	for _, k := range xs {
		vol := k.N * k.N * k.M
		if vol < 400_000 || vol > 2_100_000 {
			t.Errorf("XPOSE pair (%d,%d) volume %d not constant", k.N, k.M, vol)
		}
	}
	if xs[0].M != 250_000 {
		t.Errorf("XPOSE first instance count = %d, want 250000", xs[0].M)
	}
}

func TestIASweepShape(t *testing.T) {
	is := IASweep(4)
	if len(is) < 15 {
		t.Fatalf("IA sweep has %d points", len(is))
	}
	if is[0].N != 1 || is[len(is)-1].N != 1_000_000 {
		t.Errorf("IA sweep range %d..%d", is[0].N, is[len(is)-1].N)
	}
	for _, k := range is {
		if vol := k.N * k.M; vol < 500_000 || vol > 2_000_000 {
			t.Errorf("IA pair (%d,%d) volume %d not constant", k.N, k.M, vol)
		}
	}
}

func TestHostShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { IA{N: 4, M: 2}.Host(make([]float64, 8), make([]int, 3)) },
		func() { Xpose{N: 4, M: 2}.Host(make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad shape did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFigure5Ordering(t *testing.T) {
	// At large N, COPY must far exceed XPOSE and IA (Figure 5).
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	bw := func(p prog.Program, payload int64) float64 {
		r := m.Run(p, sx4.RunOpts{Procs: 1})
		return float64(payload) / r.Seconds / 1e6
	}
	c := Copy{N: 1 << 20, M: 1}
	i := IA{N: 1 << 20, M: 1}
	x := Xpose{N: 1000, M: 1}
	copyBW := bw(c.Trace(), c.PayloadBytes())
	iaBW := bw(i.Trace(), i.PayloadBytes())
	xposeBW := bw(x.Trace(), x.PayloadBytes())
	if !(copyBW > 2*xposeBW && copyBW > 2*iaBW) {
		t.Errorf("COPY %.0f MB/s should far exceed XPOSE %.0f and IA %.0f", copyBW, xposeBW, iaBW)
	}
}
