package kernels

import "testing"

func hostInput(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%97) - 48
	}
	return a
}

// The HostParallel kernels must produce byte-for-byte the serial Host
// output for every worker setting, including the GOMAXPROCS default.
func TestHostParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		ck := Copy{N: 37, M: 29}
		a := hostInput(ck.N * ck.M)
		want := ck.Host(a)
		got := ck.HostParallel(a, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("COPY workers=%d differs at %d", workers, i)
			}
		}

		ik := IA{N: 64, M: 21}
		ai := hostInput(ik.N * ik.M)
		indx := Permutation(ik.N, 5)
		wantI := ik.Host(ai, indx)
		gotI := ik.HostParallel(ai, indx, workers)
		for i := range wantI {
			if gotI[i] != wantI[i] {
				t.Fatalf("IA workers=%d differs at %d", workers, i)
			}
		}

		xk := Xpose{N: 17, M: 9}
		ax := hostInput(xk.N * xk.N * xk.M)
		wantX := xk.Host(ax)
		gotX := xk.HostParallel(ax, workers)
		for i := range wantX {
			if gotX[i] != wantX[i] {
				t.Fatalf("XPOSE workers=%d differs at %d", workers, i)
			}
		}
	}
}
