package ccm2

import (
	"math"
	"testing"
)

func TestCondensationRemovesSupersaturation(t *testing.T) {
	m := testModel(t)
	tune := DefaultPhysics()
	// Supersaturate a patch of the top layer.
	for i := 0; i < 50; i++ {
		m.Moisture[0][i] = 1.0 // wildly supersaturated
	}
	var totalRain float64
	for pass := 0; pass < 100; pass++ {
		d := m.StepPhysics(tune)
		totalRain += d.Precipitation
	}
	qs := tune.qSat(0, m.NLev())
	for i := 0; i < 50; i++ {
		if m.Moisture[0][i] > qs*1.01 {
			t.Fatalf("cell %d still supersaturated: %v > %v", i, m.Moisture[0][i], qs)
		}
	}
	if totalRain <= 0 {
		t.Error("no precipitation produced")
	}
}

func TestPhysicsKeepsMoistureNonNegative(t *testing.T) {
	m := testModel(t)
	tune := DefaultPhysics()
	for pass := 0; pass < 50; pass++ {
		m.StepPhysics(tune)
	}
	for k, q := range m.Moisture {
		for i, v := range q {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("layer %d cell %d: humidity %v", k, i, v)
			}
		}
	}
}

func TestEvaporationRewetsDryBoundaryLayer(t *testing.T) {
	m := testModel(t)
	tune := DefaultPhysics()
	kSfc := m.NLev() - 1
	for i := range m.Moisture[kSfc] {
		m.Moisture[kSfc][i] = 0 // desiccate the boundary layer
	}
	var evap float64
	for pass := 0; pass < 200; pass++ {
		evap += m.StepPhysics(tune).Evaporation
	}
	if evap <= 0 {
		t.Fatal("no evaporation")
	}
	target := tune.SurfaceWetness * tune.qSat(kSfc, m.NLev())
	for i := range m.Moisture[kSfc] {
		if m.Moisture[kSfc][i] < 0.9*target {
			t.Fatalf("boundary layer did not rewet: %v < %v", m.Moisture[kSfc][i], target)
		}
	}
}

func TestConvectionTriggersOnInversion(t *testing.T) {
	m := testModel(t)
	tune := DefaultPhysics()
	// Build a strong moisture inversion: saturated low layer under a
	// bone-dry upper layer.
	kLow := m.NLev() - 1
	for i := range m.Moisture[kLow] {
		m.Moisture[kLow][i] = 1.5 * tune.qSat(kLow, m.NLev())
		m.Moisture[0][i] = 0
	}
	d := m.StepPhysics(tune)
	if d.ConvectedCells == 0 {
		t.Error("no convection on a strong inversion")
	}
}

func TestMoistureBudgetCloses(t *testing.T) {
	// Total water change = evaporation - precipitation, exactly,
	// when convection's entrainment loss is counted as precipitation.
	m := testModel(t)
	tune := DefaultPhysics()
	sum := func() float64 {
		var s float64
		for _, q := range m.Moisture {
			for _, v := range q {
				s += v
			}
		}
		return s
	}
	before := sum()
	d := m.StepPhysics(tune)
	after := sum()
	want := before + d.Evaporation - d.Precipitation
	if math.Abs(after-want) > 1e-9*math.Abs(before) {
		t.Errorf("budget leak: after %v, want %v (evap %v, precip %v)",
			after, want, d.Evaporation, d.Precipitation)
	}
}

func TestClimateReachesMoistureBalance(t *testing.T) {
	// With dynamics + physics together, global moisture settles into a
	// quasi-steady balance (no runaway drying or flooding).
	m := testModel(t)
	m.SemiImplicit = true
	tune := DefaultPhysics()
	dt := m.TimeStep()
	var last float64
	for i := 0; i < 60; i++ {
		m.Step(dt)
		m.StepPhysics(tune)
		last = m.Tr.MeanValue(m.Moisture[m.NLev()-1])
	}
	if last <= 0 || math.IsNaN(last) {
		t.Fatalf("boundary-layer moisture collapsed: %v", last)
	}
	qs := tune.qSat(m.NLev()-1, m.NLev())
	if last > qs {
		t.Errorf("boundary layer supersaturated on average: %v > %v", last, qs)
	}
}

func TestPhysicsParallelDeterministic(t *testing.T) {
	a := testModel(t)
	b := testModel(t)
	b.Workers = 4
	tune := DefaultPhysics()
	for i := 0; i < 10; i++ {
		da := a.StepPhysics(tune)
		db := b.StepPhysics(tune)
		if math.Abs(da.Precipitation-db.Precipitation) > 1e-12 ||
			math.Abs(da.Evaporation-db.Evaporation) > 1e-12 ||
			da.ConvectedCells != db.ConvectedCells {
			t.Fatalf("parallel physics diverged at step %d: %+v vs %+v", i, db, da)
		}
	}
	if a.Checksum() != b.Checksum() {
		t.Error("states diverged")
	}
}
