package ccm2

import (
	"math"
	"testing"
)

// testModel builds a cheap host-integrable model: T21-class grid via
// the fallback canonical grid, 3 levels.
func testModel(t *testing.T) *Model {
	t.Helper()
	res := Resolution{Name: "T21L3", T: 21, NLat: 32, NLon: 64, NLev: 3, TimeStepMin: 10}
	return NewModel(res, 3)
}

func TestModelStableIntegration(t *testing.T) {
	m := testModel(t)
	dt := m.StableTimeStep()
	for i := 0; i < 30; i++ {
		m.Step(dt)
	}
	if m.Steps() != 30 {
		t.Fatalf("steps = %d", m.Steps())
	}
	for k, l := range m.Layers {
		if z := l.MaxAbsGrid(l.Zeta); math.IsNaN(z) || z > 1e-3 {
			t.Errorf("layer %d vorticity unstable: %v", k, z)
		}
		if p := l.MeanPhi(); math.Abs(p-PhiBar) > 0.2*PhiBar {
			t.Errorf("layer %d mean geopotential drifted to %v", k, p)
		}
	}
}

func TestMoistureBoundsPreserved(t *testing.T) {
	m := testModel(t)
	var hi0 float64
	for _, q := range m.Moisture {
		for _, v := range q {
			if v > hi0 {
				hi0 = v
			}
		}
	}
	dt := m.StableTimeStep()
	for i := 0; i < 25; i++ {
		m.Step(dt)
	}
	for k, q := range m.Moisture {
		for _, v := range q {
			if v < -1e-15 || v > hi0*1.0001 {
				t.Fatalf("layer %d moisture %v outside [0, %v]", k, v, hi0)
			}
		}
	}
}

func TestMassConservedPerLayer(t *testing.T) {
	m := testModel(t)
	m0 := make([]float64, m.NLev())
	for k, l := range m.Layers {
		m0[k] = l.MeanPhi()
	}
	dt := m.StableTimeStep()
	for i := 0; i < 20; i++ {
		m.Step(dt)
	}
	// Vertical diffusion exchanges between layers but conserves the
	// column total.
	var tot0, tot1 float64
	for k, l := range m.Layers {
		tot0 += m0[k]
		tot1 += l.MeanPhi()
	}
	if math.Abs(tot1-tot0) > 1e-6*math.Abs(tot0) {
		t.Errorf("column mass drifted: %v -> %v", tot0, tot1)
	}
}

func TestChecksumDeterministic(t *testing.T) {
	a := testModel(t)
	b := testModel(t)
	dt := a.StableTimeStep()
	for i := 0; i < 10; i++ {
		a.Step(dt)
		b.Step(dt)
	}
	if a.Checksum() != b.Checksum() {
		t.Errorf("checksums differ: %v vs %v", a.Checksum(), b.Checksum())
	}
	if a.Checksum() == 0 {
		t.Error("checksum is zero, suspicious")
	}
}

func TestCoolingRatesFromRadabs(t *testing.T) {
	m := testModel(t)
	maxRate := 0.0
	for k, r := range m.coolRate {
		if r < 0 || r > 1.0/(86400) {
			t.Errorf("level %d cooling rate %v unphysical", k, r)
		}
		if r > maxRate {
			maxRate = r
		}
	}
	if maxRate == 0 {
		t.Error("all cooling rates zero; radabs coupling broken")
	}
}

func TestNewModelDefaultLevels(t *testing.T) {
	res, _ := ResolutionByName("T42L18")
	m := NewModel(res, 2) // override keeps the test cheap
	if m.NLev() != 2 {
		t.Errorf("override levels = %d, want 2", m.NLev())
	}
	if m.TimeStep() != 1200 {
		t.Errorf("operational time step = %v s, want 1200", m.TimeStep())
	}
}

func TestSemiImplicitModelAtOperationalStep(t *testing.T) {
	m := testModel(t)
	m.SemiImplicit = true
	dt := m.TimeStep() // the resolution's operational step (minutes)
	for i := 0; i < 24; i++ {
		m.Step(dt)
	}
	for k, l := range m.Layers {
		if z := l.MaxAbsGrid(l.Zeta); math.IsNaN(z) || z > 1e-3 {
			t.Errorf("layer %d unstable at operational dt: %v", k, z)
		}
	}
	for _, q := range m.Moisture {
		for _, v := range q {
			if v < -1e-15 || math.IsNaN(v) {
				t.Fatal("moisture broke under operational stepping")
			}
		}
	}
}

func TestHostParallelismDeterministic(t *testing.T) {
	serial := testModel(t)
	parallel := testModel(t)
	parallel.Workers = 3
	dt := serial.StableTimeStep()
	for i := 0; i < 8; i++ {
		serial.Step(dt)
		parallel.Step(dt)
	}
	if serial.Checksum() != parallel.Checksum() {
		t.Errorf("parallel host integration diverged: %v vs %v",
			parallel.Checksum(), serial.Checksum())
	}
}

func TestTable4Data(t *testing.T) {
	if len(Resolutions) != 5 {
		t.Fatalf("Table 4 has %d rows, want 5", len(Resolutions))
	}
	want := []struct {
		name     string
		lat, lon int
		spacing  float64
		stepMin  float64
	}{
		{"T42L18", 64, 128, 2.8, 20},
		{"T63L18", 96, 192, 2.1, 12},
		{"T85L18", 128, 256, 1.4, 10},
		{"T106L18", 160, 320, 1.1, 7.5},
		{"T170L18", 256, 512, 0.7, 5},
	}
	for i, w := range want {
		r := Resolutions[i]
		if r.Name != w.name || r.NLat != w.lat || r.NLon != w.lon ||
			r.GridSpacingDeg != w.spacing || r.TimeStepMin != w.stepMin || r.NLev != 18 {
			t.Errorf("Table 4 row %d = %+v, want %+v", i, r, w)
		}
	}
}
