package ccm2

import (
	"fmt"

	"sx4bench/internal/sx4/ixs"
	"sx4bench/internal/target"
)

// Multinode projection: the paper benchmarks a single 32-CPU node, but
// the SX-4 scales to 16 nodes over the IXS crossbar (Section 2.5,
// Figure 2). This extension projects CCM2 across nodes: the spectral
// transform requires a data transposition between the latitude-
// decomposed grid space and the wavenumber-decomposed spectral space,
// which on a multinode system becomes an all-to-all through the IXS.

// masterControlClocks is the per-step non-decomposable control cost on
// the master node (time-step sequencing, global diagnostics) for
// multinode runs; a calibration constant of the projection.
const masterControlClocks = 200_000

// TransposeBytesPerStep estimates the per-step internode transpose
// volume: the spectral state (fields x levels x coefficients, complex)
// crosses the node boundary twice per step.
func TransposeBytesPerStep(res Resolution) int64 {
	nspec := (res.T + 1) * (res.T + 2) / 2
	fields := int64(4)
	return 2 * fields * int64(res.NLev) * int64(nspec) * 16 // complex128
}

// MultiNodeResult is one point of the multinode projection.
type MultiNodeResult struct {
	Nodes       int
	TotalCPUs   int
	StepSeconds float64
	GFLOPS      float64
	Efficiency  float64 // vs. ideal scaling from one node
}

// MultiNodeProjection projects a resolution across n SX-4/32 nodes
// joined by the IXS: each node runs 1/n of the latitudes (the
// single-node machine model at full 32-CPU parallelism on 1/n of the
// work), plus the all-to-all transpose and a global barrier per step.
func MultiNodeProjection(m target.Target, res Resolution, nodes int) MultiNodeResult {
	perNodeCPUs := m.Spec().CPUs
	singleNode := StepSeconds(m, res, perNodeCPUs, perNodeCPUs)
	out := MultiNodeResult{Nodes: nodes, TotalCPUs: nodes * perNodeCPUs}
	if nodes <= 1 {
		out.StepSeconds = singleNode
		out.GFLOPS = float64(StepFlops(res)) / singleNode / 1e9
		out.Efficiency = 1
		return out
	}
	x := ixs.New(nodes)
	pairBytes := TransposeBytesPerStep(res) / int64(nodes*(nodes-1))
	comm := x.AllToAllTime(pairBytes) + x.BarrierTime()*4
	// Non-decomposed per-step control: time-step sequencing and
	// diagnostics gathering on the master node do not shrink with the
	// node count (they are part of the single node's orchestration
	// phase, so they appear here only for nodes > 1).
	master := m.Spec().Seconds(masterControlClocks)
	out.StepSeconds = singleNode/float64(nodes) + master + comm
	out.GFLOPS = float64(StepFlops(res)) / out.StepSeconds / 1e9
	ideal := singleNode / float64(nodes)
	out.Efficiency = ideal / out.StepSeconds
	return out
}

// MultiNodeSweep projects a resolution over 1..maxNodes nodes.
func MultiNodeSweep(m target.Target, res Resolution, maxNodes int) []MultiNodeResult {
	if maxNodes < 1 || maxNodes > 16 {
		panic(fmt.Sprintf("ccm2: node count %d out of range [1,16]", maxNodes))
	}
	var out []MultiNodeResult
	for n := 1; n <= maxNodes; n *= 2 {
		out = append(out, MultiNodeProjection(m, res, n))
	}
	return out
}
