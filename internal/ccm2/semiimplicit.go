package ccm2

// StepSemiImplicit advances the layer with the linear gravity-wave
// terms treated implicitly (trapezoidal across the leapfrog interval),
// the scheme that lets CCM2 run the long Table 4 time steps the
// explicit CFL condition forbids. In spectral space the implicit
// Helmholtz operator is diagonal — one of the spectral transform
// method's selling points. With T the leapfrog interval, λ_n =
// n(n+1)/a², and N the nonlinear (explicit) tendency parts:
//
//	δ⁺ (1 + g) = δ⁻ (1 − g) + T·N_δ + T·λ·Φ⁻ + (T²/2)·λ·N_Φ,
//	             g = (T²/4)·λ·Φ̄
//	Φ⁺ = Φ⁻ + T·N_Φ − (T/2)·Φ̄·(δ⁺ + δ⁻)
//	ζ⁺ = ζ⁻ + T·(dζ/dt)            (vorticity has no gravity term)
func (s *ShallowWater) StepSemiImplicit(dt float64) {
	dZeta, dDelta, dPhi := s.Tendencies()
	tr := s.Tr

	// Leapfrog interval; forward (Euler) start on the first step.
	T := 2 * dt
	prevZeta, prevDelta, prevPhi := s.prevZeta, s.prevDelta, s.prevPhi
	if s.steps == 0 {
		T = dt
		prevZeta, prevDelta, prevPhi = s.Zeta, s.Delta, s.Phi
	}

	nZeta := make([]complex128, len(s.Zeta))
	nDelta := make([]complex128, len(s.Delta))
	nPhi := make([]complex128, len(s.Phi))
	for m := 0; m <= tr.T; m++ {
		for n := m; n <= tr.T; n++ {
			i := tr.Idx(m, n)
			lambda := float64(n) * float64(n+1) / (tr.A * tr.A)

			// Nonlinear parts: strip the linear gravity terms the full
			// tendencies contain (dDelta includes +λΦⁿ from -∇²Φ;
			// dPhi includes -Φ̄δⁿ from the flux divergence).
			nd := dDelta[i] - complex(lambda, 0)*s.Phi[i]
			np := dPhi[i] + complex(PhiBar, 0)*s.Delta[i]

			g := complex(T*T/4*lambda*PhiBar, 0)
			rhs := prevDelta[i]*(1-g) +
				complex(T, 0)*nd +
				complex(T*lambda, 0)*prevPhi[i] +
				complex(T*T/2*lambda, 0)*np
			dNew := rhs / (1 + g)

			nDelta[i] = dNew
			nPhi[i] = prevPhi[i] + complex(T, 0)*np -
				complex(T/2*PhiBar, 0)*(dNew+prevDelta[i])
			nZeta[i] = prevZeta[i] + complex(T, 0)*dZeta[i]
		}
	}

	// Implicit hyperdiffusion and Robert-Asselin filtering, exactly as
	// in the explicit step.
	for m := 0; m <= tr.T; m++ {
		for n := m; n <= tr.T; n++ {
			if n == 0 {
				continue
			}
			ev := float64(n) * float64(n+1) / (tr.A * tr.A)
			damp := complex(1/(1+2*dt*Nu4*ev*ev), 0)
			i := tr.Idx(m, n)
			nZeta[i] *= damp
			nDelta[i] *= damp
			nPhi[i] *= damp
		}
	}
	filter := func(cur, prev, next []complex128) {
		for i := range cur {
			cur[i] += complex(RobertAlpha, 0) * (prev[i] - 2*cur[i] + next[i])
		}
	}
	filter(s.Zeta, s.prevZeta, nZeta)
	filter(s.Delta, s.prevDelta, nDelta)
	filter(s.Phi, s.prevPhi, nPhi)

	s.prevZeta, s.Zeta = s.Zeta, nZeta
	s.prevDelta, s.Delta = s.Delta, nDelta
	s.prevPhi, s.Phi = s.Phi, nPhi
	s.steps++
}
