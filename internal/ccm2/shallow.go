// Package ccm2 implements a computational-design-faithful skeleton of
// the NCAR Community Climate Model version 2: spectral-transform dry
// dynamics on the Gaussian grid (a rotating shallow-water system per
// model layer), intrinsic-heavy column physics driven by the radabs
// kernel, shape-preserving semi-Lagrangian moisture transport, and the
// operational resolutions of Table 4. The package also provides the
// operation traces and run models that reproduce the paper's CCM2
// results: Figure 8 (scalability), Table 5 (one-year simulations) and
// Table 6 (the ensemble test).
package ccm2

import (
	"fmt"
	"math"

	"sx4bench/internal/spharm"
)

// Physical constants.
const (
	Gravity     = 9.80616  // m/s²
	Omega       = 7.292e-5 // Earth's rotation rate, 1/s
	PhiBar      = 2.94e4   // mean geopotential gh0 [m²/s²] (~3000 m depth)
	Nu4         = 1.0e16   // ∇⁴ hyperdiffusion coefficient [m⁴/s]
	RobertAlpha = 0.03     // Robert-Asselin time filter coefficient
)

// ShallowWater is one spectral shallow-water layer: prognostic
// vorticity, divergence and geopotential in spectral space.
type ShallowWater struct {
	Tr *spharm.Transform

	Zeta, Delta, Phi             []complex128 // current time level
	prevZeta, prevDelta, prevPhi []complex128 // previous (leapfrog)

	steps int
}

// NewShallowWater returns a layer at rest with geopotential PhiBar.
func NewShallowWater(tr *spharm.Transform) *ShallowWater {
	s := &ShallowWater{Tr: tr}
	n := tr.SpecLen()
	s.Zeta = make([]complex128, n)
	s.Delta = make([]complex128, n)
	s.Phi = make([]complex128, n)
	s.prevZeta = make([]complex128, n)
	s.prevDelta = make([]complex128, n)
	s.prevPhi = make([]complex128, n)
	// Mean geopotential: Φ = PhiBar -> a00 = PhiBar * sqrt(2).
	s.Phi[tr.Idx(0, 0)] = complex(PhiBar*math.Sqrt2, 0)
	copy(s.prevPhi, s.Phi)
	return s
}

// SetSolidBody initializes the Williamson test-case-2 steady state:
// zonal solid-body flow u = u0 cosφ in gradient balance with the
// geopotential field.
func (s *ShallowWater) SetSolidBody(u0 float64) {
	tr := s.Tr
	for i := range s.Zeta {
		s.Zeta[i], s.Delta[i], s.Phi[i] = 0, 0, 0
	}
	// ζ = 2 (u0/a) μ = (2 u0/a) / sqrt(3/2) * P̄_1^0.
	s.Zeta[tr.Idx(0, 1)] = complex(2*u0/tr.A/math.Sqrt(1.5), 0)
	// Φ = Φ0 - (aΩu0 + u0²/2) μ²;  μ² = 1/3 + (2/(3 sqrt(5/2))) P̄_2^0.
	coef := tr.A*Omega*u0 + u0*u0/2
	s.Phi[tr.Idx(0, 0)] = complex((PhiBar-coef/3)*math.Sqrt2, 0)
	s.Phi[tr.Idx(0, 2)] = complex(-coef*2/(3*math.Sqrt(2.5)), 0)
	copy(s.prevZeta, s.Zeta)
	copy(s.prevDelta, s.Delta)
	copy(s.prevPhi, s.Phi)
	s.steps = 0
}

// Winds synthesizes the scaled winds U = u cosφ, V = v cosφ on the
// grid from the current spectral state.
func (s *ShallowWater) Winds() (U, V []float64) { return s.Tr.UV(s.Zeta, s.Delta) }

// Tendencies evaluates the spectral time derivatives of the current
// state using the transform method: nonlinear products in grid space,
// derivatives in spectral space.
func (s *ShallowWater) Tendencies() (dZeta, dDelta, dPhi []complex128) {
	tr := s.Tr
	U, V := tr.UV(s.Zeta, s.Delta)
	zetaG := tr.Inverse(s.Zeta)
	phiG := tr.Inverse(s.Phi)

	nlat, nlon := tr.NLat, tr.NLon
	mu := tr.Mu()
	A := make([]float64, len(U)) // U (ζ+f)
	B := make([]float64, len(U)) // V (ζ+f)
	C := make([]float64, len(U)) // U Φ
	D := make([]float64, len(U)) // V Φ
	E := make([]float64, len(U)) // kinetic energy (U²+V²)/(2(1-μ²))
	for j := 0; j < nlat; j++ {
		f := 2 * Omega * mu[j]
		oneMinus := 1 - mu[j]*mu[j]
		for i := 0; i < nlon; i++ {
			k := j*nlon + i
			abs := zetaG[k] + f
			A[k] = U[k] * abs
			B[k] = V[k] * abs
			C[k] = U[k] * phiG[k]
			D[k] = V[k] * phiG[k]
			E[k] = (U[k]*U[k] + V[k]*V[k]) / (2 * oneMinus)
		}
	}

	dZeta = tr.ForwardDiv(A, B)
	for i := range dZeta {
		dZeta[i] = -dZeta[i]
	}
	negA := make([]float64, len(A))
	for i := range A {
		negA[i] = -A[i]
	}
	dDelta = tr.ForwardDiv(B, negA)
	lap := tr.Forward(E)
	for i := range lap {
		lap[i] += s.Phi[i]
	}
	tr.Laplacian(lap)
	for i := range dDelta {
		dDelta[i] -= lap[i]
	}
	dPhi = tr.ForwardDiv(C, D)
	for i := range dPhi {
		dPhi[i] = -dPhi[i]
	}
	return dZeta, dDelta, dPhi
}

// Step advances the layer by dt seconds with leapfrog time stepping
// (forward start), Robert-Asselin filtering, and implicit ∇⁴
// hyperdiffusion.
func (s *ShallowWater) Step(dt float64) {
	dZeta, dDelta, dPhi := s.Tendencies()
	tr := s.Tr

	advance := func(cur, prev, tend []complex128) []complex128 {
		next := make([]complex128, len(cur))
		if s.steps == 0 {
			for i := range next {
				next[i] = cur[i] + complex(dt, 0)*tend[i]
			}
		} else {
			for i := range next {
				next[i] = prev[i] + complex(2*dt, 0)*tend[i]
			}
		}
		return next
	}
	nZeta := advance(s.Zeta, s.prevZeta, dZeta)
	nDelta := advance(s.Delta, s.prevDelta, dDelta)
	nPhi := advance(s.Phi, s.prevPhi, dPhi)

	// Implicit hyperdiffusion on the new time level (not on n=0).
	for m := 0; m <= tr.T; m++ {
		for n := m; n <= tr.T; n++ {
			if n == 0 {
				continue
			}
			ev := float64(n) * float64(n+1) / (tr.A * tr.A)
			damp := complex(1/(1+2*dt*Nu4*ev*ev), 0)
			i := tr.Idx(m, n)
			nZeta[i] *= damp
			nDelta[i] *= damp
			nPhi[i] *= damp
		}
	}

	// Robert-Asselin filter on the (old) current level.
	filter := func(cur, prev, next []complex128) {
		for i := range cur {
			cur[i] += complex(RobertAlpha, 0) * (prev[i] - 2*cur[i] + next[i])
		}
	}
	filter(s.Zeta, s.prevZeta, nZeta)
	filter(s.Delta, s.prevDelta, nDelta)
	filter(s.Phi, s.prevPhi, nPhi)

	s.prevZeta, s.Zeta = s.Zeta, nZeta
	s.prevDelta, s.Delta = s.Delta, nDelta
	s.prevPhi, s.Phi = s.Phi, nPhi
	s.steps++
}

// MeanPhi returns the global mean geopotential (the conserved mass
// proxy).
func (s *ShallowWater) MeanPhi() float64 {
	return real(s.Phi[s.Tr.Idx(0, 0)]) / math.Sqrt2
}

// TotalEnergy returns the discrete total energy (kinetic + potential)
// of the layer, for conservation diagnostics.
func (s *ShallowWater) TotalEnergy() float64 {
	tr := s.Tr
	U, V := tr.UV(s.Zeta, s.Delta)
	phiG := tr.Inverse(s.Phi)
	mu := tr.Mu()
	w := tr.Weights()
	var e float64
	for j := 0; j < tr.NLat; j++ {
		oneMinus := 1 - mu[j]*mu[j]
		var row float64
		for i := 0; i < tr.NLon; i++ {
			k := j*tr.NLon + i
			ke := (U[k]*U[k] + V[k]*V[k]) / oneMinus / 2
			row += phiG[k]*ke/Gravity + phiG[k]*phiG[k]/(2*Gravity)
		}
		e += w[j] * row / float64(tr.NLon)
	}
	return e / 2
}

// MaxAbsGrid returns the maximum |value| of the grid representation of
// a spectral field — a cheap blow-up detector.
func (s *ShallowWater) MaxAbsGrid(spec []complex128) float64 {
	g := s.Tr.Inverse(spec)
	m := 0.0
	for _, v := range g {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// CFLTimeStep returns a stable explicit time step for the layer:
// dt = cfl * dx_min / c_grav.
func CFLTimeStep(tr *spharm.Transform, cfl float64) float64 {
	dx := tr.A * 2 * math.Pi / float64(tr.NLon)
	c := math.Sqrt(PhiBar)
	return cfl * dx / c
}

func (s *ShallowWater) String() string {
	return fmt.Sprintf("shallow-water T%d (%dx%d)", s.Tr.T, s.Tr.NLat, s.Tr.NLon)
}
