package ccm2

import (
	"testing"
)

func TestMultiNodeProjectionScales(t *testing.T) {
	m := bench()
	res, _ := ResolutionByName("T170L18")
	sweep := MultiNodeSweep(m, res, 16)
	if len(sweep) != 5 { // 1, 2, 4, 8, 16
		t.Fatalf("sweep has %d points", len(sweep))
	}
	prevGF := 0.0
	for _, r := range sweep {
		if r.GFLOPS <= prevGF {
			t.Errorf("GFLOPS not increasing at %d nodes: %.1f <= %.1f", r.Nodes, r.GFLOPS, prevGF)
		}
		prevGF = r.GFLOPS
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Errorf("%d nodes: efficiency %v out of (0,1]", r.Nodes, r.Efficiency)
		}
	}
	// Efficiency decays with node count (communication grows).
	if sweep[4].Efficiency >= sweep[1].Efficiency {
		t.Errorf("16-node efficiency (%v) should trail 2-node (%v)",
			sweep[4].Efficiency, sweep[1].Efficiency)
	}
	// A T170 step is large enough that the IXS keeps multinode
	// efficiency respectable at 16 nodes.
	if sweep[4].Efficiency < 0.5 {
		t.Errorf("16-node T170 efficiency = %v, want >= 0.5 over a 128 GB/s bisection", sweep[4].Efficiency)
	}
}

func TestMultiNodeSmallProblemCommBound(t *testing.T) {
	m := bench()
	t42, _ := ResolutionByName("T42L18")
	t170, _ := ResolutionByName("T170L18")
	e42 := MultiNodeProjection(m, t42, 16).Efficiency
	e170 := MultiNodeProjection(m, t170, 16).Efficiency
	if e42 >= e170 {
		t.Errorf("T42 at 16 nodes (%v) should be less efficient than T170 (%v)", e42, e170)
	}
}

func TestMultiNodeSingleNodeIdentity(t *testing.T) {
	m := bench()
	res, _ := ResolutionByName("T106L18")
	r := MultiNodeProjection(m, res, 1)
	if r.Efficiency != 1 || r.TotalCPUs != 32 {
		t.Errorf("single-node projection: %+v", r)
	}
	if r.StepSeconds != StepSeconds(m, res, 32, 32) {
		t.Error("single-node projection should equal the node model")
	}
}

func TestTransposeVolumeGrowsWithResolution(t *testing.T) {
	t42, _ := ResolutionByName("T42L18")
	t170, _ := ResolutionByName("T170L18")
	if TransposeBytesPerStep(t170) <= TransposeBytesPerStep(t42) {
		t.Error("transpose volume should grow with resolution")
	}
}

func TestMultiNodeSweepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("17-node sweep did not panic")
		}
	}()
	MultiNodeSweep(bench(), Resolutions[0], 17)
}
