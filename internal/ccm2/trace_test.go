package ccm2

import (
	"testing"

	"sx4bench/internal/sx4"
)

func bench() *sx4.Machine { return sx4.New(sx4.Benchmarked()) }

func TestFig8T170Anchor(t *testing.T) {
	// Paper: CCM2 at T170L18 sustains 24 GFLOPS on the 32-processor
	// 9.2 ns system.
	m := bench()
	res, _ := ResolutionByName("T170L18")
	gf := SustainedGFLOPS(m, res, 32)
	if gf < 20 || gf > 28 {
		t.Errorf("T170L18 on 32 CPUs = %.1f GFLOPS, want within [20, 28] (paper: 24)", gf)
	}
}

func TestFig8ResolutionOrdering(t *testing.T) {
	// Long-vector problems run most efficiently: at 32 CPUs the
	// sustained rate must increase with resolution.
	m := bench()
	prev := 0.0
	for _, name := range []string{"T42L18", "T106L18", "T170L18"} {
		res, _ := ResolutionByName(name)
		gf := SustainedGFLOPS(m, res, 32)
		if gf <= prev {
			t.Errorf("GFLOPS not increasing with resolution at %s: %.1f <= %.1f", name, gf, prev)
		}
		prev = gf
	}
}

func TestFig8ScalingShape(t *testing.T) {
	// Speedup from 1 to 32 CPUs: T170 scales well, T42 visibly worse
	// but still above half-efficiency at 8 CPUs.
	m := bench()
	speedup := func(name string) float64 {
		res, _ := ResolutionByName(name)
		return StepSeconds(m, res, 1, 1) / StepSeconds(m, res, 32, 32)
	}
	s42 := speedup("T42L18")
	s170 := speedup("T170L18")
	if s170 <= s42 {
		t.Errorf("T170 speedup (%.1f) should exceed T42 (%.1f)", s170, s42)
	}
	if s42 < 10 || s42 > 26 {
		t.Errorf("T42 32-CPU speedup = %.1f, want within [10, 26]", s42)
	}
	if s170 < 22 || s170 > 32 {
		t.Errorf("T170 32-CPU speedup = %.1f, want within [22, 32]", s170)
	}
}

func TestFig8MonotoneInProcs(t *testing.T) {
	m := bench()
	res, _ := ResolutionByName("T106L18")
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		gf := SustainedGFLOPS(m, res, p)
		if gf <= prev {
			t.Errorf("GFLOPS not increasing at %d CPUs: %.2f <= %.2f", p, gf, prev)
		}
		prev = gf
	}
}

func TestTable5Anchors(t *testing.T) {
	// Paper Table 5: one simulated year takes 1327.53 s at T42L18 and
	// 3452.48 s at T63L18 on the SX-4/32 (with daily history writes).
	m := bench()
	cases := []struct {
		name  string
		paper float64
	}{
		{"T42L18", 1327.53},
		{"T63L18", 3452.48},
	}
	for _, c := range cases {
		res, _ := ResolutionByName(c.name)
		_, _, total := YearSim(m, res, 32)
		lo, hi := 0.8*c.paper, 1.2*c.paper
		if total < lo || total > hi {
			t.Errorf("%s year = %.0f s, want within [%.0f, %.0f] (paper %.2f)",
				c.name, total, lo, hi, c.paper)
		}
	}
}

func TestTable5T63Writes15GB(t *testing.T) {
	res, _ := ResolutionByName("T63L18")
	gb := float64(365*HistoryBytesPerDay(res)) / 1e9
	if gb < 12 || gb > 18 {
		t.Errorf("T63L18 yearly history = %.1f GB, want ~15 GB", gb)
	}
}

func TestTable6Ensemble(t *testing.T) {
	// Paper Table 6: running eight concurrent 4-CPU copies degrades
	// each by only 1.89% relative to a single copy on an idle node.
	m := bench()
	r := EnsembleTest(m)
	if r.MultipleSeconds <= r.SingleSeconds {
		t.Fatalf("loaded node (%.1f s) should be slower than idle (%.1f s)",
			r.MultipleSeconds, r.SingleSeconds)
	}
	if r.DegradationPct < 1.0 || r.DegradationPct > 3.0 {
		t.Errorf("ensemble degradation = %.2f%%, want within [1, 3] (paper: 1.89%%)", r.DegradationPct)
	}
}

func TestStepFlopsGrowWithResolution(t *testing.T) {
	prev := int64(0)
	for _, r := range Resolutions {
		f := StepFlops(r)
		if f <= prev {
			t.Errorf("%s step flops %d not increasing", r.Name, f)
		}
		prev = f
	}
}

func TestStepsPerDay(t *testing.T) {
	cases := map[string]int{
		"T42L18": 72, "T63L18": 120, "T85L18": 144, "T106L18": 192, "T170L18": 288,
	}
	for name, want := range cases {
		res, _ := ResolutionByName(name)
		if got := res.StepsPerDay(); got != want {
			t.Errorf("%s steps/day = %d, want %d", name, got, want)
		}
	}
}

func TestRadiationDominatesPhysicsBudget(t *testing.T) {
	// RADABS is "the single most time consuming subroutine": radiation
	// must be the largest single phase of the step on one CPU.
	m := bench()
	res, _ := ResolutionByName("T42L18")
	r := m.Run(StepTrace(res), sx4.RunOpts{Procs: 1})
	var radClocks, maxOther float64
	for _, ph := range r.Phases {
		if ph.Name == "radiation" {
			radClocks = ph.Clocks
		} else if ph.Clocks > maxOther {
			maxOther = ph.Clocks
		}
	}
	if radClocks <= maxOther {
		t.Errorf("radiation (%.3g clocks) should be the largest phase (max other %.3g)",
			radClocks, maxOther)
	}
}

func TestSimDaysScalesLinearly(t *testing.T) {
	m := bench()
	res, _ := ResolutionByName("T42L18")
	d1 := SimDays(m, res, 1, 4, 4)
	d10 := SimDays(m, res, 10, 4, 4)
	if ratio := d10 / d1; ratio < 9.99 || ratio > 10.01 {
		t.Errorf("10-day/1-day ratio = %v, want 10", ratio)
	}
}

func TestResolutionByNameErrors(t *testing.T) {
	if _, err := ResolutionByName("T31L18"); err == nil {
		t.Error("unknown resolution did not error")
	}
}
