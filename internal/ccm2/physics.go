package ccm2

import (
	"math"

	"sx4bench/internal/sx4/commreg"
)

// Column physics beyond radiation: the parameterizations CCM2 runs in
// every vertical column each step. The skeleton implements the three
// that dominate the moisture budget — large-scale (stable)
// condensation, moist convective adjustment, and boundary-layer
// diffusion with a surface moisture source — acting on the model's
// per-layer specific humidity with a saturation limit that falls with
// height (colder air holds less water).

// PhysicsTuning collects the parameterization constants.
type PhysicsTuning struct {
	// QSatSurface is the saturation specific humidity at the lowest
	// layer [kg/kg]; saturation decays upward with ScaleLayers.
	QSatSurface float64
	ScaleLayers float64
	// CondenseFrac is the fraction of supersaturation removed per step.
	CondenseFrac float64
	// ConvectFrac is the fraction of an unstable moisture inversion
	// mixed per step.
	ConvectFrac float64
	// PBLExchange is the surface-evaporation relaxation per step
	// toward SurfaceWetness*QSat of the lowest layer.
	PBLExchange    float64
	SurfaceWetness float64
}

// DefaultPhysics returns the operational tuning.
func DefaultPhysics() PhysicsTuning {
	return PhysicsTuning{
		QSatSurface:    0.025,
		ScaleLayers:    6,
		CondenseFrac:   0.5,
		ConvectFrac:    0.25,
		PBLExchange:    0.05,
		SurfaceWetness: 0.8,
	}
}

// qSat returns the saturation humidity for layer k of nlev (layer 0 is
// the top).
func (p PhysicsTuning) qSat(k, nlev int) float64 {
	heightLayers := float64(nlev - 1 - k)
	return p.QSatSurface * math.Exp(-heightLayers/p.ScaleLayers)
}

// PhysicsDiagnostics accumulates the step's column-physics budget.
type PhysicsDiagnostics struct {
	Precipitation  float64 // total condensed water removed [kg/kg * cells]
	Evaporation    float64 // total surface source added
	ConvectedCells int
}

// StepPhysics applies the moist physics to the model's humidity
// columns and returns the budget diagnostics. Condensed water leaves
// the atmosphere as precipitation (removed mass), evaporation
// replenishes the lowest layer — so a long integration reaches a
// moisture balance instead of drying out or flooding.
// physChunkCells is the fixed decomposition grain of the column-physics
// loop. The chunk count depends only on the grid — never on Workers —
// so the chunk-ordered diagnostic sums are identical for every worker
// setting (a worker-sized decomposition would regroup the floating-
// point sums whenever the knob changed).
const physChunkCells = 2048

func (m *Model) StepPhysics(tuning PhysicsTuning) PhysicsDiagnostics {
	nlev := m.NLev()
	nCells := m.Res.NLat * m.Res.NLon
	nChunks := (nCells + physChunkCells - 1) / physChunkCells
	diags := make([]PhysicsDiagnostics, nChunks)

	commreg.ParallelFor(m.workers(), nChunks, func(w int) {
		lo, hi := w*physChunkCells, minInt((w+1)*physChunkCells, nCells)
		d := &diags[w]
		for cell := lo; cell < hi; cell++ {
			// Large-scale condensation: remove supersaturation.
			for k := 0; k < nlev; k++ {
				qs := tuning.qSat(k, nlev)
				q := m.Moisture[k][cell]
				if q > qs {
					rain := tuning.CondenseFrac * (q - qs)
					m.Moisture[k][cell] = q - rain
					d.Precipitation += rain
				}
			}
			// Moist convective adjustment: if a layer is moister than
			// the one above can explain (inversion of the scaled
			// profile), mix the pair.
			for k := nlev - 1; k > 0; k-- {
				below := m.Moisture[k][cell] / tuning.qSat(k, nlev)
				above := m.Moisture[k-1][cell] / tuning.qSat(k-1, nlev)
				if below > 1 && below > above+0.1 {
					mixed := tuning.ConvectFrac * (below - above) / 2
					dq := mixed * tuning.qSat(k, nlev)
					m.Moisture[k][cell] -= dq
					m.Moisture[k-1][cell] += dq * tuning.qSat(k-1, nlev) / tuning.qSat(k, nlev) *
						0.7 // entrainment loss condenses
					d.Precipitation += 0.3 * dq
					d.ConvectedCells++
				}
			}
			// PBL: surface evaporation relaxes the lowest layer toward
			// a wet-surface equilibrium.
			kSfc := nlev - 1
			target := tuning.SurfaceWetness * tuning.qSat(kSfc, nlev)
			if q := m.Moisture[kSfc][cell]; q < target {
				dq := tuning.PBLExchange * (target - q)
				m.Moisture[kSfc][cell] = q + dq
				d.Evaporation += dq
			}
		}
	})

	var total PhysicsDiagnostics
	for _, d := range diags {
		total.Precipitation += d.Precipitation
		total.Evaporation += d.Evaporation
		total.ConvectedCells += d.ConvectedCells
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
