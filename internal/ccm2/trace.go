package ccm2

import (
	"fmt"

	"sx4bench/internal/fftpack"
	"sx4bench/internal/radabs"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// Calibration constants of the CCM2 step trace. Together with the
// machine model they are tuned so the paper's anchors hold: T170L18
// sustains ~24 GFLOPS on 32 CPUs (Figure 8), the one-year T42/T63
// simulations land near Table 5, and the ensemble degradation is ~1.9%
// (Table 6). See EXPERIMENTS.md.
const (
	// transformsPerStep counts spectral<->grid field transforms per
	// level each step (state synthesis incl. wind components, plus the
	// forward transforms of the nonlinear fluxes).
	transformsPerStep = 14
	// physicsLoops is the number of small vectorized parameterization
	// loops per (latitude, level) outside radiation.
	physicsLoops = 70
	// serialClocksPerLatLev is the non-parallelized orchestration cost
	// per latitude-level per step (diagnostics accumulation, data
	// transposition between parallel regions, I/O staging).
	serialClocksPerLatLev = 1800
	// historyFieldsPerDay is the number of full 3-D fields in a daily
	// history write (Table 5's "daily average climate statistics":
	// ~15 GB/year at T63L18).
	historyFieldsPerDay = 15
	// barriersPerStep counts the synchronization points of a step.
	stepPhaseBarriers = 1
)

// StepTrace builds the operation trace of one CCM2 time step at a
// Table 4 resolution (always with the resolution's full level count).
func StepTrace(res Resolution) prog.Program {
	nlat, nlon, nlev := res.NLat, res.NLon, res.NLev
	nspec := (res.T + 1) * (res.T + 2) / 2

	var phases []prog.Phase

	// Legendre transforms: one trip per spectral coefficient per
	// field-level, vectorized over latitude (complex pairs).
	phases = append(phases, prog.Phase{
		Name: "legendre", Parallel: true, Barriers: stepPhaseBarriers,
		Loops: []prog.Loop{{
			Trips: int64(transformsPerStep) * int64(nlev) * int64(nspec),
			Body: []prog.Op{
				{Class: prog.VLoad, VL: 2 * nlat, Stride: 1},
				{Class: prog.VMul, VL: 2 * nlat},
				{Class: prog.VAdd, VL: 2 * nlat},
			},
		}},
	})

	// FFTs along longitude, vectorized across latitudes (VFFT style).
	fft := fftpack.VFFTTrace(nlon, nlat)
	var fftLoops []prog.Loop
	for _, l := range fft.Phases[0].Loops {
		l.Trips *= int64(transformsPerStep) * int64(nlev)
		fftLoops = append(fftLoops, l)
	}
	phases = append(phases, prog.Phase{
		Name: "fft", Parallel: true, Barriers: stepPhaseBarriers, Loops: fftLoops,
	})

	// Grid-space nonlinear products.
	phases = append(phases, prog.Phase{
		Name: "nonlinear", Parallel: true, Barriers: stepPhaseBarriers,
		Loops: []prog.Loop{{
			Trips: int64(nlat) * int64(nlev),
			Body: []prog.Op{
				{Class: prog.VLoad, VL: 6 * nlon, Stride: 1},
				{Class: prog.VMul, VL: nlon, FlopsPerElem: 8},
				{Class: prog.VAdd, VL: nlon, FlopsPerElem: 5},
				{Class: prog.VStore, VL: 5 * nlon, Stride: 1},
			},
		}},
	})

	// Radiation: the radabs kernel over all columns, vectorized over
	// longitude, one latitude row at a time.
	rad := radabs.Trace(nlon, nlev)
	var radLoops []prog.Loop
	for _, l := range rad.Phases[0].Loops {
		l.Trips *= int64(nlat)
		radLoops = append(radLoops, l)
	}
	phases = append(phases, prog.Phase{
		Name: "radiation", Parallel: true, Barriers: stepPhaseBarriers, Loops: radLoops,
	})

	// Other physics parameterizations: many small vectorized loops.
	phases = append(phases, prog.Phase{
		Name: "physics", Parallel: true, Barriers: stepPhaseBarriers,
		Loops: []prog.Loop{
			{
				Trips: int64(nlat) * int64(nlev) * int64(physicsLoops),
				Body: []prog.Op{
					{Class: prog.VLoad, VL: 3 * nlon, Stride: 1},
					{Class: prog.VMul, VL: nlon, FlopsPerElem: 12},
					{Class: prog.VAdd, VL: nlon, FlopsPerElem: 11},
					{Class: prog.VStore, VL: nlon, Stride: 1},
				},
			},
			{
				Trips: int64(nlat) * int64(nlev) * 8,
				Body: []prog.Op{
					{Class: prog.VLoad, VL: nlon, Stride: 1},
					{Class: prog.VIntrinsic, VL: nlon, Intr: prog.Exp},
					{Class: prog.VStore, VL: nlon, Stride: 1},
				},
			},
		},
	})

	// Semi-Lagrangian moisture transport: indirect addressing on the
	// Gaussian grid.
	phases = append(phases, prog.Phase{
		Name: "slt", Parallel: true, Barriers: stepPhaseBarriers,
		Loops: []prog.Loop{{
			Trips: int64(nlat) * int64(nlev),
			Body: []prog.Op{
				{Class: prog.VLoad, VL: 2 * nlon, Stride: 1},
				{Class: prog.VGather, VL: 8 * nlon, Span: nlat * nlon},
				{Class: prog.VMul, VL: nlon, FlopsPerElem: 15},
				{Class: prog.VAdd, VL: nlon, FlopsPerElem: 12},
				{Class: prog.VStore, VL: nlon, Stride: 1},
			},
		}},
	})

	// Spectral-space update: semi-implicit adjustment, hyperdiffusion,
	// time filter (long vectors over the coefficient triangle).
	phases = append(phases, prog.Phase{
		Name: "spectral-update", Parallel: true, Barriers: stepPhaseBarriers,
		Loops: []prog.Loop{{
			Trips: int64(3 * nlev),
			Body: []prog.Op{
				{Class: prog.VLoad, VL: 2 * nspec, Stride: 1},
				{Class: prog.VMul, VL: 2 * nspec, FlopsPerElem: 3},
				{Class: prog.VAdd, VL: 2 * nspec, FlopsPerElem: 3},
				{Class: prog.VStore, VL: 2 * nspec, Stride: 1},
			},
		}},
	})

	// Non-parallelized orchestration.
	phases = append(phases, prog.Phase{
		Name:         "orchestration",
		SerialClocks: float64(serialClocksPerLatLev) * float64(nlat) * float64(nlev),
	})

	return prog.Program{Name: fmt.Sprintf("CCM2-%s-step", res.Name), Phases: phases}
}

// stepTraces caches the compiled step trace per resolution: every
// Figure 8 point, Table 5/6 simulation and PRODLOAD job re-times the
// same step shape, and the trace is a pure function of the resolution.
var stepTraces target.TraceCache[Resolution]

// CompiledStepTrace returns the step trace in its cached compiled
// form, for callers that time the same resolution repeatedly.
func CompiledStepTrace(res Resolution) target.CompiledTrace {
	return stepTraces.Get(res, func() prog.Program { return StepTrace(res) })
}

// StepFlops returns the credited flop count of one step.
func StepFlops(res Resolution) int64 { return CompiledStepTrace(res).Compiled.Flops }

// StepSeconds simulates one time step on the target machine.
func StepSeconds(m target.Target, res Resolution, procs, active int) float64 {
	return CompiledStepTrace(res).Run(m, target.RunOpts{Procs: procs, ActiveCPUs: active}).Seconds
}

// SustainedGFLOPS returns the model's sustained rate at a resolution
// and processor count — one point of Figure 8.
func SustainedGFLOPS(m target.Target, res Resolution, procs int) float64 {
	secs := StepSeconds(m, res, procs, procs)
	return float64(StepFlops(res)) / secs / 1e9
}

// HistoryBytesPerDay returns the size of one day's history output.
func HistoryBytesPerDay(res Resolution) int64 {
	return int64(historyFieldsPerDay) * int64(res.NLat) * int64(res.NLon) * int64(res.NLev) * 8
}

// YearSim models a one-year simulation with daily history writes
// (Table 5), returning compute seconds, I/O seconds and the total.
// Targets without a modeled disk subsystem (the comparison machines
// were benchmarked compute-only) report zero I/O time.
func YearSim(m target.Target, res Resolution, procs int) (compute, io, total float64) {
	steps := 365 * res.StepsPerDay()
	compute = float64(steps) * StepSeconds(m, res, procs, procs)
	if rate := m.Spec().DiskBytesPerSec; rate > 0 {
		bytes := 365 * HistoryBytesPerDay(res)
		io = float64(bytes) / rate
	}
	return compute, io, compute + io
}

// EnsembleResult is the Table 6 experiment outcome.
type EnsembleResult struct {
	SingleSeconds   float64 // one 4-CPU job on an otherwise idle node
	MultipleSeconds float64 // the same job among 8 concurrent copies
	DegradationPct  float64
}

// EnsembleTest models Table 6: a 12-day T42L18 run on 4 processors,
// alone versus with eight concurrent 4-processor copies filling the
// node.
func EnsembleTest(m target.Target) EnsembleResult {
	res := Resolutions[0] // T42L18
	steps := 12 * res.StepsPerDay()
	single := float64(steps) * StepSeconds(m, res, 4, 4)
	multi := float64(steps) * StepSeconds(m, res, 4, m.Spec().CPUs)
	return EnsembleResult{
		SingleSeconds:   single,
		MultipleSeconds: multi,
		DegradationPct:  (multi - single) / single * 100,
	}
}

// SimDays models an n-day simulation at a resolution on procs CPUs
// with the node otherwise loaded to active CPUs; used by PRODLOAD.
func SimDays(m target.Target, res Resolution, days, procs, active int) float64 {
	steps := days * res.StepsPerDay()
	return float64(steps) * StepSeconds(m, res, procs, active)
}
