package ccm2

import (
	"fmt"
	"math"

	"sx4bench/internal/core/sched"
	"sx4bench/internal/radabs"
	"sx4bench/internal/slt"
	"sx4bench/internal/spharm"
	"sx4bench/internal/sx4/commreg"
)

// Resolution describes one CCM2 configuration (paper Table 4).
type Resolution struct {
	Name           string
	T              int     // triangular truncation wavenumber
	NLat, NLon     int     // Gaussian grid
	NLev           int     // vertical levels
	GridSpacingDeg float64 // nominal grid spacing
	TimeStepMin    float64 // model time step in minutes
}

// Resolutions lists the paper's Table 4 rows.
var Resolutions = []Resolution{
	{"T42L18", 42, 64, 128, 18, 2.8, 20.0},
	{"T63L18", 63, 96, 192, 18, 2.1, 12.0},
	{"T85L18", 85, 128, 256, 18, 1.4, 10.0},
	{"T106L18", 106, 160, 320, 18, 1.1, 7.5},
	{"T170L18", 170, 256, 512, 18, 0.7, 5.0},
}

// ResolutionByName returns the named Table 4 resolution.
func ResolutionByName(name string) (Resolution, error) {
	for _, r := range Resolutions {
		if r.Name == name {
			return r, nil
		}
	}
	return Resolution{}, fmt.Errorf("ccm2: unknown resolution %q", name)
}

// StepsPerDay returns the number of model time steps in a simulated
// day.
func (r Resolution) StepsPerDay() int {
	return int(24*60/r.TimeStepMin + 0.5)
}

// Model is the CCM2 skeleton: NLev shallow-water layers coupled by
// weak vertical diffusion, radiative relaxation whose rates come from
// the radabs absorptivity matrix, and semi-Lagrangian moisture
// transport per layer.
type Model struct {
	Res    Resolution
	Tr     *spharm.Transform
	Layers []*ShallowWater

	Moisture [][]float64 // per layer, grid fields
	sltGrid  *slt.Grid

	coolRate []float64 // per-level radiative relaxation rate [1/s]
	steps    int

	// Workers controls goroutine parallelism of the host integration
	// (microtasked loops via commreg); results are bit-identical to
	// serial execution for any setting. Zero means
	// runtime.GOMAXPROCS(0); one forces the serial path.
	Workers int

	// SemiImplicit selects the implicit gravity-wave scheme, enabling
	// the operational Table 4 time steps.
	SemiImplicit bool
}

// NewModel builds a model at the given resolution. nlev overrides the
// resolution's level count when positive (small values keep host-side
// tests cheap; the performance traces always use the full L18).
func NewModel(res Resolution, nlev int) *Model {
	if nlev <= 0 {
		nlev = res.NLev
	}
	tr := spharm.New(res.T, res.NLat, res.NLon)
	m := &Model{Res: res, Tr: tr}
	lat := make([]float64, res.NLat)
	for j, mu := range tr.Mu() {
		lat[j] = math.Asin(mu)
	}
	m.sltGrid = slt.NewGrid(res.NLon, lat)

	// Radiative relaxation rates from the radabs absorptivity of the
	// standard column: levels that exchange more radiation relax
	// faster. Normalized to a ~20-day timescale at the most active
	// level.
	physLev := nlev
	if physLev < 2 {
		physLev = 2
	}
	abs := radabs.Absorptivity(radabs.NewColumn(physLev))
	m.coolRate = make([]float64, nlev)
	maxSum := 0.0
	sums := make([]float64, nlev)
	for k := 0; k < nlev; k++ {
		var sum float64
		for k2 := 0; k2 < physLev; k2++ {
			kk := k
			if kk >= physLev {
				kk = physLev - 1
			}
			sum += abs[kk][k2]
		}
		sums[k] = sum
		if sum > maxSum {
			maxSum = sum
		}
	}
	for k := 0; k < nlev; k++ {
		m.coolRate[k] = sums[k] / maxSum / (20 * 86400)
	}

	for k := 0; k < nlev; k++ {
		layer := NewShallowWater(tr)
		// Slightly sheared solid-body flow, faster aloft.
		layer.SetSolidBody(20 + 10*float64(nlev-1-k)/float64(nlev))
		m.Layers = append(m.Layers, layer)

		q := make([]float64, tr.GridLen())
		for j := 0; j < res.NLat; j++ {
			mu := tr.Mu()[j]
			for i := 0; i < res.NLon; i++ {
				// Moist tropics, dry poles, decaying with height.
				q[j*res.NLon+i] = 0.02 * (1 - mu*mu) * math.Pow(float64(k+1)/float64(nlev), 2)
			}
		}
		m.Moisture = append(m.Moisture, q)
	}
	return m
}

// NLev returns the model's layer count.
func (m *Model) NLev() int { return len(m.Layers) }

// workers resolves the Workers knob per the repo-wide convention.
func (m *Model) workers() int { return sched.Workers(m.Workers) }

// Step advances the model one time step of dt seconds: dynamics in
// every layer, vertical diffusion, radiative relaxation, and moisture
// transport.
func (m *Model) Step(dt float64) {
	// Dynamics: the layers are independent within a step.
	commreg.ParallelFor(m.workers(), len(m.Layers), func(k int) {
		if m.SemiImplicit {
			m.Layers[k].StepSemiImplicit(dt)
		} else {
			m.Layers[k].Step(dt)
		}
	})
	// Weak vertical diffusion of geopotential between adjacent layers.
	if len(m.Layers) > 1 {
		kv := dt / (50 * 86400)
		for k := 0; k < len(m.Layers)-1; k++ {
			a := m.Layers[k].Phi
			b := m.Layers[k+1].Phi
			for i := range a {
				d := complex(kv, 0) * (b[i] - a[i])
				a[i] += d
				b[i] -= d
			}
		}
	}
	// Radiative relaxation: damp geopotential deviations from the
	// layer mean at the radabs-derived rate.
	for k, l := range m.Layers {
		damp := complex(1-dt*m.coolRate[k], 0)
		for i := 1; i < len(l.Phi); i++ {
			l.Phi[i] *= damp
		}
	}
	// Moisture: semi-Lagrangian transport by each layer's winds.
	commreg.ParallelFor(m.workers(), len(m.Layers), func(k int) {
		l := m.Layers[k]
		U, V := l.Winds()
		u := make([]float64, len(U))
		v := make([]float64, len(V))
		mu := m.Tr.Mu()
		for j := 0; j < m.Res.NLat; j++ {
			oneMinus := 1 - mu[j]*mu[j]
			cos := math.Sqrt(oneMinus)
			for i := 0; i < m.Res.NLon; i++ {
				idx := j*m.Res.NLon + i
				u[idx] = U[idx] / (m.Tr.A * oneMinus) // λ̇
				v[idx] = V[idx] / (m.Tr.A * cos)      // φ̇
			}
		}
		m.Moisture[k] = m.sltGrid.Advect(m.Moisture[k], u, v, dt)
	})
	m.steps++
}

// Steps returns the number of steps taken.
func (m *Model) Steps() int { return m.steps }

// Checksum returns a deterministic scalar summarizing the model state,
// the correctness check each application benchmark must pass.
func (m *Model) Checksum() float64 {
	var sum float64
	for k, l := range m.Layers {
		sum += l.MeanPhi() * float64(k+1)
		sum += m.Tr.MeanValue(m.Moisture[k]) * 1e4
		sum += l.MaxAbsGrid(l.Zeta) * 1e5
	}
	return sum
}

// TimeStep returns the operational time step of the model's
// resolution, in seconds.
func (m *Model) TimeStep() float64 { return m.Res.TimeStepMin * 60 }

// StableTimeStep returns an explicitly stable step for host
// integration (the real CCM2 is semi-implicit and runs the Table 4
// steps; the explicit skeleton needs CFL-limited ones).
func (m *Model) StableTimeStep() float64 { return CFLTimeStep(m.Tr, 0.5) }
