package ccm2

import (
	"encoding/binary"
	"fmt"
	"io"
)

// History tape: CCM2's output format as the I/O benchmark describes it
// — "a simulated header file and a simulated history tape file", the
// latter an unformatted direct-access file with one record per
// latitude so that on a multiprocessing system different processors
// can write different latitude records.

// historyMagic identifies a history tape.
const historyMagic = 0x43434d32 // "CCM2"

// HistoryHeader is the tape's fixed-size header record.
type HistoryHeader struct {
	Magic  uint32
	T      int32
	NLat   int32
	NLon   int32
	NLev   int32
	Fields int32
	Day    int32
	Step   int32
}

// historyFields counts the per-level fields a record carries:
// geopotential, vorticity, and moisture.
const historyFields = 3

// WriteHistory writes one day's history record set for the model: the
// header followed by NLat latitude records, each holding
// Fields x NLev x NLon float64 values. It returns the bytes written.
func (m *Model) WriteHistory(w io.Writer, day int) (int64, error) {
	h := HistoryHeader{
		Magic:  historyMagic,
		T:      int32(m.Res.T),
		NLat:   int32(m.Res.NLat),
		NLon:   int32(m.Res.NLon),
		NLev:   int32(m.NLev()),
		Fields: historyFields,
		Day:    int32(day),
		Step:   int32(m.steps),
	}
	if err := binary.Write(w, binary.BigEndian, &h); err != nil {
		return 0, fmt.Errorf("ccm2: history header: %w", err)
	}
	written := int64(binary.Size(&h))

	nlon := m.Res.NLon
	// Synthesize the grid fields once.
	phi := make([][]float64, m.NLev())
	zeta := make([][]float64, m.NLev())
	for k, l := range m.Layers {
		phi[k] = m.Tr.Inverse(l.Phi)
		zeta[k] = m.Tr.Inverse(l.Zeta)
	}
	row := make([]float64, historyFields*m.NLev()*nlon)
	for j := 0; j < m.Res.NLat; j++ {
		p := 0
		for k := 0; k < m.NLev(); k++ {
			p += copy(row[p:], phi[k][j*nlon:(j+1)*nlon])
		}
		for k := 0; k < m.NLev(); k++ {
			p += copy(row[p:], zeta[k][j*nlon:(j+1)*nlon])
		}
		for k := 0; k < m.NLev(); k++ {
			p += copy(row[p:], m.Moisture[k][j*nlon:(j+1)*nlon])
		}
		if err := binary.Write(w, binary.BigEndian, row); err != nil {
			return written, fmt.Errorf("ccm2: history record %d: %w", j, err)
		}
		written += int64(8 * len(row))
	}
	return written, nil
}

// ReadHistory reads a history record set: the header and the latitude
// records (each Fields x NLev x NLon values).
func ReadHistory(r io.Reader) (HistoryHeader, [][]float64, error) {
	var h HistoryHeader
	if err := binary.Read(r, binary.BigEndian, &h); err != nil {
		return h, nil, fmt.Errorf("ccm2: history header: %w", err)
	}
	if h.Magic != historyMagic {
		return h, nil, fmt.Errorf("ccm2: not a history tape (magic %#x)", h.Magic)
	}
	if h.NLat <= 0 || h.NLon <= 0 || h.NLev <= 0 || h.Fields <= 0 ||
		h.NLat > 4096 || h.NLon > 8192 || h.NLev > 256 || h.Fields > 64 {
		return h, nil, fmt.Errorf("ccm2: implausible history geometry %+v", h)
	}
	records := make([][]float64, h.NLat)
	rowLen := int(h.Fields) * int(h.NLev) * int(h.NLon)
	for j := range records {
		records[j] = make([]float64, rowLen)
		if err := binary.Read(r, binary.BigEndian, records[j]); err != nil {
			return h, nil, fmt.Errorf("ccm2: history record %d: %w", j, err)
		}
	}
	return h, records, nil
}

// HistoryRecordBytes returns the size of one latitude record for the
// model's geometry.
func (m *Model) HistoryRecordBytes() int64 {
	return int64(historyFields) * int64(m.NLev()) * int64(m.Res.NLon) * 8
}
