package ccm2

import (
	"math"
	"testing"

	"sx4bench/internal/spharm"
)

func TestSemiImplicitSteadyState(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	phi0 := tr.Inverse(s.Phi)
	// A step far beyond the explicit gravity-wave CFL.
	dt := 4 * CFLTimeStep(tr, 1.0)
	for i := 0; i < 30; i++ {
		s.StepSemiImplicit(dt)
	}
	phi1 := tr.Inverse(s.Phi)
	var maxDiff, amp float64
	for i := range phi0 {
		if d := math.Abs(phi1[i] - phi0[i]); d > maxDiff {
			maxDiff = d
		}
		if d := math.Abs(phi0[i] - PhiBar); d > amp {
			amp = d
		}
	}
	if maxDiff > 0.05*amp {
		t.Errorf("semi-implicit steady state drifted: %.3f%% of deviation amplitude",
			100*maxDiff/amp)
	}
}

func TestSemiImplicitStableBeyondExplicitCFL(t *testing.T) {
	// At a T85-class grid the explicit scheme cannot take a 20-minute
	// step; the semi-implicit scheme can (the real model runs 10-20
	// minute steps at these resolutions, Table 4).
	if testing.Short() {
		t.Skip("T85 integration in -short mode")
	}
	tr := spharm.New(85, 128, 256)
	cfl := CFLTimeStep(tr, 1.0)
	dt := 1200.0
	if dt < 1.2*cfl {
		t.Skipf("grid CFL %v too long for the contrast", cfl)
	}
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	perturb(s, 5)
	for i := 0; i < 60; i++ {
		s.StepSemiImplicit(dt)
	}
	if z := s.MaxAbsGrid(s.Zeta); math.IsNaN(z) || z > 1e-3 {
		t.Errorf("semi-implicit blew up at dt=%v: max|ζ| = %v", dt, z)
	}
	if p := s.MaxAbsGrid(s.Phi); math.IsNaN(p) || p > 10*PhiBar {
		t.Errorf("geopotential unstable: %v", p)
	}
}

func TestExplicitUnstableAtOperationalStep(t *testing.T) {
	// Control: the explicit scheme at the same 20-minute step must NOT
	// remain healthy — this is why the real model is semi-implicit.
	if testing.Short() {
		t.Skip("T85 integration in -short mode")
	}
	tr := spharm.New(85, 128, 256)
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	perturb(s, 5)
	blewUp := false
	for i := 0; i < 60; i++ {
		s.Step(1200)
		if z := s.MaxAbsGrid(s.Zeta); math.IsNaN(z) || z > 1e-2 {
			blewUp = true
			break
		}
		if p := s.MaxAbsGrid(s.Phi); math.IsNaN(p) || p > 100*PhiBar {
			blewUp = true
			break
		}
	}
	if !blewUp {
		t.Error("explicit leapfrog survived dt=1200 s at T42; the CFL contrast is gone")
	}
}

func TestSemiImplicitMatchesExplicitSmallDt(t *testing.T) {
	// For dt well inside the CFL limit the two schemes agree closely.
	tr := t21()
	a := NewShallowWater(tr)
	b := NewShallowWater(tr)
	a.SetSolidBody(30)
	b.SetSolidBody(30)
	perturb(a, 6)
	perturb(b, 6)
	dt := CFLTimeStep(tr, 0.1)
	for i := 0; i < 20; i++ {
		a.Step(dt)
		b.StepSemiImplicit(dt)
	}
	ga := tr.Inverse(a.Zeta)
	gb := tr.Inverse(b.Zeta)
	var num, den float64
	for i := range ga {
		num += (ga[i] - gb[i]) * (ga[i] - gb[i])
		den += ga[i] * ga[i]
	}
	if rel := math.Sqrt(num / (den + 1e-30)); rel > 0.02 {
		t.Errorf("schemes diverge at small dt: relative L2 = %v", rel)
	}
}

func TestSemiImplicitConservesMass(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(25)
	perturb(s, 7)
	m0 := s.MeanPhi()
	dt := 3 * CFLTimeStep(tr, 1.0)
	for i := 0; i < 40; i++ {
		s.StepSemiImplicit(dt)
	}
	if d := math.Abs(s.MeanPhi() - m0); d > 1e-9*math.Abs(m0) {
		t.Errorf("mass drifted by %v", d)
	}
}

func TestSemiImplicitGravityWavesSlowedNotAmplified(t *testing.T) {
	// The implicit treatment damps/retards gravity waves but must not
	// amplify them.
	tr := t21()
	s := NewShallowWater(tr)
	s.Phi[tr.Idx(4, 6)] += complex(80, -30)
	copy(s.prevPhi, s.Phi)
	dt := 3 * CFLTimeStep(tr, 1.0)
	peak0 := s.MaxAbsGrid(s.Delta)
	for i := 0; i < 50; i++ {
		s.StepSemiImplicit(dt)
	}
	d := s.MaxAbsGrid(s.Delta)
	if math.IsNaN(d) {
		t.Fatal("divergence went NaN")
	}
	// Divergence appears (wave radiates) but stays bounded.
	if d > 1e-3 {
		t.Errorf("divergence grew unphysically: %v (initial %v)", d, peak0)
	}
}
