package ccm2

import (
	"math"
	"math/rand"
	"testing"

	"sx4bench/internal/spharm"
)

func t21() *spharm.Transform { return spharm.New(21, 32, 64) }

func TestSteadySolidBody(t *testing.T) {
	// Williamson test case 2: solid-body flow in gradient balance is
	// an exact steady state; the discrete model should hold it.
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	phi0 := tr.Inverse(s.Phi)
	dt := CFLTimeStep(tr, 0.4)
	for i := 0; i < 30; i++ {
		s.Step(dt)
	}
	phi1 := tr.Inverse(s.Phi)
	// Error relative to the geopotential *deviation* amplitude.
	var maxDiff, amp float64
	for i := range phi0 {
		if d := math.Abs(phi1[i] - phi0[i]); d > maxDiff {
			maxDiff = d
		}
		if d := math.Abs(phi0[i] - PhiBar); d > amp {
			amp = d
		}
	}
	if maxDiff > 0.02*amp {
		t.Errorf("steady state drifted: max |ΔΦ| = %v (%.2f%% of deviation %v)",
			maxDiff, 100*maxDiff/amp, amp)
	}
}

func TestTendenciesVanishOnSteadyState(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	dz, dd, dp := s.Tendencies()
	// Scale: typical tendency magnitude for this flow would be
	// ~ u0 * ζ / a ~ 1e-10 if unbalanced; steady state should be
	// orders below.
	for i := range dz {
		if cAbs(dz[i]) > 1e-14 {
			t.Fatalf("vorticity tendency %v at %d, want ~0", dz[i], i)
		}
		if cAbs(dd[i]) > 1e-9 {
			t.Fatalf("divergence tendency %v at %d, want ~0", dd[i], i)
		}
		if cAbs(dp[i]) > 1e-8 {
			t.Fatalf("geopotential tendency %v at %d, want ~0", dp[i], i)
		}
	}
}

func cAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestMassConservedExactly(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	perturb(s, 1)
	m0 := s.MeanPhi()
	dt := CFLTimeStep(tr, 0.4)
	for i := 0; i < 50; i++ {
		s.Step(dt)
	}
	if d := math.Abs(s.MeanPhi() - m0); d > 1e-9*math.Abs(m0) {
		t.Errorf("mean geopotential drifted by %v (from %v)", d, m0)
	}
}

// perturb adds a small random rotational disturbance.
func perturb(s *ShallowWater, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tr := s.Tr
	for m := 1; m <= 5; m++ {
		for n := m; n <= 7; n++ {
			s.Zeta[tr.Idx(m, n)] += complex(rng.NormFloat64(), rng.NormFloat64()) * 2e-7
		}
	}
	copy(s.prevZeta, s.Zeta)
}

func TestEnergyApproximatelyConserved(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(30)
	perturb(s, 2)
	e0 := s.TotalEnergy()
	dt := CFLTimeStep(tr, 0.4)
	for i := 0; i < 100; i++ {
		s.Step(dt)
	}
	e1 := s.TotalEnergy()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.01 {
		t.Errorf("energy drifted by %.3f%% in 100 steps", rel*100)
	}
}

func TestStabilityUnderPerturbation(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	s.SetSolidBody(40)
	perturb(s, 3)
	dt := CFLTimeStep(tr, 0.4)
	for i := 0; i < 200; i++ {
		s.Step(dt)
	}
	if z := s.MaxAbsGrid(s.Zeta); z > 1e-3 || math.IsNaN(z) {
		t.Errorf("vorticity blew up: max |ζ| = %v", z)
	}
	if p := s.MaxAbsGrid(s.Phi); p > 10*PhiBar || math.IsNaN(p) {
		t.Errorf("geopotential blew up: max |Φ| = %v", p)
	}
}

func TestGravityWavePropagates(t *testing.T) {
	// A localized geopotential bump must radiate gravity waves: the
	// divergence field, initially zero, becomes nonzero.
	tr := t21()
	s := NewShallowWater(tr)
	s.Phi[tr.Idx(3, 5)] += complex(50, 20)
	copy(s.prevPhi, s.Phi)
	dt := CFLTimeStep(tr, 0.4)
	for i := 0; i < 10; i++ {
		s.Step(dt)
	}
	if d := s.MaxAbsGrid(s.Delta); d == 0 || math.IsNaN(d) {
		t.Errorf("divergence = %v after geopotential perturbation, want > 0", d)
	}
}

func TestCFLTimeStepScales(t *testing.T) {
	small := CFLTimeStep(t21(), 0.5)
	big := CFLTimeStep(spharm.New(10, 16, 32), 0.5)
	if big <= small {
		t.Errorf("coarser grid should allow a longer step: %v vs %v", big, small)
	}
	if small <= 0 {
		t.Errorf("non-positive time step %v", small)
	}
}

func TestHyperdiffusionDampsSmallScales(t *testing.T) {
	tr := t21()
	s := NewShallowWater(tr)
	// Put energy at the truncation limit; it must decay faster than a
	// large-scale mode.
	s.Zeta[tr.Idx(21, 21)] = 1e-5
	s.Zeta[tr.Idx(1, 2)] = 1e-5
	copy(s.prevZeta, s.Zeta)
	dt := CFLTimeStep(tr, 0.4)
	for i := 0; i < 20; i++ {
		s.Step(dt)
	}
	hi := cAbs(s.Zeta[tr.Idx(21, 21)])
	lo := cAbs(s.Zeta[tr.Idx(1, 2)])
	if hi >= lo {
		t.Errorf("truncation-scale mode (%v) should decay faster than planetary mode (%v)", hi, lo)
	}
}
