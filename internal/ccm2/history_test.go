package ccm2

import (
	"bytes"
	"math"
	"testing"
)

func TestHistoryRoundTrip(t *testing.T) {
	m := testModel(t)
	dt := m.StableTimeStep()
	for i := 0; i < 3; i++ {
		m.Step(dt)
	}
	var buf bytes.Buffer
	n, err := m.WriteHistory(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	h, records, err := ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Day != 7 || int(h.NLat) != m.Res.NLat || int(h.NLev) != m.NLev() {
		t.Errorf("header %+v does not match model", h)
	}
	if len(records) != m.Res.NLat {
		t.Fatalf("%d records, want one per latitude", len(records))
	}
	// Spot-check: the first field block of row j is the layer-0
	// geopotential at latitude j.
	phi0 := m.Tr.Inverse(m.Layers[0].Phi)
	nlon := m.Res.NLon
	for j := 0; j < m.Res.NLat; j += 7 {
		for i := 0; i < nlon; i += 13 {
			if records[j][i] != phi0[j*nlon+i] {
				t.Fatalf("record (%d,%d) = %v, want %v", j, i, records[j][i], phi0[j*nlon+i])
			}
		}
	}
	// Moisture block is the last third; values must be finite and
	// non-negative.
	off := 2 * m.NLev() * nlon
	for _, v := range records[0][off:] {
		if v < -1e-15 || math.IsNaN(v) {
			t.Fatal("moisture block corrupt")
		}
	}
}

func TestHistoryRecordSize(t *testing.T) {
	m := testModel(t)
	var buf bytes.Buffer
	n, err := m.WriteHistory(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(32) + int64(m.Res.NLat)*m.HistoryRecordBytes()
	if n != want {
		t.Errorf("tape size %d, want header+records = %d", n, want)
	}
}

func TestReadHistoryRejectsGarbage(t *testing.T) {
	if _, _, err := ReadHistory(bytes.NewReader([]byte("not a tape at all........."))); err == nil {
		t.Error("garbage accepted as history tape")
	}
	// Valid magic but absurd geometry.
	var buf bytes.Buffer
	m := testModel(t)
	if _, err := m.WriteHistory(&buf, 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] = 0xFF // corrupt T field low byte... header layout: magic(4) T(4)
	b[11] = 0xFF
	if _, _, err := ReadHistory(bytes.NewReader(b[:40])); err == nil {
		t.Error("truncated/corrupt tape accepted")
	}
}

func TestHistoryDeterministic(t *testing.T) {
	a := testModel(t)
	b := testModel(t)
	var bufA, bufB bytes.Buffer
	if _, err := a.WriteHistory(&bufA, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteHistory(&bufB, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("identical models wrote different tapes")
	}
}
