package core

import (
	"math"
	"sort"
)

// Percentiles returns the nearest-rank percentiles of xs, one value per
// requested p (0 < p <= 100): the smallest element whose rank r
// satisfies r >= ceil(p/100 * n). This is the classical nearest-rank
// definition — no interpolation — so every returned value is an actual
// member of xs and ties are deterministic regardless of the input
// order. xs is not modified; an empty xs yields all zeros, and p <= 0
// clamps to the minimum while p >= 100 clamps to the maximum.
//
// The fleet capacity engine reports p50/p95/p99 job latency through
// this helper so the Monte Carlo aggregation stays byte-stable across
// worker counts.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	for i, p := range ps {
		// Nearest rank: ceil(p/100 * n). Integer percentiles and counts
		// divide exactly in float64 (both are exactly representable and
		// IEEE division is correctly rounded), so p=50 over n=4 lands on
		// rank 2, never 3.
		rank := int(math.Ceil(p * float64(n) / 100))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		out[i] = sorted[rank-1]
	}
	return out
}
