package core

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a Table as aligned text.
func WriteTable(w io.Writer, t Table) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	// One buffer serves every line: cells are left-padded to their
	// column width, joined by two spaces, with trailing spaces trimmed —
	// the same bytes the fmt-based form produced, without the per-cell
	// string churn.
	var buf []byte
	line := func(cells []string) error {
		buf = buf[:0]
		for i, c := range cells {
			if i > 0 {
				buf = append(buf, "  "...)
			}
			buf = append(buf, c...)
			if i < len(widths) {
				for pad := widths[i] - len(c); pad > 0; pad-- {
					buf = append(buf, ' ')
				}
			}
		}
		for len(buf) > 0 && buf[len(buf)-1] == ' ' {
			buf = buf[:len(buf)-1]
		}
		buf = append(buf, '\n')
		_, err := w.Write(buf)
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure renders a Figure as a column-per-series data listing
// suitable for plotting, with a header block naming the axes.
func WriteFigure(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n# x: %s\n# y: %s\n", f.ID, f.Title, f.XLabel, f.YLabel); err != nil {
		return err
	}
	var buf []byte
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "## series: %s\n", s.Label); err != nil {
			return err
		}
		for _, p := range s.Points {
			buf = AppendFloat(buf[:0], p.X)
			buf = append(buf, '\t')
			buf = AppendFloat(buf, p.Y)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFigureCSV renders a Figure as CSV with one row per point:
// series,x,y.
func WriteFigureCSV(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%s\n", csvEscape(s.Label), Float(p.X), Float(p.Y)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTableCSV renders a Table as CSV.
func WriteTableCSV(w io.Writer, t Table) error {
	rows := append([][]string{t.Headers}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = csvEscape(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
