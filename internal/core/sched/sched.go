// Package sched is the parallel experiment engine: a bounded
// worker-pool scheduler that fans independent units of work out across
// host cores while keeping every observable result deterministic.
//
// Two properties make it safe to drop under the existing serial
// runners:
//
//   - Ordered output. Stream buffers each task's writes and emits them
//     in task order, so the combined stream is byte-identical to running
//     the tasks serially — regardless of completion order.
//   - Isolated errors. A failing task does not cancel unrelated work;
//     its error is reported exactly as the serial loop would have
//     reported it (first failure in task order wins, and output stops
//     at that task, matching a serial early return).
//
// The Workers convention used across the repository: n > 0 means
// exactly n workers, n == 0 means runtime.GOMAXPROCS(0), and 1 selects
// the plain serial path with no goroutines at all.
package sched

import (
	"bytes"
	"io"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: 0 means GOMAXPROCS, negative
// values are clamped to 1.
func Workers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// Task is one schedulable unit producing text output.
type Task struct {
	// ID labels the task in results (an experiment identifier).
	ID string
	// Run produces the task's output. It must write only to w.
	Run func(w io.Writer) error
}

// Result is one completed task.
type Result struct {
	ID     string
	Output []byte
	Err    error
}

// Run executes the tasks on a bounded pool and returns their results
// in task order. Every task runs to completion; errors are recorded
// per task, never cancelling the others.
func Run(workers int, tasks []Task) []Result {
	results := make([]Result, len(tasks))
	ForEach(workers, len(tasks), func(i int) error {
		var buf bytes.Buffer
		err := tasks[i].Run(&buf)
		results[i] = Result{ID: tasks[i].ID, Output: buf.Bytes(), Err: err}
		return nil
	})
	return results
}

// Stream executes the tasks on a bounded pool and writes their
// buffered outputs to w in task order. The stream is byte-identical to
// executing the tasks serially against w: output stops after the first
// task (in task order) that returns an error — that task's partial
// output is still written, exactly as a serial loop would have left it
// — and that error is returned.
func Stream(w io.Writer, workers int, tasks []Task) error {
	for _, r := range Run(workers, tasks) {
		if _, err := w.Write(r.Output); err != nil {
			return err
		}
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// ForEach runs fn(i) for i in [0, n) on a bounded pool of workers.
// Every index runs; the first error in index order is returned. With
// workers == 1 (after resolution) it degenerates to a plain loop,
// preserving exact serial semantics including early return.
func ForEach(workers, n int, fn func(i int) error) error {
	p := Workers(workers)
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachGrain is ForEach with the index space batched into contiguous
// spans of up to grain indexes, so a sweep of many very small tasks
// (the 10k-scenario cold sweep) pays one scheduling handoff per span
// instead of per index. Semantics match ForEach exactly: every span
// runs, a span stops at its first error (the serial early return
// within the span), and the error returned is the first in index
// order. grain <= 1 degenerates to plain ForEach.
func ForEachGrain(workers, n, grain int, fn func(i int) error) error {
	if grain <= 1 {
		return ForEach(workers, n, fn)
	}
	spans := (n + grain - 1) / grain
	return ForEach(workers, spans, func(s int) error {
		hi := (s + 1) * grain
		if hi > n {
			hi = n
		}
		for i := s * grain; i < hi; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// Map runs fn over [0, n) on a bounded pool and collects the values in
// index order. Like ForEach, every index runs and the first error in
// index order is returned alongside the (complete) slice.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}

// SumOrdered computes fn(0)+fn(1)+...+fn(n-1) on a bounded pool with a
// fixed-order reduction: the values are computed in parallel, then
// folded serially in index order, so the sum is bit-identical for any
// worker count. This is the sanctioned way to reduce floats from a
// parallel sweep — a shared `sum += ...` accumulator inside the
// callback would add in completion order, and float addition is not
// associative, so the total would wobble between runs and un-pin
// goldens (the floatorder analyzer flags exactly that pattern).
func SumOrdered(workers, n int, fn func(i int) float64) float64 {
	vals, _ := Map(workers, n, func(i int) (float64, error) {
		return fn(i), nil
	})
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}
