package sched

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", Workers(0))
	}
	if Workers(-3) != 1 || Workers(1) != 1 || Workers(7) != 7 {
		t.Error("Workers clamping wrong")
	}
}

func makeTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			ID: fmt.Sprintf("t%d", i),
			Run: func(w io.Writer) error {
				// Finish in roughly reverse order to stress reordering.
				time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
				fmt.Fprintf(w, "=== t%d ===\nline a %d\nline b %d\n", i, i, i*i)
				return nil
			},
		}
	}
	return tasks
}

// TestStreamByteIdentical is the scheduler's core contract: parallel
// execution must produce the exact bytes of serial execution.
func TestStreamByteIdentical(t *testing.T) {
	tasks := makeTasks(12)
	var serial bytes.Buffer
	for _, task := range tasks {
		if err := task.Run(&serial); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4, 16} {
		var par bytes.Buffer
		if err := Stream(&par, workers, tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Fatalf("workers=%d: output differs from serial", workers)
		}
	}
}

// TestStreamErrorSemantics: output stops at the first failing task (in
// task order), its partial output included, later outputs suppressed —
// but the later tasks still ran.
func TestStreamErrorSemantics(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	tasks := []Task{
		{ID: "a", Run: func(w io.Writer) error { ran.Add(1); fmt.Fprint(w, "A"); return nil }},
		{ID: "b", Run: func(w io.Writer) error { ran.Add(1); fmt.Fprint(w, "B-partial"); return boom }},
		{ID: "c", Run: func(w io.Writer) error { ran.Add(1); fmt.Fprint(w, "C"); return nil }},
	}
	var buf bytes.Buffer
	err := Stream(&buf, 3, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := buf.String(); got != "AB-partial" {
		t.Errorf("output %q, want %q", got, "AB-partial")
	}
	if ran.Load() != 3 {
		t.Errorf("%d tasks ran, want all 3 (no cancellation)", ran.Load())
	}
}

func TestRunKeepsOrderAndErrors(t *testing.T) {
	boom := errors.New("boom")
	tasks := makeTasks(6)
	tasks[4].Run = func(w io.Writer) error { return boom }
	res := Run(4, tasks)
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.ID != fmt.Sprintf("t%d", i) {
			t.Errorf("result %d has ID %s", i, r.ID)
		}
	}
	if res[4].Err != boom || res[3].Err != nil {
		t.Error("error not attributed to the failing task")
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var mask [100]atomic.Bool
		if err := ForEach(workers, 100, func(i int) error {
			if mask[i].Swap(true) {
				t.Errorf("index %d ran twice", i)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range mask {
			if !mask[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestForEachFirstErrorInIndexOrder(t *testing.T) {
	e3, e7 := errors.New("e3"), errors.New("e7")
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 3:
			time.Sleep(5 * time.Millisecond) // finishes after e7
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Errorf("err = %v, want e3 (first in index order)", err)
	}
}

func TestMapOrdered(t *testing.T) {
	vals, err := Map(5, 20, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
}

func TestForEachZeroAndTiny(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Error("n=0 should be a no-op")
	}
	calls := 0
	if err := ForEach(8, 1, func(i int) error { calls++; return nil }); err != nil || calls != 1 {
		t.Error("n=1 should run once serially")
	}
}

func TestSumOrderedDeterministic(t *testing.T) {
	// The terms are chosen so that float addition order matters: mixing
	// large and tiny magnitudes loses different low bits depending on
	// the fold order. A fixed-order reduction must be bit-identical for
	// every worker count.
	term := func(i int) float64 {
		if i%3 == 0 {
			return 1e16
		}
		return 1.0 / float64(i+1)
	}
	serial := SumOrdered(1, 1000, term)
	for _, workers := range []int{2, 4, 8} {
		if got := SumOrdered(workers, 1000, term); got != serial {
			t.Fatalf("SumOrdered(%d workers) = %v, want bit-identical %v", workers, got, serial)
		}
	}
}
