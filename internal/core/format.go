package core

import "strconv"

// Canonical float formatting for golden-producing code.
//
// Every number that reaches a byte-exact golden artifact must be
// rendered through an explicit, named formatter — never through %v or
// %g, whose output shape is an implementation detail of package fmt.
// The sx4lint goldenfmt analyzer enforces this: it flags %v/%g applied
// to floats in golden-producing packages and points here.

// Float renders x in the canonical shortest round-trip form: the exact
// byte sequence %v/%g would produce, but requested by name.
func Float(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// AppendFloat appends Float's exact bytes to dst — the allocation-free
// form for render loops that reuse one buffer across lines.
func AppendFloat(dst []byte, x float64) []byte {
	return strconv.AppendFloat(dst, x, 'g', -1, 64)
}

// Fixed renders x with a fixed number of decimals, the %.<prec>f form
// the paper's tables use.
func Fixed(x float64, prec int) string {
	return strconv.FormatFloat(x, 'f', prec, 64)
}
