package core

import (
	"math"
	"testing"
)

func TestPercentilesNearestRank(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		ps   []float64
		want []float64
	}{
		{
			name: "empty input yields zeros",
			xs:   nil,
			ps:   []float64{50, 95, 99},
			want: []float64{0, 0, 0},
		},
		{
			name: "single element answers every percentile",
			xs:   []float64{7},
			ps:   []float64{1, 50, 99, 100},
			want: []float64{7, 7, 7, 7},
		},
		{
			name: "textbook nearest rank over ten elements",
			xs:   []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			ps:   []float64{25, 50, 75, 100},
			want: []float64{3, 5, 8, 10},
		},
		{
			name: "exact boundary rank is not rounded up",
			// p=50 over n=4 is rank ceil(2.0)=2, the second element.
			xs:   []float64{10, 20, 30, 40},
			ps:   []float64{50},
			want: []float64{20},
		},
		{
			name: "unsorted input is sorted first",
			xs:   []float64{9, 1, 5, 3, 7},
			ps:   []float64{50},
			want: []float64{5},
		},
		{
			name: "p95 and p99 on a hundred elements",
			xs:   iota100(),
			ps:   []float64{95, 99},
			want: []float64{95, 99},
		},
		{
			name: "ties are deterministic members of the input",
			xs:   []float64{4, 4, 4, 1, 9},
			ps:   []float64{50, 95},
			want: []float64{4, 9},
		},
		{
			name: "out-of-range percentiles clamp to min and max",
			xs:   []float64{2, 4, 6},
			ps:   []float64{0, -5, 120},
			want: []float64{2, 2, 6},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Percentiles(tc.xs, tc.ps...)
			if len(got) != len(tc.want) {
				t.Fatalf("Percentiles returned %d values, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("p%v = %v, want %v", tc.ps[i], got[i], tc.want[i])
				}
			}
		})
	}
}

// iota100 returns 1..100.
func iota100() []float64 {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

func TestPercentilesDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentiles(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input reordered to %v", xs)
	}
}

func TestPercentilesEveryResultIsAMember(t *testing.T) {
	xs := []float64{0.25, math.Pi, 42.5, 1e-9, 17}
	for _, p := range []float64{1, 10, 33, 50, 66, 90, 95, 99, 100} {
		v := Percentiles(xs, p)[0]
		found := false
		for _, x := range xs {
			if x == v {
				found = true
			}
		}
		if !found {
			t.Errorf("p%v = %v is not a member of the input (interpolation is forbidden)", p, v)
		}
	}
}
