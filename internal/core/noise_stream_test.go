package core

import (
	"sync"
	"testing"
)

// TestStreamsOrderIndependent: the draws of stream i do not depend on
// whether, or in what order, other streams were used — the property
// the parallel sweeps rely on.
func TestStreamsOrderIndependent(t *testing.T) {
	root := NewNoise(0.03, 1996)
	want := make([]float64, 10)
	for i := range want {
		want[i] = root.Stream(int64(i)).Perturb(1.0)
	}

	// Use the streams in reverse order from a fresh root.
	root2 := NewNoise(0.03, 1996)
	for i := len(want) - 1; i >= 0; i-- {
		if got := root2.Stream(int64(i)).Perturb(1.0); got != want[i] {
			t.Fatalf("stream %d drew %v out of order, want %v", i, got, want[i])
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	root := NewNoise(0.1, 7)
	a := root.Stream(0).Perturb(1.0)
	b := root.Stream(1).Perturb(1.0)
	if a == b {
		t.Error("adjacent streams drew identical values")
	}
	var nilNoise *Noise
	if nilNoise.Stream(3) != nil {
		t.Error("nil noise should fork to nil")
	}
	if z := (&Noise{}).Stream(2).Perturb(4.0); z != 4.0 {
		t.Errorf("zero-amp stream perturbed: %v", z)
	}
}

// TestPerturbConcurrentSafe hammers one shared Noise; run under -race.
// The draw *values* under contention are unspecified, but each must
// stay in [1, 1+Amp] and the rng must not corrupt.
func TestPerturbConcurrentSafe(t *testing.T) {
	n := NewNoise(0.25, 11)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := n.Perturb(2.0)
				if v < 2.0 || v > 2.0*(1+0.25) {
					t.Errorf("Perturb out of bounds: %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
