package core

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePlot renders a Figure as an ASCII chart: log-x/log-y scatter of
// every series, one glyph per series, with axis annotations — enough
// to eyeball the shapes the paper's figures show without leaving the
// terminal.
func WritePlot(w io.Writer, f Figure, width, height int) error {
	if width < 20 {
		width = 72
	}
	if height < 8 {
		height = 20
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Collect ranges over positive values (log axes).
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.X > 0 {
				minX = math.Min(minX, p.X)
				maxX = math.Max(maxX, p.X)
			}
			if p.Y > 0 {
				minY = math.Min(minY, p.Y)
				maxY = math.Max(maxY, p.Y)
			}
		}
	}
	if math.IsInf(minX, 1) || math.IsInf(minY, 1) || minX == maxX {
		return fmt.Errorf("core: figure %s has no plottable points", f.ID)
	}
	if minY == maxY {
		maxY = minY * 2
	}
	lx0, lx1 := math.Log10(minX), math.Log10(maxX)
	ly0, ly1 := math.Log10(minY), math.Log10(maxY)

	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			if p.X <= 0 || p.Y <= 0 {
				continue
			}
			cx := int((math.Log10(p.X) - lx0) / (lx1 - lx0) * float64(width-1))
			cy := int((math.Log10(p.Y) - ly0) / (ly1 - ly0) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				cells[row][cx] = g
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s: %s (log-log)\n", f.ID, f.Title); err != nil {
		return err
	}
	for r, line := range cells {
		label := strings.Repeat(" ", 10)
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.3g ", minY)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s%-*.3g%*.3g\n", "", width/2, minX, width-width/2, maxX); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10sx: %s   y: %s\n", "", f.XLabel, f.YLabel); err != nil {
		return err
	}
	for si, s := range f.Series {
		if _, err := fmt.Fprintf(w, "%10s%c %s\n", "", glyphs[si%len(glyphs)], s.Label); err != nil {
			return err
		}
	}
	return nil
}
