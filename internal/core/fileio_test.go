package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.golden")

	if err := WriteFileAtomic(path, []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first\n" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite in place.
	if err := WriteFileAtomic(path, []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second\n" {
		t.Errorf("overwrite read back %q", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		for _, e := range entries {
			t.Logf("left behind: %s", e.Name())
		}
		t.Errorf("directory holds %d entries, want just the artifact", len(entries))
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", info.Mode().Perm())
	}
}

func TestWriteFileAtomicFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "missing-parent.txt")
	// The parent directory does not exist: the write must fail without
	// creating anything.
	if err := WriteFileAtomic(path, []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	} else if !strings.Contains(err.Error(), "atomic write") {
		t.Errorf("error %q does not identify the atomic writer", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed write left a file behind")
	}
}