package core

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temp file in the same
// directory followed by a rename, so an interrupted run can never
// leave a truncated artifact on disk: readers see either the old
// content or the new, nothing in between.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: atomic write %s: %w", path, err)
	}
	return nil
}