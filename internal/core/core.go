// Package core is the NCAR benchmark-suite framework: the methodology
// layer of the paper. It provides the executor abstraction shared by
// the SX-4 model and the comparison-machine models, the KTRIES
// best-of-k repetition rule, the constant-data-volume parameter sweeps
// used by the memory and FFT kernels, and result series/table types
// that the reporting tools render.
package core

import (
	"fmt"
	"math"
	"sync"

	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// Executor is a machine (real or modeled) that can execute an operation
// trace: the subset of target.Target the measurement loop needs. Every
// registered target satisfies it — *sx4.Machine and the Table 1 models
// in internal/machine alike.
type Executor interface {
	Name() string
	Run(p prog.Program, opts target.RunOpts) target.Result
}

// Noise perturbs simulated timings with deterministic pseudo-random
// system jitter (interrupts, daemons, memory refresh), so that the
// KTRIES best-of-k rule has something to smooth, as it did on the real
// machine. Amp is the maximum fractional slowdown; a zero Noise is
// silent.
//
// Perturb is safe for concurrent use, but concurrent callers sharing
// one Noise consume draws in scheduling order, which is not
// reproducible. Under the parallel experiment engine each independent
// unit of work must therefore draw from its own Stream: sub-sources
// whose sequences depend only on (Seed, id), never on execution order.
type Noise struct {
	Amp  float64
	Seed int64

	mu    sync.Mutex
	state uint64 // SplitMix64 stream state; 0 means "not yet seeded"
}

// NewNoise returns a jitter source with the given amplitude and seed.
func NewNoise(amp float64, seed int64) *Noise {
	return &Noise{Amp: amp, Seed: seed, state: noiseState(seed)}
}

// noiseState maps a user seed onto a non-zero SplitMix64 state.
// Seeding is a single mix — cheap enough that the parallel sweeps can
// fork one Stream per measurement point without the stream setup
// dominating the measurement (rand.Rand's 607-word lagged-Fibonacci
// seeding did exactly that).
func noiseState(seed int64) uint64 {
	s := splitmix64(uint64(seed))
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return s
}

// splitmix64 is the SplitMix64 finalizer, used to derive well-spread
// stream seeds from (Seed, id) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream derives the id-th independent jitter stream: same amplitude,
// a seed mixed from (Seed, id). Streams with the same (Seed, id) are
// identical no matter how many exist or in which order they are used,
// which is what makes parallel sweeps deterministic: one stream per
// measurement point, keyed by the point's index.
func (n *Noise) Stream(id int64) *Noise {
	if n == nil {
		return nil
	}
	seed := int64(splitmix64(splitmix64(uint64(n.Seed)) ^ uint64(id)))
	return NewNoise(n.Amp, seed)
}

// Perturb returns seconds inflated by a random factor in [1, 1+Amp].
func (n *Noise) Perturb(seconds float64) float64 {
	if n == nil || n.Amp == 0 {
		return seconds
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == 0 {
		n.state = noiseState(n.Seed)
	}
	// SplitMix64 step, then take the top 53 bits as a uniform in [0,1).
	n.state += 0x9e3779b97f4a7c15
	u := float64(splitmix64(n.state)>>11) / (1 << 53)
	return seconds * (1 + n.Amp*u)
}

// KTries runs trial k times and returns the best (smallest) time, the
// rule the NCAR kernels apply: "For values of KTRIES greater than one,
// the best performance for that instance is reported."
func KTries(k int, trial func() float64) float64 {
	if k < 1 {
		k = 1
	}
	best := math.Inf(1)
	for i := 0; i < k; i++ {
		if t := trial(); t < best {
			best = t
		}
	}
	return best
}

// Measurement is one timed benchmark instance.
type Measurement struct {
	// N is the sweep axis value (vector/copy/FFT axis length).
	N int
	// M is the instance-axis length paired with N.
	M int
	// Seconds is the best-of-KTRIES time.
	Seconds float64
	// Flops is the operation count of one trial.
	Flops int64
	// PayloadBytes is the number of payload bytes moved (excluding
	// index vectors), for bandwidth benchmarks.
	PayloadBytes int64
}

// MBps returns the payload bandwidth in MB/s (10^6 bytes per second).
func (m Measurement) MBps() float64 {
	if m.Seconds <= 0 {
		return 0
	}
	return float64(m.PayloadBytes) / m.Seconds / 1e6
}

// MFLOPS returns the rate in millions of flops per second.
func (m Measurement) MFLOPS() float64 {
	if m.Seconds <= 0 {
		return 0
	}
	return float64(m.Flops) / m.Seconds / 1e6
}

// Point is one (x, y) sample of a result curve.
type Point struct{ X, Y float64 }

// Series is a labeled result curve, one line of a paper figure.
type Series struct {
	Label  string
	Points []Point
}

// Append adds a point.
func (s *Series) Append(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// MaxY returns the largest Y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// YAt returns the Y value at the first point with X == x.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a set of series, matching one paper figure.
type Figure struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table is a rendered result table, matching one paper table.
type Table struct {
	ID      string // e.g. "table7"
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// SweepPair is one (N, M) combination of a constant-volume sweep.
type SweepPair struct{ N, M int }

// ConstantVolumeSweep returns (N, M) pairs with N*M ~= volume, N
// log-spaced from minN to maxN with the given number of points per
// decade. This is the novel feature of the NCAR memory benchmarks: at
// one extreme many small arrays are moved, at the other a few large
// ones, holding total data volume roughly constant.
func ConstantVolumeSweep(volume, minN, maxN, perDecade int) []SweepPair {
	if volume <= 0 || minN <= 0 || maxN < minN || perDecade <= 0 {
		panic(fmt.Sprintf("core: bad sweep parameters volume=%d N=[%d,%d] perDecade=%d",
			volume, minN, maxN, perDecade))
	}
	var pairs []SweepPair
	seen := make(map[int]bool)
	decades := math.Log10(float64(maxN) / float64(minN))
	steps := int(math.Ceil(decades * float64(perDecade)))
	if steps < 1 {
		steps = 1
	}
	for i := 0; i <= steps; i++ {
		n := int(math.Round(float64(minN) * math.Pow(float64(maxN)/float64(minN), float64(i)/float64(steps))))
		if n < minN {
			n = minN
		}
		if n > maxN {
			n = maxN
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		m := volume / n
		if m < 1 {
			m = 1
		}
		pairs = append(pairs, SweepPair{N: n, M: m})
	}
	return pairs
}

// Run measures one trace on an executor with KTRIES repetitions under
// jitter, returning the best time. payloadBytes may be zero for
// compute benchmarks.
func Run(ex Executor, p prog.Program, opts target.RunOpts, ktries int, noise *Noise, payloadBytes int64) Measurement {
	// Executors are pure functions of (p, opts) — jitter enters only
	// through noise — so the trace is simulated once and only the
	// perturbation repeats. The draw sequence matches calling ex.Run
	// inside the loop draw-for-draw, so reported numbers are unchanged,
	// but a KTRIES=20 point costs one simulation instead of twenty.
	r := ex.Run(p, opts)
	best := KTries(ktries, func() float64 {
		return noise.Perturb(r.Seconds)
	})
	return Measurement{Seconds: best, Flops: r.Flops, PayloadBytes: payloadBytes}
}

// RunCompiled is Run for a pre-compiled trace: sweep drivers that
// revisit the same trace shape across points, machines or KTRIES
// draws cache the compiled form once and skip rebuilding and
// re-hashing the program on every measurement. The reported numbers
// are bit-identical to Run on the source program.
func RunCompiled(ex Executor, ct target.CompiledTrace, opts target.RunOpts, ktries int, noise *Noise, payloadBytes int64) Measurement {
	var r target.Result
	if cr, ok := ex.(target.CompiledRunner); ok && ct.Compiled != nil {
		r = cr.RunCompiled(ct.Compiled, opts)
	} else {
		r = ex.Run(ct.Program, opts)
	}
	best := KTries(ktries, func() float64 {
		return noise.Perturb(r.Seconds)
	})
	return Measurement{Seconds: best, Flops: r.Flops, PayloadBytes: payloadBytes}
}
