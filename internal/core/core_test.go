package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

func TestKTriesReturnsBest(t *testing.T) {
	times := []float64{5, 3, 7, 2, 9}
	i := 0
	best := KTries(5, func() float64 { t := times[i]; i++; return t })
	if best != 2 {
		t.Errorf("KTries best = %v, want 2", best)
	}
}

func TestKTriesClampsK(t *testing.T) {
	calls := 0
	KTries(0, func() float64 { calls++; return 1 })
	if calls != 1 {
		t.Errorf("KTries(0) ran %d trials, want 1", calls)
	}
}

func TestNoiseDeterministic(t *testing.T) {
	a := NewNoise(0.05, 42)
	b := NewNoise(0.05, 42)
	for i := 0; i < 10; i++ {
		if a.Perturb(1.0) != b.Perturb(1.0) {
			t.Fatal("same-seed noise diverged")
		}
	}
}

func TestNoiseBounds(t *testing.T) {
	n := NewNoise(0.1, 7)
	for i := 0; i < 1000; i++ {
		v := n.Perturb(2.0)
		if v < 2.0 || v > 2.2 {
			t.Fatalf("Perturb out of bounds: %v", v)
		}
	}
}

func TestNilNoiseIdentity(t *testing.T) {
	var n *Noise
	if n.Perturb(3.5) != 3.5 {
		t.Error("nil noise changed the value")
	}
	z := &Noise{}
	if z.Perturb(3.5) != 3.5 {
		t.Error("zero-amp noise changed the value")
	}
}

func TestKTriesSmoothsNoise(t *testing.T) {
	// The paper: curves are relatively smooth at KTRIES >= 5. Best-of-20
	// under jitter must land closer to the true time than a single try's
	// worst case.
	noise := NewNoise(0.2, 1)
	true_ := 1.0
	best := KTries(20, func() float64 { return noise.Perturb(true_) })
	if best > 1.05 {
		t.Errorf("best-of-20 = %v, want <= 1.05 with 20%% jitter", best)
	}
}

func TestConstantVolumeSweep(t *testing.T) {
	pairs := ConstantVolumeSweep(1_000_000, 1, 1_000_000, 4)
	if len(pairs) < 10 {
		t.Fatalf("sweep too sparse: %d points", len(pairs))
	}
	if pairs[0].N != 1 || pairs[len(pairs)-1].N != 1_000_000 {
		t.Errorf("sweep endpoints = %d..%d, want 1..1000000", pairs[0].N, pairs[len(pairs)-1].N)
	}
	prevN := 0
	for _, p := range pairs {
		if p.N <= prevN {
			t.Errorf("sweep N not strictly increasing at %d", p.N)
		}
		prevN = p.N
		vol := p.N * p.M
		if vol < 500_000 || vol > 2_000_000 {
			t.Errorf("pair (%d,%d): volume %d not roughly constant", p.N, p.M, vol)
		}
	}
}

func TestConstantVolumeSweepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad sweep parameters did not panic")
		}
	}()
	ConstantVolumeSweep(0, 1, 10, 4)
}

func TestMeasurementRates(t *testing.T) {
	m := Measurement{Seconds: 2, Flops: 4e6, PayloadBytes: 8e6}
	if m.MFLOPS() != 2 {
		t.Errorf("MFLOPS = %v, want 2", m.MFLOPS())
	}
	if m.MBps() != 4 {
		t.Errorf("MBps = %v, want 4", m.MBps())
	}
	var zero Measurement
	if zero.MFLOPS() != 0 || zero.MBps() != 0 {
		t.Error("zero measurement should report zero rates")
	}
}

func TestSeriesHelpers(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 30)
	s.Append(3, 20)
	if s.MaxY() != 30 {
		t.Errorf("MaxY = %v, want 30", s.MaxY())
	}
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Errorf("YAt(2) = %v,%v want 30,true", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) found a point")
	}
	var empty Series
	if empty.MaxY() != 0 {
		t.Error("empty MaxY != 0")
	}
}

func TestRunAgainstMachine(t *testing.T) {
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	p := prog.Simple("copy", 10,
		prog.Op{Class: prog.VLoad, VL: 1000, Stride: 1},
		prog.Op{Class: prog.VStore, VL: 1000, Stride: 1})
	meas := Run(m, p, sx4.RunOpts{Procs: 1}, 5, NewNoise(0.02, 3), 16*10*1000)
	if meas.Seconds <= 0 {
		t.Fatalf("non-positive time %v", meas.Seconds)
	}
	if meas.MBps() <= 0 {
		t.Error("zero bandwidth")
	}
	// Best-of-5 under 2% jitter should be within 2% of the noiseless time.
	clean := m.Run(p, sx4.RunOpts{Procs: 1}).Seconds
	if meas.Seconds < clean || meas.Seconds > clean*1.02 {
		t.Errorf("KTRIES measurement %v outside [%v, %v]", meas.Seconds, clean, clean*1.02)
	}
}

func TestWriteTable(t *testing.T) {
	tab := Table{
		ID:      "table7",
		Title:   "MOM speedup",
		Headers: []string{"CPUs", "Time", "Speedup"},
	}
	tab.AddRow("1", "1861.25", "1.00")
	tab.AddRow("32", "226.62", "9.06")
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table7", "MOM speedup", "CPUs", "1861.25", "9.06"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigure(t *testing.T) {
	f := Figure{
		ID: "fig5", Title: "Memory bandwidth", XLabel: "N", YLabel: "MB/s",
		Series: []Series{{Label: "COPY", Points: []Point{{1, 10}, {100, 5000}}}},
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig5", "COPY", "# x: N", "100\t5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	f := Figure{ID: "f", Series: []Series{{Label: `a,"b`, Points: []Point{{1, 2}}}}}
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"a,""b",1,2`) {
		t.Errorf("CSV escaping wrong:\n%s", buf.String())
	}
	tab := Table{Headers: []string{"h1", "h2"}, Rows: [][]string{{"x", "y"}}}
	buf.Reset()
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "h1,h2\nx,y\n" {
		t.Errorf("table CSV = %q", got)
	}
}

func TestWritePlot(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "test", XLabel: "N", YLabel: "MB/s",
		Series: []Series{
			{Label: "fast", Points: []Point{{1, 100}, {100, 10000}, {10000, 100000}}},
			{Label: "slow", Points: []Point{{1, 10}, {100, 1000}, {10000, 5000}}},
		},
	}
	var buf bytes.Buffer
	if err := WritePlot(&buf, f, 60, 15); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "log-log", "* fast", "o slow", "x: N"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q", want)
		}
	}
	if strings.Count(out, "\n") < 15 {
		t.Error("plot too short")
	}
	// A figure with no positive points is rejected.
	bad := Figure{ID: "none", Series: []Series{{Label: "x", Points: []Point{{-1, -1}}}}}
	if err := WritePlot(&buf, bad, 60, 15); err == nil {
		t.Error("unplottable figure accepted")
	}
}

func TestWritePlotClampsDimensions(t *testing.T) {
	f := Figure{ID: "f", Series: []Series{{Label: "s", Points: []Point{{1, 1}, {10, 10}}}}}
	var buf bytes.Buffer
	if err := WritePlot(&buf, f, 1, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output with clamped dimensions")
	}
}

func TestSweepVolumeMath(t *testing.T) {
	// Property: every pair's M is volume/N (floored, min 1).
	pairs := ConstantVolumeSweep(250_000, 2, 1000, 6)
	for _, p := range pairs {
		want := 250_000 / p.N
		if want < 1 {
			want = 1
		}
		if p.M != want {
			t.Errorf("pair N=%d has M=%d, want %d", p.N, p.M, want)
		}
	}
	_ = math.Pi
}
