package machine

import (
	"sx4bench/internal/sx4"
	"sx4bench/internal/target"
)

// The registry is the one sanctioned way to build machines above this
// layer: runners and CLIs resolve short names ("-machine ymp") through
// target.Lookup, and no package outside internal/sx4 and this one
// constructs a *sx4.Machine directly. Registration order is the
// canonical column order of the cross-machine tables: the paper's
// Table 1 machines, then the SX-4 configurations.
func init() {
	target.Register("sparc20", func() target.Target { return SunSparc20() })
	target.Register("rs6000", func() target.Target { return IBMRS6000590() })
	target.Register("j90", func() target.Target { return CrayJ90() })
	target.Register("ymp", func() target.Target { return CrayYMP() })
	target.Register("c90", func() target.Target { return CrayC90() })
	target.Register("sx4-1", func() target.Target { return SX4Single() })
	target.Register("sx4-32", func() target.Target { return SX4Benchmarked() })
}

// SX4Benchmarked returns the system measured in the paper: an SX-4/32
// with the 9.2 ns pre-production clock (Table 2).
func SX4Benchmarked() *sx4.Machine { return sx4.New(sx4.Benchmarked()) }

// SX4Single returns a single processor of the benchmarked system, the
// configuration behind the paper's SX-4/1 kernel results (Figures 5-7,
// Table 3). It is one CPU of the 32-CPU node — same clock, memory
// geometry and per-CPU port — with the node to itself.
func SX4Single() *sx4.Machine {
	c := sx4.BenchmarkedSingleCPU()
	c.CPUs = 1
	c.Name = "SX-4/1"
	return sx4.New(c)
}

// SX4Production returns an SX-4 with the production 8.0 ns clock, cpus
// processors per node and the given node count (joined by the IXS).
func SX4Production(cpus, nodes int) *sx4.Machine {
	return sx4.New(sx4.NewConfig(cpus, nodes))
}
