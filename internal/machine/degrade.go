package machine

import (
	"fmt"

	"sx4bench/internal/fault"
	"sx4bench/internal/sx4"
	"sx4bench/internal/target"
)

var (
	_ target.Degrader = (*Vector)(nil)
	_ target.Degrader = (*Workstation)(nil)
)

// Degraded reconfigures the Cray model around the failed components by
// delegating to the embedded sx4 engine, preserving the scalar profile.
// (The promoted sx4.Machine Degraded would drop it, like Clone.)
func (v *Vector) Degraded(d fault.Degradation) (target.Target, error) {
	t, err := v.Machine.Degraded(d)
	if err != nil {
		return nil, err
	}
	return &Vector{Machine: t.(*sx4.Machine), scalar: v.scalar}, nil
}

// Degraded derives a workstation operating under the given fault
// impact. Workstations are uniprocessors, so any CPU loss takes the
// whole machine down; bank and port degradations slow the memory and
// cache paths. The copy starts with a cold memo and a parameter set
// that fingerprints differently from the healthy machine.
func (w *Workstation) Degraded(d fault.Degradation) (target.Target, error) {
	if d.CPUsLost > 0 {
		return nil, fmt.Errorf("machine: %s: uniprocessor CPU failed: %w",
			w.ModelName, target.ErrMachineDown)
	}
	c := *w
	c.memo = target.NewMemo()
	if w.progs != nil {
		// Compiled timings bake in the healthy memory and cache rates;
		// the degraded copy must recompile against its own.
		c.progs = &target.FPCache[*wsTiming]{}
	}
	for i := 0; i < d.BankHalvings; i++ {
		c.MemWordsPerClock /= 2
	}
	for i := 0; i < d.PortHalvings; i++ {
		c.CacheWordsPerClock /= 2
	}
	// IOP stalls do not affect the workstation compute model (no I/O
	// subsystem is modeled; the disk-dependent rows are gated off).
	if c.fp != 0 {
		c.fp = c.computeFingerprint()
	}
	return &c, nil
}
