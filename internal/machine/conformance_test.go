package machine

import (
	"testing"

	"sx4bench/internal/target"
)

// TestConformanceAllRegistered runs the target conformance contract
// over every machine in the registry — the Table 1 comparators, the
// scalar workstations included, and both SX-4 configurations.
func TestConformanceAllRegistered(t *testing.T) {
	names := target.All()
	if len(names) < 7 {
		t.Fatalf("registry holds %d machines (%v), want at least the 7 paper systems",
			len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tgt, err := target.Lookup(name)
			if err != nil {
				t.Fatalf("Lookup(%q): %v", name, err)
			}
			target.Conformance(t, tgt)
		})
	}
}

// TestRegistryOrder pins the canonical column order: Table 1 machines
// first (paper order), then the SX-4 configurations.
func TestRegistryOrder(t *testing.T) {
	want := []string{"sparc20", "rs6000", "j90", "ymp", "c90", "sx4-1", "sx4-32"}
	got := target.All()
	if len(got) < len(want) {
		t.Fatalf("All() = %v, want prefix %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("All()[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
	}
}

// TestRegistryNames pins the name each registry entry resolves to.
func TestRegistryNames(t *testing.T) {
	for name, display := range map[string]string{
		"sparc20": "SUN Sparc 20",
		"rs6000":  "IBM RS6000/590",
		"j90":     "CRI J90",
		"ymp":     "CRI Y-MP",
		"c90":     "CRI C90",
		"sx4-1":   "SX-4/1",
		"sx4-32":  "SX-4/32",
	} {
		tgt, err := target.Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if tgt.Name() != display {
			t.Errorf("Lookup(%q).Name() = %q, want %q", name, tgt.Name(), display)
		}
	}
}
