package machine

import (
	"errors"
	"testing"

	"sx4bench/internal/fault"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

func degradeTrace() prog.Program {
	return prog.Simple("degrade-probe", 200,
		prog.Op{Class: prog.VLoad, VL: 4096, Stride: 1},
		prog.Op{Class: prog.VMul, VL: 4096},
		prog.Op{Class: prog.VStore, VL: 4096, Stride: 1},
	)
}

func TestEveryRegisteredTargetDegrades(t *testing.T) {
	for _, name := range target.All() {
		tgt := target.MustLookup(name)
		if _, ok := tgt.(target.Degrader); !ok {
			t.Errorf("%s does not implement target.Degrader", name)
			continue
		}
		// Zero degradation is the identity for every target.
		same, err := target.Degrade(tgt, fault.Degradation{})
		if err != nil || same != tgt {
			t.Errorf("%s: zero degradation = (%v, %v), want identity", name, same, err)
		}
	}
}

func TestVectorDegradedKeepsScalarProfile(t *testing.T) {
	v := CrayC90()
	dt, err := v.Degraded(fault.Degradation{CPUsLost: 4, BankHalvings: 1})
	if err != nil {
		t.Fatal(err)
	}
	dv, ok := dt.(*Vector)
	if !ok {
		t.Fatalf("degraded Cray is %T, want *Vector", dt)
	}
	if dv.Scalar() != v.Scalar() {
		t.Error("degradation changed the scalar profile")
	}
	if dv.Config().CPUs != v.Config().CPUs-4 {
		t.Errorf("degraded CPUs = %d, want %d", dv.Config().CPUs, v.Config().CPUs-4)
	}
	if dv.Fingerprint() == v.Fingerprint() {
		t.Error("degraded Cray fingerprints identically to healthy")
	}
}

func TestVectorDegradedDown(t *testing.T) {
	v := CrayYMP()
	_, err := v.Degraded(fault.Degradation{CPUsLost: v.Config().CPUs})
	if !errors.Is(err, target.ErrMachineDown) {
		t.Errorf("err = %v, want ErrMachineDown", err)
	}
}

func TestWorkstationDegraded(t *testing.T) {
	w := IBMRS6000590()
	dt, err := w.Degraded(fault.Degradation{BankHalvings: 1, PortHalvings: 1})
	if err != nil {
		t.Fatal(err)
	}
	dw := dt.(*Workstation)
	if dw.MemWordsPerClock != w.MemWordsPerClock/2 {
		t.Errorf("degraded memory bandwidth = %v, want %v", dw.MemWordsPerClock, w.MemWordsPerClock/2)
	}
	if dw.CacheWordsPerClock != w.CacheWordsPerClock/2 {
		t.Errorf("degraded cache bandwidth = %v, want %v", dw.CacheWordsPerClock, w.CacheWordsPerClock/2)
	}
	if dw.Fingerprint() == w.Fingerprint() {
		t.Error("degraded workstation fingerprints identically to healthy")
	}
	opts := sx4.RunOpts{Procs: 1}
	healthy := w.Run(degradeTrace(), opts).Seconds
	degraded := dw.Run(degradeTrace(), opts).Seconds
	if degraded <= healthy {
		t.Errorf("degraded workstation not slower: healthy %gs, degraded %gs", healthy, degraded)
	}
}

func TestWorkstationCPULossIsFatal(t *testing.T) {
	w := SunSparc20()
	_, err := w.Degraded(fault.Degradation{CPUsLost: 1})
	if !errors.Is(err, target.ErrMachineDown) {
		t.Errorf("err = %v, want ErrMachineDown", err)
	}
}

// TestRegistryDegradedNeverFaster is the cross-machine degraded-time
// >= healthy-time property from the issue, over the whole registry.
func TestRegistryDegradedNeverFaster(t *testing.T) {
	d := fault.Degradation{BankHalvings: 1, PortHalvings: 1}
	for _, name := range target.All() {
		tgt := target.MustLookup(name)
		dt, err := target.Degrade(tgt, d)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		opts := sx4.RunOpts{Procs: tgt.Spec().CPUs}
		healthy := tgt.Run(degradeTrace(), opts).Seconds
		degraded := dt.Run(degradeTrace(), opts).Seconds
		if degraded < healthy {
			t.Errorf("%s: degraded %gs faster than healthy %gs", name, degraded, healthy)
		}
	}
}
