package machine

import (
	"strings"
	"testing"

	"sx4bench/internal/fftpack"
	"sx4bench/internal/radabs"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

func radabsMFLOPS(t Target) float64 {
	p := radabs.Trace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	r := t.Run(p, sx4.RunOpts{Procs: 1})
	return r.MFLOPS()
}

func TestRADABSTable1Bands(t *testing.T) {
	// Paper Table 1 RADABS MFLOPS: Sparc20 12.8, RS6K/590 16.5,
	// J90 60.8, Y-MP 178.1. The model must land within ±30%.
	cases := []struct {
		target Target
		paper  float64
	}{
		{SunSparc20(), 12.8},
		{IBMRS6000590(), 16.5},
		{CrayJ90(), 60.8},
		{CrayYMP(), 178.1},
	}
	for _, c := range cases {
		got := radabsMFLOPS(c.target)
		lo, hi := 0.7*c.paper, 1.3*c.paper
		if got < lo || got > hi {
			t.Errorf("%s RADABS = %.1f MFLOPS, want within [%.1f, %.1f] (paper %.1f)",
				c.target.Name(), got, lo, hi, c.paper)
		}
	}
}

func TestRADABSOrderingAcrossMachines(t *testing.T) {
	// Vector machines dominate the radiation kernel; C90 beats Y-MP.
	ymp := radabsMFLOPS(CrayYMP())
	c90 := radabsMFLOPS(CrayC90())
	j90 := radabsMFLOPS(CrayJ90())
	sparc := radabsMFLOPS(SunSparc20())
	rs6k := radabsMFLOPS(IBMRS6000590())
	if !(c90 > ymp && ymp > j90 && j90 > rs6k && rs6k > sparc) {
		t.Errorf("RADABS ordering violated: C90=%.1f YMP=%.1f J90=%.1f RS6K=%.1f Sparc=%.1f",
			c90, ymp, j90, rs6k, sparc)
	}
}

func TestSX4OutrunsYMPOnRADABS(t *testing.T) {
	// The paper reports 865.9 Y-MP-equivalent MFLOPS on the SX-4/1:
	// about 4.9x one Y-MP processor.
	sx := sx4.New(sx4.BenchmarkedSingleCPU())
	p := radabs.Trace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	sxMF := sx.Run(p, sx4.RunOpts{Procs: 1}).MFLOPS()
	ympMF := radabsMFLOPS(CrayYMP())
	ratio := sxMF / ympMF
	if ratio < 3.5 || ratio > 6.5 {
		t.Errorf("SX-4/YMP RADABS ratio = %.2f, want within [3.5, 6.5] (paper: 4.86)", ratio)
	}
}

func TestWorkstationCacheEffect(t *testing.T) {
	// A small copy loop should run much faster than a huge one on a
	// cache machine.
	w := IBMRS6000590()
	small := prog.Simple("small", 1000,
		prog.Op{Class: prog.VLoad, VL: 1000, Stride: 1},
		prog.Op{Class: prog.VStore, VL: 1000, Stride: 1})
	big := prog.Simple("big", 1,
		prog.Op{Class: prog.VLoad, VL: 1_000_000, Stride: 1},
		prog.Op{Class: prog.VStore, VL: 1_000_000, Stride: 1})
	sRate := float64(small.Words()) / w.Run(small, sx4.RunOpts{}).Seconds
	bRate := float64(big.Words()) / w.Run(big, sx4.RunOpts{}).Seconds
	if sRate < 3*bRate {
		t.Errorf("in-cache rate %.3g should be >=3x out-of-cache %.3g", sRate, bRate)
	}
}

func TestWorkstationGatherPenaltyOnlyBeyondCache(t *testing.T) {
	w := SunSparc20()
	load := prog.Simple("load", 1,
		prog.Op{Class: prog.VLoad, VL: 1 << 20, Stride: 1})
	gather := prog.Simple("gather", 1,
		prog.Op{Class: prog.VGather, VL: 1 << 20})
	tl := w.Run(load, sx4.RunOpts{}).Seconds
	tg := w.Run(gather, sx4.RunOpts{}).Seconds
	if tg <= tl {
		t.Errorf("out-of-cache gather (%.3g) should cost more than a streaming load (%.3g)", tg, tl)
	}
}

func TestCodingStyleGapIsAVectorMachinePhenomenon(t *testing.T) {
	// Section 4.3's guidance to developers: loop order is decisive on
	// the SX-4 (an order of magnitude between RFFT and VFFT) but
	// nearly immaterial on a cache workstation running the same
	// transforms.
	n, m := 256, 500
	rfft := fftpack.RFFTTrace(n, m)
	vfft := fftpack.VFFTTrace(n, m)

	ws := IBMRS6000590()
	wsRatio := ws.Run(rfft, sx4.RunOpts{}).Seconds / ws.Run(vfft, sx4.RunOpts{}).Seconds

	sx := sx4.New(sx4.BenchmarkedSingleCPU())
	sxRatio := sx.Run(rfft, sx4.RunOpts{Procs: 1}).Seconds / sx.Run(vfft, sx4.RunOpts{Procs: 1}).Seconds

	if wsRatio > 1.5 || wsRatio < 0.5 {
		t.Errorf("RS6000 style ratio = %.2f, want near 1 (loop order immaterial)", wsRatio)
	}
	if sxRatio < 5 {
		t.Errorf("SX-4 style ratio = %.1f, want >= 5 (loop order decisive)", sxRatio)
	}
	if sxRatio < 4*wsRatio {
		t.Errorf("the style gap (SX-4 %.1fx vs RS6000 %.2fx) should be a vector-machine phenomenon",
			sxRatio, wsRatio)
	}
}

func TestVectorBaselinesPeaks(t *testing.T) {
	if got := CrayYMP().Config().PeakFlopsPerCPU() / 1e6; got < 300 || got > 360 {
		t.Errorf("Y-MP peak = %.0f MFLOPS, want ~333", got)
	}
	if got := CrayC90().Config().PeakFlopsPerCPU() / 1e6; got < 900 || got > 1000 {
		t.Errorf("C90 peak = %.0f MFLOPS, want ~960", got)
	}
	if got := CrayJ90().Config().PeakFlopsPerCPU() / 1e6; got < 180 || got > 220 {
		t.Errorf("J90 peak = %.0f MFLOPS, want ~200", got)
	}
}

func TestWorkstationString(t *testing.T) {
	s := SunSparc20().String()
	if !strings.Contains(s, "Sparc") || !strings.Contains(s, "MHz") {
		t.Errorf("unexpected description %q", s)
	}
}

func TestTable1Targets(t *testing.T) {
	ts := Table1Targets()
	if len(ts) != 4 {
		t.Fatalf("Table1Targets returned %d targets", len(ts))
	}
	wantOrder := []string{"SUN Sparc 20", "IBM RS6000/590", "CRI J90", "CRI Y-MP"}
	for i, w := range wantOrder {
		if ts[i].Name() != w {
			t.Errorf("target %d = %s, want %s", i, ts[i].Name(), w)
		}
	}
}

func TestScalarProfiles(t *testing.T) {
	for _, tgt := range Table1Targets() {
		p := tgt.Scalar()
		if p.ClockNS <= 0 || p.IssuePerClock <= 0 {
			t.Errorf("%s: bad scalar profile %+v", tgt.Name(), p)
		}
		if p.HasCache && p.CacheWordsPerClock <= 0 {
			t.Errorf("%s: cache machine without cache bandwidth", tgt.Name())
		}
		if !p.HasCache && p.MemClocksPerWord <= 0 {
			t.Errorf("%s: cacheless machine without memory latency", tgt.Name())
		}
	}
}

func TestWorkstationScalarOps(t *testing.T) {
	w := SunSparc20()
	p := prog.Simple("s", 100, prog.Op{Class: prog.Scalar, Count: 120})
	r := w.Run(p, sx4.RunOpts{})
	if r.Clocks < 100*100 {
		t.Errorf("scalar work undercharged: %v clocks", r.Clocks)
	}
}
