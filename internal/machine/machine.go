// Package machine provides performance models of the comparison
// systems the paper measures against the NCAR suite (Table 1): the
// Cray Research Y-MP, C90 and J90 parallel vector processors, and the
// SUN Sparc 20 and IBM RS6000/590 workstations.
//
// The Cray machines reuse the sx4 vector engine with era-appropriate
// parameters (pipe counts, clocks, memory geometry, math-library
// speed). The workstations use a separate cache-based scalar model:
// vector operations execute as scalar loops whose memory cost depends
// on whether the working set fits in cache — which is exactly why the
// HINT/RADABS ranking inverts between workstations and vector machines.
package machine

import (
	"fmt"
	"hash/fnv"
	"math"

	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// ScalarProfile is the machine-agnostic scalar-path description; the
// alias keeps the historical machine.ScalarProfile spelling working.
type ScalarProfile = target.ScalarProfile

// Target is a modeled machine; the interface now lives in the leaf
// package target, alongside the registry the constructors below
// populate.
type Target = target.Target

// --- Cray vector baselines (sx4 engine with different parameters) ---

// Vector wraps an sx4.Machine with a scalar profile.
type Vector struct {
	*sx4.Machine
	scalar ScalarProfile
}

var _ target.Target = (*Vector)(nil)

// Scalar returns the machine's scalar-path description.
func (v *Vector) Scalar() ScalarProfile { return v.scalar }

// Clone returns a fresh machine with the same configuration, scalar
// profile, and a cold timing memo. (The promoted sx4.Machine Clone
// would drop the Cray scalar profile.)
func (v *Vector) Clone() target.Target {
	return &Vector{Machine: sx4.New(v.Machine.Config()), scalar: v.scalar}
}

// CrayYMP models one processor of a CRI Y-MP: 6 ns clock, one add and
// one multiply pipe (333 MFLOPS peak), 64-element vector registers,
// no data cache.
func CrayYMP() *Vector {
	c := baseCray("CRI Y-MP", 6.0, 8, 1, 64)
	c.IntrinsicScale = 8
	return &Vector{
		Machine: sx4.New(c),
		scalar: ScalarProfile{
			ClockNS: 6.0, IssuePerClock: 1,
			HasCache: false, MemClocksPerWord: 8,
		},
	}
}

// CrayC90 models one processor of a CRI C90: 4.167 ns clock, dual
// vector pipes (~952 MFLOPS peak), 128-element registers.
func CrayC90() *Vector {
	c := baseCray("CRI C90", 4.167, 16, 2, 128)
	c.PortWordsPerClock = 6
	c.NodeWordsPerClock = 96
	c.IntrinsicScale = 4
	return &Vector{
		Machine: sx4.New(c),
		scalar: ScalarProfile{
			ClockNS: 4.167, IssuePerClock: 1,
			HasCache: false, MemClocksPerWord: 8,
		},
	}
}

// CrayJ90 models one processor of a CRI J90: a 10 ns CMOS Cray with
// one pipe pair (200 MFLOPS peak) and a slower memory system.
func CrayJ90() *Vector {
	c := baseCray("CRI J90", 10.0, 8, 1, 64)
	c.PortWordsPerClock = 2
	c.NodeWordsPerClock = 16
	c.MemStartupClocks = 30
	c.IntrinsicScale = 14
	return &Vector{
		Machine: sx4.New(c),
		scalar: ScalarProfile{
			ClockNS: 10.0, IssuePerClock: 1,
			HasCache: false, MemClocksPerWord: 8,
		},
	}
}

func baseCray(name string, clockNS float64, cpus, pipes, regElems int) sx4.Config {
	c := sx4.NewConfig(cpus, 1)
	c.Name = name
	c.ClockNS = clockNS
	c.VectorPipes = pipes
	c.VectorRegElems = regElems
	c.MemoryBanks = 256
	c.BankBusyClocks = 4
	c.PortWordsPerClock = 3
	c.NodeWordsPerClock = 48
	c.VectorStartupClocks = 15
	c.MemStartupClocks = 20
	c.GatherWordsPerClock = float64(pipes) / 2
	c.StridedPenalty = 2
	c.ScalarIssuePerClock = 1
	// The comparison systems were benchmarked compute-only; no I/O
	// subsystem is modeled (gates the disk-dependent table rows).
	c.DiskCapacityGB = 0
	c.DiskBytesPerSec = 0
	return c
}

// --- Workstation (cache-based scalar) model ---

// Workstation models a cache-based superscalar workstation: vector
// operations execute as scalar loops; memory cost depends on whether
// the loop's working set fits in the data cache.
type Workstation struct {
	ModelName string
	ClockNS   float64
	// FlopsPerClock is the sustained floating-point issue rate.
	FlopsPerClock float64
	// CacheKB is the data-cache size.
	CacheKB int
	// CacheWordsPerClock and MemWordsPerClock are sustained bandwidths
	// inside and beyond the cache.
	CacheWordsPerClock float64
	MemWordsPerClock   float64
	// GatherPenalty multiplies the memory cost of indirect access that
	// misses cache.
	GatherPenalty float64
	// IntrinsicClocks is the average scalar libm call cost.
	IntrinsicClocks float64
	// IssuePerClock is the integer/control issue width.
	IssuePerClock float64

	// memo holds memoized trace timings keyed on the model's
	// fingerprint; nil (the zero value) disables memoization, so
	// literal-constructed Workstations keep working.
	memo *target.Memo
}

var _ target.Target = (*Workstation)(nil)

// SunSparc20 models a 75 MHz SuperSPARC SUN Sparc 20.
func SunSparc20() *Workstation {
	return &Workstation{
		ModelName: "SUN Sparc 20", ClockNS: 13.33,
		FlopsPerClock: 0.55, CacheKB: 16,
		CacheWordsPerClock: 1, MemWordsPerClock: 0.12,
		GatherPenalty: 1.5, IntrinsicClocks: 100, IssuePerClock: 1.2,
		memo: target.NewMemo(),
	}
}

// IBMRS6000590 models a 66.5 MHz POWER2 IBM RS6000/590.
func IBMRS6000590() *Workstation {
	return &Workstation{
		ModelName: "IBM RS6000/590", ClockNS: 15.04,
		FlopsPerClock: 2.2, CacheKB: 256,
		CacheWordsPerClock: 2, MemWordsPerClock: 0.4,
		GatherPenalty: 1.5, IntrinsicClocks: 70, IssuePerClock: 2,
		memo: target.NewMemo(),
	}
}

// Name returns the model designation.
func (w *Workstation) Name() string { return w.ModelName }

// Scalar returns the workstation's scalar profile.
func (w *Workstation) Scalar() ScalarProfile {
	return ScalarProfile{
		ClockNS:            w.ClockNS,
		IssuePerClock:      w.IssuePerClock,
		HasCache:           true,
		CacheWordsPerClock: w.CacheWordsPerClock,
		MemClocksPerWord:   1 / w.MemWordsPerClock,
	}
}

// Spec returns the workstation's specification sheet: a uniprocessor
// with no modeled I/O subsystem.
func (w *Workstation) Spec() target.Spec {
	return target.Spec{
		CPUs: 1, Nodes: 1,
		ClockNS:          w.ClockNS,
		PeakMFLOPSPerCPU: w.PeakMFLOPS(),
	}
}

// Fingerprint hashes the model parameters (field by field — the
// unexported memo pointer must not enter the hash), so memoized
// timings can never be served across model variants.
func (w *Workstation) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ws|%s|%v|%v|%d|%v|%v|%v|%v|%v",
		w.ModelName, w.ClockNS, w.FlopsPerClock, w.CacheKB,
		w.CacheWordsPerClock, w.MemWordsPerClock,
		w.GatherPenalty, w.IntrinsicClocks, w.IssuePerClock)
	return h.Sum64()
}

// Clone returns a fresh workstation with the same parameters and a
// cold timing memo.
func (w *Workstation) Clone() target.Target {
	c := *w
	c.memo = target.NewMemo()
	return &c
}

// CacheStats returns the workstation's timing-memo counters.
func (w *Workstation) CacheStats() target.CacheStats {
	if w.memo == nil {
		return target.CacheStats{}
	}
	return w.memo.Stats()
}

// Run executes a trace on the workstation model. opts.Procs is ignored
// (the Table 1 comparisons are single-processor).
func (w *Workstation) Run(p prog.Program, opts sx4.RunOpts) sx4.Result {
	if w.memo == nil {
		return w.simulate(p)
	}
	k := target.MemoKey{Config: w.Fingerprint(), Program: p.Fingerprint(), Opts: opts}
	if r, ok := w.memo.Lookup(k); ok {
		return r
	}
	r := w.simulate(p)
	w.memo.Store(k, r)
	return r
}

// simulate evaluates the model without consulting the memo.
func (w *Workstation) simulate(p prog.Program) sx4.Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	res := sx4.Result{Program: p.Name, Procs: 1}
	for _, ph := range p.Phases {
		var phClocks float64
		for _, l := range ph.Loops {
			if l.Trips == 0 {
				continue
			}
			phClocks += float64(l.Trips) * w.tripClocks(l)
			res.Words += l.Words()
		}
		phClocks += ph.SerialClocks
		pt := sx4.PhaseTime{Name: ph.Name, Clocks: phClocks, Flops: ph.Flops()}
		res.Phases = append(res.Phases, pt)
		res.Clocks += phClocks
		res.Flops += ph.Flops()
	}
	res.Seconds = res.Clocks * w.ClockNS * 1e-9
	return res
}

// tripClocks costs one loop-body trip on the scalar machine.
func (w *Workstation) tripClocks(l prog.Loop) float64 {
	// Working set: bytes one trip touches; if the trip's arrays fit in
	// the data cache they are served at cache speed on repeated passes
	// (the KTRIES best-of-k rule measures the warm case).
	var tripWords int64
	for _, op := range l.Body {
		tripWords += op.Words()
	}
	inCache := float64(tripWords)*8 <= float64(w.CacheKB)*1024

	var clocks float64
	for _, op := range l.Body {
		vl := float64(op.VL)
		switch op.Class {
		case prog.VAdd, prog.VMul, prog.VDiv:
			weight := 1.0
			if op.FlopsPerElem > 1 {
				weight = float64(op.FlopsPerElem)
			}
			cost := weight * vl / w.FlopsPerClock
			if op.Class == prog.VDiv {
				cost *= 8 // scalar divides are long-latency
			}
			clocks += cost
		case prog.VLogical:
			clocks += vl / w.IssuePerClock
		case prog.VLoad, prog.VStore:
			if inCache {
				clocks += vl / w.CacheWordsPerClock
			} else {
				clocks += vl / w.MemWordsPerClock
			}
		case prog.VGather, prog.VScatter:
			if inCache {
				clocks += vl / w.CacheWordsPerClock
			} else {
				clocks += vl * w.GatherPenalty / w.MemWordsPerClock
			}
		case prog.VIntrinsic:
			clocks += vl * w.IntrinsicClocks
		case prog.Scalar:
			clocks += float64(op.Count) / w.IssuePerClock
		}
	}
	// Loop control overhead.
	return clocks + 4/w.IssuePerClock
}

// PeakMFLOPS returns the workstation's nominal peak rate.
func (w *Workstation) PeakMFLOPS() float64 {
	return w.FlopsPerClock * 1e3 / w.ClockNS
}

// String describes the workstation.
func (w *Workstation) String() string {
	return fmt.Sprintf("%s (%.0f MHz, %.0f MFLOPS peak)",
		w.ModelName, 1e3/w.ClockNS, math.Round(w.PeakMFLOPS()))
}

// Table1Targets returns the four comparison systems in the paper's
// Table 1 column order.
func Table1Targets() []Target {
	return []Target{SunSparc20(), IBMRS6000590(), CrayJ90(), CrayYMP()}
}
