// Package machine provides performance models of the comparison
// systems the paper measures against the NCAR suite (Table 1): the
// Cray Research Y-MP, C90 and J90 parallel vector processors, and the
// SUN Sparc 20 and IBM RS6000/590 workstations.
//
// The Cray machines reuse the sx4 vector engine with era-appropriate
// parameters (pipe counts, clocks, memory geometry, math-library
// speed). The workstations use a separate cache-based scalar model:
// vector operations execute as scalar loops whose memory cost depends
// on whether the working set fits in cache — which is exactly why the
// HINT/RADABS ranking inverts between workstations and vector machines.
package machine

import (
	"fmt"
	"hash/fnv"
	"math"

	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// ScalarProfile is the machine-agnostic scalar-path description; the
// alias keeps the historical machine.ScalarProfile spelling working.
type ScalarProfile = target.ScalarProfile

// Target is a modeled machine; the interface now lives in the leaf
// package target, alongside the registry the constructors below
// populate.
type Target = target.Target

// --- Cray vector baselines (sx4 engine with different parameters) ---

// Vector wraps an sx4.Machine with a scalar profile.
type Vector struct {
	*sx4.Machine
	scalar ScalarProfile
}

var _ target.Target = (*Vector)(nil)

// Scalar returns the machine's scalar-path description.
func (v *Vector) Scalar() ScalarProfile { return v.scalar }

// Clone returns a fresh machine with the same configuration, scalar
// profile, and a cold timing memo. (The promoted sx4.Machine Clone
// would drop the Cray scalar profile.)
func (v *Vector) Clone() target.Target {
	return &Vector{Machine: sx4.New(v.Machine.Config()), scalar: v.scalar}
}

// CrayYMP models one processor of a CRI Y-MP: 6 ns clock, one add and
// one multiply pipe (333 MFLOPS peak), 64-element vector registers,
// no data cache.
func CrayYMP() *Vector {
	c := baseCray("CRI Y-MP", 6.0, 8, 1, 64)
	c.IntrinsicScale = 8
	return &Vector{
		Machine: sx4.New(c),
		scalar: ScalarProfile{
			ClockNS: 6.0, IssuePerClock: 1,
			HasCache: false, MemClocksPerWord: 8,
		},
	}
}

// CrayC90 models one processor of a CRI C90: 4.167 ns clock, dual
// vector pipes (~952 MFLOPS peak), 128-element registers.
func CrayC90() *Vector {
	c := baseCray("CRI C90", 4.167, 16, 2, 128)
	c.PortWordsPerClock = 6
	c.NodeWordsPerClock = 96
	c.IntrinsicScale = 4
	return &Vector{
		Machine: sx4.New(c),
		scalar: ScalarProfile{
			ClockNS: 4.167, IssuePerClock: 1,
			HasCache: false, MemClocksPerWord: 8,
		},
	}
}

// CrayJ90 models one processor of a CRI J90: a 10 ns CMOS Cray with
// one pipe pair (200 MFLOPS peak) and a slower memory system.
func CrayJ90() *Vector {
	c := baseCray("CRI J90", 10.0, 8, 1, 64)
	c.PortWordsPerClock = 2
	c.NodeWordsPerClock = 16
	c.MemStartupClocks = 30
	c.IntrinsicScale = 14
	return &Vector{
		Machine: sx4.New(c),
		scalar: ScalarProfile{
			ClockNS: 10.0, IssuePerClock: 1,
			HasCache: false, MemClocksPerWord: 8,
		},
	}
}

func baseCray(name string, clockNS float64, cpus, pipes, regElems int) sx4.Config {
	c := sx4.NewConfig(cpus, 1)
	c.Name = name
	c.ClockNS = clockNS
	c.VectorPipes = pipes
	c.VectorRegElems = regElems
	c.MemoryBanks = 256
	c.BankBusyClocks = 4
	c.PortWordsPerClock = 3
	c.NodeWordsPerClock = 48
	c.VectorStartupClocks = 15
	c.MemStartupClocks = 20
	c.GatherWordsPerClock = float64(pipes) / 2
	c.StridedPenalty = 2
	c.ScalarIssuePerClock = 1
	// The comparison systems were benchmarked compute-only; no I/O
	// subsystem is modeled (gates the disk-dependent table rows).
	c.DiskCapacityGB = 0
	c.DiskBytesPerSec = 0
	return c
}

// --- Workstation (cache-based scalar) model ---

// Workstation models a cache-based superscalar workstation: vector
// operations execute as scalar loops; memory cost depends on whether
// the loop's working set fits in the data cache.
type Workstation struct {
	ModelName string
	ClockNS   float64
	// FlopsPerClock is the sustained floating-point issue rate.
	FlopsPerClock float64
	// CacheKB is the data-cache size.
	CacheKB int
	// CacheWordsPerClock and MemWordsPerClock are sustained bandwidths
	// inside and beyond the cache.
	CacheWordsPerClock float64
	MemWordsPerClock   float64
	// GatherPenalty multiplies the memory cost of indirect access that
	// misses cache.
	GatherPenalty float64
	// IntrinsicClocks is the average scalar libm call cost.
	IntrinsicClocks float64
	// IssuePerClock is the integer/control issue width.
	IssuePerClock float64

	// memo holds memoized trace timings keyed on the model's
	// fingerprint; nil (the zero value) disables memoization, so
	// literal-constructed Workstations keep working.
	memo *target.Memo
	// progs caches compiled per-phase timings keyed by program
	// fingerprint — the workstation model ignores RunOpts entirely, so
	// a compiled trace answers every memo-cold Run with a flat copy.
	// nil (the zero value) interprets the trace each time.
	progs *target.FPCache[*wsTiming]
	// fp is the precomputed configuration fingerprint; zero (the
	// literal-construction default) recomputes on every call, so
	// hand-built workstations stay correct under field mutation. The
	// registered constructors and Degraded stamp it — like the rest of
	// the model, stamped machines follow "configure first, then share".
	fp uint64
}

var _ target.Target = (*Workstation)(nil)

// SunSparc20 models a 75 MHz SuperSPARC SUN Sparc 20.
func SunSparc20() *Workstation {
	w := &Workstation{
		ModelName: "SUN Sparc 20", ClockNS: 13.33,
		FlopsPerClock: 0.55, CacheKB: 16,
		CacheWordsPerClock: 1, MemWordsPerClock: 0.12,
		GatherPenalty: 1.5, IntrinsicClocks: 100, IssuePerClock: 1.2,
		memo:  target.NewMemo(),
		progs: &target.FPCache[*wsTiming]{},
	}
	w.fp = w.computeFingerprint()
	return w
}

// IBMRS6000590 models a 66.5 MHz POWER2 IBM RS6000/590.
func IBMRS6000590() *Workstation {
	w := &Workstation{
		ModelName: "IBM RS6000/590", ClockNS: 15.04,
		FlopsPerClock: 2.2, CacheKB: 256,
		CacheWordsPerClock: 2, MemWordsPerClock: 0.4,
		GatherPenalty: 1.5, IntrinsicClocks: 70, IssuePerClock: 2,
		memo:  target.NewMemo(),
		progs: &target.FPCache[*wsTiming]{},
	}
	w.fp = w.computeFingerprint()
	return w
}

// Name returns the model designation.
func (w *Workstation) Name() string { return w.ModelName }

// Scalar returns the workstation's scalar profile.
func (w *Workstation) Scalar() ScalarProfile {
	return ScalarProfile{
		ClockNS:            w.ClockNS,
		IssuePerClock:      w.IssuePerClock,
		HasCache:           true,
		CacheWordsPerClock: w.CacheWordsPerClock,
		MemClocksPerWord:   1 / w.MemWordsPerClock,
	}
}

// Spec returns the workstation's specification sheet: a uniprocessor
// with no modeled I/O subsystem.
func (w *Workstation) Spec() target.Spec {
	return target.Spec{
		CPUs: 1, Nodes: 1,
		ClockNS:          w.ClockNS,
		PeakMFLOPSPerCPU: w.PeakMFLOPS(),
	}
}

// Fingerprint returns the configuration fingerprint: the stamped one
// when the workstation came from a constructor, recomputed per call
// otherwise. A memo-cold Run pays the hash on every lookup, so
// stamping matters in sweep loops.
func (w *Workstation) Fingerprint() uint64 {
	if w.fp != 0 {
		return w.fp
	}
	return w.computeFingerprint()
}

// computeFingerprint hashes the model parameters (field by field — the
// unexported memo pointer must not enter the hash), so memoized
// timings can never be served across model variants.
func (w *Workstation) computeFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ws|%s|%v|%v|%d|%v|%v|%v|%v|%v",
		w.ModelName, w.ClockNS, w.FlopsPerClock, w.CacheKB,
		w.CacheWordsPerClock, w.MemWordsPerClock,
		w.GatherPenalty, w.IntrinsicClocks, w.IssuePerClock)
	return h.Sum64()
}

// Clone returns a fresh workstation with the same parameters, a cold
// timing memo and a cold compiled-trace cache.
func (w *Workstation) Clone() target.Target {
	c := *w
	c.memo = target.NewMemo()
	if w.progs != nil {
		c.progs = &target.FPCache[*wsTiming]{}
	}
	return &c
}

// CacheStats returns the workstation's timing-memo counters.
func (w *Workstation) CacheStats() target.CacheStats {
	if w.memo == nil {
		return target.CacheStats{}
	}
	return w.memo.Stats()
}

// Run executes a trace on the workstation model. opts.Procs is ignored
// (the Table 1 comparisons are single-processor). Memo misses execute
// the compiled trace when the compiled path is enabled; results are
// bit-identical to the interpreted engine either way.
func (w *Workstation) Run(p prog.Program, opts sx4.RunOpts) sx4.Result {
	if w.memo == nil && w.progs == nil {
		return w.simulate(p)
	}
	fp := p.Fingerprint()
	var k target.MemoKey
	if w.memo != nil {
		k = target.MemoKey{Config: w.Fingerprint(), Program: fp, Opts: opts}
		if r, ok := w.memo.Lookup(k); ok {
			return r
		}
	}
	var r sx4.Result
	if w.progs != nil {
		ct := w.progs.LoadOrStore(fp, func() *wsTiming {
			return w.compile(prog.MustCompile(p))
		})
		r = ct.result()
	} else {
		r = w.simulate(p)
	}
	if w.memo != nil {
		w.memo.Store(k, r)
	}
	return r
}

// RunCompiled is Run for a pre-flattened trace: c carries its
// fingerprint, so the memo and compiled-timing caches are keyed
// without re-hashing the program structure on every call. Results are
// bit-identical to Run on the source program.
func (w *Workstation) RunCompiled(c *prog.Compiled, opts sx4.RunOpts) sx4.Result {
	var k target.MemoKey
	if w.memo != nil {
		k = target.MemoKey{Config: w.Fingerprint(), Program: c.Fingerprint, Opts: opts}
		if r, ok := w.memo.Lookup(k); ok {
			return r
		}
	}
	var r sx4.Result
	if w.progs != nil {
		r = w.progs.LoadOrStore(c.Fingerprint, func() *wsTiming { return w.compile(c) }).result()
	} else {
		r = w.compile(c).result()
	}
	if w.memo != nil {
		w.memo.Store(k, r)
	}
	return r
}

// SetCompiled enables or disables the compiled-trace execution path
// (enabled for the registered constructors; the zero value starts
// disabled). Must not race with concurrent Run calls.
func (w *Workstation) SetCompiled(enabled bool) {
	if enabled {
		if w.progs == nil {
			w.progs = &target.FPCache[*wsTiming]{}
		}
		return
	}
	w.progs = nil
}

// wsTiming is a program compiled against the workstation model: the
// model ignores RunOpts, so the whole result — per-phase clocks
// included — is a program-level invariant computed once per
// fingerprint.
type wsTiming struct {
	name    string
	clocks  float64
	seconds float64
	flops   int64
	words   int64
	phases  []sx4.PhaseTime
}

// result materializes a Result from the compiled timing. Phases are
// copied so callers can alias the returned slice freely.
func (t *wsTiming) result() sx4.Result {
	r := sx4.Result{
		Program: t.name, Procs: 1,
		Clocks: t.clocks, Seconds: t.seconds,
		Flops: t.flops, Words: t.words,
	}
	if len(t.phases) > 0 {
		r.Phases = append([]sx4.PhaseTime(nil), t.phases...)
	}
	return r
}

// compile evaluates the flattened trace once, mirroring simulate
// operation for operation so compiled results are bit-identical.
func (w *Workstation) compile(c *prog.Compiled) *wsTiming {
	t := &wsTiming{name: c.Name}
	if len(c.Phases) > 0 {
		t.phases = make([]sx4.PhaseTime, 0, len(c.Phases))
	}
	for i := range c.Phases {
		ph := &c.Phases[i]
		var phClocks float64
		for _, l := range c.PhaseLoops(*ph) {
			phClocks += float64(l.Trips) * w.tripClocks(c.Body(l))
			t.words += l.Words
		}
		phClocks += ph.SerialClocks
		t.phases = append(t.phases, sx4.PhaseTime{Name: ph.Name, Clocks: phClocks, Flops: ph.Flops})
		t.clocks += phClocks
		t.flops += ph.Flops
	}
	t.seconds = t.clocks * w.ClockNS * 1e-9
	return t
}

// simulate evaluates the model by interpreting the trace, consulting
// neither the memo nor the compiled-trace cache: the differential
// oracle the compiled path is checked against.
func (w *Workstation) simulate(p prog.Program) sx4.Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	res := sx4.Result{Program: p.Name, Procs: 1}
	if len(p.Phases) > 0 {
		res.Phases = make([]sx4.PhaseTime, 0, len(p.Phases))
	}
	for _, ph := range p.Phases {
		var phClocks float64
		for _, l := range ph.Loops {
			if l.Trips == 0 {
				continue
			}
			phClocks += float64(l.Trips) * w.tripClocks(l.Body)
			res.Words += l.Words()
		}
		phClocks += ph.SerialClocks
		pt := sx4.PhaseTime{Name: ph.Name, Clocks: phClocks, Flops: ph.Flops()}
		res.Phases = append(res.Phases, pt)
		res.Clocks += phClocks
		res.Flops += ph.Flops()
	}
	res.Seconds = res.Clocks * w.ClockNS * 1e-9
	return res
}

// tripClocks costs one loop-body trip on the scalar machine.
func (w *Workstation) tripClocks(body []prog.Op) float64 {
	// Working set: bytes one trip touches; if the trip's arrays fit in
	// the data cache they are served at cache speed on repeated passes
	// (the KTRIES best-of-k rule measures the warm case).
	var tripWords int64
	for _, op := range body {
		tripWords += op.Words()
	}
	inCache := float64(tripWords)*8 <= float64(w.CacheKB)*1024

	var clocks float64
	for _, op := range body {
		vl := float64(op.VL)
		switch op.Class {
		case prog.VAdd, prog.VMul, prog.VDiv:
			weight := 1.0
			if op.FlopsPerElem > 1 {
				weight = float64(op.FlopsPerElem)
			}
			cost := weight * vl / w.FlopsPerClock
			if op.Class == prog.VDiv {
				cost *= 8 // scalar divides are long-latency
			}
			clocks += cost
		case prog.VLogical:
			clocks += vl / w.IssuePerClock
		case prog.VLoad, prog.VStore:
			if inCache {
				clocks += vl / w.CacheWordsPerClock
			} else {
				clocks += vl / w.MemWordsPerClock
			}
		case prog.VGather, prog.VScatter:
			if inCache {
				clocks += vl / w.CacheWordsPerClock
			} else {
				clocks += vl * w.GatherPenalty / w.MemWordsPerClock
			}
		case prog.VIntrinsic:
			clocks += vl * w.IntrinsicClocks
		case prog.Scalar:
			clocks += float64(op.Count) / w.IssuePerClock
		}
	}
	// Loop control overhead.
	return clocks + 4/w.IssuePerClock
}

// PeakMFLOPS returns the workstation's nominal peak rate.
func (w *Workstation) PeakMFLOPS() float64 {
	return w.FlopsPerClock * 1e3 / w.ClockNS
}

// String describes the workstation.
func (w *Workstation) String() string {
	return fmt.Sprintf("%s (%.0f MHz, %.0f MFLOPS peak)",
		w.ModelName, 1e3/w.ClockNS, math.Round(w.PeakMFLOPS()))
}

// Table1Targets returns the four comparison systems in the paper's
// Table 1 column order.
func Table1Targets() []Target {
	return []Target{SunSparc20(), IBMRS6000590(), CrayJ90(), CrayYMP()}
}
