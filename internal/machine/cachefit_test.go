package machine

import (
	"testing"

	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

// The workstation model's cache-fit rule is the mechanism behind the
// paper's HINT-vs-RADABS inversion: a trip whose working set fits the
// data cache streams at CacheWordsPerClock, one that exceeds it at
// MemWordsPerClock. These tests pin the rule exactly at the edge so the
// inversion point is a regression-tested fact, not an accident of the
// calibration constants.

// ws64 is a test workstation with a 64 KB (8192-word) data cache and a
// 10:1 cache-to-memory bandwidth ratio, so a cache miss is unmissable
// in the timing.
func ws64() *Workstation {
	return &Workstation{
		ModelName: "test-64KB", ClockNS: 10,
		FlopsPerClock: 1, CacheKB: 64,
		CacheWordsPerClock: 1, MemWordsPerClock: 0.1,
		GatherPenalty: 1.5, IntrinsicClocks: 50, IssuePerClock: 1,
	}
}

// copyTrip returns a one-trip copy loop moving words words through the
// memory system (split between a load and a store).
func copyTrip(words int) prog.Program {
	half := words / 2
	return prog.Simple("cachefit", 1,
		prog.Op{Class: prog.VLoad, VL: half, Stride: 1},
		prog.Op{Class: prog.VStore, VL: words - half, Stride: 1},
	)
}

func runClocks(w *Workstation, p prog.Program) float64 {
	return w.Run(p, sx4.RunOpts{Procs: 1}).Clocks
}

func TestCacheFitAtEdge(t *testing.T) {
	w := ws64()
	const edge = 64 * 1024 / 8 // 8192 words exactly fill the cache

	fits := runClocks(w, copyTrip(edge))
	// A working set exactly filling the cache is served at cache speed:
	// words/CacheWordsPerClock + loop overhead.
	wantFits := float64(edge)/w.CacheWordsPerClock + 4/w.IssuePerClock
	if fits != wantFits {
		t.Errorf("at-edge trip: %v clocks, want cache-speed %v", fits, wantFits)
	}

	exceeds := runClocks(w, copyTrip(edge + 1))
	wantExceeds := float64(edge+1)/w.MemWordsPerClock + 4/w.IssuePerClock
	if exceeds != wantExceeds {
		t.Errorf("one-word-over trip: %v clocks, want memory-speed %v", exceeds, wantExceeds)
	}

	// The edge is a cliff: one extra word decuples the per-word cost.
	if exceeds < 9*fits {
		t.Errorf("cache edge not a cliff: %v -> %v clocks for one extra word", fits, exceeds)
	}
}

// TestCacheFitStraddle: the fit test is per-trip over the whole loop
// body — two half-cache streams in one body straddle the edge together
// and both fall out of cache.
func TestCacheFitStraddle(t *testing.T) {
	w := ws64()
	const half = 64 * 1024 / 8 / 2 // 4096 words: half the cache

	alone := runClocks(w, prog.Simple("half", 1,
		prog.Op{Class: prog.VLoad, VL: half, Stride: 1}))
	wantAlone := float64(half)/w.CacheWordsPerClock + 4/w.IssuePerClock
	if alone != wantAlone {
		t.Fatalf("half-cache stream: %v clocks, want cache-speed %v", alone, wantAlone)
	}

	// Three half-cache streams in one trip: 1.5x the cache, all at
	// memory speed.
	straddle := runClocks(w, prog.Simple("straddle", 1,
		prog.Op{Class: prog.VLoad, VL: half, Stride: 1},
		prog.Op{Class: prog.VLoad, VL: half, Stride: 1},
		prog.Op{Class: prog.VStore, VL: half, Stride: 1},
	))
	wantStraddle := 3*float64(half)/w.MemWordsPerClock + 4/w.IssuePerClock
	if straddle != wantStraddle {
		t.Errorf("straddling trip: %v clocks, want memory-speed %v", straddle, wantStraddle)
	}
}

// TestCacheFitRealMachines pins each real workstation's own edge:
// 16 KB (2048 words) on the Sparc 20, 256 KB (32768 words) on the
// RS6000/590.
func TestCacheFitRealMachines(t *testing.T) {
	for _, tc := range []struct {
		w     *Workstation
		words int
	}{
		{SunSparc20(), 16 * 1024 / 8},
		{IBMRS6000590(), 256 * 1024 / 8},
	} {
		in := runClocks(tc.w, copyTrip(tc.words))
		out := runClocks(tc.w, copyTrip(tc.words+1))
		inPerWord := in / float64(tc.words)
		outPerWord := out / float64(tc.words+1)
		if outPerWord <= 2*inPerWord {
			t.Errorf("%s: no cache cliff at %d words: %.3f -> %.3f clocks/word",
				tc.w.Name(), tc.words, inPerWord, outPerWord)
		}
	}
}

// TestCacheFitDrivesInversion ties the edge to the paper's argument:
// on the cache-resident *scalar* path the RS6000 moves a word an order
// of magnitude faster than the cache-less Y-MP (the HINT story), while
// on a cache-busting vector working set the Y-MP wins by a wide margin
// (the RADABS story).
func TestCacheFitDrivesInversion(t *testing.T) {
	rs6k := IBMRS6000590()
	ymp := CrayYMP()

	// Scalar path: nanoseconds to move one cache-resident word.
	nsPerWord := func(p ScalarProfile) float64 {
		if p.HasCache {
			return p.ClockNS / p.CacheWordsPerClock
		}
		return p.ClockNS * p.MemClocksPerWord
	}
	rsScalar, ympScalar := nsPerWord(rs6k.Scalar()), nsPerWord(ymp.Scalar())
	if rsScalar >= ympScalar/2 {
		t.Errorf("scalar path: RS6000 %.1f ns/word not well under Y-MP %.1f ns/word",
			rsScalar, ympScalar)
	}

	// Vector path, cache-busting: 128000-word streams, 1.5x the RS6000's
	// 256 KB cache per trip.
	big := prog.Simple("big", 4,
		prog.Op{Class: prog.VLoad, VL: 128000, Stride: 1},
		prog.Op{Class: prog.VLoad, VL: 128000, Stride: 1},
		prog.Op{Class: prog.VMul, VL: 128000},
		prog.Op{Class: prog.VAdd, VL: 128000},
		prog.Op{Class: prog.VStore, VL: 128000, Stride: 1},
	)
	opts := sx4.RunOpts{Procs: 1}
	if rsB, ympB := rs6k.Run(big, opts).Seconds, ymp.Run(big, opts).Seconds; ympB >= rsB/5 {
		t.Errorf("cache-busting: Y-MP %.3g s not >5x faster than RS6000 %.3g s", ympB, rsB)
	}
}
