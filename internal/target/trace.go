package target

import (
	"sync"

	"sx4bench/internal/sx4/prog"
)

// CompiledTrace pairs a program with its pre-flattened form, so a
// caller holding one can take a target's CompiledRunner fast path —
// skipping trace reconstruction and per-op fingerprint hashing — and
// still run on targets that only speak the interpreted entry point.
// The two paths are bit-identical (pinned by the differential
// quickcheck suite), so which one executes is invisible in the output.
type CompiledTrace struct {
	Program  prog.Program
	Compiled *prog.Compiled
}

// CompileTrace flattens p once. It panics on an invalid program,
// mirroring Run.
func CompileTrace(p prog.Program) CompiledTrace {
	return CompiledTrace{Program: p, Compiled: prog.MustCompile(p)}
}

// Run executes the trace on t through the compiled fast path when the
// target offers one.
func (ct CompiledTrace) Run(t Target, opts RunOpts) Result {
	if cr, ok := t.(CompiledRunner); ok && ct.Compiled != nil {
		return cr.RunCompiled(ct.Compiled, opts)
	}
	return t.Run(ct.Program, opts)
}

// TraceCache memoizes compiled traces by the parameters that generate
// them. The experiment drivers rebuild the same trace shapes run after
// run — every sweep point, KTRIES draw and cross-machine column used
// to pay the full O(ops) construction-plus-hash cost — so helpers
// cache the compiled form keyed by the generating parameters instead.
//
// The zero value is ready to use. build must be a pure function of k
// (the repo-wide trace contract); when two goroutines race on a cold
// key, the first store wins and both observe it.
type TraceCache[K comparable] struct{ m sync.Map }

// Get returns the cached compiled trace for k, building and flattening
// it on first use.
func (c *TraceCache[K]) Get(k K, build func() prog.Program) CompiledTrace {
	if v, ok := c.m.Load(k); ok {
		return v.(CompiledTrace)
	}
	ct := CompileTrace(build())
	if prev, loaded := c.m.LoadOrStore(k, ct); loaded {
		return prev.(CompiledTrace)
	}
	return ct
}
