package target

import (
	"math"
	"reflect"
	"testing"

	"sx4bench/internal/sx4/prog"
)

// Conformance pins the contract every Target implementation must keep:
//
//   - determinism: two identical Run calls produce identical Results;
//   - clone transparency: a Clone carries the same name, fingerprint,
//     scalar profile and spec, and its runs are result-identical;
//   - sane accounting: times are finite and non-negative, flop/word
//     totals are non-negative and match the trace's own counts;
//   - a sane spec: positive CPU count, clock and peak rate.
//
// The machine packages run it over every registered backend, so a model
// change that breaks the contract — a data race through a shared memo, a
// Clone that drops part of the configuration, a phase model that emits
// NaN — fails loudly in the conformance test rather than as drifting
// goldens three layers up.
func Conformance(t testing.TB, tgt Target) {
	t.Helper()
	if tgt == nil {
		t.Fatal("conformance: nil target")
	}
	if tgt.Name() == "" {
		t.Error("conformance: empty Name()")
	}

	spec := tgt.Spec()
	if spec.CPUs <= 0 {
		t.Errorf("%s: Spec().CPUs = %d, want > 0", tgt.Name(), spec.CPUs)
	}
	if spec.Nodes <= 0 {
		t.Errorf("%s: Spec().Nodes = %d, want > 0", tgt.Name(), spec.Nodes)
	}
	if spec.ClockNS <= 0 || math.IsInf(spec.ClockNS, 0) || math.IsNaN(spec.ClockNS) {
		t.Errorf("%s: Spec().ClockNS = %v, want finite > 0", tgt.Name(), spec.ClockNS)
	}
	if spec.PeakMFLOPSPerCPU <= 0 {
		t.Errorf("%s: Spec().PeakMFLOPSPerCPU = %v, want > 0", tgt.Name(), spec.PeakMFLOPSPerCPU)
	}
	if spec.DiskBytesPerSec < 0 {
		t.Errorf("%s: Spec().DiskBytesPerSec = %v, want >= 0", tgt.Name(), spec.DiskBytesPerSec)
	}

	sp := tgt.Scalar()
	if sp.ClockNS <= 0 || sp.IssuePerClock <= 0 {
		t.Errorf("%s: Scalar() = %+v, want positive clock and issue width", tgt.Name(), sp)
	}

	if tgt.Fingerprint() != tgt.Fingerprint() {
		t.Errorf("%s: Fingerprint() not stable across calls", tgt.Name())
	}

	cl := tgt.Clone()
	if cl == nil {
		t.Fatalf("%s: Clone() returned nil", tgt.Name())
	}
	if cl.Name() != tgt.Name() {
		t.Errorf("%s: Clone().Name() = %q", tgt.Name(), cl.Name())
	}
	if cl.Fingerprint() != tgt.Fingerprint() {
		t.Errorf("%s: Clone().Fingerprint() = %#x, want %#x",
			tgt.Name(), cl.Fingerprint(), tgt.Fingerprint())
	}
	if cl.Scalar() != sp {
		t.Errorf("%s: Clone().Scalar() = %+v, want %+v", tgt.Name(), cl.Scalar(), sp)
	}
	if cl.Spec() != spec {
		t.Errorf("%s: Clone().Spec() = %+v, want %+v", tgt.Name(), cl.Spec(), spec)
	}

	for _, p := range probePrograms() {
		for _, opts := range probeOpts(spec.CPUs) {
			r1 := tgt.Run(p, opts)
			r2 := tgt.Run(p, opts)
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("%s: %s %+v: Run not deterministic:\n  %+v\n  %+v",
					tgt.Name(), p.Name, opts, r1, r2)
			}
			rc := cl.Run(p.Clone(), opts)
			if !reflect.DeepEqual(r1, rc) {
				t.Errorf("%s: %s %+v: Clone run differs:\n  orig  %+v\n  clone %+v",
					tgt.Name(), p.Name, opts, r1, rc)
			}
			checkResult(t, tgt.Name(), p, r1)
		}
	}
}

func checkResult(t testing.TB, name string, p prog.Program, r Result) {
	t.Helper()
	if math.IsNaN(r.Clocks) || math.IsInf(r.Clocks, 0) || r.Clocks < 0 {
		t.Errorf("%s: %s: Clocks = %v, want finite >= 0", name, p.Name, r.Clocks)
	}
	if math.IsNaN(r.Seconds) || math.IsInf(r.Seconds, 0) || r.Seconds < 0 {
		t.Errorf("%s: %s: Seconds = %v, want finite >= 0", name, p.Name, r.Seconds)
	}
	if r.Flops < 0 || r.Words < 0 {
		t.Errorf("%s: %s: negative totals: flops %d words %d", name, p.Name, r.Flops, r.Words)
	}
	if r.Flops != p.Flops() {
		t.Errorf("%s: %s: Flops = %d, want trace count %d", name, p.Name, r.Flops, p.Flops())
	}
	if r.Words != p.Words() {
		t.Errorf("%s: %s: Words = %d, want trace count %d", name, p.Name, r.Words, p.Words())
	}
	var phClocks float64
	for _, ph := range r.Phases {
		if math.IsNaN(ph.Clocks) || math.IsInf(ph.Clocks, 0) || ph.Clocks < 0 {
			t.Errorf("%s: %s: phase %q Clocks = %v", name, p.Name, ph.Name, ph.Clocks)
		}
		if ph.Flops < 0 || ph.Words < 0 {
			t.Errorf("%s: %s: phase %q negative totals", name, p.Name, ph.Name)
		}
		phClocks += ph.Clocks
	}
	if len(r.Phases) > 0 {
		if d := math.Abs(phClocks - r.Clocks); d > 1e-6*(1+r.Clocks) {
			t.Errorf("%s: %s: phase clocks sum %v != total %v", name, p.Name, phClocks, r.Clocks)
		}
	}
}

// probePrograms exercises every op class plus the structural edge cases:
// zero-trip loops, serial phases, barriers and fixed serial clocks.
func probePrograms() []prog.Program {
	return []prog.Program{
		prog.Simple("probe-axpy", 100,
			prog.Op{Class: prog.VLoad, VL: 256, Stride: 1},
			prog.Op{Class: prog.VLoad, VL: 256, Stride: 1},
			prog.Op{Class: prog.VMul, VL: 256},
			prog.Op{Class: prog.VAdd, VL: 256},
			prog.Op{Class: prog.VStore, VL: 256, Stride: 1},
		),
		prog.Simple("probe-strided", 40,
			prog.Op{Class: prog.VLoad, VL: 128, Stride: 8},
			prog.Op{Class: prog.VDiv, VL: 128},
			prog.Op{Class: prog.VStore, VL: 128, Stride: 8},
		),
		prog.Simple("probe-gather", 25,
			prog.Op{Class: prog.VGather, VL: 200, Span: 4096},
			prog.Op{Class: prog.VIntrinsic, VL: 200, Intr: prog.Exp},
			prog.Op{Class: prog.VScatter, VL: 200, Span: 4096},
		),
		prog.Simple("probe-shortvec", 1000,
			prog.Op{Class: prog.VLoad, VL: 7, Stride: 1},
			prog.Op{Class: prog.VAdd, VL: 7},
			prog.Op{Class: prog.VLogical, VL: 7},
			prog.Op{Class: prog.VStore, VL: 7, Stride: 1},
		),
		{
			Name: "probe-mixed",
			Phases: []prog.Phase{
				{
					Name:     "serial-setup",
					Parallel: false,
					Loops: []prog.Loop{{Trips: 10, Body: []prog.Op{
						{Class: prog.Scalar, Count: 50},
					}}},
					SerialClocks: 1234,
				},
				{
					Name:     "zero-trip",
					Parallel: true,
					Loops:    []prog.Loop{{Trips: 0, Body: []prog.Op{{Class: prog.VAdd, VL: 64}}}},
				},
				{
					Name:     "compute",
					Parallel: true,
					Loops: []prog.Loop{{Trips: 64, Body: []prog.Op{
						{Class: prog.VLoad, VL: 256, Stride: 1},
						{Class: prog.VMul, VL: 256, FlopsPerElem: 2},
						{Class: prog.VStore, VL: 256, Stride: 2},
					}}},
					Barriers: 1,
				},
			},
		},
	}
}

func probeOpts(cpus int) []RunOpts {
	opts := []RunOpts{{}, {Procs: 1}}
	if cpus > 1 {
		opts = append(opts,
			RunOpts{Procs: cpus},
			RunOpts{Procs: 1, ActiveCPUs: cpus},
		)
	}
	return opts
}
