package target

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Every backend's model is a pure function: for a fixed configuration,
// a given (program, RunOpts) pair always simulates to the same Result.
// The experiment runners exploit no such thing on their own — the
// KTRIES best-of-k rule re-times every trace k times, and the tables
// and figures re-time the same COPY/IA/XPOSE/FFT traces at overlapping
// (N, M) points. The Memo memoizes evaluations so each distinct trace
// is simulated once per machine; the jitter the KTRIES rule smooths is
// applied by core.Noise *outside* the simulation, so caching does not
// change any reported number. The key carries the target's config
// fingerprint, so warm-cache results stay byte-identical across
// backends and reconfigurations.

// MemoKey identifies one memoizable evaluation.
type MemoKey struct {
	// Config is the target's configuration fingerprint
	// (Target.Fingerprint), Program the trace fingerprint
	// (prog.Program.Fingerprint).
	Config  uint64
	Program uint64
	Opts    RunOpts
}

// CacheStats reports timing-memo effectiveness counters.
type CacheStats struct {
	Hits, Misses uint64
	// Entries is the number of memoized results currently held. Every
	// held entry is keyed on the machine's current config fingerprint:
	// reconfiguration sweeps out entries keyed on a stale one.
	Entries int
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries)
}

// Memo is a concurrency-safe memo of simulated results, shared by the
// SX-4 engine and the comparison-machine models.
type Memo struct {
	mu     sync.RWMutex
	m      map[MemoKey]Result
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{m: make(map[MemoKey]Result)}
}

// Lookup returns the memoized result for k, counting a hit or miss.
// The returned Result is a deep copy; callers may alias it freely.
func (c *Memo) Lookup(k MemoKey) (Result, bool) {
	c.mu.RLock()
	r, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return r.Clone(), true
	}
	c.misses.Add(1)
	return Result{}, false
}

// Store memoizes a result under k (deep-copied on the way in).
func (c *Memo) Store(k MemoKey, r Result) {
	c.mu.Lock()
	c.m[k] = r.Clone()
	c.mu.Unlock()
}

// Stats returns the memo's counters.
func (c *Memo) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// DropStale deletes every memoized entry whose key carries a config
// fingerprint other than current. Such entries can never be looked up
// again (the current fingerprint is part of every future key), so after
// a reconfiguration they are pure dead weight — and, worse, a coherence
// hazard should the fingerprint field ever go stale alongside them.
func (c *Memo) DropStale(current uint64) {
	c.mu.Lock()
	for k := range c.m {
		if k.Config != current {
			delete(c.m, k)
		}
	}
	c.mu.Unlock()
}
