package target

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Every backend's model is a pure function: for a fixed configuration,
// a given (program, RunOpts) pair always simulates to the same Result.
// The experiment runners exploit no such thing on their own — the
// KTRIES best-of-k rule re-times every trace k times, and the tables
// and figures re-time the same COPY/IA/XPOSE/FFT traces at overlapping
// (N, M) points. The Memo memoizes evaluations so each distinct trace
// is simulated once per machine; the jitter the KTRIES rule smooths is
// applied by core.Noise *outside* the simulation, so caching does not
// change any reported number. The key carries the target's config
// fingerprint, so warm-cache results stay byte-identical across
// backends and reconfigurations.
//
// The memo is sharded: keys hash onto a power-of-two array of
// independently locked maps, so memo-cold sweeps running under the
// parallel experiment engine contend per shard, not on one global
// mutex. Invalidation is generation-stamped: DropStale bumps a
// generation counter in O(1) instead of sweeping the whole map under a
// write lock, and superseded entries are reclaimed lazily, one shard
// at a time, on the next write to each shard.

// MemoKey identifies one memoizable evaluation.
type MemoKey struct {
	// Config is the target's configuration fingerprint
	// (Target.Fingerprint), Program the trace fingerprint
	// (prog.Program.Fingerprint).
	Config  uint64
	Program uint64
	Opts    RunOpts
}

// memoShards is the shard count: a power of two so the key hash maps
// onto a shard with a mask. 64 shards keep worst-case contention low
// even at high worker counts while costing only a few kilobytes of
// fixed overhead per memo.
const memoShards = 64

// hash mixes the key's fields into a shard selector with the
// SplitMix64 finalizer, so near-identical keys (same config, adjacent
// opts) still spread across shards.
func (k MemoKey) hash() uint64 {
	x := k.Config ^ k.Program<<1 ^
		uint64(k.Opts.Procs)<<32 ^ uint64(k.Opts.ActiveCPUs)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CacheStats reports timing-memo effectiveness counters.
type CacheStats struct {
	Hits, Misses uint64
	// Entries is the number of live memoized results currently held.
	// Every live entry is keyed on the machine's current config
	// fingerprint: reconfiguration invalidates entries keyed on a
	// stale one.
	Entries int
	// Shards is the number of independently locked segments the memo
	// spreads its entries over; MaxShardEntries is the occupancy of
	// the fullest shard (a balance indicator: with a healthy hash it
	// stays near Entries/Shards).
	Shards          int
	MaxShardEntries int
	// Generation counts DropStale invalidations over the memo's
	// lifetime; GenerationDrops is the number of superseded entries
	// reclaimed by the lazy per-shard sweeps so far.
	Generation      uint64
	GenerationDrops uint64
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries)
}

// memoEntry is one stored result, stamped with the generation it was
// stored under.
type memoEntry struct {
	gen uint64
	res Result
}

// memoShard is one independently locked segment of the memo. swept
// records the generation the shard was last reconciled to; a shard
// whose swept lags the memo's generation may still hold superseded
// entries, which the next Store reclaims.
type memoShard struct {
	mu    sync.RWMutex
	m     map[MemoKey]memoEntry
	swept uint64
}

// Memo is a concurrency-safe memo of simulated results, shared by the
// SX-4 engine and the comparison-machine models.
type Memo struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	// gen is the current generation; keep is the config fingerprint
	// that survived the most recent DropStale. An entry is live when
	// it was stored in the current generation or its key carries the
	// surviving fingerprint — staler entries are invisible to Lookup
	// and reclaimed lazily.
	gen   atomic.Uint64
	keep  atomic.Uint64
	drops atomic.Uint64
	shard [memoShards]memoShard
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{}
}

// live reports whether an entry stored under gen with key k is
// servable at the current generation. Serving any stored entry is
// always *correct* — the key covers everything a simulation depends
// on — so liveness only governs reclamation and the Entries count.
func (c *Memo) live(k MemoKey, gen uint64) bool {
	return gen == c.gen.Load() || k.Config == c.keep.Load()
}

// Lookup returns the memoized result for k, counting a hit or miss.
// The returned Result is a deep copy; callers may alias it freely.
func (c *Memo) Lookup(k MemoKey) (Result, bool) {
	s := &c.shard[k.hash()&(memoShards-1)]
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if ok && c.live(k, e.gen) {
		c.hits.Add(1)
		return e.res.Clone(), true
	}
	c.misses.Add(1)
	return Result{}, false
}

// Store memoizes a result under k (deep-copied on the way in). If the
// shard has not caught up with a generation bump, its superseded
// entries are reclaimed first, so stale results never accumulate
// beyond one write per shard.
func (c *Memo) Store(k MemoKey, r Result) {
	s := &c.shard[k.hash()&(memoShards-1)]
	gen := c.gen.Load()
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[MemoKey]memoEntry)
	}
	if s.swept != gen {
		c.sweepLocked(s, gen)
	}
	s.m[k] = memoEntry{gen: gen, res: r.Clone()}
	s.mu.Unlock()
}

// sweepLocked reclaims the shard's dead entries and marks it
// reconciled to gen. Callers hold the shard's write lock.
func (c *Memo) sweepLocked(s *memoShard, gen uint64) {
	keep := c.keep.Load()
	for k, e := range s.m {
		if e.gen != gen && k.Config != keep {
			delete(s.m, k)
			c.drops.Add(1)
		}
	}
	s.swept = gen
}

// Stats returns the memo's counters, including shard occupancy and
// generation-drop totals. Entries counts live entries only.
func (c *Memo) Stats() CacheStats {
	st := CacheStats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Shards:          memoShards,
		Generation:      c.gen.Load(),
		GenerationDrops: c.drops.Load(),
	}
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.RLock()
		n := 0
		for k, e := range s.m {
			if c.live(k, e.gen) {
				n++
			}
		}
		s.mu.RUnlock()
		st.Entries += n
		if n > st.MaxShardEntries {
			st.MaxShardEntries = n
		}
	}
	return st
}

// DropStale invalidates every memoized entry whose key carries a
// config fingerprint other than current. Such entries can never be
// looked up again (the current fingerprint is part of every future
// key), so after a reconfiguration they are pure dead weight — and,
// worse, a coherence hazard should the fingerprint field ever go stale
// alongside them. The invalidation is O(1): the generation counter is
// bumped and entries keyed on current are kept live, while superseded
// entries become invisible immediately and are reclaimed shard by
// shard on subsequent writes. Concurrent readers are never stalled
// behind a full-map sweep.
func (c *Memo) DropStale(current uint64) {
	c.keep.Store(current)
	c.gen.Add(1)
}
