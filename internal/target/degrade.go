package target

import (
	"errors"
	"fmt"

	"sx4bench/internal/fault"
)

// ErrMachineDown reports that a fault schedule left a target with no
// surviving processors: there is no degraded mode to run in. Model
// Degraded implementations wrap it; runners test with errors.Is.
var ErrMachineDown = errors.New("no surviving CPUs")

// Degrader is the optional graceful-degradation interface: a target
// that can derive a copy of itself operating under a fault-induced
// Degradation — fewer CPUs, half the memory banks, a slowed crossbar
// port — implements it. The degraded copy is a fresh Target with its
// own configuration fingerprint (so memoized healthy timings can never
// be served for degraded runs) and must be at least as slow as the
// original on every trace: degradation never speeds a machine up.
type Degrader interface {
	Degraded(d fault.Degradation) (Target, error)
}

// Degrade applies a degradation to a target. A zero degradation
// returns the target itself (the fault-free identity, byte-exact); a
// non-zero one requires the target to implement Degrader. A
// degradation that leaves no surviving CPU returns an error wrapping
// ErrMachineDown.
func Degrade(t Target, d fault.Degradation) (Target, error) {
	if d.IsZero() {
		return t, nil
	}
	dg, ok := t.(Degrader)
	if !ok {
		return nil, fmt.Errorf("target: %s models no degraded mode", t.Name())
	}
	return dg.Degraded(d)
}
