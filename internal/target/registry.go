package target

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry maps short machine names ("ymp", "sx4-32") to target
// constructors. The concrete machine packages register themselves
// (package machine registers every Table 1 comparator and the SX-4
// configurations in its init), so everything above selects backends by
// name — the "-machine" flag of the CLIs — and no package outside the
// registry constructors ever builds a concrete machine type.

var (
	regMu    sync.RWMutex
	registry = map[string]func() Target{}
	regOrder []string
)

// Register adds a named target constructor. Names are case-insensitive
// and must be unique; the constructor must return a fresh, independent
// target on every call. Register panics on a duplicate, empty or
// reserved name or a nil constructor — registration happens in package
// inits, where a panic is a programming error surfacing at startup.
func Register(name string, ctor func() Target) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" || key == "all" {
		panic(fmt.Sprintf("target: invalid machine name %q", name))
	}
	if ctor == nil {
		panic(fmt.Sprintf("target: nil constructor for machine %q", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("target: duplicate machine name %q", name))
	}
	registry[key] = ctor
	regOrder = append(regOrder, key)
}

// Lookup constructs a fresh instance of the named machine. Names are
// case-insensitive. Unknown names return an error listing every
// registered machine.
func Lookup(name string) (Target, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	regMu.RLock()
	ctor, ok := registry[key]
	regMu.RUnlock()
	if !ok {
		known := All()
		sort.Strings(known)
		return nil, fmt.Errorf("target: unknown machine %q (known: %s)",
			name, strings.Join(known, ", "))
	}
	t := ctor()
	if t == nil {
		return nil, fmt.Errorf("target: constructor for machine %q returned nil", name)
	}
	return t, nil
}

// MustLookup is Lookup for names known to be registered; it panics on
// error.
func MustLookup(name string) Target {
	t, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return t
}

// All returns every registered machine name in registration order —
// the canonical column order of the cross-machine tables (the paper's
// Table 1 order, then the SX-4 configurations).
func All() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}
