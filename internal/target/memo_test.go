package target

import (
	"fmt"
	"sync"
	"testing"
)

// TestMemoShardSpread: distinct keys must land on more than one shard
// (the sharded memo's whole point), and every stored key must remain
// retrievable.
func TestMemoShardSpread(t *testing.T) {
	m := NewMemo()
	const n = 1024
	for i := 0; i < n; i++ {
		k := MemoKey{Config: 7, Program: uint64(i), Opts: RunOpts{Procs: i % 32}}
		m.Store(k, Result{Clocks: float64(i)})
	}
	st := m.Stats()
	if st.Entries != n {
		t.Fatalf("Entries = %d, want %d", st.Entries, n)
	}
	if st.Shards != memoShards {
		t.Errorf("Shards = %d, want %d", st.Shards, memoShards)
	}
	// A healthy hash keeps the fullest shard well under the whole key
	// population; 4x the ideal average is a loose balance bound.
	if ideal := n / memoShards; st.MaxShardEntries > 4*ideal {
		t.Errorf("MaxShardEntries = %d with ideal %d: shard hash is unbalanced",
			st.MaxShardEntries, ideal)
	}
	for i := 0; i < n; i++ {
		k := MemoKey{Config: 7, Program: uint64(i), Opts: RunOpts{Procs: i % 32}}
		r, ok := m.Lookup(k)
		if !ok || r.Clocks != float64(i) {
			t.Fatalf("key %d: lookup = (%v, %v)", i, r.Clocks, ok)
		}
	}
}

// TestMemoGenerationInvalidation: DropStale must hide superseded
// entries immediately (without touching the maps), keep current-config
// entries servable, and reclaim dead entries lazily as shards are
// written to.
func TestMemoGenerationInvalidation(t *testing.T) {
	m := NewMemo()
	const perConfig = 256
	for i := 0; i < perConfig; i++ {
		m.Store(MemoKey{Config: 1, Program: uint64(i)}, Result{Clocks: 1})
		m.Store(MemoKey{Config: 2, Program: uint64(i)}, Result{Clocks: 2})
	}
	m.DropStale(2)

	st := m.Stats()
	if st.Generation != 1 {
		t.Errorf("Generation = %d, want 1", st.Generation)
	}
	if st.Entries != perConfig {
		t.Errorf("after DropStale: Entries = %d, want %d", st.Entries, perConfig)
	}
	if _, ok := m.Lookup(MemoKey{Config: 2, Program: 0}); !ok {
		t.Error("DropStale hid a current-config entry")
	}

	// Fresh writes trigger the lazy per-shard sweeps: dead config-1
	// entries are reclaimed from every shard that takes a write, and
	// never more than the dead population exists.
	for i := 0; i < 8*perConfig; i++ {
		m.Store(MemoKey{Config: 2, Program: uint64(perConfig + i)}, Result{Clocks: 2})
	}
	st = m.Stats()
	if st.GenerationDrops == 0 || st.GenerationDrops > perConfig {
		t.Errorf("GenerationDrops = %d, want in (0, %d]", st.GenerationDrops, perConfig)
	}
}

// TestMemoDropStaleRepeated: repeated reconfiguration bumps, each
// keeping a different fingerprint, must leave exactly the last
// configuration's entries live.
func TestMemoDropStaleRepeated(t *testing.T) {
	m := NewMemo()
	for cfg := uint64(1); cfg <= 4; cfg++ {
		for i := 0; i < 8; i++ {
			m.Store(MemoKey{Config: cfg, Program: uint64(i)}, Result{})
		}
		m.DropStale(cfg)
	}
	st := m.Stats()
	if st.Entries != 8 {
		t.Errorf("Entries = %d, want 8", st.Entries)
	}
	if st.Generation != 4 {
		t.Errorf("Generation = %d, want 4", st.Generation)
	}
	if _, ok := m.Lookup(MemoKey{Config: 4, Program: 0}); !ok {
		t.Error("last configuration's entry not live")
	}
}

// TestMemoConcurrent: concurrent stores, lookups and generation bumps
// must be race-free (run under -race) and never corrupt the hit/miss
// accounting.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := MemoKey{Config: uint64(g%2 + 1), Program: uint64(i % 64)}
				if r, ok := m.Lookup(k); ok {
					if r.Clocks != float64(k.Program) {
						t.Errorf("lookup returned foreign result: %v for %v", r.Clocks, k)
					}
					continue
				}
				m.Store(k, Result{Clocks: float64(k.Program)})
				if i%100 == 0 {
					m.DropStale(k.Config)
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}

// TestMemoLookupIsolation: the memo must hand out deep copies — a
// caller mutating a looked-up result cannot corrupt the stored one.
func TestMemoLookupIsolation(t *testing.T) {
	m := NewMemo()
	k := MemoKey{Config: 1, Program: 1}
	m.Store(k, Result{Phases: []PhaseTime{{Name: "a", Clocks: 1}}})
	r1, _ := m.Lookup(k)
	r1.Phases[0].Clocks = 99
	r2, _ := m.Lookup(k)
	if r2.Phases[0].Clocks != 1 {
		t.Errorf("stored result was mutated through a lookup alias: %v", r2.Phases[0])
	}
}

func BenchmarkMemoLookupParallel(b *testing.B) {
	m := NewMemo()
	const keys = 4096
	for i := 0; i < keys; i++ {
		m.Store(MemoKey{Config: 1, Program: uint64(i)}, Result{Clocks: float64(i)})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := MemoKey{Config: 1, Program: uint64(i % keys)}
			if _, ok := m.Lookup(k); !ok {
				b.Fatal("miss on a warmed key")
			}
			i++
		}
	})
}

func BenchmarkMemoStoreParallel(b *testing.B) {
	m := NewMemo()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Store(MemoKey{Config: 1, Program: uint64(i)}, Result{})
			i++
		}
	})
}

// ExampleCacheStats_String pins the human-readable stats line the
// CLIs print under -cachestats.
func ExampleCacheStats_String() {
	s := CacheStats{Hits: 3, Misses: 1, Entries: 2}
	fmt.Println(s)
	// Output: 3 hits, 1 misses (75.0% hit rate), 2 entries
}
