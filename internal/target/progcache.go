package target

import (
	"sync"
	"sync/atomic"
)

// FPCache is a sharded concurrent cache keyed by 64-bit fingerprint,
// the container the machine models use for compiled-trace timing
// artifacts: values are computed once per (configuration, program)
// and re-read on every subsequent Run, so reads vastly outnumber
// writes and must not contend across worker goroutines.
//
// The zero value is ready to use. Values must be immutable once
// stored (the cache hands back the stored value itself, never a
// copy); the maker passed to LoadOrStore must be a pure function of
// the fingerprint, since concurrent first loads may each invoke it
// and any one result may win.
type FPCache[V any] struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	shard  [fpShards]fpShard[V]
}

// FPCacheStats reports a fingerprint cache's effectiveness counters:
// the numbers the sx4d daemon surfaces for its content-addressed
// response cache on /v1/stats. A LoadOrStore that computes counts as
// one miss; the racing losers of a concurrent first load each count
// their own miss (they did the work).
type FPCacheStats struct {
	Hits, Misses uint64
	Entries      int
}

// HitRate returns the fraction of lookups served from the cache.
func (s FPCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const fpShards = 64 // power of two, masked below

type fpShard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
}

// fpShardOf mixes the fingerprint before masking so that structured
// fingerprints still spread over the shard array.
func fpShardOf(fp uint64) uint64 {
	fp ^= fp >> 33
	fp *= 0xff51afd7ed558ccd
	fp ^= fp >> 33
	return fp & (fpShards - 1)
}

// Load returns the cached value for fp, counting a hit or miss.
func (c *FPCache[V]) Load(fp uint64) (V, bool) {
	s := &c.shard[fpShardOf(fp)]
	s.mu.RLock()
	v, ok := s.m[fp]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// LoadOrStore returns the cached value for fp, invoking mk and
// caching its result on the first load. mk runs outside the shard
// lock, so a slow compile never blocks readers of other entries in
// the same shard; when two goroutines race on the same cold
// fingerprint, the first store wins and both observe it.
func (c *FPCache[V]) LoadOrStore(fp uint64, mk func() V) V {
	if v, ok := c.Load(fp); ok {
		return v
	}
	v := mk()
	s := &c.shard[fpShardOf(fp)]
	s.mu.Lock()
	if prev, ok := s.m[fp]; ok {
		s.mu.Unlock()
		return prev
	}
	if s.m == nil {
		s.m = make(map[uint64]V)
	}
	s.m[fp] = v
	s.mu.Unlock()
	return v
}

// Store inserts a value without touching the hit/miss counters: the
// warm-start path, where a daemon pre-populates the cache from a disk
// snapshot before serving its first query. An existing entry is left
// in place — snapshots never overwrite live, newer state.
func (c *FPCache[V]) Store(fp uint64, v V) {
	s := &c.shard[fpShardOf(fp)]
	s.mu.Lock()
	if _, ok := s.m[fp]; !ok {
		if s.m == nil {
			s.m = make(map[uint64]V)
		}
		s.m[fp] = v
	}
	s.mu.Unlock()
}

// Range calls f for every cached entry until f returns false. The
// iteration order is unspecified (per-shard map order); callers that
// render the contents — the snapshot writer — must collect and sort.
// f must not call back into the cache (the shard lock is held).
func (c *FPCache[V]) Range(f func(fp uint64, v V) bool) {
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.RLock()
		for fp, v := range s.m {
			if !f(fp, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Stats returns the cache's counters. A LoadOrStore that found the
// value counts as the one hit its inner Load recorded; lifetime
// counters survive Clear (the entries they describe do not).
func (c *FPCache[V]) Stats() FPCacheStats {
	return FPCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.Len(),
	}
}

// Len returns the number of cached values.
func (c *FPCache[V]) Len() int {
	n := 0
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Clear drops every cached value (the reconfiguration path: compiled
// timings are configuration-dependent and must not survive SetConfig).
func (c *FPCache[V]) Clear() {
	for i := range c.shard {
		s := &c.shard[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}
