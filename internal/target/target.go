// Package target is the machine-agnostic execution layer of the
// benchmark system: the leaf package every higher layer — the SX-4
// model, the Table 1 comparators, the experiment engine, the NCAR
// runners, the verification subsystem and the CLIs — speaks instead of
// a concrete machine type.
//
// It provides four things:
//
//   - the Target interface: a modeled machine that executes operation
//     traces and exposes its scalar profile and specification sheet;
//   - the run-result vocabulary (RunOpts, PhaseTime, Result), hoisted
//     out of the SX-4 model so that a Target implementation need not
//     depend on package sx4 at all;
//   - a name-keyed machine registry (Register/Lookup/All), so runners
//     and CLIs select backends by name ("-machine ymp") without
//     constructing concrete machine types themselves;
//   - a shared timing memo (Memo) keyed on a target's configuration
//     fingerprint, so every backend's warm-cache results are
//     byte-identical to its cold ones.
//
// The package depends only on sx4/prog (the trace vocabulary) and the
// standard library; the concrete machines depend on it, never the
// other way around.
package target

import "sx4bench/internal/sx4/prog"

// RunOpts controls one simulated execution.
type RunOpts struct {
	// Procs is the number of CPUs assigned to the program (within one
	// node). Zero means 1.
	Procs int
	// ActiveCPUs is the total number of busy CPUs on the node during
	// the run, including this program's. It exceeds Procs when other
	// jobs share the node (the ensemble and PRODLOAD tests). Zero
	// means Procs.
	ActiveCPUs int
}

// PhaseTime reports the simulated cost of one program phase.
type PhaseTime struct {
	Name     string
	Clocks   float64
	Flops    int64
	Words    int64
	Serial   bool
	MemBound bool
}

// Result is the outcome of a simulated run.
type Result struct {
	Program string
	Procs   int
	Clocks  float64
	Seconds float64
	Flops   int64
	Words   int64
	Phases  []PhaseTime
}

// MFLOPS returns the achieved rate in millions of (Y-MP-equivalent)
// floating-point operations per second.
func (r Result) MFLOPS() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Flops) / r.Seconds / 1e6
}

// GFLOPS returns the achieved rate in GFLOPS.
func (r Result) GFLOPS() float64 { return r.MFLOPS() / 1e3 }

// PortMBps returns the memory-port traffic rate in MB/s.
func (r Result) PortMBps() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Words*8) / r.Seconds / 1e6
}

// Clone returns a deep copy of the result, so memoized Phases slices
// cannot be aliased by concurrent callers.
func (r Result) Clone() Result {
	out := r
	out.Phases = append([]PhaseTime(nil), r.Phases...)
	return out
}

// ScalarProfile describes a machine's scalar processing path, the one
// HINT exercises: issue width, cache, and scalar memory latency.
type ScalarProfile struct {
	ClockNS       float64
	IssuePerClock float64
	// HasCache reports whether scalar loads hit a data cache; the
	// vector Crays have none and pay main-memory latency per load.
	HasCache           bool
	CacheWordsPerClock float64
	MemClocksPerWord   float64
}

// Spec is a target's specification sheet: the machine facts the
// benchmark runners need beyond trace execution.
type Spec struct {
	// CPUs is the number of processors per node; Nodes the node count.
	CPUs  int
	Nodes int
	// ClockNS is the machine cycle time in nanoseconds.
	ClockNS float64
	// PeakMFLOPSPerCPU is the nominal single-processor peak rate.
	PeakMFLOPSPerCPU float64
	// DiskBytesPerSec is the attached disk subsystem's sustained rate;
	// zero when the model carries no I/O subsystem (the comparison
	// machines were benchmarked compute-only).
	DiskBytesPerSec float64

	// The remaining fields are the specification-sheet facts of the
	// paper's Table 2. They are zero for models whose spec sheet the
	// paper never prints (the Table 1 comparators).

	// VectorPipes is the number of parallel pipes per vector
	// functional unit; zero for scalar machines.
	VectorPipes int
	// PortWordsPerClock is the per-CPU memory-port width in 64-bit
	// words per clock.
	PortWordsPerClock int
	// MainMemoryGB and XMUGB are the main and extended memory
	// capacities.
	MainMemoryGB float64
	XMUGB        float64
	// DiskCapacityGB is the attached disk capacity.
	DiskCapacityGB float64
	// PowerKVA is the chassis power requirement.
	PowerKVA float64
}

// Seconds converts a clock count to seconds at the machine's cycle
// time.
func (s Spec) Seconds(clocks float64) float64 { return clocks * s.ClockNS * 1e-9 }

// Target is a modeled machine: it executes operation traces and
// exposes its scalar profile and specification. Implementations must
// be pure — Run is a function of (program, opts) and the target's
// configuration only — and safe for concurrent Run calls.
type Target interface {
	// Name returns the model designation, e.g. "SX-4/32" or "CRI Y-MP".
	Name() string
	// Run simulates the program.
	Run(p prog.Program, opts RunOpts) Result
	// Scalar returns the machine's scalar-path description (the HINT
	// profile).
	Scalar() ScalarProfile
	// Spec returns the machine's specification sheet.
	Spec() Spec
	// Fingerprint hashes the target's complete configuration: the
	// timing-memo key component, so memoized results can never be
	// served across configurations (or backends).
	Fingerprint() uint64
	// Clone returns a fresh target with the same configuration and a
	// cold timing memo. Clones must be run-for-run identical to the
	// original (Conformance pins this).
	Clone() Target
}

// CacheStatser is the optional interface of targets that expose their
// timing-memo counters (shard occupancy, generation drops); the CLIs'
// -cachestats output uses it.
type CacheStatser interface {
	CacheStats() CacheStats
}

// CompiledRunner is the optional interface of targets that execute
// pre-flattened traces directly. A memo-cold Run spends most of its
// time re-hashing the trace structure for the cache key; RunCompiled
// reads the fingerprint the compiler stamped on the IR instead, so a
// sweep that compiles each distinct trace once pays the per-op walk
// once too. Results must be bit-identical to Run on the source
// program — the two entry points share one timing memo.
type CompiledRunner interface {
	RunCompiled(c *prog.Compiled, opts RunOpts) Result
}

// CompiledSwitcher is the optional interface of targets whose
// compiled-trace execution path can be toggled. Disabling routes runs
// through the interpreted engine; reported numbers are bit-identical
// either way (the differential tests pin this), so the switch is
// purely an ablation knob — the cold-sweep baseline benchmark uses it
// to measure what compilation buys.
type CompiledSwitcher interface {
	SetCompiled(enabled bool)
}
