package target

import (
	"strings"
	"testing"

	"sx4bench/internal/sx4/prog"
)

// stub is a minimal deterministic Target for registry and memo tests.
type stub struct {
	name string
	fp   uint64
}

func (s *stub) Name() string { return s.name }
func (s *stub) Run(p prog.Program, opts RunOpts) Result {
	procs := opts.Procs
	if procs <= 0 {
		procs = 1
	}
	clocks := float64(p.Flops()+p.Words()) / float64(procs)
	return Result{
		Program: p.Name, Procs: procs,
		Clocks: clocks, Seconds: clocks * 1e-9,
		Flops: p.Flops(), Words: p.Words(),
	}
}
func (s *stub) Scalar() ScalarProfile { return ScalarProfile{ClockNS: 1, IssuePerClock: 1} }
func (s *stub) Spec() Spec {
	return Spec{CPUs: 4, Nodes: 1, ClockNS: 1, PeakMFLOPSPerCPU: 1000}
}
func (s *stub) Fingerprint() uint64 { return s.fp }
func (s *stub) Clone() Target       { c := *s; return &c }

func TestRegistryLookup(t *testing.T) {
	Register("test-stub-a", func() Target { return &stub{name: "Stub A", fp: 1} })

	got, err := Lookup("test-stub-a")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if got.Name() != "Stub A" {
		t.Errorf("Name = %q, want %q", got.Name(), "Stub A")
	}
	// Case-insensitive, whitespace-tolerant.
	if _, err := Lookup("  Test-Stub-A "); err != nil {
		t.Errorf("case-insensitive Lookup: %v", err)
	}
	// Fresh instance per call.
	a, _ := Lookup("test-stub-a")
	b, _ := Lookup("test-stub-a")
	if a == b {
		t.Error("Lookup returned the same instance twice")
	}
}

func TestLookupNormalization(t *testing.T) {
	// CLI -machine flags arrive hand-typed and copy-pasted; every
	// casing and whitespace variant of a registered name must resolve
	// to the same machine, through Lookup and MustLookup alike.
	Register("test-stub-norm", func() Target { return &stub{name: "Stub Norm", fp: 9} })

	for _, name := range []string{
		"TEST-STUB-NORM",
		"Test-Stub-Norm",
		"tEsT-sTuB-nOrM",
		" test-stub-norm",
		"test-stub-norm ",
		"\ttest-stub-norm\t",
		"\n TEST-stub-NORM \n",
	} {
		got, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if got.Name() != "Stub Norm" {
			t.Errorf("Lookup(%q) = %q, want %q", name, got.Name(), "Stub Norm")
		}
		if m := MustLookup(name); m.Name() != "Stub Norm" {
			t.Errorf("MustLookup(%q) = %q, want %q", name, m.Name(), "Stub Norm")
		}
	}

	// Interior whitespace is not normalized away: it makes a
	// different (unknown) name.
	if _, err := Lookup("test-stub\t-norm"); err == nil {
		t.Error("Lookup with interior whitespace resolved; want unknown-machine error")
	}
	// Registration normalizes the same way, so a differently-cased
	// duplicate is still a duplicate.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Register of differently-cased duplicate did not panic")
			}
		}()
		Register("  TEST-STUB-NORM ", func() Target { return &stub{name: "dup", fp: 10} })
	}()
}

func TestRegistryUnknown(t *testing.T) {
	_, err := Lookup("no-such-machine")
	if err == nil {
		t.Fatal("Lookup of unknown name: want error")
	}
	if !strings.Contains(err.Error(), `"no-such-machine"`) {
		t.Errorf("error does not name the unknown machine: %v", err)
	}
	if !strings.Contains(err.Error(), "known:") {
		t.Errorf("error does not list known machines: %v", err)
	}
}

func TestRegistryAll(t *testing.T) {
	Register("test-stub-z", func() Target { return &stub{name: "Stub Z", fp: 2} })
	Register("test-stub-m", func() Target { return &stub{name: "Stub M", fp: 3} })
	all := All()
	zi, mi := -1, -1
	for i, n := range all {
		switch n {
		case "test-stub-z":
			zi = i
		case "test-stub-m":
			mi = i
		}
	}
	if zi < 0 || mi < 0 {
		t.Fatalf("All() missing registered names: %v", all)
	}
	if zi > mi {
		t.Errorf("All() not in registration order: %v", all)
	}
	// All returns a copy: mutating it must not corrupt the registry.
	all[zi] = "mutated"
	if All()[zi] != "test-stub-z" {
		t.Error("All() aliases the internal order slice")
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		desc string
		fn   func()
	}{
		{"empty name", func() { Register("", func() Target { return nil }) }},
		{"reserved all", func() { Register("all", func() Target { return nil }) }},
		{"nil ctor", func() { Register("test-stub-nilctor", nil) }},
		{"duplicate", func() {
			Register("test-stub-dup", func() Target { return &stub{} })
			Register("Test-Stub-Dup", func() Target { return &stub{} })
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", tc.desc)
				}
			}()
			tc.fn()
		}()
	}
}

func TestMustLookupPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of unknown name did not panic")
		}
	}()
	MustLookup("no-such-machine")
}

func TestMemoRoundTrip(t *testing.T) {
	m := NewMemo()
	k := MemoKey{Config: 7, Program: 42, Opts: RunOpts{Procs: 2}}
	if _, ok := m.Lookup(k); ok {
		t.Fatal("empty memo reported a hit")
	}
	r := Result{Program: "p", Procs: 2, Clocks: 10, Seconds: 1e-8,
		Flops: 100, Words: 50,
		Phases: []PhaseTime{{Name: "ph", Clocks: 10, Flops: 100, Words: 50}}}
	m.Store(k, r)

	got, ok := m.Lookup(k)
	if !ok {
		t.Fatal("stored key missed")
	}
	if got.Clocks != r.Clocks || len(got.Phases) != 1 {
		t.Errorf("Lookup returned %+v, want %+v", got, r)
	}
	// Deep copy on the way out: mutating the returned Phases must not
	// affect subsequent lookups.
	got.Phases[0].Name = "mutated"
	again, _ := m.Lookup(k)
	if again.Phases[0].Name != "ph" {
		t.Error("Lookup result aliases the stored Phases slice")
	}

	s := m.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("Stats = %+v, want 2 hits, 1 miss, 1 entry", s)
	}
	if hr := s.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("HitRate = %v, want 2/3", hr)
	}
}

func TestMemoKeyDistinguishesConfig(t *testing.T) {
	m := NewMemo()
	r := Result{Program: "p", Clocks: 1}
	m.Store(MemoKey{Config: 1, Program: 42}, r)
	if _, ok := m.Lookup(MemoKey{Config: 2, Program: 42}); ok {
		t.Error("memo served a result across config fingerprints")
	}
	if _, ok := m.Lookup(MemoKey{Config: 1, Program: 42, Opts: RunOpts{Procs: 2}}); ok {
		t.Error("memo served a result across RunOpts")
	}
}

func TestMemoDropStale(t *testing.T) {
	m := NewMemo()
	m.Store(MemoKey{Config: 1, Program: 1}, Result{})
	m.Store(MemoKey{Config: 1, Program: 2}, Result{})
	m.Store(MemoKey{Config: 2, Program: 1}, Result{})
	m.DropStale(2)
	if n := m.Stats().Entries; n != 1 {
		t.Errorf("after DropStale: %d entries, want 1", n)
	}
	if _, ok := m.Lookup(MemoKey{Config: 2, Program: 1}); !ok {
		t.Error("DropStale removed a current-config entry")
	}
}

func TestCacheStatsString(t *testing.T) {
	s := CacheStats{Hits: 3, Misses: 1, Entries: 2}
	want := "3 hits, 1 misses (75.0% hit rate), 2 entries"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Error("zero-stats HitRate should be 0")
	}
}

func TestResultRates(t *testing.T) {
	r := Result{Flops: 2e6, Words: 1e6, Seconds: 1}
	if got := r.MFLOPS(); got != 2 {
		t.Errorf("MFLOPS = %v, want 2", got)
	}
	if got := r.GFLOPS(); got != 0.002 {
		t.Errorf("GFLOPS = %v, want 0.002", got)
	}
	if got := r.PortMBps(); got != 8 {
		t.Errorf("PortMBps = %v, want 8", got)
	}
	var zero Result
	if zero.MFLOPS() != 0 || zero.PortMBps() != 0 {
		t.Error("zero-seconds rates should be 0")
	}
}

func TestResultClone(t *testing.T) {
	r := Result{Phases: []PhaseTime{{Name: "a"}, {Name: "b"}}}
	c := r.Clone()
	c.Phases[0].Name = "mutated"
	if r.Phases[0].Name != "a" {
		t.Error("Clone aliases the Phases slice")
	}
}

func TestSpecSeconds(t *testing.T) {
	s := Spec{ClockNS: 8}
	if got := s.Seconds(1e9); got != 8 {
		t.Errorf("Seconds(1e9) at 8ns = %v, want 8", got)
	}
}

func TestConformanceOnStub(t *testing.T) {
	Conformance(t, &stub{name: "Stub C", fp: 9})
}
