package target

import (
	"sync"
	"testing"
)

func TestFPCacheStats(t *testing.T) {
	var c FPCache[int]
	if st := c.Stats(); st != (FPCacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zero", st)
	}
	if _, ok := c.Load(7); ok {
		t.Fatal("Load hit on an empty cache")
	}
	got := c.LoadOrStore(7, func() int { return 42 })
	if got != 42 {
		t.Fatalf("LoadOrStore = %d, want 42", got)
	}
	if v, ok := c.Load(7); !ok || v != 42 {
		t.Fatalf("Load after store = %d,%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit (the re-Load), 2 misses (cold Load + LoadOrStore), 1 entry", st)
	}
	if hr := st.HitRate(); hr <= 0.33 || hr >= 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", hr)
	}
	c.Clear()
	st = c.Stats()
	if st.Entries != 0 {
		t.Fatalf("entries survive Clear: %+v", st)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("lifetime counters reset by Clear: %+v", st)
	}
}

// TestFPCacheStatsConcurrent pins the counters' race-freedom: total
// lookups must equal hits+misses whatever the interleaving.
func TestFPCacheStatsConcurrent(t *testing.T) {
	var c FPCache[uint64]
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fp := uint64(i % 32)
				c.LoadOrStore(fp, func() uint64 { return fp * fp })
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 32 {
		t.Fatalf("entries = %d, want 32", st.Entries)
	}
	// Every LoadOrStore records exactly one inner-Load hit or miss;
	// racing losers of a cold fingerprint may add an extra miss via the
	// second locked check's preceding Load, but never lose a count.
	if st.Hits+st.Misses < workers*perWorker {
		t.Fatalf("hits %d + misses %d < %d lookups", st.Hits, st.Misses, workers*perWorker)
	}
	if st.Misses < 32 {
		t.Fatalf("misses = %d, want at least one per distinct fingerprint", st.Misses)
	}
}
