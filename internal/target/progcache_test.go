package target

import (
	"sync"
	"testing"
)

func TestFPCacheStats(t *testing.T) {
	var c FPCache[int]
	if st := c.Stats(); st != (FPCacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zero", st)
	}
	if _, ok := c.Load(7); ok {
		t.Fatal("Load hit on an empty cache")
	}
	got := c.LoadOrStore(7, func() int { return 42 })
	if got != 42 {
		t.Fatalf("LoadOrStore = %d, want 42", got)
	}
	if v, ok := c.Load(7); !ok || v != 42 {
		t.Fatalf("Load after store = %d,%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit (the re-Load), 2 misses (cold Load + LoadOrStore), 1 entry", st)
	}
	if hr := st.HitRate(); hr <= 0.33 || hr >= 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", hr)
	}
	c.Clear()
	st = c.Stats()
	if st.Entries != 0 {
		t.Fatalf("entries survive Clear: %+v", st)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("lifetime counters reset by Clear: %+v", st)
	}
}

// TestFPCacheStoreRange pins the warm-start surface: Store inserts
// without perturbing hit/miss counters and never overwrites a live
// entry, and Range visits exactly the stored population.
func TestFPCacheStoreRange(t *testing.T) {
	var c FPCache[string]
	for i := uint64(0); i < 100; i++ {
		c.Store(i, "snap")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 100 {
		t.Fatalf("after 100 Stores, stats = %+v, want 0 hits, 0 misses, 100 entries", st)
	}
	// A live entry wins over a snapshot replay.
	c.LoadOrStore(200, func() string { return "live" })
	c.Store(200, "snap")
	if v, ok := c.Load(200); !ok || v != "live" {
		t.Fatalf("Store overwrote a live entry: got %q", v)
	}
	seen := make(map[uint64]string)
	c.Range(func(fp uint64, v string) bool {
		seen[fp] = v
		return true
	})
	if len(seen) != 101 {
		t.Fatalf("Range visited %d entries, want 101", len(seen))
	}
	if seen[7] != "snap" || seen[200] != "live" {
		t.Fatalf("Range contents wrong: %q %q", seen[7], seen[200])
	}
	// Early termination: a false return stops the walk.
	n := 0
	c.Range(func(uint64, string) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range after false return visited %d entries, want 1", n)
	}
}

// TestFPCacheStatsConcurrent pins the counters' race-freedom: total
// lookups must equal hits+misses whatever the interleaving.
func TestFPCacheStatsConcurrent(t *testing.T) {
	var c FPCache[uint64]
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fp := uint64(i % 32)
				c.LoadOrStore(fp, func() uint64 { return fp * fp })
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 32 {
		t.Fatalf("entries = %d, want 32", st.Entries)
	}
	// Every LoadOrStore records exactly one inner-Load hit or miss;
	// racing losers of a cold fingerprint may add an extra miss via the
	// second locked check's preceding Load, but never lose a count.
	if st.Hits+st.Misses < workers*perWorker {
		t.Fatalf("hits %d + misses %d < %d lookups", st.Hits, st.Misses, workers*perWorker)
	}
	if st.Misses < 32 {
		t.Fatalf("misses = %d, want at least one per distinct fingerprint", st.Misses)
	}
}
