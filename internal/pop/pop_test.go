package pop

import (
	"math"
	"testing"

	"sx4bench/internal/sx4"
)

// small returns a cheap host configuration.
func small() *Model {
	return New(Config{Name: "test", NLon: 48, NLat: 24, NLev: 3, DxDeg: 7.5})
}

func TestShiftXPeriodic(t *testing.T) {
	f := NewField(4, 2)
	for i := range f.V {
		f.V[i] = float64(i)
	}
	s := f.ShiftX(1)
	// out(i) = f(i+1 mod 4)
	want := []float64{1, 2, 3, 0, 5, 6, 7, 4}
	for i := range want {
		if s.V[i] != want[i] {
			t.Fatalf("ShiftX: V[%d] = %v, want %v", i, s.V[i], want[i])
		}
	}
	// Shifting forward then back is the identity.
	rt := f.ShiftX(3).ShiftX(-3)
	for i := range f.V {
		if rt.V[i] != f.V[i] {
			t.Fatal("ShiftX round trip failed")
		}
	}
}

func TestShiftYClamped(t *testing.T) {
	f := NewField(2, 3)
	for i := range f.V {
		f.V[i] = float64(i)
	}
	s := f.ShiftY(1)
	// Row j takes row j+1; top row clamps to itself.
	want := []float64{2, 3, 4, 5, 4, 5}
	for i := range want {
		if s.V[i] != want[i] {
			t.Fatalf("ShiftY: V[%d] = %v, want %v", i, s.V[i], want[i])
		}
	}
}

func TestCGSolvesHelmholtz(t *testing.T) {
	m := small()
	dt := 1800.0
	rhs := NewField(m.Cfg.NLon, m.Cfg.NLat)
	for i := range rhs.V {
		rhs.V[i] = math.Sin(float64(i))
	}
	x, iters := m.SolveFreeSurface(rhs, dt)
	if iters == 0 {
		t.Log("warm start converged immediately")
	}
	// Verify A x = rhs.
	ax := m.applyHelmholtz(x, dt)
	var num, den float64
	for i := range rhs.V {
		d := ax.V[i] - rhs.V[i]
		num += d * d
		den += rhs.V[i] * rhs.V[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-8 {
		t.Errorf("CG residual %g, want < 1e-8", rel)
	}
}

func TestVolumeConserved(t *testing.T) {
	m := small()
	v0 := m.MeanEta()
	dt := 2 * m.GravityWaveCFL() // implicit scheme exceeds explicit CFL
	for i := 0; i < 20; i++ {
		m.Step(dt)
	}
	if d := math.Abs(m.MeanEta() - v0); d > 1e-10+1e-6*math.Abs(v0) {
		t.Errorf("mean eta drifted from %v by %v", v0, d)
	}
}

func TestSurfaceBumpRadiates(t *testing.T) {
	m := small()
	peak0 := m.MaxAbsEta()
	dt := m.GravityWaveCFL()
	for i := 0; i < 30; i++ {
		m.Step(dt)
	}
	peak1 := m.MaxAbsEta()
	if peak1 >= peak0 {
		t.Errorf("surface bump did not radiate: %v -> %v", peak0, peak1)
	}
	if math.IsNaN(peak1) {
		t.Fatal("surface went NaN")
	}
}

func TestImplicitStableBeyondCFL(t *testing.T) {
	// The free-surface solve lets POP take steps far beyond the
	// explicit gravity-wave CFL without blowing up.
	m := small()
	dt := 10 * m.GravityWaveCFL()
	for i := 0; i < 20; i++ {
		m.Step(dt)
	}
	if a := m.MaxAbsEta(); math.IsNaN(a) || a > 10 {
		t.Errorf("long-step integration unstable: max|eta| = %v", a)
	}
}

func TestTracersBounded(t *testing.T) {
	m := small()
	var lo0, hi0 = math.Inf(1), math.Inf(-1)
	for _, tf := range m.Temp {
		for _, v := range tf.V {
			lo0 = math.Min(lo0, v)
			hi0 = math.Max(hi0, v)
		}
	}
	dt := m.GravityWaveCFL()
	for i := 0; i < 20; i++ {
		m.Step(dt)
	}
	for _, tf := range m.Temp {
		for _, v := range tf.V {
			if v < lo0-1 || v > hi0+1 || math.IsNaN(v) {
				t.Fatalf("tracer escaped [%v,%v]: %v", lo0, hi0, v)
			}
		}
	}
}

func TestCGIterationCountReasonable(t *testing.T) {
	m := small()
	m.Step(1800)
	if m.CGIters < 1 || m.CGIters > 400 {
		t.Errorf("CG used %d iterations", m.CGIters)
	}
}

// --- performance model ---

func TestPaper537MFLOPS(t *testing.T) {
	// Paper: "we observed 537 Mflops on the 2-degree POP benchmark on
	// one processor of the SX-4" with CSHIFT not vectorizing.
	m := sx4.New(sx4.Benchmarked())
	got := SustainedMFLOPS(m)
	if got < 430 || got > 650 {
		t.Errorf("POP 2-degree = %.0f MFLOPS, want within [430, 650] (paper: 537)", got)
	}
}

func TestCSHIFTDominatesStep(t *testing.T) {
	m := sx4.New(sx4.Benchmarked())
	r := m.Run(StepTrace(TwoDegree), sx4.RunOpts{Procs: 1})
	var cshift, arith float64
	for _, ph := range r.Phases {
		switch ph.Name {
		case "cshift":
			cshift = ph.Clocks
		case "arithmetic":
			arith = ph.Clocks
		}
	}
	if cshift <= arith {
		t.Errorf("scalar CSHIFT (%.3g) should dominate vector arithmetic (%.3g)", cshift, arith)
	}
}

func TestVectorizedCSHIFTWouldHelp(t *testing.T) {
	m := sx4.New(sx4.Benchmarked())
	s := VectorizedCSHIFTSpeedup(m)
	if s < 1.5 || s > 20 {
		t.Errorf("vectorizing CSHIFT gives %.1fx, want a substantial [1.5, 20] gain", s)
	}
}

func TestStepFlopsScale(t *testing.T) {
	if StepFlops(TwoDegree) <= StepFlops(Config{Name: "s", NLon: 48, NLat: 24, NLev: 3}) {
		t.Error("2-degree step should cost more than the test grid")
	}
}
