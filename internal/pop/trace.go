package pop

import (
	"fmt"

	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// Trace parameters for one 2-degree time step. The characteristic of
// the measured configuration is that every whole-array CSHIFT compiled
// to scalar code (pre-release F90 compiler), while the arithmetic
// between shifts vectorized, leaving POP at 537 MFLOPS on one CPU.
const (
	// cshifts3D counts whole-array 3-D shift operations per step
	// (momentum and tracer stencils across the level stack); each
	// processes one horizontal plane per level per trip.
	cshifts3D = 20
	// cshiftScalarOps is the scalar instruction count per element of a
	// non-vectorized CSHIFT (load, index arithmetic, store, loop
	// control).
	cshiftScalarOps = 4
	// cgIterations is the typical preconditioned implicit
	// free-surface iteration count per step; each iteration applies
	// the 5-point Helmholtz operator (4 shifts) and two dot products.
	cgIterations = 25
	// Arithmetic densities.
	momentumLoops     = 12 // 3-D baroclinic + tracer loop passes
	momentumLoopFlops = 28
	stencilFlops      = 12
	cgVectorFlops     = 10
)

// StepTrace builds the trace of one POP step at a configuration.
func StepTrace(cfg Config) prog.Program {
	n := cfg.NLon * cfg.NLat

	return prog.Program{
		Name: fmt.Sprintf("POP-%s-step", cfg.Name),
		Phases: []prog.Phase{
			{
				// Non-vectorized CSHIFTs: the dominant cost.
				Name: "cshift", Parallel: true, Barriers: 1,
				Loops: []prog.Loop{
					{
						// 3-D shifts, one plane per level per trip.
						Trips: int64(cshifts3D) * int64(cfg.NLev),
						Body: []prog.Op{
							{Class: prog.Scalar, Count: cshiftScalarOps * n},
						},
					},
					{
						// 2-D shifts inside the CG solve.
						Trips: 4 * int64(cgIterations),
						Body: []prog.Op{
							{Class: prog.Scalar, Count: cshiftScalarOps * n},
						},
					},
				},
			},
			{
				// Vectorized whole-array arithmetic: long vectors over
				// full horizontal planes.
				Name: "arithmetic", Parallel: true, Barriers: 1,
				Loops: []prog.Loop{
					{
						// Baroclinic momentum and tracer updates.
						Trips: int64(momentumLoops) * int64(cfg.NLev),
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 4 * n, Stride: 1},
							{Class: prog.VMul, VL: n, FlopsPerElem: momentumLoopFlops / 2},
							{Class: prog.VAdd, VL: n, FlopsPerElem: momentumLoopFlops / 2},
							{Class: prog.VStore, VL: n, Stride: 1},
						},
					},
					{
						// Free-surface stencil updates.
						Trips: 8,
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 4 * n, Stride: 1},
							{Class: prog.VMul, VL: n, FlopsPerElem: stencilFlops / 2},
							{Class: prog.VAdd, VL: n, FlopsPerElem: stencilFlops / 2},
							{Class: prog.VStore, VL: n, Stride: 1},
						},
					},
					{
						// CG vector updates and reductions.
						Trips: int64(cgIterations),
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 3 * n, Stride: 1},
							{Class: prog.VMul, VL: n, FlopsPerElem: cgVectorFlops / 2},
							{Class: prog.VAdd, VL: n, FlopsPerElem: cgVectorFlops / 2},
							{Class: prog.VStore, VL: n, Stride: 1},
						},
					},
				},
			},
		},
	}
}

// stepTraces caches the compiled step trace per configuration for the
// read-only run sites. StepTrace itself stays a fresh builder —
// VectorizedCSHIFTSpeedup edits the returned program in place, which
// must never reach a shared copy.
var stepTraces target.TraceCache[Config]

func compiledStepTrace(cfg Config) target.CompiledTrace {
	return stepTraces.Get(cfg, func() prog.Program { return StepTrace(cfg) })
}

// StepFlops returns the credited flops per step.
func StepFlops(cfg Config) int64 { return compiledStepTrace(cfg).Compiled.Flops }

// SustainedMFLOPS returns the single-processor rate of the 2-degree
// benchmark — the paper's 537 MFLOPS observation.
func SustainedMFLOPS(m target.Target) float64 {
	r := compiledStepTrace(TwoDegree).Run(m, target.RunOpts{Procs: 1})
	return r.MFLOPS()
}

// VectorizedCSHIFTSpeedup models the headroom the paper alludes to: if
// CSHIFT vectorized (as a strided vector copy), how much faster would
// the step run?
func VectorizedCSHIFTSpeedup(m target.Target) float64 {
	base := m.Run(StepTrace(TwoDegree), target.RunOpts{Procs: 1}).Seconds

	fixed := StepTrace(TwoDegree)
	n := TwoDegree.NLon * TwoDegree.NLat
	fixed.Phases[0].Loops[0].Body = []prog.Op{
		{Class: prog.VLoad, VL: n, Stride: 1},
		{Class: prog.VStore, VL: n, Stride: 1},
	}
	improved := m.Run(fixed, target.RunOpts{Procs: 1}).Seconds
	return base / improved
}
