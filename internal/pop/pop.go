// Package pop implements the POP benchmark: the Los Alamos Parallel
// Ocean Program (Smith, Dukowicz & Malone), a free-surface ocean model
// that replaces the rigid lid of the Bryan-Cox family with an implicit
// free-surface solve — a preconditioned conjugate-gradient solution of
// an elliptic system each step. The original is Fortran 90 written in
// whole-array style with CSHIFT; this port keeps that operator
// structure (the Shift primitives below) because the paper's
// performance note hinges on it: the pre-release NEC F90 compiler did
// not vectorize CSHIFT, and POP still reached 537 MFLOPS on one SX-4
// processor on the 2-degree problem.
package pop

import (
	"fmt"
	"math"
)

// Config describes a POP configuration (flat bottom).
type Config struct {
	Name       string
	NLon, NLat int
	NLev       int // tracer levels
	DxDeg      float64
}

// TwoDegree is the paper's benchmark configuration.
var TwoDegree = Config{Name: "2-degree", NLon: 180, NLat: 84, NLev: 20, DxDeg: 2}

// Field is a 2-D array on the (periodic-x, walled-y) grid.
type Field struct {
	NX, NY int
	V      []float64
}

// NewField returns a zero field.
func NewField(nx, ny int) *Field { return &Field{NX: nx, NY: ny, V: make([]float64, nx*ny)} }

// At returns the value at (i, j) with x wraparound and y clamping.
func (f *Field) At(i, j int) float64 {
	i = ((i % f.NX) + f.NX) % f.NX
	if j < 0 {
		j = 0
	}
	if j >= f.NY {
		j = f.NY - 1
	}
	return f.V[j*f.NX+i]
}

// ShiftX returns the field circularly shifted by s in x (CSHIFT dim 1).
func (f *Field) ShiftX(s int) *Field {
	out := NewField(f.NX, f.NY)
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			out.V[j*f.NX+i] = f.At(i+s, j)
		}
	}
	return out
}

// ShiftY returns the field shifted by s in y with edge clamping
// (EOSHIFT-with-boundary in the original).
func (f *Field) ShiftY(s int) *Field {
	out := NewField(f.NX, f.NY)
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			out.V[j*f.NX+i] = f.At(i, j+s)
		}
	}
	return out
}

// Copy returns a deep copy.
func (f *Field) Copy() *Field {
	out := NewField(f.NX, f.NY)
	copy(out.V, f.V)
	return out
}

// axpy: f += a*g elementwise.
func (f *Field) axpy(a float64, g *Field) {
	for i := range f.V {
		f.V[i] += a * g.V[i]
	}
}

// dot returns the inner product of two fields.
func dot(a, b *Field) float64 {
	var s float64
	for i := range a.V {
		s += a.V[i] * b.V[i]
	}
	return s
}

// Model is the POP state: free surface, barotropic velocities, and a
// stack of tracer levels.
type Model struct {
	Cfg Config

	Eta  *Field   // free-surface height [m]
	U, V *Field   // barotropic velocities [m/s]
	Temp []*Field // tracer levels

	Depth   float64 // flat-bottom depth [m]
	G       float64
	dx, dy  float64
	CGTol   float64
	CGIters int // iterations used in the last solve
	steps   int
}

// New builds the configuration at rest with a stratified temperature
// stack and a Gaussian free-surface bump (so the gravity-wave tests
// have something to watch).
func New(cfg Config) *Model {
	m := &Model{
		Cfg:   cfg,
		Eta:   NewField(cfg.NLon, cfg.NLat),
		U:     NewField(cfg.NLon, cfg.NLat),
		V:     NewField(cfg.NLon, cfg.NLat),
		Depth: 4000,
		G:     9.80616,
		dx:    cfg.DxDeg * 111e3,
		dy:    cfg.DxDeg * 111e3,
		CGTol: 1e-10,
	}
	for k := 0; k < cfg.NLev; k++ {
		tf := NewField(cfg.NLon, cfg.NLat)
		for j := 0; j < cfg.NLat; j++ {
			latFrac := float64(j) / float64(cfg.NLat-1)
			for i := 0; i < cfg.NLon; i++ {
				tf.V[j*cfg.NLon+i] = (2 + 26*math.Sin(math.Pi*latFrac)) *
					math.Exp(-3*float64(k)/float64(cfg.NLev))
			}
		}
		m.Temp = append(m.Temp, tf)
	}
	// Initial surface bump.
	for j := 0; j < cfg.NLat; j++ {
		for i := 0; i < cfg.NLon; i++ {
			di := float64(i-cfg.NLon/2) / 6
			dj := float64(j-cfg.NLat/2) / 6
			m.Eta.V[j*cfg.NLon+i] = 0.5 * math.Exp(-(di*di + dj*dj))
		}
	}
	return m
}

// laplace applies the 5-point Laplacian in CSHIFT style.
func (m *Model) laplace(f *Field) *Field {
	e := f.ShiftX(1)
	w := f.ShiftX(-1)
	n := f.ShiftY(1)
	s := f.ShiftY(-1)
	out := NewField(f.NX, f.NY)
	for i := range out.V {
		out.V[i] = (e.V[i]+w.V[i]-2*f.V[i])/(m.dx*m.dx) +
			(n.V[i]+s.V[i]-2*f.V[i])/(m.dy*m.dy)
	}
	return out
}

// applyHelmholtz applies the implicit free-surface operator
// A = I - g H dt² ∇² (symmetric positive definite).
func (m *Model) applyHelmholtz(f *Field, dt float64) *Field {
	lap := m.laplace(f)
	out := NewField(f.NX, f.NY)
	c := m.G * m.Depth * dt * dt
	for i := range out.V {
		out.V[i] = f.V[i] - c*lap.V[i]
	}
	return out
}

// SolveFreeSurface solves A eta = rhs by (diagonally preconditioned)
// conjugate gradients and returns the solution and iteration count.
func (m *Model) SolveFreeSurface(rhs *Field, dt float64) (*Field, int) {
	x := rhs.Copy() // warm start
	r := rhs.Copy()
	ax := m.applyHelmholtz(x, dt)
	r.axpy(-1, ax)
	p := r.Copy()
	rr := dot(r, r)
	norm0 := math.Sqrt(dot(rhs, rhs)) + 1e-30
	iters := 0
	for ; iters < 500; iters++ {
		if math.Sqrt(rr)/norm0 < m.CGTol {
			break
		}
		ap := m.applyHelmholtz(p, dt)
		alpha := rr / dot(p, ap)
		x.axpy(alpha, p)
		r.axpy(-alpha, ap)
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p.V {
			p.V[i] = r.V[i] + beta*p.V[i]
		}
	}
	return x, iters
}

// Step advances the model by dt seconds: implicit free surface, then
// velocity update, then tracer advection-diffusion in CSHIFT style.
func (m *Model) Step(dt float64) {
	nx := m.Cfg.NLon
	// RHS of the eta equation: eta^n - dt H div(u).
	ue := m.U.ShiftX(1)
	uw := m.U.ShiftX(-1)
	vn := m.V.ShiftY(1)
	vs := m.V.ShiftY(-1)
	rhs := m.Eta.Copy()
	for i := range rhs.V {
		div := (ue.V[i]-uw.V[i])/(2*m.dx) + (vn.V[i]-vs.V[i])/(2*m.dy)
		rhs.V[i] -= dt * m.Depth * div
	}
	etaNew, iters := m.SolveFreeSurface(rhs, dt)
	m.CGIters = iters

	// Velocity update from the new surface gradient (+ light drag).
	ee := etaNew.ShiftX(1)
	ew := etaNew.ShiftX(-1)
	en := etaNew.ShiftY(1)
	es := etaNew.ShiftY(-1)
	drag := 1 - dt*1e-6
	for i := range m.U.V {
		m.U.V[i] = drag*m.U.V[i] - dt*m.G*(ee.V[i]-ew.V[i])/(2*m.dx)
		m.V.V[i] = drag*m.V.V[i] - dt*m.G*(en.V[i]-es.V[i])/(2*m.dy)
	}
	// Wall the meridional velocity.
	for i := 0; i < nx; i++ {
		m.V.V[i] = 0
		m.V.V[(m.Cfg.NLat-1)*nx+i] = 0
	}
	m.Eta = etaNew

	// Tracers: CSHIFT-style upwind advection + diffusion.
	for k := range m.Temp {
		m.Temp[k] = m.advectTracer(m.Temp[k], dt)
	}
	m.steps++
}

func (m *Model) advectTracer(t *Field, dt float64) *Field {
	e := t.ShiftX(1)
	w := t.ShiftX(-1)
	n := t.ShiftY(1)
	s := t.ShiftY(-1)
	out := t.Copy()
	k := 50.0 // diffusivity
	for i := range out.V {
		adv := m.U.V[i]*(e.V[i]-w.V[i])/(2*m.dx) + m.V.V[i]*(n.V[i]-s.V[i])/(2*m.dy)
		lap := (e.V[i]+w.V[i]-2*t.V[i])/(m.dx*m.dx) + (n.V[i]+s.V[i]-2*t.V[i])/(m.dy*m.dy)
		out.V[i] += dt * (-adv + k*lap)
	}
	return out
}

// MeanEta returns the mean free-surface height (volume proxy).
func (m *Model) MeanEta() float64 {
	var s float64
	for _, v := range m.Eta.V {
		s += v
	}
	return s / float64(len(m.Eta.V))
}

// MaxAbsEta returns the surface amplitude.
func (m *Model) MaxAbsEta() float64 {
	b := 0.0
	for _, v := range m.Eta.V {
		if a := math.Abs(v); a > b {
			b = a
		}
	}
	return b
}

// Steps returns the completed step count.
func (m *Model) Steps() int { return m.steps }

// GravityWaveCFL returns the explicit CFL step the implicit solver is
// allowed to exceed — POP's selling point.
func (m *Model) GravityWaveCFL() float64 {
	return m.dx / math.Sqrt(m.G*m.Depth)
}

func (m *Model) String() string {
	return fmt.Sprintf("POP %s (%dx%d, L%d)", m.Cfg.Name, m.Cfg.NLon, m.Cfg.NLat, m.Cfg.NLev)
}
