// Package paranoia implements the core checks of W. Kahan's PARANOIA
// program: a self-contained interrogation of the host's floating-point
// arithmetic. The SX-4 was benchmarked in IEEE 754 mode and passed;
// the reproduction verifies the same properties of the arithmetic the
// Go port runs on.
//
// Findings are classified, as in the original, into failures, serious
// defects, defects, and flaws. A machine with correct IEEE 754 double
// precision arithmetic reports none of the first three.
package paranoia

import (
	"fmt"
	"math"
)

// Severity classifies a finding.
type Severity int

const (
	// Failure: arithmetic is wrong (e.g. 2+2 != 4).
	Failure Severity = iota
	// SeriousDefect: results unreliable for careful numerical work.
	SeriousDefect
	// Defect: shortcomings that can break robust algorithms.
	Defect
	// Flaw: cosmetic or minor deviations.
	Flaw
)

func (s Severity) String() string {
	switch s {
	case Failure:
		return "FAILURE"
	case SeriousDefect:
		return "SERIOUS DEFECT"
	case Defect:
		return "DEFECT"
	case Flaw:
		return "FLAW"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Finding is one diagnosed problem.
type Finding struct {
	Severity Severity
	Message  string
}

// Report is the outcome of the interrogation.
type Report struct {
	Radix            float64
	Precision        int // significand digits in the radix
	GuardDigit       bool
	RoundsToNearest  bool
	StickyBit        bool
	GradualUnderflow bool
	InfinityOK       bool
	NaNOK            bool
	Findings         []Finding
}

// Pass reports whether the arithmetic is acceptable: no failures,
// serious defects, or defects.
func (r Report) Pass() bool {
	for _, f := range r.Findings {
		if f.Severity != Flaw {
			return false
		}
	}
	return true
}

// Counts returns the number of findings at each severity.
func (r Report) Counts() (failures, serious, defects, flaws int) {
	for _, f := range r.Findings {
		switch f.Severity {
		case Failure:
			failures++
		case SeriousDefect:
			serious++
		case Defect:
			defects++
		case Flaw:
			flaws++
		}
	}
	return
}

func (r *Report) add(s Severity, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{s, fmt.Sprintf(format, args...)})
}

// Run performs the interrogation on float64 arithmetic.
func Run() Report {
	var r Report

	// Small-integer arithmetic must be exact.
	if 2.0+2.0 != 4.0 || 4.0-2.0-2.0 != 0.0 || 1.0*1.0 != 1.0 {
		r.add(Failure, "small integer arithmetic is wrong")
	}
	if 9.0+7.0 != 16.0 || 32.0/2.0 != 16.0 {
		r.add(Failure, "small integer add/divide is wrong")
	}

	// Radix discovery, Malcolm's algorithm: find w = smallest power of
	// 2 with fl(w+1) == w, then radix = fl(w+r)-w for growing r.
	w := 1.0
	for w+1.0-w == 1.0 {
		w *= 2.0
		if math.IsInf(w, 0) {
			r.add(Failure, "radix search diverged")
			return r
		}
	}
	radix := 0.0
	y := 1.0
	for radix == 0.0 {
		radix = w + y - w
		y += 1.0
	}
	r.Radix = radix
	if radix != 2 {
		r.add(Flaw, "radix is %g, not 2", radix)
	}

	// Precision: number of radix digits.
	precision := 0
	p := 1.0
	for p+1.0-p == 1.0 {
		p *= radix
		precision++
	}
	r.Precision = precision
	if radix == 2 && precision != 53 {
		r.add(Defect, "binary precision is %d digits, not 53 (IEEE double)", precision)
	}

	// Guard digit in subtraction: (1+ulp) - 1 must be ulp, and
	// 1 - (1-ulp/radix) must not lose the difference.
	ulp := math.Nextafter(1.0, 2.0) - 1.0
	if (1.0+ulp)-1.0 != ulp {
		r.add(SeriousDefect, "subtraction lacks a guard digit")
	} else {
		r.GuardDigit = true
	}

	// Rounding: must be to nearest (even). 1 + ulp/2 rounds to 1;
	// 1 + 3*ulp/2 rounds up to 1+2*ulp under round-to-nearest-even.
	half := ulp / 2
	roundsNearest := (1.0+half) == 1.0 && (1.0+3*half) == 1.0+2*ulp
	r.RoundsToNearest = roundsNearest
	if !roundsNearest {
		r.add(Defect, "multiplication/addition do not round to nearest even")
	}

	// Sticky bit: rounding must see bits beyond the guard digit:
	// (1 + ulp*0.50000000001) should round up, not to 1.
	sticky := 1.0+half*(1+1e-11) != 1.0
	r.StickyBit = sticky
	if !sticky {
		r.add(Flaw, "rounding appears to ignore the sticky bit")
	}

	// Gradual underflow (denormals).
	tiny := math.SmallestNonzeroFloat64
	if tiny == 0 || tiny/2 < 0 {
		r.add(Defect, "no gradual underflow")
	} else if tiny > 0 && tiny/2 == 0 && tiny != math.SmallestNonzeroFloat64*2/2 {
		r.add(Defect, "denormal arithmetic inconsistent")
	} else {
		r.GradualUnderflow = true
	}
	den := math.Float64frombits(1) // smallest denormal
	if den <= 0 || den*2/2 != den {
		r.add(Defect, "denormal arithmetic loses values")
		r.GradualUnderflow = false
	}

	// Overflow saturates to infinity and infinity arithmetic behaves.
	huge := math.MaxFloat64
	inf := huge * 2
	if !math.IsInf(inf, 1) {
		r.add(Defect, "overflow does not produce +Inf")
	} else if inf+huge != inf || 1/inf != 0 {
		r.add(Defect, "infinity arithmetic misbehaves")
	} else {
		r.InfinityOK = true
	}

	// NaN: 0/0 produces NaN; NaN != NaN.
	nan := math.NaN()
	if nan == nan || !(math.IsNaN(nan + 1)) {
		r.add(Defect, "NaN comparison or propagation is wrong")
	} else {
		r.NaNOK = true
	}

	// Division identities: x/x == 1 for a spread of values.
	for _, x := range []float64{3, 7, 1e10, 1e-10, math.Pi} {
		if x/x != 1.0 {
			r.add(SeriousDefect, "x/x != 1 for x=%g", x)
		}
	}
	// Multiplication commutes on sampled values.
	xs := []float64{1.5, math.Pi, 1e100, 3e-7, 0.1}
	for _, a := range xs {
		for _, b := range xs {
			if a*b != b*a {
				r.add(Defect, "multiplication does not commute for %g,%g", a, b)
			}
		}
	}
	// sqrt exactness on perfect squares.
	for _, q := range []float64{4, 9, 16, 1 << 20} {
		if math.Sqrt(q) != math.Sqrt(q) || math.Sqrt(q)*math.Sqrt(q) != q {
			r.add(Defect, "sqrt(%g) is not exact", q)
		}
	}
	return r
}

// Summary renders the report in PARANOIA's closing style.
func (r Report) Summary() string {
	f, s, d, fl := r.Counts()
	if f == 0 && s == 0 && d == 0 && fl == 0 {
		return fmt.Sprintf("No failures, defects nor flaws have been discovered.\n"+
			"Rounding appears to conform to the IEEE standard (radix %g, %d significant digits).",
			r.Radix, r.Precision)
	}
	return fmt.Sprintf("The arithmetic diagnosed has: %d failures, %d serious defects, %d defects, %d flaws.",
		f, s, d, fl)
}
