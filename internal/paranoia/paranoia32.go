package paranoia

import "math"

// Run32 interrogates the 32-bit (single precision) format — the SX-4's
// vector and scalar units support 32-bit IEEE operands alongside the
// 64-bit ones, and the benchmark's correctness category covers both
// widths. Go evaluates float32 expressions in float32, so the checks
// probe the host's single-precision behaviour directly.
func Run32() Report {
	var r Report

	f32 := func(x float64) float32 { return float32(x) }
	if f32(2)+f32(2) != 4 || f32(9)*f32(3) != 27 {
		r.add(Failure, "32-bit small-integer arithmetic is wrong")
	}

	// Radix and precision via Malcolm's algorithm in float32.
	w := float32(1)
	for w+1-w == 1 {
		w *= 2
		if math.IsInf(float64(w), 0) {
			r.add(Failure, "32-bit radix search diverged")
			return r
		}
	}
	var radix float32
	y := float32(1)
	for radix == 0 {
		radix = w + y - w
		y++
	}
	r.Radix = float64(radix)
	if radix != 2 {
		r.add(Flaw, "32-bit radix is %g", radix)
	}
	precision := 0
	p := float32(1)
	for p+1-p == 1 {
		p *= radix
		precision++
	}
	r.Precision = precision
	if radix == 2 && precision != 24 {
		r.add(Defect, "32-bit precision is %d digits, not 24 (IEEE single)", precision)
	}

	// Guard digit and rounding.
	ulp := math.Nextafter32(1, 2) - 1
	if (1+ulp)-1 != ulp {
		r.add(SeriousDefect, "32-bit subtraction lacks a guard digit")
	} else {
		r.GuardDigit = true
	}
	half := ulp / 2
	if (1+half) == 1 && (1+3*half) == 1+2*ulp {
		r.RoundsToNearest = true
	} else {
		r.add(Defect, "32-bit rounding is not to nearest even")
	}
	r.StickyBit = 1+half*(1+1e-5) != 1
	if !r.StickyBit {
		r.add(Flaw, "32-bit rounding ignores the sticky bit")
	}

	// Gradual underflow.
	tiny := math.Float32frombits(1)
	if tiny <= 0 || tiny*2/2 != tiny {
		r.add(Defect, "32-bit denormals misbehave")
	} else {
		r.GradualUnderflow = true
	}

	// Overflow and special values.
	huge := math.MaxFloat32
	inf := float32(huge) * 2
	if !math.IsInf(float64(inf), 1) {
		r.add(Defect, "32-bit overflow does not produce +Inf")
	} else {
		r.InfinityOK = true
	}
	nan := float32(math.NaN())
	if nan == nan {
		r.add(Defect, "32-bit NaN compares equal to itself")
	} else {
		r.NaNOK = true
	}

	// x/x == 1.
	for _, x := range []float32{3, 7, 1e10, 1e-10} {
		if x/x != 1 {
			r.add(SeriousDefect, "32-bit x/x != 1 for x=%g", x)
		}
	}
	return r
}
