package paranoia

import (
	"strings"
	"testing"
)

func TestIEEEHostPasses(t *testing.T) {
	r := Run()
	if !r.Pass() {
		for _, f := range r.Findings {
			t.Errorf("finding: [%v] %s", f.Severity, f.Message)
		}
	}
}

func TestDiscoveredProperties(t *testing.T) {
	r := Run()
	if r.Radix != 2 {
		t.Errorf("radix = %v, want 2", r.Radix)
	}
	if r.Precision != 53 {
		t.Errorf("precision = %d, want 53", r.Precision)
	}
	if !r.GuardDigit {
		t.Error("guard digit not detected")
	}
	if !r.RoundsToNearest {
		t.Error("round-to-nearest not detected")
	}
	if !r.StickyBit {
		t.Error("sticky bit not detected")
	}
	if !r.GradualUnderflow {
		t.Error("gradual underflow not detected")
	}
	if !r.InfinityOK || !r.NaNOK {
		t.Error("IEEE special values misbehave")
	}
}

func TestIEEEHost32Passes(t *testing.T) {
	r := Run32()
	if !r.Pass() {
		for _, f := range r.Findings {
			t.Errorf("32-bit finding: [%v] %s", f.Severity, f.Message)
		}
	}
	if r.Radix != 2 {
		t.Errorf("32-bit radix = %v", r.Radix)
	}
	if r.Precision != 24 {
		t.Errorf("32-bit precision = %d, want 24", r.Precision)
	}
	if !r.GuardDigit || !r.RoundsToNearest || !r.GradualUnderflow {
		t.Error("32-bit IEEE properties not detected")
	}
	if !r.InfinityOK || !r.NaNOK {
		t.Error("32-bit special values misbehave")
	}
}

func TestBothWidthsAgreeOnRadix(t *testing.T) {
	// The SX-4's hardware used one arithmetic for all widths; both
	// formats must report binary.
	if Run().Radix != Run32().Radix {
		t.Error("32- and 64-bit formats disagree on radix")
	}
}

func TestCounts(t *testing.T) {
	r := Report{Findings: []Finding{
		{Failure, "a"}, {Defect, "b"}, {Defect, "c"}, {Flaw, "d"},
	}}
	f, s, d, fl := r.Counts()
	if f != 1 || s != 0 || d != 2 || fl != 1 {
		t.Errorf("Counts = %d,%d,%d,%d", f, s, d, fl)
	}
	if r.Pass() {
		t.Error("report with a failure passed")
	}
}

func TestFlawsStillPass(t *testing.T) {
	r := Report{Findings: []Finding{{Flaw, "cosmetic"}}}
	if !r.Pass() {
		t.Error("flaw-only report should pass")
	}
}

func TestSummary(t *testing.T) {
	clean := Run()
	s := clean.Summary()
	if !strings.Contains(s, "IEEE") && !strings.Contains(s, "failures") {
		t.Errorf("unexpected summary: %s", s)
	}
	dirty := Report{Findings: []Finding{{SeriousDefect, "x"}}}
	if !strings.Contains(dirty.Summary(), "1 serious defects") {
		t.Errorf("dirty summary: %s", dirty.Summary())
	}
}

func TestSeverityStrings(t *testing.T) {
	if Failure.String() != "FAILURE" || Flaw.String() != "FLAW" {
		t.Error("severity names wrong")
	}
	if !strings.Contains(Severity(9).String(), "9") {
		t.Error("unknown severity should show number")
	}
}
