package linpack

import (
	"math"
	"testing"

	"sx4bench/internal/sx4"
)

func TestSolve100(t *testing.T) {
	m, b := NewRandom(100, 1)
	orig := &Matrix{N: m.N, A: append([]float64(nil), m.A...)}
	bOrig := append([]float64(nil), b...)
	ipvt, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	m.Solve(ipvt, b)
	// Solution should be ones.
	for i, x := range b {
		if math.Abs(x-1) > 1e-8 {
			t.Fatalf("x[%d] = %v, want 1", i, x)
		}
	}
	if r := Residual(orig, b, bOrig); r > 10 {
		t.Errorf("normalized residual = %v, want O(1)", r)
	}
}

func TestSolve1000(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1000 factorization in -short mode")
	}
	m, b := NewRandom(1000, 2)
	orig := &Matrix{N: m.N, A: append([]float64(nil), m.A...)}
	bOrig := append([]float64(nil), b...)
	ipvt, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	m.Solve(ipvt, b)
	if r := Residual(orig, b, bOrig); r > 50 {
		t.Errorf("normalized residual = %v", r)
	}
}

func TestSingularDetected(t *testing.T) {
	m := &Matrix{N: 3, A: make([]float64, 9)} // all zeros
	if _, err := m.Factor(); err == nil {
		t.Error("singular matrix factored")
	}
}

func TestPivotingHandlesZeroDiagonal(t *testing.T) {
	// [[0,1],[1,0]] x = b requires pivoting.
	m := &Matrix{N: 2, A: []float64{0, 1, 1, 0}} // column-major
	b := []float64{2, 3}
	ipvt, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	m.Solve(ipvt, b)
	// A = [[0,1],[1,0]]: x = [3, 2].
	if math.Abs(b[0]-3) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", b)
	}
}

func TestFlopsFormula(t *testing.T) {
	if got := Flops(100); math.Abs(got-(2e6/3+2e4)) > 1 {
		t.Errorf("Flops(100) = %v", got)
	}
}

func TestLINPACKRunsNearPeak(t *testing.T) {
	// The paper's point about LINPACK: it measures peak-ish speed.
	// LINPACK 1000 on the SX-4 model should far outrun every climate
	// code (RADABS sits at ~866 MFLOPS).
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	mf1000 := MFLOPS(m, 1000)
	if mf1000 < 1000 || mf1000 > 1800 {
		t.Errorf("LINPACK-1000 = %.0f MFLOPS, want within [1000, 1800] (peak 1739)", mf1000)
	}
	mf100 := MFLOPS(m, 100)
	if mf100 >= mf1000 {
		t.Errorf("LINPACK-100 (%.0f) should trail LINPACK-1000 (%.0f): short vectors", mf100, mf1000)
	}
}
