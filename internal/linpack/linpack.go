// Package linpack implements the LINPACK benchmark: factor and solve a
// dense system by Gaussian elimination with partial pivoting (the
// DGEFA/DGESL pair), at the benchmark orders n=100 and n=1000. Section
// 3.1 of the paper explains why this "tends to measure peak
// performance" and was therefore insufficient for the NCAR procurement;
// the trace here reproduces that: on the SX-4 model LINPACK 1000 runs
// far closer to peak than any climate code.
package linpack

import (
	"fmt"
	"math"
	"math/rand"

	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// Matrix is a dense column-major n x n matrix.
type Matrix struct {
	N int
	A []float64
}

// NewRandom returns the benchmark's random matrix and right-hand side
// with the solution vector of all ones.
func NewRandom(n int, seed int64) (*Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	m := &Matrix{N: n, A: make([]float64, n*n)}
	for i := range m.A {
		m.A[i] = rng.Float64() - 0.5
	}
	// b = A * ones.
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += m.at(i, j)
		}
		b[i] = s
	}
	return m, b
}

func (m *Matrix) at(i, j int) float64 { return m.A[j*m.N+i] }

// Factor performs in-place LU factorization with partial pivoting
// (DGEFA), returning the pivot vector, or an error on singularity.
func (m *Matrix) Factor() ([]int, error) {
	n := m.N
	ipvt := make([]int, n)
	for k := 0; k < n-1; k++ {
		// Pivot search in column k.
		p := k
		maxv := math.Abs(m.A[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.A[k*n+i]); v > maxv {
				maxv, p = v, i
			}
		}
		ipvt[k] = p
		if maxv == 0 {
			return nil, fmt.Errorf("linpack: singular at column %d", k)
		}
		if p != k {
			for j := k; j < n; j++ {
				m.A[j*n+p], m.A[j*n+k] = m.A[j*n+k], m.A[j*n+p]
			}
		}
		// Compute multipliers and eliminate (daxpy on columns).
		pivInv := 1 / m.A[k*n+k]
		for i := k + 1; i < n; i++ {
			m.A[k*n+i] *= pivInv
		}
		for j := k + 1; j < n; j++ {
			t := m.A[j*n+k]
			if t == 0 {
				continue
			}
			col := m.A[j*n:]
			mul := m.A[k*n:]
			for i := k + 1; i < n; i++ {
				col[i] -= t * mul[i]
			}
		}
	}
	ipvt[n-1] = n - 1
	if m.A[(n-1)*n+n-1] == 0 {
		return nil, fmt.Errorf("linpack: singular at last column")
	}
	return ipvt, nil
}

// Solve back-substitutes (DGESL) using the factorization in place.
func (m *Matrix) Solve(ipvt []int, b []float64) {
	n := m.N
	// Forward elimination: apply L and pivots.
	for k := 0; k < n-1; k++ {
		p := ipvt[k]
		t := b[p]
		if p != k {
			b[p], b[k] = b[k], t
		}
		for i := k + 1; i < n; i++ {
			b[i] -= t * m.A[k*n+i]
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		b[k] /= m.A[k*n+k]
		t := b[k]
		for i := 0; i < k; i++ {
			b[i] -= t * m.A[k*n+i]
		}
	}
}

// Residual returns the normalized residual ||Ax-b|| / (||A|| ||x|| n eps)
// the benchmark uses as its correctness check.
func Residual(orig *Matrix, x, b []float64) float64 {
	n := orig.N
	var normA, normX, maxR float64
	for _, v := range orig.A {
		if a := math.Abs(v); a > normA {
			normA = a
		}
	}
	for _, v := range x {
		if a := math.Abs(v); a > normX {
			normX = a
		}
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += orig.at(i, j) * x[j]
		}
		if r := math.Abs(s - b[i]); r > maxR {
			maxR = r
		}
	}
	eps := 2.220446049250313e-16
	return maxR / (normA * normX * float64(n) * eps)
}

// Flops returns the nominal LINPACK operation count 2n³/3 + 2n².
func Flops(n int) float64 { return 2.0*float64(n)*float64(n)*float64(n)/3 + 2*float64(n)*float64(n) }

// Trace builds the machine trace of the factorization: for each column
// k, a pivot search (scalar-ish reduction), a scale, and n-k-1 daxpy
// updates of vector length n-k-1.
func Trace(n int) prog.Program {
	var loops []prog.Loop
	// Group columns into bands so the trace stays compact while
	// preserving the shrinking vector lengths.
	const bands = 32
	for b := 0; b < bands; b++ {
		kLo := n * b / bands
		kHi := n * (b + 1) / bands
		cols := kHi - kLo
		if cols <= 0 {
			continue
		}
		vl := n - (kLo+kHi)/2 // representative remaining length
		if vl < 1 {
			vl = 1
		}
		loops = append(loops,
			prog.Loop{ // pivot search + scale per column
				Trips: int64(cols),
				Body: []prog.Op{
					{Class: prog.VLoad, VL: vl, Stride: 1},
					{Class: prog.VLogical, VL: vl}, // max reduction
					{Class: prog.VMul, VL: vl},
				},
			},
			prog.Loop{ // rank-1 updates, unrolled 4 columns per trip:
				// the multiplier vector stays in registers, so 4
				// column loads + 4 stores carry 8 flops per element.
				Trips: int64(cols) * int64((vl+3)/4),
				Body: []prog.Op{
					{Class: prog.VLoad, VL: vl, Stride: 1}, // multipliers (reused)
					{Class: prog.VLoad, VL: 4 * vl, Stride: 1},
					{Class: prog.VMul, VL: vl, FlopsPerElem: 4},
					{Class: prog.VAdd, VL: vl, FlopsPerElem: 4},
					{Class: prog.VStore, VL: 4 * vl, Stride: 1},
				},
			},
		)
	}
	return prog.Program{
		Name:   fmt.Sprintf("LINPACK-%d", n),
		Phases: []prog.Phase{{Name: "dgefa", Parallel: true, Loops: loops}},
	}
}

// traces caches the compiled factorization trace per order: the
// comparison tables re-time the same orders on every machine.
var traces target.TraceCache[int]

// MFLOPS models the benchmark rate on a machine at order n.
func MFLOPS(m target.Target, n int) float64 {
	ct := traces.Get(n, func() prog.Program { return Trace(n) })
	r := ct.Run(m, target.RunOpts{Procs: 1})
	return Flops(n) / r.Seconds / 1e6
}
