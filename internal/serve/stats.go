package serve

import "sync/atomic"

// serverStats holds the daemon's lifetime counters. Every run query is
// classified exactly one way — cache hit, coalesced into an in-flight
// identical query, or executed — so hits+coalesced+executed equals the
// query count and the coalescing tests can assert executed < queries.
type serverStats struct {
	requests   atomic.Uint64 // HTTP requests accepted by any handler
	runQueries atomic.Uint64 // individual run queries (POST /v1/run + sweep lines)
	sweepLines atomic.Uint64 // NDJSON lines consumed by POST /v1/sweep
	hits       atomic.Uint64 // queries answered from the response cache
	coalesced  atomic.Uint64 // queries that shared an in-flight execution
	executed   atomic.Uint64 // queries that ran the simulation
	errors     atomic.Uint64 // queries and requests answered with an error
	latencyUS  atomic.Int64  // summed handler wall time, microseconds

	capacityQueries atomic.Uint64 // fleet capacity queries (POST /v1/capacity)
	capacityJobs    atomic.Uint64 // jobs simulated by executed capacity queries
}

// Stats is the JSON shape of GET /v1/stats: the daemon's counters plus
// a snapshot of the response cache and the aggregated timing-memo
// counters of every machine instance the daemon has built. Hit rate is
// over run queries (hits / (hits + coalesced + executed)); coalesced
// queries are not cache hits — the bytes had not been stored yet when
// they arrived.
type Stats struct {
	Requests     uint64 `json:"requests"`
	RunQueries   uint64 `json:"run_queries"`
	SweepLines   uint64 `json:"sweep_lines"`
	CacheHits    uint64 `json:"cache_hits"`
	Coalesced    uint64 `json:"coalesced"`
	RunsExecuted uint64 `json:"runs_executed"`
	Errors       uint64 `json:"errors"`

	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// MemoHits/MemoMisses/MemoEntries aggregate the per-target timing
	// memos (the layer below the response cache: op-trace timings
	// shared across queries that differ in benchmark list or fault
	// schedule but replay common traces).
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	MemoEntries int    `json:"memo_entries"`

	// The fleet capacity counters: queries answered, jobs simulated by
	// executed queries, and the scenario-level memo's activity (the
	// cache below the response cache — scenarios run cold versus served
	// from the memo across overlapping capacity queries).
	CapacityQueries      uint64 `json:"capacity_queries"`
	CapacityJobs         uint64 `json:"capacity_jobs_simulated"`
	CapacityScenariosRun uint64 `json:"capacity_scenarios_run"`
	CapacityScenarioHits uint64 `json:"capacity_scenario_cache_hits"`

	LatencyTotalMS float64 `json:"latency_total_ms"`
	Machines       int     `json:"machines"`
}

// snapshot folds the counters into the wire shape. Cache entry counts
// and memo aggregates are supplied by the server, which owns those
// structures.
func (s *serverStats) snapshot() Stats {
	out := Stats{
		Requests:     s.requests.Load(),
		RunQueries:   s.runQueries.Load(),
		SweepLines:   s.sweepLines.Load(),
		CacheHits:    s.hits.Load(),
		Coalesced:    s.coalesced.Load(),
		RunsExecuted: s.executed.Load(),
		Errors:       s.errors.Load(),

		CapacityQueries: s.capacityQueries.Load(),
		CapacityJobs:    s.capacityJobs.Load(),
	}
	out.LatencyTotalMS = float64(s.latencyUS.Load()) / 1e3
	if total := out.CacheHits + out.Coalesced + out.RunsExecuted; total > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(total)
	}
	return out
}
