package serve

import "sync/atomic"

// serverStats holds the daemon's lifetime counters. Every run query is
// classified exactly one way — cache hit, coalesced into an in-flight
// identical query, or executed — so hits+coalesced+executed equals the
// query count and the coalescing tests can assert executed < queries.
// The admission counters obey their own balance: every execution
// attempt is exactly one of admitted, shed, timed out or cancelled,
// and every admitted execution completes — the invariants the chaos
// soak asserts after quiescence.
type serverStats struct {
	requests   atomic.Uint64 // HTTP requests accepted by any handler
	runQueries atomic.Uint64 // individual run queries (POST /v1/run + sweep lines)
	sweepLines atomic.Uint64 // NDJSON lines consumed by POST /v1/sweep
	hits       atomic.Uint64 // queries answered from the response cache
	coalesced  atomic.Uint64 // queries that shared an in-flight execution
	executed   atomic.Uint64 // queries that ran the simulation
	errors     atomic.Uint64 // queries and requests answered with an error
	latencyUS  atomic.Int64  // summed handler wall time, microseconds

	// Admission accounting: admitRequests = admitted + shed +
	// queueTimeouts + queueCancelled, and admitted = completed +
	// in-flight gauge.
	admitRequests  atomic.Uint64 // executions that asked for admission
	admitted       atomic.Uint64 // executions granted a slot
	shed           atomic.Uint64 // arrivals dropped on a full queue
	queueTimeouts  atomic.Uint64 // waits expired by the queue-wait deadline
	queueCancelled atomic.Uint64 // waits abandoned by the client
	completed      atomic.Uint64 // admitted executions finished (either way)
	execCancelled  atomic.Uint64 // executions abandoned mid-measurement by a dead context
	sweepAborts    atomic.Uint64 // sweep streams stopped by client disconnect

	capacityQueries atomic.Uint64 // fleet capacity queries (POST /v1/capacity)
	capacityJobs    atomic.Uint64 // jobs simulated by executed capacity queries
}

// restore seeds the lifetime counters from a warm-start snapshot, so a
// restarted daemon's books continue where the previous process left
// off instead of resetting to zero. Called before serving begins.
func (s *serverStats) restore(c StatCounters) {
	s.requests.Store(c.Requests)
	s.runQueries.Store(c.RunQueries)
	s.sweepLines.Store(c.SweepLines)
	s.hits.Store(c.CacheHits)
	s.coalesced.Store(c.Coalesced)
	s.executed.Store(c.RunsExecuted)
	s.errors.Store(c.Errors)
	s.admitRequests.Store(c.AdmitRequests)
	s.admitted.Store(c.Admitted)
	s.shed.Store(c.Shed)
	s.queueTimeouts.Store(c.QueueTimeouts)
	s.queueCancelled.Store(c.QueueCancelled)
	s.completed.Store(c.Completed)
	s.execCancelled.Store(c.ExecCancelled)
	s.sweepAborts.Store(c.SweepAborts)
	s.capacityQueries.Store(c.CapacityQueries)
	s.capacityJobs.Store(c.CapacityJobs)
}

// counters snapshots the raw counter values (the persisted subset).
func (s *serverStats) counters() StatCounters {
	return StatCounters{
		Requests:        s.requests.Load(),
		RunQueries:      s.runQueries.Load(),
		SweepLines:      s.sweepLines.Load(),
		CacheHits:       s.hits.Load(),
		Coalesced:       s.coalesced.Load(),
		RunsExecuted:    s.executed.Load(),
		Errors:          s.errors.Load(),
		AdmitRequests:   s.admitRequests.Load(),
		Admitted:        s.admitted.Load(),
		Shed:            s.shed.Load(),
		QueueTimeouts:   s.queueTimeouts.Load(),
		QueueCancelled:  s.queueCancelled.Load(),
		Completed:       s.completed.Load(),
		ExecCancelled:   s.execCancelled.Load(),
		SweepAborts:     s.sweepAborts.Load(),
		CapacityQueries: s.capacityQueries.Load(),
		CapacityJobs:    s.capacityJobs.Load(),
	}
}

// StatCounters is the portable form of the lifetime counters: what the
// cache snapshot persists, so the books survive a restart.
type StatCounters struct {
	Requests        uint64
	RunQueries      uint64
	SweepLines      uint64
	CacheHits       uint64
	Coalesced       uint64
	RunsExecuted    uint64
	Errors          uint64
	AdmitRequests   uint64
	Admitted        uint64
	Shed            uint64
	QueueTimeouts   uint64
	QueueCancelled  uint64
	Completed       uint64
	ExecCancelled   uint64
	SweepAborts     uint64
	CapacityQueries uint64
	CapacityJobs    uint64
}

// Stats is the JSON shape of GET /v1/stats: the daemon's counters plus
// a snapshot of the response cache and the aggregated timing-memo
// counters of every machine instance the daemon has built. Hit rate is
// over run queries (hits / (hits + coalesced + executed)); coalesced
// queries are not cache hits — the bytes had not been stored yet when
// they arrived.
type Stats struct {
	Requests     uint64 `json:"requests"`
	RunQueries   uint64 `json:"run_queries"`
	SweepLines   uint64 `json:"sweep_lines"`
	CacheHits    uint64 `json:"cache_hits"`
	Coalesced    uint64 `json:"coalesced"`
	RunsExecuted uint64 `json:"runs_executed"`
	Errors       uint64 `json:"errors"`

	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// The admission-control books. QueueDepth and InFlight are
	// instantaneous gauges; the rest are lifetime counters satisfying
	// admit_requests = admitted + shed + queue_timeouts +
	// queue_cancelled and admitted = completed + in_flight.
	QueueDepth     int    `json:"queue_depth"`
	InFlight       int    `json:"in_flight"`
	AdmitRequests  uint64 `json:"admit_requests"`
	Admitted       uint64 `json:"admitted"`
	Shed           uint64 `json:"shed"`
	QueueTimeouts  uint64 `json:"queue_timeouts"`
	QueueCancelled uint64 `json:"queue_cancelled"`
	Completed      uint64 `json:"completed"`
	ExecCancelled  uint64 `json:"exec_cancelled"`
	SweepAborts    uint64 `json:"sweep_aborts"`

	// Warm-start provenance: whether this process booted from a cache
	// snapshot, and how many response entries it restored.
	WarmStart       bool `json:"warm_start"`
	RestoredEntries int  `json:"restored_entries"`

	// MemoHits/MemoMisses/MemoEntries aggregate the per-target timing
	// memos (the layer below the response cache: op-trace timings
	// shared across queries that differ in benchmark list or fault
	// schedule but replay common traces).
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	MemoEntries int    `json:"memo_entries"`

	// The fleet capacity counters: queries answered, jobs simulated by
	// executed queries, and the scenario-level memo's activity (the
	// cache below the response cache — scenarios run cold versus served
	// from the memo across overlapping capacity queries).
	CapacityQueries      uint64 `json:"capacity_queries"`
	CapacityJobs         uint64 `json:"capacity_jobs_simulated"`
	CapacityScenariosRun uint64 `json:"capacity_scenarios_run"`
	CapacityScenarioHits uint64 `json:"capacity_scenario_cache_hits"`

	LatencyTotalMS float64 `json:"latency_total_ms"`
	Machines       int     `json:"machines"`
}

// snapshot folds the counters into the wire shape. Cache entry counts,
// gauges and memo aggregates are supplied by the server, which owns
// those structures.
func (s *serverStats) snapshot() Stats {
	c := s.counters()
	out := Stats{
		Requests:     c.Requests,
		RunQueries:   c.RunQueries,
		SweepLines:   c.SweepLines,
		CacheHits:    c.CacheHits,
		Coalesced:    c.Coalesced,
		RunsExecuted: c.RunsExecuted,
		Errors:       c.Errors,

		AdmitRequests:  c.AdmitRequests,
		Admitted:       c.Admitted,
		Shed:           c.Shed,
		QueueTimeouts:  c.QueueTimeouts,
		QueueCancelled: c.QueueCancelled,
		Completed:      c.Completed,
		ExecCancelled:  c.ExecCancelled,
		SweepAborts:    c.SweepAborts,

		CapacityQueries: c.CapacityQueries,
		CapacityJobs:    c.CapacityJobs,
	}
	out.LatencyTotalMS = float64(s.latencyUS.Load()) / 1e3
	if total := out.CacheHits + out.Coalesced + out.RunsExecuted; total > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(total)
	}
	return out
}
