// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// daemon that answers NCAR-suite queries (suite × machine × fault
// seed) from the deterministic models below it. Because every result
// is a pure function of (machine configuration, benchmark list, cpus,
// fault schedule), responses are content-addressed: the daemon caches
// the exact response bytes under a fingerprint of the canonical query
// and the target configuration, coalesces identical in-flight queries
// into one execution, and serves repeats byte-identically forever.
// Cache state travels in the X-Sx4d-Cache header — never the body —
// so hits, coalesced answers and fresh executions are
// indistinguishable on the wire.
//
// The package speaks to the machines only through the target registry,
// the ncar measurement entry points and the fleet capacity engine; it
// never imports a concrete machine package (the layering analyzer pins
// this).
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sx4bench/internal/benchjson"
	"sx4bench/internal/fault"
	"sx4bench/internal/fleet"
	"sx4bench/internal/ncar"
	"sx4bench/internal/target"
)

// Config carries the daemon's operating limits. The zero value is
// usable: sensible bounds, no request deadline, and a frozen clock.
type Config struct {
	// MaxConcurrent bounds simultaneous simulation executions across
	// all endpoints (cache hits and coalesced followers are not
	// counted — they do no simulation work). 0 means
	// DefaultMaxConcurrent.
	MaxConcurrent int
	// RunConcurrent, SweepConcurrent and CapacityConcurrent are the
	// per-endpoint execution budgets under MaxConcurrent: how much of
	// the engine each class of query may occupy at once. Zero values
	// derive from MaxConcurrent — the full cap for cheap /v1/run
	// queries, half for /v1/sweep lines, a quarter for /v1/capacity
	// Monte Carlos — so under overload the interactive endpoint
	// degrades last.
	RunConcurrent      int
	SweepConcurrent    int
	CapacityConcurrent int
	// QueueDepth bounds each class's admission wait queue; arrivals
	// past it are shed immediately with 503 + Retry-After. 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// QueueWait bounds how long one query may wait in the admission
	// queue before it is timed out with 503 + Retry-After; 0 means the
	// request context alone governs the wait.
	QueueWait time.Duration
	// MaxBodyBytes bounds a request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// RequestTimeout bounds one run query's wall time; 0 means no
	// deadline.
	RequestTimeout time.Duration
	// Now supplies wall-clock readings for the latency counters. The
	// models never read the clock (determinism), so the daemon takes
	// it as an input too: cmd/sx4d passes time.Now, tests pass a fake,
	// and nil freezes latency at zero.
	Now func() time.Time
}

// Default operating limits.
const (
	DefaultMaxConcurrent = 8
	DefaultMaxBodyBytes  = 1 << 20
	DefaultQueueDepth    = 64
)

// Server answers simulation queries over HTTP. Create with New; the
// Server is an http.Handler safe for concurrent use.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	admit  *admitter
	cache  target.FPCache[[]byte]
	flight flightGroup
	stats  serverStats
	// capacity is the daemon-lifetime fleet Monte Carlo engine: its
	// per-scenario memo sits below the response cache, so capacity
	// queries over overlapping scenario sets re-simulate only what no
	// earlier query ran.
	capacity fleet.Engine

	// warmStart/restoredEntries/restoredMemo record snapshot
	// provenance: set once at boot by LoadSnapshot, before the server
	// handles traffic. restoredMemo is the previous lives' memo books,
	// folded into /v1/stats and the next snapshot so the ledger stays
	// continuous across restarts.
	warmStart       bool
	restoredEntries int
	restoredMemo    []MemoStat

	mu      sync.Mutex
	targets map[string]target.Target // one shared instance per machine, memo warm across queries
}

// New builds a Server from cfg, normalizing zero limits to defaults.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RunConcurrent <= 0 {
		cfg.RunConcurrent = cfg.MaxConcurrent
	}
	if cfg.SweepConcurrent <= 0 {
		cfg.SweepConcurrent = max(1, cfg.MaxConcurrent/2)
	}
	if cfg.CapacityConcurrent <= 0 {
		cfg.CapacityConcurrent = max(1, cfg.MaxConcurrent/4)
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		admit: newAdmitter(cfg.MaxConcurrent, cfg.QueueDepth, [numClasses]int{
			classRun:      cfg.RunConcurrent,
			classSweep:    cfg.SweepConcurrent,
			classCapacity: cfg.CapacityConcurrent,
		}),
		targets: make(map[string]target.Target),
	}
	s.mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	s.mux.HandleFunc("GET /v1/machines", s.instrument(s.handleMachines))
	s.mux.HandleFunc("GET /v1/stats", s.instrument(s.handleStats))
	s.mux.HandleFunc("POST /v1/run", s.instrument(s.handleRun))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument(s.handleSweep))
	s.mux.HandleFunc("POST /v1/capacity", s.instrument(s.handleCapacity))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// now reads the injected clock, or reports the zero time when none was
// configured (latency counters then stay at zero).
func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Time{}
}

// instrument wraps a handler with the request counter and the summed
// latency clock.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		start := s.now()
		h(w, r)
		s.stats.latencyUS.Add(s.now().Sub(start).Microseconds())
	}
}

// httpError is an error with a wire status. answer and the handlers
// pass these up; anything else renders as 500. retryAfter, when
// nonzero, becomes a Retry-After header — every 503 carries one, so a
// well-behaved client (internal/client) backs off instead of retrying
// hot. admitOutcome classifies admission failures for the counters.
type httpError struct {
	code         int
	err          error
	retryAfter   int // seconds; 0 = no header
	admitOutcome admitOutcome
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func failf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, err: fmt.Errorf(format, args...)}
}

// unavailablef is failf for 503s: every service-unavailable answer
// must tell the client when to come back.
func unavailablef(retryAfter int, format string, args ...any) *httpError {
	e := failf(http.StatusServiceUnavailable, format, args...)
	e.retryAfter = retryAfter
	return e
}

// writeError renders an error as the {"error": ...} JSON shape with
// its wire status, counting it.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.stats.errors.Add(1)
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
		}
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(body, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// MachineInfo is one registry entry on GET /v1/machines, listed in
// registration order (the paper's Table 1 order, then the SX-4
// configurations).
type MachineInfo struct {
	Name             string  `json:"name"`
	Title            string  `json:"title"`
	CPUs             int     `json:"cpus"`
	Nodes            int     `json:"nodes"`
	ClockNS          float64 `json:"clock_ns"`
	PeakMFLOPSPerCPU float64 `json:"peak_mflops_per_cpu"`
	HasDisk          bool    `json:"has_disk"`
	// Fingerprint is the configuration hash responses are content-
	// addressed under, as fixed-width hex.
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	var infos []MachineInfo
	for _, name := range target.All() {
		tgt, err := s.target(name)
		if err != nil {
			s.writeError(w, err)
			return
		}
		spec := tgt.Spec()
		infos = append(infos, MachineInfo{
			Name:             name,
			Title:            tgt.Name(),
			CPUs:             spec.CPUs,
			Nodes:            spec.Nodes,
			ClockNS:          spec.ClockNS,
			PeakMFLOPSPerCPU: spec.PeakMFLOPSPerCPU,
			HasDisk:          spec.DiskBytesPerSec > 0,
			Fingerprint:      fmt.Sprintf("%016x", tgt.Fingerprint()),
		})
	}
	s.writeJSON(w, map[string]any{"machines": infos})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.stats.snapshot()
	st.CacheEntries = s.cache.Len()
	st.QueueDepth = s.admit.queued()
	st.InFlight = s.admit.executing()
	st.WarmStart = s.warmStart
	st.RestoredEntries = s.restoredEntries
	st.Machines = len(target.All())
	cs := s.capacity.Stats()
	st.CapacityScenariosRun = cs.Misses
	st.CapacityScenarioHits = cs.Hits
	s.mu.Lock()
	for _, tgt := range s.targets {
		if cs, ok := tgt.(target.CacheStatser); ok {
			ms := cs.CacheStats()
			st.MemoHits += ms.Hits
			st.MemoMisses += ms.Misses
			st.MemoEntries += ms.Entries
		}
	}
	s.mu.Unlock()
	for _, m := range s.restoredMemo {
		st.MemoHits += m.Hits
		st.MemoMisses += m.Misses
	}
	s.writeJSON(w, st)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.queryContext(r.Context())
	defer cancel()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	req, err := DecodeRunRequest(data)
	if err != nil {
		s.writeError(w, failf(http.StatusBadRequest, "%s", err))
		return
	}
	body, state, err := s.answer(ctx, req, classRun)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sx4d-Cache", state)
	w.Write(body)
}

// handleSweep consumes NDJSON run requests and streams one NDJSON
// answer line per input line, flushing as it goes: a response body
// line is either a run response or an {"error": ...} object, in input
// order. A malformed line fails that line only — bulk submission is
// the point, and one typo must not void a thousand-query sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.queryContext(r.Context())
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	sc.Buffer(make([]byte, 0, 64*1024), int(s.cfg.MaxBodyBytes))
	for sc.Scan() {
		// A sweep whose client disconnected mid-stream must stop
		// producing: the request context dies with the connection, and
		// every remaining line would be simulation work nobody reads.
		if ctx.Err() != nil {
			s.stats.sweepAborts.Add(1)
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		s.stats.sweepLines.Add(1)
		var out []byte
		req, err := DecodeRunRequest(line)
		if err == nil {
			out, _, err = s.answer(ctx, req, classSweep)
		}
		if err != nil {
			s.stats.errors.Add(1)
			out, _ = json.Marshal(map[string]string{"error": err.Error()})
			out = append(out, '\n')
		}
		w.Write(out)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		// Too late for a status change if lines already streamed; emit
		// the failure as a final NDJSON error line instead.
		s.stats.errors.Add(1)
		out, _ := json.Marshal(map[string]string{"error": err.Error()})
		w.Write(append(out, '\n'))
	}
}

// queryContext applies the configured per-request deadline.
func (s *Server) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// target returns the shared instance for a registry name, building it
// on first use. Instances are shared across queries deliberately:
// Target.Run is concurrency-safe and the timing memo warms across the
// whole query stream.
func (s *Server) target(name string) (target.Target, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tgt, ok := s.targets[name]; ok {
		return tgt, nil
	}
	tgt, err := target.Lookup(name)
	if err != nil {
		return nil, failf(http.StatusNotFound, "%s", err)
	}
	s.targets[name] = tgt
	return tgt, nil
}

// RunResponse is the wire shape of one answered query.
type RunResponse struct {
	Machine string `json:"machine"`
	CPUs    int    `json:"cpus"`
	// FaultSeed echoes the request's seed (0 = fault-free).
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Results carries one benchjson record per suite member, in
	// request order: Name is the member, Iterations its KTRIES
	// repetition count, NsPerOp the simulated attempt duration in
	// nanoseconds, Metrics the member's headline rates (plus
	// "attempts" and "finished_at_s" under faults).
	Results []benchjson.Result `json:"results"`
}

// admitOne passes one execution through the admission queue, applying
// the configured queue-wait deadline and classifying the outcome into
// the admission counters. The returned release also counts completion,
// so admitted == completed + the in-flight gauge at every instant and
// the chaos soak can assert the books balance.
func (s *Server) admitOne(ctx context.Context, c admitClass) (release func(), err error) {
	s.stats.admitRequests.Add(1)
	wctx, cancel := ctx, context.CancelFunc(func() {})
	if s.cfg.QueueWait > 0 {
		wctx, cancel = context.WithTimeout(ctx, s.cfg.QueueWait)
	}
	rel, aerr := s.admit.acquire(wctx, c)
	cancel()
	if aerr != nil {
		switch aerr.admitOutcome {
		case outcomeShed:
			s.stats.shed.Add(1)
		case outcomeTimeout:
			s.stats.queueTimeouts.Add(1)
		default:
			s.stats.queueCancelled.Add(1)
		}
		return nil, aerr
	}
	s.stats.admitted.Add(1)
	return func() {
		s.stats.completed.Add(1)
		rel()
	}, nil
}

// answer resolves, classifies and serves one validated run query:
// cache hit, coalesced into an identical in-flight query, or executed
// fresh — the last gated by the admission queue under the endpoint's
// class. The returned state is the X-Sx4d-Cache header value; the body
// is byte-identical across all three for the same canonical query.
func (s *Server) answer(ctx context.Context, req RunRequest, class admitClass) (body []byte, state string, err error) {
	s.stats.runQueries.Add(1)
	// A dead context gets no answer, cached or not: the client already
	// hung up, so any bytes written now are wasted work.
	if ctx.Err() != nil {
		return nil, "", unavailablef(1, "serve: query abandoned: %s", context.Cause(ctx))
	}
	canon := req.Canonical()
	tgt, err := s.target(canon.Machine)
	if err != nil {
		return nil, "", err
	}
	fp := canon.Fingerprint(tgt.Fingerprint())
	if b, ok := s.cache.Load(fp); ok {
		s.stats.hits.Add(1)
		return b, "hit", nil
	}
	body, err, coalesced := s.flight.do(fp, func() ([]byte, error) {
		release, err := s.admitOne(ctx, class)
		if err != nil {
			return nil, err
		}
		defer release()
		b, err := s.execute(ctx, tgt, canon, req.Workers)
		if err != nil {
			return nil, err
		}
		return s.cache.LoadOrStore(fp, func() []byte { return b }), nil
	})
	if err != nil {
		return nil, "", err
	}
	if coalesced {
		s.stats.coalesced.Add(1)
		return body, "coalesced", nil
	}
	s.stats.executed.Add(1)
	return body, "miss", nil
}

// execute runs the canonical query's simulation and renders the
// response bytes. workers rides alongside the canonical request (it
// shapes the evaluation schedule, never the bytes). ctx is the
// request's deadline, propagated into the measurement layer so a
// client that hangs up stops paying for simulation at the next member
// boundary; abandoned work is a 503, never a half-rendered body.
func (s *Server) execute(ctx context.Context, tgt target.Target, canon RunRequest, workers int) ([]byte, error) {
	cpus := canon.CPUs
	if cpus <= 0 {
		cpus = tgt.Spec().CPUs
	}
	resp := RunResponse{
		Machine:   tgt.Name(),
		CPUs:      cpus,
		FaultSeed: canon.FaultSeed,
	}
	if canon.FaultSeed == 0 {
		ms, err := ncar.MeasureSuite(ctx, tgt, canon.Benchmarks, canon.CPUs, workers)
		if err != nil {
			return nil, s.executeError(err)
		}
		for _, m := range ms {
			resp.Results = append(resp.Results, measurementResult(m))
		}
	} else {
		opts := ncar.ResilientOpts{
			Injector:        fault.NewPlan(canon.FaultSeed, fault.CanonicalHorizon, fault.CanonicalEvents),
			DeadlineSeconds: canon.DeadlineSeconds,
			MaxAttempts:     canon.MaxAttempts,
		}
		rms, err := ncar.MeasureSuiteResilient(ctx, tgt, canon.Benchmarks, canon.CPUs, workers, opts)
		if err != nil {
			return nil, s.executeError(err)
		}
		for _, rm := range rms {
			r := measurementResult(rm.Measurement)
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics["attempts"] = float64(rm.Attempts)
			r.Metrics["finished_at_s"] = rm.FinishedAt
			resp.Results = append(resp.Results, r)
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// executeError classifies a measurement failure: a context death that
// surfaced mid-execution is counted and mapped to 503 (the work was
// abandoned, not wrong); everything else is the request's fault, 422.
func (s *Server) executeError(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.stats.execCancelled.Add(1)
		return unavailablef(1, "%s", err)
	}
	return failf(http.StatusUnprocessableEntity, "%s", err)
}

// measurementResult renders one structured measurement as a benchjson
// record: the shape clients already parse from benchmark text, so a
// response embeds cleanly in existing tooling.
func measurementResult(m ncar.Measurement) benchjson.Result {
	r := benchjson.Result{
		Name:       m.Benchmark,
		Iterations: int64(m.KTries),
		NsPerOp:    m.Seconds * 1e9,
	}
	if len(m.Metrics) > 0 {
		r.Metrics = make(map[string]float64, len(m.Metrics))
		for k, v := range m.Metrics {
			r.Metrics[k] = v
		}
	}
	return r
}

// CanonicalRequest is the golden-pinned query: the full suite on the
// flagship SX-4/32, fault-free, at default allocation.
func CanonicalRequest() RunRequest {
	return RunRequest{Machine: "sx4-32"}
}

// RenderCanonical writes the exact response body POST /v1/run returns
// for CanonicalRequest — the byte-stable artifact the golden suite and
// the serve-smoke script both diff against a live daemon's output.
func RenderCanonical(w io.Writer) error {
	body, _, err := New(Config{}).answer(context.Background(), CanonicalRequest(), classRun)
	if err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}
