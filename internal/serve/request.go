package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"sx4bench/internal/ncar"
)

// RunRequest is the wire form of one simulation query: which suite
// members to run on which registered machine, under what processor
// allocation and fault schedule. It is the unit of content addressing:
// two requests with the same canonical form and the same machine
// configuration are the same query and share one cached response.
type RunRequest struct {
	// Machine is a registry name ("sx4-32", "ymp", ...); matching is
	// case- and whitespace-insensitive, like the -machine flag.
	Machine string `json:"machine"`
	// Benchmarks lists suite members by exact name. Empty, or the
	// single element "all", means the whole suite in paper order.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// CPUs is the processor allocation for the application benchmarks;
	// 0 means the machine's full CPU count.
	CPUs int `json:"cpus,omitempty"`
	// Workers is the suite-level parallelism of the evaluation (0 =
	// GOMAXPROCS, 1 = serial). It never changes a result byte, so it is
	// excluded from the cache key: a query answered at -workers 8 is a
	// cache hit for the same query at -workers 1.
	Workers int `json:"workers,omitempty"`
	// FaultSeed, when nonzero, runs every member under the seeded
	// canonical fault schedule through the resilient retry loop.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// DeadlineSeconds bounds each member's simulated completion time
	// under faults; MaxAttempts caps its retry count. Both follow
	// ncar.ResilientOpts zero-value conventions.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	MaxAttempts     int     `json:"max_attempts,omitempty"`
}

// Request-shape bounds: far above anything meaningful, far below
// anything that could turn one malformed request into a denial of
// service.
const (
	maxCPUs       = 1 << 16
	maxWorkers    = 1 << 12
	maxAttemptCap = 1000
	maxBenchmarks = 256
)

// DecodeRunRequest parses one JSON-encoded run request strictly:
// unknown fields, trailing content, out-of-range numbers and unknown
// benchmark names are all errors, never silent defaults — a mistyped
// field in a sweep line must fail that line, not quietly run the whole
// suite. The decoder never panics on arbitrary input (FuzzServeRequest
// pins this).
func DecodeRunRequest(data []byte) (RunRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r RunRequest
	if err := dec.Decode(&r); err != nil {
		return RunRequest{}, fmt.Errorf("serve: decoding run request: %w", err)
	}
	if dec.More() {
		return RunRequest{}, fmt.Errorf("serve: trailing content after run request object")
	}
	if err := r.Validate(); err != nil {
		return RunRequest{}, err
	}
	return r, nil
}

// Validate checks the request's shape without touching the machine
// registry (unknown machines surface as 404 at resolution time, not
// 400 here). JSON itself cannot spell NaN or Inf, but requests are
// also built in memory, so the finiteness checks keep both paths
// honest.
func (r RunRequest) Validate() error {
	if strings.TrimSpace(r.Machine) == "" {
		return fmt.Errorf("serve: run request names no machine")
	}
	if r.CPUs < 0 || r.CPUs > maxCPUs {
		return fmt.Errorf("serve: cpus %d out of range [0, %d]", r.CPUs, maxCPUs)
	}
	if r.Workers < 0 || r.Workers > maxWorkers {
		return fmt.Errorf("serve: workers %d out of range [0, %d]", r.Workers, maxWorkers)
	}
	if r.MaxAttempts < 0 || r.MaxAttempts > maxAttemptCap {
		return fmt.Errorf("serve: max_attempts %d out of range [0, %d]", r.MaxAttempts, maxAttemptCap)
	}
	if math.IsNaN(r.DeadlineSeconds) || math.IsInf(r.DeadlineSeconds, 0) || r.DeadlineSeconds < 0 {
		return fmt.Errorf("serve: deadline_seconds must be finite and non-negative")
	}
	if len(r.Benchmarks) > maxBenchmarks {
		return fmt.Errorf("serve: %d benchmarks exceeds the %d-entry cap", len(r.Benchmarks), maxBenchmarks)
	}
	for _, name := range r.Benchmarks {
		if name == "all" {
			if len(r.Benchmarks) != 1 {
				return fmt.Errorf("serve: benchmark \"all\" must be the only list entry")
			}
			continue
		}
		if _, err := ncar.ByName(name); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// Canonical returns the request in cache-key form: machine name
// normalized the way the registry matches it, "all" and the empty list
// folded to the explicit full suite, and the workers knob zeroed (it
// cannot change a result byte). Two requests with equal canonical
// forms are the same query.
func (r RunRequest) Canonical() RunRequest {
	out := r
	out.Machine = strings.ToLower(strings.TrimSpace(r.Machine))
	out.Workers = 0
	if len(r.Benchmarks) == 0 || (len(r.Benchmarks) == 1 && r.Benchmarks[0] == "all") {
		out.Benchmarks = nil
		for _, b := range ncar.Suite() {
			out.Benchmarks = append(out.Benchmarks, b.Name)
		}
	} else {
		out.Benchmarks = append([]string(nil), r.Benchmarks...)
	}
	return out
}

// Fingerprint content-addresses the canonical request against one
// machine configuration: an FNV-1a fold of the target's configuration
// fingerprint (the same component the timing memo keys on), the
// benchmark identity list, and every allocation and fault knob that
// can reach a result byte. Workers is deliberately absent — Canonical
// zeroes it — so worker counts share cache entries.
func (r RunRequest) Fingerprint(machineFP uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(machineFP)
	for _, name := range r.Benchmarks {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	word(uint64(r.CPUs))
	word(uint64(r.FaultSeed))
	word(math.Float64bits(r.DeadlineSeconds))
	word(uint64(r.MaxAttempts))
	return h.Sum64()
}
