package serve

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzServeRequest fuzzes the request decoder — the daemon's only
// parser of untrusted bytes. Properties pinned for every input: the
// decoder never panics, decoding is deterministic, accepted requests
// canonicalize idempotently to an explicit benchmark list with the
// workers knob erased, the canonical fingerprint ignores the worker
// count, and a canonical request survives a JSON re-encode round trip.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"machine":"sx4-32"}`,
		`{"machine":" SX4-1 ","benchmarks":["COPY","CCM2"],"cpus":4,"workers":2}`,
		`{"machine":"ymp","benchmarks":["all"],"fault_seed":7,"deadline_seconds":900.5,"max_attempts":6}`,
		`{"machine":"c90","benchmarks":[]}`,
		`{"machine":"ymp","bogus":1}`,
		`{"machine":"ymp"} {"machine":"c90"}`,
		`{"machine":"ymp","deadline_seconds":-1}`,
		`{"machine":"ymp","benchmarks":["FROBNICATE"]}`,
		`{"machine":"éK"}`,
		`[{"machine":"ymp"}]`,
		`nullnull`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err1 := DecodeRunRequest(data)
		r2, err2 := DecodeRunRequest(data)
		if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("decode is nondeterministic: (%+v, %v) vs (%+v, %v)", r1, err1, r2, err2)
		}
		if err1 != nil {
			if !reflect.DeepEqual(r1, RunRequest{}) {
				t.Fatalf("rejected input returned a partial request %+v", r1)
			}
			return
		}
		c := r1.Canonical()
		if c.Workers != 0 {
			t.Fatalf("canonical form kept workers=%d", c.Workers)
		}
		if len(c.Benchmarks) == 0 {
			t.Fatal("canonical form must list benchmarks explicitly")
		}
		if cc := c.Canonical(); !reflect.DeepEqual(cc, c) {
			t.Fatalf("canonicalization is not idempotent:\n%+v\n%+v", c, cc)
		}
		const probeFP = 0x5158344d4f44454c
		fp := c.Fingerprint(probeFP)
		reworked := r1
		reworked.Workers = (r1.Workers + 1) % maxWorkers
		if got := reworked.Canonical().Fingerprint(probeFP); got != fp {
			t.Fatalf("fingerprint depends on workers: %x vs %x", got, fp)
		}
		// A canonical request is valid JSON-wire content in its own
		// right: re-encoding and re-decoding must accept it unchanged.
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("canonical request does not marshal: %v", err)
		}
		back, err := DecodeRunRequest(wire)
		if err != nil {
			t.Fatalf("canonical request rejected on re-decode: %v\n%s", err, wire)
		}
		if !reflect.DeepEqual(back.Canonical(), c) {
			t.Fatalf("re-decoded canonical diverged:\n%+v\n%+v", back.Canonical(), c)
		}
	})
}
