package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzServeRequest fuzzes the request decoder — the daemon's only
// parser of untrusted bytes. Properties pinned for every input: the
// decoder never panics, decoding is deterministic, accepted requests
// canonicalize idempotently to an explicit benchmark list with the
// workers knob erased, the canonical fingerprint ignores the worker
// count, and a canonical request survives a JSON re-encode round trip.
// FuzzCacheSnapshotLoad fuzzes the warm-start snapshot parser — the
// second parser of untrusted bytes the daemon trusts its cache to
// (disks corrupt, crashes truncate). Properties pinned for every
// input: the parser never panics, parsing is deterministic, and an
// accepted snapshot re-renders to a canonical form that parses back to
// the same state (render∘parse is idempotent). Rejection is total: a
// parse error never yields a partial snapshot.
func FuzzCacheSnapshotLoad(f *testing.F) {
	valid := (&Snapshot{
		Counters: StatCounters{Requests: 7, RunQueries: 3, CacheHits: 2},
		Memo:     []MemoStat{{Target: "sx4-32", Hits: 41, Misses: 5}},
		Entries:  map[uint64][]byte{0xdeadbeefcafef00d: []byte("{\"ok\":true}\n")},
	}).Render()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(snapshotHeader + "\n"))
	f.Add([]byte("sx4d-snapshot v2\nchecksum 0000000000000000\n"))
	f.Add([]byte("counter requests 1\n" + snapshotHeader + "\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err1 := ParseSnapshot(data)
		s2, err2 := ParseSnapshot(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("parse is nondeterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if s1 != nil {
				t.Fatalf("rejected input returned a partial snapshot %+v", s1)
			}
			return
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("parse is nondeterministic:\n%+v\nvs\n%+v", s1, s2)
		}
		canon := s1.Render()
		back, err := ParseSnapshot(canon)
		if err != nil {
			t.Fatalf("canonical render rejected: %v\n%s", err, canon)
		}
		if again := back.Render(); !bytes.Equal(canon, again) {
			t.Fatalf("render is not idempotent:\n%s\nvs\n%s", canon, again)
		}
	})
}

func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"machine":"sx4-32"}`,
		`{"machine":" SX4-1 ","benchmarks":["COPY","CCM2"],"cpus":4,"workers":2}`,
		`{"machine":"ymp","benchmarks":["all"],"fault_seed":7,"deadline_seconds":900.5,"max_attempts":6}`,
		`{"machine":"c90","benchmarks":[]}`,
		`{"machine":"ymp","bogus":1}`,
		`{"machine":"ymp"} {"machine":"c90"}`,
		`{"machine":"ymp","deadline_seconds":-1}`,
		`{"machine":"ymp","benchmarks":["FROBNICATE"]}`,
		`{"machine":"éK"}`,
		`[{"machine":"ymp"}]`,
		`nullnull`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err1 := DecodeRunRequest(data)
		r2, err2 := DecodeRunRequest(data)
		if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("decode is nondeterministic: (%+v, %v) vs (%+v, %v)", r1, err1, r2, err2)
		}
		if err1 != nil {
			if !reflect.DeepEqual(r1, RunRequest{}) {
				t.Fatalf("rejected input returned a partial request %+v", r1)
			}
			return
		}
		c := r1.Canonical()
		if c.Workers != 0 {
			t.Fatalf("canonical form kept workers=%d", c.Workers)
		}
		if len(c.Benchmarks) == 0 {
			t.Fatal("canonical form must list benchmarks explicitly")
		}
		if cc := c.Canonical(); !reflect.DeepEqual(cc, c) {
			t.Fatalf("canonicalization is not idempotent:\n%+v\n%+v", c, cc)
		}
		const probeFP = 0x5158344d4f44454c
		fp := c.Fingerprint(probeFP)
		reworked := r1
		reworked.Workers = (r1.Workers + 1) % maxWorkers
		if got := reworked.Canonical().Fingerprint(probeFP); got != fp {
			t.Fatalf("fingerprint depends on workers: %x vs %x", got, fp)
		}
		// A canonical request is valid JSON-wire content in its own
		// right: re-encoding and re-decoding must accept it unchanged.
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("canonical request does not marshal: %v", err)
		}
		back, err := DecodeRunRequest(wire)
		if err != nil {
			t.Fatalf("canonical request rejected on re-decode: %v\n%s", err, wire)
		}
		if !reflect.DeepEqual(back.Canonical(), c) {
			t.Fatalf("re-decoded canonical diverged:\n%+v\n%+v", back.Canonical(), c)
		}
	})
}
