package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// capacityBody is the small-fleet query the endpoint tests reuse: tiny
// scenario count so the cold execution stays fast.
const capacityBody = `{"fleet":"sx4-32,c90","scenarios":6,"seed":7}`

func TestCapacityEndpointDeterminismAndCache(t *testing.T) {
	s := New(Config{})

	first := post(t, s, "/v1/capacity", capacityBody)
	if first.Code != http.StatusOK {
		t.Fatalf("cold capacity query: status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Sx4d-Cache"); got != "miss" {
		t.Fatalf("cold query cache state %q, want miss", got)
	}
	var resp CapacityResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.Nodes != 2 || resp.Scenarios != 6 || resp.Seed != 7 {
		t.Errorf("response shape: %+v", resp)
	}
	if len(resp.Mixes) != 3 {
		t.Errorf("response has %d mixes, want 3", len(resp.Mixes))
	}
	if resp.Jobs <= 0 || resp.Checksum == "" {
		t.Errorf("response missing totals: jobs=%d checksum=%q", resp.Jobs, resp.Checksum)
	}
	for _, ms := range resp.Mixes {
		if ms.Lost != 0 {
			t.Errorf("mix %s lost %d jobs over the wire", ms.Mix, ms.Lost)
		}
	}

	// The acceptance bar: a repeat query answers X-Sx4d-Cache: hit with
	// a byte-identical body — workers and spec spelling included, since
	// neither reaches the cache key.
	for _, body := range []string{
		capacityBody,
		`{"fleet":" SX4-32 , c90 ","scenarios":6,"seed":7,"workers":8}`,
	} {
		again := post(t, s, "/v1/capacity", body)
		if again.Code != http.StatusOK {
			t.Fatalf("repeat query %s: status %d", body, again.Code)
		}
		if got := again.Header().Get("X-Sx4d-Cache"); got != "hit" {
			t.Errorf("repeat query %s: cache state %q, want hit", body, got)
		}
		if again.Body.String() != first.Body.String() {
			t.Errorf("repeat query %s: body differs from first answer", body)
		}
	}
}

func TestCapacityScenarioMemoSpansQueries(t *testing.T) {
	// Two distinct queries over the same (fleet, seed) share scenario
	// simulations through the engine memo even though their response
	// cache entries differ: widening the scenario count re-simulates
	// only the new tail.
	s := New(Config{})
	if rr := post(t, s, "/v1/capacity", `{"fleet":"c90","scenarios":4,"seed":3}`); rr.Code != http.StatusOK {
		t.Fatalf("first query: %d: %s", rr.Code, rr.Body.String())
	}
	if rr := post(t, s, "/v1/capacity", `{"fleet":"c90","scenarios":6,"seed":3}`); rr.Code != http.StatusOK {
		t.Fatalf("widened query: %d: %s", rr.Code, rr.Body.String())
	}
	st := s.capacity.Stats()
	if st.Misses != 6 {
		t.Errorf("scenario memo ran %d cold simulations, want 6 (4 + the 2-scenario tail)", st.Misses)
	}
	if st.Hits != 4 {
		t.Errorf("scenario memo hits = %d, want 4 (the widened query's shared prefix)", st.Hits)
	}
}

func TestCapacityStatsCounters(t *testing.T) {
	s := New(Config{})
	post(t, s, "/v1/capacity", capacityBody)
	post(t, s, "/v1/capacity", capacityBody)

	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("stats: %d", rr.Code)
	}
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.CapacityQueries != 2 {
		t.Errorf("capacity_queries = %d, want 2", st.CapacityQueries)
	}
	if st.CapacityScenariosRun != 6 {
		t.Errorf("capacity_scenarios_run = %d, want 6 (second query was a response-cache hit)", st.CapacityScenariosRun)
	}
	if st.CapacityJobs == 0 {
		t.Error("capacity_jobs_simulated = 0 after an executed query")
	}
	if st.CacheHits == 0 {
		t.Error("the repeat capacity query did not register a response-cache hit")
	}
}

func TestCapacityRequestErrors(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed json", "{", http.StatusBadRequest},
		{"unknown field", `{"fleet":"c90","bogus":1}`, http.StatusBadRequest},
		{"trailing content", `{"fleet":"c90"} {}`, http.StatusBadRequest},
		{"empty fleet", `{"fleet":"  "}`, http.StatusBadRequest},
		{"negative scenarios", `{"fleet":"c90","scenarios":-1}`, http.StatusBadRequest},
		{"huge scenarios", `{"fleet":"c90","scenarios":1000000}`, http.StatusBadRequest},
		{"huge workers", `{"fleet":"c90","workers":99999}`, http.StatusBadRequest},
		{"unknown machine", `{"fleet":"pdp11"}`, http.StatusNotFound},
		{"bad replication", `{"fleet":"c90x0"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := post(t, s, "/v1/capacity", tc.body)
			if rr.Code != tc.code {
				t.Errorf("status %d, want %d: %s", rr.Code, tc.code, rr.Body.String())
			}
			var e map[string]string
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Errorf("error body not the {\"error\": ...} shape: %s", rr.Body.String())
			}
		})
	}
}
