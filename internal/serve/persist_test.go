package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// warmServer answers the canonical COPY query once so the cache, the
// counters and one target's memo all have state worth snapshotting.
func warmServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Now: fakeClock()})
	if rr := post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`); rr.Code != 200 {
		t.Fatalf("warm-up: %d %s", rr.Code, rr.Body.String())
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := warmServer(t)
	// A second query hits the cache, so the snapshot carries one hit.
	first := post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := s.WriteSnapshot(path); err != nil {
		t.Fatalf("writing snapshot: %v", err)
	}

	// A fresh server restored from the snapshot answers the same query
	// from cache, byte-identically, without executing anything.
	s2 := New(Config{Now: fakeClock()})
	n, err := s2.LoadSnapshot(path)
	if err != nil {
		t.Fatalf("loading snapshot: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d entries, want 1", n)
	}
	rr := post(t, s2, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`)
	if rr.Code != 200 {
		t.Fatalf("restored query: %d %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-Sx4d-Cache"); got != "hit" {
		t.Fatalf("X-Sx4d-Cache after warm start = %q, want hit", got)
	}
	if !bytes.Equal(rr.Body.Bytes(), first.Body.Bytes()) {
		t.Fatalf("restored body differs from original")
	}

	// The books carried over: counters resumed, warm-start provenance
	// visible, memo ledger continuous.
	st := statsSnapshot(t, s2)
	if !st.WarmStart || st.RestoredEntries != 1 {
		t.Fatalf("warm_start=%v restored_entries=%d, want true/1", st.WarmStart, st.RestoredEntries)
	}
	if st.RunsExecuted != 1 {
		t.Fatalf("runs_executed after restore = %d, want 1 (inherited)", st.RunsExecuted)
	}
	if st.CacheHits < 2 {
		t.Fatalf("cache_hits after restore = %d, want >= 2 (1 inherited + 1 new)", st.CacheHits)
	}
	if st.MemoHits+st.MemoMisses == 0 {
		t.Fatalf("memo books did not carry over: %+v", st)
	}
}

// TestSnapshotDeterministic pins render stability: the same state
// always produces the same bytes, regardless of map iteration order.
func TestSnapshotDeterministic(t *testing.T) {
	s := warmServer(t)
	a := s.Snapshot().Render()
	for i := 0; i < 8; i++ {
		if b := s.Snapshot().Render(); !bytes.Equal(a, b) {
			t.Fatalf("render %d differs from first", i)
		}
	}
	// And a parse→render round trip is the identity.
	sn, err := ParseSnapshot(a)
	if err != nil {
		t.Fatalf("parsing own render: %v", err)
	}
	if b := sn.Render(); !bytes.Equal(a, b) {
		t.Fatalf("parse→render is not the identity:\n%s\nvs\n%s", a, b)
	}
}

// TestSnapshotRejectsCorruption drives the all-or-nothing loader: any
// damage — truncation, bit flips, reordered sections, duplicate or
// alien lines — rejects the whole file.
func TestSnapshotRejectsCorruption(t *testing.T) {
	s := warmServer(t)
	good := s.Snapshot().Render()
	if _, err := ParseSnapshot(good); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	lines := strings.SplitAfter(strings.TrimSuffix(string(good), "\n"), "\n")
	cases := map[string][]byte{
		"empty":               nil,
		"no trailing newline": good[:len(good)-1],
		"truncated half":      good[:len(good)/2],
		"missing header":      []byte(strings.Join(lines[1:], "")),
		"missing checksum":    []byte(strings.Join(lines[:len(lines)-1], "")),
		"garbage appended":    append(append([]byte{}, good...), "entry ffffffffffffffff AAAA\n"...),
		"alien line": []byte(strings.Replace(string(good),
			"counter requests", "blorp requests", 1)),
	}
	// A single flipped bit in the middle of the file must break the
	// checksum.
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped

	for name, data := range cases {
		if _, err := ParseSnapshot(data); err == nil {
			t.Errorf("%s: accepted corrupt snapshot", name)
		}
	}
}

// TestSnapshotRejectsForgedChecksum pins that interior damage with a
// recomputed-looking trailer still fails: the checksum must match the
// actual content, not merely parse.
func TestSnapshotRejectsForgedChecksum(t *testing.T) {
	s := warmServer(t)
	good := string(s.Snapshot().Render())
	// Double one counter but keep the old checksum line.
	bad := strings.Replace(good, "counter requests", "counter errors", 1)
	if bad == good {
		t.Fatalf("test setup: replacement was a no-op")
	}
	if _, err := ParseSnapshot([]byte(bad)); err == nil {
		t.Fatalf("accepted snapshot whose checksum does not cover its content")
	}
}

// TestLoadSnapshotMissingFileIsColdStart pins that a daemon with no
// snapshot yet boots cold without error.
func TestLoadSnapshotMissingFileIsColdStart(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	n, err := s.LoadSnapshot(filepath.Join(t.TempDir(), "never-written.snap"))
	if err != nil || n != 0 {
		t.Fatalf("missing snapshot: n=%d err=%v, want 0/nil", n, err)
	}
	if st := statsSnapshot(t, s); st.WarmStart {
		t.Fatalf("cold start reported warm_start=true")
	}
}

// TestLoadSnapshotLiveEntryWins pins the warm-start merge rule: a
// value already in the live cache is never overwritten by the
// snapshot's (snapshots are strictly older than live state).
func TestLoadSnapshotLiveEntryWins(t *testing.T) {
	s := warmServer(t)
	sn := s.Snapshot()
	for fp := range sn.Entries {
		sn.Entries[fp] = []byte(`{"stale": true}` + "\n")
	}
	path := filepath.Join(t.TempDir(), "stale.snap")
	if err := writeRendered(path, sn); err != nil {
		t.Fatal(err)
	}
	live := post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`).Body.String()
	if _, err := s.LoadSnapshot(path); err != nil {
		t.Fatalf("loading: %v", err)
	}
	after := post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`).Body.String()
	if after != live {
		t.Fatalf("snapshot overwrote a live cache entry")
	}
}

func writeRendered(path string, sn *Snapshot) error {
	data := sn.Render()
	if _, err := ParseSnapshot(data); err != nil {
		return fmt.Errorf("rendered snapshot does not parse: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
