package serve

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"

	"sx4bench/internal/core"
	"sx4bench/internal/target"
)

// The cache snapshot format, version 1: the daemon's survivable state
// as a line-oriented text file, in the benchjson spirit — human
// inspectable, strictly parsed, fuzzable. The layout is
//
//	sx4d-snapshot v1
//	counter <name> <uint64>          # lifetime stats counters
//	memo <target> <hits> <misses>    # per-target timing-memo counters
//	entry <fp:16-hex> <base64-body>  # one response-cache entry
//	checksum <fnv64a:16-hex>         # over every preceding byte
//
// in exactly that section order, every section sorted (counters by
// table order, memo by target name, entries by fingerprint), so the
// same daemon state always renders the same bytes — the chaos soak
// asserts snapshot determinism by comparing renders. The checksum line
// is last and mandatory; a loader rejects the whole file on any
// deviation — a half-written or bit-flipped snapshot must never seed a
// cache with corrupt bytes, because the daemon would then serve them
// byte-identically forever.
const snapshotHeader = "sx4d-snapshot v1"

// Snapshot is the parsed form of one cache snapshot: the lifetime
// counters, the per-target memo books, and the response-cache entries.
type Snapshot struct {
	Counters StatCounters
	Memo     []MemoStat
	Entries  map[uint64][]byte
}

// MemoStat is one target's timing-memo counters at snapshot time. The
// memo entries themselves (compiled timing artifacts) are rebuilt on
// demand after a restart; only the books persist, so /v1/stats stays
// continuous across a daemon's lives.
type MemoStat struct {
	Target       string
	Hits, Misses uint64
}

// counterFields names every persisted counter, in file order. The
// loader is strict: an unknown counter name is corruption, not
// forward compatibility — format changes bump the version header.
var counterFields = []struct {
	name string
	get  func(*StatCounters) *uint64
}{
	{"requests", func(c *StatCounters) *uint64 { return &c.Requests }},
	{"run_queries", func(c *StatCounters) *uint64 { return &c.RunQueries }},
	{"sweep_lines", func(c *StatCounters) *uint64 { return &c.SweepLines }},
	{"cache_hits", func(c *StatCounters) *uint64 { return &c.CacheHits }},
	{"coalesced", func(c *StatCounters) *uint64 { return &c.Coalesced }},
	{"runs_executed", func(c *StatCounters) *uint64 { return &c.RunsExecuted }},
	{"errors", func(c *StatCounters) *uint64 { return &c.Errors }},
	{"admit_requests", func(c *StatCounters) *uint64 { return &c.AdmitRequests }},
	{"admitted", func(c *StatCounters) *uint64 { return &c.Admitted }},
	{"shed", func(c *StatCounters) *uint64 { return &c.Shed }},
	{"queue_timeouts", func(c *StatCounters) *uint64 { return &c.QueueTimeouts }},
	{"queue_cancelled", func(c *StatCounters) *uint64 { return &c.QueueCancelled }},
	{"completed", func(c *StatCounters) *uint64 { return &c.Completed }},
	{"exec_cancelled", func(c *StatCounters) *uint64 { return &c.ExecCancelled }},
	{"sweep_aborts", func(c *StatCounters) *uint64 { return &c.SweepAborts }},
	{"capacity_queries", func(c *StatCounters) *uint64 { return &c.CapacityQueries }},
	{"capacity_jobs", func(c *StatCounters) *uint64 { return &c.CapacityJobs }},
}

// Snapshot captures the daemon's survivable state: safe to call while
// serving (the cache walk takes per-shard read locks; counters are
// atomics), so the periodic snapshot loop never blocks traffic.
func (s *Server) Snapshot() *Snapshot {
	sn := &Snapshot{
		Counters: s.stats.counters(),
		Entries:  make(map[uint64][]byte),
	}
	s.cache.Range(func(fp uint64, body []byte) bool {
		sn.Entries[fp] = body
		return true
	})
	s.mu.Lock()
	for name, tgt := range s.targets {
		if cs, ok := tgt.(target.CacheStatser); ok {
			ms := cs.CacheStats()
			sn.Memo = append(sn.Memo, MemoStat{Target: name, Hits: ms.Hits, Misses: ms.Misses})
		}
	}
	s.mu.Unlock()
	// Fold in the books inherited from earlier lives, so a chain of
	// restarts keeps one continuous ledger.
	sn.Memo = append(sn.Memo, s.restoredMemo...)
	sn.Memo = mergeMemo(sn.Memo)
	return sn
}

// mergeMemo sums duplicate targets and sorts by name — the canonical
// order Render depends on.
func mergeMemo(in []MemoStat) []MemoStat {
	byName := make(map[string]MemoStat, len(in))
	for _, m := range in {
		acc := byName[m.Target]
		acc.Target = m.Target
		acc.Hits += m.Hits
		acc.Misses += m.Misses
		byName[m.Target] = acc
	}
	out := make([]MemoStat, 0, len(byName))
	for _, m := range byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// Render serializes the snapshot to its canonical byte form.
func (sn *Snapshot) Render() []byte {
	var b bytes.Buffer
	b.WriteString(snapshotHeader)
	b.WriteByte('\n')
	c := sn.Counters
	for _, f := range counterFields {
		fmt.Fprintf(&b, "counter %s %d\n", f.name, *f.get(&c))
	}
	for _, m := range mergeMemo(sn.Memo) {
		fmt.Fprintf(&b, "memo %s %d %d\n", m.Target, m.Hits, m.Misses)
	}
	fps := make([]uint64, 0, len(sn.Entries))
	for fp := range sn.Entries {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		fmt.Fprintf(&b, "entry %016x %s\n", fp,
			base64.StdEncoding.EncodeToString(sn.Entries[fp]))
	}
	h := fnv.New64a()
	h.Write(b.Bytes())
	fmt.Fprintf(&b, "checksum %016x\n", h.Sum64())
	return b.Bytes()
}

// ParseSnapshot parses and verifies one snapshot file. It is strict
// and all-or-nothing: any malformed line, out-of-order section,
// duplicate entry, truncation or checksum mismatch rejects the whole
// file — a daemon starts cold rather than trust a damaged snapshot.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	fail := func(format string, args ...any) (*Snapshot, error) {
		return nil, fmt.Errorf("serve: snapshot: "+format, args...)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return fail("truncated (no trailing newline)")
	}
	// The checksum line covers every byte before it.
	idx := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	last := string(data[idx : len(data)-1])
	sum, ok := strings.CutPrefix(last, "checksum ")
	if !ok {
		return fail("missing checksum trailer")
	}
	want, err := strconv.ParseUint(sum, 16, 64)
	if err != nil || len(sum) != 16 {
		return fail("malformed checksum %q", sum)
	}
	h := fnv.New64a()
	h.Write(data[:idx])
	if got := h.Sum64(); got != want {
		return fail("checksum mismatch: file says %016x, content folds to %016x", want, got)
	}

	sn := &Snapshot{Entries: make(map[uint64][]byte)}
	sc := bufio.NewScanner(bytes.NewReader(data[:idx]))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	if !sc.Scan() || sc.Text() != snapshotHeader {
		return fail("bad header (want %q)", snapshotHeader)
	}
	counters := make(map[string]*uint64, len(counterFields))
	for _, f := range counterFields {
		counters[f.name] = f.get(&sn.Counters)
	}
	seenCounter := make(map[string]bool)
	seenMemo := make(map[string]bool)
	// Sections must appear in order; section tracks the furthest seen.
	section := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), " ")
		kind := fields[0]
		var minSection int
		switch kind {
		case "counter":
			minSection = 0
		case "memo":
			minSection = 1
		case "entry":
			minSection = 2
		default:
			return fail("unknown line kind %q", kind)
		}
		if minSection < section {
			return fail("%s line out of section order", kind)
		}
		section = minSection
		switch kind {
		case "counter":
			if len(fields) != 3 {
				return fail("malformed counter line %q", sc.Text())
			}
			dst, ok := counters[fields[1]]
			if !ok {
				return fail("unknown counter %q", fields[1])
			}
			if seenCounter[fields[1]] {
				return fail("duplicate counter %q", fields[1])
			}
			seenCounter[fields[1]] = true
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return fail("counter %s: %v", fields[1], err)
			}
			*dst = v
		case "memo":
			if len(fields) != 4 || fields[1] == "" {
				return fail("malformed memo line %q", sc.Text())
			}
			if seenMemo[fields[1]] {
				return fail("duplicate memo target %q", fields[1])
			}
			seenMemo[fields[1]] = true
			hits, err1 := strconv.ParseUint(fields[2], 10, 64)
			misses, err2 := strconv.ParseUint(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				return fail("memo %s: bad counters", fields[1])
			}
			sn.Memo = append(sn.Memo, MemoStat{Target: fields[1], Hits: hits, Misses: misses})
		case "entry":
			if len(fields) != 3 || len(fields[1]) != 16 {
				return fail("malformed entry line %q", truncateForError(sc.Text()))
			}
			fp, err := strconv.ParseUint(fields[1], 16, 64)
			if err != nil {
				return fail("entry fingerprint %q: %v", fields[1], err)
			}
			if _, dup := sn.Entries[fp]; dup {
				return fail("duplicate entry %016x", fp)
			}
			body, err := base64.StdEncoding.DecodeString(fields[2])
			if err != nil {
				return fail("entry %016x body: %v", fp, err)
			}
			sn.Entries[fp] = body
		}
	}
	if err := sc.Err(); err != nil {
		return fail("%v", err)
	}
	return sn, nil
}

func truncateForError(s string) string {
	if len(s) > 80 {
		return s[:80] + "..."
	}
	return s
}

// WriteSnapshot atomically writes the daemon's current state to path:
// readers (and the next boot) see either the previous complete
// snapshot or this one, never a torn file, even through a crash
// mid-write.
func (s *Server) WriteSnapshot(path string) error {
	return core.WriteFileAtomic(path, s.Snapshot().Render(), 0o644)
}

// LoadSnapshot warm-starts the server from a snapshot file written by
// an earlier life: response-cache entries are installed (live entries
// win — callers load before serving, so there are none), the lifetime
// counters resume, and the memo books carry forward. A missing file is
// a cold start, not an error; a damaged file is an error and the
// caller decides whether to serve cold or refuse to boot. Returns the
// number of cache entries restored.
func (s *Server) LoadSnapshot(path string) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: snapshot: %w", err)
	}
	sn, err := ParseSnapshot(data)
	if err != nil {
		return 0, err
	}
	for fp, body := range sn.Entries {
		s.cache.Store(fp, body)
	}
	s.stats.restore(sn.Counters)
	s.mu.Lock()
	s.restoredMemo = sn.Memo
	s.warmStart = true
	s.restoredEntries = len(sn.Entries)
	s.mu.Unlock()
	return len(sn.Entries), nil
}
