package serve

import "sync"

// flightGroup coalesces concurrent executions of the same
// content-addressed query: while a leader is computing the response
// for a fingerprint, followers arriving with the same fingerprint
// block on the leader's completion and share its bytes instead of
// re-simulating. Only in-flight work coalesces — completed calls are
// forgotten immediately, because the response cache is the durable
// layer and the flight group's only job is to close the window between
// a miss and its store.
type flightGroup struct {
	mu    sync.Mutex
	calls map[uint64]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

// do runs fn for the fingerprint unless an identical call is already
// in flight, in which case it waits for that call and shares its
// outcome. The second return reports whether this caller was a
// follower (its work was coalesced into the leader's).
func (g *flightGroup) do(fp uint64, fn func() ([]byte, error)) (body []byte, err error, coalesced bool) {
	g.mu.Lock()
	if c, ok := g.calls[fp]; ok {
		g.mu.Unlock()
		<-c.done
		return c.body, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	if g.calls == nil {
		g.calls = make(map[uint64]*flightCall)
	}
	g.calls[fp] = c
	g.mu.Unlock()

	c.body, c.err = fn()

	g.mu.Lock()
	delete(g.calls, fp)
	g.mu.Unlock()
	close(c.done)
	return c.body, c.err, false
}
