package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// held occupies n class-c slots directly on the admitter, returning a
// release-all function. Tests use it to simulate a saturated engine
// without depending on simulation wall time.
func held(t *testing.T, a *admitter, c admitClass, n int) func() {
	t.Helper()
	var rels []func()
	for i := 0; i < n; i++ {
		rel, err := a.acquire(context.Background(), c)
		if err != nil {
			t.Fatalf("holding slot %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	return func() {
		for _, rel := range rels {
			rel()
		}
	}
}

func TestAdmitterFastPath(t *testing.T) {
	a := newAdmitter(2, 4, [numClasses]int{2, 1, 1})
	rel, err := a.acquire(context.Background(), classRun)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if got := a.executing(); got != 1 {
		t.Fatalf("executing = %d, want 1", got)
	}
	rel()
	if got := a.executing(); got != 0 {
		t.Fatalf("executing after release = %d, want 0", got)
	}
}

func TestAdmitterShedsOnFullQueue(t *testing.T) {
	a := newAdmitter(1, 1, [numClasses]int{1, 1, 1})
	release := held(t, a, classRun, 1)
	defer release()

	// One waiter fits in the depth-1 queue...
	queued := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_, err := a.acquire(ctx, classRun)
		if err == nil {
			queued <- fmt.Errorf("queued waiter admitted while slot held")
			return
		}
		queued <- nil
	}()
	waitFor(t, func() bool { return a.queued() == 1 })

	// ...so the next arrival is shed on the spot with a Retry-After.
	_, err := a.acquire(context.Background(), classRun)
	if err == nil {
		t.Fatalf("expected shed, got admission")
	}
	if err.admitOutcome != outcomeShed {
		t.Fatalf("outcome = %d, want outcomeShed", err.admitOutcome)
	}
	if err.retryAfter < 1 {
		t.Fatalf("shed error retryAfter = %d, want >= 1", err.retryAfter)
	}
	cancel()
	if e := <-queued; e != nil {
		t.Fatal(e)
	}
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := newAdmitter(1, 4, [numClasses]int{1, 1, 1})
	release := held(t, a, classRun, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *httpError, 1)
	go func() {
		_, err := a.acquire(ctx, classRun)
		done <- err
	}()
	waitFor(t, func() bool { return a.queued() == 1 })
	cancel()
	err := <-done
	if err == nil {
		t.Fatalf("expected cancellation error, got admission")
	}
	if err.admitOutcome != outcomeCancel {
		t.Fatalf("outcome = %d, want outcomeCancel", err.admitOutcome)
	}
	// The abandoned waiter must not linger in the queue gauge or absorb
	// a grant.
	if got := a.queued(); got != 0 {
		t.Fatalf("queued after cancel = %d, want 0", got)
	}
	release()
	if got := a.executing(); got != 0 {
		t.Fatalf("executing after release = %d, want 0 (grant leaked to abandoned waiter?)", got)
	}
}

func TestAdmitterDeadlineWhileQueued(t *testing.T) {
	a := newAdmitter(1, 4, [numClasses]int{1, 1, 1})
	release := held(t, a, classRun, 1)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := a.acquire(ctx, classRun)
	if err == nil {
		t.Fatalf("expected queue-wait timeout, got admission")
	}
	if err.admitOutcome != outcomeTimeout {
		t.Fatalf("outcome = %d, want outcomeTimeout", err.admitOutcome)
	}
	if err.retryAfter < 1 {
		t.Fatalf("timeout error retryAfter = %d, want >= 1", err.retryAfter)
	}
}

// TestAdmitterClassPriority pins the load-shedding order: when a slot
// frees with both a run waiter and a sweep waiter queued, the run
// waiter is granted first regardless of arrival order — the invariant
// that keeps the cheap interactive endpoint alive under overload.
func TestAdmitterClassPriority(t *testing.T) {
	// Budgets 2/1/1 under a global cap of 2: sweep+capacity saturate the
	// engine while the run class still has nominal budget.
	a := newAdmitter(2, 4, [numClasses]int{2, 1, 1})
	relSweep := held(t, a, classSweep, 1)
	relCap := held(t, a, classCapacity, 1)

	grants := make(chan admitClass, 2)
	spawn := func(c admitClass) {
		go func() {
			rel, err := a.acquire(context.Background(), c)
			if err != nil {
				t.Errorf("%s acquire: %v", c, err)
				return
			}
			grants <- c
			rel()
		}()
	}
	// Sweep queues first, run second. Priority must still serve run first.
	spawn(classSweep)
	waitFor(t, func() bool { return a.queued() == 1 })
	spawn(classRun)
	waitFor(t, func() bool { return a.queued() == 2 })

	relCap()
	if first := <-grants; first != classRun {
		t.Fatalf("first grant went to %s, want run", first)
	}
	relSweep()
	if second := <-grants; second != classSweep {
		t.Fatalf("second grant went to %s, want sweep", second)
	}
}

// waitFor polls a condition with a generous deadline; admission tests
// only need ordering, never timing.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadShedsWithRetryAfter drives the HTTP surface: with the
// engine saturated and the queue full, a fresh /v1/run query is shed
// as 503 and the response carries Retry-After — every 503 must tell
// the client when to come back.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, Now: fakeClock()})
	release := held(t, s.admit, classRun, 1)
	defer release()

	// Fill the queue with one real waiter.
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		s.admit.acquire(ctx, classRun)
	}()
	waitFor(t, func() bool { return s.admit.queued() == 1 })

	rr := post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`)
	if rr.Code != 503 {
		t.Fatalf("status = %d, want 503; body: %s", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("503 without Retry-After header; body: %s", rr.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("503 body is not the error shape: %s", rr.Body.String())
	}
	cancel()
	<-queued

	// The books: one shed, visible on /v1/stats.
	st := statsSnapshot(t, s)
	if st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	if st.AdmitRequests != st.Admitted+st.Shed+st.QueueTimeouts+st.QueueCancelled {
		t.Fatalf("admission books don't balance: %+v", st)
	}
}

// TestQueueWaitTimeout pins the queue-wait deadline: a query that waits
// past Config.QueueWait is timed out with 503 + Retry-After and counted
// as a queue timeout, not a shed.
func TestQueueWaitTimeout(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueWait: 5 * time.Millisecond, Now: fakeClock()})
	release := held(t, s.admit, classRun, 1)
	defer release()

	rr := post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`)
	if rr.Code != 503 {
		t.Fatalf("status = %d, want 503; body: %s", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("queue timeout 503 without Retry-After")
	}
	st := statsSnapshot(t, s)
	if st.QueueTimeouts != 1 {
		t.Fatalf("queue_timeouts = %d, want 1: %+v", st.QueueTimeouts, st)
	}
}

// TestCacheServesUnderOverload pins the most important overload
// property: admission only gates executions, so a saturated engine
// still answers cached queries instantly.
func TestCacheServesUnderOverload(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, Now: fakeClock()})
	const body = `{"machine": "sx4-32", "benchmarks": ["COPY"]}`
	if rr := post(t, s, "/v1/run", body); rr.Code != 200 {
		t.Fatalf("warm-up failed: %d %s", rr.Code, rr.Body.String())
	}

	release := held(t, s.admit, classRun, 1)
	defer release()
	rr := post(t, s, "/v1/run", body)
	if rr.Code != 200 {
		t.Fatalf("cached query under overload: %d, want 200", rr.Code)
	}
	if got := rr.Header().Get("X-Sx4d-Cache"); got != "hit" {
		t.Fatalf("X-Sx4d-Cache = %q, want hit", got)
	}
}

// TestRunOutlivesSweepUnderOverload is the acceptance bar from the
// issue, at the HTTP layer: saturate the engine, fire one /v1/run and
// one /v1/sweep execution that both must queue, free one slot — the
// run query completes, the sweep line is still waiting.
func TestRunOutlivesSweepUnderOverload(t *testing.T) {
	// Cap 2 with sweep budget 1: one held sweep slot plus one held
	// capacity slot saturate the engine.
	s := New(Config{MaxConcurrent: 2, SweepConcurrent: 1, CapacityConcurrent: 1, Now: fakeClock()})
	relSweep := held(t, s.admit, classSweep, 1)
	relCap := held(t, s.admit, classCapacity, 1)
	sweepReleased := false
	defer func() {
		if !sweepReleased {
			relSweep()
		}
	}()

	sweepDone := make(chan *httptest.ResponseRecorder, 1)
	runDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		sweepDone <- post(t, s, "/v1/sweep", `{"machine": "sx4-32", "benchmarks": ["IA"]}`)
	}()
	waitFor(t, func() bool { return s.admit.queued() == 1 })
	go func() {
		runDone <- post(t, s, "/v1/run", `{"machine": "sx4-32", "benchmarks": ["COPY"]}`)
	}()
	waitFor(t, func() bool { return s.admit.queued() == 2 })

	relCap()
	rr := <-runDone
	if rr.Code != 200 {
		t.Fatalf("run under overload: %d, want 200; body: %s", rr.Code, rr.Body.String())
	}
	// The sweep line only completes once the sweep-class slot frees.
	select {
	case <-sweepDone:
		t.Fatalf("sweep completed before its class had budget")
	default:
	}
	relSweep()
	sweepReleased = true
	srr := <-sweepDone
	if srr.Code != 200 {
		t.Fatalf("sweep after release: %d; body: %s", srr.Code, srr.Body.String())
	}
}

func statsSnapshot(t *testing.T, s *Server) Stats {
	t.Helper()
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	if rr.Code != 200 {
		t.Fatalf("stats: %d", rr.Code)
	}
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return st
}

// TestStatsGauges pins the queue-depth and in-flight gauges on
// /v1/stats.
func TestStatsGauges(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, Now: fakeClock()})
	release := held(t, s.admit, classRun, 2)
	st := statsSnapshot(t, s)
	if st.InFlight != 2 {
		t.Fatalf("in_flight = %d, want 2", st.InFlight)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue_depth = %d, want 0", st.QueueDepth)
	}
	release()
	st = statsSnapshot(t, s)
	if st.InFlight != 0 {
		t.Fatalf("in_flight after release = %d, want 0", st.InFlight)
	}
}

// TestSweepClientDisconnect pins the disconnected-sweep fix: when the
// request context dies mid-stream, the producer stops instead of
// simulating lines nobody will read, and the abort is counted.
func TestSweepClientDisconnect(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	lines := strings.Repeat(`{"machine": "sx4-32", "benchmarks": ["COPY"]}`+"\n", 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the first line
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(lines)).WithContext(ctx)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if got := rr.Body.Len(); got != 0 {
		t.Fatalf("disconnected sweep still produced %d bytes: %s", got, rr.Body.String())
	}
	st := statsSnapshot(t, s)
	if st.SweepAborts == 0 {
		t.Fatalf("sweep abort not counted: %+v", st)
	}
	if st.SweepLines != 0 {
		t.Fatalf("disconnected sweep consumed %d lines, want 0", st.SweepLines)
	}
}
