package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	_ "sx4bench/internal/machine" // register the modeled machines
)

// fakeClock is a deterministic time source: every reading advances by
// one millisecond, so latency counters are exact and tests never touch
// the wall clock.
func fakeClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

// TestHandlerErrors is the conformance table for the failure paths:
// every malformed, oversized, misaddressed or unanswerable request
// must map to its documented status and an {"error": ...} JSON body.
func TestHandlerErrors(t *testing.T) {
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   int
	}{
		{"malformed json", "POST", "/v1/run", "{", http.StatusBadRequest},
		{"not an object", "POST", "/v1/run", "[1,2]", http.StatusBadRequest},
		{"unknown field", "POST", "/v1/run", `{"machine":"ymp","bogus":1}`, http.StatusBadRequest},
		{"trailing content", "POST", "/v1/run", `{"machine":"ymp"} {}`, http.StatusBadRequest},
		{"empty machine", "POST", "/v1/run", `{"machine":"  "}`, http.StatusBadRequest},
		{"overflowing deadline", "POST", "/v1/run", `{"machine":"ymp","deadline_seconds":1e999}`, http.StatusBadRequest},
		{"negative deadline", "POST", "/v1/run", `{"machine":"ymp","deadline_seconds":-1}`, http.StatusBadRequest},
		{"negative cpus", "POST", "/v1/run", `{"machine":"ymp","cpus":-4}`, http.StatusBadRequest},
		{"huge workers", "POST", "/v1/run", `{"machine":"ymp","workers":99999}`, http.StatusBadRequest},
		{"unknown benchmark", "POST", "/v1/run", `{"machine":"ymp","benchmarks":["FROBNICATE"]}`, http.StatusBadRequest},
		{"all plus extras", "POST", "/v1/run", `{"machine":"ymp","benchmarks":["all","COPY"]}`, http.StatusBadRequest},
		{"unknown machine", "POST", "/v1/run", `{"machine":"vax-11"}`, http.StatusNotFound},
		{"GET on run", "GET", "/v1/run", "", http.StatusMethodNotAllowed},
		{"POST on stats", "POST", "/v1/stats", "", http.StatusMethodNotAllowed},
		{"unknown path", "GET", "/v1/nope", "", http.StatusNotFound},
	}
	s := New(Config{Now: fakeClock()})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, req)
			if rr.Code != tc.code {
				t.Fatalf("status = %d, want %d; body %q", rr.Code, tc.code, rr.Body.String())
			}
			if tc.code == http.StatusMethodNotAllowed || (tc.code == http.StatusNotFound && tc.path == "/v1/nope") {
				return // the mux renders these, not our JSON shape
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not the {\"error\": ...} shape (%v)", rr.Body.String(), err)
			}
		})
	}
}

// TestOversizedBody pins the 413 path: a body past MaxBodyBytes fails
// with RequestEntityTooLarge, never a partial parse.
func TestOversizedBody(t *testing.T) {
	s := New(Config{MaxBodyBytes: 64, Now: fakeClock()})
	body := `{"machine":"ymp","benchmarks":[` + strings.Repeat(`"COPY",`, 40) + `"COPY"]}`
	rr := post(t, s, "/v1/run", body)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %q", rr.Code, rr.Body.String())
	}
}

// TestCanceledContext pins the 503 path: a query whose context is
// already dead is abandoned, cached or not.
func TestCanceledContext(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/run",
		strings.NewReader(`{"machine":"sparc20","benchmarks":["COPY"]}`)).WithContext(ctx)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %q", rr.Code, rr.Body.String())
	}
}

// TestRunDeterminismAndCache is the core conformance property: two
// identical POST /v1/run queries return byte-identical bodies, the
// second from the cache; a worker-count variation is the same query
// and hits too.
func TestRunDeterminismAndCache(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	const q = `{"machine":"sparc20","benchmarks":["COPY","RFFT"]}`
	first := post(t, s, "/v1/run", q)
	if first.Code != http.StatusOK {
		t.Fatalf("first query: status %d, body %q", first.Code, first.Body.String())
	}
	if state := first.Header().Get("X-Sx4d-Cache"); state != "miss" {
		t.Fatalf("first query cache state = %q, want miss", state)
	}
	second := post(t, s, "/v1/run", q)
	if second.Code != http.StatusOK {
		t.Fatalf("second query: status %d", second.Code)
	}
	if state := second.Header().Get("X-Sx4d-Cache"); state != "hit" {
		t.Fatalf("second query cache state = %q, want hit", state)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("identical queries returned different bodies:\n%s\n%s", first.Body, second.Body)
	}
	// Workers shapes the evaluation schedule, never the bytes: a
	// different worker count is the same content-addressed query.
	reworked := post(t, s, "/v1/run", `{"machine":"sparc20","benchmarks":["COPY","RFFT"],"workers":8}`)
	if state := reworked.Header().Get("X-Sx4d-Cache"); state != "hit" {
		t.Fatalf("workers variant cache state = %q, want hit", state)
	}
	if !bytes.Equal(first.Body.Bytes(), reworked.Body.Bytes()) {
		t.Fatal("workers variant returned different bytes")
	}
	var resp RunResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response does not decode: %v", err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Name != "COPY" || resp.Results[1].Name != "RFFT" {
		t.Fatalf("results = %+v, want COPY then RFFT in request order", resp.Results)
	}
}

// TestFaultedRun pins the resilient path: a seeded query reports
// attempt accounting in its metrics and is just as cacheable.
func TestFaultedRun(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	const q = `{"machine":"sx4-1","benchmarks":["RADABS"],"fault_seed":7,"deadline_seconds":900}`
	first := post(t, s, "/v1/run", q)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d, body %q", first.Code, first.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FaultSeed != 7 || len(resp.Results) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	m := resp.Results[0].Metrics
	if m["attempts"] < 1 || m["finished_at_s"] <= 0 {
		t.Fatalf("faulted result lacks attempt accounting: %+v", m)
	}
	if state := post(t, s, "/v1/run", q).Header().Get("X-Sx4d-Cache"); state != "hit" {
		t.Fatalf("repeat faulted query cache state = %q, want hit", state)
	}
}

// TestSweep pins the NDJSON contract: one answer line per input line in
// input order, malformed lines failing alone, duplicates served from
// cache, blank lines skipped.
func TestSweep(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	body := `{"machine":"sparc20","benchmarks":["COPY"]}
{"machine":"sparc20","benchmarks":["FROBNICATE"]}

{"machine":"sparc20","benchmarks":["COPY"],"workers":4}
`
	rr := post(t, s, "/v1/sweep", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d answer lines, want 3:\n%s", len(lines), rr.Body.String())
	}
	if !strings.Contains(lines[1], `"error"`) {
		t.Fatalf("line 2 should be the error line: %q", lines[1])
	}
	if lines[0] != lines[2] {
		t.Fatalf("duplicate query answered differently:\n%s\n%s", lines[0], lines[2])
	}
	var st Stats
	statsRR := httptest.NewRecorder()
	s.ServeHTTP(statsRR, httptest.NewRequest("GET", "/v1/stats", nil))
	if err := json.Unmarshal(statsRR.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SweepLines != 3 {
		t.Fatalf("sweep_lines = %d, want 3 (blank line skipped)", st.SweepLines)
	}
	if st.RunsExecuted != 1 || st.CacheHits != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 executed, 1 hit, 1 error", st)
	}
}

// TestMachines pins the registry listing: every registered machine, in
// registration order, with its spec headline and configuration
// fingerprint.
func TestMachines(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/machines", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var resp struct {
		Machines []MachineInfo `json:"machines"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Machines) < 7 {
		t.Fatalf("listed %d machines, want the full registry (>= 7)", len(resp.Machines))
	}
	var flagship *MachineInfo
	for i := range resp.Machines {
		m := &resp.Machines[i]
		if m.Fingerprint == "" || m.CPUs <= 0 || m.Title == "" {
			t.Fatalf("incomplete machine entry %+v", m)
		}
		if m.Name == "sx4-32" {
			flagship = m
		}
	}
	if flagship == nil || flagship.CPUs != 32 || !flagship.HasDisk {
		t.Fatalf("flagship entry = %+v, want 32 CPUs with a disk subsystem", flagship)
	}
}

// TestStatsClock pins the injected clock: with the fake millisecond
// clock, each instrumented request adds exactly 1ms of latency.
func TestStatsClock(t *testing.T) {
	s := New(Config{Now: fakeClock()})
	for i := 0; i < 3; i++ {
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("healthz status %d", rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 4 {
		t.Fatalf("requests = %d, want 4", st.Requests)
	}
	// The stats request reads the clock after its own handler ran, so
	// only the three healthz requests have landed in the counter.
	if st.LatencyTotalMS != 3 {
		t.Fatalf("latency_total_ms = %v, want exactly 3 under the fake clock", st.LatencyTotalMS)
	}
}

// TestRenderCanonicalMatchesHandler pins the golden plumbing: the
// artifact RenderCanonical writes is the exact body a live daemon
// returns for the canonical request.
func TestRenderCanonicalMatchesHandler(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite flagship run")
	}
	var artifact bytes.Buffer
	if err := RenderCanonical(&artifact); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Now: fakeClock()})
	q, err := json.Marshal(CanonicalRequest())
	if err != nil {
		t.Fatal(err)
	}
	rr := post(t, s, "/v1/run", string(q))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if !bytes.Equal(artifact.Bytes(), rr.Body.Bytes()) {
		t.Fatal("RenderCanonical and the live handler disagree")
	}
}
