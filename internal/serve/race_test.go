package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCoalescing is the contended-path conformance test,
// meaningful under -race: many goroutines fire the same query (run and
// sweep alike) alongside a few distinct ones, and the daemon must
// answer every one byte-identically while executing far fewer
// simulations than it answers queries — repeats either coalesce into
// an in-flight execution or hit the cache, and /v1/stats exposes the
// split.
func TestConcurrentCoalescing(t *testing.T) {
	srv := New(Config{Now: fakeClock(), MaxConcurrent: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const identical = `{"machine":"sparc20","benchmarks":["COPY","IA"]}`
	distinct := []string{
		`{"machine":"sparc20","benchmarks":["XPOSE"]}`,
		`{"machine":"rs6000","benchmarks":["COPY"]}`,
		`{"machine":"ymp","benchmarks":["RFFT"]}`,
	}
	sweepBody := identical + "\n" + distinct[0] + "\n" + identical + "\n"

	const runners, sweepers = 24, 8
	bodies := make([][]byte, runners)
	var wg sync.WaitGroup
	start := make(chan struct{})
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}
	for i := 0; i < runners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			q := identical
			if i < len(distinct) {
				q = distinct[i]
			}
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(q))
			if err != nil {
				fail("run %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				fail("run %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	for i := 0; i < sweepers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/x-ndjson", strings.NewReader(sweepBody))
			if err != nil {
				fail("sweep %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				fail("sweep %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			lines := bytes.Split(bytes.TrimRight(body, "\n"), []byte("\n"))
			if len(lines) != 3 {
				fail("sweep %d: %d lines, want 3", i, len(lines))
				return
			}
			if !bytes.Equal(lines[0], lines[2]) {
				fail("sweep %d: duplicate lines differ", i)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every answer to the identical query must be the same bytes.
	var want []byte
	for i := len(distinct); i < runners; i++ {
		if want == nil {
			want = bodies[i]
			continue
		}
		if !bytes.Equal(want, bodies[i]) {
			t.Fatalf("identical queries returned divergent bodies")
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	queries := uint64(runners + 3*sweepers)
	if st.RunQueries != queries {
		t.Fatalf("run_queries = %d, want %d", st.RunQueries, queries)
	}
	if st.CacheHits+st.Coalesced+st.RunsExecuted != queries {
		t.Fatalf("classification leaks: %d hits + %d coalesced + %d executed != %d queries",
			st.CacheHits, st.Coalesced, st.RunsExecuted, queries)
	}
	// Only 4 fingerprints exist (identical + 3 distinct); everything
	// else must have been served without a fresh simulation. Racing
	// leaders can double-execute a fingerprint in a narrow window, so
	// the bound is generous — but far below the query count.
	if st.RunsExecuted >= queries/2 {
		t.Fatalf("runs_executed = %d of %d queries: coalescing/caching not working", st.RunsExecuted, queries)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d, want 0", st.Errors)
	}
}
