package serve

import (
	"context"
	"net/http"
	"sync"
)

// admitClass partitions queries by cost for admission control. The
// order is the priority order: when an execution slot frees, waiting
// run queries are granted before waiting sweep lines, which beat
// capacity Monte Carlos — under overload the cheap interactive
// endpoint keeps answering while the bulk endpoints degrade first.
type admitClass int

const (
	classRun      admitClass = iota // POST /v1/run and individual sweep lines' cheap path
	classSweep                      // POST /v1/sweep line executions
	classCapacity                   // POST /v1/capacity Monte Carlos
	numClasses
)

var classNames = [numClasses]string{"run", "sweep", "capacity"}

func (c admitClass) String() string { return classNames[c] }

// admitter is a priority-aware bounded admission queue in front of the
// simulation executions: the daemon's overload valve. Each class has a
// concurrency budget and a bounded FIFO wait queue; a global cap
// bounds total concurrent executions across classes. A query that
// cannot be admitted immediately waits in its class queue until a slot
// frees (grants drain queues in class-priority order), its queue is
// already full (shed on arrival), its queue-wait deadline expires, or
// its request context dies. Every non-admission outcome maps to 503
// with a Retry-After hint, so well-behaved clients back off instead of
// hammering a saturated daemon.
//
// Only real executions pass through the admitter: cache hits and
// coalesced followers cost nothing and are never queued, so a hot
// cache keeps absorbing traffic even when the execution engine is
// saturated.
type admitter struct {
	mu       sync.Mutex
	budget   [numClasses]int       // per-class concurrency budgets
	queues   [numClasses][]*waiter // FIFO per class; grant order is class-major
	inflight [numClasses]int
	total    int // executing now, all classes
	totalCap int // global concurrent-execution cap
	depth    int // per-class queue bound
}

// waiter is one queued admission request. granted is closed (with ok
// set) by the releasing goroutine; abandoned marks a waiter whose
// context died so a later grant pass skips it.
type waiter struct {
	granted   chan struct{}
	abandoned bool
}

func newAdmitter(totalCap, depth int, budget [numClasses]int) *admitter {
	a := &admitter{totalCap: totalCap, depth: depth, budget: budget}
	return a
}

// canAdmit reports whether a class has both budget and global headroom.
// Callers hold a.mu.
func (a *admitter) canAdmit(c admitClass) bool {
	return a.inflight[c] < a.budget[c] && a.total < a.totalCap
}

// admitLocked books one execution slot. Callers hold a.mu.
func (a *admitter) admitLocked(c admitClass) {
	a.inflight[c]++
	a.total++
}

// acquire admits one execution of class c, waiting in the class queue
// if the budgets are saturated. It returns a release function on
// admission; on failure it returns an *httpError carrying 503 and a
// Retry-After hint plus the outcome kind for the counters. ctx governs
// the wait only — the caller applies its queue-wait deadline by
// passing an already-bounded context.
func (a *admitter) acquire(ctx context.Context, c admitClass) (release func(), err *httpError) {
	a.mu.Lock()
	if a.canAdmit(c) && len(a.queues[c]) == 0 {
		a.admitLocked(c)
		a.mu.Unlock()
		return func() { a.release(c) }, nil
	}
	if len(a.queues[c]) >= a.depth {
		retry := a.retryAfterLocked(c)
		a.mu.Unlock()
		return nil, shedError(c, retry)
	}
	w := &waiter{granted: make(chan struct{})}
	a.queues[c] = append(a.queues[c], w)
	a.mu.Unlock()

	select {
	case <-w.granted:
		return func() { a.release(c) }, nil
	case <-ctx.Done():
	}
	// The context died while queued — but a grant may have raced the
	// cancellation. Under the lock there are exactly two cases: the
	// waiter is still queued (mark it abandoned so grants skip it), or
	// it was granted (give the slot straight back).
	a.mu.Lock()
	select {
	case <-w.granted:
		a.mu.Unlock()
		a.release(c)
	default:
		w.abandoned = true
		for i, qw := range a.queues[c] {
			if qw == w {
				a.queues[c] = append(a.queues[c][:i], a.queues[c][i+1:]...)
				break
			}
		}
		a.mu.Unlock()
	}
	return nil, waitError(ctx, c)
}

// release returns one class-c slot and grants queued waiters in class
// priority order (run drains before sweep before capacity).
func (a *admitter) release(c admitClass) {
	a.mu.Lock()
	a.inflight[c]--
	a.total--
	for cls := admitClass(0); cls < numClasses; cls++ {
		for len(a.queues[cls]) > 0 && a.canAdmit(cls) {
			w := a.queues[cls][0]
			a.queues[cls] = a.queues[cls][1:]
			if w.abandoned {
				continue
			}
			a.admitLocked(cls)
			// Closed under the lock deliberately: acquire's cancel path
			// checks the channel while holding the same lock, so a grant
			// and a cancellation can never both claim the waiter.
			close(w.granted)
		}
	}
	a.mu.Unlock()
}

// queued returns the admission queue depth across classes (the gauge
// /v1/stats reports).
func (a *admitter) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for c := admitClass(0); c < numClasses; c++ {
		for _, w := range a.queues[c] {
			if !w.abandoned {
				n++
			}
		}
	}
	return n
}

// executing returns the in-flight execution gauge.
func (a *admitter) executing() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// retryAfterLocked estimates how long a shed client should wait before
// retrying: one second per queued-or-executing query ahead of it in
// its class, floored at one. Deterministic — a pure function of the
// admitter's occupancy, never the wall clock. Callers hold a.mu.
func (a *admitter) retryAfterLocked(c admitClass) int {
	ahead := a.inflight[c] + len(a.queues[c])
	if ahead < 1 {
		return 1
	}
	if ahead > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return ahead
}

// maxRetryAfterSeconds caps the Retry-After hint: past this, telling a
// client more would just serialize the herd behind one wall.
const maxRetryAfterSeconds = 30

// shedError is the queue-full outcome: the request never waited.
func shedError(c admitClass, retryAfter int) *httpError {
	e := failf(http.StatusServiceUnavailable,
		"serve: %s admission queue full, shedding load", c)
	e.retryAfter = retryAfter
	e.admitOutcome = outcomeShed
	return e
}

// waitError classifies a queue-wait failure: a deadline that expired
// while queued is a timeout; anything else is the client hanging up.
func waitError(ctx context.Context, c admitClass) *httpError {
	cause := context.Cause(ctx)
	e := failf(http.StatusServiceUnavailable,
		"serve: %s query left the admission queue unserved: %s", c, cause)
	e.retryAfter = 1
	if cause == context.DeadlineExceeded {
		e.admitOutcome = outcomeTimeout
	} else {
		e.admitOutcome = outcomeCancel
	}
	return e
}

// admission outcomes, for the stats counters.
type admitOutcome int

const (
	outcomeNone admitOutcome = iota
	outcomeShed
	outcomeTimeout
	outcomeCancel
)
