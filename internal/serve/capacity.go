package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"

	"sx4bench/internal/fleet"
)

// CapacityRequest is the wire form of one fleet capacity query: a
// Monte Carlo of week-long scenarios — seeded arrival mixes × per-node
// fault plans × degraded fleets — over the fleet described by the
// specification string. Like run queries, capacity queries are
// content-addressed: the cache key folds the resolved node
// configurations, so two spellings of the same fleet share one cached
// response, and a machine-model change invalidates it.
type CapacityRequest struct {
	// Fleet is a fleet specification: comma-separated registry names,
	// each with an optional "xN" replication suffix ("sx4-32x2,c90").
	Fleet string `json:"fleet"`
	// Scenarios is the Monte Carlo draw count; 0 means
	// fleet.DefaultScenarios.
	Scenarios int `json:"scenarios,omitempty"`
	// Seed is the fleet seed every scenario derives from; 0 means
	// fleet.DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the scenario-level parallelism (0 = GOMAXPROCS, 1 =
	// serial). It never changes a response byte and is excluded from
	// the cache key.
	Workers int `json:"workers,omitempty"`
}

// maxCapacityScenarios bounds one capacity query: far above any
// meaningful planning sweep, far below anything that could turn one
// request into a denial of service.
const maxCapacityScenarios = 1 << 16

// DecodeCapacityRequest parses one JSON-encoded capacity request with
// the same strictness as run requests: unknown fields, trailing
// content and out-of-range numbers are errors, never silent defaults.
func DecodeCapacityRequest(data []byte) (CapacityRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r CapacityRequest
	if err := dec.Decode(&r); err != nil {
		return CapacityRequest{}, fmt.Errorf("serve: decoding capacity request: %w", err)
	}
	if dec.More() {
		return CapacityRequest{}, fmt.Errorf("serve: trailing content after capacity request object")
	}
	if err := r.Validate(); err != nil {
		return CapacityRequest{}, err
	}
	return r, nil
}

// Validate checks the request's shape without touching the machine
// registry (unknown fleet members surface when the spec resolves, not
// here).
func (r CapacityRequest) Validate() error {
	if strings.TrimSpace(r.Fleet) == "" {
		return fmt.Errorf("serve: capacity request names no fleet")
	}
	if r.Scenarios < 0 || r.Scenarios > maxCapacityScenarios {
		return fmt.Errorf("serve: scenarios %d out of range [0, %d]", r.Scenarios, maxCapacityScenarios)
	}
	if r.Workers < 0 || r.Workers > maxWorkers {
		return fmt.Errorf("serve: workers %d out of range [0, %d]", r.Workers, maxWorkers)
	}
	return nil
}

// Canonical returns the request in cache-key form: the fleet spec
// normalized the way the registry matches names, the zero knobs
// resolved to their canonical defaults, and workers zeroed (it cannot
// change a response byte).
func (r CapacityRequest) Canonical() CapacityRequest {
	out := r
	out.Fleet = strings.ToLower(strings.ReplaceAll(r.Fleet, " ", ""))
	out.Workers = 0
	if out.Scenarios == 0 {
		out.Scenarios = fleet.DefaultScenarios
	}
	if out.Seed == 0 {
		out.Seed = fleet.DefaultSeed
	}
	return out
}

// fingerprint content-addresses the canonical request against the
// resolved fleet: an FNV-1a fold of every node's configuration
// fingerprint and shape plus the scenario knobs, under a tag that
// keeps capacity keys disjoint from run-request keys in the shared
// response cache.
func (r CapacityRequest) fingerprint(nodes []fleet.NodeSpec) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("sx4d-capacity\x00"))
	for _, n := range nodes {
		word(n.Fingerprint)
		word(uint64(n.CPUs))
	}
	word(uint64(r.Scenarios))
	word(uint64(r.Seed))
	return h.Sum64()
}

// CapacityMixSummary is the wire form of one mix's aggregate.
type CapacityMixSummary struct {
	Mix         string  `json:"mix"`
	Pattern     string  `json:"pattern"`
	Scenarios   int     `json:"scenarios"`
	Degraded    int     `json:"degraded"`
	Jobs        int64   `json:"jobs"`
	P50Seconds  float64 `json:"p50_s"`
	P95Seconds  float64 `json:"p95_s"`
	P99Seconds  float64 `json:"p99_s"`
	MakespanP50 float64 `json:"makespan_p50_s"`
	MakespanMax float64 `json:"makespan_max_s"`
	Recovered   int64   `json:"recovered"`
	Failed      int64   `json:"failed"`
	Lost        int64   `json:"lost"`
}

// CapacityResponse is the wire shape of one answered capacity query.
type CapacityResponse struct {
	Fleet     string `json:"fleet"`
	Nodes     int    `json:"nodes"`
	Scenarios int    `json:"scenarios"`
	Seed      int64  `json:"seed"`
	Jobs      int64  `json:"jobs"`
	// Checksum is the report's scenario-stream fold as fixed-width hex
	// — the determinism witness clients can compare across daemons.
	Checksum string               `json:"checksum"`
	Mixes    []CapacityMixSummary `json:"mixes"`
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.queryContext(r.Context())
	defer cancel()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	req, err := DecodeCapacityRequest(data)
	if err != nil {
		s.writeError(w, failf(http.StatusBadRequest, "%s", err))
		return
	}
	body, state, err := s.answerCapacity(ctx, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sx4d-Cache", state)
	w.Write(body)
}

// answerCapacity resolves, classifies and serves one capacity query
// through the same machinery as run queries: the shared response
// cache, the single-flight group and the admission queue — under the
// capacity class, the first to queue and the first to shed when the
// daemon saturates, because one Monte Carlo costs what thousands of
// run queries do. The scenario-level memo (s.capacity) sits below the
// response cache, so even a novel query re-simulates only scenarios no
// earlier query ran.
func (s *Server) answerCapacity(ctx context.Context, req CapacityRequest) (body []byte, state string, err error) {
	s.stats.capacityQueries.Add(1)
	if ctx.Err() != nil {
		return nil, "", unavailablef(1, "serve: query abandoned: %s", context.Cause(ctx))
	}
	canon := req.Canonical()
	nodes, err := fleet.ParseSpec(canon.Fleet)
	if err != nil {
		return nil, "", failf(http.StatusNotFound, "%s", err)
	}
	fp := canon.fingerprint(nodes)
	if b, ok := s.cache.Load(fp); ok {
		s.stats.hits.Add(1)
		return b, "hit", nil
	}
	body, err, coalesced := s.flight.do(fp, func() ([]byte, error) {
		release, err := s.admitOne(ctx, classCapacity)
		if err != nil {
			return nil, err
		}
		defer release()
		b, err := s.executeCapacity(canon, nodes, req.Workers)
		if err != nil {
			return nil, err
		}
		return s.cache.LoadOrStore(fp, func() []byte { return b }), nil
	})
	if err != nil {
		return nil, "", err
	}
	if coalesced {
		s.stats.coalesced.Add(1)
		return body, "coalesced", nil
	}
	s.stats.executed.Add(1)
	return body, "miss", nil
}

// executeCapacity runs the canonical query's Monte Carlo and renders
// the response bytes. workers rides alongside the canonical request
// (it shapes the evaluation schedule, never the bytes).
func (s *Server) executeCapacity(canon CapacityRequest, nodes []fleet.NodeSpec, workers int) ([]byte, error) {
	cfg := fleet.Config{
		Nodes:     nodes,
		Mixes:     fleet.CanonicalMixes(),
		Scenarios: canon.Scenarios,
		Seed:      canon.Seed,
	}
	rep, err := s.capacity.MonteCarlo(cfg, workers)
	if err != nil {
		return nil, failf(http.StatusUnprocessableEntity, "%s", err)
	}
	s.stats.capacityJobs.Add(uint64(rep.Jobs))
	resp := CapacityResponse{
		Fleet:     canon.Fleet,
		Nodes:     len(nodes),
		Scenarios: rep.Scenarios,
		Seed:      canon.Seed,
		Jobs:      rep.Jobs,
		Checksum:  fmt.Sprintf("%016x", rep.Checksum),
	}
	for _, ms := range rep.Mixes {
		resp.Mixes = append(resp.Mixes, CapacityMixSummary{
			Mix:         ms.Mix,
			Pattern:     ms.Pattern,
			Scenarios:   ms.Scenarios,
			Degraded:    ms.Degraded,
			Jobs:        ms.Jobs,
			P50Seconds:  ms.P50,
			P95Seconds:  ms.P95,
			P99Seconds:  ms.P99,
			MakespanP50: ms.MakespanP50,
			MakespanMax: ms.MakespanMax,
			Recovered:   ms.Recovered,
			Failed:      ms.Failed,
			Lost:        ms.Lost,
		})
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
