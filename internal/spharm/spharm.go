// Package spharm implements the spherical-harmonic (spectral) transform
// method on the Gaussian grid: the dry-dynamics machinery of CCM2. It
// provides forward (grid to spectral) and inverse (spectral to grid)
// transforms under triangular truncation, the spectral differential
// operators (Laplacian, longitude derivative, the integrated-by-parts
// divergence transform), and the wind synthesis from vorticity and
// divergence used by the shallow-water dynamical core.
//
// Conventions: a real field f(λ, μ) on nlat Gaussian latitudes (μ =
// sin φ ascending) by nlon equally spaced longitudes is represented by
// complex coefficients a_n^m, 0 <= m <= T, m <= n <= T, with
//
//	f = Re Σ_m Σ_n a_n^m P̄_n^m(μ) e^{imλ} * (2 - δ_{m0})/...
//
// concretely: f = Σ_n a_n^0 P̄ + 2 Re Σ_{m>=1} Σ_n a_n^m P̄ e^{imλ}.
package spharm

import (
	"fmt"
	"math"

	"sx4bench/internal/core/sched"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/gauss"
	"sx4bench/internal/sx4/commreg"
)

// EarthRadius is the sphere radius used by the models [m].
const EarthRadius = 6.37122e6

// Transform holds precomputed quadrature and basis tables for one
// resolution.
type Transform struct {
	T    int // triangular truncation wavenumber
	NLat int
	NLon int
	A    float64 // sphere radius

	x, w []float64 // Gaussian nodes (ascending sin-latitude), weights

	// pbar[j] holds P̄_n^m(x_j) for m<=T, n<=T+1 (one extra degree for
	// derivative synthesis), laid out by gauss.PbarIdx(T, T+1, m, n).
	pbar [][]float64
	// hbar[j] holds H_n^m(x_j) = (1-μ²) dP̄_n^m/dμ for m<=T, n<=T,
	// laid out by Idx (the n<=T triangle).
	hbar [][]float64

	// Workers parallelizes the transforms on the host: the analysis
	// over wavenumbers, the synthesis and Fourier passes over latitude
	// rows. Results are bit-identical to serial for any setting. Zero
	// means runtime.GOMAXPROCS(0); one forces the serial path.
	Workers int
}

// workers resolves the knob per the repo-wide convention.
func (t *Transform) workers() int { return sched.Workers(t.Workers) }

// CanonicalGrid returns the paper's Table 4 grid for a truncation:
// T42 -> 64x128 ... T170 -> 256x512. For other truncations it returns
// the smallest FFT-friendly unaliased grid.
func CanonicalGrid(T int) (nlat, nlon int) {
	switch T {
	case 42:
		return 64, 128
	case 63:
		return 96, 192
	case 85:
		return 128, 256
	case 106:
		return 160, 320
	case 170:
		return 256, 512
	}
	// Unaliased quadratic grid: nlon >= 3T+1, factorable into 2,3,5,
	// even; nlat = nlon/2.
	nlon = 3*T + 1
	for nlon%2 != 0 || !fftpack.Supported(nlon) {
		nlon++
	}
	return nlon / 2, nlon
}

// New builds a transform for truncation T on an nlat x nlon Gaussian
// grid. nlon must factor into 2, 3, 5; aliasing requires nlon >= 3T+1
// and 2*nlat >= 3T+1.
func New(T, nlat, nlon int) *Transform {
	if T < 1 {
		panic(fmt.Sprintf("spharm: truncation %d too small", T))
	}
	if nlon < 3*T+1 || 2*nlat < 3*T+1 {
		panic(fmt.Sprintf("spharm: grid %dx%d aliases T%d", nlat, nlon, T))
	}
	if !fftpack.Supported(nlon) {
		panic(fmt.Sprintf("spharm: nlon %d not FFT-supported", nlon))
	}
	x, w := gauss.Nodes(nlat)
	t := &Transform{T: T, NLat: nlat, NLon: nlon, A: EarthRadius, x: x, w: w}
	t.pbar = make([][]float64, nlat)
	t.hbar = make([][]float64, nlat)
	for j := 0; j < nlat; j++ {
		t.pbar[j] = gauss.Pbar(T, T+1, x[j])
		t.hbar[j] = make([]float64, t.SpecLen())
		for m := 0; m <= T; m++ {
			for n := m; n <= T; n++ {
				// H_n^m = (n+1) ε_n^m P̄_{n-1}^m - n ε_{n+1}^m P̄_{n+1}^m.
				var below float64
				if n-1 >= m {
					below = t.pbar[j][gauss.PbarIdx(T, T+1, m, n-1)]
				}
				above := t.pbar[j][gauss.PbarIdx(T, T+1, m, n+1)]
				t.hbar[j][t.Idx(m, n)] =
					float64(n+1)*gauss.Epsilon(m, n)*below -
						float64(n)*gauss.Epsilon(m, n+1)*above
			}
		}
	}
	return t
}

// NewCanonical builds the transform on the canonical grid for T.
func NewCanonical(T int) *Transform {
	nlat, nlon := CanonicalGrid(T)
	return New(T, nlat, nlon)
}

// SpecLen returns the number of spectral coefficients (the n<=T
// triangle).
func (t *Transform) SpecLen() int { return (t.T + 1) * (t.T + 2) / 2 }

// GridLen returns nlat*nlon.
func (t *Transform) GridLen() int { return t.NLat * t.NLon }

// Idx returns the flat index of coefficient (m, n), n <= T.
func (t *Transform) Idx(m, n int) int {
	if m < 0 || m > t.T || n < m || n > t.T {
		panic(fmt.Sprintf("spharm: coefficient (m=%d,n=%d) outside T%d", m, n, t.T))
	}
	off := m*(t.T+1) - m*(m-1)/2
	return off + (n - m)
}

// Mu returns the Gaussian sin-latitudes (ascending).
func (t *Transform) Mu() []float64 { return t.x }

// Weights returns the Gaussian weights.
func (t *Transform) Weights() []float64 { return t.w }

// fourierRows computes the truncated Fourier coefficients F^m_j =
// (1/nlon) Σ_i f(j,i) e^{-imλ_i} for every latitude row.
func (t *Transform) fourierRows(grid []float64) [][]complex128 {
	if len(grid) != t.GridLen() {
		panic("spharm: grid length mismatch")
	}
	rows := make([][]complex128, t.NLat)
	inv := 1 / float64(t.NLon)
	// Latitude rows are independent (disjoint writes), so the FFT pass
	// microtasks across them; each row's values are unchanged.
	commreg.ParallelFor(t.workers(), t.NLat, func(j int) {
		h := fftpack.RealForward(grid[j*t.NLon : (j+1)*t.NLon])
		row := make([]complex128, t.T+1)
		for m := 0; m <= t.T; m++ {
			row[m] = h[m] * complex(inv, 0)
		}
		rows[j] = row
	})
	return rows
}

// Forward transforms a grid field to spectral coefficients.
func (t *Transform) Forward(grid []float64) []complex128 {
	rows := t.fourierRows(grid)
	spec := make([]complex128, t.SpecLen())
	// The analysis parallelizes over wavenumber m: each m owns the
	// disjoint coefficient block Idx(m, m..T), and every coefficient
	// still accumulates its latitude sum in ascending j — the same
	// floating-point order as the serial j-outer loop, so the result is
	// bit-identical for any worker count.
	commreg.ParallelFor(t.workers(), t.T+1, func(m int) {
		for j := 0; j < t.NLat; j++ {
			fm := rows[j][m] * complex(t.w[j], 0)
			for n := m; n <= t.T; n++ {
				spec[t.Idx(m, n)] += fm * complex(t.pbar[j][gauss.PbarIdx(t.T, t.T+1, m, n)], 0)
			}
		}
	})
	return spec
}

// Inverse transforms spectral coefficients to the grid.
func (t *Transform) Inverse(spec []complex128) []float64 {
	return t.synthesize(spec, t.pbarAt)
}

// InverseMuDeriv synthesizes H = (1-μ²) ∂f/∂μ on the grid from the
// spectral coefficients of f.
func (t *Transform) InverseMuDeriv(spec []complex128) []float64 {
	return t.synthesize(spec, t.hbarAt)
}

func (t *Transform) pbarAt(j, m, n int) float64 {
	return t.pbar[j][gauss.PbarIdx(t.T, t.T+1, m, n)]
}

func (t *Transform) hbarAt(j, m, n int) float64 { return t.hbar[j][t.Idx(m, n)] }

func (t *Transform) synthesize(spec []complex128, basis func(j, m, n int) float64) []float64 {
	if len(spec) != t.SpecLen() {
		panic("spharm: spectral length mismatch")
	}
	grid := make([]float64, t.GridLen())
	// Latitude rows are independent: a microtasked loop (Workers=1
	// keeps it serial; results are bit-identical either way).
	commreg.ParallelFor(t.workers(), t.NLat, func(j int) {
		half := make([]complex128, t.NLon/2+1)
		for m := 0; m <= t.T; m++ {
			var fm complex128
			for n := m; n <= t.T; n++ {
				fm += spec[t.Idx(m, n)] * complex(basis(j, m, n), 0)
			}
			half[m] = fm * complex(float64(t.NLon), 0)
		}
		row := fftpack.RealInverse(half, t.NLon)
		copy(grid[j*t.NLon:(j+1)*t.NLon], row)
	})
	return grid
}

// ForwardDiv computes the spectral coefficients of
//
//	(1/(a(1-μ²))) ∂A/∂λ + (1/a) ∂B/∂μ
//
// from the grid fields A and B, integrating the μ-derivative by parts
// against the Legendre basis (the standard trick that keeps the
// transform exact under truncation).
func (t *Transform) ForwardDiv(A, B []float64) []complex128 {
	rowsA := t.fourierRows(A)
	rowsB := t.fourierRows(B)
	spec := make([]complex128, t.SpecLen())
	// Same decomposition as Forward: wavenumbers own disjoint
	// coefficient blocks, latitude sums stay in ascending-j order, so
	// the parallel result is bit-identical to the serial one.
	commreg.ParallelFor(t.workers(), t.T+1, func(m int) {
		im := complex(0, float64(m))
		for j := 0; j < t.NLat; j++ {
			oneMinus := 1 - t.x[j]*t.x[j]
			wA := complex(t.w[j]/(t.A*oneMinus), 0)
			wB := complex(t.w[j]/(t.A*oneMinus), 0)
			am := rowsA[j][m] * wA
			bm := rowsB[j][m] * wB
			for n := m; n <= t.T; n++ {
				p := complex(t.pbarAt(j, m, n), 0)
				h := complex(t.hbarAt(j, m, n), 0)
				spec[t.Idx(m, n)] += im*am*p - bm*h
			}
		}
	})
	return spec
}

// Laplacian applies ∇² in place: multiplication by -n(n+1)/a².
func (t *Transform) Laplacian(spec []complex128) {
	for m := 0; m <= t.T; m++ {
		for n := m; n <= t.T; n++ {
			spec[t.Idx(m, n)] *= complex(-float64(n)*float64(n+1)/(t.A*t.A), 0)
		}
	}
}

// InvLaplacian applies ∇⁻² in place; the n=0 mode is set to zero.
func (t *Transform) InvLaplacian(spec []complex128) {
	for m := 0; m <= t.T; m++ {
		for n := m; n <= t.T; n++ {
			if n == 0 {
				spec[t.Idx(m, n)] = 0
				continue
			}
			spec[t.Idx(m, n)] *= complex(-(t.A*t.A)/(float64(n)*float64(n+1)), 0)
		}
	}
}

// UV synthesizes the scaled winds U = u cosφ and V = v cosφ on the
// grid from spectral vorticity and divergence:
//
//	ψ = ∇⁻²ζ, χ = ∇⁻²δ,
//	U = (1/a)(∂χ/∂λ - (1-μ²)∂ψ/∂μ),
//	V = (1/a)(∂ψ/∂λ + (1-μ²)∂χ/∂μ).
func (t *Transform) UV(zeta, delta []complex128) (U, V []float64) {
	psi := make([]complex128, len(zeta))
	chi := make([]complex128, len(delta))
	copy(psi, zeta)
	copy(chi, delta)
	t.InvLaplacian(psi)
	t.InvLaplacian(chi)

	dlPsi := make([]complex128, len(psi))
	dlChi := make([]complex128, len(chi))
	for m := 0; m <= t.T; m++ {
		im := complex(0, float64(m))
		for n := m; n <= t.T; n++ {
			i := t.Idx(m, n)
			dlPsi[i] = im * psi[i]
			dlChi[i] = im * chi[i]
		}
	}
	gU1 := t.Inverse(dlChi)      // ∂χ/∂λ
	gU2 := t.InverseMuDeriv(psi) // (1-μ²)∂ψ/∂μ
	gV1 := t.Inverse(dlPsi)      // ∂ψ/∂λ
	gV2 := t.InverseMuDeriv(chi) // (1-μ²)∂χ/∂μ

	U = make([]float64, t.GridLen())
	V = make([]float64, t.GridLen())
	for i := range U {
		U[i] = (gU1[i] - gU2[i]) / t.A
		V[i] = (gV1[i] + gV2[i]) / t.A
	}
	return U, V
}

// MeanValue returns the area-weighted global mean of a grid field.
func (t *Transform) MeanValue(grid []float64) float64 {
	var sum float64
	for j := 0; j < t.NLat; j++ {
		var rowSum float64
		for i := 0; i < t.NLon; i++ {
			rowSum += grid[j*t.NLon+i]
		}
		sum += t.w[j] * rowSum / float64(t.NLon)
	}
	return sum / 2 // weights sum to 2
}

// Longitudes returns the nlon longitude values in radians.
func (t *Transform) Longitudes() []float64 {
	l := make([]float64, t.NLon)
	for i := range l {
		l[i] = 2 * math.Pi * float64(i) / float64(t.NLon)
	}
	return l
}
