package spharm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickLinearity(t *testing.T) {
	tr := New(8, 13, 25)
	f := func(seed int64, a8, b8 int8) bool {
		a := float64(a8) / 16
		b := float64(b8) / 16
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, tr.GridLen())
		y := make([]float64, tr.GridLen())
		mix := make([]float64, tr.GridLen())
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			mix[i] = a*x[i] + b*y[i]
		}
		fx := tr.Forward(x)
		fy := tr.Forward(y)
		fm := tr.Forward(mix)
		for i := range fm {
			want := complex(a, 0)*fx[i] + complex(b, 0)*fy[i]
			if cmplx.Abs(fm[i]-want) > 1e-10*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickLongitudeShiftPhase(t *testing.T) {
	// Rotating the grid one longitude index multiplies a_n^m by
	// e^{-im 2π/nlon}.
	tr := New(6, 10, 20)
	f := func(seed int64) bool {
		spec := randomSpec(tr, seed)
		grid := tr.Inverse(spec)
		shifted := make([]float64, len(grid))
		nlon := tr.NLon
		for j := 0; j < tr.NLat; j++ {
			for i := 0; i < nlon; i++ {
				shifted[j*nlon+i] = grid[j*nlon+(i+1)%nlon]
			}
		}
		got := tr.Forward(shifted)
		for m := 0; m <= tr.T; m++ {
			phase := cmplx.Exp(complex(0, float64(m)*2*math.Pi/float64(nlon)))
			for n := m; n <= tr.T; n++ {
				i := tr.Idx(m, n)
				want := spec[i] * phase
				if cmplx.Abs(got[i]-want) > 1e-10*(1+cmplx.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickParityUnderHemisphereFlip(t *testing.T) {
	// Flipping latitude (μ -> -μ) multiplies a_n^m by (-1)^{n+m}
	// (spherical-harmonic parity).
	tr := New(6, 10, 20)
	f := func(seed int64) bool {
		spec := randomSpec(tr, seed)
		grid := tr.Inverse(spec)
		flipped := make([]float64, len(grid))
		nlat, nlon := tr.NLat, tr.NLon
		for j := 0; j < nlat; j++ {
			copy(flipped[j*nlon:(j+1)*nlon], grid[(nlat-1-j)*nlon:(nlat-j)*nlon])
		}
		got := tr.Forward(flipped)
		for m := 0; m <= tr.T; m++ {
			for n := m; n <= tr.T; n++ {
				i := tr.Idx(m, n)
				want := spec[i]
				if (n+m)%2 == 1 {
					want = -want
				}
				if cmplx.Abs(got[i]-want) > 1e-10*(1+cmplx.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
