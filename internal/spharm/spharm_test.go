package spharm

import (
	"math"
	"math/rand"
	"testing"
)

func randomSpec(t *Transform, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	spec := make([]complex128, t.SpecLen())
	for m := 0; m <= t.T; m++ {
		for n := m; n <= t.T; n++ {
			re := rng.NormFloat64()
			im := rng.NormFloat64()
			if m == 0 {
				im = 0 // m=0 coefficients of a real field are real
			}
			spec[t.Idx(m, n)] = complex(re, im)
		}
	}
	return spec
}

func maxAbsDiffC(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		d := real(a[i]-b[i])*real(a[i]-b[i]) + imag(a[i]-b[i])*imag(a[i]-b[i])
		if d > m {
			m = d
		}
	}
	return math.Sqrt(m)
}

func TestCanonicalGrids(t *testing.T) {
	cases := []struct{ T, nlat, nlon int }{
		{42, 64, 128}, {63, 96, 192}, {85, 128, 256}, {106, 160, 320}, {170, 256, 512},
	}
	for _, c := range cases {
		nlat, nlon := CanonicalGrid(c.T)
		if nlat != c.nlat || nlon != c.nlon {
			t.Errorf("CanonicalGrid(T%d) = %dx%d, want %dx%d (Table 4)", c.T, nlat, nlon, c.nlat, c.nlon)
		}
	}
	// Fallback: unaliased and FFT friendly.
	nlat, nlon := CanonicalGrid(10)
	if nlon < 31 || 2*nlat < 31 {
		t.Errorf("fallback grid %dx%d aliases T10", nlat, nlon)
	}
}

func TestRoundTripSpectral(t *testing.T) {
	// Inverse then Forward must reproduce any truncated spectrum.
	tr := New(10, 16, 32)
	spec := randomSpec(tr, 1)
	back := tr.Forward(tr.Inverse(spec))
	if d := maxAbsDiffC(spec, back); d > 1e-10 {
		t.Errorf("spectral round trip error %g", d)
	}
}

func TestRoundTripT42(t *testing.T) {
	tr := NewCanonical(42)
	spec := randomSpec(tr, 2)
	back := tr.Forward(tr.Inverse(spec))
	if d := maxAbsDiffC(spec, back); d > 1e-9 {
		t.Errorf("T42 round trip error %g", d)
	}
}

func TestForwardOfSingleHarmonic(t *testing.T) {
	tr := New(8, 13, 25)
	// Grid field = real part of a single Y_n^m: its transform should
	// have exactly that coefficient.
	spec := make([]complex128, tr.SpecLen())
	spec[tr.Idx(3, 5)] = complex(1.3, -0.4)
	grid := tr.Inverse(spec)
	got := tr.Forward(grid)
	for m := 0; m <= tr.T; m++ {
		for n := m; n <= tr.T; n++ {
			want := complex(0, 0)
			if m == 3 && n == 5 {
				want = complex(1.3, -0.4)
			}
			if d := got[tr.Idx(m, n)] - want; math.Hypot(real(d), imag(d)) > 1e-11 {
				t.Errorf("coefficient (%d,%d) = %v, want %v", m, n, got[tr.Idx(m, n)], want)
			}
		}
	}
}

func TestMeanValue(t *testing.T) {
	tr := New(5, 8, 16)
	grid := make([]float64, tr.GridLen())
	for i := range grid {
		grid[i] = 7.5
	}
	if got := tr.MeanValue(grid); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("mean of constant = %v, want 7.5", got)
	}
	// The (0,0) coefficient carries the mean: f = a00 * P̄_0^0 = a00/sqrt(2).
	spec := tr.Forward(grid)
	if got := real(spec[tr.Idx(0, 0)]) / math.Sqrt2; math.Abs(got-7.5) > 1e-12 {
		t.Errorf("a00/sqrt(2) = %v, want 7.5", got)
	}
}

func TestLaplacianEigenvalues(t *testing.T) {
	tr := New(6, 10, 20)
	spec := make([]complex128, tr.SpecLen())
	spec[tr.Idx(2, 4)] = 1
	tr.Laplacian(spec)
	want := -4.0 * 5.0 / (tr.A * tr.A)
	if got := real(spec[tr.Idx(2, 4)]); math.Abs(got-want) > 1e-25 {
		t.Errorf("Laplacian eigenvalue = %g, want %g", got, want)
	}
	tr.InvLaplacian(spec)
	if got := real(spec[tr.Idx(2, 4)]); math.Abs(got-1) > 1e-12 {
		t.Errorf("InvLaplacian did not invert: %v", got)
	}
	// n=0 mode is annihilated.
	spec2 := make([]complex128, tr.SpecLen())
	spec2[tr.Idx(0, 0)] = 3
	tr.InvLaplacian(spec2)
	if spec2[tr.Idx(0, 0)] != 0 {
		t.Error("InvLaplacian kept the n=0 mode")
	}
}

func TestUVSolidBodyRotation(t *testing.T) {
	// ψ = -Ω a² μ gives u = Ω a cosφ (solid-body rotation), v = 0.
	// ζ = ∇²ψ = 2 Ω μ: a pure (0,1) harmonic.
	tr := New(10, 16, 32)
	omega := 3e-6
	zeta := make([]complex128, tr.SpecLen())
	// 2Ωμ = 2Ω P̄_1^0 / sqrt(1.5): since P̄_1^0 = sqrt(3/2) μ.
	zeta[tr.Idx(0, 1)] = complex(2*omega/math.Sqrt(1.5), 0)
	delta := make([]complex128, tr.SpecLen())
	U, V := tr.UV(zeta, delta)
	for j := 0; j < tr.NLat; j++ {
		mu := tr.Mu()[j]
		cos2 := 1 - mu*mu
		wantU := omega * tr.A * cos2 // U = u cosφ = Ωa cos²φ
		for i := 0; i < tr.NLon; i++ {
			if math.Abs(U[j*tr.NLon+i]-wantU) > 1e-6*math.Abs(wantU)+1e-9 {
				t.Fatalf("U(%d,%d) = %v, want %v", j, i, U[j*tr.NLon+i], wantU)
			}
			if math.Abs(V[j*tr.NLon+i]) > 1e-9 {
				t.Fatalf("V(%d,%d) = %v, want 0", j, i, V[j*tr.NLon+i])
			}
		}
	}
}

func TestForwardDivOfSolidBodyFlux(t *testing.T) {
	// For solid-body rotation, A = U(ζ+f) is zonally symmetric and
	// V = 0, so the vorticity tendency -div = 0.
	tr := New(10, 16, 32)
	omega := 3e-6
	U := make([]float64, tr.GridLen())
	A := make([]float64, tr.GridLen())
	B := make([]float64, tr.GridLen())
	for j := 0; j < tr.NLat; j++ {
		mu := tr.Mu()[j]
		for i := 0; i < tr.NLon; i++ {
			U[j*tr.NLon+i] = omega * tr.A * (1 - mu*mu)
			A[j*tr.NLon+i] = U[j*tr.NLon+i] * (2 * omega * mu)
		}
	}
	spec := tr.ForwardDiv(A, B)
	// ∂A/∂λ = 0 and B = 0 except the μ-derivative of A... A depends on
	// μ only, and ForwardDiv's second argument is B=0, so the result
	// must vanish identically.
	for i, c := range spec {
		if math.Hypot(real(c), imag(c)) > 1e-18 {
			t.Fatalf("ForwardDiv coefficient %d = %v, want 0", i, c)
		}
	}
}

func TestForwardDivMatchesLaplacian(t *testing.T) {
	// For a gradient flow (A, B) = ((1/a)∂f/∂λ, (1/a)(1-μ²)∂f/∂μ),
	// (1/(a(1-μ²)))∂A/∂λ + (1/a)∂B/∂μ = ∇²f... verify against the
	// spectral Laplacian on a random truncated field. Use a truncation
	// margin so the products remain representable.
	tr := New(20, 32, 64)
	inner := 9 // field truncated well inside T
	spec := make([]complex128, tr.SpecLen())
	rng := rand.New(rand.NewSource(5))
	for m := 0; m <= inner; m++ {
		for n := m; n <= inner; n++ {
			im := rng.NormFloat64()
			if m == 0 {
				im = 0
			}
			spec[tr.Idx(m, n)] = complex(rng.NormFloat64(), im)
		}
	}
	// Build A = (1/a) ∂f/∂λ and B = (1/a)(1-μ²)∂f/∂μ on the grid.
	dl := make([]complex128, tr.SpecLen())
	for m := 0; m <= tr.T; m++ {
		for n := m; n <= tr.T; n++ {
			dl[tr.Idx(m, n)] = complex(0, float64(m)) * spec[tr.Idx(m, n)]
		}
	}
	gA := tr.Inverse(dl)
	gB := tr.InverseMuDeriv(spec)
	for i := range gA {
		gA[i] /= tr.A
		gB[i] /= tr.A
	}
	got := tr.ForwardDiv(gA, gB)
	want := make([]complex128, tr.SpecLen())
	copy(want, spec)
	tr.Laplacian(want)
	// Compare on the inner truncation.
	for m := 0; m <= inner; m++ {
		for n := m; n <= inner; n++ {
			i := tr.Idx(m, n)
			diff := got[i] - want[i]
			scale := math.Hypot(real(want[i]), imag(want[i])) + 1e-18
			if math.Hypot(real(diff), imag(diff)) > 1e-6*scale {
				t.Fatalf("ForwardDiv != Laplacian at (m=%d,n=%d): %v vs %v", m, n, got[i], want[i])
			}
		}
	}
}

func TestNewPanicsOnAliasedGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("aliased grid did not panic")
		}
	}()
	New(42, 32, 64)
}

func TestIdxPanics(t *testing.T) {
	tr := New(5, 8, 16)
	defer func() {
		if recover() == nil {
			t.Error("bad index did not panic")
		}
	}()
	tr.Idx(3, 2)
}

func TestLongitudes(t *testing.T) {
	tr := New(5, 8, 16)
	l := tr.Longitudes()
	if len(l) != 16 || l[0] != 0 {
		t.Fatalf("longitudes %v", l[:2])
	}
	if math.Abs(l[8]-math.Pi) > 1e-14 {
		t.Errorf("l[8] = %v, want pi", l[8])
	}
}
