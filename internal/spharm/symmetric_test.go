package spharm

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestForwardSymMatchesPlain(t *testing.T) {
	tr := New(10, 16, 32)
	spec := randomSpec(tr, 21)
	grid := tr.Inverse(spec)
	plain := tr.Forward(grid)
	folded := tr.ForwardSym(grid)
	for i := range plain {
		if cmplx.Abs(plain[i]-folded[i]) > 1e-11*(1+cmplx.Abs(plain[i])) {
			t.Fatalf("folded forward differs at %d: %v vs %v", i, folded[i], plain[i])
		}
	}
}

func TestInverseSymMatchesPlain(t *testing.T) {
	tr := New(10, 16, 32)
	spec := randomSpec(tr, 22)
	plain := tr.Inverse(spec)
	folded := tr.InverseSym(spec)
	for i := range plain {
		if math.Abs(plain[i]-folded[i]) > 1e-10*(1+math.Abs(plain[i])) {
			t.Fatalf("folded inverse differs at %d: %v vs %v", i, folded[i], plain[i])
		}
	}
}

func TestSymRoundTripT42(t *testing.T) {
	tr := NewCanonical(42)
	spec := randomSpec(tr, 23)
	back := tr.ForwardSym(tr.InverseSym(spec))
	if d := maxAbsDiffC(spec, back); d > 1e-9 {
		t.Errorf("folded T42 round trip error %g", d)
	}
}

func TestParallelSynthesisBitIdentical(t *testing.T) {
	tr := New(10, 16, 32)
	spec := randomSpec(tr, 31)
	tr.Workers = 1
	serial := tr.Inverse(spec)
	tr.Workers = 4
	parallel := tr.Inverse(spec)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel synthesis differs at %d", i)
		}
	}
	tr.Workers = 0
}

func BenchmarkForwardPlain(b *testing.B) {
	tr := NewCanonical(42)
	grid := make([]float64, tr.GridLen())
	for i := range grid {
		grid[i] = float64(i % 11)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Forward(grid)
	}
}

func BenchmarkForwardSym(b *testing.B) {
	tr := NewCanonical(42)
	grid := make([]float64, tr.GridLen())
	for i := range grid {
		grid[i] = float64(i % 11)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.ForwardSym(grid)
	}
}

func TestSymFallsBackOnOddNLat(t *testing.T) {
	tr := New(8, 13, 25) // odd nlat
	spec := randomSpec(tr, 24)
	grid := tr.InverseSym(spec)
	back := tr.ForwardSym(grid)
	if d := maxAbsDiffC(spec, back); d > 1e-10 {
		t.Errorf("odd-nlat fallback round trip error %g", d)
	}
}
