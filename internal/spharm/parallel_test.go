package spharm

import "testing"

// The forward (analysis) transforms decompose over wavenumbers with
// latitude sums kept in ascending-j order, so every worker setting must
// reproduce the serial result bit for bit.
func TestParallelForwardBitIdentical(t *testing.T) {
	tr := New(10, 16, 32)
	grid := make([]float64, tr.GridLen())
	for i := range grid {
		grid[i] = float64(i%13) - 6 + 0.25*float64(i%7)
	}
	tr.Workers = 1
	serial := tr.Forward(grid)
	for _, workers := range []int{0, 2, 4, 9} {
		tr.Workers = workers
		got := tr.Forward(grid)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("Forward workers=%d differs at coefficient %d", workers, i)
			}
		}
	}
}

func TestParallelForwardDivBitIdentical(t *testing.T) {
	tr := New(10, 16, 32)
	A := make([]float64, tr.GridLen())
	B := make([]float64, tr.GridLen())
	for i := range A {
		A[i] = float64(i%11) - 5
		B[i] = 0.5 * float64(i%17)
	}
	tr.Workers = 1
	serial := tr.ForwardDiv(A, B)
	for _, workers := range []int{0, 3, 8} {
		tr.Workers = workers
		got := tr.ForwardDiv(A, B)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("ForwardDiv workers=%d differs at coefficient %d", workers, i)
			}
		}
	}
}
