package spharm

import (
	"sx4bench/internal/fftpack"
	"sx4bench/internal/gauss"
)

// Hemispheric symmetry: P̄_n^m has parity (-1)^{n+m} about the equator,
// so folding the northern and southern Gaussian rows into symmetric and
// antisymmetric halves lets the Legendre sums run over nlat/2 rows —
// the classic factor-of-two optimization every production spectral
// model (CCM2 included) uses.

// ForwardSym computes the same coefficients as Forward using the
// folded (half-latitude) sums. Requires an even nlat.
func (t *Transform) ForwardSym(grid []float64) []complex128 {
	if t.NLat%2 != 0 {
		return t.Forward(grid)
	}
	rows := t.fourierRows(grid)
	half := t.NLat / 2
	spec := make([]complex128, t.SpecLen())
	for j := 0; j < half; j++ {
		jn := t.NLat - 1 - j // mirror row (northern partner of j)
		wj := complex(t.w[j], 0)
		for m := 0; m <= t.T; m++ {
			south := rows[j][m]
			north := rows[jn][m]
			sym := (south + north) * wj
			anti := (north - south) * wj
			for n := m; n <= t.T; n++ {
				// Basis evaluated on the northern-hemisphere row; the
				// southern row's contribution is folded in through the
				// parity of P̄_n^m.
				p := complex(t.pbar[jn][gauss.PbarIdx(t.T, t.T+1, m, n)], 0)
				if (n+m)%2 == 0 {
					spec[t.Idx(m, n)] += sym * p
				} else {
					spec[t.Idx(m, n)] += anti * p
				}
			}
		}
	}
	return spec
}

// InverseSym synthesizes the grid using the folded sums.
func (t *Transform) InverseSym(spec []complex128) []float64 {
	if t.NLat%2 != 0 {
		return t.Inverse(spec)
	}
	if len(spec) != t.SpecLen() {
		panic("spharm: spectral length mismatch")
	}
	half := t.NLat / 2
	grid := make([]float64, t.GridLen())
	for j := 0; j < half; j++ {
		jn := t.NLat - 1 - j
		// Accumulate the symmetric and antisymmetric Fourier parts on
		// the northern row's basis values.
		hbufS := make([]complex128, t.T+1)
		hbufA := make([]complex128, t.T+1)
		for m := 0; m <= t.T; m++ {
			var sym, anti complex128
			for n := m; n <= t.T; n++ {
				p := complex(t.pbar[jn][gauss.PbarIdx(t.T, t.T+1, m, n)], 0)
				c := spec[t.Idx(m, n)] * p
				if (n+m)%2 == 0 {
					sym += c
				} else {
					anti += c
				}
			}
			hbufS[m] = sym
			hbufA[m] = anti
		}
		// North row = sym + anti; south row = sym - anti.
		synthRow(t, grid, jn, hbufS, hbufA, +1)
		synthRow(t, grid, j, hbufS, hbufA, -1)
	}
	return grid
}

func synthRow(t *Transform, grid []float64, j int, sym, anti []complex128, sign float64) {
	half := make([]complex128, t.NLon/2+1)
	for m := 0; m <= t.T; m++ {
		half[m] = (sym[m] + complex(sign, 0)*anti[m]) * complex(float64(t.NLon), 0)
	}
	row := fftpack.RealInverse(half, t.NLon)
	copy(grid[j*t.NLon:(j+1)*t.NLon], row)
}
