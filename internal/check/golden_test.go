package check

import (
	"testing"

	"sx4bench"
)

// TestGoldenArtifacts is the regression gate: every paper table and
// figure must render byte-identically to its committed golden. A
// failure here means a model or formatting change moved an artifact —
// if intentional, regenerate with `make goldens` (or
// `go run ./cmd/goldens -update`) and review the git diff.
func TestGoldenArtifacts(t *testing.T) {
	mismatches, err := Verify("testdata/goldens")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s\n(run `make goldens` if this change is intentional)", m)
	}
}

// TestGoldenRenderDeterministic renders every artifact on two fresh
// machines and once more on the warmed first machine; all three must be
// byte-identical. This pins down that the artifact pipeline has no
// hidden dependence on wall clock, map iteration order, goroutine
// scheduling, or the timing cache's warm/cold state.
func TestGoldenRenderDeterministic(t *testing.T) {
	m1 := sx4bench.Benchmarked()
	m2 := sx4bench.Benchmarked()
	for _, id := range Artifacts() {
		a, err := Render(m1, id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Render(m2, id)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: differs across fresh machines at %s", id, FirstDiff(a, b))
		}
		warm, err := Render(m1, id)
		if err != nil {
			t.Fatal(err)
		}
		if a != warm {
			t.Errorf("%s: warm re-render differs at %s", id, FirstDiff(a, warm))
		}
		if a == "" {
			t.Errorf("%s: rendered empty", id)
		}
	}
}

// TestArtifactsCoverPaperTablesAndFigures guards the artifact list
// itself: all seven paper tables and all four reproduced figures must
// stay pinned, and every listed id must be a real experiment.
func TestArtifactsCoverPaperTablesAndFigures(t *testing.T) {
	have := map[string]bool{}
	for _, id := range Artifacts() {
		have[id] = true
	}
	for _, id := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig5", "fig6", "fig7", "fig8",
	} {
		if !have[id] {
			t.Errorf("paper artifact %s missing from Artifacts()", id)
		}
	}
	known := map[string]bool{}
	for _, id := range sx4bench.Experiments() {
		known[id] = true
	}
	for _, id := range Artifacts() {
		if !known[id] {
			t.Errorf("Artifacts() lists %s, which is not an experiment id", id)
		}
	}
}

func TestRenderUnknownArtifact(t *testing.T) {
	if _, err := Render(sx4bench.Benchmarked(), "nosuch"); err == nil {
		t.Error("Render accepted an unknown artifact id")
	}
}
