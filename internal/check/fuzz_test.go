package check

import (
	"encoding/json"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"sx4bench/internal/benchjson"
	"sx4bench/internal/sx4"
)

// FuzzProgramFingerprint drives the trace IR with arbitrary structured
// inputs: every decoded program must validate, dump, and fingerprint
// deterministically, clones must collide, and a structural mutation
// must not.
func FuzzProgramFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte("the performance of the NEC SX-4"))
	f.Add([]byte{255, 255, 0, 128, 9, 9, 9, 64, 64, 64, 64, 64, 64, 64, 64, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeProgram(data)
		if err := p.Validate(); err != nil {
			t.Fatalf("DecodeProgram produced an invalid program: %v", err)
		}
		if err := p.Dump(io.Discard); err != nil {
			t.Fatalf("Dump: %v", err)
		}
		if p.Flops() < 0 || p.Words() < 0 {
			t.Fatalf("negative totals: flops=%d words=%d", p.Flops(), p.Words())
		}
		fp := p.Fingerprint()
		if again := DecodeProgram(data).Fingerprint(); again != fp {
			t.Fatalf("decode not deterministic: %x vs %x", fp, again)
		}
		if cl := p.Clone().Fingerprint(); cl != fp {
			t.Fatalf("clone fingerprint %x differs from original %x", cl, fp)
		}
		mutated := p.Clone()
		mutated.Name = p.Name + "'"
		if mutated.Fingerprint() == fp {
			t.Fatal("renamed program kept the same fingerprint")
		}
	})
}

// FuzzMachineRun decodes a full (config, program, opts) case and checks
// run-cache coherence: cached, clone-keyed, and uncached runs must be
// deep-equal; totals must match the program's analytic counts; times
// must be finite and non-negative. Any panic is a finding.
func FuzzMachineRun(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	f.Add([]byte{9, 2, 32, 1, 8, 2, 4, 1, 2, 3, 48, 24, 0, 0, 0, 0, 5, 0, 200, 7, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, p, opts := DecodeCase(data)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("DecodeCase produced an invalid config: %v", err)
		}
		m := sx4.New(cfg)
		cold := m.Run(p, opts)
		// A clone has the same fingerprint, so it must hit the memo and
		// return the identical result; an uncached machine must agree.
		viaClone := m.Run(p.Clone(), opts)
		fresh := sx4.New(cfg)
		fresh.SetCache(false)
		direct := fresh.Run(p, opts)
		if !reflect.DeepEqual(cold, viaClone) {
			t.Fatalf("clone-keyed cached run differs:\n%+v\n%+v", cold, viaClone)
		}
		if !reflect.DeepEqual(cold, direct) {
			t.Fatalf("cached and uncached runs differ:\n%+v\n%+v", cold, direct)
		}
		if cold.Flops != p.Flops() {
			t.Fatalf("Result.Flops=%d, program says %d", cold.Flops, p.Flops())
		}
		if cold.Words != p.Words() {
			t.Fatalf("Result.Words=%d, program says %d", cold.Words, p.Words())
		}
		for _, v := range []float64{cold.Clocks, cold.Seconds} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite or negative time in %+v", cold)
			}
		}
	})
}

// FuzzReportParse feeds arbitrary text to the benchmark-report parser:
// it must never panic, must be deterministic, and every accepted
// baseline must be internally consistent and JSON-serializable.
func FuzzReportParse(f *testing.F) {
	f.Add("")
	f.Add("goos: linux\ngoarch: amd64\ncpu: X\nBenchmarkRADABS-8 100 11983456 ns/op 876 mflops\nPASS\n")
	f.Add("BenchmarkRunAllSerial-8 5 200000000 ns/op\nBenchmarkRunAllParallel-8 10 100000000 ns/op\n")
	f.Add("Benchmark 1 2 ns/op\nBenchmarkX-8 NaN 5 ns/op\n\x00\xff\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := benchjson.Parse(strings.NewReader(input))
		b2, err2 := benchjson.Parse(strings.NewReader(input))
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(b, b2) {
			t.Fatal("Parse is not deterministic")
		}
		if err != nil {
			return
		}
		if len(b.Benchmarks) == 0 {
			t.Fatal("Parse succeeded with zero benchmarks")
		}
		for _, r := range b.Benchmarks {
			if !strings.HasPrefix(r.Name, "Benchmark") {
				t.Fatalf("accepted non-benchmark name %q", r.Name)
			}
		}
		if math.IsNaN(b.RunAllSpeedup) || b.RunAllSpeedup < 0 {
			t.Fatalf("bad speedup %v", b.RunAllSpeedup)
		}
		if _, err := json.Marshal(b); err != nil {
			t.Fatalf("baseline not serializable: %v", err)
		}
	})
}
