package check

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"sx4bench"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

// randCases returns n deterministic pseudo-random fuzz-input slices;
// each decodes to a valid (config, program, opts) case via DecodeCase.
func randCases(n int) [][]byte {
	rng := rand.New(rand.NewSource(961996)) // SC'96
	out := make([][]byte, n)
	for i := range out {
		buf := make([]byte, 16+rng.Intn(128))
		rng.Read(buf)
		out[i] = buf
	}
	return out
}

// TestMetamorphicClockInverse: simulated Clocks are a pure function of
// program structure and machine geometry — the cycle time only converts
// them to Seconds. Halving ClockNS must leave Clocks bit-identical and
// halve Seconds.
func TestMetamorphicClockInverse(t *testing.T) {
	for i, data := range randCases(40) {
		cfg, p, opts := DecodeCase(data)
		fast := cfg
		fast.ClockNS = cfg.ClockNS / 2
		r1 := sx4.New(cfg).Run(p, opts)
		r2 := sx4.New(fast).Run(p, opts)
		if r1.Clocks != r2.Clocks {
			t.Errorf("case %d: Clocks moved with clock frequency: %v vs %v", i, r1.Clocks, r2.Clocks)
		}
		if r1.Seconds != 2*r2.Seconds {
			t.Errorf("case %d: Seconds %v at %vns, %v at %vns; want exact 2x",
				i, r1.Seconds, cfg.ClockNS, r2.Seconds, fast.ClockNS)
		}
	}
}

// TestMetamorphicCacheTransparent: a warm memoized run, a second warm
// run, and a run on an uncached machine must agree exactly — the memo
// may never change results, only skip work.
func TestMetamorphicCacheTransparent(t *testing.T) {
	for i, data := range randCases(40) {
		cfg, p, opts := DecodeCase(data)
		cached := sx4.New(cfg)
		cold := cached.Run(p, opts)
		warm := cached.Run(p, opts)
		uncached := sx4.New(cfg)
		uncached.SetCache(false)
		direct := uncached.Run(p, opts)
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("case %d: warm run differs from cold run", i)
		}
		if !reflect.DeepEqual(cold, direct) {
			t.Errorf("case %d: cached result differs from uncached: %+v vs %+v", i, cold, direct)
		}
	}
}

// TestMetamorphicCloneCoherent: a deep-copied program must fingerprint
// and execute identically to the original.
func TestMetamorphicCloneCoherent(t *testing.T) {
	for i, data := range randCases(40) {
		cfg, p, opts := DecodeCase(data)
		q := p.Clone()
		if p.Fingerprint() != q.Fingerprint() {
			t.Errorf("case %d: clone fingerprint differs", i)
		}
		m := sx4.New(cfg)
		if !reflect.DeepEqual(m.Run(p, opts), m.Run(q, opts)) {
			t.Errorf("case %d: clone runs differently", i)
		}
	}
}

// TestMetamorphicStrideOneOptimal: rewriting every strided memory
// access to stride 1 can only help — unit stride is the paper's
// conflict-free guarantee, and every conflict factor is >= 1.
func TestMetamorphicStrideOneOptimal(t *testing.T) {
	for i, data := range randCases(60) {
		cfg, p, opts := DecodeCase(data)
		q := p.Clone()
		touched := false
		for pi := range q.Phases {
			for li := range q.Phases[pi].Loops {
				body := q.Phases[pi].Loops[li].Body
				for oi := range body {
					if body[oi].Class == prog.VLoad || body[oi].Class == prog.VStore {
						if body[oi].Stride != 1 {
							touched = true
						}
						body[oi].Stride = 1
					}
				}
			}
		}
		if !touched {
			continue
		}
		m := sx4.New(cfg)
		orig := m.Run(p, opts)
		unit := m.Run(q, opts)
		if unit.Clocks > orig.Clocks {
			t.Errorf("case %d: stride-1 rewrite slowed the run: %v > %v clocks",
				i, unit.Clocks, orig.Clocks)
		}
	}
}

// TestMetamorphicActiveCPUsMonotone: more busy CPUs on the node can
// only add contention and interference; Clocks must be non-decreasing
// in ActiveCPUs for a fixed program and allocation.
func TestMetamorphicActiveCPUsMonotone(t *testing.T) {
	for i, data := range randCases(40) {
		cfg, p, opts := DecodeCase(data)
		m := sx4.New(cfg)
		prev := -1.0
		for _, active := range []int{opts.Procs, 8, 16, 32} {
			o := opts
			o.ActiveCPUs = active
			r := m.Run(p, o)
			if prev >= 0 && r.Clocks < prev {
				t.Errorf("case %d: Clocks dropped from %v to %v when ActiveCPUs rose to %d",
					i, prev, r.Clocks, active)
			}
			if r.Clocks > prev {
				prev = r.Clocks
			}
		}
	}
}

// TestMetamorphicVectorLengthMonotone: for fixed total work (VL x trips
// constant), longer vectors amortize startup and loop overhead, so
// total clocks are monotone non-increasing in VL. This is the
// long-vector advantage the paper's Figure 5 sweep measures.
func TestMetamorphicVectorLengthMonotone(t *testing.T) {
	m := sx4.New(sx4.Benchmarked())
	const totalElems = 1 << 16
	bodies := []struct {
		name string
		ops  func(vl int) []prog.Op
	}{
		{"axpy", func(vl int) []prog.Op {
			return []prog.Op{
				{Class: prog.VLoad, VL: vl, Stride: 1},
				{Class: prog.VLoad, VL: vl, Stride: 1},
				{Class: prog.VMul, VL: vl},
				{Class: prog.VAdd, VL: vl},
				{Class: prog.VStore, VL: vl, Stride: 1},
			}
		}},
		{"strided-div", func(vl int) []prog.Op {
			return []prog.Op{
				{Class: prog.VLoad, VL: vl, Stride: 5},
				{Class: prog.VDiv, VL: vl},
				{Class: prog.VStore, VL: vl, Stride: 5},
			}
		}},
		{"intrinsic", func(vl int) []prog.Op {
			return []prog.Op{
				{Class: prog.VLoad, VL: vl, Stride: 1},
				{Class: prog.VIntrinsic, VL: vl, Intr: prog.Exp},
				{Class: prog.VStore, VL: vl, Stride: 1},
			}
		}},
	}
	for _, b := range bodies {
		prev := -1.0
		prevVL := 0
		for vl := 4; vl <= totalElems; vl *= 4 {
			p := prog.Simple(b.name, int64(totalElems/vl), b.ops(vl)...)
			r := m.Run(p, sx4.RunOpts{Procs: 1})
			if prev >= 0 && r.Clocks > prev {
				t.Errorf("%s: clocks rose from %v (VL=%d) to %v (VL=%d) at fixed work",
					b.name, prev, prevVL, r.Clocks, vl)
			}
			prev = r.Clocks
			prevVL = vl
		}
	}
}

// TestMetamorphicWorkersInvariant: the experiment engine's worker count
// is an execution detail; RunAll output must be byte-identical whether
// the suite runs serially, on GOMAXPROCS workers, or on an awkward
// worker count.
func TestMetamorphicWorkersInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite three times")
	}
	var serial bytes.Buffer
	if err := sx4bench.RunAllWorkers(&serial, sx4bench.Benchmarked(), 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 7} {
		var out bytes.Buffer
		if err := sx4bench.RunAllWorkers(&out, sx4bench.Benchmarked(), workers); err != nil {
			t.Fatal(err)
		}
		if out.String() != serial.String() {
			t.Errorf("workers=%d output differs from serial at %s",
				workers, FirstDiff(serial.String(), out.String()))
		}
	}
}
