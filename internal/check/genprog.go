package check

import (
	"sx4bench/internal/sx4/prog"
)

// byteReader consumes a fuzz-input byte slice one value at a time,
// returning zeros once exhausted so any prefix of a valid input is also
// a valid input (the shape Go's fuzz mutator exploits best).
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) uint16() int {
	return int(r.byte())<<8 | int(r.byte())
}

// rangeInt maps one byte onto [lo, hi] inclusive.
func (r *byteReader) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + int(r.byte())%(hi-lo+1)
}

// DecodeProgram interprets arbitrary bytes as a structurally valid
// operation trace: every program it returns passes prog.Validate, so
// fuzz targets exercise the machine model rather than the validator.
// The construction is total — any byte slice, including empty, decodes
// to some program — and deterministic, so equal inputs give equal
// (and equal-fingerprint) programs.
func DecodeProgram(data []byte) prog.Program {
	r := &byteReader{data: data}
	p := prog.Program{Name: "fuzz"}
	nPhases := r.rangeInt(1, 3)
	for i := 0; i < nPhases; i++ {
		ph := prog.Phase{
			Name:     "phase",
			Parallel: r.byte()%2 == 0,
			Barriers: r.rangeInt(0, 2),
		}
		if r.byte()%4 == 0 {
			ph.SerialClocks = float64(r.uint16())
		}
		nLoops := r.rangeInt(0, 2)
		for j := 0; j < nLoops; j++ {
			l := prog.Loop{Trips: int64(r.rangeInt(0, 1000))}
			nOps := r.rangeInt(1, 5)
			for k := 0; k < nOps; k++ {
				l.Body = append(l.Body, decodeOp(r))
			}
			ph.Loops = append(ph.Loops, l)
		}
		p.Phases = append(p.Phases, ph)
	}
	return p
}

func decodeOp(r *byteReader) prog.Op {
	op := prog.Op{Class: prog.Class(int(r.byte()) % 10)}
	switch op.Class {
	case prog.Scalar:
		op.Count = r.rangeInt(1, 500)
	default:
		op.VL = 1 + r.uint16()%4096
	}
	switch {
	case op.Class == prog.VLoad || op.Class == prog.VStore:
		// Strides from -8..8 cover contiguous, stride-2 and the
		// conflict-prone odd/even cases; 0 behaves as broadcast.
		op.Stride = r.rangeInt(-8, 8)
	case op.Class.IsIndirect():
		op.Span = r.rangeInt(0, 1<<14)
	case op.Class == prog.VIntrinsic:
		op.Intr = prog.Intrinsic(int(r.byte()) % prog.NumIntrinsics)
	}
	if r.byte()%8 == 0 {
		op.FlopsPerElem = r.rangeInt(1, 4)
	}
	return op
}
