package check

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sx4bench/internal/machine"
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// The compiled-trace differential suite: the interpreted engine is the
// oracle, and every property below pins the compiled path — Compile
// followed by the flat walk — to be bit-identical to it, over the same
// randomized (config, program, opts) cases the metamorphic suite uses.

// TestQuickCompiledBitIdentical: with the memo out of the way, the
// compiled engine and the interpreted engine must agree bit for bit on
// randomized traces — Clocks, Seconds, Flops, Words, and every phase
// record.
func TestQuickCompiledBitIdentical(t *testing.T) {
	for i, data := range randCases(120) {
		cfg, p, opts := DecodeCase(data)
		compiled := sx4.New(cfg)
		compiled.SetCache(false)
		interp := sx4.New(cfg)
		interp.SetCache(false)
		interp.SetCompiled(false)
		rc := compiled.Run(p, opts)
		ri := interp.Run(p, opts)
		if !reflect.DeepEqual(rc, ri) {
			t.Errorf("case %d: compiled run differs from interpreted: %+v vs %+v", i, rc, ri)
		}
	}
}

// TestQuickRunCompiledMatchesRun: the RunCompiled entry point (a
// pre-flattened trace with its stamped fingerprint) must agree with
// Run on the source program, on the same machine, memo enabled — the
// two entry points share one memo, so any divergence would poison it.
func TestQuickRunCompiledMatchesRun(t *testing.T) {
	for i, data := range randCases(80) {
		cfg, p, opts := DecodeCase(data)
		c, err := prog.Compile(p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		m := sx4.New(cfg)
		viaRun := m.Run(p, opts)
		viaCompiled := m.RunCompiled(c, opts)
		if !reflect.DeepEqual(viaRun, viaCompiled) {
			t.Errorf("case %d: RunCompiled differs from Run: %+v vs %+v", i, viaRun, viaCompiled)
		}
		// And memo-cold in the opposite order on a fresh machine.
		m2 := sx4.New(cfg)
		viaCompiled2 := m2.RunCompiled(c, opts)
		if !reflect.DeepEqual(viaRun, viaCompiled2) {
			t.Errorf("case %d: memo-cold RunCompiled differs from Run: %+v vs %+v",
				i, viaRun, viaCompiled2)
		}
	}
}

// TestQuickWorkstationCompiledBitIdentical: the workstation models
// carry the same compiled/interpreted pair; both engines and both
// entry points must agree on randomized traces.
func TestQuickWorkstationCompiledBitIdentical(t *testing.T) {
	ctors := []func() *machine.Workstation{machine.SunSparc20, machine.IBMRS6000590}
	for i, data := range randCases(60) {
		p := DecodeProgram(data)
		c, err := prog.Compile(p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, ctor := range ctors {
			compiled := ctor()
			interp := ctor()
			interp.SetCompiled(false)
			rc := compiled.Run(p, target.RunOpts{Procs: 1})
			ri := interp.Run(p, target.RunOpts{Procs: 1})
			if !reflect.DeepEqual(rc, ri) {
				t.Errorf("case %d (%s): compiled differs from interpreted: %+v vs %+v",
					i, compiled.Name(), rc, ri)
			}
			rcc := compiled.RunCompiled(c, target.RunOpts{Procs: 1})
			if !reflect.DeepEqual(rc, rcc) {
				t.Errorf("case %d (%s): RunCompiled differs from Run: %+v vs %+v",
					i, compiled.Name(), rc, rcc)
			}
		}
	}
}

// TestCompiledConcurrentReuse: many goroutines hammer one machine with
// a mix of Run and RunCompiled over a small program set, so the
// compiled-trace cache's first-store-wins path, the sharded memo and
// the shared *compiledProgram values all see real concurrent reuse.
// Every goroutine must observe results identical to a serial oracle;
// `go test -race ./internal/check` (CI's race-full) makes this a
// data-race proof, not just an equality check.
func TestCompiledConcurrentReuse(t *testing.T) {
	cases := randCases(16)
	type unit struct {
		p    prog.Program
		c    *prog.Compiled
		opts sx4.RunOpts
		want sx4.Result
	}
	cfg := sx4.Benchmarked()
	oracle := sx4.New(cfg)
	oracle.SetCache(false)
	oracle.SetCompiled(false)
	units := make([]unit, len(cases))
	for i, data := range cases {
		_, p, opts := DecodeCase(data)
		units[i] = unit{p: p, c: prog.MustCompile(p), opts: opts, want: oracle.Run(p, opts)}
	}

	shared := sx4.New(cfg)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				u := &units[(g+rep)%len(units)]
				var got sx4.Result
				if (g+rep)%2 == 0 {
					got = shared.Run(u.p, u.opts)
				} else {
					got = shared.RunCompiled(u.c, u.opts)
				}
				if !reflect.DeepEqual(got, u.want) {
					errs[g] = &mismatchError{g: g, rep: rep}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchError struct{ g, rep int }

func (e *mismatchError) Error() string {
	return fmt.Sprintf("goroutine %d rep %d: concurrent compiled run diverged from serial oracle", e.g, e.rep)
}
