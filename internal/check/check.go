// Package check is the differential verification subsystem: the layer
// that pins the reproduction's *artifacts* down so refactors of the
// machine model or the benchmark runners cannot silently bend the
// paper's tables and figures while every unit test still passes.
//
// It has three parts:
//
//   - The golden-artifact harness (this file, golden_test.go and
//     cmd/goldens): every paper table and figure — plus the scalar
//     anchors and the multinode/profile projections — rendered to
//     canonical byte-stable text via the same sx4bench.RunExperiment
//     path cmd/figures uses, and compared byte-for-byte against
//     testdata/goldens on every `go test`. `make goldens` (cmd/goldens
//     -update) regenerates the files after an intentional model change.
//   - The metamorphic property suite (metamorphic_test.go): invariants
//     of the machine model — clock-frequency inversion, vector-length
//     amortization, cache warm/cold and worker-count invariance,
//     stride-1 conflict-freedom — expressed over randomized operation
//     traces, so they survive recalibrations that legitimately move
//     the goldens.
//   - Native fuzz targets (fuzz_test.go): FuzzProgramFingerprint,
//     FuzzMachineRun and FuzzReportParse, with seed corpora under
//     testdata/fuzz, asserting no panics and fingerprint/run-cache
//     coherence on arbitrary structured inputs.
package check

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"sx4bench"
	"sx4bench/internal/core"
)

// DefaultDir is the repository-relative golden directory.
const DefaultDir = "internal/check/testdata/goldens"

// Artifacts returns the identifiers of every golden-pinned artifact, in
// render order: the seven paper tables, the four paper figures, the
// scalar anchors (RADABS, POP, PRODLOAD), the I/O category, the
// multinode and profile projections, the cross-machine suite sweep,
// the resilience sweep (degraded-mode rates and recovery accounting
// under the canonical fault schedule), the canonical sx4d /v1/run
// response body (the daemon's content-addressed wire bytes for the
// full suite on the flagship configuration), and the fleet capacity
// Monte Carlo (per-mix latency percentiles and recovery accounting
// over the canonical fleet, checksum included). The identifiers are
// the sx4bench.RunExperiment ids, so any golden can be reproduced by
// hand with `go run ./cmd/figures -exp <id>`.
//
// Deliberately absent: "correctness" and "report", whose output embeds
// PARANOIA/ELEFUNT probes of the host's floating-point arithmetic —
// pinned by their own unit tests, but not byte-stable across
// architectures the way the pure-model artifacts are.
func Artifacts() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig5", "fig6", "fig7", "fig8",
		"radabs", "pop", "prodload", "io",
		"multinode", "profile", "crossmachine", "resilience",
		"serve", "capacity",
	}
}

// Render produces the canonical text of one artifact on m — exactly the
// bytes `cmd/figures -exp id` writes.
func Render(m *sx4bench.Machine, id string) (string, error) {
	var buf strings.Builder
	if err := sx4bench.RunExperiment(&buf, m, id); err != nil {
		return "", fmt.Errorf("check: render %s: %w", id, err)
	}
	return buf.String(), nil
}

// GoldenPath returns the golden file path for an artifact id.
func GoldenPath(dir, id string) string {
	return filepath.Join(dir, id+".golden")
}

// Mismatch describes one artifact whose rendered text differs from its
// golden file.
type Mismatch struct {
	ID      string
	Path    string
	Missing bool   // no golden file on disk
	Diff    string // first differing line, empty when Missing
}

func (m Mismatch) String() string {
	if m.Missing {
		return fmt.Sprintf("%s: golden file %s missing", m.ID, m.Path)
	}
	return fmt.Sprintf("%s: differs from %s at %s", m.ID, m.Path, m.Diff)
}

// Verify renders every artifact on a fresh benchmarked machine and
// compares the output byte-for-byte against the goldens in dir. It
// returns one Mismatch per differing or missing artifact; rendering or
// filesystem failures (other than a missing golden) are errors.
func Verify(dir string) ([]Mismatch, error) {
	return VerifyIDs(dir, Artifacts())
}

// VerifyIDs is Verify restricted to the given artifact ids.
func VerifyIDs(dir string, ids []string) ([]Mismatch, error) {
	m := sx4bench.Benchmarked()
	var out []Mismatch
	for _, id := range ids {
		got, err := Render(m, id)
		if err != nil {
			return nil, err
		}
		path := GoldenPath(dir, id)
		want, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			out = append(out, Mismatch{ID: id, Path: path, Missing: true})
			continue
		}
		if err != nil {
			return nil, err
		}
		if got != string(want) {
			out = append(out, Mismatch{ID: id, Path: path, Diff: FirstDiff(string(want), got)})
		}
	}
	return out, nil
}

// Update renders every artifact and rewrites the goldens in dir,
// returning the ids whose files were created or changed. An update run
// on an unchanged model is a no-op with an empty changed list, so
// `cmd/goldens -update` round-trips to a clean git diff.
func Update(dir string) ([]string, error) {
	return UpdateIDs(dir, Artifacts())
}

// UpdateIDs is Update restricted to the given artifact ids.
func UpdateIDs(dir string, ids []string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := sx4bench.Benchmarked()
	var changed []string
	for _, id := range ids {
		got, err := Render(m, id)
		if err != nil {
			return changed, err
		}
		path := GoldenPath(dir, id)
		old, err := os.ReadFile(path)
		if err == nil && string(old) == got {
			continue
		}
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return changed, err
		}
		if err := core.WriteFileAtomic(path, []byte(got), 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, id)
	}
	return changed, nil
}

// FirstDiff locates the first line where got departs from want and
// renders it diff-style, for test failure messages.
func FirstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n\t-%s\n\t+%s", i+1, w, g)
		}
	}
	return "no difference"
}
