package check

import (
	"strconv"
	"strings"
	"testing"

	"sx4bench/internal/fault"
	"sx4bench/internal/ncar"
)

// Metamorphic properties of the resilience subsystem, expressed over
// the same rendered table the golden pins.

// TestResilienceFaultFreeIdentity: a nil injector and an empty plan
// must produce identical tables, with the faulted makespan column
// equal to the healthy one — injecting nothing is the same as not
// injecting.
func TestResilienceFaultFreeIdentity(t *testing.T) {
	nilTab, err := ncar.ResilienceTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	emptyTab, err := ncar.ResilienceTable(&fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	var nilPlan *fault.Plan
	nilPlanTab, err := ncar.ResilienceTable(nilPlan)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range nilTab.Rows {
		for j, cell := range row {
			if emptyTab.Rows[i][j] != cell || nilPlanTab.Rows[i][j] != cell {
				t.Errorf("row %d col %d: nil=%q empty=%q nilplan=%q",
					i, j, cell, emptyTab.Rows[i][j], nilPlanTab.Rows[i][j])
			}
		}
		if row[4] != row[5] {
			t.Errorf("%s: fault-free faulted makespan %s != healthy %s", row[0], row[5], row[4])
		}
	}
}

// TestResilienceNeverLosesJobs: under the canonical schedule (and a
// harsher seeded one) every machine's Lost column is zero — a
// submitted job is recovered or reported failed, never dropped.
func TestResilienceNeverLosesJobs(t *testing.T) {
	for _, inj := range []fault.Injector{
		fault.Canonical(),
		fault.NewPlan(7, 400, 24),
	} {
		tab, err := ncar.ResilienceTable(inj)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if lost := row[len(row)-1]; lost != "0" {
				t.Errorf("%s: %s jobs lost", row[0], lost)
			}
		}
	}
}

// TestResilienceDegradedNeverFasterThanHealthy: the faulted makespan
// is bounded below by the healthy one, and a degraded rate never
// exceeds the healthy rate.
func TestResilienceDegradedNeverFasterThanHealthy(t *testing.T) {
	tab, err := ncar.ResilienceTable(fault.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable cell %q: %v", s, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		if parse(row[5]) < parse(row[4]) {
			t.Errorf("%s: faulted makespan %s beat healthy %s", row[0], row[5], row[4])
		}
		if row[2] != "down" && parse(row[2]) > parse(row[1]) {
			t.Errorf("%s: degraded rate %s beat healthy %s", row[0], row[2], row[1])
		}
		if row[3] != "down" && !strings.HasSuffix(row[3], "x") {
			t.Errorf("%s: malformed slowdown cell %q", row[0], row[3])
		}
	}
}

// TestResilienceCanonicalShowsAllModes: the golden scenario must keep
// exhibiting the three behaviours it was designed around — a machine
// taken down, a machine degraded but alive, and at least one
// checkpoint-driven recovery.
func TestResilienceCanonicalShowsAllModes(t *testing.T) {
	tab, err := ncar.ResilienceTable(fault.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	var downs, degraded, recovered int
	for _, row := range tab.Rows {
		if row[2] == "down" {
			downs++
		} else {
			degraded++
		}
		if row[6] != "0" {
			recovered++
		}
	}
	if downs == 0 || degraded == 0 || recovered == 0 {
		t.Errorf("canonical scenario lost its variety: %d down, %d degraded, %d with recoveries",
			downs, degraded, recovered)
	}
}