package check

import (
	"sx4bench/internal/sx4"
	"sx4bench/internal/sx4/prog"
)

// The complete-case decoder lives in a test file, not in genprog.go:
// it constructs sx4.Config values, and the layering invariant
// (enforced by the sx4lint layering analyzer) keeps non-test code in
// this package off the concrete SX-4 model. The fuzz targets and
// metamorphic properties that consume it are all _test code.

// pick selects one element of choices from one byte.
func pick(r *byteReader, choices []int) int {
	return choices[int(r.byte())%len(choices)]
}

// DecodeCase interprets arbitrary bytes as a complete model input: a
// valid machine configuration, a valid program, and run options. The
// configuration starts from the paper's benchmarked system and perturbs
// the performance-relevant axes within hardware-plausible bounds. The
// bounds keep MemoryBanks >= VectorPipes*BankBusyClocks, so the
// bank-conflict model's conflict-free window never degenerates.
func DecodeCase(data []byte) (sx4.Config, prog.Program, sx4.RunOpts) {
	r := &byteReader{data: data}
	cfg := sx4.Benchmarked()
	cfg.ClockNS = []float64{9.2, 8.0, 4.0, 16.0}[int(r.byte())%4]
	cfg.CPUs = r.rangeInt(1, 32)
	cfg.Nodes = r.rangeInt(1, 16)
	cfg.VectorPipes = pick(r, []int{1, 2, 4, 8, 16})
	cfg.VectorRegElems = pick(r, []int{64, 128, 256, 512})
	cfg.MemoryBanks = pick(r, []int{64, 128, 256, 512, 1024})
	cfg.BankBusyClocks = pick(r, []int{1, 2, 4})
	cfg.PortWordsPerClock = pick(r, []int{4, 8, 16, 32})
	cfg.NodeWordsPerClock = pick(r, []int{128, 256, 512, 1024})
	cfg.VectorStartupClocks = r.rangeInt(0, 64)
	cfg.MemStartupClocks = r.rangeInt(0, 128)
	cfg.GatherWordsPerClock = []float64{0.5, 1, 2, 4}[int(r.byte())%4]
	cfg.StridedPenalty = []float64{1, 1.5, 2.5, 4}[int(r.byte())%4]
	cfg.IntrinsicScale = []float64{0, 0.5, 1, 2}[int(r.byte())%4]
	cfg.ScalarIssuePerClock = pick(r, []int{1, 2, 4})
	cfg.LoopOverheadClocks = float64(r.rangeInt(0, 32))
	cfg.InterferenceFrac = []float64{0, 0.019, 0.1}[int(r.byte())%3]

	opts := sx4.RunOpts{
		Procs:      r.rangeInt(0, 32),
		ActiveCPUs: r.rangeInt(0, 32),
	}
	p := DecodeProgram(data[r.pos:])
	return cfg, p, opts
}
