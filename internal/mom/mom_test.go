package mom

import (
	"math"
	"testing"

	"sx4bench/internal/sx4"
)

func TestLowResVerificationRun(t *testing.T) {
	// The suite's porting check: 40 time steps at 3 degrees, stable.
	m := New(LowRes)
	dt := m.StableTimeStep()
	for i := 0; i < 40; i++ {
		m.Step(dt)
	}
	if m.Steps() != 40 {
		t.Fatalf("steps = %d", m.Steps())
	}
	d := m.Diagnose()
	if math.IsNaN(d.MeanTemp) || d.MeanTemp < -5 || d.MeanTemp > 40 {
		t.Errorf("mean temperature %v unphysical", d.MeanTemp)
	}
	if math.Abs(d.MeanSalt-34.7) > 0.5 {
		t.Errorf("mean salinity drifted to %v", d.MeanSalt)
	}
	if d.MaxPsi == 0 || math.IsNaN(d.MaxPsi) {
		t.Errorf("no circulation spun up: max|ψ| = %v", d.MaxPsi)
	}
}

func TestWesternBoundaryCurrent(t *testing.T) {
	// The Stommel balance with beta produces western intensification.
	m := New(LowRes)
	dt := m.StableTimeStep()
	for i := 0; i < 20; i++ {
		m.Step(dt)
	}
	_, western := m.WesternIntensification()
	if !western {
		i, _ := m.WesternIntensification()
		t.Errorf("gyre maximum at longitude index %d of %d; want western third", i, m.Cfg.NLon)
	}
}

func TestBetaRequiredForIntensification(t *testing.T) {
	// Without beta the gyre is symmetric: the maximum should not sit
	// hard against the western boundary. (Control experiment.)
	m := New(LowRes)
	m.Beta = 0
	dt := m.StableTimeStep()
	for i := 0; i < 20; i++ {
		m.Step(dt)
	}
	iMax, _ := m.WesternIntensification()
	third := m.Cfg.NLon / 3
	if iMax < third/4 {
		t.Logf("note: beta=0 run still has max at %d (diffusive asymmetry)", iMax)
	}
}

func TestTracerConservationWithoutMixing(t *testing.T) {
	// Flux-form advection + no-flux walls conserve the tracer total;
	// switch off convective adjustment effects by making columns
	// stable (already stable by construction) and diffusion symmetric.
	m := New(LowRes)
	t0 := m.TracerTotal()
	dt := m.StableTimeStep()
	for i := 0; i < 10; i++ {
		m.solveBarotropic()
		u, v := m.velocities()
		for k := 0; k < m.Cfg.NLev; k++ {
			m.Temp[k] = m.advectDiffuse(m.Temp[k], u, v, dt)
		}
	}
	t1 := m.TracerTotal()
	if rel := math.Abs(t1-t0) / math.Abs(t0); rel > 1e-9 {
		t.Errorf("tracer total drifted by %g (%.3g -> %.3g)", rel, t0, t1)
	}
}

func TestConvectiveAdjustmentMixes(t *testing.T) {
	m := New(LowRes)
	// Make the top level colder (denser) than below: unstable.
	for i := range m.Temp[0] {
		m.Temp[0][i] = -2
		m.Temp[1][i] = 10
	}
	mixed := m.convectiveAdjust()
	if mixed == 0 {
		t.Fatal("unstable column not adjusted")
	}
	// Iterate to completion (one pass per model step in production; the
	// cascade can take O(NLev²) passes to settle fully) and verify
	// static stability: density must not decrease with depth.
	for pass := 0; pass < m.Cfg.NLev*m.Cfg.NLev && m.convectiveAdjust() > 0; pass++ {
	}
	nx := m.Cfg.NLon
	for k := 0; k < m.Cfg.NLev-1; k++ {
		for idx := 0; idx < nx*m.Cfg.NLat; idx++ {
			up := Density(m.Temp[k][idx], m.Salt[k][idx])
			dn := Density(m.Temp[k+1][idx], m.Salt[k+1][idx])
			if up > dn+1e-4 {
				t.Fatalf("column still unstable at level %d (%v > %v)", k, up, dn)
			}
		}
	}
}

func TestHostParallelDeterministic(t *testing.T) {
	a := New(LowRes)
	b := New(LowRes)
	b.Workers = 4
	dt := a.StableTimeStep()
	for i := 0; i < 5; i++ {
		a.Step(dt)
		b.Step(dt)
	}
	da := a.Diagnose()
	db := b.Diagnose()
	if da != db {
		t.Errorf("parallel host run diverged: %+v vs %+v", db, da)
	}
}

func TestDensityMonotone(t *testing.T) {
	// Colder and saltier water is denser.
	if !(Density(5, 35) > Density(25, 35)) {
		t.Error("density not decreasing with temperature")
	}
	if !(Density(10, 36) > Density(10, 34)) {
		t.Error("density not increasing with salinity")
	}
}

func TestConfigs(t *testing.T) {
	if LowRes.Points() != 120*56*25 {
		t.Errorf("low-res points = %d", LowRes.Points())
	}
	if HighRes.Points() != 360*168*45 {
		t.Errorf("high-res points = %d", HighRes.Points())
	}
}

// --- Table 7 performance model ---

func bench() *sx4.Machine { return sx4.New(sx4.Benchmarked()) }

func TestTable7SingleCPUTime(t *testing.T) {
	// Paper: 350 steps take 1861.25 s on one CPU.
	got := Benchmark350(bench(), 1)
	if got < 0.8*1861.25 || got > 1.2*1861.25 {
		t.Errorf("350-step single-CPU time = %.1f s, want within ±20%% of 1861.25", got)
	}
}

func TestTable7Speedups(t *testing.T) {
	// Paper speedups: 2.70@4, 3.66@8, 5.88@16, 9.06@32, within ±20%.
	want := map[int]float64{4: 2.70, 8: 3.66, 16: 5.88, 32: 9.06}
	got := Speedups(bench())
	for p, w := range want {
		lo, hi := 0.8*w, 1.2*w
		if got[p] < lo || got[p] > hi {
			t.Errorf("speedup@%d = %.2f, want within [%.2f, %.2f] (paper %.2f)", p, got[p], lo, hi, w)
		}
	}
	if got[1] != 1 {
		t.Errorf("speedup@1 = %v, want 1", got[1])
	}
}

func TestSpeedupMonotone(t *testing.T) {
	got := Speedups(bench())
	prev := 0.0
	for _, p := range Table7CPUCounts {
		if got[p] <= prev {
			t.Errorf("speedup not increasing at %d CPUs: %.2f <= %.2f", p, got[p], prev)
		}
		prev = got[p]
	}
}

func TestModestScalability(t *testing.T) {
	// The paper's point: scalability is modest — well under ideal.
	got := Speedups(bench())
	if got[32] > 16 {
		t.Errorf("speedup@32 = %.1f; MOM should scale modestly (paper 9.06)", got[32])
	}
}

func TestSustainedRateReasonable(t *testing.T) {
	mf := SustainedMFLOPS(bench())
	// A partially vectorized FD ocean code: hundreds of MFLOPS on one
	// SX-4 CPU, well under RADABS.
	if mf < 150 || mf > 900 {
		t.Errorf("MOM single-CPU rate = %.0f MFLOPS, want within [150, 900]", mf)
	}
}

func TestStepFlopsPositive(t *testing.T) {
	if StepFlops(HighRes) <= StepFlops(LowRes) {
		t.Error("high-res step should cost more flops than low-res")
	}
}

func TestPhaseClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown phase did not panic")
		}
	}()
	phaseClass("nope")
}
