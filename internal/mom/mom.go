// Package mom implements the MOM benchmark: a rigid-lid, Boussinesq,
// finite-difference ocean model in the Bryan-Cox tradition (the NCAR
// benchmark is a modified GFDL Modular Ocean Model 1.1). The model
// predicts temperature and salinity, carries a barotropic circulation
// through a rigid-lid streamfunction solved by successive
// over-relaxation each step, and applies convective adjustment and a
// UNESCO-style equation of state.
//
// Two configurations mirror the benchmark suite: a 3° x L25 low
// resolution for familiarization and porting verification (40 time
// steps on a workstation-class host) and the 1° x L45 high resolution
// used for the Table 7 scalability measurement.
package mom

import (
	"fmt"
	"math"

	"sx4bench/internal/core/sched"
	"sx4bench/internal/fp128"
	"sx4bench/internal/sx4/commreg"
)

// Config is one model configuration.
type Config struct {
	Name             string
	NLon, NLat, NLev int
	DxDeg            float64
}

// LowRes is the 3° verification configuration.
var LowRes = Config{Name: "3-degree", NLon: 120, NLat: 56, NLev: 25, DxDeg: 3}

// HighRes is the 1° benchmark configuration.
var HighRes = Config{Name: "1-degree", NLon: 360, NLat: 168, NLev: 45, DxDeg: 1}

// Model holds the prognostic state.
type Model struct {
	Cfg Config

	// Temp and Salt are the tracers, [lev][ny*nx], periodic in x with
	// solid walls at the y boundaries.
	Temp, Salt [][]float64
	// Psi is the rigid-lid barotropic streamfunction [ny*nx].
	Psi []float64
	// windCurl is the (steady) wind-stress curl forcing the gyre.
	windCurl []float64

	// Numerical parameters.
	Beta, RFric float64 // planetary vorticity gradient, bottom friction
	KDiff       float64 // tracer diffusivity (grid units²/s)
	Depth       float64 // basin depth [m] (ψ is a volume transport)
	SORIters    int
	SOROmega    float64

	dx, dy float64 // grid spacing [m]
	steps  int

	// Workers parallelizes the per-level tracer updates across
	// goroutines (bit-identical to serial for any setting). Zero means
	// runtime.GOMAXPROCS(0); one forces the serial path.
	Workers int
}

// New builds the configuration's initial state: a stratified,
// meridionally varying temperature field, uniform salinity, and a
// double-gyre wind-stress curl.
func New(cfg Config) *Model {
	nx, ny := cfg.NLon, cfg.NLat
	m := &Model{
		Cfg:      cfg,
		Beta:     2e-11,
		RFric:    1e-5, // sized so the Stommel layer spans a few cells
		KDiff:    2e3,
		Depth:    4000,
		SORIters: 60,
		SOROmega: 1.5,
		dx:       cfg.DxDeg * 111e3,
		dy:       cfg.DxDeg * 111e3,
	}
	m.Psi = make([]float64, ny*nx)
	m.windCurl = make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		lat := -60 + 120*float64(j)/float64(ny-1) // degrees
		for i := 0; i < nx; i++ {
			// Double-gyre curl pattern.
			m.windCurl[j*nx+i] = 1e-10 * math.Sin(2*math.Pi*float64(j)/float64(ny-1))
			_ = lat
		}
	}
	for k := 0; k < cfg.NLev; k++ {
		T := make([]float64, ny*nx)
		S := make([]float64, ny*nx)
		depthFrac := float64(k) / float64(cfg.NLev-1)
		for j := 0; j < ny; j++ {
			latFrac := float64(j) / float64(ny-1)
			surfT := 2 + 26*math.Sin(math.Pi*latFrac) // cold poles, warm tropics
			for i := 0; i < nx; i++ {
				T[j*nx+i] = surfT * math.Exp(-3*depthFrac)
				S[j*nx+i] = 34.7
			}
		}
		m.Temp = append(m.Temp, T)
		m.Salt = append(m.Salt, S)
	}
	return m
}

// Points returns the number of 3-D grid points.
func (c Config) Points() int { return c.NLon * c.NLat * c.NLev }

// solveBarotropic relaxes the Stommel barotropic vorticity balance
//
//	RFric ∇²ψ + β ∂ψ/∂x = curl τ
//
// with SOR, ψ = 0 on the north/south walls, periodic in x. The β term
// is what produces the western boundary current the tests check.
func (m *Model) solveBarotropic() {
	nx, ny := m.Cfg.NLon, m.Cfg.NLat
	dx2 := m.dx * m.dx
	// Upwind the beta term (beta > 0: information travels westward in
	// the boundary-layer balance) so the relaxation stays diagonally
	// dominant.
	bw := m.Beta / m.dx
	diag := 4*m.RFric/dx2 + bw
	for iter := 0; iter < m.SORIters; iter++ {
		for j := 1; j < ny-1; j++ {
			for i := 0; i < nx; i++ {
				ip := (i + 1) % nx
				im := (i - 1 + nx) % nx
				idx := j*nx + i
				lapNbr := m.Psi[j*nx+ip] + m.Psi[j*nx+im] + m.Psi[(j+1)*nx+i] + m.Psi[(j-1)*nx+i]
				// RFric (lapNbr - 4ψ)/dx² + β (ψ_ip - ψ)/dx = curl
				num := m.RFric*lapNbr/dx2 + bw*m.Psi[j*nx+ip] - m.windCurl[idx]
				target := num / diag
				m.Psi[idx] += m.SOROmega * (target - m.Psi[idx])
			}
		}
	}
}

// velocities derives the barotropic velocity field from ψ:
// u = -∂ψ/∂y, v = ∂ψ/∂x (grid-scaled).
func (m *Model) velocities() (u, v []float64) {
	nx, ny := m.Cfg.NLon, m.Cfg.NLat
	u = make([]float64, ny*nx)
	v = make([]float64, ny*nx)
	for j := 1; j < ny-1; j++ {
		for i := 0; i < nx; i++ {
			ip := (i + 1) % nx
			im := (i - 1 + nx) % nx
			u[j*nx+i] = -(m.Psi[(j+1)*nx+i] - m.Psi[(j-1)*nx+i]) / (2 * m.dy * m.Depth)
			v[j*nx+i] = (m.Psi[j*nx+ip] - m.Psi[j*nx+im]) / (2 * m.dx * m.Depth)
		}
	}
	return u, v
}

// advectDiffuse applies one flux-form upwind advection + diffusion step
// to a tracer field; no-flux at the y walls conserves the tracer total.
func (m *Model) advectDiffuse(q, u, v []float64, dt float64) []float64 {
	nx, ny := m.Cfg.NLon, m.Cfg.NLat
	out := make([]float64, len(q))
	copy(out, q)
	for j := 1; j < ny-1; j++ {
		for i := 0; i < nx; i++ {
			ip := (i + 1) % nx
			im := (i - 1 + nx) % nx
			idx := j*nx + i
			// Upwind fluxes on faces (velocity at faces ~ average).
			fE := flux(u[idx], u[j*nx+ip], q[idx], q[j*nx+ip])
			fW := flux(u[j*nx+im], u[idx], q[j*nx+im], q[idx])
			var fN, fS float64
			if j+1 < ny-1 {
				fN = flux(v[idx], v[(j+1)*nx+i], q[idx], q[(j+1)*nx+i])
			}
			if j-1 > 0 {
				fS = flux(v[(j-1)*nx+i], v[idx], q[(j-1)*nx+i], q[idx])
			}
			adv := (fE-fW)/m.dx + (fN-fS)/m.dy
			// No-flux walls: diffusive exchange only between interior
			// rows, so the tracer total is conserved exactly.
			lap := (q[j*nx+ip] + q[j*nx+im] - 2*q[idx]) / (m.dx * m.dx)
			if j+1 <= ny-2 {
				lap += (q[(j+1)*nx+i] - q[idx]) / (m.dy * m.dy)
			}
			if j-1 >= 1 {
				lap += (q[(j-1)*nx+i] - q[idx]) / (m.dy * m.dy)
			}
			out[idx] = q[idx] + dt*(-adv+m.KDiff*lap)
		}
	}
	return out
}

// flux returns the upwind flux through a face between two cells.
func flux(uL, uR, qL, qR float64) float64 {
	uf := 0.5 * (uL + uR)
	if uf >= 0 {
		return uf * qL
	}
	return uf * qR
}

// Density evaluates a simplified UNESCO-style equation of state
// sigma(T, S) [kg/m³ anomaly].
func Density(T, S float64) float64 {
	return -0.15*T - 0.0021*T*T + 0.78*(S-35) + 0.005*math.Pow(math.Abs(T)+1, 1.5)
}

// convectiveAdjust mixes statically unstable adjacent levels.
func (m *Model) convectiveAdjust() int {
	nx, ny := m.Cfg.NLon, m.Cfg.NLat
	mixed := 0
	for k := 0; k < m.Cfg.NLev-1; k++ {
		up, dn := m.Temp[k], m.Temp[k+1]
		upS, dnS := m.Salt[k], m.Salt[k+1]
		for idx := 0; idx < ny*nx; idx++ {
			if Density(up[idx], upS[idx]) > Density(dn[idx], dnS[idx]) {
				t := 0.5 * (up[idx] + dn[idx])
				s := 0.5 * (upS[idx] + dnS[idx])
				up[idx], dn[idx] = t, t
				upS[idx], dnS[idx] = s, s
				mixed++
			}
		}
	}
	return mixed
}

// Step advances the model by dt seconds.
func (m *Model) Step(dt float64) {
	m.solveBarotropic()
	u, v := m.velocities()
	commreg.ParallelFor(sched.Workers(m.Workers), m.Cfg.NLev, func(k int) {
		// Barotropic advection weakened with depth (crude baroclinic
		// structure).
		scale := math.Exp(-2 * float64(k) / float64(m.Cfg.NLev))
		uk := make([]float64, len(u))
		vk := make([]float64, len(v))
		for i := range u {
			uk[i] = u[i] * scale
			vk[i] = v[i] * scale
		}
		m.Temp[k] = m.advectDiffuse(m.Temp[k], uk, vk, dt)
		m.Salt[k] = m.advectDiffuse(m.Salt[k], uk, vk, dt)
	})
	m.convectiveAdjust()
	m.steps++
}

// Steps returns the number of completed time steps.
func (m *Model) Steps() int { return m.steps }

// Diagnostics are the every-10-step global sums the benchmark prints
// (the scaling limiter the paper points to).
type Diagnostics struct {
	MeanTemp, MeanSalt float64
	MaxPsi             float64
	KineticProxy       float64
}

// Diagnose computes the global diagnostics. The sums run in the
// 128-bit extended format (fp128), as the benchmark codes did on the
// SX-4's hardware extended precision, so millions of grid points
// accumulate without drift.
func (m *Model) Diagnose() Diagnostics {
	var d Diagnostics
	var tSum, sSum fp128.X128
	n := 0
	for k := range m.Temp {
		tSum = tSum.Add(fp128.Sum(m.Temp[k]))
		sSum = sSum.Add(fp128.Sum(m.Salt[k]))
		n += len(m.Temp[k])
	}
	d.MeanTemp = tSum.Div(fp128.FromFloat64(float64(n))).Float64()
	d.MeanSalt = sSum.Div(fp128.FromFloat64(float64(n))).Float64()
	u, v := m.velocities()
	for i := range m.Psi {
		if a := math.Abs(m.Psi[i]); a > d.MaxPsi {
			d.MaxPsi = a
		}
		d.KineticProxy += u[i]*u[i] + v[i]*v[i]
	}
	return d
}

// TracerTotal returns the volume sum of temperature (conserved by the
// flux-form advection in the absence of forcing).
func (m *Model) TracerTotal() float64 {
	var sum float64
	for k := range m.Temp {
		for _, v := range m.Temp[k] {
			sum += v
		}
	}
	return sum
}

// WesternIntensification reports the longitude index of the maximum
// |ψ| and whether it falls in the western third of the basin.
func (m *Model) WesternIntensification() (iMax int, western bool) {
	nx := m.Cfg.NLon
	best := 0.0
	for idx, p := range m.Psi {
		if a := math.Abs(p); a > best {
			best = a
			iMax = idx % nx
		}
	}
	return iMax, iMax < nx/3
}

// StableTimeStep returns a CFL-safe tracer step for host integration,
// capped at one model day (ocean practice).
func (m *Model) StableTimeStep() float64 {
	dt := 0.2 * m.dx * m.dx / (m.KDiff + 1e3) // diffusive limit, conservative
	if dt > 86400 {
		dt = 86400
	}
	return dt
}

func (m *Model) String() string {
	return fmt.Sprintf("MOM %s (%dx%dx%d)", m.Cfg.Name, m.Cfg.NLon, m.Cfg.NLat, m.Cfg.NLev)
}
