package mom

import (
	"fmt"
	"math"

	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// Scaling classes of the step's phases. MOM 1.1's parallel behaviour on
// shared-memory vector machines decomposes into work that parallelizes
// cleanly over latitude rows and levels, work whose effective speedup
// grows only like sqrt(p) (the barotropic relaxation with its
// sweep-order dependencies, and the data-dependent convective
// adjustment with its load imbalance), and the serial diagnostics the
// benchmark prints every 10 steps. The sqrt law is an empirical fit to
// the paper's measured Table 7 speedups; see EXPERIMENTS.md.
const (
	phasePerfect = "baroclinic"
	phaseEOS     = "eos-vertical"
	phaseSqrtBT  = "barotropic"
	phaseSqrtCA  = "convective"
	phaseSerial  = "diagnostics"
)

// Trace parameters (per step, high-resolution benchmark).
const (
	columnLoops     = 18 // depth-innermost operator loops per column
	columnLoopFlops = 20 // flops per element in those loops
	tracerLoops     = 18 // longitude-innermost tracer loops (2 tracers x 6)
	tracerLoopFlops = 25
	eosFlops        = 40
	sorIterations   = 1900 // simple relaxation on the big rigid-lid grid
	sorFlops        = 12
	convScalarOps   = 170 // non-vectorized instructions per point (masked branches)
	diagOpsPerPoint = 20  // serial global-sum instruction count per point
)

// StepTrace builds the operation trace of one high-resolution MOM time
// step.
func StepTrace(cfg Config) prog.Program {
	nx, ny, nz := cfg.NLon, cfg.NLat, cfg.NLev
	columns := int64(nx) * int64(ny)

	return prog.Program{
		Name: fmt.Sprintf("MOM-%s-step", cfg.Name),
		Phases: []prog.Phase{
			{
				// Depth-innermost operator loops: short vectors (VL =
				// nlev), one trip per column per loop.
				Name: phasePerfect, Parallel: true, Barriers: 1,
				Loops: []prog.Loop{
					{
						Trips: columns * columnLoops,
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 4 * nz, Stride: 1},
							{Class: prog.VMul, VL: nz, FlopsPerElem: columnLoopFlops / 2},
							{Class: prog.VAdd, VL: nz, FlopsPerElem: columnLoopFlops / 2},
							{Class: prog.VStore, VL: nz, Stride: 1},
						},
					},
					{
						// Longitude-innermost tracer loops: long vectors.
						Trips: int64(ny) * int64(nz) * tracerLoops,
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 6 * nx, Stride: 1},
							{Class: prog.VMul, VL: nx, FlopsPerElem: tracerLoopFlops / 2},
							{Class: prog.VAdd, VL: nx, FlopsPerElem: tracerLoopFlops - tracerLoopFlops/2},
							{Class: prog.VStore, VL: 2 * nx, Stride: 1},
						},
					},
				},
			},
			{
				// Equation of state (intrinsic heavy) and the implicit
				// vertical mixing tridiagonal solves.
				Name: phaseEOS, Parallel: true, Barriers: 1,
				Loops: []prog.Loop{
					{
						Trips: int64(ny) * int64(nz),
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 2 * nx, Stride: 1},
							{Class: prog.VMul, VL: nx, FlopsPerElem: eosFlops},
							{Class: prog.VIntrinsic, VL: nx, Intr: prog.Pow},
							{Class: prog.VStore, VL: nx, Stride: 1},
						},
					},
					{
						Trips: int64(ny) * int64(nz) * 3,
						Body: []prog.Op{
							{Class: prog.VLoad, VL: 3 * nx, Stride: 1},
							{Class: prog.VMul, VL: nx, FlopsPerElem: 3},
							{Class: prog.VAdd, VL: nx, FlopsPerElem: 3},
							{Class: prog.VDiv, VL: nx},
							{Class: prog.VStore, VL: nx, Stride: 1},
						},
					},
				},
			},
			{
				// Rigid-lid barotropic relaxation (red/black sweeps:
				// stride-2 access is conflict-free on the SX-4).
				Name: phaseSqrtBT, Parallel: true, Barriers: 1,
				Loops: []prog.Loop{{
					Trips: int64(sorIterations) * int64(ny),
					Body: []prog.Op{
						{Class: prog.VLoad, VL: 5 * nx / 2, Stride: 2},
						{Class: prog.VMul, VL: nx / 2, FlopsPerElem: sorFlops / 2},
						{Class: prog.VAdd, VL: nx / 2, FlopsPerElem: sorFlops / 2},
						{Class: prog.VStore, VL: nx / 2, Stride: 2},
					},
				}},
			},
			{
				// Convective adjustment: data-dependent branches that
				// the compiler leaves scalar.
				Name: phaseSqrtCA, Parallel: true, Barriers: 1,
				Loops: []prog.Loop{{
					Trips: int64(ny) * int64(nz),
					Body: []prog.Op{
						{Class: prog.Scalar, Count: convScalarOps * nx, FlopsPerElem: 8 * nx},
					},
				}},
			},
			{
				// Every-10-step diagnostics, amortized per step: global
				// sums over the 3-D grid plus formatted output, serial.
				Name:         phaseSerial,
				SerialClocks: float64(cfg.Points()) * diagOpsPerPoint / 2 / 10,
			},
		},
	}
}

// phaseClass returns the scaling exponent class for a phase: 1 for
// perfectly parallel, 0.5 for sqrt(p), 0 for serial.
func phaseClass(name string) float64 {
	switch name {
	case phasePerfect, phaseEOS:
		return 1
	case phaseSqrtBT, phaseSqrtCA:
		return 0.5
	case phaseSerial:
		return 0
	}
	panic(fmt.Sprintf("mom: unknown phase %q", name))
}

// stepTraces caches the compiled step trace per configuration: the
// Table 7 sweep re-times the same step at every processor count, and
// the trace is a pure function of the configuration.
var stepTraces target.TraceCache[Config]

func compiledStepTrace(cfg Config) target.CompiledTrace {
	return stepTraces.Get(cfg, func() prog.Program { return StepTrace(cfg) })
}

// StepSeconds models one high-resolution step on procs CPUs.
func StepSeconds(m target.Target, cfg Config, procs int) float64 {
	r := compiledStepTrace(cfg).Run(m, target.RunOpts{Procs: 1})
	var clocks float64
	for _, ph := range r.Phases {
		alpha := phaseClass(ph.Name)
		clocks += ph.Clocks / math.Pow(float64(procs), alpha)
	}
	return m.Spec().Seconds(clocks)
}

// StepFlops returns the credited flops of one step.
func StepFlops(cfg Config) int64 { return compiledStepTrace(cfg).Compiled.Flops }

// Benchmark350 models the Table 7 measurement: the time for 350 time
// steps (the paper differences a 390-step and a 40-step run to remove
// initialization).
func Benchmark350(m target.Target, procs int) float64 {
	return 350 * StepSeconds(m, HighRes, procs)
}

// Table7CPUCounts is the paper's processor sweep (no 2-CPU run was
// made, "for expediency").
var Table7CPUCounts = []int{1, 4, 8, 16, 32}

// Speedups returns the Table 7 speedup column for the machine.
func Speedups(m target.Target) map[int]float64 {
	t1 := Benchmark350(m, 1)
	out := map[int]float64{}
	for _, p := range Table7CPUCounts {
		out[p] = t1 / Benchmark350(m, p)
	}
	return out
}

// SustainedMFLOPS returns the single-CPU rate of the benchmark.
func SustainedMFLOPS(m target.Target) float64 {
	return float64(StepFlops(HighRes)) / StepSeconds(m, HighRes, 1) / 1e6
}
