// Package superux models the SUPER-UX operating-system features the
// benchmark exercises: Resource Blocking (logical scheduling groups
// with processor and memory limits mapped onto the SX-4 CPUs), the NQS
// batch subsystem (queues, job submission, qcat), and
// checkpoint/restart of batch work — all over a deterministic
// virtual-time event simulation, which is what the PRODLOAD benchmark
// runs on.
package superux

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"sx4bench/internal/fault"
)

// Policy selects a resource block's scheduling style.
type Policy int

const (
	// FIFO runs jobs strictly in submission order ("static parallel
	// processing scheduling using a FIFO scheme").
	FIFO Policy = iota
	// Interactive admits jobs in any order that fits (favoring small
	// jobs), the behaviour of a block reserved for interactive work.
	Interactive
)

func (p Policy) String() string {
	if p == FIFO {
		return "FIFO"
	}
	return "interactive"
}

// ResourceBlock is a logical scheduling group mapped onto part of the
// node.
type ResourceBlock struct {
	Name    string
	MinCPUs int
	MaxCPUs int
	MemGB   float64
	Policy  Policy

	// Failed marks a block whose backing processors were configured out
	// by a fault; a failed block never runs another job.
	Failed bool

	usedCPUs int
	usedMem  float64
}

// JobState tracks a job through the queue.
type JobState int

const (
	Queued JobState = iota
	Running
	Done
	// Failed marks a job that could not be recovered after a fault: no
	// surviving resource block can hold it. Failed is terminal and
	// reported — a job is never silently dropped.
	Failed
	// Migrated marks a job a cluster-level migrator accepted off this
	// node after a fault left it homeless here; it is terminal on this
	// node, and the fleet layer that installed the migrator (see
	// SetMigrator) owns the job's continued accounting.
	Migrated
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Migrated:
		return "migrated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one NQS batch request.
type Job struct {
	ID       int
	Name     string
	Block    string // resource block name
	CPUs     int
	MemGB    float64
	Seconds  float64 // execution time once started
	Priority int

	State    JobState
	SubmitAt float64
	StartAt  float64
	FinishAt float64
	Output   string // stdout produced so far (qcat reads this)

	// Restarts counts checkpoint-driven recoveries: each fault that
	// interrupts the job checkpoints it and requeues the remaining work.
	Restarts int
}

// Complex is an NQS queue complex: a group of resource blocks sharing
// a global limit on concurrently running jobs (Section 2.6.3 mentions
// "NQS queues, queue complexes, and the full range of individual queue
// parameters").
type Complex struct {
	Name     string
	Blocks   []string
	RunLimit int
}

// System is the simulated SUPER-UX instance.
type System struct {
	Blocks    map[string]*ResourceBlock
	Complexes map[string]Complex
	Jobs      map[int]*Job

	Clock  float64
	nextID int
	order  []string // block names in registration order (determinism)
	queue  []int    // queued job IDs in priority+submission order
	active []int

	// injector is the attached fault schedule (nil = fault-free);
	// faultsDelivered counts schedule events already applied, so a
	// checkpointed system never redelivers a fault after Restart.
	injector        fault.Injector
	faultsDelivered int
	// schedule caches the injector's full event window: the event loop
	// consults the next undelivered fault on every step, and the
	// schedule is immutable once attached.
	schedule       []fault.Event
	scheduleLoaded bool

	// migrator, when installed, is offered every job a fault leaves
	// homeless on this node before the job is declared Failed; see
	// SetMigrator. Like the injector it is runner-owned state and is
	// never serialized into a checkpoint.
	migrator func(Job) bool
}

// NewSystem builds a system with the given resource blocks. Block
// names must be unique and CPU limits positive.
func NewSystem(blocks ...ResourceBlock) *System {
	s := &System{
		Blocks:    map[string]*ResourceBlock{},
		Complexes: map[string]Complex{},
		Jobs:      map[int]*Job{},
	}
	for _, b := range blocks {
		if b.MaxCPUs <= 0 || b.MinCPUs < 0 || b.MinCPUs > b.MaxCPUs {
			panic(fmt.Sprintf("superux: bad CPU limits in block %q", b.Name))
		}
		if _, dup := s.Blocks[b.Name]; dup {
			panic(fmt.Sprintf("superux: duplicate block %q", b.Name))
		}
		rb := b
		s.Blocks[b.Name] = &rb
		s.order = append(s.order, b.Name)
	}
	return s
}

// Submit enqueues a job and returns its ID.
func (s *System) Submit(j Job) int {
	blk, ok := s.Blocks[j.Block]
	if !ok {
		panic(fmt.Sprintf("superux: unknown resource block %q", j.Block))
	}
	if j.CPUs <= 0 || j.CPUs > blk.MaxCPUs {
		panic(fmt.Sprintf("superux: job %q requests %d CPUs; block %q allows up to %d",
			j.Name, j.CPUs, j.Block, blk.MaxCPUs))
	}
	if j.MemGB > blk.MemGB {
		panic(fmt.Sprintf("superux: job %q exceeds block memory", j.Name))
	}
	s.nextID++
	j.ID = s.nextID
	j.State = Queued
	j.SubmitAt = s.Clock
	s.Jobs[j.ID] = &j
	s.queue = append(s.queue, j.ID)
	// A submission against a block a fault already took down is
	// rebound to a surviving block, or reported failed — not dropped.
	if blk.Failed {
		if home, ok := s.survivingHome(&j); ok {
			j.Block = home
		} else {
			s.failJob(&j)
			return j.ID
		}
	}
	s.sortQueue()
	s.dispatch()
	return j.ID
}

func (s *System) sortQueue() {
	sort.SliceStable(s.queue, func(a, b int) bool {
		ja, jb := s.Jobs[s.queue[a]], s.Jobs[s.queue[b]]
		if ja.Priority != jb.Priority {
			return ja.Priority > jb.Priority
		}
		return ja.ID < jb.ID
	})
}

// AddComplex registers a queue complex. Member blocks must exist and
// the run limit must be positive.
func (s *System) AddComplex(c Complex) {
	if c.RunLimit <= 0 {
		panic(fmt.Sprintf("superux: complex %q needs a positive run limit", c.Name))
	}
	for _, b := range c.Blocks {
		if _, ok := s.Blocks[b]; !ok {
			panic(fmt.Sprintf("superux: complex %q references unknown block %q", c.Name, b))
		}
	}
	s.Complexes[c.Name] = c
}

// complexAllows reports whether starting one more job in block would
// stay inside every complex limit covering that block.
func (s *System) complexAllows(block string) bool {
	for _, c := range s.Complexes {
		member := false
		for _, b := range c.Blocks {
			if b == block {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		running := 0
		for _, id := range s.active {
			j := s.Jobs[id]
			for _, b := range c.Blocks {
				if j.Block == b {
					running++
					break
				}
			}
		}
		if running >= c.RunLimit {
			return false
		}
	}
	return true
}

// dispatch starts every queued job that fits its block's free capacity,
// respecting each block's policy and every complex run limit.
func (s *System) dispatch() {
	blocked := map[string]bool{} // FIFO blocks stalled by their head job
	remaining := s.queue[:0]
	for _, id := range s.queue {
		j := s.Jobs[id]
		blk := s.Blocks[j.Block]
		fits := !blk.Failed &&
			blk.usedCPUs+j.CPUs <= blk.MaxCPUs && blk.usedMem+j.MemGB <= blk.MemGB &&
			s.complexAllows(j.Block)
		if blocked[j.Block] || !fits {
			if blk.Policy == FIFO {
				blocked[j.Block] = true // preserve order: later jobs wait
			}
			remaining = append(remaining, id)
			continue
		}
		blk.usedCPUs += j.CPUs
		blk.usedMem += j.MemGB
		j.State = Running
		j.StartAt = s.Clock
		j.FinishAt = s.Clock + j.Seconds
		// Append, not assign: a job restarted from a checkpoint keeps
		// the output it produced before the fault.
		j.Output += fmt.Sprintf("job %d (%s) started at %.2f\n", j.ID, j.Name, j.StartAt)
		s.active = append(s.active, id)
	}
	s.queue = append([]int(nil), remaining...)
}

// Advance runs the event loop until no job is running or queued,
// returning the completion (virtual) time. Jobs submitted before the
// call are processed; the simulation is deterministic. While jobs run,
// events from the attached fault schedule are interleaved with
// completion events in simulated-time order (a completion wins a tie,
// so a job that finishes exactly when a fault lands has finished).
func (s *System) Advance() float64 {
	for len(s.active) > 0 {
		next := s.nextCompletion()
		if e, ok := s.nextFault(); ok && e.At < s.Jobs[next].FinishAt {
			s.deliverFault(e)
			continue
		}
		s.complete(next)
	}
	return s.Clock
}

// nextCompletion returns the active job with the earliest finish time
// (ties broken by lower ID). Callers guarantee active is non-empty.
func (s *System) nextCompletion() int {
	next := -1
	for _, id := range s.active {
		if next == -1 || s.Jobs[id].FinishAt < s.Jobs[next].FinishAt ||
			(s.Jobs[id].FinishAt == s.Jobs[next].FinishAt && id < next) {
			next = id
		}
	}
	return next
}

// complete retires one running job and redispatches.
func (s *System) complete(next int) {
	j := s.Jobs[next]
	s.Clock = j.FinishAt
	j.State = Done
	j.Output += fmt.Sprintf("job %d (%s) finished at %.2f\n", j.ID, j.Name, j.FinishAt)
	blk := s.Blocks[j.Block]
	blk.usedCPUs -= j.CPUs
	blk.usedMem -= j.MemGB
	// Remove from active.
	for i, id := range s.active {
		if id == next {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.dispatch()
}

// QCat returns the stdout produced so far by a job — the SUPER-UX NQS
// qcat command, which can inspect an executing batch script's output.
func (s *System) QCat(id int) (string, error) {
	j, ok := s.Jobs[id]
	if !ok {
		return "", fmt.Errorf("superux: no job %d", id)
	}
	return j.Output, nil
}

// Status returns a job's state.
func (s *System) Status(id int) (JobState, error) {
	j, ok := s.Jobs[id]
	if !ok {
		return 0, fmt.Errorf("superux: no job %d", id)
	}
	return j.State, nil
}

// Makespan returns the latest finish time among completed jobs.
func (s *System) Makespan() float64 {
	best := 0.0
	for _, j := range s.Jobs {
		if j.State == Done && j.FinishAt > best {
			best = j.FinishAt
		}
	}
	return best
}

// --- checkpoint / restart ---

// snapshot is the serializable scheduler state. The fault injector is
// deliberately not serialized (it is an interface the runner owns);
// FaultsDelivered survives so a restarted system with the same
// schedule re-attached never redelivers an already-applied fault.
type snapshot struct {
	Blocks          map[string]ResourceBlock
	Complexes       map[string]Complex
	Jobs            map[int]Job
	Clock           float64
	NextID          int
	Order           []string
	Queue           []int
	Active          []int
	FaultsDelivered int
}

// Checkpoint serializes the full system state; no special programming
// is required of the jobs.
func (s *System) Checkpoint() ([]byte, error) {
	snap := snapshot{
		Blocks:          map[string]ResourceBlock{},
		Complexes:       map[string]Complex{},
		Jobs:            map[int]Job{},
		Clock:           s.Clock,
		NextID:          s.nextID,
		Order:           append([]string(nil), s.order...),
		Queue:           append([]int(nil), s.queue...),
		Active:          append([]int(nil), s.active...),
		FaultsDelivered: s.faultsDelivered,
	}
	for name, c := range s.Complexes {
		snap.Complexes[name] = c
	}
	for name, b := range s.Blocks {
		sb := *b
		sb.usedCPUs = b.usedCPUs
		sb.usedMem = b.usedMem
		snap.Blocks[name] = sb
	}
	for id, j := range s.Jobs {
		snap.Jobs[id] = *j
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("superux: checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Restart reconstructs a system from a checkpoint. A corrupt snapshot
// — negative clock, unknown job state, a job referencing an undefined
// resource block, or a queue/active entry naming a missing job — is
// rejected rather than round-tripped silently. The fault schedule is
// not part of the checkpoint; re-attach it with SetInjector.
func Restart(data []byte) (*System, error) {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("superux: restart: %w", err)
	}
	if err := snap.validate(); err != nil {
		return nil, fmt.Errorf("superux: restart: %w", err)
	}
	s := &System{
		Blocks:          map[string]*ResourceBlock{},
		Complexes:       map[string]Complex{},
		Jobs:            map[int]*Job{},
		Clock:           snap.Clock,
		nextID:          snap.NextID,
		order:           snap.Order,
		queue:           snap.Queue,
		active:          snap.Active,
		faultsDelivered: snap.FaultsDelivered,
	}
	for name, c := range snap.Complexes {
		s.Complexes[name] = c
	}
	for name, b := range snap.Blocks {
		rb := b
		s.Blocks[name] = &rb
	}
	for id, j := range snap.Jobs {
		jj := j
		s.Jobs[id] = &jj
	}
	// Older checkpoints carry no registration order; fall back to the
	// lexical order so restarted systems stay deterministic.
	if len(s.order) != len(s.Blocks) {
		s.order = s.order[:0]
		for name := range s.Blocks {
			s.order = append(s.order, name)
		}
		sort.Strings(s.order)
	}
	// Recompute block usage from running jobs (usage fields are
	// unexported and not serialized).
	for _, b := range s.Blocks {
		b.usedCPUs, b.usedMem = 0, 0
	}
	for _, id := range s.active {
		j := s.Jobs[id]
		blk := s.Blocks[j.Block]
		blk.usedCPUs += j.CPUs
		blk.usedMem += j.MemGB
	}
	return s, nil
}

// validate rejects corrupt checkpoints before they become a System.
func (snap *snapshot) validate() error {
	switch {
	case snap.Clock < 0 || snap.Clock != snap.Clock:
		return fmt.Errorf("negative or NaN clock %v", snap.Clock)
	case snap.NextID < 0:
		return fmt.Errorf("negative job counter %d", snap.NextID)
	case snap.FaultsDelivered < 0:
		return fmt.Errorf("negative delivered-fault count %d", snap.FaultsDelivered)
	}
	for id, j := range snap.Jobs {
		if j.State < Queued || j.State > Migrated {
			return fmt.Errorf("job %d has unknown state %d", id, int(j.State))
		}
		if _, ok := snap.Blocks[j.Block]; !ok {
			return fmt.Errorf("job %d references undefined resource block %q", id, j.Block)
		}
	}
	for _, id := range snap.Queue {
		if _, ok := snap.Jobs[id]; !ok {
			return fmt.Errorf("queued job %d does not exist", id)
		}
	}
	for _, id := range snap.Active {
		if _, ok := snap.Jobs[id]; !ok {
			return fmt.Errorf("active job %d does not exist", id)
		}
	}
	for _, name := range snap.Order {
		if _, ok := snap.Blocks[name]; !ok {
			return fmt.Errorf("block order names undefined block %q", name)
		}
	}
	return nil
}
