// Package superux models the SUPER-UX operating-system features the
// benchmark exercises: Resource Blocking (logical scheduling groups
// with processor and memory limits mapped onto the SX-4 CPUs), the NQS
// batch subsystem (queues, job submission, qcat), and
// checkpoint/restart of batch work — all over a deterministic
// virtual-time event simulation, which is what the PRODLOAD benchmark
// runs on.
package superux

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// Policy selects a resource block's scheduling style.
type Policy int

const (
	// FIFO runs jobs strictly in submission order ("static parallel
	// processing scheduling using a FIFO scheme").
	FIFO Policy = iota
	// Interactive admits jobs in any order that fits (favoring small
	// jobs), the behaviour of a block reserved for interactive work.
	Interactive
)

func (p Policy) String() string {
	if p == FIFO {
		return "FIFO"
	}
	return "interactive"
}

// ResourceBlock is a logical scheduling group mapped onto part of the
// node.
type ResourceBlock struct {
	Name    string
	MinCPUs int
	MaxCPUs int
	MemGB   float64
	Policy  Policy

	usedCPUs int
	usedMem  float64
}

// JobState tracks a job through the queue.
type JobState int

const (
	Queued JobState = iota
	Running
	Done
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one NQS batch request.
type Job struct {
	ID       int
	Name     string
	Block    string // resource block name
	CPUs     int
	MemGB    float64
	Seconds  float64 // execution time once started
	Priority int

	State    JobState
	SubmitAt float64
	StartAt  float64
	FinishAt float64
	Output   string // stdout produced so far (qcat reads this)
}

// Complex is an NQS queue complex: a group of resource blocks sharing
// a global limit on concurrently running jobs (Section 2.6.3 mentions
// "NQS queues, queue complexes, and the full range of individual queue
// parameters").
type Complex struct {
	Name     string
	Blocks   []string
	RunLimit int
}

// System is the simulated SUPER-UX instance.
type System struct {
	Blocks    map[string]*ResourceBlock
	Complexes map[string]Complex
	Jobs      map[int]*Job

	Clock  float64
	nextID int
	queue  []int // queued job IDs in priority+submission order
	active []int
}

// NewSystem builds a system with the given resource blocks. Block
// names must be unique and CPU limits positive.
func NewSystem(blocks ...ResourceBlock) *System {
	s := &System{
		Blocks:    map[string]*ResourceBlock{},
		Complexes: map[string]Complex{},
		Jobs:      map[int]*Job{},
	}
	for _, b := range blocks {
		if b.MaxCPUs <= 0 || b.MinCPUs < 0 || b.MinCPUs > b.MaxCPUs {
			panic(fmt.Sprintf("superux: bad CPU limits in block %q", b.Name))
		}
		if _, dup := s.Blocks[b.Name]; dup {
			panic(fmt.Sprintf("superux: duplicate block %q", b.Name))
		}
		rb := b
		s.Blocks[b.Name] = &rb
	}
	return s
}

// Submit enqueues a job and returns its ID.
func (s *System) Submit(j Job) int {
	blk, ok := s.Blocks[j.Block]
	if !ok {
		panic(fmt.Sprintf("superux: unknown resource block %q", j.Block))
	}
	if j.CPUs <= 0 || j.CPUs > blk.MaxCPUs {
		panic(fmt.Sprintf("superux: job %q requests %d CPUs; block %q allows up to %d",
			j.Name, j.CPUs, j.Block, blk.MaxCPUs))
	}
	if j.MemGB > blk.MemGB {
		panic(fmt.Sprintf("superux: job %q exceeds block memory", j.Name))
	}
	s.nextID++
	j.ID = s.nextID
	j.State = Queued
	j.SubmitAt = s.Clock
	s.Jobs[j.ID] = &j
	s.queue = append(s.queue, j.ID)
	s.sortQueue()
	s.dispatch()
	return j.ID
}

func (s *System) sortQueue() {
	sort.SliceStable(s.queue, func(a, b int) bool {
		ja, jb := s.Jobs[s.queue[a]], s.Jobs[s.queue[b]]
		if ja.Priority != jb.Priority {
			return ja.Priority > jb.Priority
		}
		return ja.ID < jb.ID
	})
}

// AddComplex registers a queue complex. Member blocks must exist and
// the run limit must be positive.
func (s *System) AddComplex(c Complex) {
	if c.RunLimit <= 0 {
		panic(fmt.Sprintf("superux: complex %q needs a positive run limit", c.Name))
	}
	for _, b := range c.Blocks {
		if _, ok := s.Blocks[b]; !ok {
			panic(fmt.Sprintf("superux: complex %q references unknown block %q", c.Name, b))
		}
	}
	s.Complexes[c.Name] = c
}

// complexAllows reports whether starting one more job in block would
// stay inside every complex limit covering that block.
func (s *System) complexAllows(block string) bool {
	for _, c := range s.Complexes {
		member := false
		for _, b := range c.Blocks {
			if b == block {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		running := 0
		for _, id := range s.active {
			j := s.Jobs[id]
			for _, b := range c.Blocks {
				if j.Block == b {
					running++
					break
				}
			}
		}
		if running >= c.RunLimit {
			return false
		}
	}
	return true
}

// dispatch starts every queued job that fits its block's free capacity,
// respecting each block's policy and every complex run limit.
func (s *System) dispatch() {
	blocked := map[string]bool{} // FIFO blocks stalled by their head job
	remaining := s.queue[:0]
	for _, id := range s.queue {
		j := s.Jobs[id]
		blk := s.Blocks[j.Block]
		fits := blk.usedCPUs+j.CPUs <= blk.MaxCPUs && blk.usedMem+j.MemGB <= blk.MemGB &&
			s.complexAllows(j.Block)
		if blocked[j.Block] || !fits {
			if blk.Policy == FIFO {
				blocked[j.Block] = true // preserve order: later jobs wait
			}
			remaining = append(remaining, id)
			continue
		}
		blk.usedCPUs += j.CPUs
		blk.usedMem += j.MemGB
		j.State = Running
		j.StartAt = s.Clock
		j.FinishAt = s.Clock + j.Seconds
		j.Output = fmt.Sprintf("job %d (%s) started at %.2f\n", j.ID, j.Name, j.StartAt)
		s.active = append(s.active, id)
	}
	s.queue = append([]int(nil), remaining...)
}

// Advance runs the event loop until no job is running or queued,
// returning the completion (virtual) time. Jobs submitted before the
// call are processed; the simulation is deterministic.
func (s *System) Advance() float64 {
	for len(s.active) > 0 {
		// Next completion event.
		next := -1
		for _, id := range s.active {
			if next == -1 || s.Jobs[id].FinishAt < s.Jobs[next].FinishAt ||
				(s.Jobs[id].FinishAt == s.Jobs[next].FinishAt && id < next) {
				next = id
			}
		}
		j := s.Jobs[next]
		s.Clock = j.FinishAt
		j.State = Done
		j.Output += fmt.Sprintf("job %d (%s) finished at %.2f\n", j.ID, j.Name, j.FinishAt)
		blk := s.Blocks[j.Block]
		blk.usedCPUs -= j.CPUs
		blk.usedMem -= j.MemGB
		// Remove from active.
		for i, id := range s.active {
			if id == next {
				s.active = append(s.active[:i], s.active[i+1:]...)
				break
			}
		}
		s.dispatch()
	}
	return s.Clock
}

// QCat returns the stdout produced so far by a job — the SUPER-UX NQS
// qcat command, which can inspect an executing batch script's output.
func (s *System) QCat(id int) (string, error) {
	j, ok := s.Jobs[id]
	if !ok {
		return "", fmt.Errorf("superux: no job %d", id)
	}
	return j.Output, nil
}

// Status returns a job's state.
func (s *System) Status(id int) (JobState, error) {
	j, ok := s.Jobs[id]
	if !ok {
		return 0, fmt.Errorf("superux: no job %d", id)
	}
	return j.State, nil
}

// Makespan returns the latest finish time among completed jobs.
func (s *System) Makespan() float64 {
	best := 0.0
	for _, j := range s.Jobs {
		if j.State == Done && j.FinishAt > best {
			best = j.FinishAt
		}
	}
	return best
}

// --- checkpoint / restart ---

// snapshot is the serializable scheduler state.
type snapshot struct {
	Blocks    map[string]ResourceBlock
	Complexes map[string]Complex
	Jobs      map[int]Job
	Clock     float64
	NextID    int
	Queue     []int
	Active    []int
}

// Checkpoint serializes the full system state; no special programming
// is required of the jobs.
func (s *System) Checkpoint() ([]byte, error) {
	snap := snapshot{
		Blocks:    map[string]ResourceBlock{},
		Complexes: map[string]Complex{},
		Jobs:      map[int]Job{},
		Clock:     s.Clock,
		NextID:    s.nextID,
		Queue:     append([]int(nil), s.queue...),
		Active:    append([]int(nil), s.active...),
	}
	for name, c := range s.Complexes {
		snap.Complexes[name] = c
	}
	for name, b := range s.Blocks {
		sb := *b
		sb.usedCPUs = b.usedCPUs
		sb.usedMem = b.usedMem
		snap.Blocks[name] = sb
	}
	for id, j := range s.Jobs {
		snap.Jobs[id] = *j
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("superux: checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Restart reconstructs a system from a checkpoint.
func Restart(data []byte) (*System, error) {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("superux: restart: %w", err)
	}
	s := &System{
		Blocks:    map[string]*ResourceBlock{},
		Complexes: map[string]Complex{},
		Jobs:      map[int]*Job{},
		Clock:     snap.Clock,
		nextID:    snap.NextID,
		queue:     snap.Queue,
		active:    snap.Active,
	}
	for name, c := range snap.Complexes {
		s.Complexes[name] = c
	}
	for name, b := range snap.Blocks {
		rb := b
		s.Blocks[name] = &rb
	}
	for id, j := range snap.Jobs {
		jj := j
		s.Jobs[id] = &jj
	}
	// Recompute block usage from running jobs (usage fields are
	// unexported and not serialized).
	for _, b := range s.Blocks {
		b.usedCPUs, b.usedMem = 0, 0
	}
	for _, id := range s.active {
		j := s.Jobs[id]
		blk := s.Blocks[j.Block]
		blk.usedCPUs += j.CPUs
		blk.usedMem += j.MemGB
	}
	return s, nil
}
