package superux

import (
	"fmt"

	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/sx4/xmu"
)

// SFS models the SUPER-UX native file system's XMU-backed caching
// layer: a block cache in extended memory in front of the disk array,
// with a configurable write policy, staging unit (block size) and
// allocation cluster size — the tunables Section 2.6.5 lists.
// Individual files can exceed 2 TB; the model tracks service times,
// not contents.
type SFS struct {
	// StagingBytes is the cache block (staging unit) size.
	StagingBytes int64
	// ClusterBlocks is the allocation cluster: contiguous blocks
	// fetched/written together.
	ClusterBlocks int
	// WriteBack selects write-back (true) or write-through caching.
	WriteBack bool
	// CacheBlocks is the XMU capacity in blocks.
	CacheBlocks int

	mem  xmu.XMU
	disk iop.Disk

	// LRU cache of block ids.
	order []int64
	index map[int64]int
	dirty map[int64]bool

	// Statistics.
	Hits, Misses int64
	DiskSeconds  float64
	XMUSeconds   float64
}

// NewSFS builds a file-system cache over an XMU and a disk array.
func NewSFS(mem xmu.XMU, disk iop.Disk, stagingBytes int64, cacheBlocks, clusterBlocks int, writeBack bool) *SFS {
	if stagingBytes <= 0 || cacheBlocks <= 0 || clusterBlocks <= 0 {
		panic(fmt.Sprintf("superux: bad SFS geometry staging=%d cache=%d cluster=%d",
			stagingBytes, cacheBlocks, clusterBlocks))
	}
	return &SFS{
		StagingBytes:  stagingBytes,
		ClusterBlocks: clusterBlocks,
		WriteBack:     writeBack,
		CacheBlocks:   cacheBlocks,
		mem:           mem,
		disk:          disk,
		index:         map[int64]int{},
		dirty:         map[int64]bool{},
	}
}

// touch moves a block to the MRU position, inserting it if absent, and
// returns the seconds spent evicting if the cache overflowed.
func (s *SFS) touch(block int64, markDirty bool) float64 {
	var cost float64
	if pos, ok := s.index[block]; ok {
		s.order = append(append(s.order[:pos], s.order[pos+1:]...), block)
		s.reindex(pos)
	} else {
		s.order = append(s.order, block)
		s.index[block] = len(s.order) - 1
		if len(s.order) > s.CacheBlocks {
			victim := s.order[0]
			s.order = s.order[1:]
			s.reindex(0)
			delete(s.index, victim)
			if s.dirty[victim] {
				cost += s.disk.WriteTime(s.StagingBytes)
				s.DiskSeconds += s.disk.WriteTime(s.StagingBytes)
				delete(s.dirty, victim)
			}
		}
	}
	if markDirty {
		s.dirty[block] = true
	}
	return cost
}

func (s *SFS) reindex(from int) {
	for i := from; i < len(s.order); i++ {
		s.index[s.order[i]] = i
	}
}

// Read services a read at the given byte offset/length and returns the
// service time.
func (s *SFS) Read(offset, length int64) float64 {
	var t float64
	for _, b := range s.blocks(offset, length) {
		if _, ok := s.index[b]; ok {
			s.Hits++
			dt := s.mem.CacheHitTime(s.StagingBytes)
			s.XMUSeconds += dt
			t += dt + s.touch(b, false)
			continue
		}
		s.Misses++
		// Fetch the whole allocation cluster.
		diskT := s.disk.WriteTime(s.StagingBytes * int64(s.ClusterBlocks))
		s.DiskSeconds += diskT
		dt := s.mem.CacheMissTime(s.StagingBytes, diskT)
		t += dt
		base := b - b%int64(s.ClusterBlocks)
		for c := 0; c < s.ClusterBlocks; c++ {
			t += s.touch(base+int64(c), false)
		}
	}
	return t
}

// Write services a write and returns the service time; write-back
// writes land in the XMU and reach disk on eviction (or Flush),
// write-through pays the disk immediately.
func (s *SFS) Write(offset, length int64) float64 {
	var t float64
	for _, b := range s.blocks(offset, length) {
		dt := s.mem.CacheHitTime(s.StagingBytes)
		s.XMUSeconds += dt
		t += dt + s.touch(b, s.WriteBack)
		if !s.WriteBack {
			diskT := s.disk.WriteTime(s.StagingBytes)
			s.DiskSeconds += diskT
			t += diskT
		}
	}
	return t
}

// Flush writes every dirty block to disk and returns the time.
func (s *SFS) Flush() float64 {
	var t float64
	n := 0
	for b := range s.dirty {
		_ = b
		n++
	}
	if n > 0 {
		t = s.disk.WriteRecords(n, s.StagingBytes)
		s.DiskSeconds += t
	}
	s.dirty = map[int64]bool{}
	return t
}

// blocks returns the block ids covering [offset, offset+length).
func (s *SFS) blocks(offset, length int64) []int64 {
	if length <= 0 {
		return nil
	}
	first := offset / s.StagingBytes
	last := (offset + length - 1) / s.StagingBytes
	out := make([]int64, 0, last-first+1)
	for b := first; b <= last; b++ {
		out = append(out, b)
	}
	return out
}

// HitRate returns the fraction of block accesses served from the XMU.
func (s *SFS) HitRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}
