package superux

// This file is the fleet-node surface of the scheduler: the handful of
// read-only probes and the migration hook internal/fleet needs to run
// many Systems side by side behind one NQS-style cluster queue. The
// event loop itself is untouched — a fleet advances every node with
// AdvanceUntil to a common simulated time, and these helpers let it
// pick that time and route work without reaching into unexported
// state.

// SetMigrator installs the cluster-level recovery hook: when a fault
// leaves a job with no surviving resource block on this node, the
// migrator is offered a copy of the job before it is declared Failed.
// Returning true accepts the job — its state here becomes Migrated
// (terminal on this node) and the caller owns resubmitting the
// remaining work elsewhere. A nil migrator (the default) restores the
// single-node behaviour: homeless jobs fail. Like the fault injector,
// the migrator is runner-owned and never rides a checkpoint; re-attach
// it after Restart.
func (s *System) SetMigrator(fn func(Job) bool) { s.migrator = fn }

// NextEventAt returns the simulated time of the node's next pending
// event — the earliest of the next job completion and the next
// undelivered fault — and whether one exists. A fleet driver uses it
// to advance all nodes to the globally earliest event, which preserves
// the completions-win-ties rule fleet-wide: every node reaches the tie
// time before any cross-node action is taken at it.
func (s *System) NextEventAt() (float64, bool) {
	at, ok := 0.0, false
	if len(s.active) > 0 {
		at, ok = s.Jobs[s.nextCompletion()].FinishAt, true
	}
	if e, have := s.nextFault(); have && (!ok || e.At < at) {
		at, ok = e.At, true
	}
	return at, ok
}

// Down reports whether every resource block has failed: the node-level
// terminal state. A down node schedules nothing ever again — the fleet
// stops routing work to it, and jobs still aboard can only migrate or
// fail.
func (s *System) Down() bool {
	for _, name := range s.order {
		if !s.Blocks[name].Failed {
			return false
		}
	}
	return true
}

// CanHold reports whether some surviving resource block's limits admit
// a job of the given shape. It is a capacity-class check (like
// survivingHome), not an instantaneous-load check: a true answer means
// the job can eventually run here, possibly after queueing.
func (s *System) CanHold(cpus int, memGB float64) bool {
	for _, name := range s.order {
		b := s.Blocks[name]
		if !b.Failed && cpus <= b.MaxCPUs && memGB <= b.MemGB {
			return true
		}
	}
	return false
}

// Backlog returns the simulated seconds of work the node still owes:
// the remaining time of every running job plus the full duration of
// everything queued. The fleet dispatcher uses it as the load signal
// when choosing a home for new arrivals.
func (s *System) Backlog() float64 {
	total := 0.0
	for _, id := range s.active {
		if remaining := s.Jobs[id].FinishAt - s.Clock; remaining > 0 {
			total += remaining
		}
	}
	for _, id := range s.queue {
		total += s.Jobs[id].Seconds
	}
	return total
}

// BlockNames returns the resource-block names in registration order —
// the deterministic iteration order for callers that must pick blocks
// without touching the Blocks map's random order.
func (s *System) BlockNames() []string {
	return append([]string(nil), s.order...)
}
