package superux

import (
	"testing"
	"testing/quick"

	"sx4bench/internal/fault"
)

// Property-based scheduler invariants over random job sets.

type jobSpec struct {
	CPUs    uint8
	Seconds uint8
	Prio    uint8
}

func runRandomJobs(specs []jobSpec, policy Policy) (*System, []int, float64) {
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 8, MemGB: 64, Policy: policy})
	var ids []int
	for _, sp := range specs {
		cpus := int(sp.CPUs)%8 + 1
		secs := float64(sp.Seconds%50) + 1
		ids = append(ids, s.Submit(Job{
			Name: "j", Block: "b", CPUs: cpus, MemGB: 1,
			Seconds: secs, Priority: int(sp.Prio % 4),
		}))
	}
	end := s.Advance()
	return s, ids, end
}

func TestQuickMakespanBounds(t *testing.T) {
	f := func(specs []jobSpec) bool {
		if len(specs) == 0 || len(specs) > 20 {
			return true
		}
		s, ids, end := runRandomJobs(specs, FIFO)
		// Lower bound: total CPU-work / capacity, and the longest job.
		var work, longest float64
		for _, id := range ids {
			j := s.Jobs[id]
			work += float64(j.CPUs) * j.Seconds
			if j.Seconds > longest {
				longest = j.Seconds
			}
		}
		if end < longest-1e-9 || end < work/8-1e-9 {
			return false
		}
		// Upper bound: fully serial execution.
		var serial float64
		for _, id := range ids {
			serial += s.Jobs[id].Seconds
		}
		return end <= serial+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllJobsComplete(t *testing.T) {
	f := func(specs []jobSpec) bool {
		if len(specs) > 25 {
			return true
		}
		s, ids, _ := runRandomJobs(specs, Interactive)
		for _, id := range ids {
			j := s.Jobs[id]
			if j.State != Done {
				return false
			}
			if j.FinishAt < j.StartAt || j.StartAt < j.SubmitAt {
				return false
			}
			if j.FinishAt-j.StartAt != j.Seconds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCapacityNeverExceeded(t *testing.T) {
	f := func(specs []jobSpec) bool {
		if len(specs) == 0 || len(specs) > 16 {
			return true
		}
		s, ids, _ := runRandomJobs(specs, FIFO)
		// Reconstruct the schedule and check CPU usage at every start
		// event.
		for _, probe := range ids {
			at := s.Jobs[probe].StartAt
			used := 0
			for _, id := range ids {
				j := s.Jobs[id]
				if j.StartAt <= at && at < j.FinishAt {
					used += j.CPUs
				}
			}
			if used > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCheckpointAnywhereEquivalent(t *testing.T) {
	f := func(specs []jobSpec) bool {
		if len(specs) == 0 || len(specs) > 12 {
			return true
		}
		_, _, refEnd := runRandomJobs(specs, FIFO)
		// Same jobs, but checkpoint/restart before advancing.
		s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 8, MemGB: 64, Policy: FIFO})
		for _, sp := range specs {
			s.Submit(Job{
				Name: "j", Block: "b", CPUs: int(sp.CPUs)%8 + 1, MemGB: 1,
				Seconds: float64(sp.Seconds%50) + 1, Priority: int(sp.Prio % 4),
			})
		}
		data, err := s.Checkpoint()
		if err != nil {
			return false
		}
		restored, err := Restart(data)
		if err != nil {
			return false
		}
		return restored.Advance() == refEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCheckpointCommutesWithFaults extends the checkpoint-anywhere
// property to fault schedules: checkpointing at an arbitrary simulated
// time and restarting (with the same schedule re-attached) must land in
// exactly the state of an uninterrupted faulted run — checkpoint/restart
// commutes with fault delivery.
func TestQuickCheckpointCommutesWithFaults(t *testing.T) {
	f := func(specs []jobSpec, faultSeed int64, cut uint8) bool {
		if len(specs) == 0 || len(specs) > 12 {
			return true
		}
		plan := fault.NewPlan(faultSeed, 120, 6)
		submit := func(s *System) {
			for _, sp := range specs {
				s.Submit(Job{
					Name: "j", Block: "a", CPUs: int(sp.CPUs)%8 + 1, MemGB: 1,
					Seconds: float64(sp.Seconds%50) + 1, Priority: int(sp.Prio % 4),
				})
			}
		}
		blocks := func() []ResourceBlock {
			return []ResourceBlock{
				{Name: "a", MaxCPUs: 8, MemGB: 64, Policy: FIFO},
				{Name: "b", MaxCPUs: 8, MemGB: 64, Policy: FIFO},
			}
		}

		ref := NewSystem(blocks()...)
		ref.SetInjector(plan)
		submit(ref)
		ref.Advance()

		s := NewSystem(blocks()...)
		s.SetInjector(plan)
		submit(s)
		s.AdvanceUntil(float64(cut)) // checkpoint mid-flight, faults included
		data, err := s.Checkpoint()
		if err != nil {
			return false
		}
		restored, err := Restart(data)
		if err != nil {
			return false
		}
		restored.SetInjector(plan)
		restored.Advance()
		// The clock itself may differ when the cut lands after the last
		// completion (AdvanceUntil parks it at the cut time); the
		// observable outcome — completion times and job fates — must not.
		if restored.Makespan() != ref.Makespan() {
			return false
		}
		// Every job lands in the same terminal state with the same
		// recovery history; none is lost in either run.
		for id, rj := range ref.Jobs {
			got, ok := restored.Jobs[id]
			if !ok || got.State != rj.State || got.Restarts != rj.Restarts ||
				got.FinishAt != rj.FinishAt || got.Block != rj.Block {
				return false
			}
		}
		_, _, lostRef := ref.Tally()
		_, _, lostRestored := restored.Tally()
		return lostRef == 0 && lostRestored == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
