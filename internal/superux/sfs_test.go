package superux

import (
	"testing"

	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/sx4/xmu"
)

func newSFS(writeBack bool) *SFS {
	return NewSFS(xmu.New(4), iop.NewDisk(), 1<<20, 64, 4, writeBack)
}

func TestSFSRereadHitsCache(t *testing.T) {
	s := newSFS(true)
	cold := s.Read(0, 8<<20)
	warm := s.Read(0, 8<<20)
	if warm >= cold/5 {
		t.Errorf("warm re-read (%v) should be far cheaper than cold (%v)", warm, cold)
	}
	if s.HitRate() <= 0.4 {
		t.Errorf("hit rate %v after re-read, want > 0.4", s.HitRate())
	}
}

func TestSFSClusterPrefetch(t *testing.T) {
	s := newSFS(true)
	// Reading block 0 pulls the whole 4-block cluster: blocks 1-3 hit.
	s.Read(0, 1)
	before := s.Misses
	s.Read(1<<20, 3<<20) // blocks 1..3
	if s.Misses != before {
		t.Errorf("cluster prefetch missed: misses %d -> %d", before, s.Misses)
	}
}

func TestWriteBackDefersDisk(t *testing.T) {
	wb := newSFS(true)
	wt := newSFS(false)
	tWB := wb.Write(0, 16<<20)
	tWT := wt.Write(0, 16<<20)
	if tWB >= tWT {
		t.Errorf("write-back (%v) should be cheaper than write-through (%v)", tWB, tWT)
	}
	// The deferred work appears at flush time.
	flush := wb.Flush()
	if flush <= 0 {
		t.Error("write-back flush wrote nothing")
	}
	if wb.Flush() != 0 {
		t.Error("second flush should be free")
	}
}

func TestEvictionWritesDirtyBlocks(t *testing.T) {
	s := NewSFS(xmu.New(4), iop.NewDisk(), 1<<20, 4, 1, true) // tiny cache
	s.Write(0, 4<<20)                                         // fill with dirty blocks
	before := s.DiskSeconds
	s.Read(100<<20, 8<<20) // force evictions
	if s.DiskSeconds <= before {
		t.Error("evicting dirty blocks should cost disk time")
	}
}

func TestSFSLRUOrder(t *testing.T) {
	s := NewSFS(xmu.New(4), iop.NewDisk(), 1<<20, 2, 1, false)
	s.Read(0, 1)     // block 0
	s.Read(1<<20, 1) // block 1
	s.Read(0, 1)     // touch 0: now MRU
	s.Read(5<<20, 1) // block 5 evicts block 1 (LRU)
	before := s.Hits
	s.Read(0, 1) // block 0 must still be cached
	if s.Hits != before+1 {
		t.Error("LRU evicted the recently used block")
	}
}

func TestSFSGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad SFS geometry accepted")
		}
	}()
	NewSFS(xmu.New(4), iop.NewDisk(), 0, 1, 1, true)
}

func TestSFSZeroLength(t *testing.T) {
	s := newSFS(true)
	if s.Read(0, 0) != 0 || s.Write(0, 0) != 0 {
		t.Error("zero-length I/O should be free")
	}
	if s.HitRate() != 0 {
		t.Error("hit rate with no accesses should be 0")
	}
}
