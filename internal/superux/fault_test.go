package superux

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"sx4bench/internal/fault"
)

func twoBlockSystem() *System {
	return NewSystem(
		ResourceBlock{Name: "batch", MaxCPUs: 8, MemGB: 64, Policy: FIFO},
		ResourceBlock{Name: "spare", MaxCPUs: 8, MemGB: 64, Policy: FIFO},
	)
}

func TestEmptyInjectorEquivalentToNil(t *testing.T) {
	run := func(inj fault.Injector) (float64, string) {
		s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
		s.SetInjector(inj)
		id := s.Submit(Job{Name: "j", Block: "b", CPUs: 2, MemGB: 1, Seconds: 10})
		end := s.Advance()
		out, _ := s.QCat(id)
		return end, out
	}
	nilEnd, nilOut := run(nil)
	emptyEnd, emptyOut := run(&fault.Plan{})
	var nilPlan *fault.Plan
	nilPlanEnd, nilPlanOut := run(nilPlan)
	if nilEnd != emptyEnd || nilOut != emptyOut {
		t.Errorf("empty plan diverged from nil injector: %v/%q vs %v/%q", emptyEnd, emptyOut, nilEnd, nilOut)
	}
	if nilEnd != nilPlanEnd || nilOut != nilPlanOut {
		t.Errorf("nil *Plan diverged from nil injector: %v vs %v", nilPlanEnd, nilEnd)
	}
}

func TestCPUFailRecoversOntoSurvivingBlock(t *testing.T) {
	s := twoBlockSystem()
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 10, Kind: fault.CPUFail, Unit: 0}}})
	id := s.Submit(Job{Name: "long", Block: "batch", CPUs: 4, MemGB: 8, Seconds: 30})
	end := s.Advance()

	j := s.Jobs[id]
	if j.State != Done {
		t.Fatalf("job state = %v, want done", j.State)
	}
	if j.Block != "spare" {
		t.Errorf("job recovered on block %q, want spare", j.Block)
	}
	if j.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", j.Restarts)
	}
	// 10s done before the fault, 30s rerun from checkpoint remaining
	// (20s) plus the restart overhead.
	want := 10 + 20 + RestartOverheadSeconds
	if end != want {
		t.Errorf("makespan = %v, want %v", end, want)
	}
	if !s.Blocks["batch"].Failed {
		t.Error("failed block not marked")
	}
	rec, failed, lost := s.Tally()
	if rec != 1 || failed != 0 || lost != 0 {
		t.Errorf("tally = (%d,%d,%d), want (1,0,0)", rec, failed, lost)
	}
	out, _ := s.QCat(id)
	for _, frag := range []string{"checkpointed", "moved to block spare", "finished"} {
		if !strings.Contains(out, frag) {
			t.Errorf("qcat output missing %q:\n%s", frag, out)
		}
	}
}

func TestCPUFailLastBlockReportsFailedNeverLost(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "only", MaxCPUs: 8, MemGB: 64, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 5, Kind: fault.CPUFail, Unit: 3}}})
	run := s.Submit(Job{Name: "run", Block: "only", CPUs: 8, MemGB: 8, Seconds: 20})
	wait := s.Submit(Job{Name: "wait", Block: "only", CPUs: 8, MemGB: 8, Seconds: 20})
	s.Advance()
	for _, id := range []int{run, wait} {
		if got := s.Jobs[id].State; got != Failed {
			t.Errorf("job %d state = %v, want failed", id, got)
		}
	}
	rec, failed, lost := s.Tally()
	if rec != 0 || failed != 2 || lost != 0 {
		t.Errorf("tally = (%d,%d,%d), want (0,2,0)", rec, failed, lost)
	}
	// Submissions after the machine is gone are reported failed too.
	late := s.Submit(Job{Name: "late", Block: "only", CPUs: 1, MemGB: 1, Seconds: 1})
	if got := s.Jobs[late].State; got != Failed {
		t.Errorf("late submission state = %v, want failed", got)
	}
}

func TestJobKillCheckpointsAndRestarts(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 12, Kind: fault.JobKill, Unit: 0}}})
	id := s.Submit(Job{Name: "victim", Block: "b", CPUs: 4, MemGB: 4, Seconds: 40})
	end := s.Advance()
	j := s.Jobs[id]
	if j.State != Done || j.Restarts != 1 {
		t.Fatalf("state=%v restarts=%d, want done/1", j.State, j.Restarts)
	}
	want := 12 + 28 + RestartOverheadSeconds
	if end != want {
		t.Errorf("makespan = %v, want %v", end, want)
	}
}

func TestJobKillWithNothingRunningIsNoop(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 1, Kind: fault.JobKill, Unit: 2}}})
	s.AdvanceUntil(5)
	if s.Clock != 5 {
		t.Errorf("clock = %v, want 5", s.Clock)
	}
	// The event was consumed, not left pending.
	if _, ok := s.nextFault(); ok {
		t.Error("no-op kill left the event pending")
	}
}

func TestCompletionWinsTieWithFault(t *testing.T) {
	// Job finishes at exactly t=10; a kill lands at t=10. The
	// completion is processed first, so the kill finds nothing to kill.
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 10, Kind: fault.JobKill, Unit: 0}}})
	id := s.Submit(Job{Name: "j", Block: "b", CPUs: 1, MemGB: 1, Seconds: 10})
	end := s.Advance()
	if j := s.Jobs[id]; j.State != Done || j.Restarts != 0 {
		t.Errorf("state=%v restarts=%d, want done/0 (completion wins the tie)", j.State, j.Restarts)
	}
	if end != 10 {
		t.Errorf("makespan = %v, want 10", end)
	}
}

func TestMachineLevelFaultsDoNotTouchScheduler(t *testing.T) {
	mk := func(inj fault.Injector) float64 {
		s := twoBlockSystem()
		s.SetInjector(inj)
		s.Submit(Job{Name: "a", Block: "batch", CPUs: 4, MemGB: 4, Seconds: 25})
		s.Submit(Job{Name: "b", Block: "spare", CPUs: 4, MemGB: 4, Seconds: 15})
		return s.Advance()
	}
	healthy := mk(nil)
	degradeOnly := mk(&fault.Plan{Events: []fault.Event{
		{At: 3, Kind: fault.BankDegrade, Unit: 1},
		{At: 7, Kind: fault.IOPStall, Unit: 2},
	}})
	if healthy != degradeOnly {
		t.Errorf("bank/IOP events changed the schedule: %v vs %v", degradeOnly, healthy)
	}
}

func TestAdvanceUntilDeliversIdleFaults(t *testing.T) {
	s := twoBlockSystem()
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 50, Kind: fault.CPUFail, Unit: 0}}})
	s.AdvanceUntil(100)
	if s.Clock != 100 {
		t.Errorf("clock = %v, want 100", s.Clock)
	}
	if !s.Blocks["batch"].Failed {
		t.Error("idle CPU failure not delivered by AdvanceUntil")
	}
	// A job submitted afterwards lands on the survivor.
	id := s.Submit(Job{Name: "j", Block: "batch", CPUs: 2, MemGB: 1, Seconds: 5})
	s.Advance()
	if j := s.Jobs[id]; j.State != Done || j.Block != "spare" {
		t.Errorf("post-fault submission: state=%v block=%q, want done on spare", j.State, j.Block)
	}
}

func TestCheckpointDoesNotRedeliverFaults(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{At: 10, Kind: fault.JobKill, Unit: 0},
		{At: 60, Kind: fault.JobKill, Unit: 0},
	}}
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
	s.SetInjector(plan)
	id := s.Submit(Job{Name: "j", Block: "b", CPUs: 2, MemGB: 1, Seconds: 30})
	s.AdvanceUntil(20) // first kill delivered, job restarted
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restart(data)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetInjector(plan)
	restored.Advance()
	if j := restored.Jobs[id]; j.Restarts != 1 {
		t.Errorf("restarts after checkpoint/restart = %d, want 1 (first kill must not redeliver)", j.Restarts)
	}
}

func TestRestartRejectsCorruptSnapshots(t *testing.T) {
	base := func() snapshot {
		return snapshot{
			Blocks: map[string]ResourceBlock{
				"b": {Name: "b", MaxCPUs: 4, MemGB: 32},
			},
			Complexes: map[string]Complex{},
			Jobs: map[int]Job{
				1: {ID: 1, Name: "j", Block: "b", CPUs: 2, MemGB: 1, Seconds: 5, State: Queued},
			},
			Clock:  10,
			NextID: 1,
			Order:  []string{"b"},
			Queue:  []int{1},
		}
	}
	encode := func(t *testing.T, snap snapshot) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if _, err := Restart(encode(t, base())); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	for _, tc := range []struct {
		name    string
		corrupt func(*snapshot)
		wantErr string
	}{
		{"negative clock", func(s *snapshot) { s.Clock = -1 }, "clock"},
		{"negative job counter", func(s *snapshot) { s.NextID = -2 }, "job counter"},
		{"negative fault count", func(s *snapshot) { s.FaultsDelivered = -1 }, "fault count"},
		{"unknown job state", func(s *snapshot) {
			j := s.Jobs[1]
			j.State = Failed + 3
			s.Jobs[1] = j
		}, "unknown state"},
		{"undefined resource block", func(s *snapshot) {
			j := s.Jobs[1]
			j.Block = "ghost"
			s.Jobs[1] = j
		}, "undefined resource block"},
		{"queued ghost job", func(s *snapshot) { s.Queue = []int{99} }, "does not exist"},
		{"active ghost job", func(s *snapshot) { s.Active = []int{42} }, "does not exist"},
		{"order names ghost block", func(s *snapshot) { s.Order = []string{"ghost"} }, "undefined block"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap := base()
			tc.corrupt(&snap)
			_, err := Restart(encode(t, snap))
			if err == nil {
				t.Fatal("corrupt snapshot round-tripped silently")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := Restart([]byte("not a gob stream")); err == nil {
		t.Error("garbage bytes accepted")
	}
}
