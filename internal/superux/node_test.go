package superux

import (
	"strings"
	"testing"

	"sx4bench/internal/fault"
)

// --- all-nodes-down terminal state ---

func TestAllBlocksDownIsTerminal(t *testing.T) {
	s := twoBlockSystem()
	s.SetInjector(&fault.Plan{Events: []fault.Event{
		{At: 5, Kind: fault.CPUFail, Unit: 0},
		{At: 6, Kind: fault.CPUFail, Unit: 0},
	}})
	id := s.Submit(Job{Name: "j", Block: "batch", CPUs: 4, MemGB: 8, Seconds: 100})
	s.Advance()

	if !s.Down() {
		t.Fatal("both blocks failed but Down() is false")
	}
	if got := s.Jobs[id].State; got != Failed {
		t.Errorf("homeless job state = %v, want failed", got)
	}
	if _, ok := s.NextEventAt(); ok {
		t.Error("down node still advertises a pending event")
	}
	if s.CanHold(1, 0.1) {
		t.Error("down node claims it can hold work")
	}
	if b := s.Backlog(); b != 0 {
		t.Errorf("down node backlog = %v, want 0", b)
	}
	// Terminal means terminal: further submissions fail immediately and
	// nothing is ever lost.
	late := s.Submit(Job{Name: "late", Block: "batch", CPUs: 1, MemGB: 1, Seconds: 1})
	if got := s.Jobs[late].State; got != Failed {
		t.Errorf("submission to a down node state = %v, want failed", got)
	}
	if _, _, lost := s.Tally(); lost != 0 {
		t.Errorf("down node lost %d jobs, want 0", lost)
	}
}

func TestDownReflectsPartialFailure(t *testing.T) {
	s := twoBlockSystem()
	if s.Down() {
		t.Fatal("healthy node reports Down")
	}
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 1, Kind: fault.CPUFail, Unit: 0}}})
	s.AdvanceUntil(2)
	if s.Down() {
		t.Error("node with one surviving block reports Down")
	}
	if !s.CanHold(8, 64) {
		t.Error("surviving block's capacity not visible through CanHold")
	}
	if s.CanHold(9, 64) {
		t.Error("CanHold admits a shape no block ever could")
	}
}

// --- migration hook ---

func TestMigratorOfferedBeforeFailure(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "only", MaxCPUs: 8, MemGB: 64, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 10, Kind: fault.CPUFail, Unit: 0}}})
	var offered []Job
	s.SetMigrator(func(j Job) bool {
		offered = append(offered, j)
		return true
	})
	id := s.Submit(Job{Name: "movable", Block: "only", CPUs: 4, MemGB: 8, Seconds: 30})
	s.Advance()

	j := s.Jobs[id]
	if j.State != Migrated {
		t.Fatalf("state = %v, want migrated", j.State)
	}
	if j.FinishAt != 10 {
		t.Errorf("migration stamped at %v, want 10 (the fault time)", j.FinishAt)
	}
	if len(offered) != 1 {
		t.Fatalf("migrator called %d times, want 1", len(offered))
	}
	// The offered job carries the checkpointed remaining work plus the
	// restart overhead — what the accepting node must actually run.
	if want := 20 + RestartOverheadSeconds; offered[0].Seconds != want {
		t.Errorf("offered Seconds = %v, want %v", offered[0].Seconds, want)
	}
	if offered[0].Restarts != 1 {
		t.Errorf("offered Restarts = %d, want 1", offered[0].Restarts)
	}
	rec, failed, lost := s.Tally()
	if rec != 0 || failed != 0 || lost != 0 {
		t.Errorf("tally = (%d,%d,%d), want (0,0,0): migrated jobs are the fleet's to count", rec, failed, lost)
	}
	out, _ := s.QCat(id)
	if !strings.Contains(out, "migrated off node") {
		t.Errorf("qcat output missing migration record:\n%s", out)
	}
}

func TestMigratorDeclineFailsJob(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "only", MaxCPUs: 8, MemGB: 64, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 10, Kind: fault.CPUFail, Unit: 0}}})
	s.SetMigrator(func(Job) bool { return false })
	id := s.Submit(Job{Name: "stuck", Block: "only", CPUs: 4, MemGB: 8, Seconds: 30})
	s.Advance()
	if got := s.Jobs[id].State; got != Failed {
		t.Errorf("declined job state = %v, want failed", got)
	}
	if _, failed, lost := s.Tally(); failed != 1 || lost != 0 {
		t.Errorf("tally failed/lost = %d/%d, want 1/0", failed, lost)
	}
}

func TestMigratorNotOfferedWhenLocalRecoveryWorks(t *testing.T) {
	s := twoBlockSystem()
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 10, Kind: fault.CPUFail, Unit: 0}}})
	called := false
	s.SetMigrator(func(Job) bool { called = true; return true })
	id := s.Submit(Job{Name: "j", Block: "batch", CPUs: 4, MemGB: 8, Seconds: 30})
	s.Advance()
	if called {
		t.Error("migrator consulted although a surviving block could hold the job")
	}
	if got := s.Jobs[id].State; got != Done {
		t.Errorf("state = %v, want done (local recovery)", got)
	}
}

func TestMigratorDoesNotRideCheckpoints(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "only", MaxCPUs: 8, MemGB: 64, Policy: FIFO})
	s.SetMigrator(func(Job) bool { return true })
	s.Submit(Job{Name: "j", Block: "only", CPUs: 1, MemGB: 1, Seconds: 10})
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restart(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.migrator != nil {
		t.Error("migrator survived a checkpoint; it is runner-owned state")
	}
}

// --- checkpoint in the same tick as a fault ---

func TestCheckpointInSameTickAsJobKill(t *testing.T) {
	// A cluster checkpoint taken at exactly the simulated time a
	// JobKill fires must capture the post-kill state, and the restored
	// system must not see the kill again: the run continues exactly as
	// if never snapshotted.
	mk := func() (*System, int) {
		s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
		s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 12, Kind: fault.JobKill, Unit: 0}}})
		id := s.Submit(Job{Name: "victim", Block: "b", CPUs: 4, MemGB: 4, Seconds: 40})
		return s, id
	}

	straight, _ := mk()
	wantEnd := straight.Advance()

	s, id := mk()
	s.AdvanceUntil(12) // the kill fires in this very tick
	if j := s.Jobs[id]; j.Restarts != 1 {
		t.Fatalf("kill not applied before snapshot: restarts = %d", j.Restarts)
	}
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restart(snap)
	if err != nil {
		t.Fatal(err)
	}
	restored.SetInjector(&fault.Plan{Events: []fault.Event{{At: 12, Kind: fault.JobKill, Unit: 0}}})
	if _, ok := restored.nextFault(); ok {
		t.Fatal("restored system would redeliver the same-tick kill")
	}
	end := restored.Advance()
	if end != wantEnd {
		t.Errorf("makespan after same-tick snapshot = %v, want %v", end, wantEnd)
	}
	j := restored.Jobs[id]
	if j.State != Done || j.Restarts != 1 {
		t.Errorf("state=%v restarts=%d, want done/1", j.State, j.Restarts)
	}
}

func TestCompletionAtFaultTimeWinsOnIdleAdvance(t *testing.T) {
	// AdvanceUntil stops exactly on a tie boundary: the completion at
	// t=10 is processed before the kill at t=10 even when the caller
	// advances precisely to t=10 (the fleet loop does this every step).
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 10, Kind: fault.JobKill, Unit: 0}}})
	id := s.Submit(Job{Name: "j", Block: "b", CPUs: 1, MemGB: 1, Seconds: 10})
	s.AdvanceUntil(10)
	if j := s.Jobs[id]; j.State != Done || j.Restarts != 0 {
		t.Errorf("state=%v restarts=%d, want done/0 (completion wins the tie)", j.State, j.Restarts)
	}
}

// --- fleet-node probes ---

func TestNextEventAtSeesCompletionsAndFaults(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 4, MemGB: 32, Policy: FIFO})
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("idle fault-free node advertises an event")
	}
	s.SetInjector(&fault.Plan{Events: []fault.Event{{At: 50, Kind: fault.JobKill, Unit: 0}}})
	if at, ok := s.NextEventAt(); !ok || at != 50 {
		t.Fatalf("NextEventAt = %v/%v, want 50/true (pending fault)", at, ok)
	}
	s.Submit(Job{Name: "j", Block: "b", CPUs: 1, MemGB: 1, Seconds: 10})
	if at, ok := s.NextEventAt(); !ok || at != 10 {
		t.Fatalf("NextEventAt = %v/%v, want 10/true (completion before fault)", at, ok)
	}
	s.AdvanceUntil(10)
	if at, ok := s.NextEventAt(); !ok || at != 50 {
		t.Fatalf("NextEventAt after completion = %v/%v, want 50/true", at, ok)
	}
}

func TestBacklogCountsRunningRemainderAndQueue(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "b", MaxCPUs: 2, MemGB: 32, Policy: FIFO})
	s.Submit(Job{Name: "run", Block: "b", CPUs: 2, MemGB: 1, Seconds: 10})
	s.Submit(Job{Name: "wait", Block: "b", CPUs: 2, MemGB: 1, Seconds: 7})
	if got := s.Backlog(); got != 17 {
		t.Fatalf("backlog = %v, want 17 (10 running + 7 queued)", got)
	}
	s.AdvanceUntil(4)
	if got := s.Backlog(); got != 13 {
		t.Fatalf("backlog at t=4 = %v, want 13 (6 remaining + 7 queued)", got)
	}
}

func TestBlockNamesIsACopyInRegistrationOrder(t *testing.T) {
	s := twoBlockSystem()
	names := s.BlockNames()
	if len(names) != 2 || names[0] != "batch" || names[1] != "spare" {
		t.Fatalf("BlockNames = %v, want [batch spare]", names)
	}
	names[0] = "clobbered"
	if s.BlockNames()[0] != "batch" {
		t.Error("BlockNames exposed internal state")
	}
}
