package superux

import (
	"fmt"
	"math"
	"sort"

	"sx4bench/internal/fault"
)

// RestartOverheadSeconds is the simulated cost of recovering one job
// from its transparent checkpoint: the remaining work is requeued with
// this penalty added.
const RestartOverheadSeconds = 5.0

// SetInjector attaches a fault schedule. Events are delivered during
// Advance/AdvanceUntil, interleaved with job completions in
// simulated-time order. A nil injector (the default) is fault-free;
// attaching one after a Restart resumes delivery where the checkpoint
// left off.
func (s *System) SetInjector(inj fault.Injector) {
	s.injector = inj
	s.schedule = nil
	s.scheduleLoaded = false
}

// nextFault returns the earliest schedule event not yet delivered.
func (s *System) nextFault() (fault.Event, bool) {
	if s.injector == nil {
		return fault.Event{}, false
	}
	if !s.scheduleLoaded {
		s.schedule = s.injector.Window(0, math.Inf(1))
		s.scheduleLoaded = true
	}
	if s.faultsDelivered >= len(s.schedule) {
		return fault.Event{}, false
	}
	return s.schedule[s.faultsDelivered], true
}

// deliverFault applies one schedule event to the scheduler. CPU
// failures take down a resource block and recover its jobs onto the
// survivors; job kills checkpoint and requeue the victim; bank and IOP
// events degrade only the machine models, not the scheduler.
func (s *System) deliverFault(e fault.Event) {
	if e.At > s.Clock {
		s.Clock = e.At
	}
	s.faultsDelivered++
	switch e.Kind {
	case fault.CPUFail:
		s.failBlock(e.Unit)
	case fault.JobKill:
		s.killJob(e.Unit)
	}
}

// failBlock takes the unit-th surviving resource block (registration
// order, modulo the survivor count) out of service: running jobs are
// checkpointed, and every job bound to the block is requeued on the
// first surviving block that can hold it, or reported failed — never
// dropped. With no surviving block the event is a no-op (the machine
// is already gone).
func (s *System) failBlock(unit int) {
	var surviving []string
	for _, name := range s.order {
		if !s.Blocks[name].Failed {
			surviving = append(surviving, name)
		}
	}
	if len(surviving) == 0 {
		return
	}
	victim := surviving[unit%len(surviving)]
	s.Blocks[victim].Failed = true

	// Checkpoint the block's running jobs (ascending ID for
	// determinism), freeing their resources.
	var running []int
	for _, id := range s.active {
		if s.Jobs[id].Block == victim {
			running = append(running, id)
		}
	}
	sort.Ints(running)
	for _, id := range running {
		s.checkpointJob(id)
	}
	// Rebind every job still queued on the failed block (the
	// checkpointed ones are among them now).
	for _, id := range append([]int(nil), s.queue...) {
		j := s.Jobs[id]
		if j.Block != victim {
			continue
		}
		if home, ok := s.survivingHome(j); ok {
			j.Block = home
			j.Output += fmt.Sprintf("job %d (%s) moved to block %s at %.2f\n", j.ID, j.Name, home, s.Clock)
		} else {
			s.failJob(j)
		}
	}
	s.sortQueue()
	s.dispatch()
}

// killJob kills the unit-th running job (ascending ID, modulo the
// running count) and recovers it from its checkpoint: the remaining
// work is requeued on the same block with the restart overhead added.
func (s *System) killJob(unit int) {
	if len(s.active) == 0 {
		return
	}
	ids := append([]int(nil), s.active...)
	sort.Ints(ids)
	s.checkpointJob(ids[unit%len(ids)])
	s.sortQueue()
	s.dispatch()
}

// checkpointJob stops a running job, converts it to a queued job whose
// Seconds is the unfinished work plus the restart overhead, and frees
// its block resources.
func (s *System) checkpointJob(id int) {
	j := s.Jobs[id]
	remaining := j.FinishAt - s.Clock
	if remaining < 0 {
		remaining = 0
	}
	blk := s.Blocks[j.Block]
	blk.usedCPUs -= j.CPUs
	blk.usedMem -= j.MemGB
	for i, a := range s.active {
		if a == id {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	j.State = Queued
	j.Seconds = remaining + RestartOverheadSeconds
	j.Restarts++
	j.Output += fmt.Sprintf("job %d (%s) checkpointed at %.2f (%.2fs remaining)\n",
		j.ID, j.Name, s.Clock, remaining)
	s.queue = append(s.queue, id)
}

// survivingHome returns the first non-failed block (registration
// order) whose limits can hold the job.
func (s *System) survivingHome(j *Job) (string, bool) {
	for _, name := range s.order {
		b := s.Blocks[name]
		if !b.Failed && j.CPUs <= b.MaxCPUs && j.MemGB <= b.MemGB {
			return name, true
		}
	}
	return "", false
}

// failJob handles a job no surviving resource block on this node can
// hold: the installed migrator (if any) is offered the job first —
// acceptance makes the job Migrated, terminal here, continued
// elsewhere by the fleet layer — and otherwise the job is reported
// Failed. Both outcomes remove it from the queue but keep it in Jobs
// with its state and output intact, so no submission is ever silently
// dropped.
func (s *System) failJob(j *Job) {
	for i, id := range s.queue {
		if id == j.ID {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	if s.migrator != nil && s.migrator(*j) {
		j.State = Migrated
		j.FinishAt = s.Clock
		j.Output += fmt.Sprintf("job %d (%s) migrated off node at %.2f: no surviving resource block here\n",
			j.ID, j.Name, s.Clock)
		return
	}
	j.State = Failed
	j.FinishAt = s.Clock
	j.Output += fmt.Sprintf("job %d (%s) failed at %.2f: no surviving resource block\n",
		j.ID, j.Name, s.Clock)
}

// AdvanceUntil runs the event loop up to simulated time t: completions
// and fault events at or before t are processed (completions win
// ties, as in Advance), later ones stay pending, and the clock lands
// on t. Unlike Advance it delivers due faults even while no job runs,
// so an idle system still loses the block a scheduled CPU failure
// takes down.
func (s *System) AdvanceUntil(t float64) float64 {
	for {
		next := -1
		dueCompletion := false
		if len(s.active) > 0 {
			next = s.nextCompletion()
			dueCompletion = s.Jobs[next].FinishAt <= t
		}
		e, ok := s.nextFault()
		dueFault := ok && e.At <= t
		switch {
		case dueFault && (!dueCompletion || e.At < s.Jobs[next].FinishAt):
			s.deliverFault(e)
		case dueCompletion:
			s.complete(next)
		default:
			if t > s.Clock {
				s.Clock = t
			}
			return s.Clock
		}
	}
}

// Tally reports the recovery accounting after the event loop has gone
// idle: recovered jobs completed after at least one checkpoint-driven
// restart, failed jobs were reported unrecoverable, and lost jobs are
// in neither a terminal nor a schedulable state — the count the
// no-lost-jobs invariant pins to zero.
func (s *System) Tally() (recovered, failed, lost int) {
	for _, j := range s.Jobs {
		switch {
		case j.State == Done && j.Restarts > 0:
			recovered++
		case j.State == Failed:
			failed++
		case j.State == Migrated:
			// Accounted by the fleet layer that accepted it; the job
			// continues on another node and is neither failed nor lost
			// here.
		case j.State != Done && j.State != Queued && j.State != Running:
			lost++
		}
	}
	// Jobs still queued or running after the system idled are equally
	// lost: nothing will ever schedule them.
	if len(s.active) == 0 {
		for _, j := range s.Jobs {
			if j.State == Queued || j.State == Running {
				lost++
			}
		}
	}
	return recovered, failed, lost
}
