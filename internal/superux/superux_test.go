package superux

import (
	"strings"
	"testing"
)

func batchBlock(cpus int) ResourceBlock {
	return ResourceBlock{Name: "batch", MaxCPUs: cpus, MemGB: 8, Policy: FIFO}
}

func TestSingleJobRuns(t *testing.T) {
	s := NewSystem(batchBlock(32))
	id := s.Submit(Job{Name: "ccm2", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 100})
	if st, _ := s.Status(id); st != Running {
		t.Fatalf("job state = %v, want running (fits immediately)", st)
	}
	end := s.Advance()
	if end != 100 {
		t.Errorf("completion at %v, want 100", end)
	}
	if st, _ := s.Status(id); st != Done {
		t.Errorf("job state = %v, want done", st)
	}
}

func TestFIFOOrdering(t *testing.T) {
	s := NewSystem(batchBlock(4))
	a := s.Submit(Job{Name: "a", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 50})
	b := s.Submit(Job{Name: "b", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 30})
	c := s.Submit(Job{Name: "c", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 20})
	s.Advance()
	ja, jb, jc := s.Jobs[a], s.Jobs[b], s.Jobs[c]
	if !(ja.StartAt == 0 && jb.StartAt == 50 && jc.StartAt == 80) {
		t.Errorf("FIFO starts = %v, %v, %v; want 0, 50, 80", ja.StartAt, jb.StartAt, jc.StartAt)
	}
}

func TestFIFOHeadOfLineBlocks(t *testing.T) {
	// A big job at the head of a FIFO block must not be overtaken by a
	// small one behind it.
	s := NewSystem(batchBlock(4))
	s.Submit(Job{Name: "running", Block: "batch", CPUs: 3, MemGB: 1, Seconds: 100})
	big := s.Submit(Job{Name: "big", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 10})
	small := s.Submit(Job{Name: "small", Block: "batch", CPUs: 1, MemGB: 1, Seconds: 10})
	if st, _ := s.Status(small); st != Queued {
		t.Fatalf("small job state = %v; FIFO must not let it overtake", st)
	}
	s.Advance()
	if s.Jobs[small].StartAt < s.Jobs[big].StartAt {
		t.Error("small job overtook the blocked head job in a FIFO block")
	}
}

func TestInteractiveBackfills(t *testing.T) {
	s := NewSystem(ResourceBlock{Name: "inter", MaxCPUs: 4, MemGB: 8, Policy: Interactive})
	s.Submit(Job{Name: "running", Block: "inter", CPUs: 3, MemGB: 1, Seconds: 100})
	s.Submit(Job{Name: "big", Block: "inter", CPUs: 4, MemGB: 1, Seconds: 10})
	small := s.Submit(Job{Name: "small", Block: "inter", CPUs: 1, MemGB: 1, Seconds: 10})
	if st, _ := s.Status(small); st != Running {
		t.Errorf("interactive block should backfill the small job; state = %v", st)
	}
}

func TestResourceLimitsEnforced(t *testing.T) {
	s := NewSystem(batchBlock(8))
	for _, f := range []func(){
		func() { s.Submit(Job{Name: "toobig", Block: "batch", CPUs: 9, MemGB: 1, Seconds: 1}) },
		func() { s.Submit(Job{Name: "toomuchmem", Block: "batch", CPUs: 1, MemGB: 99, Seconds: 1}) },
		func() { s.Submit(Job{Name: "nowhere", Block: "nope", CPUs: 1, MemGB: 1, Seconds: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid submission accepted")
				}
			}()
			f()
		}()
	}
}

func TestTwoBlocksIndependent(t *testing.T) {
	s := NewSystem(
		ResourceBlock{Name: "vector", MaxCPUs: 24, MemGB: 6, Policy: FIFO},
		ResourceBlock{Name: "inter", MaxCPUs: 8, MemGB: 2, Policy: Interactive},
	)
	a := s.Submit(Job{Name: "batchjob", Block: "vector", CPUs: 24, MemGB: 4, Seconds: 100})
	b := s.Submit(Job{Name: "login", Block: "inter", CPUs: 2, MemGB: 1, Seconds: 5})
	if st, _ := s.Status(a); st != Running {
		t.Error("vector job should run")
	}
	if st, _ := s.Status(b); st != Running {
		t.Error("interactive job should run concurrently in its own block")
	}
	if end := s.Advance(); end != 100 {
		t.Errorf("makespan %v, want 100", end)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	s := NewSystem(batchBlock(4))
	s.Submit(Job{Name: "running", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 10})
	low := s.Submit(Job{Name: "low", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 10, Priority: 1})
	high := s.Submit(Job{Name: "high", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 10, Priority: 9})
	s.Advance()
	if s.Jobs[high].StartAt >= s.Jobs[low].StartAt {
		t.Errorf("high-priority job started at %v, after low at %v",
			s.Jobs[high].StartAt, s.Jobs[low].StartAt)
	}
}

func TestComplexRunLimit(t *testing.T) {
	// Two blocks under one complex with RunLimit 1: jobs serialize
	// across the blocks even though each block has free CPUs.
	s := NewSystem(
		ResourceBlock{Name: "a", MaxCPUs: 8, MemGB: 8, Policy: FIFO},
		ResourceBlock{Name: "b", MaxCPUs: 8, MemGB: 8, Policy: FIFO},
	)
	s.AddComplex(Complex{Name: "night", Blocks: []string{"a", "b"}, RunLimit: 1})
	ja := s.Submit(Job{Name: "ja", Block: "a", CPUs: 2, MemGB: 1, Seconds: 30})
	jb := s.Submit(Job{Name: "jb", Block: "b", CPUs: 2, MemGB: 1, Seconds: 20})
	if st, _ := s.Status(ja); st != Running {
		t.Fatal("first job should run")
	}
	if st, _ := s.Status(jb); st != Queued {
		t.Fatal("complex run limit not enforced")
	}
	s.Advance()
	if s.Jobs[jb].StartAt != 30 {
		t.Errorf("second job started at %v, want 30 (after the first)", s.Jobs[jb].StartAt)
	}
}

func TestComplexUnrelatedBlockUnaffected(t *testing.T) {
	s := NewSystem(
		ResourceBlock{Name: "a", MaxCPUs: 8, MemGB: 8, Policy: FIFO},
		ResourceBlock{Name: "c", MaxCPUs: 8, MemGB: 8, Policy: FIFO},
	)
	s.AddComplex(Complex{Name: "x", Blocks: []string{"a"}, RunLimit: 1})
	s.Submit(Job{Name: "ja", Block: "a", CPUs: 2, MemGB: 1, Seconds: 30})
	jc := s.Submit(Job{Name: "jc", Block: "c", CPUs: 2, MemGB: 1, Seconds: 20})
	if st, _ := s.Status(jc); st != Running {
		t.Error("job in a block outside the complex was blocked")
	}
}

func TestComplexValidation(t *testing.T) {
	s := NewSystem(batchBlock(4))
	for _, f := range []func(){
		func() { s.AddComplex(Complex{Name: "x", Blocks: []string{"batch"}, RunLimit: 0}) },
		func() { s.AddComplex(Complex{Name: "x", Blocks: []string{"nope"}, RunLimit: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid complex accepted")
				}
			}()
			f()
		}()
	}
}

func TestComplexSurvivesCheckpoint(t *testing.T) {
	s := NewSystem(
		ResourceBlock{Name: "a", MaxCPUs: 8, MemGB: 8, Policy: FIFO},
		ResourceBlock{Name: "b", MaxCPUs: 8, MemGB: 8, Policy: FIFO},
	)
	s.AddComplex(Complex{Name: "night", Blocks: []string{"a", "b"}, RunLimit: 1})
	s.Submit(Job{Name: "ja", Block: "a", CPUs: 2, MemGB: 1, Seconds: 30})
	jb := s.Submit(Job{Name: "jb", Block: "b", CPUs: 2, MemGB: 1, Seconds: 20})
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restart(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Complexes) != 1 {
		t.Fatal("complex lost in checkpoint")
	}
	r.Advance()
	if r.Jobs[jb].StartAt != 30 {
		t.Errorf("restored complex not enforced: start %v", r.Jobs[jb].StartAt)
	}
}

func TestQCat(t *testing.T) {
	s := NewSystem(batchBlock(4))
	id := s.Submit(Job{Name: "j", Block: "batch", CPUs: 1, MemGB: 1, Seconds: 10})
	out, err := s.QCat(id)
	if err != nil || !strings.Contains(out, "started") {
		t.Errorf("qcat on running job = %q, %v", out, err)
	}
	s.Advance()
	out, _ = s.QCat(id)
	if !strings.Contains(out, "finished") {
		t.Errorf("qcat after completion = %q", out)
	}
	if _, err := s.QCat(999); err == nil {
		t.Error("qcat on unknown job succeeded")
	}
}

func TestCheckpointRestartEquivalence(t *testing.T) {
	// A run that is checkpointed mid-stream and restarted must finish
	// with exactly the same schedule as an uninterrupted run.
	build := func() *System {
		s := NewSystem(batchBlock(8))
		s.Submit(Job{Name: "a", Block: "batch", CPUs: 8, MemGB: 1, Seconds: 40})
		s.Submit(Job{Name: "b", Block: "batch", CPUs: 8, MemGB: 1, Seconds: 25})
		s.Submit(Job{Name: "c", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 60})
		return s
	}
	ref := build()
	refEnd := ref.Advance()

	chk := build()
	data, err := chk.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restart(data)
	if err != nil {
		t.Fatal(err)
	}
	gotEnd := restored.Advance()
	if gotEnd != refEnd {
		t.Errorf("restarted makespan = %v, want %v", gotEnd, refEnd)
	}
	for id, rj := range ref.Jobs {
		gj := restored.Jobs[id]
		if gj == nil || gj.StartAt != rj.StartAt || gj.FinishAt != rj.FinishAt {
			t.Errorf("job %d schedule differs after restart: %+v vs %+v", id, gj, rj)
		}
	}
}

func TestCheckpointPreservesRunning(t *testing.T) {
	s := NewSystem(batchBlock(4))
	id := s.Submit(Job{Name: "r", Block: "batch", CPUs: 4, MemGB: 1, Seconds: 30})
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restart(data)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := r.Status(id); st != Running {
		t.Errorf("restored job state = %v, want running", st)
	}
	if r.Blocks["batch"].usedCPUs != 4 {
		t.Errorf("restored block usage = %d, want 4", r.Blocks["batch"].usedCPUs)
	}
	if end := r.Advance(); end != 30 {
		t.Errorf("restored completion = %v, want 30", end)
	}
}

func TestRestartRejectsGarbage(t *testing.T) {
	if _, err := Restart([]byte("not a checkpoint")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSystem(ResourceBlock{Name: "x", MaxCPUs: 0}) },
		func() { NewSystem(ResourceBlock{Name: "x", MinCPUs: 5, MaxCPUs: 4}) },
		func() { NewSystem(batchBlock(4), batchBlock(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid block set accepted")
				}
			}()
			f()
		}()
	}
}

func TestMakespanEmpty(t *testing.T) {
	s := NewSystem(batchBlock(4))
	if s.Makespan() != 0 {
		t.Error("empty system has nonzero makespan")
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFO.String() != "FIFO" || Interactive.String() != "interactive" {
		t.Error("policy names wrong")
	}
	if Queued.String() != "queued" || Running.String() != "running" || Done.String() != "done" {
		t.Error("state names wrong")
	}
}
