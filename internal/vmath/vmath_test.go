package vmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ulps measures |got-want| in units of want's last place.
func ulps(got, want float64) float64 {
	if got == want {
		return 0
	}
	if want == 0 || math.IsInf(want, 0) || math.IsNaN(want) {
		return math.Inf(1)
	}
	u := math.Abs(math.Nextafter(want, math.Inf(1)) - want)
	return math.Abs(got-want) / u
}

func maxULPOver(t *testing.T, n int, gen func(*rand.Rand) float64, f func(float64) float64, ref func(float64) float64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	worst := 0.0
	for i := 0; i < n; i++ {
		x := gen(rng)
		if e := ulps(f(x), ref(x)); e > worst {
			worst = e
		}
	}
	return worst
}

func TestExpAccuracy(t *testing.T) {
	worst := maxULPOver(t, 20000,
		func(r *rand.Rand) float64 { return -700 + 1400*r.Float64() },
		expOne, math.Exp)
	if worst > 2 {
		t.Errorf("Exp max error %.2f ulp, want <= 2", worst)
	}
}

func TestLogAccuracy(t *testing.T) {
	worst := maxULPOver(t, 20000,
		func(r *rand.Rand) float64 { return math.Exp(-300 + 600*r.Float64()) },
		logOne, math.Log)
	if worst > 2 {
		t.Errorf("Log max error %.2f ulp, want <= 2", worst)
	}
}

func TestSinAccuracy(t *testing.T) {
	// Near the zeros of sine the reduced argument carries the
	// reduction's absolute error, so (as vector libraries specify)
	// accuracy is absolute over the range plus relative away from the
	// zeros.
	rng := rand.New(rand.NewSource(8))
	worstAbs, worstRel := 0.0, 0.0
	for i := 0; i < 20000; i++ {
		x := -100 + 200*rng.Float64()
		got, want := sinOne(x), math.Sin(x)
		if a := math.Abs(got - want); a > worstAbs {
			worstAbs = a
		}
		if math.Abs(want) > 0.1 {
			if e := ulps(got, want); e > worstRel {
				worstRel = e
			}
		}
	}
	if worstAbs > 2e-15 {
		t.Errorf("Sin absolute error %.3g, want <= 2e-15", worstAbs)
	}
	if worstRel > 16 {
		t.Errorf("Sin relative error %.2f ulp away from zeros, want <= 16", worstRel)
	}
}

func TestPowAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	worst := 0.0
	for i := 0; i < 20000; i++ {
		x := math.Exp(-20 + 40*rng.Float64())
		y := -8 + 16*rng.Float64()
		want := math.Pow(x, y)
		if want == 0 || math.IsInf(want, 0) {
			continue
		}
		// exp(y log x) amplifies by |y log x|; allow the standard bound.
		scale := 1 + math.Abs(y*math.Log(x))
		if e := ulps(powOne(x, y), want) / scale; e > worst {
			worst = e
		}
	}
	if worst > 3 {
		t.Errorf("Pow scaled max error %.2f ulp, want <= 3", worst)
	}
}

func TestSpecialValues(t *testing.T) {
	if !math.IsInf(expOne(1000), 1) {
		t.Error("exp overflow should be +Inf")
	}
	if expOne(-1000) != 0 {
		t.Error("exp underflow should be 0")
	}
	if !math.IsNaN(expOne(math.NaN())) {
		t.Error("exp(NaN) != NaN")
	}
	if !math.IsInf(logOne(0), -1) {
		t.Error("log(0) != -Inf")
	}
	if !math.IsNaN(logOne(-1)) {
		t.Error("log(-1) != NaN")
	}
	if !math.IsInf(logOne(math.Inf(1)), 1) {
		t.Error("log(+Inf) != +Inf")
	}
	if !math.IsNaN(sinOne(math.Inf(1))) {
		t.Error("sin(Inf) != NaN")
	}
	if powOne(0, 2) != 0 || powOne(5, 0) != 1 || powOne(1, 99.5) != 1 {
		t.Error("pow special cases wrong")
	}
	if powOne(-2, 3) != -8 {
		t.Errorf("(-2)^3 = %v", powOne(-2, 3))
	}
	if powOne(-2, 2) != 4 {
		t.Errorf("(-2)^2 = %v", powOne(-2, 2))
	}
	if !math.IsNaN(powOne(-2, 0.5)) {
		t.Error("(-2)^0.5 should be NaN")
	}
	if !math.IsInf(powOne(0, -1), 1) {
		t.Error("0^-1 should be +Inf")
	}
}

func TestSliceAPIs(t *testing.T) {
	src := []float64{0, 1, 2, -1}
	dst := make([]float64, 4)
	Exp(dst, src)
	for i, x := range src {
		if ulps(dst[i], math.Exp(x)) > 2 {
			t.Errorf("Exp slice mismatch at %d", i)
		}
	}
	pos := []float64{0.5, 1, 2, 10}
	Log(dst, pos)
	for i, x := range pos {
		if ulps(dst[i], math.Log(x)) > 2 {
			t.Errorf("Log slice mismatch at %d", i)
		}
	}
	Sqrt(dst, pos)
	for i, x := range pos {
		if dst[i] != math.Sqrt(x) {
			t.Errorf("Sqrt slice mismatch at %d", i)
		}
	}
	Sin(dst, src)
	ys := []float64{1.5, 2, 0.5, 3}
	Pow(dst, pos, ys)
	for i := range pos {
		if ulps(dst[i], math.Pow(pos[i], ys[i])) > 16 {
			t.Errorf("Pow slice mismatch at %d", i)
		}
	}
}

func TestAliasingAllowed(t *testing.T) {
	x := []float64{0.5, 1.5, 2.5}
	want := make([]float64, 3)
	Exp(want, x)
	Exp(x, x) // in place
	for i := range x {
		if x[i] != want[i] {
			t.Error("in-place Exp differs")
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Exp(make([]float64, 2), make([]float64, 3)) },
		func() { Log(make([]float64, 2), make([]float64, 3)) },
		func() { Sqrt(make([]float64, 2), make([]float64, 3)) },
		func() { Sin(make([]float64, 2), make([]float64, 3)) },
		func() { Pow(make([]float64, 2), make([]float64, 2), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("length mismatch did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickExpLogInverse(t *testing.T) {
	f := func(u uint16) bool {
		x := 1e-6 + float64(u)
		// exp amplifies its argument's error by |log x| in relative
		// terms, so the round-trip bound scales with the magnitude.
		bound := 4 + 2*math.Abs(logOne(x))
		return ulps(expOne(logOne(x)), x) <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSinBounded(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
			return true
		}
		v := sinOne(x)
		return v >= -1.0000000001 && v <= 1.0000000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOddEvenSymmetry(t *testing.T) {
	for _, x := range []float64{0.1, 1.7, 42.42, 1e4} {
		if sinOne(-x) != -sinOne(x) {
			t.Errorf("sin not odd at %v", x)
		}
	}
}
