package vmath

import (
	"testing"

	"sx4bench/internal/elefunt"
)

// The ELEFUNT category exists to vet optimized vendor math libraries.
// This library must pass the same identity test that rejects the
// deliberately sloppy implementation in the elefunt package's tests.
func TestELEFUNTAcceptsThisLibrary(t *testing.T) {
	r := elefunt.TestExpImpl(func(x float64) float64 { return expOne(x) })
	if !r.Pass {
		t.Errorf("vmath EXP rejected by ELEFUNT: %s", r)
	}
	if r.MaxULP > r.Bound {
		t.Errorf("vmath EXP identity error %.2f ulp, want <= %.1f", r.MaxULP, r.Bound)
	}
}
