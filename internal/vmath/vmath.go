// Package vmath is a vectorized elementary-function library in the
// style of the SUPER-UX vector math intrinsics the SX-4's compiler
// generated for EXP/LOG/PWR/SIN/SQRT inside vector loops: slice-in,
// slice-out evaluation with branch-free inner loops (range reduction
// and reconstruction arithmetic runs on every element; special cases
// are patched afterwards), the structure a vector machine wants.
//
// Accuracy targets a couple of ULPs — good enough to pass the ELEFUNT
// identity tests that vetted the vendor's library (the elefunt package
// runs them against these implementations in its tests).
package vmath

import "math"

const (
	ln2Hi = 6.93147180369123816490e-01
	ln2Lo = 1.90821492927058770002e-10
	log2e = 1.44269504088896338700e+00
)

// Exp evaluates e^src[i] into dst. dst and src must have equal length
// (dst may alias src).
func Exp(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vmath: length mismatch")
	}
	for i, x := range src {
		dst[i] = expOne(x)
	}
}

func expOne(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case x > 709.8:
		return math.Inf(1)
	case x < -745.2:
		return 0
	}
	// Cody-Waite reduction: x = k*ln2 + r, |r| <= ln2/2.
	k := math.Floor(x*log2e + 0.5)
	r := x - k*ln2Hi
	r -= k * ln2Lo
	// exp(r) by a degree-12 Taylor polynomial (|r| <= 0.3466 keeps the
	// truncation below 1e-17 relative).
	p := 1.0 + r*(1.0+r*(1.0/2+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720+
		r*(1.0/5040+r*(1.0/40320+r*(1.0/362880+r*(1.0/3628800+
			r*(1.0/39916800+r/479001600)))))))))))
	return math.Ldexp(p, int(k))
}

// Log evaluates the natural logarithm elementwise.
func Log(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vmath: length mismatch")
	}
	for i, x := range src {
		dst[i] = logOne(x)
	}
}

func logOne(x float64) float64 {
	switch {
	case math.IsNaN(x) || x < 0:
		return math.NaN()
	case x == 0:
		return math.Inf(-1)
	case math.IsInf(x, 1):
		return x
	}
	// x = 2^k * m with m in [sqrt(2)/2, sqrt(2)).
	m, k := math.Frexp(x)
	if m < math.Sqrt2/2 {
		m *= 2
		k--
	}
	// log(m) = 2 atanh(s), s = (m-1)/(m+1), |s| <= 0.1716.
	s := (m - 1) / (m + 1)
	s2 := s * s
	// Odd series to s^21: truncation < 1e-16 relative.
	series := s * (1 + s2*(1.0/3+s2*(1.0/5+s2*(1.0/7+s2*(1.0/9+
		s2*(1.0/11+s2*(1.0/13+s2*(1.0/15+s2*(1.0/17+s2*(1.0/19+s2/21))))))))))
	return 2*series + float64(k)*ln2Hi + float64(k)*ln2Lo
}

// Sqrt evaluates the square root elementwise. The SX-4's divide/sqrt
// pipe computed this in hardware; the host's instruction is used
// directly.
func Sqrt(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vmath: length mismatch")
	}
	for i, x := range src {
		dst[i] = math.Sqrt(x)
	}
}

// Pow evaluates x[i]^y[i] elementwise via exp(y log x) with a
// compensated product, the standard vector-library route.
func Pow(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vmath: length mismatch")
	}
	for i := range dst {
		dst[i] = powOne(x[i], y[i])
	}
}

func powOne(x, y float64) float64 {
	switch {
	case y == 0:
		return 1
	case x == 1:
		return 1
	case x < 0:
		// Integer exponents only for negative bases.
		if y == math.Trunc(y) {
			r := powOne(-x, y)
			if int64(y)%2 != 0 {
				return -r
			}
			return r
		}
		return math.NaN()
	case x == 0:
		if y > 0 {
			return 0
		}
		return math.Inf(1)
	}
	// Small integer exponents by binary powering: exact where the
	// product chain is exact (the library fast path).
	if y == math.Trunc(y) && math.Abs(y) <= 64 {
		n := int64(y)
		inv := n < 0
		if inv {
			n = -n
		}
		r, b := 1.0, x
		for ; n > 0; n >>= 1 {
			if n&1 == 1 {
				r *= b
			}
			b *= b
		}
		if inv {
			return 1 / r
		}
		return r
	}
	return expOne(y * logOne(x))
}

// Sin evaluates the sine elementwise with Cody-Waite three-part pi/2
// reduction (accurate for |x| well below 2^30).
func Sin(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vmath: length mismatch")
	}
	for i, x := range src {
		dst[i] = sinOne(x)
	}
}

const (
	pio2Hi  = 1.57079632673412561417e+00
	pio2Lo  = 6.07710050650619224932e-11
	pio2Lo2 = 2.02226624879595063154e-21
)

func sinOne(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return math.NaN()
	}
	neg := false
	if x < 0 {
		x, neg = -x, true
	}
	// Reduce to r in [-pi/4, pi/4] with quadrant q.
	k := math.Floor(x/pio2Hi + 0.5)
	r := x - k*pio2Hi
	r -= k * pio2Lo
	r -= k * pio2Lo2
	q := int64(k) & 3

	r2 := r * r
	// sin(r), cos(r) by Taylor to r^15 / r^14 (|r| <= pi/4 keeps the
	// truncation below 1e-16).
	sinP := r * (1 - r2*(1.0/6-r2*(1.0/120-r2*(1.0/5040-r2*(1.0/362880-
		r2*(1.0/39916800-r2*(1.0/6227020800-r2/1307674368000)))))))
	cosP := 1 - r2*(1.0/2-r2*(1.0/24-r2*(1.0/720-r2*(1.0/40320-
		r2*(1.0/3628800-r2*(1.0/479001600-r2/87178291200))))))
	var v float64
	switch q {
	case 0:
		v = sinP
	case 1:
		v = cosP
	case 2:
		v = -sinP
	default:
		v = -cosP
	}
	if neg {
		return -v
	}
	return v
}

// Names maps the library's entry points for reporting.
var Names = []string{"EXP", "LOG", "PWR", "SIN", "SQRT"}
