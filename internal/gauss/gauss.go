// Package gauss provides Gauss-Legendre quadrature and normalized
// associated Legendre functions: the latitude-direction machinery of
// the spectral transform method used by CCM2.
//
// The quadrature nodes are the roots of the Legendre polynomial P_n,
// found by Newton iteration from asymptotic initial guesses; the
// associated Legendre functions use the standard stable three-term
// recurrence in degree for fixed order, fully normalized so that the
// Gaussian quadrature of P̄_n^m * P̄_n'^m over [-1,1] is exactly
// delta(n,n').
package gauss

import (
	"fmt"
	"math"
)

// Nodes returns the n Gauss-Legendre quadrature points (ascending, in
// (-1,1)) and weights for exact integration of polynomials of degree
// 2n-1 on [-1,1].
func Nodes(n int) (x, w []float64) {
	if n < 1 {
		panic(fmt.Sprintf("gauss: non-positive node count %d", n))
	}
	x = make([]float64, n)
	w = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Asymptotic initial guess for the i-th root (from the top).
		guess := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		root, dp := newtonLegendre(n, guess)
		x[n-1-i] = root
		x[i] = -root
		wi := 2 / ((1 - root*root) * dp * dp)
		w[n-1-i] = wi
		w[i] = wi
	}
	if n%2 == 1 {
		x[n/2] = 0
		_, dp := legendreAndDeriv(n, 0)
		w[n/2] = 2 / (dp * dp)
	}
	return x, w
}

// newtonLegendre refines a root of P_n by Newton iteration, returning
// the root and P_n'(root).
func newtonLegendre(n int, x0 float64) (root, deriv float64) {
	x := x0
	for iter := 0; iter < 100; iter++ {
		p, dp := legendreAndDeriv(n, x)
		dx := p / dp
		x -= dx
		if math.Abs(dx) < 1e-15 {
			break
		}
	}
	_, dp := legendreAndDeriv(n, x)
	return x, dp
}

// legendreAndDeriv evaluates P_n(x) and P_n'(x) by the standard
// recurrence.
func legendreAndDeriv(n int, x float64) (p, dp float64) {
	p0, p1 := 1.0, x
	if n == 0 {
		return 1, 0
	}
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
	}
	// P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
	dp = float64(n) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}

// Pbar computes the fully normalized associated Legendre functions
// P̄_n^m(x) for 0 <= m <= mmax and m <= n <= nmax, returned in a flat
// slice indexed by PbarIdx. The normalization is
//
//	∫_{-1}^{1} P̄_n^m(x) P̄_n'^m(x) dx = delta(n, n'),
//
// i.e. P̄_n^m = sqrt((2n+1)/2 * (n-m)!/(n+m)!) * P_n^m (no
// Condon-Shortley phase).
func Pbar(mmax, nmax int, x float64) []float64 {
	if mmax < 0 || nmax < mmax {
		panic(fmt.Sprintf("gauss: bad truncation mmax=%d nmax=%d", mmax, nmax))
	}
	out := make([]float64, PbarLen(mmax, nmax))
	sinTheta := math.Sqrt(1 - x*x)

	// Sectoral seed: P̄_0^0 = 1/sqrt(2);
	// P̄_m^m = sqrt((2m+1)/(2m)) * sinTheta * P̄_{m-1}^{m-1}.
	pmm := 1 / math.Sqrt2
	for m := 0; m <= mmax; m++ {
		if m > 0 {
			pmm *= math.Sqrt((2*float64(m)+1)/(2*float64(m))) * sinTheta
		}
		out[PbarIdx(mmax, nmax, m, m)] = pmm
		if m+1 <= nmax {
			// P̄_{m+1}^m = sqrt(2m+3) * x * P̄_m^m.
			out[PbarIdx(mmax, nmax, m, m+1)] = math.Sqrt(2*float64(m)+3) * x * pmm
		}
		for n := m + 2; n <= nmax; n++ {
			fn, fm := float64(n), float64(m)
			a := math.Sqrt((4*fn*fn - 1) / (fn*fn - fm*fm))
			b := math.Sqrt(((2*fn + 1) * (fn - 1 + fm) * (fn - 1 - fm)) /
				((2*fn - 3) * (fn*fn - fm*fm)))
			out[PbarIdx(mmax, nmax, m, n)] =
				a*x*out[PbarIdx(mmax, nmax, m, n-1)] - b*out[PbarIdx(mmax, nmax, m, n-2)]
		}
	}
	return out
}

// PbarLen returns the slice length used by Pbar for the truncation.
func PbarLen(mmax, nmax int) int {
	// For each m: n runs m..nmax -> (nmax-m+1) entries.
	total := 0
	for m := 0; m <= mmax; m++ {
		total += nmax - m + 1
	}
	return total
}

// PbarIdx returns the flat index of P̄_n^m in a Pbar slice.
func PbarIdx(mmax, nmax, m, n int) int {
	if m < 0 || m > mmax || n < m || n > nmax {
		panic(fmt.Sprintf("gauss: index (m=%d,n=%d) outside truncation (%d,%d)", m, n, mmax, nmax))
	}
	// Offset of block m: sum_{k<m} (nmax-k+1).
	off := m*(nmax+1) - m*(m-1)/2
	return off + (n - m)
}

// Epsilon returns ε_n^m = sqrt((n²-m²)/(4n²-1)), the coupling
// coefficient of the meridional-derivative recurrence
//
//	(1-x²) dP̄_n^m/dx = (n+1) ε_n^m P̄_{n-1}^m - n ε_{n+1}^m P̄_{n+1}^m.
func Epsilon(m, n int) float64 {
	if n <= 0 {
		return 0
	}
	fn, fm := float64(n), float64(m)
	num := fn*fn - fm*fm
	if num <= 0 {
		return 0
	}
	return math.Sqrt(num / (4*fn*fn - 1))
}
