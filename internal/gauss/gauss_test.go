package gauss

import (
	"math"
	"testing"
)

func TestNodesLowOrderExact(t *testing.T) {
	// n=2: x = ±1/sqrt(3), w = 1.
	x, w := Nodes(2)
	if math.Abs(x[0]+1/math.Sqrt(3)) > 1e-14 || math.Abs(x[1]-1/math.Sqrt(3)) > 1e-14 {
		t.Errorf("2-point nodes = %v", x)
	}
	if math.Abs(w[0]-1) > 1e-14 || math.Abs(w[1]-1) > 1e-14 {
		t.Errorf("2-point weights = %v", w)
	}
}

func TestWeightsSumToTwo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 32, 64, 128, 256} {
		_, w := Nodes(n)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Errorf("n=%d: weights sum to %v, want 2", n, sum)
		}
	}
}

func TestNodesSortedSymmetric(t *testing.T) {
	for _, n := range []int{4, 5, 64, 65} {
		x, w := Nodes(n)
		for i := 1; i < n; i++ {
			if x[i] <= x[i-1] {
				t.Fatalf("n=%d: nodes not ascending at %d", n, i)
			}
		}
		for i := 0; i < n/2; i++ {
			if math.Abs(x[i]+x[n-1-i]) > 1e-13 {
				t.Errorf("n=%d: nodes not symmetric at %d", n, i)
			}
			if math.Abs(w[i]-w[n-1-i]) > 1e-13 {
				t.Errorf("n=%d: weights not symmetric at %d", n, i)
			}
		}
	}
}

func TestQuadratureExactForPolynomials(t *testing.T) {
	// n-point Gauss-Legendre integrates x^k exactly for k <= 2n-1.
	x, w := Nodes(8)
	for k := 0; k <= 15; k++ {
		got := 0.0
		for i := range x {
			got += w[i] * math.Pow(x[i], float64(k))
		}
		want := 0.0
		if k%2 == 0 {
			want = 2 / float64(k+1)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("∫x^%d = %v, want %v", k, got, want)
		}
	}
}

func TestQuadratureSmoothFunction(t *testing.T) {
	x, w := Nodes(64)
	got := 0.0
	for i := range x {
		got += w[i] * math.Exp(x[i])
	}
	want := math.E - 1/math.E
	if math.Abs(got-want) > 1e-13 {
		t.Errorf("∫exp = %v, want %v", got, want)
	}
}

func TestPbarLowOrderValues(t *testing.T) {
	// Explicit normalized values:
	// P̄_0^0 = 1/sqrt(2), P̄_1^0 = sqrt(3/2) x,
	// P̄_1^1 = sqrt(3)/2 * sqrt(2) * sinθ / ... = sqrt(3)/2 * sinθ * sqrt(2)? compute:
	// P̄_1^1 = sqrt(3/4) * sinθ  (from ∫ (P̄_1^1)^2 = 1 with P_1^1 = sinθ).
	for _, x := range []float64{-0.7, 0, 0.3, 0.9} {
		sin := math.Sqrt(1 - x*x)
		p := Pbar(2, 2, x)
		if got, want := p[PbarIdx(2, 2, 0, 0)], 1/math.Sqrt2; math.Abs(got-want) > 1e-14 {
			t.Errorf("P00(%v) = %v, want %v", x, got, want)
		}
		if got, want := p[PbarIdx(2, 2, 0, 1)], math.Sqrt(1.5)*x; math.Abs(got-want) > 1e-14 {
			t.Errorf("P10(%v) = %v, want %v", x, got, want)
		}
		if got, want := p[PbarIdx(2, 2, 1, 1)], math.Sqrt(0.75)*sin; math.Abs(got-want) > 1e-14 {
			t.Errorf("P11(%v) = %v, want %v", x, got, want)
		}
		// P̄_2^0 = sqrt(5/2) * (3x²-1)/2.
		if got, want := p[PbarIdx(2, 2, 0, 2)], math.Sqrt(2.5)*(3*x*x-1)/2; math.Abs(got-want) > 1e-13 {
			t.Errorf("P20(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPbarOrthonormal(t *testing.T) {
	const mmax, nmax, nq = 10, 12, 32
	x, w := Nodes(nq)
	pb := make([][]float64, nq)
	for j := range x {
		pb[j] = Pbar(mmax, nmax, x[j])
	}
	for m := 0; m <= mmax; m++ {
		for n1 := m; n1 <= nmax; n1++ {
			for n2 := m; n2 <= nmax; n2++ {
				sum := 0.0
				for j := 0; j < nq; j++ {
					sum += w[j] * pb[j][PbarIdx(mmax, nmax, m, n1)] * pb[j][PbarIdx(mmax, nmax, m, n2)]
				}
				want := 0.0
				if n1 == n2 {
					want = 1
				}
				if math.Abs(sum-want) > 1e-11 {
					t.Fatalf("<P̄_%d^%d, P̄_%d^%d> = %v, want %v", n1, m, n2, m, sum, want)
				}
			}
		}
	}
}

func TestPbarIdxLayout(t *testing.T) {
	mmax, nmax := 5, 7
	want := 0
	for m := 0; m <= mmax; m++ {
		for n := m; n <= nmax; n++ {
			if got := PbarIdx(mmax, nmax, m, n); got != want {
				t.Fatalf("PbarIdx(%d,%d) = %d, want %d", m, n, got, want)
			}
			want++
		}
	}
	if PbarLen(mmax, nmax) != want {
		t.Errorf("PbarLen = %d, want %d", PbarLen(mmax, nmax), want)
	}
}

func TestPbarIdxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-truncation index did not panic")
		}
	}()
	PbarIdx(4, 4, 2, 1) // n < m
}

func TestEpsilonRecurrenceDerivative(t *testing.T) {
	// Verify (1-x²) dP̄_n^m/dx = (n+1)ε_n^m P̄_{n-1}^m - n ε_{n+1}^m P̄_{n+1}^m
	// against a central finite difference.
	const mmax, nmax = 6, 9
	x := 0.37
	h := 1e-6
	pPlus := Pbar(mmax, nmax+1, x+h)
	pMinus := Pbar(mmax, nmax+1, x-h)
	p := Pbar(mmax, nmax+1, x)
	for m := 0; m <= mmax; m++ {
		for n := m; n <= nmax; n++ {
			fd := (1 - x*x) * (pPlus[PbarIdx(mmax, nmax+1, m, n)] - pMinus[PbarIdx(mmax, nmax+1, m, n)]) / (2 * h)
			var below float64
			if n-1 >= m {
				below = p[PbarIdx(mmax, nmax+1, m, n-1)]
			}
			above := p[PbarIdx(mmax, nmax+1, m, n+1)]
			want := float64(n+1)*Epsilon(m, n)*below - float64(n)*Epsilon(m, n+1)*above
			if math.Abs(fd-want) > 1e-7*(1+math.Abs(want)) {
				t.Errorf("derivative recurrence fails at m=%d n=%d: fd=%v want=%v", m, n, fd, want)
			}
		}
	}
}

func TestPbarParity(t *testing.T) {
	// P̄_n^m(-x) = (-1)^{n+m} P̄_n^m(x) (no Condon-Shortley phase).
	const mmax, nmax = 8, 10
	for _, x := range []float64{0.13, 0.47, 0.82} {
		plus := Pbar(mmax, nmax, x)
		minus := Pbar(mmax, nmax, -x)
		for m := 0; m <= mmax; m++ {
			for n := m; n <= nmax; n++ {
				want := plus[PbarIdx(mmax, nmax, m, n)]
				if (n+m)%2 == 1 {
					want = -want
				}
				if got := minus[PbarIdx(mmax, nmax, m, n)]; math.Abs(got-want) > 1e-12 {
					t.Fatalf("parity fails at (m=%d,n=%d,x=%v): %v vs %v", m, n, x, got, want)
				}
			}
		}
	}
}

func TestPbarBounded(t *testing.T) {
	// Normalized associated Legendre functions stay O(sqrt(n)).
	p := Pbar(20, 24, 0.3)
	for i, v := range p {
		if math.Abs(v) > 10 || math.IsNaN(v) {
			t.Fatalf("P̄[%d] = %v, unexpectedly large", i, v)
		}
	}
}

func TestNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nodes(0) did not panic")
		}
	}()
	Nodes(0)
}
