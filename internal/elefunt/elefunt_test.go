package elefunt

import (
	"math"
	"strings"
	"testing"

	"sx4bench/internal/sx4"
)

func TestAllFunctionsAccurate(t *testing.T) {
	rs := RunAll()
	if len(rs) != 5 {
		t.Fatalf("RunAll returned %d results, want 5", len(rs))
	}
	if !AllPass(rs) {
		for _, r := range rs {
			if !r.Pass {
				t.Errorf("accuracy test failed: %s", r)
			}
		}
	}
	for i, name := range Functions {
		if rs[i].Function != name {
			t.Errorf("result %d is %s, want %s", i, rs[i].Function, name)
		}
		if rs[i].Samples < 1000 {
			t.Errorf("%s tested only %d samples", name, rs[i].Samples)
		}
		if rs[i].RMSULP > rs[i].MaxULP {
			t.Errorf("%s: RMS %v exceeds max %v", name, rs[i].RMSULP, rs[i].MaxULP)
		}
	}
}

func TestSqrtExactOnIEEE(t *testing.T) {
	// IEEE sqrt is correctly rounded; squaring an exactly-representable
	// product and rooting it must be exact.
	r := TestSqrt()
	if r.MaxULP != 0 {
		t.Errorf("SQRT max error %v ulp, want 0 on IEEE hosts", r.MaxULP)
	}
}

func TestULPError(t *testing.T) {
	if e := ulpError(1.0, 1.0); e != 0 {
		t.Errorf("ulpError(equal) = %v", e)
	}
	next := 1.0 + 2.220446049250313e-16
	if e := ulpError(next, 1.0); e < 0.5 || e > 2 {
		t.Errorf("one-ulp error measured as %v", e)
	}
}

func TestTruncateBits(t *testing.T) {
	x := truncateBits(1.23456789, 26)
	// The square of a 26-bit significand is exact in float64.
	if x <= 0 || x > 1.23456789 {
		t.Errorf("truncateBits moved value wrongly: %v", x)
	}
	y := x * x
	if y/x != x {
		t.Errorf("square of truncated value is not exact")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Function: "EXP", MaxULP: 1.5, Pass: true}
	if !strings.Contains(r.String(), "PASS") {
		t.Error("String missing PASS")
	}
	r.Pass = false
	if !strings.Contains(r.String(), "FAIL") {
		t.Error("String missing FAIL")
	}
}

func TestPerfTraceRates(t *testing.T) {
	// Table 3: single-processor 64-bit intrinsic rates in millions of
	// calls per second. Vectorized intrinsics on the SX-4/1 should run
	// at tens to a few hundred Mcalls/s, with SQRT fastest and PWR
	// slowest.
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	n := 1 << 20
	rate := map[string]float64{}
	for _, fn := range Functions {
		r := m.Run(PerfTrace(fn, n), sx4.RunOpts{Procs: 1})
		rate[fn] = float64(PerfCalls(n)) / r.Seconds / 1e6
	}
	if !(rate["SQRT"] > rate["EXP"]) {
		t.Errorf("SQRT (%.0f) should outrun EXP (%.0f)", rate["SQRT"], rate["EXP"])
	}
	if !(rate["EXP"] > rate["PWR"]) {
		t.Errorf("EXP (%.0f) should outrun PWR (%.0f)", rate["EXP"], rate["PWR"])
	}
	for fn, v := range rate {
		if v < 10 || v > 400 {
			t.Errorf("%s rate = %.0f Mcalls/s, want within [10, 400]", fn, v)
		}
	}
}

// sloppyExp is a deliberately broken "optimized" exponential: a
// truncated Taylor series with crude power-of-two range reduction, the
// kind of shortcut a fast vector library might take.
func sloppyExp(x float64) float64 {
	n := 0
	for x > 0.5 {
		x /= 2
		n++
	}
	for x < -0.5 {
		x /= 2
		n++
	}
	// 4-term Taylor polynomial.
	p := 1 + x*(1+x*(0.5+x*(1.0/6)))
	for ; n > 0; n-- {
		p *= p
	}
	return p
}

func TestDetectsSloppyLibrary(t *testing.T) {
	// The accuracy category must reject a fast-but-wrong vendor EXP
	// while accepting the host's correct one.
	good := TestExpImpl(math.Exp)
	if !good.Pass {
		t.Fatalf("host EXP rejected: %v", good)
	}
	bad := TestExpImpl(sloppyExp)
	if bad.Pass {
		t.Errorf("sloppy EXP passed the identity test: max %.1f ulp <= bound %.1f", bad.MaxULP, bad.Bound)
	}
	if bad.MaxULP < 100 {
		t.Errorf("sloppy EXP error only %.1f ulp; the test should expose it clearly", bad.MaxULP)
	}
}

func TestIntrinsicOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown function did not panic")
		}
	}()
	intrinsicOf("TAN")
}
