// Package elefunt implements the ELEFUNT benchmark: W. J. Cody's
// elementary-function accuracy tests for EXP, LOG, PWR (power), SIN,
// and SQRT, extended (as NCAR's version was) with performance
// measurement of the same intrinsics in millions of calls per second.
//
// The accuracy tests evaluate identities that are exact in real
// arithmetic using arguments chosen so the identity's right-hand side
// can be computed without additional rounding, and report the largest
// observed error in units in the last place (ULPs). A correct, well
// implemented libm stays within a few ULPs.
package elefunt

import (
	"fmt"
	"math"
	"math/rand"

	"sx4bench/internal/sx4/prog"
)

// Function names the tested intrinsics, in the paper's Table 3 order.
var Functions = []string{"EXP", "LOG", "PWR", "SIN", "SQRT"}

// Result reports one function's accuracy test.
type Result struct {
	Function string
	// MaxULP is the largest observed identity error in ULPs.
	MaxULP float64
	// RMSULP is the root-mean-square error in ULPs.
	RMSULP float64
	// Samples is the number of test arguments.
	Samples int
	// Bound is the acceptance threshold in ULPs for this identity.
	Bound float64
	// Pass is true when MaxULP is within Bound.
	Pass bool
}

// Acceptance bounds in ULPs. The measured quantity is the discrepancy
// of an identity whose right-hand side is itself computed in floating
// point, so the bound covers the identity's own rounding and
// conditioning, not just the library's error. A correct library stays
// comfortably inside; a broken one (e.g. a fast vectorized EXP with a
// sloppy range reduction) blows through it.
var passBounds = map[string]float64{
	"EXP":  8,
	"LOG":  4,
	"PWR":  4,
	"SIN":  16,
	"SQRT": 0.5,
}

func (r Result) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-4s max %.3f ulp rms %.4f ulp over %d samples: %s",
		r.Function, r.MaxULP, r.RMSULP, r.Samples, status)
}

// ulpError returns |got-want| measured in ULPs of want.
func ulpError(got, want float64) float64 {
	if got == want {
		return 0
	}
	if math.IsInf(want, 0) || math.IsNaN(want) || want == 0 {
		return math.Inf(1)
	}
	ulp := math.Abs(math.Nextafter(want, math.Inf(1)) - want)
	return math.Abs(got-want) / ulp
}

func summarize(name string, errs []float64) Result {
	r := Result{Function: name, Samples: len(errs)}
	var sumSq float64
	for _, e := range errs {
		if e > r.MaxULP {
			r.MaxULP = e
		}
		sumSq += e * e
	}
	if len(errs) > 0 {
		r.RMSULP = math.Sqrt(sumSq / float64(len(errs)))
	}
	r.Bound = passBounds[name]
	r.Pass = r.MaxULP <= r.Bound
	return r
}

const defaultSamples = 2000

// TestExp checks exp(x - 1/16) == exp(x) * exp(-1/16) over random
// arguments; 1/16 is exactly representable so x - 1/16 is computed
// exactly for the chosen range.
func TestExp() Result { return TestExpImpl(math.Exp) }

// TestExpImpl runs the EXP identity test against an arbitrary
// implementation — the scenario ELEFUNT exists for: vetting a vendor's
// optimized intrinsic library, where a fast vectorized EXP with sloppy
// range reduction would be caught here rather than deep inside a
// climate run.
func TestExpImpl(exp func(float64) float64) Result {
	rng := rand.New(rand.NewSource(1))
	expV := exp(-1.0 / 16.0)
	errs := make([]float64, 0, defaultSamples)
	for i := 0; i < defaultSamples; i++ {
		x := -10 + 20*rng.Float64()
		got := exp(x - 1.0/16.0)
		want := exp(x) * expV
		errs = append(errs, ulpError(got, want))
	}
	return summarize("EXP", errs)
}

// TestLog checks log(x*x) == 2*log(x) for x where x*x is exact
// (x built from a 26-bit significand, so the square has no rounding).
func TestLog() Result {
	rng := rand.New(rand.NewSource(2))
	errs := make([]float64, 0, defaultSamples)
	for i := 0; i < defaultSamples; i++ {
		x := 1 + 15*rng.Float64()
		// Truncate to 26 significand bits so x*x is exact.
		x = truncateBits(x, 26)
		got := math.Log(x * x)
		want := 2 * math.Log(x)
		errs = append(errs, ulpError(got, want))
	}
	return summarize("LOG", errs)
}

// TestPwr checks (x*x)^1.5 == x^3 with x truncated so x*x is exact.
func TestPwr() Result {
	rng := rand.New(rand.NewSource(3))
	errs := make([]float64, 0, defaultSamples)
	for i := 0; i < defaultSamples; i++ {
		x := 1 + 7*rng.Float64()
		x = truncateBits(x, 17)
		got := math.Pow(x*x, 1.5)
		want := math.Pow(x, 3)
		errs = append(errs, ulpError(got, want))
	}
	return summarize("PWR", errs)
}

// TestSin checks sin(3x) == 3*sin(x) - 4*sin(x)^3 over arguments where
// both sides stay well conditioned (|sin(3x)| not tiny). The identity
// is evaluated in extended care: the right side is computed with
// compensated products.
func TestSin() Result {
	rng := rand.New(rand.NewSource(4))
	errs := make([]float64, 0, defaultSamples)
	for len(errs) < defaultSamples {
		x := rng.Float64() * math.Pi / 3
		s3 := math.Sin(3 * x)
		if math.Abs(s3) < 0.5 {
			continue // ill-conditioned region: identity comparison unfair
		}
		s := math.Sin(x)
		want := s * (3 - 4*s*s)
		errs = append(errs, ulpError(s3, want))
	}
	return summarize("SIN", errs)
}

// TestSqrt checks sqrt(x*x) == |x| with x truncated so x*x is exact;
// IEEE sqrt is correctly rounded so this must hold to 0 ULPs... but we
// allow the general bound for non-IEEE hosts.
func TestSqrt() Result {
	rng := rand.New(rand.NewSource(5))
	errs := make([]float64, 0, defaultSamples)
	for i := 0; i < defaultSamples; i++ {
		x := 1 + 100*rng.Float64()
		x = truncateBits(x, 26)
		got := math.Sqrt(x * x)
		errs = append(errs, ulpError(got, x))
	}
	return summarize("SQRT", errs)
}

// truncateBits clears all but the top n significand bits of x.
func truncateBits(x float64, n int) float64 {
	bits := math.Float64bits(x)
	mask := ^uint64(0) << (52 - uint(n))
	return math.Float64frombits(bits & mask)
}

// RunAll executes the five accuracy tests.
func RunAll() []Result {
	return []Result{TestExp(), TestLog(), TestPwr(), TestSin(), TestSqrt()}
}

// AllPass reports whether every accuracy test passed.
func AllPass(rs []Result) bool {
	for _, r := range rs {
		if !r.Pass {
			return false
		}
	}
	return true
}

// intrinsicOf maps a Table 3 function name to the trace intrinsic.
func intrinsicOf(name string) prog.Intrinsic {
	switch name {
	case "EXP":
		return prog.Exp
	case "LOG":
		return prog.Log
	case "PWR":
		return prog.Pow
	case "SIN":
		return prog.Sin
	case "SQRT":
		return prog.Sqrt
	}
	panic(fmt.Sprintf("elefunt: unknown function %q", name))
}

// PerfTrace returns the performance-measurement trace for one
// intrinsic: a vectorized loop applying the function to n elements
// (load, evaluate, store), as the NCAR extension times it.
func PerfTrace(name string, n int) prog.Program {
	return prog.Simple("ELEFUNT-"+name, 1,
		prog.Op{Class: prog.VLoad, VL: n, Stride: 1},
		prog.Op{Class: prog.VIntrinsic, VL: n, Intr: intrinsicOf(name)},
		prog.Op{Class: prog.VStore, VL: n, Stride: 1},
	)
}

// PerfCalls returns the number of function calls in PerfTrace(name, n).
func PerfCalls(n int) int64 { return int64(n) }
