package ncar

import (
	"strconv"
	"strings"
	"testing"

	"sx4bench/internal/sx4"
)

func bench() *sx4.Machine { return sx4.New(sx4.Benchmarked()) }

func TestSuiteComposition(t *testing.T) {
	s := Suite()
	if len(s) != 15 {
		t.Fatalf("suite has %d members; the paper lists 13 kernels + 3 applications with one vendor-choice ocean model (15 named codes)", len(s))
	}
	counts := map[Category]int{}
	for _, b := range s {
		counts[b.Category]++
	}
	want := map[Category]int{
		Correctness: 2, MemoryBandwidth: 3, CodingStyle: 2, RawPerformance: 1,
		InputOutput: 3, ProductionMix: 1, Applications: 3,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("category %v has %d members, want %d", c, counts[c], n)
		}
	}
	// KTRIES per the paper: 5 for VFFT, 20 for the other swept kernels.
	vfft, _ := ByName("VFFT")
	if vfft.KTries != 5 {
		t.Errorf("VFFT KTRIES = %d, want 5", vfft.KTries)
	}
	for _, name := range []string{"COPY", "IA", "XPOSE", "RFFT", "RADABS"} {
		b, err := ByName(name)
		if err != nil || b.KTries != 20 {
			t.Errorf("%s KTRIES = %d, want 20", name, b.KTries)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown benchmark found")
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 2 || len(tab.Rows[0]) != 5 {
		t.Fatalf("table1 shape wrong: %+v", tab.Rows)
	}
	// HINT ranks the workstations above the vector machines; RADABS
	// inverts that (the paper's criticism).
	hintSparc := parseCell(t, tab.Rows[0][1])
	hintYMP := parseCell(t, tab.Rows[0][4])
	radSparc := parseCell(t, tab.Rows[1][1])
	radYMP := parseCell(t, tab.Rows[1][4])
	if !(hintSparc > hintYMP) {
		t.Errorf("HINT: Sparc (%v) should beat YMP (%v)", hintSparc, hintYMP)
	}
	if !(radYMP > 5*radSparc) {
		t.Errorf("RADABS: YMP (%v) should crush Sparc (%v)", radYMP, radSparc)
	}
}

func TestTable2Contents(t *testing.T) {
	tab := Table2()
	joined := ""
	for _, r := range tab.Rows {
		joined += strings.Join(r, " ") + "\n"
	}
	for _, want := range []string{"9.2 ns", "2 GFLOPS", "16 GB/sec/proc", "282 GB", "8 GB", "4 GB", "air cooled", "122.8 KVA"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table2 missing %q:\n%s", want, joined)
		}
	}
}

func TestTable3Rates(t *testing.T) {
	tab := Table3(bench())
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 6 {
		t.Fatalf("table3 shape: %+v", tab.Rows)
	}
	for i := 1; i < 6; i++ {
		v := parseCell(t, tab.Rows[0][i])
		if v < 10 || v > 400 {
			t.Errorf("intrinsic rate %v out of plausible range", v)
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tab := Table4()
	if len(tab.Rows) != 5 {
		t.Fatalf("table4 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "T42L18" || tab.Rows[0][1] != "64 x 128" ||
		tab.Rows[0][2] != "2.8 degrees" || tab.Rows[0][3] != "20.0 min." {
		t.Errorf("table4 first row = %v", tab.Rows[0])
	}
	if tab.Rows[4][0] != "T170L18" || tab.Rows[4][1] != "256 x 512" {
		t.Errorf("table4 last row = %v", tab.Rows[4])
	}
}

func TestTable5Bands(t *testing.T) {
	tab := Table5(bench())
	t42 := parseCell(t, tab.Rows[0][1])
	t63 := parseCell(t, tab.Rows[1][1])
	if t42 < 0.8*1327.53 || t42 > 1.2*1327.53 {
		t.Errorf("T42 year = %v, paper 1327.53", t42)
	}
	if t63 < 0.8*3452.48 || t63 > 1.2*3452.48 {
		t.Errorf("T63 year = %v, paper 3452.48", t63)
	}
}

func TestTable6Degradation(t *testing.T) {
	tab := Table6(bench())
	degr := parseCell(t, tab.Rows[2][1])
	if degr < 1 || degr > 3 {
		t.Errorf("degradation %v%%, paper 1.89%%", degr)
	}
}

func TestTable7MatchesBands(t *testing.T) {
	tab := Table7(bench())
	if len(tab.Rows) != 5 {
		t.Fatalf("table7 rows = %d", len(tab.Rows))
	}
	s32 := parseCell(t, tab.Rows[4][2])
	if s32 < 7.25 || s32 > 10.87 {
		t.Errorf("MOM speedup@32 = %v, paper 9.06", s32)
	}
}

func TestFig5Shape(t *testing.T) {
	f := Fig5(bench(), 3)
	if len(f.Series) != 3 {
		t.Fatalf("fig5 series = %d", len(f.Series))
	}
	copyMax := f.Series[0].MaxY()
	iaMax := f.Series[1].MaxY()
	xposeMax := f.Series[2].MaxY()
	if !(copyMax > 2*iaMax && copyMax > 2*xposeMax) {
		t.Errorf("COPY (%v) should far exceed IA (%v) and XPOSE (%v)", copyMax, iaMax, xposeMax)
	}
	// Bandwidth rises with vector length (roughly monotone curves).
	for _, s := range f.Series {
		if s.Points[0].Y >= s.Points[len(s.Points)-1].Y {
			t.Errorf("series %s does not rise with N", s.Label)
		}
	}
}

func TestFig6Fig7OrderOfMagnitude(t *testing.T) {
	m := bench()
	f6 := Fig6(m)
	f7 := Fig7(m)
	if len(f6.Series) != 3 || len(f7.Series) != 4 {
		t.Fatalf("series counts: fig6=%d fig7=%d", len(f6.Series), len(f7.Series))
	}
	// Peak of VFFT (M=500) about an order of magnitude over RFFT.
	r := f6.Series[0].MaxY()
	v := f7.Series[0].MaxY()
	if ratio := v / r; ratio < 5 || ratio > 30 {
		t.Errorf("VFFT/RFFT peak ratio = %.1f (%.0f vs %.0f MFLOPS), want ~10x", ratio, v, r)
	}
}

func TestFig8Anchor(t *testing.T) {
	f := Fig8(bench())
	if len(f.Series) != 3 {
		t.Fatalf("fig8 series = %d", len(f.Series))
	}
	t170 := f.Series[2]
	if y, ok := t170.YAt(32); !ok || y < 20 || y > 28 {
		t.Errorf("T170@32 = %v GFLOPS, paper 24", y)
	}
}

func TestRADABSAndPOPAnchors(t *testing.T) {
	m := bench()
	if v := RADABSMFlops(m); v < 780 || v > 950 {
		t.Errorf("RADABS = %.1f MFLOPS, paper 865.9", v)
	}
	if v := POPMFlops(m); v < 430 || v > 650 {
		t.Errorf("POP = %.0f MFLOPS, paper 537", v)
	}
}

func TestCorrectnessCategory(t *testing.T) {
	r := RunCorrectness()
	if !r.Pass {
		t.Errorf("correctness category failed: paranoia pass=%v", r.Paranoia.Pass())
	}
	if len(r.Elefunt) != 5 {
		t.Errorf("elefunt results = %d", len(r.Elefunt))
	}
}

func TestIOCategory(t *testing.T) {
	r := RunIOCategory()
	if len(r.History) != 5 || len(r.HIPPI) == 0 || len(r.Network) == 0 {
		t.Errorf("I/O category incomplete: %d/%d/%d", len(r.History), len(r.HIPPI), len(r.Network))
	}
}

func TestProdloadAnchor(t *testing.T) {
	r := Prodload(bench())
	paper := 93*60 + 28.0
	if r.TotalSeconds < 0.8*paper || r.TotalSeconds > 1.2*paper {
		t.Errorf("PRODLOAD = %.1f min, paper 93.47 min", r.TotalMinutes())
	}
}

func TestCategoryString(t *testing.T) {
	if !strings.Contains(MemoryBandwidth.String(), "memory") {
		t.Error("category name wrong")
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("unknown category should include number")
	}
}
