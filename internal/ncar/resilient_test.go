package ncar

import (
	"errors"
	"strings"
	"testing"

	"sx4bench/internal/fault"
	"sx4bench/internal/machine"
	"sx4bench/internal/target"
)

func TestRunResilientFaultFree(t *testing.T) {
	m := machine.SX4Single()
	var buf strings.Builder
	res, err := RunResilient(&buf, m, "RADABS", 1, ResilientOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || !res.Degraded.IsZero() {
		t.Errorf("fault-free run: attempts=%d degraded=%v", res.Attempts, res.Degraded)
	}
	if res.FinishedAt <= 0 {
		t.Errorf("finished at %v, want positive simulated time", res.FinishedAt)
	}
	// The output is the plain RADABS output: resilient and plain
	// runners agree when nothing fails.
	var plain strings.Builder
	if err := RunBenchmark(&plain, m, "RADABS", 1); err != nil {
		t.Fatal(err)
	}
	if buf.String() != plain.String() {
		t.Error("fault-free resilient output differs from plain RunBenchmark")
	}
}

func TestRunResilientUnknownBenchmark(t *testing.T) {
	if _, err := RunResilient(nil, machine.SX4Single(), "NOSUCH", 1, ResilientOpts{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunResilientRetriesThenSucceeds(t *testing.T) {
	m := machine.SX4Benchmarked()
	// One kill early in the first attempt; the retry runs clean.
	plan := &fault.Plan{Events: []fault.Event{{At: 0.001, Kind: fault.JobKill}}}
	res, err := RunResilient(nil, m, "RADABS", 1, ResilientOpts{Injector: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	// The aborted attempt and its backoff are on the clock.
	if res.FinishedAt <= BackoffBaseSeconds {
		t.Errorf("finished at %v, want > backoff %v", res.FinishedAt, BackoffBaseSeconds)
	}
}

func TestRunResilientRetriesExhausted(t *testing.T) {
	m := machine.SX4Benchmarked()
	// Kills densely packed far beyond any attempt horizon.
	var evs []fault.Event
	for i := 0; i < 4000; i++ {
		evs = append(evs, fault.Event{At: float64(i) * 0.5, Kind: fault.JobKill})
	}
	plan := &fault.Plan{Events: evs}
	_, err := RunResilient(nil, m, "RADABS", 1, ResilientOpts{Injector: plan})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("err = %v, want ErrRetriesExhausted", err)
	}
	if err != nil && !strings.Contains(err.Error(), "RADABS") {
		t.Errorf("error %q does not name the benchmark", err)
	}
}

func TestRunResilientDeadlineExceeded(t *testing.T) {
	m := machine.SX4Benchmarked()
	// No faults, but an absurdly tight simulated deadline.
	_, err := RunResilient(nil, m, "RADABS", 1, ResilientOpts{DeadlineSeconds: 1e-9})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestRunResilientDeadlineDuringBackoff(t *testing.T) {
	m := machine.SX4Benchmarked()
	plan := &fault.Plan{Events: []fault.Event{{At: 0.001, Kind: fault.JobKill}}}
	// The kill aborts attempt 1; the backoff alone blows the deadline.
	_, err := RunResilient(nil, m, "RADABS", 1,
		ResilientOpts{Injector: plan, DeadlineSeconds: 0.5})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestRunResilientMachineDown(t *testing.T) {
	m := machine.SX4Single()
	// The uniprocessor loses its only CPU before the run starts.
	plan := &fault.Plan{Events: []fault.Event{{At: 0, Kind: fault.CPUFail}}}
	// DegradationAt(0) already includes the failure, so attempt 1 runs
	// on a dead machine.
	_, err := RunResilient(nil, m, "RADABS", 1, ResilientOpts{Injector: plan})
	if !errors.Is(err, target.ErrMachineDown) {
		t.Errorf("err = %v, want target.ErrMachineDown", err)
	}
}

func TestRunResilientDegradedAttempt(t *testing.T) {
	m := machine.SX4Benchmarked()
	healthyDur := AttemptSeconds(m, "RADABS", 1)
	// Bank degradations before the attempt window: no abort, but the
	// attempt runs on the degraded machine and takes longer. (Two
	// halvings: one still leaves the SX-4 port wide enough for RADABS.)
	plan := &fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.BankDegrade},
		{At: 0, Kind: fault.BankDegrade},
	}}
	res, err := RunResilient(nil, m, "RADABS", 1, ResilientOpts{Injector: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (bank events do not abort)", res.Attempts)
	}
	if res.Degraded.IsZero() {
		t.Error("attempt did not record the degradation in force")
	}
	if res.FinishedAt <= healthyDur {
		t.Errorf("degraded attempt %vs not slower than healthy %vs", res.FinishedAt, healthyDur)
	}
}

func TestAttemptSecondsCoversSuite(t *testing.T) {
	m := machine.SX4Benchmarked()
	for _, b := range Suite() {
		if dur := AttemptSeconds(m, b.Name, 1); dur <= 0 {
			t.Errorf("%s: attempt duration %v, want positive", b.Name, dur)
		}
	}
}