package ncar

import (
	"errors"
	"fmt"
	"io"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/fault"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/kernels"
	"sx4bench/internal/mom"
	"sx4bench/internal/pop"
	"sx4bench/internal/prodload"
	"sx4bench/internal/target"
)

// Named failure modes of a resilient run. Callers test with errors.Is;
// every returned error wraps exactly one of these (or
// target.ErrMachineDown when the schedule kills the machine's last
// CPU) — a benchmark that cannot complete is reported, never silently
// skipped.
var (
	// ErrDeadlineExceeded reports that the benchmark's simulated
	// completion time passed the configured deadline.
	ErrDeadlineExceeded = errors.New("simulated deadline exceeded")
	// ErrRetriesExhausted reports that faults aborted every allowed
	// attempt.
	ErrRetriesExhausted = errors.New("retries exhausted")
)

// ResilientOpts configures a fault-tolerant benchmark run. The zero
// value runs fault-free with default retry policy and no deadline.
type ResilientOpts struct {
	// Injector is the fault schedule (nil = fault-free). Time zero of
	// the schedule is the benchmark's start.
	Injector fault.Injector
	// DeadlineSeconds bounds the simulated completion time; 0 means no
	// deadline.
	DeadlineSeconds float64
	// MaxAttempts caps the attempt count; 0 means DefaultMaxAttempts.
	MaxAttempts int
}

// Retry policy constants: exponential backoff doubling from
// BackoffBaseSeconds, capped at BackoffCapSeconds, all in simulated
// time.
const (
	DefaultMaxAttempts = 4
	BackoffBaseSeconds = 1.0
	BackoffCapSeconds  = 60.0
)

// ResilientResult describes how a resilient run completed.
type ResilientResult struct {
	Benchmark string
	Machine   string
	Attempts  int
	// FinishedAt is the simulated completion time, including aborted
	// attempts and backoff.
	FinishedAt float64
	// Degraded is the machine degradation in force during the
	// successful attempt.
	Degraded fault.Degradation
}

// RunResilient executes one suite member under a fault schedule: each
// attempt runs on the machine as degraded by the faults delivered so
// far, a CPU failure or job kill landing inside an attempt aborts it
// (checkpoint semantics: the retry pays a capped exponential backoff
// and starts over), and the benchmark output is produced by the
// attempt that completes. Fault times are interpreted relative to the
// benchmark's own start (t = 0), so per-benchmark timelines are
// independent and a multi-benchmark sweep stays deterministic.
func RunResilient(w io.Writer, m target.Target, name string, cpus int, opts ResilientOpts) (ResilientResult, error) {
	dm, res, err := runAttempts(m, name, cpus, opts)
	if err != nil {
		return res, err
	}
	if w != nil {
		if err := RunBenchmark(w, dm, name, cpus); err != nil {
			return res, err
		}
	}
	return res, nil
}

// runAttempts drives the retry loop shared by RunResilient and
// MeasureResilient: it returns the degraded machine of the attempt
// that survived the schedule alongside the attempt accounting, leaving
// what to do with that machine (render text, measure structurally) to
// the caller.
func runAttempts(m target.Target, name string, cpus int, opts ResilientOpts) (target.Target, ResilientResult, error) {
	res := ResilientResult{Benchmark: name, Machine: m.Name()}
	if _, err := ByName(name); err != nil {
		return nil, res, err
	}
	if cpus <= 0 {
		cpus = m.Spec().CPUs
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	inj := opts.Injector

	t := 0.0
	backoff := BackoffBaseSeconds
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		res.Attempts = attempt
		var d fault.Degradation
		if inj != nil {
			d = inj.DegradationAt(t)
		}
		dm, err := target.Degrade(m, d)
		if err != nil {
			return nil, res, fmt.Errorf("ncar: %s on %s at t=%s: %w",
				name, m.Name(), secs(t), err)
		}
		dur := AttemptSeconds(dm, name, cpus)
		if abortAt, aborted := firstAbort(inj, t, t+dur); aborted {
			// The fault checkpoints the attempt; retry after backoff.
			t = abortAt + backoff
			backoff *= 2
			if backoff > BackoffCapSeconds {
				backoff = BackoffCapSeconds
			}
			if opts.DeadlineSeconds > 0 && t > opts.DeadlineSeconds {
				return nil, res, fmt.Errorf("ncar: %s on %s: aborted at t=%s, next attempt past deadline %s: %w",
					name, m.Name(), secs(abortAt), secs(opts.DeadlineSeconds), ErrDeadlineExceeded)
			}
			continue
		}
		t += dur
		if opts.DeadlineSeconds > 0 && t > opts.DeadlineSeconds {
			return nil, res, fmt.Errorf("ncar: %s on %s: would finish at t=%s, deadline %s: %w",
				name, m.Name(), secs(t), secs(opts.DeadlineSeconds), ErrDeadlineExceeded)
		}
		res.FinishedAt = t
		res.Degraded = d
		return dm, res, nil
	}
	return nil, res, fmt.Errorf("ncar: %s on %s: %d attempts aborted by faults: %w",
		name, m.Name(), maxAttempts, ErrRetriesExhausted)
}

// firstAbort returns the time of the first attempt-killing fault in
// [from, to): a processor failure or a job kill. Bank and IOP events
// degrade the machine for subsequent attempts but do not abort a run
// in flight.
func firstAbort(inj fault.Injector, from, to float64) (float64, bool) {
	if inj == nil {
		return 0, false
	}
	for _, e := range inj.Window(from, to) {
		if e.Kind == fault.CPUFail || e.Kind == fault.JobKill {
			return e.At, true
		}
	}
	return 0, false
}

// AttemptSeconds models one attempt's simulated duration: the model
// evaluation the benchmark performs, scaled by its repetition
// convention. Correctness and I/O members run fixed nominal durations
// (their cost does not depend on the compute model). This is the
// number the resilient runner schedules with and the sx4d daemon
// reports as each member's ns/op.
func AttemptSeconds(m target.Target, name string, cpus int) float64 {
	opts1 := target.RunOpts{Procs: 1}
	switch name {
	case "PARANOIA", "ELEFUNT":
		return 1
	case "IO", "HIPPI", "NETWORK":
		return 30
	case "COPY":
		k := last(kernels.CopySweep(1))
		return 20 * copyTrace(k).Run(m, opts1).Seconds
	case "IA":
		k := last(kernels.IASweep(1))
		return 20 * iaTrace(k).Run(m, opts1).Seconds
	case "XPOSE":
		k := last(kernels.XposeSweep(1))
		return 20 * xposeTrace(k).Run(m, opts1).Seconds
	case "RFFT":
		const n = 1024
		return 5 * rfftTrace(n, fftpack.RFFTInstances(n)).Run(m, opts1).Seconds
	case "VFFT":
		return 5 * vfftTrace(256, 500).Run(m, opts1).Seconds
	case "RADABS":
		// Nominal RADABS work at the machine's achieved rate.
		return 10_000 / RADABSMFlops(m)
	case "PRODLOAD":
		return prodload.Run(m).TotalSeconds
	case "CCM2":
		t42, _ := ccm2.ResolutionByName("T42L18")
		return ccm2.SimDays(m, t42, 1, cpus, cpus)
	case "MOM":
		return 15_000 / mom.SustainedMFLOPS(m)
	case "POP":
		return popTrace(pop.TwoDegree).Run(m, opts1).Seconds * 100
	}
	return 1
}

// secs renders a simulated time for error messages.
func secs(t float64) string { return fmt.Sprintf("%.2fs", t) }