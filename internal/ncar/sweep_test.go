package ncar

import (
	"fmt"
	"testing"

	_ "sx4bench/internal/machine" // registry
)

func TestSweepScenariosDistinct(t *testing.T) {
	// The memo-cold guarantee: every (machine, trace fingerprint,
	// allocation) triple is distinct, so no scenario can hit a memo
	// entry stored by another.
	scens := SweepScenarios(2000)
	if len(scens) != 2000 {
		t.Fatalf("got %d scenarios, want 2000", len(scens))
	}
	seen := make(map[string]int, len(scens))
	for i, s := range scens {
		key := fmt.Sprintf("%s/%x/%+v", s.Machine, s.Trace.Fingerprint(), s.Opts)
		if j, dup := seen[key]; dup {
			t.Fatalf("scenarios %d and %d collide: %s", j, i, key)
		}
		seen[key] = i
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	scens := SweepScenarios(600)
	serial, err := Sweep(scens, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Scenarios != 600 || serial.Clocks <= 0 {
		t.Fatalf("implausible summary: %+v", serial)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Sweep(scens, workers, true)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Fatalf("workers=%d summary %+v != serial %+v", workers, got, serial)
		}
	}
}

func TestSweepCompiledMatchesInterpreted(t *testing.T) {
	scens := SweepScenarios(600)
	compiled, err := Sweep(scens, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	interpreted, err := Sweep(scens, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if compiled != interpreted {
		t.Fatalf("compiled sweep %+v != interpreted sweep %+v", compiled, interpreted)
	}
}
