package ncar

import (
	"fmt"
	"hash/fnv"
	"math"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/kernels"
	"sx4bench/internal/mom"
	"sx4bench/internal/radabs"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// The cold-sweep driver: the scaling workload behind the compiled-trace
// and sharded-memo work. A sweep is a large set of (machine, trace,
// allocation) scenarios executed against fresh machine instances, so
// every timing-memo lookup misses — the memo-cold regime where the
// single-mutex memo used to serialize workers and where trace
// compilation pays (each distinct trace is flattened once and its
// timing invariants reused across every processor allocation).

// SweepScenario is one cold-sweep unit: a benchmark trace executed on
// one registered machine under one processor allocation.
type SweepScenario struct {
	// Machine is the registry name (target.All order).
	Machine string
	// Trace is the operation trace to time.
	Trace prog.Program
	// Compiled is the trace's pre-flattened form, shared by every
	// scenario over the same trace; targets implementing
	// target.CompiledRunner execute it directly.
	Compiled *prog.Compiled
	// Opts is the processor allocation. Values beyond the machine's
	// CPU count clamp inside Run, as everywhere else.
	Opts target.RunOpts
}

// sweepAllocs is the number of distinct processor allocations each
// (machine, trace) pair is swept over: the memo key varies while the
// compiled trace is reused.
const sweepAllocs = 32

// SweepScenarios deterministically builds n scenarios across every
// registered machine. Scenario i is a pure function of i — kernel
// family, problem size and processor allocation all derive
// arithmetically from the index — so every process, worker count and
// run enumerates the identical set, and the (machine, trace,
// allocation) triples are pairwise distinct for n up to
// machines × traces × sweepAllocs: a guaranteed memo-cold sweep.
func SweepScenarios(n int) []SweepScenario {
	machines := target.All()
	if n <= 0 || len(machines) == 0 {
		return nil
	}
	perTrace := len(machines) * sweepAllocs
	traces := sweepTraces((n + perTrace - 1) / perTrace)
	compiled := make([]*prog.Compiled, len(traces))
	for i, t := range traces {
		compiled[i] = prog.MustCompile(t)
	}
	out := make([]SweepScenario, n)
	for i := range out {
		m := i % len(machines)
		t := (i / len(machines)) % len(traces)
		v := i / (len(machines) * len(traces)) // allocation variant
		procs := 1 + (v*5)%32
		out[i] = SweepScenario{
			Machine:  machines[m],
			Trace:    traces[t],
			Compiled: compiled[t],
			Opts: target.RunOpts{
				Procs:      procs,
				ActiveCPUs: procs + (v%3)*(procs/2),
			},
		}
	}
	return out
}

// sweepTraces builds k distinct scenario programs. Each is a
// composite "suite mix": a radiation block (the RADABS long-basic-
// block loop, repeated over a band count that varies by index, the way
// the radiation code sweeps spectral bands), one model step (CCM2,
// MOM or a VFFT batch), and one memory kernel — so a single scenario
// walks a few hundred ops through the interpreted engine, like the
// real benchmark drivers do, while the compiled walk stays O(loops).
// Every shape parameter derives arithmetically from the index; the
// distinct program names guarantee distinct fingerprints.
func sweepTraces(k int) []prog.Program {
	if k < 1 {
		k = 1
	}
	out := make([]prog.Program, k)
	for t := 0; t < k; t++ {
		var phases []prog.Phase
		// The radiation block: the RADABS pair loop with its body
		// unrolled over the band count, one long basic block per trip —
		// the shape the paper calls out for the radiation code. The
		// interpreted engine walks every op of it on every run; the
		// compiled walk costs one loop record regardless.
		radLoop := radabs.Trace(8+(t*7)%56, 10+t%12).Phases[0].Loops[0]
		bands := 8 + t%9
		body := make([]prog.Op, 0, len(radLoop.Body)*bands)
		for band := 0; band < bands; band++ {
			body = append(body, radLoop.Body...)
		}
		phases = append(phases, prog.Phase{
			Name: "radabs-bands", Parallel: true,
			Loops: []prog.Loop{{Trips: radLoop.Trips, Body: body}},
		})
		switch t % 3 {
		case 0:
			phases = append(phases, ccm2.StepTrace(ccm2.Resolutions[t%len(ccm2.Resolutions)]).Phases...)
		case 1:
			cfg := mom.LowRes
			if t%2 == 1 {
				cfg = mom.HighRes
			}
			phases = append(phases, mom.StepTrace(cfg).Phases...)
		default:
			phases = append(phases, fftpack.VFFTTrace(64<<(t%4), 16+t%32).Phases...)
		}
		n := 32 + (t*t*7)%2000
		m := 1 + (t*13)%24
		var kern prog.Program
		switch t % 3 {
		case 0:
			kern = kernels.Copy{N: n, M: m}.Trace()
		case 1:
			kern = kernels.IA{N: n, M: m}.Trace()
		default:
			kern = kernels.Xpose{N: n, M: m}.Trace()
		}
		phases = append(phases, kern.Phases...)
		out[t] = prog.Program{Name: fmt.Sprintf("sweep-%d", t), Phases: phases}
	}
	return out
}

// SweepResult summarizes one cold sweep. Checksum folds every
// scenario's clock count in index order, so any divergence between
// worker counts (or between the compiled and interpreted engines) is
// a one-word comparison.
type SweepResult struct {
	Scenarios int
	Clocks    float64
	Flops     int64
	Checksum  uint64
}

// sweepGrain batches scenario indexes per scheduling handoff; the
// per-scenario work is microseconds, so per-index handoffs would
// dominate at high worker counts.
const sweepGrain = 64

// Sweep executes the scenarios memo-cold and returns the deterministic
// summary. Each call constructs fresh machine instances (cold timing
// memos); one instance per machine name is shared by all workers, so
// the run exercises the memo and the compiled-trace cache under real
// contention. workers follows the sched convention (0 = GOMAXPROCS,
// 1 = serial). compiled false disables the compiled-trace path on
// every machine that has one — the ablation baseline; the summary is
// bit-identical either way.
func Sweep(scenarios []SweepScenario, workers int, compiled bool) (SweepResult, error) {
	insts := make(map[string]target.Target)
	for _, s := range scenarios {
		if _, ok := insts[s.Machine]; ok {
			continue
		}
		t, err := target.Lookup(s.Machine)
		if err != nil {
			return SweepResult{}, fmt.Errorf("ncar: sweep: %w", err)
		}
		if !compiled {
			if cs, ok := t.(target.CompiledSwitcher); ok {
				cs.SetCompiled(false)
			}
		}
		insts[s.Machine] = t
	}
	clocks := make([]float64, len(scenarios))
	flops := make([]int64, len(scenarios))
	var res SweepResult
	err := sched.ForEachGrain(workers, len(scenarios), sweepGrain, func(i int) error {
		s := &scenarios[i]
		t := insts[s.Machine]
		var r target.Result
		// The compiled entry point skips per-op fingerprint hashing;
		// the ablation takes the classic Run path end to end.
		if cr, ok := t.(target.CompiledRunner); ok && compiled && s.Compiled != nil {
			r = cr.RunCompiled(s.Compiled, s.Opts)
		} else {
			r = t.Run(s.Trace, s.Opts)
		}
		clocks[i] = r.Clocks
		flops[i] = r.Flops
		return nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	// Deterministic reduction: ForEachGrain filled clocks in index
	// order, so the fold — and therefore Checksum — is independent of
	// the worker count.
	h := fnv.New64a()
	var buf [8]byte
	for i, c := range clocks {
		res.Clocks += c
		res.Flops += flops[i]
		bits := math.Float64bits(c)
		for b := 0; b < 8; b++ {
			buf[b] = byte(bits >> (8 * b))
		}
		h.Write(buf[:])
	}
	res.Scenarios = len(scenarios)
	res.Checksum = h.Sum64()
	return res, nil
}
