package ncar

import (
	"context"
	"fmt"
	"sync"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/fault"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/iobench"
	"sx4bench/internal/kernels"
	"sx4bench/internal/mom"
	"sx4bench/internal/prodload"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/target"
)

// Measurement is one suite member's structured result: the simulated
// attempt duration plus the category's headline rates, the
// machine-readable counterpart of RunBenchmark's text output. It is
// the unit the sx4d daemon serves — a pure function of (machine
// configuration, benchmark, cpus), so identical queries are exact
// cache hits.
type Measurement struct {
	// Benchmark is the suite member name; KTries its repetition
	// convention (the paper's KTRIES rule).
	Benchmark string
	KTries    int
	// Seconds is the simulated duration of one attempt under the
	// member's repetition convention (the same model AttemptSeconds the
	// resilient runner schedules with).
	Seconds float64
	// Metrics holds the member's headline rates, keyed by unit
	// ("mflops", "mbps", "gflops", "minutes", "category_pass"). I/O
	// members report rates only on machines with a modeled disk
	// subsystem; correctness members report the host category verdict.
	Metrics map[string]float64
}

// ioRates memoizes the I/O-category headline numbers: they depend only
// on the node's IOP subsystem geometry, which every disk-bearing
// configuration shares, so the sweep runs once per process.
var ioRates = struct {
	once                sync.Once
	disk, hippi, netMax float64
}{}

func ioHeadlines() (disk, hippi, netMax float64) {
	ioRates.once.Do(func() {
		sub := iop.New()
		t63, _ := ccm2.ResolutionByName("T63L18")
		ioRates.disk = iobench.RunHistoryWrite(sub.DiskArray, t63).MBps
		ioRates.hippi = last(iobench.HIPPISweep(sub, 256<<20)).AggregateMBps
		for _, n := range iobench.RunNetwork(iobench.NewFDDI(), iobench.StandardScript()) {
			if n.MBps > ioRates.netMax {
				ioRates.netMax = n.MBps
			}
		}
	})
	return ioRates.disk, ioRates.hippi, ioRates.netMax
}

// abandoned maps a dead context to the measurement-layer error shape:
// the caller's deadline or cancellation wraps through, so servers can
// classify abandoned work with errors.Is against the context sentinels.
func abandoned(ctx context.Context, name string) error {
	return fmt.Errorf("ncar: measurement %q abandoned: %w", name, context.Cause(ctx))
}

// Measure executes one suite member on the target and returns its
// structured result. cpus <= 0 means the machine's full CPU count.
// The evaluation is deterministic: a single model run per headline
// number, no KTRIES jitter, so repeated calls are byte-identical once
// rendered.
//
// ctx bounds the host-side work, not the simulated clock: a cancelled
// or expired context abandons the measurement before it starts (and,
// in the suite forms, between members), which is how the sx4d daemon
// stops paying for queries whose clients have hung up. ctx never
// shapes a result byte — a measurement either completes exactly as it
// would have, or does not happen.
func Measure(ctx context.Context, m target.Target, name string, cpus int) (Measurement, error) {
	if err := ctx.Err(); err != nil {
		return Measurement{}, abandoned(ctx, name)
	}
	if m == nil {
		return Measurement{}, fmt.Errorf("ncar: nil target for measurement %q", name)
	}
	b, err := ByName(name)
	if err != nil {
		return Measurement{}, err
	}
	if cpus <= 0 {
		cpus = m.Spec().CPUs
	}
	out := Measurement{
		Benchmark: name,
		KTries:    b.KTries,
		Seconds:   AttemptSeconds(m, name, cpus),
	}
	metric := func(unit string, v float64) {
		if out.Metrics == nil {
			out.Metrics = make(map[string]float64)
		}
		out.Metrics[unit] = v
	}
	opts1 := target.RunOpts{Procs: 1}
	switch name {
	case "PARANOIA", "ELEFUNT":
		if RunCorrectness().Pass {
			metric("category_pass", 1)
		} else {
			metric("category_pass", 0)
		}
	case "COPY":
		k := last(kernels.CopySweep(1))
		r := copyTrace(k).Run(m, opts1)
		metric("mbps", float64(k.PayloadBytes())/r.Seconds/1e6)
	case "IA":
		k := last(kernels.IASweep(1))
		r := iaTrace(k).Run(m, opts1)
		metric("mbps", float64(k.PayloadBytes())/r.Seconds/1e6)
	case "XPOSE":
		k := last(kernels.XposeSweep(1))
		r := xposeTrace(k).Run(m, opts1)
		metric("mbps", float64(k.PayloadBytes())/r.Seconds/1e6)
	case "RFFT":
		const n = 1024
		mm := fftpack.RFFTInstances(n)
		r := rfftTrace(n, mm).Run(m, opts1)
		metric("mflops", fftpack.NominalMFLOPS(n, mm, r.Seconds))
	case "VFFT":
		const n, mm = 256, 500
		r := vfftTrace(n, mm).Run(m, opts1)
		metric("mflops", fftpack.NominalMFLOPS(n, mm, r.Seconds))
	case "RADABS":
		metric("mflops", RADABSMFlops(m))
	case "IO", "HIPPI", "NETWORK":
		if m.Spec().DiskBytesPerSec > 0 {
			disk, hippi, netMax := ioHeadlines()
			switch name {
			case "IO":
				metric("mbps", disk)
			case "HIPPI":
				metric("mbps", hippi)
			case "NETWORK":
				metric("mbps", netMax)
			}
		}
	case "PRODLOAD":
		metric("minutes", prodload.Run(m).TotalMinutes())
	case "CCM2":
		t42, _ := ccm2.ResolutionByName("T42L18")
		metric("gflops", ccm2.SustainedGFLOPS(m, t42, cpus))
	case "MOM":
		metric("mflops", mom.SustainedMFLOPS(m))
	case "POP":
		metric("mflops", POPMFlops(m))
	}
	return out, nil
}

// MeasureSuite measures the named members (nil or empty = the whole
// suite, in paper order) with suite-level parallelism. workers follows
// the sched convention (0 = GOMAXPROCS, 1 = serial); the result slice
// is in input order and byte-identical for any worker count. A context
// that dies mid-suite abandons the members that have not started —
// cancellation is at member granularity, so a completed result slice
// is never partially reported.
func MeasureSuite(ctx context.Context, m target.Target, names []string, cpus, workers int) ([]Measurement, error) {
	if len(names) == 0 {
		for _, b := range Suite() {
			names = append(names, b.Name)
		}
	}
	return sched.Map(workers, len(names), func(i int) (Measurement, error) {
		return Measure(ctx, m, names[i], cpus)
	})
}

// ResilientMeasurement couples one member's structured result with the
// fault-schedule outcome of the attempt that produced it.
type ResilientMeasurement struct {
	Measurement Measurement
	// Attempts and FinishedAt mirror ResilientResult: the attempt count
	// including aborted ones and the simulated completion time.
	Attempts   int
	FinishedAt float64
	// Degraded is the machine degradation in force during the
	// successful attempt.
	Degraded fault.Degradation
}

// MeasureResilient is Measure under a fault schedule: the retry loop of
// RunResilient, with the surviving attempt's degraded machine measured
// structurally instead of rendered as text. ctx is host-side only, like
// Measure's: the resilient retry loop runs on the simulated clock and
// is not interruptible mid-member.
func MeasureResilient(ctx context.Context, m target.Target, name string, cpus int, opts ResilientOpts) (ResilientMeasurement, error) {
	if err := ctx.Err(); err != nil {
		return ResilientMeasurement{}, abandoned(ctx, name)
	}
	dm, res, err := runAttempts(m, name, cpus, opts)
	out := ResilientMeasurement{
		Attempts:   res.Attempts,
		FinishedAt: res.FinishedAt,
		Degraded:   res.Degraded,
	}
	if err != nil {
		return out, err
	}
	out.Measurement, err = Measure(ctx, dm, name, cpus)
	return out, err
}

// MeasureSuiteResilient is MeasureSuite under a fault schedule; each
// member runs on its own simulated timeline (t = 0 at its start), so
// the result slice is deterministic for any worker count.
func MeasureSuiteResilient(ctx context.Context, m target.Target, names []string, cpus, workers int, opts ResilientOpts) ([]ResilientMeasurement, error) {
	if len(names) == 0 {
		for _, b := range Suite() {
			names = append(names, b.Name)
		}
	}
	return sched.Map(workers, len(names), func(i int) (ResilientMeasurement, error) {
		return MeasureResilient(ctx, m, names[i], cpus, opts)
	})
}
