package ncar

import (
	"sync"

	"sx4bench/internal/fftpack"
	"sx4bench/internal/kernels"
	"sx4bench/internal/pop"
	"sx4bench/internal/radabs"
	"sx4bench/internal/sx4/prog"
	"sx4bench/internal/target"
)

// sharedTargets holds one live instance per registry name for the
// read-only table renderers. Every Run entry point is safe for
// concurrent use (sharded memo, first-store-wins compiled caches), so
// re-rendering a table warms one timing memo instead of rebuilding
// each machine — and recompiling its traces — per call. Drivers that
// reconfigure a target (SetCompiled, SetCache) must keep using
// target.Lookup for a private instance; fault degradation is fine
// here, since Degraded returns a new machine.
var sharedTargets sync.Map // registry name -> target.Target

func sharedTarget(name string) (target.Target, error) {
	if v, ok := sharedTargets.Load(name); ok {
		return v.(target.Target), nil
	}
	t, err := target.Lookup(name)
	if err != nil {
		return nil, err
	}
	if prev, loaded := sharedTargets.LoadOrStore(name, t); loaded {
		return prev.(target.Target), nil
	}
	return t, nil
}

func mustSharedTarget(name string) target.Target {
	t, err := sharedTarget(name)
	if err != nil {
		panic(err)
	}
	return t
}

// benchTraces caches the compiled form of every benchmark trace the
// drivers revisit: the figure sweeps, the cross-machine table, the
// resilient runner and the scalar anchors all re-time the same trace
// shapes (per point, machine and KTRIES draw), and each trace is a
// pure function of its shape parameters. Cached compiled traces run
// through the targets' CompiledRunner fast path, skipping per-run
// trace construction and fingerprint hashing; the results are
// bit-identical to the interpreted entry.
var benchTraces target.TraceCache[traceKey]

// traceKey identifies a cached trace by family and shape.
type traceKey struct {
	fam  string
	n, m int
}

func copyTrace(k kernels.Copy) target.CompiledTrace {
	return benchTraces.Get(traceKey{"copy", k.N, k.M}, func() prog.Program { return k.Trace() })
}

func iaTrace(k kernels.IA) target.CompiledTrace {
	return benchTraces.Get(traceKey{"ia", k.N, k.M}, func() prog.Program { return k.Trace() })
}

func xposeTrace(k kernels.Xpose) target.CompiledTrace {
	return benchTraces.Get(traceKey{"xpose", k.N, k.M}, func() prog.Program { return k.Trace() })
}

func rfftTrace(n, m int) target.CompiledTrace {
	return benchTraces.Get(traceKey{"rfft", n, m}, func() prog.Program { return fftpack.RFFTTrace(n, m) })
}

func vfftTrace(n, m int) target.CompiledTrace {
	return benchTraces.Get(traceKey{"vfft", n, m}, func() prog.Program { return fftpack.VFFTTrace(n, m) })
}

func radabsTrace(ncol, nlev int) target.CompiledTrace {
	return benchTraces.Get(traceKey{"radabs", ncol, nlev}, func() prog.Program { return radabs.Trace(ncol, nlev) })
}

// popTraces is keyed by the full configuration (names alone would
// alias hand-built configs that share one).
var popTraces target.TraceCache[pop.Config]

func popTrace(cfg pop.Config) target.CompiledTrace {
	return popTraces.Get(cfg, func() prog.Program { return pop.StepTrace(cfg) })
}
