package ncar

import (
	"fmt"
	"io"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/core"
	"sx4bench/internal/mom"
	"sx4bench/internal/target"
)

// RunBenchmark executes one suite member by name against the target
// machine and writes its results: the library-side implementation of
// the ncarbench command. cpus <= 0 means the machine's full CPU count.
func RunBenchmark(w io.Writer, m target.Target, name string, cpus int) error {
	if m == nil {
		return fmt.Errorf("ncar: nil target for benchmark %q", name)
	}
	if _, err := ByName(name); err != nil {
		return err
	}
	if cpus <= 0 {
		cpus = m.Spec().CPUs
	}
	switch name {
	case "PARANOIA", "ELEFUNT":
		c := RunCorrectness()
		if _, err := fmt.Fprintf(w, "PARANOIA: %s\n", c.Paranoia.Summary()); err != nil {
			return err
		}
		for _, e := range c.Elefunt {
			if _, err := fmt.Fprintf(w, "ELEFUNT %s\n", e); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "correctness category pass: %v\n", c.Pass)
		return err
	case "COPY", "IA", "XPOSE":
		return core.WriteFigure(w, Fig5(m, 4))
	case "RFFT":
		return core.WriteFigure(w, Fig6(m))
	case "VFFT":
		return core.WriteFigure(w, Fig7(m))
	case "RADABS":
		if _, err := fmt.Fprintf(w, "RADABS (%s): %.1f Y-MP equivalent MFLOPS (paper on SX-4/1: 865.9)\n",
			m.Name(), RADABSMFlops(m)); err != nil {
			return err
		}
		return core.WriteTable(w, Table3(m))
	case "IO", "HIPPI", "NETWORK":
		r := RunIOCategory()
		for _, h := range r.History {
			if _, err := fmt.Fprintf(w, "IO %s\n", h); err != nil {
				return err
			}
		}
		for _, p := range r.HIPPI {
			if _, err := fmt.Fprintf(w, "HIPPI pkt=%dB x%d: %.1f MB/s per transfer, %.1f aggregate\n",
				p.PacketBytes, p.Concurrent, p.PerTransferMBps, p.AggregateMBps); err != nil {
				return err
			}
		}
		for _, n := range r.Network {
			if _, err := fmt.Fprintf(w, "NETWORK %-16s %8.3f s %8.2f MB/s\n", n.Name, n.Seconds, n.MBps); err != nil {
				return err
			}
		}
		return nil
	case "PRODLOAD":
		r := Prodload(m)
		_, err := fmt.Fprintf(w,
			"PRODLOAD: test1=%.0fs test2=%.0fs test3=%.0fs test4=%.0fs total=%.0fs (%.1f min; paper: 93 min 28 s)\n",
			r.Test1, r.Test2, r.Test3, r.Test4, r.TotalSeconds, r.TotalMinutes())
		return err
	case "CCM2":
		if err := core.WriteFigure(w, Fig8(m)); err != nil {
			return err
		}
		for _, resName := range []string{"T42L18", "T106L18", "T170L18"} {
			res, _ := ccm2.ResolutionByName(resName)
			if _, err := fmt.Fprintf(w, "%s on %d CPUs: %.2f GFLOPS sustained, %.1f ms/step\n",
				resName, cpus, ccm2.SustainedGFLOPS(m, res, cpus),
				1e3*ccm2.StepSeconds(m, res, cpus, cpus)); err != nil {
				return err
			}
		}
		if err := core.WriteTable(w, Table5(m)); err != nil {
			return err
		}
		return core.WriteTable(w, Table6(m))
	case "MOM":
		if _, err := fmt.Fprintf(w, "MOM 1-degree sustained (%s, 1 CPU): %.0f MFLOPS\n",
			m.Name(), mom.SustainedMFLOPS(m)); err != nil {
			return err
		}
		return core.WriteTable(w, Table7(m))
	case "POP":
		_, err := fmt.Fprintf(w, "POP 2-degree (%s): %.0f MFLOPS (paper on SX-4/1: 537)\n", m.Name(), POPMFlops(m))
		return err
	}
	return fmt.Errorf("ncar: no runner for %q", name)
}
