package ncar

import (
	"fmt"
	"io"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/core"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/hint"
	"sx4bench/internal/iobench"
	"sx4bench/internal/kernels"
	"sx4bench/internal/mom"
	"sx4bench/internal/prodload"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/target"
)

// CrossMachineTable runs the whole NCAR suite over every machine in the
// registry and renders the paper-style comparison: one row per suite
// member (plus HINT, placed beside RADABS so the ranking inversion the
// paper criticizes is visible in one glance), one column per machine in
// canonical registration order. Everything is a single deterministic
// model evaluation — no KTRIES jitter — so the table is byte-exact and
// golden-pinned.
//
// Category conventions:
//
//   - PARANOIA and ELEFUNT probe the host's floating-point arithmetic,
//     not the timing models, so every column reads "host".
//   - The memory kernels report MB/s at the largest-N point of each
//     sweep (one long stream: the bandwidth-limited regime).
//   - The I/O rows (IO, HIPPI, NETWORK) require the machine to have a
//     modeled I/O subsystem; the comparison systems were benchmarked
//     compute-only (Spec().DiskBytesPerSec == 0) and read "n/a".
//   - CCM2 runs at each machine's full CPU count; MOM and POP are the
//     single-processor numbers the paper quotes.
func CrossMachineTable() (core.Table, error) {
	names := target.All()
	t := core.Table{
		ID:      "crossmachine",
		Title:   "NCAR Benchmark Suite across the modeled machines",
		Headers: []string{"Benchmark"},
	}
	targets := make([]target.Target, 0, len(names))
	for _, name := range names {
		tgt, err := sharedTarget(name)
		if err != nil {
			return core.Table{}, fmt.Errorf("ncar: cross-machine sweep: %w", err)
		}
		targets = append(targets, tgt)
		t.Headers = append(t.Headers, tgt.Name())
	}

	// row appends one benchmark row, evaluating cell on each target.
	row := func(label string, cell func(tgt target.Target) string) {
		cells := []string{label}
		for _, tgt := range targets {
			cells = append(cells, cell(tgt))
		}
		t.Rows = append(t.Rows, cells)
	}
	// ioRow gates an I/O-category value on a modeled disk subsystem.
	ioRow := func(label string, cell func(tgt target.Target) string) {
		row(label, func(tgt target.Target) string {
			if tgt.Spec().DiskBytesPerSec <= 0 {
				return "n/a"
			}
			return cell(tgt)
		})
	}
	host := func(target.Target) string { return "host" }
	opts1 := target.RunOpts{Procs: 1}

	row("PARANOIA", host)
	row("ELEFUNT", host)

	copyK := last(kernels.CopySweep(1))
	row("COPY (MB/s)", func(tgt target.Target) string {
		r := copyTrace(copyK).Run(tgt, opts1)
		return fmt.Sprintf("%.1f", float64(copyK.PayloadBytes())/r.Seconds/1e6)
	})
	iaK := last(kernels.IASweep(1))
	row("IA (MB/s)", func(tgt target.Target) string {
		r := iaTrace(iaK).Run(tgt, opts1)
		return fmt.Sprintf("%.1f", float64(iaK.PayloadBytes())/r.Seconds/1e6)
	})
	xpK := last(kernels.XposeSweep(1))
	row("XPOSE (MB/s)", func(tgt target.Target) string {
		r := xposeTrace(xpK).Run(tgt, opts1)
		return fmt.Sprintf("%.1f", float64(xpK.PayloadBytes())/r.Seconds/1e6)
	})

	const rfftN = 1024
	rfftM := fftpack.RFFTInstances(rfftN)
	row("RFFT (MFLOPS)", func(tgt target.Target) string {
		r := rfftTrace(rfftN, rfftM).Run(tgt, opts1)
		return fmt.Sprintf("%.1f", fftpack.NominalMFLOPS(rfftN, rfftM, r.Seconds))
	})
	const vfftN, vfftM = 256, 500
	row("VFFT (MFLOPS)", func(tgt target.Target) string {
		r := vfftTrace(vfftN, vfftM).Run(tgt, opts1)
		return fmt.Sprintf("%.1f", fftpack.NominalMFLOPS(vfftN, vfftM, r.Seconds))
	})

	row("RADABS (MFLOPS)", func(tgt target.Target) string {
		return fmt.Sprintf("%.1f", RADABSMFlops(tgt))
	})
	row("HINT (MQUIPS)", func(tgt target.Target) string {
		return fmt.Sprintf("%.1f", hint.ModelMQUIPS(tgt.Scalar()))
	})

	// The I/O category runs on the node's IOP subsystem; its geometry is
	// shared by every disk-bearing configuration, so the sweep runs once.
	sub := iop.New()
	t63, _ := ccm2.ResolutionByName("T63L18")
	histMBps := iobench.RunHistoryWrite(sub.DiskArray, t63).MBps
	hippi := last(iobench.HIPPISweep(sub, 256<<20)).AggregateMBps
	var netMBps float64
	for _, n := range iobench.RunNetwork(iobench.NewFDDI(), iobench.StandardScript()) {
		if n.MBps > netMBps {
			netMBps = n.MBps
		}
	}
	ioRow("IO (MB/s)", func(target.Target) string { return fmt.Sprintf("%.1f", histMBps) })
	ioRow("HIPPI (MB/s)", func(target.Target) string { return fmt.Sprintf("%.1f", hippi) })
	ioRow("NETWORK (MB/s)", func(target.Target) string { return fmt.Sprintf("%.2f", netMBps) })

	row("PRODLOAD (min)", func(tgt target.Target) string {
		return fmt.Sprintf("%.1f", prodload.Run(tgt).TotalMinutes())
	})

	t42, _ := ccm2.ResolutionByName("T42L18")
	row("CCM2 T42L18 (GFLOPS)", func(tgt target.Target) string {
		return fmt.Sprintf("%.2f", ccm2.SustainedGFLOPS(tgt, t42, tgt.Spec().CPUs))
	})
	row("MOM (MFLOPS)", func(tgt target.Target) string {
		return fmt.Sprintf("%.1f", mom.SustainedMFLOPS(tgt))
	})
	row("POP (MFLOPS)", func(tgt target.Target) string {
		return fmt.Sprintf("%.1f", POPMFlops(tgt))
	})
	return t, nil
}

// last returns the final element of a sweep.
func last[T any](s []T) T { return s[len(s)-1] }

// ShortSummary writes one line of scalar anchors for a machine: the
// suite numbers cheap enough to sweep across every registered machine
// as a CI smoke test (ncarbench -machine all -short).
func ShortSummary(w io.Writer, m target.Target) error {
	if m == nil {
		return fmt.Errorf("ncar: nil target for short summary")
	}
	t42, _ := ccm2.ResolutionByName("T42L18")
	cpus := m.Spec().CPUs
	_, err := fmt.Fprintf(w,
		"%-16s RADABS %7.1f MFLOPS  HINT %4.1f MQUIPS  MOM %6.1f MFLOPS  POP %6.1f MFLOPS  CCM2(T42,%d cpus) %.2f GFLOPS\n",
		m.Name(), RADABSMFlops(m), hint.ModelMQUIPS(m.Scalar()),
		mom.SustainedMFLOPS(m), POPMFlops(m), cpus, ccm2.SustainedGFLOPS(m, t42, cpus))
	return err
}
