package ncar

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sx4bench/internal/sx4"
)

func TestRunBenchmarkUnknownName(t *testing.T) {
	m := sx4.New(sx4.Benchmarked())
	var buf bytes.Buffer
	for _, name := range []string{"NOSUCH", "", "copy" /* case-sensitive */} {
		err := RunBenchmark(&buf, m, name, 1)
		if err == nil {
			t.Errorf("RunBenchmark(%q) accepted an unknown benchmark", name)
			continue
		}
		if !strings.Contains(err.Error(), name) && name != "" {
			t.Errorf("RunBenchmark(%q) error %q does not name the benchmark", name, err)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("unknown benchmark wrote %d bytes of output", buf.Len())
	}
}

func TestRunBenchmarkNilTarget(t *testing.T) {
	var buf bytes.Buffer
	err := RunBenchmark(&buf, nil, "RADABS", 1)
	if err == nil {
		t.Fatal("RunBenchmark with nil target did not error")
	}
	if !strings.Contains(err.Error(), "nil target") {
		t.Errorf("nil-target error = %q, want mention of nil target", err)
	}
	// The guard must win even for an unknown name: no panic either way.
	if err := RunBenchmark(&buf, nil, "NOSUCH", 1); err == nil {
		t.Error("RunBenchmark(nil, unknown) did not error")
	}
	if buf.Len() != 0 {
		t.Errorf("nil target wrote %d bytes of output", buf.Len())
	}
}

// failWriter fails after n bytes, for exercising write-error paths.
type failWriter struct{ n int }

var errSink = errors.New("sink full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errSink
	}
	f.n -= len(p)
	return len(p), nil
}

func TestRunBenchmarkPropagatesWriteError(t *testing.T) {
	m := sx4.New(sx4.Benchmarked())
	for _, name := range []string{"RADABS", "COPY", "POP"} {
		if err := RunBenchmark(&failWriter{n: 10}, m, name, 1); !errors.Is(err, errSink) {
			t.Errorf("RunBenchmark(%s) on a failing writer returned %v, want errSink", name, err)
		}
	}
}

