package ncar

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"sx4bench/internal/target"
)

// colIndex returns the table column for a registry display name.
func colIndex(t *testing.T, headers []string, name string) int {
	t.Helper()
	for i, h := range headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, headers)
	return -1
}

// rowByLabel returns the row whose first cell is label.
func rowByLabel(t *testing.T, rows [][]string, label string) []string {
	t.Helper()
	for _, r := range rows {
		if r[0] == label {
			return r
		}
	}
	t.Fatalf("no row %q", label)
	return nil
}

func cellFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q in row %s is not numeric: %v", row[col], row[0], err)
	}
	return v
}

func TestCrossMachineTableShape(t *testing.T) {
	tab, err := CrossMachineTable()
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 1 + len(target.All())
	if len(tab.Headers) != wantCols {
		t.Errorf("headers = %d columns (%v), want %d", len(tab.Headers), tab.Headers, wantCols)
	}
	// One row per suite member, plus the HINT row beside RADABS.
	if want := len(Suite()) + 1; len(tab.Rows) != want {
		t.Errorf("table has %d rows, want %d (suite + HINT)", len(tab.Rows), want)
	}
	for _, r := range tab.Rows {
		if len(r) != wantCols {
			t.Errorf("row %s has %d cells, want %d", r[0], len(r), wantCols)
		}
		for _, c := range r[1:] {
			if strings.TrimSpace(c) == "" {
				t.Errorf("row %s has an empty cell", r[0])
			}
		}
	}
	// Every suite benchmark appears as a row prefix, in suite order.
	ri := 0
	for _, b := range Suite() {
		found := false
		for ; ri < len(tab.Rows); ri++ {
			if strings.HasPrefix(tab.Rows[ri][0], b.Name) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("suite benchmark %s has no row (or is out of order)", b.Name)
			ri = 0
		}
	}
}

// TestCrossMachineInversion pins the paper's Table 1 argument in the
// cross-machine sweep: the cache-friendly HINT metric ranks the
// RS6000/590 workstation above the Cray vector machines, while the
// vectorizable RADABS kernel inverts that ranking decisively.
func TestCrossMachineInversion(t *testing.T) {
	tab, err := CrossMachineTable()
	if err != nil {
		t.Fatal(err)
	}
	hintRow := rowByLabel(t, tab.Rows, "HINT (MQUIPS)")
	radRow := rowByLabel(t, tab.Rows, "RADABS (MFLOPS)")
	col := func(name string) int { return colIndex(t, tab.Headers, name) }

	rs, ymp, j90 := col("IBM RS6000/590"), col("CRI Y-MP"), col("CRI J90")
	if h := cellFloat(t, hintRow, rs); h <= cellFloat(t, hintRow, ymp) || h <= cellFloat(t, hintRow, j90) {
		t.Errorf("HINT does not rank RS6000 (%v) above Y-MP (%v) and J90 (%v)",
			hintRow[rs], hintRow[ymp], hintRow[j90])
	}
	if r := cellFloat(t, radRow, rs); cellFloat(t, radRow, ymp) <= 5*r {
		t.Errorf("RADABS does not invert: Y-MP %v not >5x RS6000 %v", radRow[ymp], radRow[rs])
	}

	// RADABS ranking follows peak vector capability: SX-4 > C90 > Y-MP >
	// J90 > both workstations (the Table 1 ordering).
	order := []string{"SX-4/1", "CRI C90", "CRI Y-MP", "CRI J90", "IBM RS6000/590", "SUN Sparc 20"}
	for i := 0; i+1 < len(order); i++ {
		a, b := cellFloat(t, radRow, col(order[i])), cellFloat(t, radRow, col(order[i+1]))
		if a <= b {
			t.Errorf("RADABS ordering broken: %s %.1f <= %s %.1f", order[i], a, order[i+1], b)
		}
	}
}

// TestCrossMachineIOGating: the comparison systems were benchmarked
// compute-only; their I/O-category cells must read "n/a", while the
// SX-4 columns carry real rates.
func TestCrossMachineIOGating(t *testing.T) {
	tab, err := CrossMachineTable()
	if err != nil {
		t.Fatal(err)
	}
	col := func(name string) int { return colIndex(t, tab.Headers, name) }
	for _, label := range []string{"IO (MB/s)", "HIPPI (MB/s)", "NETWORK (MB/s)"} {
		row := rowByLabel(t, tab.Rows, label)
		for _, name := range []string{"SUN Sparc 20", "IBM RS6000/590", "CRI J90", "CRI Y-MP", "CRI C90"} {
			if got := row[col(name)]; got != "n/a" {
				t.Errorf("%s on compute-only %s = %q, want n/a", label, name, got)
			}
		}
		for _, name := range []string{"SX-4/1", "SX-4/32"} {
			if v := cellFloat(t, row, col(name)); v <= 0 {
				t.Errorf("%s on %s = %v, want positive rate", label, name, v)
			}
		}
	}
}

// TestCrossMachineDeterministic: the sweep must be byte-exact run to
// run — the property the golden depends on.
func TestCrossMachineDeterministic(t *testing.T) {
	a, err := CrossMachineTable()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossMachineTable()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("CrossMachineTable differs across calls")
	}
}
