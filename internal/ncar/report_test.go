package ncar

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnchorsAllPass(t *testing.T) {
	// The headline acceptance test of the whole reproduction: every
	// scalar anchor of the paper within its declared band.
	for _, a := range Anchors(bench()) {
		if !a.Pass() {
			t.Errorf("%s: paper %.2f, model %.2f (%+.1f%%, band ±%.0f%%)",
				a.Name, a.Paper, a.Model, a.Deviation(), a.TolPct)
		}
	}
}

func TestAnchorsCoverage(t *testing.T) {
	as := Anchors(bench())
	if len(as) < 9 {
		t.Fatalf("only %d anchors; the paper has at least 9 scalar results", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if seen[a.Name] {
			t.Errorf("duplicate anchor %q", a.Name)
		}
		seen[a.Name] = true
		if a.Paper <= 0 || a.Model <= 0 {
			t.Errorf("anchor %q has non-positive values: %+v", a.Name, a)
		}
	}
}

func TestAnchorDeviationMath(t *testing.T) {
	a := Anchor{Paper: 100, Model: 110, TolPct: 15}
	if d := a.Deviation(); d < 9.99 || d > 10.01 {
		t.Errorf("deviation = %v, want 10", d)
	}
	if !a.Pass() {
		t.Error("10% deviation inside a 15% band should pass")
	}
	a.TolPct = 5
	if a.Pass() {
		t.Error("10% deviation outside a 5% band passed")
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, bench()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"PARANOIA true", "RADABS", "PRODLOAD", "LINPACK", "STREAM", "HINT",
		"Verdict: all anchors within bands",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "OUT OF BAND") {
		t.Error("report contains out-of-band anchors")
	}
}

func TestProfileTable(t *testing.T) {
	tab, err := ProfileTable(bench(), "T42L18", 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 8 phases + total
		t.Fatalf("profile has %d rows", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, r := range tab.Rows {
		names[r[0]] = true
	}
	for _, want := range []string{"legendre", "fft", "radiation", "physics", "slt", "orchestration", "total"} {
		if !names[want] {
			t.Errorf("profile missing phase %q", want)
		}
	}
	if _, err := ProfileTable(bench(), "T31L18", 32); err == nil {
		t.Error("unknown resolution accepted")
	}
}

func TestRunBenchmarkAllSuiteMembers(t *testing.T) {
	m := bench()
	for _, b := range Suite() {
		var buf bytes.Buffer
		if err := RunBenchmark(&buf, m, b.Name, 8); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", b.Name)
		}
	}
	if err := RunBenchmark(&bytes.Buffer{}, m, "NOPE", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmarkDefaultCPUs(t *testing.T) {
	var buf bytes.Buffer
	if err := RunBenchmark(&buf, bench(), "MOM", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MOM") {
		t.Error("MOM output missing")
	}
}

func TestMultiNodeTable(t *testing.T) {
	tab, err := MultiNodeTable(bench(), "T170L18")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows, want 5 (1..16 nodes)", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1" || tab.Rows[4][0] != "16" {
		t.Errorf("node column wrong: %v", tab.Rows)
	}
	if _, err := MultiNodeTable(bench(), "T31L18"); err == nil {
		t.Error("unknown resolution accepted")
	}
}
