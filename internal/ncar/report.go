package ncar

import (
	"fmt"
	"io"
	"math"
	"sync"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/core"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/hint"
	"sx4bench/internal/linpack"
	"sx4bench/internal/mom"
	"sx4bench/internal/nas"
	"sx4bench/internal/prodload"
	"sx4bench/internal/stream"
	"sx4bench/internal/target"
)

// Anchor is one numeric result the paper reports, with the model's
// value and a tolerance band.
type Anchor struct {
	Name   string
	Unit   string
	Paper  float64
	Model  float64
	TolPct float64
}

// Deviation returns the relative deviation in percent.
func (a Anchor) Deviation() float64 {
	if a.Paper == 0 {
		return 0
	}
	return (a.Model/a.Paper - 1) * 100
}

// Pass reports whether the model lands inside the band.
func (a Anchor) Pass() bool { return math.Abs(a.Deviation()) <= a.TolPct }

// Anchors evaluates every scalar anchor of the paper on the machine.
// The independent model evaluations fan out across host workers; each
// lands in its own slot, so the anchor list is deterministic for any
// worker count (the machine model is pure and its timing cache is
// concurrency-safe).
func Anchors(m target.Target) []Anchor {
	t42, _ := ccm2.ResolutionByName("T42L18")
	t63, _ := ccm2.ResolutionByName("T63L18")
	t170, _ := ccm2.ResolutionByName("T170L18")
	var (
		y42, y63 float64
		gf170    float64
		ens      ccm2.EnsembleResult
		pl       prodload.Result
		momT1    float64
		momS32   float64
		popMF    float64
		radMF    float64
	)
	jobs := []func(){
		func() { _, _, y42 = ccm2.YearSim(m, t42, 32) },
		func() { _, _, y63 = ccm2.YearSim(m, t63, 32) },
		func() { gf170 = ccm2.SustainedGFLOPS(m, t170, 32) },
		func() { ens = ccm2.EnsembleTest(m) },
		func() { pl = prodload.Run(m) },
		func() {
			momT1 = mom.Benchmark350(m, 1)
			momS32 = momT1 / mom.Benchmark350(m, 32)
		},
		func() { popMF = POPMFlops(m) },
		func() { radMF = RADABSMFlops(m) },
	}
	sched.ForEach(0, len(jobs), func(i int) error { jobs[i](); return nil })

	return []Anchor{
		{"RADABS SX-4/1", "MFLOPS", 865.9, radMF, 20},
		{"CCM2 T170L18 on 32 CPUs", "GFLOPS", 24, gf170, 20},
		{"CCM2 one year T42L18", "s", 1327.53, y42, 20},
		{"CCM2 one year T63L18", "s", 3452.48, y63, 20},
		{"Ensemble degradation", "%", 1.89, ens.DegradationPct, 60},
		{"MOM 350 steps, 1 CPU", "s", 1861.25, momT1, 20},
		{"MOM speedup on 32 CPUs", "x", 9.06, momS32, 20},
		{"POP 2-degree, 1 CPU", "MFLOPS", 537, popMF, 20},
		{"PRODLOAD total", "min", 93.47, pl.TotalMinutes(), 20},
	}
}

// WriteReport renders a procurement-style findings document: every
// category of the suite, the paper-versus-model anchors, and the
// comparator contrast of Section 3.
func WriteReport(w io.Writer, m target.Target) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("NCAR Benchmark Suite — findings for %s\n", m); err != nil {
		return err
	}
	if err := p("%s\n\n", "================================================================"); err != nil {
		return err
	}

	// Category 1: correctness.
	c := RunCorrectness()
	if err := p("1. Correctness: PARANOIA %v, ELEFUNT %d/5 functions in bounds (category pass: %v)\n",
		c.Paranoia.Pass(), countPass(c), c.Pass); err != nil {
		return err
	}

	// Categories 2-7 via the anchors.
	if err := p("\n2-7. Measured anchors (paper vs model):\n"); err != nil {
		return err
	}
	allPass := true
	for _, a := range Anchors(m) {
		status := "ok"
		if !a.Pass() {
			status = "OUT OF BAND"
			allPass = false
		}
		if err := p("  %-28s paper %10.2f  model %10.2f %-7s %+6.1f%%  [%s]\n",
			a.Name, a.Paper, a.Model, a.Unit, a.Deviation(), status); err != nil {
			return err
		}
	}

	// Section 3 contrast.
	if err := p("\nSection 3 comparators on the SX-4/1 model:\n"); err != nil {
		return err
	}
	if err := p("  LINPACK n=100 %7.0f MFLOPS, n=1000 %7.0f MFLOPS (peak %.0f)\n",
		linpack.MFLOPS(m, 100), linpack.MFLOPS(m, 1000), m.Spec().PeakMFLOPSPerCPU); err != nil {
		return err
	}
	for _, r := range stream.Run(m) {
		if err := p("  STREAM %-6s %8.0f MB/s\n", r.Kernel, r.MBps); err != nil {
			return err
		}
	}
	if err := p("  NAS EP %7.0f MFLOPS, MG %7.0f MFLOPS\n",
		nas.EPMFLOPS(m, 1<<22), nas.MGMFLOPS(m, 128)); err != nil {
		return err
	}
	steps := hostHintSteps()
	if err := p("  HINT host bounds [%.6f, %.6f] around %.6f\n",
		steps[len(steps)-1].Lower, steps[len(steps)-1].Upper, hint.TrueArea); err != nil {
		return err
	}

	// Timing-cache characterization. The report must be byte-identical
	// no matter how many experiments shared m or in what order they ran,
	// so the counters come from a fresh probe machine (a cold Clone)
	// driven through a fixed workload twice — a deterministic cold/warm
	// contrast — rather than from m's live counters (figures -cachestats
	// prints those).
	probe := m.Clone()
	if counted, ok := probe.(interface{ CacheStats() target.CacheStats }); ok {
		RADABSMFlops(probe)
		cold := counted.CacheStats()
		RADABSMFlops(probe)
		warm := counted.CacheStats()
		if err := p("\nTiming cache (fresh probe, RADABS twice): cold pass %d misses %d hits; warm pass +%d hits +%d misses\n",
			cold.Misses, cold.Hits, warm.Hits-cold.Hits, warm.Misses-cold.Misses); err != nil {
			return err
		}
	}

	verdict := "all anchors within bands"
	if !allPass {
		verdict = "some anchors out of band — see EXPERIMENTS.md"
	}
	return p("\nVerdict: %s.\n", verdict)
}

var (
	hintOnce  sync.Once
	hintSteps []hint.Step
)

// hostHintSteps memoizes the host HINT sweep: the hierarchical-
// integration bounds are pure arithmetic on fixed subdivisions, so the
// 2000-step run is a constant of the process.
func hostHintSteps() []hint.Step {
	hintOnce.Do(func() { hintSteps = hint.Run(2000) })
	return hintSteps
}

func countPass(c CorrectnessResult) int {
	n := 0
	for _, e := range c.Elefunt {
		if e.Pass {
			n++
		}
	}
	return n
}

// ProfileTable renders the per-phase time breakdown of one CCM2 step —
// where the simulated machine spends its cycles at a resolution and
// processor count.
func ProfileTable(m target.Target, resName string, procs int) (core.Table, error) {
	res, err := ccm2.ResolutionByName(resName)
	if err != nil {
		return core.Table{}, err
	}
	r := ccm2.CompiledStepTrace(res).Run(m, target.RunOpts{Procs: procs, ActiveCPUs: procs})
	t := core.Table{
		ID:      "profile-" + resName,
		Title:   fmt.Sprintf("CCM2 %s step profile on %d CPUs", resName, procs),
		Headers: []string{"Phase", "ms", "% of step", "MFLOPS", "memory bound"},
	}
	var total float64
	for _, ph := range r.Phases {
		total += ph.Clocks
	}
	for _, ph := range r.Phases {
		secs := m.Spec().Seconds(ph.Clocks)
		mf := 0.0
		if secs > 0 {
			mf = float64(ph.Flops) / secs / 1e6
		}
		bound := ""
		if ph.MemBound {
			bound = "yes"
		}
		t.AddRow(ph.Name,
			fmt.Sprintf("%.2f", secs*1e3),
			fmt.Sprintf("%.1f%%", 100*ph.Clocks/total),
			fmt.Sprintf("%.0f", mf),
			bound)
	}
	t.AddRow("total", fmt.Sprintf("%.2f", r.Seconds*1e3), "100.0%",
		fmt.Sprintf("%.0f", r.MFLOPS()), "")
	return t, nil
}

// MultiNodeTable renders the IXS projection for a resolution.
func MultiNodeTable(m target.Target, resName string) (core.Table, error) {
	res, err := ccm2.ResolutionByName(resName)
	if err != nil {
		return core.Table{}, err
	}
	t := core.Table{
		ID:      "multinode-" + resName,
		Title:   fmt.Sprintf("CCM2 %s projected across SX-4/32 nodes (IXS)", resName),
		Headers: []string{"Nodes", "CPUs", "ms/step", "GFLOPS", "Efficiency"},
	}
	for _, r := range ccm2.MultiNodeSweep(m, res, 16) {
		t.AddRow(fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.TotalCPUs),
			fmt.Sprintf("%.2f", r.StepSeconds*1e3),
			fmt.Sprintf("%.1f", r.GFLOPS),
			fmt.Sprintf("%.0f%%", 100*r.Efficiency))
	}
	return t, nil
}
