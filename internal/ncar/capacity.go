package ncar

import (
	"fmt"

	"sx4bench/internal/core"
	"sx4bench/internal/fleet"
	"sx4bench/internal/target"
)

// CanonicalFleetSpec is the fleet the capacity artifact plans: two
// flagship SX-4/32 nodes backed by the strongest comparison machine,
// the heterogeneous cluster an NCAR-sized centre would actually run.
const CanonicalFleetSpec = "sx4-32x2,c90"

// CanonicalCapacityScenarios sizes the golden-pinned Monte Carlo: 24
// scenarios cover every canonical mix with both full and degraded
// fleets (the scenario derivation rotates mixes mod 3 and degrades
// every fourth draw) while keeping the artifact render fast.
const CanonicalCapacityScenarios = 24

// capacityEngine is the package-level Monte Carlo engine: its
// per-scenario memo is shared by every artifact render, CLI query and
// benchmark column in the process, so repeated capacity questions
// against overlapping scenario sets re-simulate nothing.
var capacityEngine fleet.Engine

// CapacityEngineStats exposes the shared engine's memo counters (the
// sx4d /v1/stats surface).
func CapacityEngineStats() target.FPCacheStats { return capacityEngine.Stats() }

// CapacityReport runs (or replays from the memo) a capacity Monte
// Carlo: `scenarios` week-long draws over the fleet described by spec,
// under the canonical workload mixes, seeded by seed. workers follows
// the repo convention (0 = GOMAXPROCS, 1 = serial); the report is
// byte-identical for every worker count.
func CapacityReport(spec string, scenarios int, seed int64, workers int) (fleet.Report, error) {
	nodes, err := fleet.ParseSpec(spec)
	if err != nil {
		return fleet.Report{}, fmt.Errorf("ncar: capacity: %w", err)
	}
	cfg := fleet.Config{
		Nodes:     nodes,
		Mixes:     fleet.CanonicalMixes(),
		Scenarios: scenarios,
		Seed:      seed,
	}
	rep, err := capacityEngine.MonteCarlo(cfg, workers)
	if err != nil {
		return fleet.Report{}, fmt.Errorf("ncar: capacity: %w", err)
	}
	return rep, nil
}

// CapacityTableFor renders one capacity Monte Carlo as a table: a row
// per workload mix (medians across scenarios of the per-scenario
// nearest-rank latency percentiles, makespan medians and maxima, and
// the recovery accounting) plus a fleet-wide total row. The report
// checksum rides in the title, so the golden pins the full
// per-scenario result stream, not just the summaries.
func CapacityTableFor(spec string, scenarios int, seed int64, workers int) (core.Table, error) {
	rep, err := CapacityReport(spec, scenarios, seed, workers)
	if err != nil {
		return core.Table{}, err
	}
	t := core.Table{
		ID: "capacity",
		Title: fmt.Sprintf("Fleet capacity planning: %s, %d week-long scenarios, seed %d (checksum %016x)",
			spec, scenarios, seed, rep.Checksum),
		Headers: []string{
			"Mix", "Pattern", "Scen", "Degr", "Jobs",
			"p50 s", "p95 s", "p99 s", "Mkspan p50 h", "Mkspan max h",
			"Recovered", "Failed", "Lost",
		},
	}
	var total fleet.MixSummary
	for _, ms := range rep.Mixes {
		t.Rows = append(t.Rows, []string{
			ms.Mix,
			ms.Pattern,
			fmt.Sprintf("%d", ms.Scenarios),
			fmt.Sprintf("%d", ms.Degraded),
			fmt.Sprintf("%d", ms.Jobs),
			core.Fixed(ms.P50, 1),
			core.Fixed(ms.P95, 1),
			core.Fixed(ms.P99, 1),
			core.Fixed(ms.MakespanP50/3600, 2),
			core.Fixed(ms.MakespanMax/3600, 2),
			fmt.Sprintf("%d", ms.Recovered),
			fmt.Sprintf("%d", ms.Failed),
			fmt.Sprintf("%d", ms.Lost),
		})
		total.Scenarios += ms.Scenarios
		total.Degraded += ms.Degraded
		total.Jobs += ms.Jobs
		total.Recovered += ms.Recovered
		total.Failed += ms.Failed
		total.Lost += ms.Lost
		if ms.MakespanMax > total.MakespanMax {
			total.MakespanMax = ms.MakespanMax
		}
	}
	t.Rows = append(t.Rows, []string{
		"all", "-",
		fmt.Sprintf("%d", total.Scenarios),
		fmt.Sprintf("%d", total.Degraded),
		fmt.Sprintf("%d", total.Jobs),
		"-", "-", "-",
		"-",
		core.Fixed(total.MakespanMax/3600, 2),
		fmt.Sprintf("%d", total.Recovered),
		fmt.Sprintf("%d", total.Failed),
		fmt.Sprintf("%d", total.Lost),
	})
	return t, nil
}

// CapacityTable renders the canonical golden-pinned capacity artifact.
func CapacityTable() (core.Table, error) {
	return CapacityTableFor(CanonicalFleetSpec, CanonicalCapacityScenarios, fleet.DefaultSeed, 0)
}
