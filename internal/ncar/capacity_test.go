package ncar

import (
	"strings"
	"testing"

	"sx4bench/internal/core"
)

func renderCapacity(t *testing.T, workers int) string {
	t.Helper()
	tab, err := CapacityTableFor(CanonicalFleetSpec, CanonicalCapacityScenarios, 1996, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := core.WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCapacityTableWorkerInvariant(t *testing.T) {
	// The golden acceptance bar: the rendered capacity table is
	// byte-identical at every worker count.
	serial := renderCapacity(t, 1)
	for _, workers := range []int{4, 8, 0} {
		if got := renderCapacity(t, workers); got != serial {
			t.Fatalf("capacity table differs at %d workers:\n%s\nvs serial:\n%s", workers, got, serial)
		}
	}
}

func TestCapacityTableShape(t *testing.T) {
	tab, err := CapacityTable()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "capacity" {
		t.Errorf("table ID = %q", tab.ID)
	}
	// Three canonical mixes plus the fleet-wide total row.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if got := tab.Rows[3][0]; got != "all" {
		t.Errorf("last row is %q, want the total row", got)
	}
	if !strings.Contains(tab.Title, "checksum") {
		t.Error("title lost the report checksum — the golden would no longer pin per-scenario results")
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Errorf("row %d has %d cells for %d headers", i, len(row), len(tab.Headers))
		}
		if lost := row[len(row)-1]; lost != "0" {
			t.Errorf("row %d lost %s jobs; the no-lost-jobs invariant must hold in the artifact", i, lost)
		}
	}
}

func TestCapacityReportSharedMemoAccumulates(t *testing.T) {
	before := CapacityEngineStats()
	if _, err := CapacityReport(CanonicalFleetSpec, 8, 1996, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := CapacityReport(CanonicalFleetSpec, 8, 1996, 0); err != nil {
		t.Fatal(err)
	}
	after := CapacityEngineStats()
	if after.Hits < before.Hits+8 {
		t.Errorf("repeat capacity query did not ride the shared memo: %+v -> %+v", before, after)
	}
}

func TestCapacityReportRejectsBadSpec(t *testing.T) {
	if _, err := CapacityReport("nosuchmachine", 4, 1996, 1); err == nil {
		t.Error("unknown fleet spec accepted")
	}
}
