// Package ncar assembles the NCAR Benchmark Suite: thirteen kernels and
// three complete geophysical applications in seven categories, together
// with the runners that regenerate every table and figure of the paper.
// This is the top of the library: everything below (the SX-4 machine
// model, the numerical substrates, the OS model) plugs in here.
package ncar

import (
	"fmt"
	"sync"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/core"
	"sx4bench/internal/core/sched"
	"sx4bench/internal/elefunt"
	"sx4bench/internal/fftpack"
	"sx4bench/internal/hint"
	"sx4bench/internal/iobench"
	"sx4bench/internal/kernels"
	"sx4bench/internal/mom"
	"sx4bench/internal/paranoia"
	"sx4bench/internal/pop"
	"sx4bench/internal/prodload"
	"sx4bench/internal/radabs"
	"sx4bench/internal/sx4/iop"
	"sx4bench/internal/target"
)

// Category is one of the suite's seven benchmark groups.
type Category int

const (
	Correctness Category = iota
	MemoryBandwidth
	CodingStyle
	RawPerformance
	InputOutput
	ProductionMix
	Applications
)

var categoryNames = [...]string{
	"correctness of arithmetic and intrinsics",
	"memory bandwidth",
	"coding style comparison",
	"raw performance",
	"I/O to disk system and network",
	"production mix",
	"complete applications",
}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Benchmark describes one suite member.
type Benchmark struct {
	Name        string
	Category    Category
	Description string
	// KTries is the repetition count; the best time is reported. The
	// paper used 20 for the kernels and 5 for VFFT ("a matter of
	// expedience").
	KTries int
}

// Suite returns the sixteen benchmarks in the paper's order.
func Suite() []Benchmark {
	return []Benchmark{
		{"PARANOIA", Correctness, "arithmetic operation test", 1},
		{"ELEFUNT", Correctness, "elementary function test", 1},
		{"COPY", MemoryBandwidth, "memory to memory", 20},
		{"IA", MemoryBandwidth, "indirect addressing speed", 20},
		{"XPOSE", MemoryBandwidth, "array transpose", 20},
		{"RFFT", CodingStyle, `"scalar" FFT`, 20},
		{"VFFT", CodingStyle, `"vectorized" FFT`, 5},
		{"RADABS", RawPerformance, "processor performance", 20},
		{"IO", InputOutput, "memory to disk", 1},
		{"HIPPI", InputOutput, "HIPPI throughput", 1},
		{"NETWORK", InputOutput, "external network evaluation", 1},
		{"PRODLOAD", ProductionMix, "simulated production job load", 1},
		{"CCM2", Applications, "global climate model", 1},
		{"MOM", Applications, "F77 ocean model", 1},
		{"POP", Applications, "F90 ocean model", 1},
	}
}

// ByName returns a suite member.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("ncar: no benchmark %q in the suite", name)
}

// DefaultNoise is the simulated system jitter the KTRIES rule smooths.
func DefaultNoise() *core.Noise { return core.NewNoise(0.03, 1996) }

// --- Tables ---

// Table1 regenerates the HINT-vs-RADABS comparison across the four
// comparison systems.
func Table1() core.Table {
	t := core.Table{
		ID:      "table1",
		Title:   `Comparison of the "MQUIPS" metric and the Mflops measurement from RADABS`,
		Headers: []string{"Benchmark", "SUN SPARC20", "IBM RS6K 590", "CRI J90", "CRI YMP"},
	}
	// The four comparison systems in the paper's Table 1 column
	// order, resolved through the machine registry so this layer
	// never names a concrete model type.
	targets := make([]target.Target, 0, 4)
	for _, name := range []string{"sparc20", "rs6000", "j90", "ymp"} {
		targets = append(targets, mustSharedTarget(name))
	}
	hintRow := []string{"HINT (MQUIPS)"}
	radRow := []string{"RADABS (MFLOPS)"}
	p := radabsTrace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	for _, tgt := range targets {
		hintRow = append(hintRow, fmt.Sprintf("%.1f", hint.ModelMQUIPS(tgt.Scalar())))
		r := p.Run(tgt, target.RunOpts{Procs: 1})
		radRow = append(radRow, fmt.Sprintf("%.1f", r.MFLOPS()))
	}
	t.Rows = [][]string{hintRow, radRow}
	return t
}

// Table2 renders the benchmarked system's specifications.
func Table2() core.Table {
	c := mustSharedTarget("sx4-32").Spec()
	t := core.Table{
		ID:      "table2",
		Title:   "Specifications of the NEC SX-4/32 system used for the benchmarks",
		Headers: []string{"Item", "Value"},
	}
	// The paper's Table 2 lists the design-point (8.0 ns) peak numbers
	// even though the benchmarked clock was 9.2 ns.
	t.AddRow("Clock Rate", fmt.Sprintf("%.1f ns", c.ClockNS))
	t.AddRow("Peak FLOP Rate Per Processor", fmt.Sprintf("%.0f GFLOPS", float64(2*c.VectorPipes)/8.0))
	t.AddRow("Peak Memory Bandwidth", fmt.Sprintf("%.0f GB/sec/proc", float64(c.PortWordsPerClock*8)/8.0))
	t.AddRow("Disk Capacity", fmt.Sprintf("%.0f GB", c.DiskCapacityGB))
	t.AddRow("Main Memory", fmt.Sprintf("%.0f GB", c.MainMemoryGB))
	t.AddRow("Extended Memory", fmt.Sprintf("%.0f GB", c.XMUGB))
	t.AddRow("Cooling", "air cooled")
	t.AddRow("Power Consumption", fmt.Sprintf("%.1f KVA", c.PowerKVA))
	return t
}

// Table3 regenerates the ELEFUNT intrinsic rates on the SX-4/1.
func Table3(m target.Target) core.Table {
	t := core.Table{
		ID:      "table3",
		Title:   "Single processor 64-bit intrinsic rates (millions of calls per second)",
		Headers: append([]string{"Function"}, elefunt.Functions...),
	}
	const n = 1 << 20
	row := []string{"Mcalls/s"}
	for _, fn := range elefunt.Functions {
		r := m.Run(elefunt.PerfTrace(fn, n), target.RunOpts{Procs: 1})
		row = append(row, fmt.Sprintf("%.1f", float64(elefunt.PerfCalls(n))/r.Seconds/1e6))
	}
	t.Rows = [][]string{row}
	return t
}

// Table4 renders the CCM2 resolution table.
func Table4() core.Table {
	t := core.Table{
		ID:      "table4",
		Title:   "Typical CCM2 resolutions, grid spacings, and time steps",
		Headers: []string{"Model Resolution", "Horizontal Grid Size", "Nominal Grid Spacing", "Time Step"},
	}
	for _, r := range ccm2.Resolutions {
		t.AddRow(r.Name,
			fmt.Sprintf("%d x %d", r.NLat, r.NLon),
			fmt.Sprintf("%.1f degrees", r.GridSpacingDeg),
			fmt.Sprintf("%.1f min.", r.TimeStepMin))
	}
	return t
}

// Table5 regenerates the one-year simulation times.
func Table5(m target.Target) core.Table {
	t := core.Table{
		ID:      "table5",
		Title:   "Time in seconds to simulate one year of climate",
		Headers: []string{"Resolution", "Time"},
	}
	for _, name := range []string{"T42L18", "T63L18"} {
		res, _ := ccm2.ResolutionByName(name)
		_, _, total := ccm2.YearSim(m, res, m.Spec().CPUs)
		t.AddRow(name, fmt.Sprintf("%.2f", total))
	}
	return t
}

// Table6 regenerates the ensemble test.
func Table6(m target.Target) core.Table {
	r := ccm2.EnsembleTest(m)
	t := core.Table{
		ID:      "table6",
		Title:   "Single and multiple instance times for the ensemble test",
		Headers: []string{"Run", "Seconds"},
	}
	t.AddRow("single 4-CPU instance", fmt.Sprintf("%.2f", r.SingleSeconds))
	t.AddRow("eight 4-CPU instances", fmt.Sprintf("%.2f", r.MultipleSeconds))
	t.AddRow("relative degradation", fmt.Sprintf("%.2f%%", r.DegradationPct))
	return t
}

// Table7 regenerates the MOM scalability table.
func Table7(m target.Target) core.Table {
	t := core.Table{
		ID:      "table7",
		Title:   "MOM Ocean Model benchmark performance (350 time steps)",
		Headers: []string{"CPUs", "Time for 350 time steps", "Speedup"},
	}
	t1 := mom.Benchmark350(m, 1)
	for _, p := range mom.Table7CPUCounts {
		tp := mom.Benchmark350(m, p)
		t.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%.2f", tp), fmt.Sprintf("%.2f", t1/tp))
	}
	return t
}

// --- Figures ---

// sweepPoints measures one figure curve in parallel: point i of the
// sweep draws jitter from noise.Stream(base+i), so the values are
// identical no matter how many workers run the sweep or in which order
// the points complete.
func sweepPoints(m target.Target, n int, noise *core.Noise, base int64,
	point func(i int, stream *core.Noise) core.Point) core.Series {
	pts, _ := sched.Map(0, n, func(i int) (core.Point, error) {
		return point(i, noise.Stream(base+int64(i))), nil
	})
	return core.Series{Points: pts}
}

// Fig5 regenerates the memory-bandwidth sweeps (COPY, IA, XPOSE) on a
// single processor, KTRIES best-of-k under jitter.
func Fig5(m target.Target, perDecade int) core.Figure {
	noise := DefaultNoise()
	f := core.Figure{
		ID:     "fig5",
		Title:  "Measured memory bandwidth for three memory benchmarks (SX-4/1)",
		XLabel: "axis length N",
		YLabel: "MB/sec",
	}
	copyKs := kernels.CopySweep(perDecade)
	copySeries := sweepPoints(m, len(copyKs), noise, 0, func(i int, s *core.Noise) core.Point {
		k := copyKs[i]
		meas := core.RunCompiled(m, copyTrace(k), target.RunOpts{Procs: 1}, 20, s, k.PayloadBytes())
		return core.Point{X: float64(k.N), Y: meas.MBps()}
	})
	copySeries.Label = "COPY"
	iaKs := kernels.IASweep(perDecade)
	iaSeries := sweepPoints(m, len(iaKs), noise, 1000, func(i int, s *core.Noise) core.Point {
		k := iaKs[i]
		meas := core.RunCompiled(m, iaTrace(k), target.RunOpts{Procs: 1}, 20, s, k.PayloadBytes())
		return core.Point{X: float64(k.N), Y: meas.MBps()}
	})
	iaSeries.Label = "IA"
	xpKs := kernels.XposeSweep(perDecade)
	xpSeries := sweepPoints(m, len(xpKs), noise, 2000, func(i int, s *core.Noise) core.Point {
		k := xpKs[i]
		meas := core.RunCompiled(m, xposeTrace(k), target.RunOpts{Procs: 1}, 20, s, k.PayloadBytes())
		return core.Point{X: float64(k.N), Y: meas.MBps()}
	})
	xpSeries.Label = "XPOSE"
	f.Series = []core.Series{copySeries, iaSeries, xpSeries}
	return f
}

// Fig6 regenerates the RFFT performance curves (three length families).
func Fig6(m target.Target) core.Figure {
	noise := DefaultNoise()
	f := core.Figure{
		ID:     "fig6",
		Title:  "RFFT benchmark on the SX-4/1",
		XLabel: "FFT length N",
		YLabel: "MFLOPS",
	}
	rfftLengths := fftpack.RFFTLengths()
	for fi, fam := range []string{"2^n", "3*2^n", "5*2^n"} {
		lengths := rfftLengths[fam]
		s := sweepPoints(m, len(lengths), noise, int64(1000*fi), func(i int, st *core.Noise) core.Point {
			n := lengths[i]
			mm := fftpack.RFFTInstances(n)
			meas := core.RunCompiled(m, rfftTrace(n, mm), target.RunOpts{Procs: 1}, 20, st, 0)
			return core.Point{X: float64(n), Y: fftpack.NominalMFLOPS(n, mm, meas.Seconds)}
		})
		s.Label = fam
		f.Series = append(f.Series, s)
	}
	return f
}

// Fig7 regenerates the VFFT performance curves: for each length family
// the curve at the largest instance count, plus the M sweep at N=256.
func Fig7(m target.Target) core.Figure {
	noise := DefaultNoise()
	f := core.Figure{
		ID:     "fig7",
		Title:  "VFFT benchmark on the SX-4/1",
		XLabel: "FFT length N",
		YLabel: "MFLOPS",
	}
	vfftLengths := fftpack.VFFTLengths()
	for fi, fam := range []string{"2^n", "3*2^n", "5*2^n"} {
		lengths := vfftLengths[fam]
		s := sweepPoints(m, len(lengths), noise, int64(1000*fi), func(i int, st *core.Noise) core.Point {
			n := lengths[i]
			meas := core.RunCompiled(m, vfftTrace(n, 500), target.RunOpts{Procs: 1}, 5, st, 0)
			return core.Point{X: float64(n), Y: fftpack.NominalMFLOPS(n, 500, meas.Seconds)}
		})
		s.Label = fam + " (M=500)"
		f.Series = append(f.Series, s)
	}
	sweep := sweepPoints(m, len(fftpack.VFFTInstanceCounts), noise, 3000, func(i int, st *core.Noise) core.Point {
		mm := fftpack.VFFTInstanceCounts[i]
		meas := core.RunCompiled(m, vfftTrace(256, mm), target.RunOpts{Procs: 1}, 5, st, 0)
		return core.Point{X: float64(mm), Y: fftpack.NominalMFLOPS(256, mm, meas.Seconds)}
	})
	sweep.Label = "N=256, M sweep"
	f.Series = append(f.Series, sweep)
	return f
}

// Fig8 regenerates the CCM2 scalability figure: sustained GFLOPS versus
// processor count for T42, T106 and T170.
func Fig8(m target.Target) core.Figure {
	f := core.Figure{
		ID:     "fig8",
		Title:  "CCM2 performance vs. processors (Cray-equivalent GFLOPS)",
		XLabel: "processors",
		YLabel: "GFLOPS",
	}
	for _, name := range []string{"T42L18", "T106L18", "T170L18"} {
		res, _ := ccm2.ResolutionByName(name)
		s := core.Series{Label: name}
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			s.Append(float64(p), ccm2.SustainedGFLOPS(m, res, p))
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// --- Scalar results ---

// RADABSMFlops returns the single-CPU RADABS rate (paper: 865.9).
func RADABSMFlops(m target.Target) float64 {
	p := radabsTrace(radabs.BenchmarkColumns, radabs.DefaultLevels)
	return p.Run(m, target.RunOpts{Procs: 1}).MFLOPS()
}

// POPMFlops returns the single-CPU 2-degree POP rate (paper: 537).
func POPMFlops(m target.Target) float64 { return pop.SustainedMFLOPS(m) }

// Prodload runs the production-mix benchmark (paper: 93 m 28 s).
func Prodload(m target.Target) prodload.Result { return prodload.Run(m) }

// CorrectnessReport runs PARANOIA and ELEFUNT on the host arithmetic.
type CorrectnessResult struct {
	Paranoia paranoia.Report
	Elefunt  []elefunt.Result
	Pass     bool
}

var (
	correctnessOnce   sync.Once
	correctnessResult CorrectnessResult
)

// RunCorrectness executes the correctness category. PARANOIA and
// ELEFUNT probe the host's floating-point arithmetic with fixed seeds,
// so their verdict is a constant of the process; the (expensive) probe
// runs once and every later call — the correctness experiment, the
// report, repeated RunAll passes — returns the memoized result.
func RunCorrectness() CorrectnessResult {
	correctnessOnce.Do(func() {
		p := paranoia.Run()
		e := elefunt.RunAll()
		correctnessResult = CorrectnessResult{
			Paranoia: p,
			Elefunt:  e,
			Pass:     p.Pass() && elefunt.AllPass(e),
		}
	})
	return correctnessResult
}

// IOCategory runs the disk, HIPPI and network benchmarks.
type IOCategoryResult struct {
	History    []iobench.HistoryWrite
	HIPPI      []iobench.HIPPIPoint
	Network    []iobench.NetResult
	Concurrent []iobench.ConcurrentIOResult
}

// RunIOCategory executes the I/O category on the node's subsystem.
func RunIOCategory() IOCategoryResult {
	sub := iop.New()
	t63, _ := ccm2.ResolutionByName("T63L18")
	var conc []iobench.ConcurrentIOResult
	for _, writers := range []int{1, 4, 16, 32} {
		conc = append(conc, iobench.ConcurrentHistoryWrite(sub, t63, writers))
	}
	return IOCategoryResult{
		History:    iobench.IOSweep(sub.DiskArray),
		HIPPI:      iobench.HIPPISweep(sub, 256<<20),
		Network:    iobench.RunNetwork(iobench.NewFDDI(), iobench.StandardScript()),
		Concurrent: conc,
	}
}
