package ncar

// Model registration is the linking binary's job under the registry
// pattern: the facade imports internal/machine, which registers every
// Table 1 comparator and SX-4 configuration in its init. This package
// itself must not import the concrete models (the sx4lint layering
// analyzer enforces that), so the test binary links them here.
import _ "sx4bench/internal/machine"
