package ncar

import (
	"errors"
	"fmt"
	"math"

	"sx4bench/internal/core"
	"sx4bench/internal/fault"
	"sx4bench/internal/superux"
	"sx4bench/internal/target"
)

// ResilienceMachines are the registry names the resilience artifact
// sweeps: both SX-4 configurations plus the C90, the strongest
// comparison machine — enough to show the same canonical fault
// schedule taking a uniprocessor down, a 32-CPU node degrading
// gracefully, and the makespan cost varying with machine speed.
var ResilienceMachines = []string{"sx4-1", "sx4-32", "c90"}

// resilienceWorks is the fixed batch workload (MFLOP of work per job)
// behind the makespan columns; CPU requests vary so the schedule
// exercises both resource blocks.
var resilienceWorks = []struct {
	work float64 // MFLOP
	cpus int
}{
	{20000, 4}, {35000, 8}, {15000, 2}, {50000, 8},
	{25000, 4}, {40000, 6}, {10000, 2}, {30000, 4},
}

// resilienceSystem builds the two-block SUPER-UX instance the
// resilience workload runs on.
func resilienceSystem() *superux.System {
	return superux.NewSystem(
		superux.ResourceBlock{Name: "batch", MaxCPUs: 8, MemGB: 64, Policy: superux.FIFO},
		superux.ResourceBlock{Name: "backup", MaxCPUs: 8, MemGB: 64, Policy: superux.FIFO},
	)
}

// resilienceMakespan runs the fixed workload at the machine's RADABS
// rate under the given schedule and reports the accounting.
func resilienceMakespan(mflops float64, inj fault.Injector) (makespan float64, recovered, failed, lost int) {
	s := resilienceSystem()
	s.SetInjector(inj)
	for _, j := range resilienceWorks {
		s.Submit(superux.Job{
			Name: "work", Block: "batch", CPUs: j.cpus, MemGB: 4,
			Seconds: j.work / mflops,
		})
	}
	makespan = s.Advance()
	recovered, failed, lost = s.Tally()
	return makespan, recovered, failed, lost
}

// ResilienceTable reports, per machine, the graceful-degradation and
// recovery behaviour under a fault schedule: the RADABS rate healthy
// and in the schedule's end-state degraded mode, and the SUPER-UX
// makespan of a fixed batch workload fault-free versus faulted, with
// the recovered/failed/lost job accounting. A machine the schedule
// leaves with no surviving CPU reads "down". With a nil injector the
// faulted columns equal the healthy ones — the fault-free identity.
func ResilienceTable(inj fault.Injector) (core.Table, error) {
	t := core.Table{
		ID:    "resilience",
		Title: "Resilience under the canonical fault schedule (RADABS MFLOPS, fixed batch workload)",
		Headers: []string{
			"Machine", "MFLOPS", "MFLOPS degr", "Slowdown",
			"Makespan s", "Faulted s", "Recovered", "Failed", "Lost",
		},
	}
	var end fault.Degradation
	if inj != nil {
		end = inj.DegradationAt(math.Inf(1))
	}
	for _, name := range ResilienceMachines {
		tgt, err := sharedTarget(name)
		if err != nil {
			return core.Table{}, fmt.Errorf("ncar: resilience sweep: %w", err)
		}
		healthy := RADABSMFlops(tgt)
		healthyMakespan, _, _, _ := resilienceMakespan(healthy, nil)
		faultedMakespan, recovered, failed, lost := resilienceMakespan(healthy, inj)

		degradedCell, slowdownCell := "down", "down"
		dt, err := target.Degrade(tgt, end)
		switch {
		case errors.Is(err, target.ErrMachineDown):
			// The schedule killed the machine's last CPU; the degraded
			// columns read "down" rather than a rate.
		case err != nil:
			return core.Table{}, fmt.Errorf("ncar: resilience sweep: %s: %w", name, err)
		default:
			degraded := RADABSMFlops(dt)
			degradedCell = core.Fixed(degraded, 1)
			slowdownCell = core.Fixed(healthy/degraded, 2) + "x"
		}
		t.Rows = append(t.Rows, []string{
			tgt.Name(),
			core.Fixed(healthy, 1),
			degradedCell,
			slowdownCell,
			core.Fixed(healthyMakespan, 2),
			core.Fixed(faultedMakespan, 2),
			fmt.Sprintf("%d", recovered),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%d", lost),
		})
	}
	return t, nil
}