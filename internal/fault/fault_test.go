package fault

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 100, 16)
	b := NewPlan(42, 100, 16)
	if len(a.Events) != 16 || len(b.Events) != 16 {
		t.Fatalf("want 16 events, got %d and %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs across identical seeds: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	c := NewPlan(43, 100, 16)
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestNewPlanSortedAndInHorizon(t *testing.T) {
	p := NewPlan(7, 50, 40)
	if !sort.SliceIsSorted(p.Events, func(a, b int) bool { return p.Events[a].At < p.Events[b].At }) {
		t.Error("events not sorted by delivery time")
	}
	for _, e := range p.Events {
		if e.At < 0 || e.At >= 50 {
			t.Errorf("event time %v outside [0, 50)", e.At)
		}
		if e.Kind >= numKinds {
			t.Errorf("event kind %d out of range", e.Kind)
		}
	}
}

func TestNewPlanDegenerate(t *testing.T) {
	for _, p := range []*Plan{NewPlan(1, 0, 5), NewPlan(1, 10, 0), NewPlan(1, -3, -1)} {
		if !p.Empty() {
			t.Errorf("degenerate plan not empty: %+v", p)
		}
	}
}

func TestNilPlanIsFaultFree(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan not empty")
	}
	if got := p.Window(0, math.Inf(1)); got != nil {
		t.Errorf("nil plan window = %v", got)
	}
	if d := p.DegradationAt(math.Inf(1)); !d.IsZero() {
		t.Errorf("nil plan degradation = %v", d)
	}
}

func TestWindowHalfOpen(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 1, Kind: CPUFail}, {At: 2, Kind: JobKill}, {At: 3, Kind: IOPStall},
	}}
	got := p.Window(1, 3)
	if len(got) != 2 || got[0].At != 1 || got[1].At != 2 {
		t.Errorf("Window(1,3) = %v, want the events at 1 and 2", got)
	}
	if got := p.Window(3.5, 10); len(got) != 0 {
		t.Errorf("Window(3.5,10) = %v, want empty", got)
	}
}

func TestDegradationAccumulates(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 1, Kind: CPUFail},
		{At: 2, Kind: BankDegrade},
		{At: 3, Kind: IOPStall},
		{At: 4, Kind: JobKill},
		{At: 5, Kind: CPUFail},
	}}
	if d := p.DegradationAt(0.5); !d.IsZero() {
		t.Errorf("degradation before first event = %v", d)
	}
	d := p.DegradationAt(4.5)
	want := Degradation{CPUsLost: 1, BankHalvings: 1, PortHalvings: 1, IOPsStalled: 1}
	if d != want {
		t.Errorf("DegradationAt(4.5) = %+v, want %+v", d, want)
	}
	if d := p.DegradationAt(100); d.CPUsLost != 2 {
		t.Errorf("CPUsLost at end = %d, want 2", d.CPUsLost)
	}
	// JobKill never degrades the machine.
	jk := &Plan{Events: []Event{{At: 1, Kind: JobKill}}}
	if d := jk.DegradationAt(10); !d.IsZero() {
		t.Errorf("JobKill degraded the machine: %v", d)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	p := Canonical()
	var buf strings.Builder
	if err := p.Format(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parsing formatted plan: %v\n%s", err, buf.String())
	}
	if len(back.Events) != len(p.Events) {
		t.Fatalf("round trip lost events: %d -> %d", len(p.Events), len(back.Events))
	}
	for i := range p.Events {
		if p.Events[i] != back.Events[i] {
			t.Errorf("event %d: %v -> %v", i, p.Events[i], back.Events[i])
		}
	}
}

func TestParseCommentsAndSorting(t *testing.T) {
	in := `
# a fault scenario
20 jobkill 3

1.5 cpufail 0
# trailing comment
5 bankdegrade 1
`
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 3 {
		t.Fatalf("want 3 events, got %d", len(p.Events))
	}
	if p.Events[0].Kind != CPUFail || p.Events[1].Kind != BankDegrade || p.Events[2].Kind != JobKill {
		t.Errorf("events not sorted by time: %v", p.Events)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"too few fields", "1.0 cpufail"},
		{"bad time", "abc cpufail 0"},
		{"negative time", "-1 cpufail 0"},
		{"nan time", "NaN cpufail 0"},
		{"unknown kind", "1 meltdown 0"},
		{"bad unit", "1 cpufail x"},
		{"negative unit", "1 cpufail -2"},
	} {
		if _, err := Parse(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.in)
		}
	}
}

func TestCanonicalPlanShape(t *testing.T) {
	p := Canonical()
	if p.Empty() {
		t.Fatal("canonical plan is empty")
	}
	if len(p.Events) != CanonicalEvents {
		t.Fatalf("canonical plan has %d events, want %d", len(p.Events), CanonicalEvents)
	}
	// The canonical scenario must exercise both the scheduler (block
	// failures or job kills) and the machine degradation modes; the
	// resilience golden depends on this mix.
	kinds := map[Kind]int{}
	for _, e := range p.Events {
		kinds[e.Kind]++
	}
	if kinds[CPUFail]+kinds[JobKill] == 0 {
		t.Error("canonical plan schedules no scheduler-visible fault")
	}
	if kinds[CPUFail]+kinds[BankDegrade]+kinds[IOPStall] == 0 {
		t.Error("canonical plan schedules no machine degradation")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		back, err := KindByName(k.String())
		if err != nil || back != k {
			t.Errorf("kind %d: name %q round-tripped to %v, %v", k, k.String(), back, err)
		}
	}
	if _, err := KindByName("nosuch"); err == nil {
		t.Error("KindByName accepted an unknown name")
	}
}
