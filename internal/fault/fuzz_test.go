package fault

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFaultPlanParse pins the schedule-file syntax down from both
// sides: Parse never panics on arbitrary text, every accepted schedule
// satisfies the Plan invariants (sorted, finite, non-negative), and
// the Format/Parse pair is an exact round trip — the text form is a
// faithful serialization, so a schedule shipped between ncarbench and
// sx4d survives byte-for-byte.
func FuzzFaultPlanParse(f *testing.F) {
	var canonical bytes.Buffer
	if err := Canonical().Format(&canonical); err != nil {
		f.Fatal(err)
	}
	f.Add(canonical.String())
	var node bytes.Buffer
	if err := NewNodePlan(1996, 2, 604800, 6).Format(&node); err != nil {
		f.Fatal(err)
	}
	f.Add(node.String())
	f.Add("# comment only\n\n12.5 cpufail 3\n")
	f.Add("3 jobkill 0\n1 bankdegrade 7\n2 iopstall 1\n") // unsorted input
	f.Add("nonsense line\n")
	f.Add("-1 cpufail 0\n")
	f.Add("1e301 cpufail 0\n")
	f.Add("5 cpufail -2\n")
	f.Add("NaN jobkill 1\n")
	f.Add("1 cpufail 1 extra\n")

	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(strings.NewReader(text))
		if err != nil {
			return // rejection is fine; panicking or accepting garbage is not
		}
		for i, e := range p.Events {
			if e.At < 0 || e.At != e.At || e.At > 1e300 {
				t.Fatalf("accepted event with invalid time: %v", e)
			}
			if e.Unit < 0 {
				t.Fatalf("accepted event with negative unit: %v", e)
			}
			if int(e.Kind) >= int(numKinds) {
				t.Fatalf("accepted event with unknown kind: %v", e)
			}
			if i > 0 && p.Events[i-1].At > e.At {
				t.Fatalf("parsed schedule unsorted at %d: %v after %v", i, e, p.Events[i-1])
			}
		}
		var out bytes.Buffer
		if err := p.Format(&out); err != nil {
			t.Fatalf("formatting an accepted plan failed: %v", err)
		}
		q, err := Parse(&out)
		if err != nil {
			t.Fatalf("re-parsing Format output failed: %v\n%s", err, out.String())
		}
		if len(p.Events) != len(q.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(p.Events), len(q.Events))
		}
		for i := range p.Events {
			if p.Events[i] != q.Events[i] {
				t.Fatalf("round trip changed event %d: %v -> %v", i, p.Events[i], q.Events[i])
			}
		}
	})
}
