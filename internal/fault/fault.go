// Package fault is the deterministic fault-injection vocabulary of the
// benchmark system: the schedule of component failures a production
// SX-4 must survive, expressed in simulated time so every layer above
// — the machine models, the SUPER-UX scheduler, the NCAR runners —
// can consume the same plan and produce byte-identical artifacts.
//
// The paper devotes Section 2.6 to SUPER-UX's operability features
// (Resource Blocks, transparent checkpoint/restart, node-level
// reconfiguration) precisely because CPUs, memory banks and IOPs
// misbehave in production. This package models the misbehaviour:
//
//   - an Event is one fault at a simulated timestamp — a processor
//     failure, a memory-bank degradation, an I/O-processor stall, or a
//     mid-job kill;
//   - a Plan is a seed-driven (SplitMix64) schedule of events, so a
//     whole failure scenario is reproduced from one integer;
//   - the Injector interface is how execution layers accept a plan: a
//     window query for the events inside a simulated interval, and the
//     cumulative machine Degradation in force at a time.
//
// A nil *Plan is the canonical "no faults" injector: every consumer
// treats it as an empty schedule, which is what pins the fault-free
// goldens byte-identical to a build without this package.
//
// The package is a leaf: it imports only the standard library, so the
// model layer, the OS model and the runners can all depend on it
// without cycles. All times are simulated seconds — never the host
// clock.
package fault

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// CPUFail removes one processor from service. The machine models
	// lose a CPU; the SUPER-UX scheduler loses the Resource Block the
	// processor backs and requeues its jobs on the survivors.
	CPUFail Kind = iota
	// BankDegrade drops half of the working memory banks (a failed
	// bank group is configured out, the paper's reconfiguration story).
	BankDegrade
	// IOPStall takes one I/O processor out of service.
	IOPStall
	// JobKill kills one running batch job mid-flight; SUPER-UX recovers
	// it from its transparent checkpoint.
	JobKill
	numKinds
)

var kindNames = [...]string{"cpufail", "bankdegrade", "iopstall", "jobkill"}

func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindByName resolves a schedule-file spelling to a Kind.
func KindByName(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == strings.ToLower(strings.TrimSpace(name)) {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault kind %q (known: %s)",
		name, strings.Join(kindNames[:], ", "))
}

// Event is one scheduled fault.
type Event struct {
	// At is the delivery time in simulated seconds from schedule start.
	At float64
	// Kind is the fault class.
	Kind Kind
	// Unit selects the afflicted component: a processor index for
	// CPUFail (the scheduler maps it onto a surviving Resource Block),
	// a running-job ordinal for JobKill, an IOP index for IOPStall.
	// Consumers reduce it modulo their component count.
	Unit int
}

func (e Event) String() string {
	return fmt.Sprintf("%s unit %d at %ss", e.Kind, e.Unit, strconv.FormatFloat(e.At, 'f', 2, 64))
}

// Degradation is the cumulative machine-level impact of the faults
// delivered so far: the graceful-degradation mode a reconfigured node
// runs in. The zero value means a healthy machine.
type Degradation struct {
	// CPUsLost counts failed processors.
	CPUsLost int
	// BankHalvings counts BankDegrade events; each halves the working
	// bank count.
	BankHalvings int
	// PortHalvings counts crossbar-port slowdowns; each halves the
	// per-CPU port width. (BankDegrade implies one: the surviving
	// banks sit behind fewer crossbar sections.)
	PortHalvings int
	// IOPsStalled counts stalled I/O processors.
	IOPsStalled int
}

// IsZero reports a healthy machine.
func (d Degradation) IsZero() bool { return d == Degradation{} }

func (d Degradation) String() string {
	if d.IsZero() {
		return "healthy"
	}
	return fmt.Sprintf("-%dcpu -%dbankhalf -%dporthalf -%diop",
		d.CPUsLost, d.BankHalvings, d.PortHalvings, d.IOPsStalled)
}

// Injector delivers a fault schedule to an execution layer. A Plan is
// the canonical implementation; layers accept the interface so tests
// can hand-craft schedules.
type Injector interface {
	// Window returns the events with At in the half-open interval
	// [from, to), in delivery order.
	Window(from, to float64) []Event
	// DegradationAt returns the cumulative machine degradation from
	// every event delivered at or before simulated time t.
	DegradationAt(t float64) Degradation
}

// Plan is a deterministic fault schedule: events sorted by delivery
// time. The zero value and the nil plan are both empty (fault-free).
type Plan struct {
	// Seed is the generating seed for seeded plans, zero for parsed or
	// hand-built ones; it is carried for labeling only.
	Seed int64
	// Events is the schedule in delivery order (ascending At, ties in
	// generation order).
	Events []Event
}

var _ Injector = (*Plan)(nil)

// Empty reports whether the plan schedules no faults. Nil-safe.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Window returns the events with At in [from, to). Nil-safe.
func (p *Plan) Window(from, to float64) []Event {
	if p == nil {
		return nil
	}
	var out []Event
	for _, e := range p.Events {
		if e.At >= from && e.At < to {
			out = append(out, e)
		}
	}
	return out
}

// DegradationAt accumulates the machine impact of every event with
// At <= t. Nil-safe.
func (p *Plan) DegradationAt(t float64) Degradation {
	var d Degradation
	if p == nil {
		return d
	}
	for _, e := range p.Events {
		if e.At > t {
			continue
		}
		switch e.Kind {
		case CPUFail:
			d.CPUsLost++
		case BankDegrade:
			// Configuring out a bank group also costs the crossbar
			// sections in front of it.
			d.BankHalvings++
			d.PortHalvings++
		case IOPStall:
			d.IOPsStalled++
		}
	}
	return d
}

// sortEvents fixes delivery order: ascending At, stable for ties.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
}

// splitmix64 is the SplitMix64 finalizer — the repo's standard
// seed-mixing primitive (core.Noise uses the same construction), kept
// local so this package stays a leaf.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewPlan derives a schedule of n faults over [0, horizon) seconds
// from a seed: a SplitMix64 stream supplies each event's time, kind
// and unit, so the whole scenario is a pure function of (seed,
// horizon, n) — identical across hosts, worker counts and runs.
func NewPlan(seed int64, horizon float64, n int) *Plan {
	if horizon <= 0 || n <= 0 {
		return &Plan{Seed: seed}
	}
	state := splitmix64(uint64(seed))
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return splitmix64(state)
	}
	p := &Plan{Seed: seed, Events: make([]Event, 0, n)}
	for i := 0; i < n; i++ {
		u := float64(next()>>11) / (1 << 53) // uniform in [0,1)
		p.Events = append(p.Events, Event{
			At:   u * horizon,
			Kind: Kind(next() % uint64(numKinds)),
			Unit: int(next() % 32),
		})
	}
	sortEvents(p.Events)
	return p
}

// The canonical fault scenario: the seeded plan behind the golden
// resilience artifact and the `make faults` smoke run. The seed is the
// paper's year; the horizon spans the resilience workload's makespan
// on the modeled machines.
const (
	CanonicalSeed    = 1996
	CanonicalHorizon = 300.0
	CanonicalEvents  = 8
)

// Canonical returns the canonical seeded plan.
func Canonical() *Plan { return NewPlan(CanonicalSeed, CanonicalHorizon, CanonicalEvents) }

// NodeSeed derives the node-th per-node fault seed from one fleet
// seed: a double SplitMix64 mix of (fleetSeed, node), so a whole
// fleet's failure scenario is reproduced from one integer while every
// node still draws an independent, well-spread schedule. The identity
// of existing single-node plans is untouched — NodeSeed never equals
// its input for the canonical scenarios, and NewPlan itself is
// unchanged, so the seed-1996 plan behind the resilience golden is
// byte-identical with or without a fleet above it.
func NodeSeed(fleetSeed int64, node int) int64 {
	// The (node+1)-th draw of the SplitMix64 stream seeded by the fleet
	// seed: jumping the state by node+1 golden-ratio increments is the
	// stream's native skip-ahead, and the asymmetric mix keeps
	// (fleet, node) pairs from aliasing each other the way a plain XOR
	// of the two halves would.
	return int64(splitmix64(splitmix64(uint64(fleetSeed)) + 0x9e3779b97f4a7c15*(uint64(node)+1)))
}

// NewNodePlan is the fleet form of NewPlan: the node-th schedule of a
// fleet-wide scenario, NewPlan evaluated at NodeSeed(fleetSeed, node).
func NewNodePlan(fleetSeed int64, node int, horizon float64, n int) *Plan {
	return NewPlan(NodeSeed(fleetSeed, node), horizon, n)
}

// Format writes the plan in the schedule-file syntax Parse reads: one
// "<at-seconds> <kind> <unit>" line per event.
func (p *Plan) Format(w io.Writer) error {
	if p == nil {
		return nil
	}
	for _, e := range p.Events {
		if _, err := fmt.Fprintf(w, "%s %s %d\n",
			strconv.FormatFloat(e.At, 'g', -1, 64), e.Kind, e.Unit); err != nil {
			return err
		}
	}
	return nil
}

// Parse reads a schedule file: one event per line as
// "<at-seconds> <kind> <unit>", with blank lines and #-comments
// ignored. Events need not be pre-sorted; delivery order is fixed to
// ascending time. Negative or non-finite times are rejected.
func Parse(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("fault: line %d: want \"<at> <kind> <unit>\", got %q", lineNo, line)
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || at < 0 || at != at || at > 1e300 {
			return nil, fmt.Errorf("fault: line %d: bad time %q", lineNo, fields[0])
		}
		kind, err := KindByName(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", lineNo, err)
		}
		unit, err := strconv.Atoi(fields[2])
		if err != nil || unit < 0 {
			return nil, fmt.Errorf("fault: line %d: bad unit %q", lineNo, fields[2])
		}
		p.Events = append(p.Events, Event{At: at, Kind: kind, Unit: unit})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	sortEvents(p.Events)
	return p, nil
}
