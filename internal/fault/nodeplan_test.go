package fault

import "testing"

func TestNodeSeedDeterministicAndSpread(t *testing.T) {
	if a, b := NodeSeed(1996, 3), NodeSeed(1996, 3); a != b {
		t.Fatalf("NodeSeed(1996,3) not deterministic: %d vs %d", a, b)
	}
	// Distinct nodes of one fleet, and the same node of distinct
	// fleets, must draw distinct seeds.
	seen := map[int64]string{}
	for fleet := int64(1); fleet <= 4; fleet++ {
		for node := 0; node < 8; node++ {
			s := NodeSeed(fleet, node)
			if prev, dup := seen[s]; dup {
				t.Fatalf("NodeSeed(%d,%d) collides with %s (seed %d)", fleet, node, prev, s)
			}
			seen[s] = "earlier (fleet,node)"
		}
	}
}

func TestNodeSeedNeverPerturbsCanonicalPlan(t *testing.T) {
	// The canonical single-node scenario must be unreachable from a
	// fleet derivation: no small fleet/node pair may alias seed 1996,
	// and Canonical() itself is a pure function of the untouched
	// NewPlan path.
	for fleet := int64(0); fleet <= 2048; fleet++ {
		for node := 0; node < 16; node++ {
			if NodeSeed(fleet, node) == CanonicalSeed {
				t.Fatalf("NodeSeed(%d,%d) aliases the canonical seed", fleet, node)
			}
		}
	}
	a, b := Canonical(), NewNodePlan(CanonicalSeed, 0, CanonicalHorizon, CanonicalEvents)
	if len(a.Events) != len(b.Events) {
		return // trivially different
	}
	same := true
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("node 0 of the canonical fleet replays the canonical single-node plan")
	}
}

func TestNewNodePlanMatchesNodeSeed(t *testing.T) {
	got := NewNodePlan(7, 5, 604800, 6)
	want := NewPlan(NodeSeed(7, 5), 604800, 6)
	if got.Seed != want.Seed || len(got.Events) != len(want.Events) {
		t.Fatalf("NewNodePlan diverges from NewPlan(NodeSeed(...)): %+v vs %+v", got, want)
	}
	for i := range got.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, got.Events[i], want.Events[i])
		}
	}
	for _, e := range got.Events {
		if e.At < 0 || e.At >= 604800 {
			t.Fatalf("event outside horizon: %v", e)
		}
	}
}
