// Package chaos is the deterministic fault injector for the serving
// layer: what internal/fault is to the simulated machines, this
// package is to the HTTP daemon in front of them. A Plan derives a
// reproducible disturbance schedule from one integer seed (the same
// SplitMix64 stream idiom as fault.NewPlan), and Middleware applies it
// to an http.Handler: injected latency, synthetic 503s, slow-trickle
// request bodies and pre-cancelled request contexts — the hostile
// production mix the robustness tests soak the daemon under.
//
// Determinism is the point. The nth request through a middleware is
// disturbed (or not) as a pure function of (seed, n), so a soak
// failure reproduces from its seed alone, exactly like a fault-plan
// artifact. Wall-clock time never enters a decision; the only clock
// use is the injectable Sleep that realizes latency, which shapes
// scheduling but never bytes.
//
// The package is serve-agnostic: it wraps any http.Handler and is
// imported only by tests and harnesses, never by the daemon's serving
// path — production traffic must not pay for the instrumentation.
package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Kind classifies one injected disturbance.
type Kind uint8

const (
	// None leaves the request untouched (the common case; the Rate
	// knob sets how uncommon).
	None Kind = iota
	// Latency delays the request by a seed-derived duration before the
	// handler sees it.
	Latency
	// InjectError answers 503 + Retry-After without invoking the
	// handler: the disturbance a well-behaved client must absorb by
	// backing off and retrying.
	InjectError
	// SlowBody trickles the request body through a small-chunk reader,
	// the slow-client read path (bufio refills, partial reads).
	SlowBody
	// CancelContext serves the request with an already-cancelled
	// context: the client that hung up before the handler ran.
	CancelContext
	numKinds
)

var kindNames = [...]string{"none", "latency", "error", "slowbody", "cancel"}

func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Header is set on every response that passed through a chaos
// middleware, valued with the Kind injected ("none" included), so a
// soak can classify outcomes without guessing.
const Header = "X-Chaos"

// splitmix64 is the SplitMix64 finalizer — the repo's standard
// seed-mixing primitive (fault and core use the same construction),
// kept local so the package stays a leaf over net/http.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Plan is a seeded disturbance schedule. The zero value disturbs
// nothing; NewPlan sets the canonical soak knobs.
type Plan struct {
	// Seed reproduces the whole schedule.
	Seed int64
	// Rate is the fraction of requests disturbed, in [0, 1].
	Rate float64
	// MaxLatency bounds one injected delay (Latency draws uniformly
	// over [0, MaxLatency)).
	MaxLatency time.Duration
	// Kinds restricts which disturbances the plan draws from; empty
	// means all of them. A drain test that wants pure latency sets
	// Kinds: []Kind{Latency}.
	Kinds []Kind
	// Sleep realizes injected latency. Nil means time.Sleep; tests that
	// must not consume wall time inject a recorder instead.
	Sleep func(time.Duration)

	// n counts requests through Middleware: the per-request stream
	// index that makes decision i independent of decisions j<i yet
	// fully reproducible.
	n atomic.Uint64
}

// NewPlan returns a plan with the canonical soak knobs: disturb a
// third of requests, up to 5ms injected latency.
func NewPlan(seed int64) *Plan {
	return &Plan{Seed: seed, Rate: 1.0 / 3, MaxLatency: 5 * time.Millisecond}
}

// Decision is the disturbance drawn for one request ordinal.
type Decision struct {
	Kind    Kind
	Latency time.Duration // set when Kind == Latency
}

// Decide draws the disturbance for request ordinal i — a pure function
// of (Seed, i, Rate, MaxLatency), exported so tests can predict and
// cross-check exactly what a soak injected.
func (p *Plan) Decide(i uint64) Decision {
	state := splitmix64(uint64(p.Seed)) + 0x9e3779b97f4a7c15*(i+1)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return splitmix64(state)
	}
	u := float64(next()>>11) / (1 << 53) // uniform in [0,1)
	if u >= p.Rate {
		return Decision{Kind: None}
	}
	// Draw over the active kinds (None excluded): which disturbance.
	var k Kind
	if len(p.Kinds) > 0 {
		k = p.Kinds[next()%uint64(len(p.Kinds))]
	} else {
		k = Kind(1 + next()%uint64(numKinds-1))
	}
	d := Decision{Kind: k}
	if k == Latency {
		frac := float64(next()>>11) / (1 << 53)
		d.Latency = time.Duration(frac * float64(p.MaxLatency))
	}
	return d
}

// Requests reports how many requests the middleware has disturbed or
// passed so far (the next ordinal to be drawn).
func (p *Plan) Requests() uint64 { return p.n.Load() }

// Middleware wraps next with the plan's disturbances. Each arriving
// request consumes one ordinal from the plan's counter; concurrent
// requests may interleave ordinals nondeterministically, but the
// decision each ordinal maps to is fixed by the seed — rerunning a
// soak replays the same multiset of disturbances.
func (p *Plan) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := p.Decide(p.n.Add(1) - 1)
		w.Header().Set(Header, d.Kind.String())
		switch d.Kind {
		case Latency:
			sleep := p.Sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(d.Latency)
		case InjectError:
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error": "chaos: injected unavailability"}`+"\n")
			return
		case SlowBody:
			r = r.Clone(r.Context())
			r.Body = &trickleReader{rc: r.Body}
		case CancelContext:
			ctx, cancel := context.WithCancel(r.Context())
			cancel()
			r = r.Clone(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// trickleReader hands out the body a few bytes at a time: the slowest
// well-behaved client the daemon must still serve. No wall-clock pauses
// — the small reads alone exercise the partial-read paths, and the
// soak's latency budget stays owned by the Latency kind.
type trickleReader struct {
	rc io.ReadCloser
}

const trickleChunk = 7 // prime, so chunk boundaries wander through JSON tokens

func (t *trickleReader) Read(b []byte) (int, error) {
	if len(b) > trickleChunk {
		b = b[:trickleChunk]
	}
	return t.rc.Read(b)
}

func (t *trickleReader) Close() error { return t.rc.Close() }
