package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDecideDeterministic pins the plan contract: decision i is a pure
// function of the seed, independent of every other decision and of
// when it is drawn.
func TestDecideDeterministic(t *testing.T) {
	a := NewPlan(42)
	b := NewPlan(42)
	for i := uint64(0); i < 4096; i++ {
		if da, db := a.Decide(i), b.Decide(i); da != db {
			t.Fatalf("decision %d differs across identical plans: %+v vs %+v", i, da, db)
		}
	}
	// Drawing out of order changes nothing.
	if d := a.Decide(7); d != b.Decide(7) {
		t.Fatalf("out-of-order draw diverged: %+v", d)
	}
	// Different seeds produce different schedules (overwhelmingly).
	c := NewPlan(43)
	same := 0
	for i := uint64(0); i < 4096; i++ {
		if a.Decide(i) == c.Decide(i) {
			same++
		}
	}
	if same == 4096 {
		t.Fatalf("seeds 42 and 43 produced identical schedules")
	}
}

// TestDecideRespectsRateAndKinds pins the knobs: Rate 0 disturbs
// nothing, Rate 1 disturbs everything, a Kinds subset draws only from
// that subset, and injected latency never exceeds MaxLatency.
func TestDecideRespectsRateAndKinds(t *testing.T) {
	quiet := &Plan{Seed: 1, Rate: 0}
	for i := uint64(0); i < 512; i++ {
		if d := quiet.Decide(i); d.Kind != None {
			t.Fatalf("rate-0 plan disturbed request %d: %+v", i, d)
		}
	}
	loud := &Plan{Seed: 1, Rate: 1, MaxLatency: 3 * time.Millisecond, Kinds: []Kind{Latency}}
	for i := uint64(0); i < 512; i++ {
		d := loud.Decide(i)
		if d.Kind != Latency {
			t.Fatalf("latency-only plan drew %v at %d", d.Kind, i)
		}
		if d.Latency < 0 || d.Latency >= 3*time.Millisecond {
			t.Fatalf("latency %v out of [0, 3ms)", d.Latency)
		}
	}
	// The unrestricted full-rate plan eventually draws every kind.
	all := &Plan{Seed: 9, Rate: 1, MaxLatency: time.Millisecond}
	seen := map[Kind]bool{}
	for i := uint64(0); i < 512; i++ {
		seen[all.Decide(i).Kind] = true
	}
	for k := Latency; k < numKinds; k++ {
		if !seen[k] {
			t.Fatalf("kind %v never drawn in 512 trials", k)
		}
	}
}

// echoHandler reads the whole body and echoes it, reporting whether
// the request context was still alive.
func echoHandler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("reading body: %v", err)
		}
		if r.Context().Err() != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "context dead")
			return
		}
		w.Write(body)
	})
}

// middlewareFor builds a single-kind full-rate plan and serves one
// request through it, returning the response.
func middlewareFor(t *testing.T, k Kind, body string) *httptest.ResponseRecorder {
	t.Helper()
	var slept time.Duration
	p := &Plan{Seed: 5, Rate: 1, MaxLatency: 2 * time.Millisecond, Kinds: []Kind{k},
		Sleep: func(d time.Duration) { slept = d }}
	h := p.Middleware(echoHandler(t))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/", strings.NewReader(body)))
	if k == Latency && slept <= 0 {
		t.Fatalf("latency injection never slept")
	}
	return rr
}

func TestMiddlewareKinds(t *testing.T) {
	const body = `{"machine": "sx4-32", "benchmarks": ["COPY", "CCM2"]}`

	rr := middlewareFor(t, Latency, body)
	if rr.Code != 200 || rr.Body.String() != body {
		t.Fatalf("latency: %d %q", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get(Header); got != "latency" {
		t.Fatalf("%s = %q, want latency", Header, got)
	}

	rr = middlewareFor(t, SlowBody, body)
	if rr.Code != 200 || rr.Body.String() != body {
		t.Fatalf("slowbody did not deliver the full body: %d %q", rr.Code, rr.Body.String())
	}

	rr = middlewareFor(t, CancelContext, body)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancel: handler saw a live context (%d %q)", rr.Code, rr.Body.String())
	}

	rr = middlewareFor(t, InjectError, body)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("error injection: %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatalf("injected 503 without Retry-After")
	}
	if got := rr.Header().Get(Header); got != "error" {
		t.Fatalf("%s = %q, want error", Header, got)
	}
}

// TestMiddlewareReplaysSchedule pins soak reproducibility: two
// middlewares over the same seed disturb the same request ordinals the
// same way.
func TestMiddlewareReplaysSchedule(t *testing.T) {
	serveAll := func(p *Plan) []string {
		h := p.Middleware(echoHandler(t))
		var kinds []string
		for i := 0; i < 64; i++ {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", "/", strings.NewReader("x")))
			kinds = append(kinds, rr.Header().Get(Header))
		}
		return kinds
	}
	a := serveAll(NewPlan(1996))
	b := serveAll(NewPlan(1996))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
}
