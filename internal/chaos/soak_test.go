package chaos_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sx4bench/internal/chaos"
	"sx4bench/internal/serve"

	_ "sx4bench/internal/machine" // register the modeled machines
)

// The soak's seeds: at least three distinct schedules per run (the
// acceptance bar), overridable for reproduction of a failure at any
// other seed.
var soakSeeds = flag.String("chaos.seeds", "1,2,3", "comma-separated chaos soak seeds")

// soakQueries is the canonical traffic mix: a few distinct cheap run
// queries (repeats become cache hits), hit from many goroutines.
var soakQueries = []string{
	`{"machine": "sx4-32", "benchmarks": ["COPY"]}`,
	`{"machine": "sx4-32", "benchmarks": ["IA"]}`,
	`{"machine": "sx4-1", "benchmarks": ["COPY"]}`,
	`{"machine": "ymp", "benchmarks": ["XPOSE"]}`,
	`{"machine": "sx4-32", "benchmarks": ["COPY", "IA"], "fault_seed": 3}`,
}

// TestChaosSoak floods a chaos-wrapped daemon with concurrent traffic
// at several seeds and asserts the robustness invariants afterwards:
// every request got exactly one response, every 200 body for the same
// query is byte-identical, the admission books balance, the gauges
// return to zero, the cache snapshot renders deterministically, and no
// goroutines leak. Run via `make chaos` (always under -race).
func TestChaosSoak(t *testing.T) {
	for _, field := range strings.Split(*soakSeeds, ",") {
		var seed int64
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &seed); err != nil {
			t.Fatalf("bad -chaos.seeds entry %q: %v", field, err)
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { soak(t, seed) })
	}
}

func soak(t *testing.T, seed int64) {
	before := runtime.NumGoroutine()
	srv := serve.New(serve.Config{
		MaxConcurrent: 2,
		QueueDepth:    4,
		QueueWait:     50 * time.Millisecond,
	})
	plan := chaos.NewPlan(seed)
	ts := httptest.NewServer(plan.Middleware(srv))

	const workers = 8
	const perWorker = 24
	type outcome struct {
		query string
		code  int
		body  []byte
	}
	results := make(chan outcome, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := soakQueries[(w*perWorker+i)%len(soakQueries)]
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(q))
				if err != nil {
					t.Errorf("request error (lost response): %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reading response: %v", err)
					return
				}
				results <- outcome{query: q, code: resp.StatusCode, body: body}
			}
		}(w)
	}
	wg.Wait()
	close(results)

	// No lost responses: every request produced exactly one outcome.
	byQuery := make(map[string][][]byte)
	codes := make(map[int]int)
	n := 0
	for o := range results {
		n++
		codes[o.code]++
		switch o.code {
		case 200:
			byQuery[o.query] = append(byQuery[o.query], o.body)
		case 503:
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(o.body, &e); err != nil || e.Error == "" {
				t.Errorf("503 body is not the error shape: %q", o.body)
			}
		default:
			t.Errorf("unexpected status %d: %s", o.code, o.body)
		}
	}
	if n != workers*perWorker {
		t.Fatalf("lost responses: got %d outcomes for %d requests", n, workers*perWorker)
	}
	t.Logf("seed %d: %d requests, codes %v, %d disturbances drawn", seed, n, codes, plan.Requests())

	// Byte-consistency: all 200 answers to one query are identical.
	for q, bodies := range byQuery {
		for _, b := range bodies[1:] {
			if !bytes.Equal(b, bodies[0]) {
				t.Fatalf("divergent responses for %s:\n%s\nvs\n%s", q, bodies[0], b)
			}
		}
	}

	ts.Close() // drains outstanding keep-alive connections

	// The admission books balance once quiesced.
	st := stats(t, srv)
	if st.AdmitRequests != st.Admitted+st.Shed+st.QueueTimeouts+st.QueueCancelled {
		t.Fatalf("admission books unbalanced: %+v", st)
	}
	if st.Admitted != st.Completed {
		t.Fatalf("admitted %d != completed %d after quiescence", st.Admitted, st.Completed)
	}
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Fatalf("gauges nonzero after quiescence: depth=%d inflight=%d", st.QueueDepth, st.InFlight)
	}
	// Every run query was classified exactly one way.
	if st.CacheHits+st.Coalesced+st.RunsExecuted+uint64(errorCount(codes)) < uint64(n) {
		t.Fatalf("query classifications don't cover the traffic: %+v vs %d requests", st, n)
	}

	// The cache snapshot renders byte-identically (and parses).
	a := srv.Snapshot().Render()
	b := srv.Snapshot().Render()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot render nondeterministic after soak")
	}
	if _, err := serve.ParseSnapshot(a); err != nil {
		t.Fatalf("soak snapshot does not parse: %v", err)
	}

	// No goroutine leaks: the count returns to (about) where it began.
	waitGoroutines(t, before+3)
}

func errorCount(codes map[int]int) int {
	n := 0
	for code, c := range codes {
		if code != 200 {
			n += c
		}
	}
	return n
}

func stats(t *testing.T, srv *serve.Server) serve.Stats {
	t.Helper()
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	if rr.Code != 200 {
		t.Fatalf("stats: %d", rr.Code)
	}
	var st serve.Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return st
}

func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > %d\n%s", runtime.NumGoroutine(), limit,
				buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrainUnderChaos is the drain story end to end, in
// process: a sweep is streaming through latency-injecting chaos when
// the server begins a graceful shutdown (what SIGTERM triggers in
// cmd/sx4d). The drain must let the sweep finish — every line
// answered, none lost — and the post-drain snapshot must hand the next
// life a cache that answers the swept queries as hits.
func TestGracefulDrainUnderChaos(t *testing.T) {
	srv := serve.New(serve.Config{MaxConcurrent: 2})
	plan := &chaos.Plan{Seed: 1996, Rate: 1, MaxLatency: 2 * time.Millisecond, Kinds: []chaos.Kind{chaos.Latency}}
	hs := &http.Server{Handler: plan.Middleware(srv)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	var lines []string
	for _, q := range soakQueries {
		lines = append(lines, q)
	}
	body := strings.Join(lines, "\n") + "\n"

	type sweepResult struct {
		answers []string
		err     error
	}
	sweepDone := make(chan sweepResult, 1)
	firstLine := make(chan struct{})
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/sweep",
			"application/x-ndjson", strings.NewReader(body))
		if err != nil {
			sweepDone <- sweepResult{err: err}
			close(firstLine)
			return
		}
		defer resp.Body.Close()
		var res sweepResult
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		first := true
		for sc.Scan() {
			res.answers = append(res.answers, sc.Text())
			if first {
				close(firstLine)
				first = false
			}
		}
		res.err = sc.Err()
		sweepDone <- res
	}()

	// Begin the drain mid-stream: after the first answer line, with the
	// rest still to produce.
	<-firstLine
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	res := <-sweepDone
	if res.err != nil {
		t.Fatalf("sweep stream broken by drain: %v", res.err)
	}
	if len(res.answers) != len(lines) {
		t.Fatalf("drain lost jobs: %d answers for %d lines\n%v", len(res.answers), len(lines), res.answers)
	}
	for i, a := range res.answers {
		if strings.Contains(a, `"error"`) {
			t.Fatalf("line %d answered with an error during drain: %s", i, a)
		}
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}

	// The drain snapshot carries the swept answers into the next life.
	path := filepath.Join(t.TempDir(), "drain.snap")
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatalf("post-drain snapshot: %v", err)
	}
	next := serve.New(serve.Config{})
	if _, err := next.LoadSnapshot(path); err != nil {
		t.Fatalf("next life failed to load drain snapshot: %v", err)
	}
	rr := httptest.NewRecorder()
	next.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/run", strings.NewReader(soakQueries[0])))
	if rr.Code != 200 || rr.Header().Get("X-Sx4d-Cache") != "hit" {
		t.Fatalf("post-restart query: %d cache=%q, want 200 hit", rr.Code, rr.Header().Get("X-Sx4d-Cache"))
	}
	if rr.Body.String() != res.answers[0]+"\n" {
		t.Fatalf("post-restart body differs from the drained sweep's first answer")
	}
}
