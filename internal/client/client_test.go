package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sx4bench/internal/serve"

	_ "sx4bench/internal/machine" // register the modeled machines
)

// TestBackoffDeterministic pins the jitter contract: Backoff is a pure
// function — same (seed, attempt) → same wait, forever.
func TestBackoffDeterministic(t *testing.T) {
	for attempt := 1; attempt <= 10; attempt++ {
		a := Backoff(7, attempt, 100*time.Millisecond, 5*time.Second)
		b := Backoff(7, attempt, 100*time.Millisecond, 5*time.Second)
		if a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
	}
}

// TestBackoffEnvelope pins the shape: waits grow exponentially within
// [cap/2, cap) and never exceed the configured maximum.
func TestBackoffEnvelope(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	ceil := base
	for attempt := 1; attempt <= 12; attempt++ {
		w := Backoff(3, attempt, base, max)
		if w < ceil/2 || w >= ceil {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", attempt, w, ceil/2, ceil)
		}
		if ceil < max {
			ceil *= 2
			if ceil > max {
				ceil = max
			}
		}
	}
}

// TestBackoffSpreadsTheHerd is the thundering-herd test: many clients
// retrying the same failure at the same attempt must not wake in
// lockstep. With per-client seeds the first-retry waits spread across
// the jitter window instead of colliding on one instant.
func TestBackoffSpreadsTheHerd(t *testing.T) {
	const clients = 64
	base, max := 100*time.Millisecond, 5*time.Second
	waits := make(map[time.Duration]int)
	for seed := uint64(0); seed < clients; seed++ {
		waits[Backoff(seed, 1, base, max)]++
	}
	// All 64 waits identical would be a herd; distinct jitter draws make
	// collisions rare. Demand at least half the window is occupied by
	// distinct instants.
	if len(waits) < clients/2 {
		t.Fatalf("only %d distinct waits across %d clients: herd not spread (%v)", len(waits), clients, waits)
	}
}

// flakyHandler answers 503 + Retry-After until `fail` attempts have
// been consumed, then delegates.
type flakyHandler struct {
	fail    int32
	imposed string // Retry-After value on the failures
	next    http.Handler
	hits    atomic.Int32
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	if atomic.AddInt32(&f.fail, -1) >= 0 {
		if f.imposed != "" {
			w.Header().Set("Retry-After", f.imposed)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error": "test: shedding"}`)
		return
	}
	f.next.ServeHTTP(w, r)
}

// instantClient builds a client whose backoff waits are recorded, not
// slept, so retry tests run in microseconds.
func instantClient(url string, waits *[]time.Duration) *Client {
	return New(Config{
		BaseURL:    url,
		JitterSeed: 11,
		Sleep: func(ctx context.Context, d time.Duration) error {
			*waits = append(*waits, d)
			return ctx.Err()
		},
	})
}

func TestRunRetriesThrough503(t *testing.T) {
	fh := &flakyHandler{fail: 2, next: serve.New(serve.Config{})}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var waits []time.Duration
	c := instantClient(ts.URL, &waits)
	res, err := c.Run(context.Background(), serve.RunRequest{Machine: "sx4-32", Benchmarks: []string{"COPY"}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := fh.hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(waits) != 2 {
		t.Fatalf("client slept %d times, want 2", len(waits))
	}
	if res.CacheState != "miss" {
		t.Fatalf("cache state %q, want miss", res.CacheState)
	}
	if len(res.Response.Results) != 1 || res.Response.Results[0].Name != "COPY" {
		t.Fatalf("unexpected response: %+v", res.Response)
	}

	// Idempotent retry safety, made exact by content addressing: the
	// same query again is a byte-identical cache hit.
	again, err := c.Run(context.Background(), serve.RunRequest{Machine: "sx4-32", Benchmarks: []string{"COPY"}})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if again.CacheState != "hit" || string(again.Body) != string(res.Body) {
		t.Fatalf("retried query not served from cache byte-identically: %q", again.CacheState)
	}
}

// TestRunHonorsRetryAfter pins the header contract: when the server's
// Retry-After exceeds the computed backoff, the client waits the
// server's number.
func TestRunHonorsRetryAfter(t *testing.T) {
	fh := &flakyHandler{fail: 1, imposed: "7", next: serve.New(serve.Config{})}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var waits []time.Duration
	c := instantClient(ts.URL, &waits)
	if _, err := c.Run(context.Background(), serve.RunRequest{Machine: "sx4-32", Benchmarks: []string{"COPY"}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(waits) != 1 || waits[0] != 7*time.Second {
		t.Fatalf("waits = %v, want exactly [7s] (server's Retry-After)", waits)
	}
}

// TestRunGivesUpAfterMaxRetries pins the retry bound and the
// exhaustion error shape.
func TestRunGivesUpAfterMaxRetries(t *testing.T) {
	fh := &flakyHandler{fail: 1 << 20, next: serve.New(serve.Config{})}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var waits []time.Duration
	c := instantClient(ts.URL, &waits)
	_, err := c.Run(context.Background(), serve.RunRequest{Machine: "sx4-32", Benchmarks: []string{"COPY"}})
	if err == nil {
		t.Fatalf("run succeeded against a permanently shedding server")
	}
	if got := fh.hits.Load(); got != DefaultMaxRetries+1 {
		t.Fatalf("server saw %d attempts, want %d", got, DefaultMaxRetries+1)
	}
}

// TestRunDoesNotRetryClientErrors pins the other half of the policy: a
// 4xx is the request's fault and retrying it would be abuse.
func TestRunDoesNotRetryClientErrors(t *testing.T) {
	fh := &flakyHandler{fail: 0, next: serve.New(serve.Config{})}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var waits []time.Duration
	c := instantClient(ts.URL, &waits)
	_, err := c.Run(context.Background(), serve.RunRequest{Machine: "no-such-machine"})
	if err == nil {
		t.Fatalf("run succeeded for an unknown machine")
	}
	if got := fh.hits.Load(); got != 1 {
		t.Fatalf("client retried a non-retryable failure: %d attempts", got)
	}
	if len(waits) != 0 {
		t.Fatalf("client backed off for a non-retryable failure: %v", waits)
	}
}

func TestSweepStreams(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	reqs := []serve.RunRequest{
		{Machine: "sx4-32", Benchmarks: []string{"COPY"}},
		{Machine: "no-such-machine"},
		{Machine: "sx4-32", Benchmarks: []string{"IA"}},
	}
	var lines [][]byte
	err := c.Sweep(context.Background(), reqs, func(i int, line []byte) error {
		if i != len(lines) {
			t.Fatalf("lines out of order: got index %d, want %d", i, len(lines))
		}
		cp := append([]byte{}, line...)
		lines = append(lines, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(lines) != len(reqs) {
		t.Fatalf("got %d answer lines for %d requests", len(lines), len(reqs))
	}
	// Line 1 is a per-line error (bulk submission survives bad lines);
	// lines 0 and 2 are real responses.
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(lines[1], &e); err != nil || e.Error == "" {
		t.Fatalf("line 1 should be an error line: %s", lines[1])
	}
	var r serve.RunResponse
	if err := json.Unmarshal(lines[0], &r); err != nil || len(r.Results) != 1 {
		t.Fatalf("line 0: %s", lines[0])
	}
}

// TestSweepRetriesBeforeFirstLine pins the streaming retry rule: a 503
// at stream start replays (nothing was delivered); the replay is exact
// because the requests are content-addressed.
func TestSweepRetriesBeforeFirstLine(t *testing.T) {
	fh := &flakyHandler{fail: 1, next: serve.New(serve.Config{})}
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var waits []time.Duration
	c := instantClient(ts.URL, &waits)
	n := 0
	err := c.Sweep(context.Background(), []serve.RunRequest{{Machine: "sx4-32", Benchmarks: []string{"COPY"}}},
		func(i int, line []byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if n != 1 {
		t.Fatalf("answer lines = %d, want 1 (no duplicates from the retry)", n)
	}
	if got := fh.hits.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestStats(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	if _, err := c.Run(context.Background(), serve.RunRequest{Machine: "sx4-32", Benchmarks: []string{"COPY"}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.RunQueries != 1 || st.RunsExecuted != 1 {
		t.Fatalf("stats books: %+v", st)
	}
}
