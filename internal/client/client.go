// Package client is the resilient consumer of the sx4d daemon: the
// retry/backoff layer a production caller needs between itself and a
// server that is allowed to shed load. It speaks POST /v1/run, the
// streaming POST /v1/sweep and GET /v1/stats, retrying retryable
// failures (transport errors, 503s) with capped exponential backoff
// and deterministic jitter, and honoring the server's Retry-After
// hint when it is longer than the computed backoff.
//
// Retrying is safe by construction: sx4d queries are content-addressed
// pure functions of the request, so a retry can never double-apply an
// effect — the worst case is a cache hit. That is why the client
// retries POSTs at all.
//
// Jitter is deterministic, seeded per client (SplitMix64, the repo's
// standard stream idiom): two clients with different seeds spread
// their retries apart — no thundering herd — while a test replaying a
// seed observes the exact same wait schedule. No wall-clock reading
// enters any computed duration.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sx4bench/internal/serve"
)

// Config configures a Client. The zero value of every field is usable.
type Config struct {
	// BaseURL locates the daemon ("http://127.0.0.1:8700"). Required.
	BaseURL string
	// HTTP is the underlying transport; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds retry attempts after the first try; 0 means
	// DefaultMaxRetries. Negative disables retries.
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay (0 =
	// DefaultBaseBackoff); MaxBackoff caps the exponential growth (0 =
	// DefaultMaxBackoff).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the deterministic jitter stream. Callers that
	// run many clients should give each its own seed; 0 is a valid
	// seed.
	JitterSeed int64
	// Sleep realizes backoff waits. Nil means a context-aware
	// wall-clock sleep; tests inject a recorder to run instantly.
	Sleep func(context.Context, time.Duration) error
}

// Defaults for the retry envelope.
const (
	DefaultMaxRetries  = 4
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// Client is a resilient sx4d consumer. Safe for concurrent use.
type Client struct {
	cfg Config
}

// New returns a client for the daemon at cfg.BaseURL, normalizing
// zero limits to defaults.
func New(cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepWall
	}
	return &Client{cfg: cfg}
}

// sleepWall is the default Sleep: wall-clock, interruptible by the
// caller's context. The timer is sanctioned wall-clock use — backoff
// waits shape scheduling, never artifact bytes.
func sleepWall(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d) //sx4lint:ignore noclock backoff wait is wall-clock scheduling, never shapes a result byte
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// splitmix64 is the SplitMix64 finalizer, the repo's standard
// seed-mixing primitive.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Backoff computes the wait before retry attempt (1-based): capped
// exponential growth from base with deterministic "equal jitter" — the
// wait lands uniformly in [cap/2, cap), where cap = min(base<<(attempt-1),
// max). A pure function of its arguments, exported so the
// thundering-herd test can assert both determinism (same seed, same
// schedule) and spread (different seeds, different schedules).
func Backoff(seed uint64, attempt int, base, max time.Duration) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	ceil := base
	for i := 1; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	u := float64(splitmix64(splitmix64(seed)+0x9e3779b97f4a7c15*uint64(attempt))>>11) / (1 << 53)
	half := ceil / 2
	return half + time.Duration(u*float64(ceil-half))
}

// StatusError is a non-2xx answer that exhausted (or did not warrant)
// retries, carrying the decoded {"error": ...} message when present.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter int // seconds, from the Retry-After header; 0 = absent
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: server answered %d: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("client: server answered %d", e.Code)
}

// retryable reports whether an answer warrants another attempt: 503 is
// the server shedding load or timing out a queue wait — explicitly
// temporary — and nothing else is.
func retryable(code int) bool { return code == http.StatusServiceUnavailable }

// do issues one request with the retry loop: transport errors and
// retryable statuses back off and try again (waiting at least the
// server's Retry-After hint), everything else returns immediately.
// The response body is fully read and returned; callers never see a
// live connection.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, []byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			wait := Backoff(uint64(c.cfg.JitterSeed), attempt, c.cfg.BaseBackoff, c.cfg.MaxBackoff)
			if ra := retryAfterOf(lastErr); ra > wait {
				wait = ra
			}
			if err := c.cfg.Sleep(ctx, wait); err != nil {
				return nil, nil, fmt.Errorf("client: giving up during backoff: %w", err)
			}
		}
		resp, data, err := c.once(ctx, method, path, body)
		if err == nil {
			return resp, data, nil
		}
		lastErr = err
		var se *StatusError
		if errors.As(err, &se) && !retryable(se.Code) {
			return nil, nil, err
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, nil, fmt.Errorf("client: %d attempts exhausted: %w", attempt+1, lastErr)
		}
		if ctx.Err() != nil {
			return nil, nil, fmt.Errorf("client: giving up: %w", context.Cause(ctx))
		}
	}
}

// once issues a single attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, nil, statusError(resp, data)
	}
	return resp, data, nil
}

func statusError(resp *http.Response, data []byte) *StatusError {
	se := &StatusError{Code: resp.StatusCode}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil {
		se.Message = e.Error
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		se.RetryAfter = ra
	}
	return se
}

func retryAfterOf(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		return time.Duration(se.RetryAfter) * time.Second
	}
	return 0
}

// newLineScanner builds an NDJSON line scanner with the same generous
// buffer the server side uses.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return sc
}

// RunResult couples one answered run query with its cache provenance.
type RunResult struct {
	Response serve.RunResponse
	// Body is the exact response bytes — the content-addressed
	// artifact, byte-identical on every repeat.
	Body []byte
	// CacheState is the X-Sx4d-Cache header: "hit", "miss" or
	// "coalesced".
	CacheState string
}

// Run answers one run query, retrying through shed load.
func (c *Client) Run(ctx context.Context, req serve.RunRequest) (RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return RunResult{}, fmt.Errorf("client: encoding request: %w", err)
	}
	resp, data, err := c.do(ctx, http.MethodPost, "/v1/run", body)
	if err != nil {
		return RunResult{}, err
	}
	out := RunResult{Body: data, CacheState: resp.Header.Get("X-Sx4d-Cache")}
	if err := json.Unmarshal(data, &out.Response); err != nil {
		return RunResult{}, fmt.Errorf("client: decoding response: %w", err)
	}
	return out, nil
}

// Sweep submits requests as one NDJSON stream and calls fn with each
// answer line, in input order, as it arrives. A 503 before any line is
// consumed retries like Run (nothing was delivered, so the replay is
// exact); once lines are flowing the stream is not restarted — the
// caller re-sweeps if it must, and the daemon's cache makes the replay
// cheap. fn returning an error stops the stream.
func (c *Client) Sweep(ctx context.Context, reqs []serve.RunRequest, fn func(i int, line []byte) error) error {
	var body bytes.Buffer
	for _, r := range reqs {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("client: encoding sweep line: %w", err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			wait := Backoff(uint64(c.cfg.JitterSeed), attempt, c.cfg.BaseBackoff, c.cfg.MaxBackoff)
			if err := c.cfg.Sleep(ctx, wait); err != nil {
				return fmt.Errorf("client: giving up during backoff: %w", err)
			}
		}
		n, err := c.sweepOnce(ctx, body.Bytes(), fn)
		if err == nil {
			return nil
		}
		var se *StatusError
		retriableStart := n == 0 && (errors.As(err, &se) && retryable(se.Code))
		if !retriableStart || attempt >= c.cfg.MaxRetries {
			return err
		}
	}
}

// sweepOnce streams one sweep attempt, returning how many answer lines
// were delivered to fn.
func (c *Client) sweepOnce(ctx context.Context, body []byte, fn func(i int, line []byte) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	hc := c.cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return 0, statusError(resp, data)
	}
	sc := newLineScanner(resp.Body)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := fn(n, line); err != nil {
			return n, err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("client: sweep stream: %w", err)
	}
	return n, nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (serve.Stats, error) {
	_, data, err := c.do(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return serve.Stats{}, err
	}
	var st serve.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		return serve.Stats{}, fmt.Errorf("client: decoding stats: %w", err)
	}
	return st, nil
}
