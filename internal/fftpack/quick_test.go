package fftpack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// supportedSizes enumerates every supported length up to 400.
func supportedSizes() []int {
	var out []int
	for n := 2; n <= 400; n++ {
		if Supported(n) {
			out = append(out, n)
		}
	}
	return out
}

func TestQuickRealRoundTripAllSizes(t *testing.T) {
	sizes := supportedSizes()
	f := func(pick uint16, seed int64) bool {
		n := sizes[int(pick)%len(sizes)]
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := RealInverse(RealForward(x), n)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickLinearity(t *testing.T) {
	// FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
	f := func(seed int64, a8, b8 int8) bool {
		n := 48
		a := complex(float64(a8)/16, 0)
		b := complex(float64(b8)/16, 0)
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = a*x[i] + b*y[i]
		}
		fx := Forward(x)
		fy := Forward(y)
		fmix := Forward(mix)
		for i := range fmix {
			want := a*fx[i] + b*fy[i]
			d := fmix[i] - want
			if math.Hypot(real(d), imag(d)) > 1e-9*(1+math.Hypot(real(want), imag(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftTheorem(t *testing.T) {
	// A circular shift by s multiplies coefficient k by e^{-2πiks/n}.
	f := func(seed int64, shift8 uint8) bool {
		n := 60
		s := int(shift8) % n
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		shifted := make([]complex128, n)
		for i := range x {
			shifted[i] = x[(i+s)%n]
		}
		fx := Forward(x)
		fs := Forward(shifted)
		for k := range fx {
			ang := 2 * math.Pi * float64(k*s) / float64(n)
			want := fx[k] * complex(math.Cos(ang), math.Sin(ang))
			d := fs[k] - want
			if math.Hypot(real(d), imag(d)) > 1e-8*(1+math.Hypot(real(want), imag(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickStockhamAgreesWithRecursive(t *testing.T) {
	sizes := supportedSizes()
	f := func(pick uint16, m8 uint8, seed int64) bool {
		n := sizes[int(pick)%len(sizes)]
		m := int(m8)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		re := make([]float64, n*m)
		im := make([]float64, n*m)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		want := make([][]complex128, m)
		for j := 0; j < m; j++ {
			x := make([]complex128, n)
			for p := 0; p < n; p++ {
				x[p] = complex(re[p*m+j], im[p*m+j])
			}
			want[j] = Forward(x)
		}
		StockhamMulti(re, im, n, m, false)
		for j := 0; j < m; j++ {
			for p := 0; p < n; p++ {
				d := complex(re[p*m+j], im[p*m+j]) - want[j][p]
				if math.Hypot(real(d), imag(d)) > 1e-8*float64(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
