package fftpack

import (
	"fmt"
	"math"
	"sync"
)

// A Plan holds everything reusable about a transform of one length:
// the radix factorization and the per-stage twiddle-factor tables.
// Building those per call dominated the cost of the old transforms
// (every twiddle was a fresh sincos); a Plan computes them once and is
// then safe for concurrent use by any number of goroutines — the
// tables are read-only and per-call scratch comes from a pool.
type Plan struct {
	N       int
	Factors []int
	stages  []planStage
}

// planStage is one radix pass of the autosorting Stockham transform.
type planStage struct {
	r, l, rem int // radix; combined sub-transform length; remaining blocks
	// wre/wim hold the forward-sign twiddles cos/sin(-2π·q·idx/(l·r)),
	// indexed by q*(l*r)+idx for q in [0,r), idx in [0,l*r). The
	// inverse transform negates wim (exact under IEEE: the angles are
	// sign-symmetric and Go's Sin/Cos are odd/even to the bit).
	wre, wim []float64
}

// planCache memoizes Plans by length; transforms of the same length —
// every latitude row of a spectral model, every instance of an FFT
// sweep — share one Plan.
var planCache sync.Map // map[int]*Plan

// PlanFor returns the (possibly cached) plan for length n, which must
// factor into 2s, 3s and 5s.
func PlanFor(n int) *Plan {
	if p, ok := planCache.Load(n); ok {
		return p.(*Plan)
	}
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan)
}

// NewPlan precomputes the factorization and twiddle tables for length
// n without touching the shared cache.
func NewPlan(n int) (*Plan, error) {
	fs, err := Factorize(n)
	if err != nil {
		return nil, err
	}
	p := &Plan{N: n, Factors: fs}
	l := 1
	rem := n
	for _, r := range fs {
		rem /= r
		lr := l * r
		st := planStage{r: r, l: l, rem: rem,
			wre: make([]float64, r*lr), wim: make([]float64, r*lr)}
		for q := 0; q < r; q++ {
			for idx := 0; idx < lr; idx++ {
				// Computed with the exact expression the twiddles used
				// before precomputation, so results are bit-identical.
				ang := -1.0 * 2 * math.Pi * float64(q*idx) / float64(lr)
				st.wre[q*lr+idx] = math.Cos(ang)
				st.wim[q*lr+idx] = math.Sin(ang)
			}
		}
		p.stages = append(p.stages, st)
		l = lr
	}
	return p, nil
}

// scratchBuf is a poolable pair of float64 work arrays. Pooling the
// struct (rather than raw slices) keeps Get/Put allocation-free: the
// same header object cycles through the pool.
type scratchBuf struct {
	a, b []float64
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratchBuf) }}

// getScratch returns a buffer whose a and b slices each hold n
// elements. Contents are arbitrary; callers must initialize what they
// read.
func getScratch(n int) *scratchBuf {
	sb := scratchPool.Get().(*scratchBuf)
	if cap(sb.a) < n {
		sb.a = make([]float64, n)
		sb.b = make([]float64, n)
	}
	sb.a, sb.b = sb.a[:n], sb.b[:n]
	return sb
}

func putScratch(sb *scratchBuf) {
	scratchPool.Put(sb)
}

// execute runs the transform over m interleaved instances in the
// a(M,N) layout (instance axis contiguous): the Stockham formulation,
// all twiddles from the plan's tables. re and im are overwritten.
func (p *Plan) execute(re, im []float64, m int, inverse bool) {
	n := p.N
	if len(re) != n*m || len(im) != n*m {
		panic(fmt.Sprintf("fftpack: plan length %d applied to %d/%d elements over m=%d",
			n, len(re), len(im), m))
	}
	if n == 1 || m == 0 {
		return
	}
	are, aim := re, im
	sb := getScratch(n * m)
	defer putScratch(sb)
	bre, bim := sb.a, sb.b

	for _, st := range p.stages {
		r, l, rem, lr := st.r, st.l, st.rem, st.l*st.r
		for k := 0; k < rem; k++ {
			for j := 0; j < l; j++ {
				for q := 0; q < r; q++ {
					inIdx := ((q*rem+k)*l + j) * m
					for pp := 0; pp < r; pp++ {
						idx := j + pp*l
						wr := st.wre[q*lr+idx]
						wi := st.wim[q*lr+idx]
						if inverse {
							wi = -wi
						}
						outIdx := ((k*r+pp)*l + j) * m
						if q == 0 {
							// First term initializes the accumulator row
							// (w = 1 exactly for q == 0, but keep the
							// multiply so rounding matches the reference
							// formulation).
							for t := 0; t < m; t++ {
								xr, xi := are[inIdx+t], aim[inIdx+t]
								bre[outIdx+t] = xr*wr - xi*wi
								bim[outIdx+t] = xr*wi + xi*wr
							}
							continue
						}
						for t := 0; t < m; t++ {
							xr, xi := are[inIdx+t], aim[inIdx+t]
							bre[outIdx+t] += xr*wr - xi*wi
							bim[outIdx+t] += xr*wi + xi*wr
						}
					}
				}
			}
		}
		are, bre = bre, are
		aim, bim = bim, aim
	}
	if &are[0] != &re[0] {
		copy(re, are)
		copy(im, aim)
	}
}

// Transform computes the in-place complex DFT of the n split
// real/imaginary values (single instance).
func (p *Plan) Transform(re, im []float64, inverse bool) {
	p.execute(re, im, 1, inverse)
}

// RealForward computes the forward transform of the real sequence x
// (len n), returning the n/2+1 non-redundant (Hermitian) coefficients.
// Only the returned slice is allocated; all intermediates come from
// the scratch pool.
func (p *Plan) RealForward(x []float64) []complex128 {
	n := p.N
	if len(x) != n {
		panic(fmt.Sprintf("fftpack: plan length %d applied to %d reals", n, len(x)))
	}
	sb := getScratch(n)
	defer putScratch(sb)
	re, im := sb.a, sb.b
	copy(re, x)
	for i := range im {
		im[i] = 0
	}
	p.execute(re, im, 1, false)
	half := make([]complex128, n/2+1)
	for i := range half {
		half[i] = complex(re[i], im[i])
	}
	return half
}

// RealInverse reconstructs the real sequence of length n from its
// Hermitian half-spectrum, including the 1/n normalization.
func (p *Plan) RealInverse(h []complex128) []float64 {
	n := p.N
	if len(h) != n/2+1 {
		panic(fmt.Sprintf("fftpack: half-spectrum length %d for n=%d", len(h), n))
	}
	sb := getScratch(n)
	defer putScratch(sb)
	re, im := sb.a, sb.b
	for i, v := range h {
		re[i], im[i] = real(v), imag(v)
	}
	for k := n/2 + 1; k < n; k++ {
		re[k] = re[n-k]
		im[k] = -im[n-k]
	}
	p.execute(re, im, 1, true)
	x := make([]float64, n)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = re[i] * inv
	}
	return x
}
