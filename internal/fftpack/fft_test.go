package fftpack

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k*j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// paperSizes are representative lengths from all three factor families.
var paperSizes = []int{2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20, 24, 30, 40, 48, 60, 64, 80, 96, 120, 128, 160, 192, 240, 256, 320, 384, 768, 1024, 1280}

func TestFactorize(t *testing.T) {
	for _, n := range paperSizes {
		fs, err := Factorize(n)
		if err != nil {
			t.Fatalf("Factorize(%d): %v", n, err)
		}
		prod := 1
		for _, f := range fs {
			prod *= f
			if f != 2 && f != 3 && f != 5 {
				t.Fatalf("Factorize(%d) returned factor %d", n, f)
			}
		}
		if prod != n {
			t.Fatalf("Factorize(%d) product = %d", n, prod)
		}
	}
	if _, err := Factorize(7); err == nil {
		t.Error("Factorize(7) succeeded, want error")
	}
	if _, err := Factorize(0); err == nil {
		t.Error("Factorize(0) succeeded, want error")
	}
	if !Supported(1280) || Supported(14) {
		t.Error("Supported misclassifies")
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 8, 12, 15, 16, 20, 24, 30, 48, 60, 64} {
		x := randComplex(n, int64(n))
		got := Forward(x)
		want := naiveDFT(x, false)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("Forward(n=%d) differs from naive DFT by %g", n, d)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	for _, n := range []int{4, 6, 10, 15, 20} {
		x := randComplex(n, int64(100+n))
		got := Inverse(x)
		want := naiveDFT(x, true)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("Inverse(n=%d) differs from naive DFT by %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range paperSizes {
		x := randComplex(n, int64(2*n))
		back := Inverse(Forward(x))
		for i := range back {
			back[i] /= complex(float64(n), 0)
		}
		if d := maxDiff(back, x); d > 1e-9*float64(n) {
			t.Errorf("round trip n=%d error %g", n, d)
		}
	}
}

func TestParseval(t *testing.T) {
	for _, n := range []int{16, 48, 80, 1280} {
		x := randComplex(n, int64(3*n))
		X := Forward(x)
		var timeE, freqE float64
		for i := range x {
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			freqE += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
			t.Errorf("Parseval violated at n=%d: %g vs %g", n, freqE/float64(n), timeE)
		}
	}
}

func TestRealForwardHermitian(t *testing.T) {
	n := 48
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	h := RealForward(x)
	if len(h) != n/2+1 {
		t.Fatalf("half-spectrum length %d, want %d", len(h), n/2+1)
	}
	// DC and Nyquist must be real for a real input.
	if math.Abs(imag(h[0])) > 1e-10 {
		t.Errorf("DC coefficient has imaginary part %g", imag(h[0]))
	}
	if math.Abs(imag(h[n/2])) > 1e-9 {
		t.Errorf("Nyquist coefficient has imaginary part %g", imag(h[n/2]))
	}
}

func TestRealRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 6, 10, 12, 16, 20, 24, 48, 96, 120, 1280} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := RealInverse(RealForward(x), n)
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("real round trip n=%d: x[%d] = %g, want %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestRealForwardKnownSignal(t *testing.T) {
	// cos(2*pi*3*t/n) has a single spike at k=3 with value n/2.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	h := RealForward(x)
	for k, c := range h {
		want := 0.0
		if k == 3 {
			want = float64(n) / 2
		}
		if math.Abs(real(c)-want) > 1e-9 || math.Abs(imag(c)) > 1e-9 {
			t.Errorf("coefficient %d = %v, want %g", k, c, want)
		}
	}
}

func TestStockhamMatchesRecursive(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 8, 12, 16, 20, 24, 30, 60, 64, 80, 96, 128} {
		for _, m := range []int{1, 3, 7} {
			rng := rand.New(rand.NewSource(int64(n*100 + m)))
			re := make([]float64, n*m)
			im := make([]float64, n*m)
			for i := range re {
				re[i] = rng.NormFloat64()
				im[i] = rng.NormFloat64()
			}
			// Reference: per-instance recursive transform.
			want := make([][]complex128, m)
			for j := 0; j < m; j++ {
				x := make([]complex128, n)
				for p := 0; p < n; p++ {
					x[p] = complex(re[p*m+j], im[p*m+j])
				}
				want[j] = Forward(x)
			}
			StockhamMulti(re, im, n, m, false)
			for j := 0; j < m; j++ {
				for p := 0; p < n; p++ {
					got := complex(re[p*m+j], im[p*m+j])
					if cmplx.Abs(got-want[j][p]) > 1e-9*float64(n) {
						t.Fatalf("n=%d m=%d instance %d pos %d: %v, want %v", n, m, j, p, got, want[j][p])
					}
				}
			}
		}
	}
}

func TestStockhamInverse(t *testing.T) {
	n, m := 48, 5
	rng := rand.New(rand.NewSource(4))
	re := make([]float64, n*m)
	im := make([]float64, n*m)
	orig := make([]float64, n*m)
	for i := range re {
		re[i] = rng.NormFloat64()
		orig[i] = re[i]
	}
	StockhamMulti(re, im, n, m, false)
	StockhamMulti(re, im, n, m, true)
	for i := range re {
		if math.Abs(re[i]/float64(n)-orig[i]) > 1e-9 {
			t.Fatalf("Stockham inverse round trip failed at %d", i)
		}
	}
}

func TestTransformStylesAgree(t *testing.T) {
	// The scalar (RFFT) and vector (VFFT) implementations must produce
	// identical spectra from their respective layouts.
	n, m := 96, 11
	rng := rand.New(rand.NewSource(77))
	rows := make([]float64, n*m) // a(N,M): row-major instances
	cols := make([]float64, n*m) // a(M,N): instance axis contiguous
	for j := 0; j < m; j++ {
		for p := 0; p < n; p++ {
			v := rng.NormFloat64()
			rows[j*n+p] = v
			cols[p*m+j] = v
		}
	}
	scalar := TransformRowsScalar(rows, n, m)
	hre, him := TransformColsVector(cols, n, m)
	for j := 0; j < m; j++ {
		for k := 0; k <= n/2; k++ {
			got := complex(hre[k*m+j], him[k*m+j])
			if cmplx.Abs(got-scalar[j][k]) > 1e-9*float64(n) {
				t.Fatalf("styles disagree at instance %d, k=%d: %v vs %v", j, k, got, scalar[j][k])
			}
		}
	}
}

func TestNominalFlops(t *testing.T) {
	if NominalFlops(1) != 0 {
		t.Error("NominalFlops(1) != 0")
	}
	if got, want := NominalFlops(1024), 2.5*1024*10; got != want {
		t.Errorf("NominalFlops(1024) = %v, want %v", got, want)
	}
}

func TestRealInversePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RealInverse with wrong spectrum length did not panic")
		}
	}()
	RealInverse(make([]complex128, 3), 16)
}
