package fftpack

import (
	"math"
	"sync"
	"testing"
)

// TestPlanMatchesDirect: the plan-table transforms must agree with the
// naive DFT to the same tolerance the legacy implementation met.
func TestPlanMatchesDirect(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 8, 12, 15, 30, 64, 120} {
		p := PlanFor(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(0.7*float64(i)) + 0.3*math.Cos(1.9*float64(i))
		}
		got := p.RealForward(x)
		want := naiveRealDFT(x)
		for k := range want {
			if d := cmplxAbs(got[k] - want[k]); d > 1e-9*float64(n) {
				t.Errorf("n=%d k=%d: plan %v, direct %v", n, k, got[k], want[k])
			}
		}
		back := p.RealInverse(got)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9*float64(n) {
				t.Errorf("n=%d roundtrip[%d]: %v != %v", n, i, back[i], x[i])
			}
		}
	}
}

func naiveRealDFT(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n/2+1)
	for k := range out {
		var s complex128
		for j, v := range x {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += complex(v*math.Cos(ang), v*math.Sin(ang))
		}
		out[k] = s
	}
	return out
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestPlanForCachesAndRejects: PlanFor memoizes by length and panics on
// lengths with unsupported prime factors.
func TestPlanForCachesAndRejects(t *testing.T) {
	if PlanFor(60) != PlanFor(60) {
		t.Error("PlanFor(60) returned distinct plans")
	}
	defer func() {
		if recover() == nil {
			t.Error("PlanFor(7) did not panic")
		}
	}()
	PlanFor(7)
}

// TestPlanConcurrent: one shared plan serving many goroutines must stay
// correct (run under -race to check the tables are read-only).
func TestPlanConcurrent(t *testing.T) {
	const n = 48
	p := PlanFor(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := p.RealForward(x)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				got := p.RealForward(x)
				for k := range want {
					if got[k] != want[k] {
						t.Errorf("concurrent transform diverged at k=%d", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestRealForwardAllocs: with the plan warm, RealForward should
// allocate only its returned half-spectrum.
func TestRealForwardAllocs(t *testing.T) {
	const n = 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	p := PlanFor(n)
	p.RealForward(x) // warm plan and scratch pool
	allocs := testing.AllocsPerRun(100, func() {
		p.RealForward(x)
	})
	// One alloc for the returned []complex128; allow one more for pool
	// slack under GC pressure.
	if allocs > 2 {
		t.Errorf("RealForward allocates %.1f objects/op, want <= 2", allocs)
	}
}

// TestStockhamMultiAllocs: the multi-instance vector transform should
// not allocate at all once warm (scratch comes from the pool).
func TestStockhamMultiAllocs(t *testing.T) {
	const n, m = 64, 8
	re := make([]float64, n*m)
	im := make([]float64, n*m)
	StockhamMulti(re, im, n, m, false) // warm
	allocs := testing.AllocsPerRun(100, func() {
		StockhamMulti(re, im, n, m, false)
	})
	if allocs > 1 {
		t.Errorf("StockhamMulti allocates %.1f objects/op, want <= 1", allocs)
	}
}
