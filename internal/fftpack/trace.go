package fftpack

import (
	"fmt"

	"sx4bench/internal/sx4/prog"
)

// stage describes one mixed-radix pass over the data.
type stage struct {
	radix int
	span  int // cumulative product of radices before this stage
}

func stages(n int) []stage {
	fs, err := Factorize(n)
	if err != nil {
		panic(err)
	}
	// Factorize returns the large radices first; FFTPACK applies them
	// in that order, so the expensive wide butterflies run at small
	// span (long vectors) and the deep short-vector stages are all
	// radix 2 — in every length family alike.
	out := make([]stage, len(fs))
	span := 1
	for i, r := range fs {
		out[i] = stage{radix: r, span: span}
		span *= r
	}
	return out
}

// butterflyFlops is the real-flop cost of one radix-r real-transform
// butterfly (producing r outputs): complex multiply-adds of the small
// DFT, halved for real data symmetry.
func butterflyFlops(r int) int {
	// The radix-3 and radix-5 passes execute markedly more work per
	// nominal flop than radix-2 (twiddle handling, register spills in
	// the wider butterflies), which is why the 3*2^n and 5*2^n curve
	// families sit below the 2^n family in Figures 6 and 7. The values
	// are calibration constants of the model.
	switch r {
	case 2:
		return 10 // 6 multiplies + 4 adds
	case 3:
		return 34
	case 5:
		return 96
	default:
		panic(fmt.Sprintf("fftpack: unsupported radix %d", r))
	}
}

func butterflyMulAdd(r int) (mul, add int) {
	switch r {
	case 2:
		return 6, 4
	case 3:
		return 20, 14
	case 5:
		return 56, 40
	default:
		panic(fmt.Sprintf("fftpack: unsupported radix %d", r))
	}
}

// RFFTTrace builds the operation trace of the "scalar"-style real FFT:
// m independent transforms of length n, instance loop outermost. The
// compiler vectorizes the butterfly loops along the transform axis, so
// vector lengths shrink as stages proceed and strides grow with the
// stage span — short, strided vectors.
func RFFTTrace(n, m int) prog.Program {
	if !Supported(n) {
		panic(fmt.Sprintf("fftpack: unsupported length %d", n))
	}
	p := prog.Program{Name: fmt.Sprintf("RFFT(N=%d,M=%d)", n, m)}
	var loops []prog.Loop
	for _, st := range stages(n) {
		// Per instance and stage: n/(2*radix) butterflies arranged as
		// `span` groups; the vectorized loop runs within a group.
		butterflies := n / (2 * st.radix)
		if butterflies < 1 {
			butterflies = 1
		}
		vl := butterflies / st.span
		if vl < 1 {
			vl = 1
		}
		trips := (butterflies + vl - 1) / vl
		mul, add := butterflyMulAdd(st.radix)
		words := 2 * st.radix // radix complex loads + stores, real-packed
		loops = append(loops, prog.Loop{
			Trips: int64(m) * int64(trips),
			Body: []prog.Op{
				{Class: prog.VLoad, VL: vl * words / 2, Stride: st.span},
				{Class: prog.VMul, VL: vl, FlopsPerElem: mul},
				{Class: prog.VAdd, VL: vl, FlopsPerElem: add},
				{Class: prog.VStore, VL: vl * words / 2, Stride: st.span},
			},
		})
	}
	p.Phases = []prog.Phase{{Name: "rfft", Parallel: true, Loops: loops}}
	return p
}

// VFFTTrace builds the trace of the "vector"-style real FFT: the same
// stage structure, but every butterfly statement is vectorized across
// the m instances (unit stride, vector length m) — long, contiguous
// vectors whose length is independent of the transform size.
func VFFTTrace(n, m int) prog.Program {
	if !Supported(n) {
		panic(fmt.Sprintf("fftpack: unsupported length %d", n))
	}
	p := prog.Program{Name: fmt.Sprintf("VFFT(N=%d,M=%d)", n, m)}
	var loops []prog.Loop
	for _, st := range stages(n) {
		butterflies := n / (2 * st.radix)
		if butterflies < 1 {
			butterflies = 1
		}
		mul, add := butterflyMulAdd(st.radix)
		words := 2 * st.radix
		loops = append(loops, prog.Loop{
			Trips: int64(butterflies),
			Body: []prog.Op{
				{Class: prog.VLoad, VL: m * words / 2, Stride: 1},
				{Class: prog.VMul, VL: m, FlopsPerElem: mul},
				{Class: prog.VAdd, VL: m, FlopsPerElem: add},
				{Class: prog.VStore, VL: m * words / 2, Stride: 1},
			},
		})
	}
	p.Phases = []prog.Phase{{Name: "vfft", Parallel: true, Loops: loops}}
	return p
}

// TraceFlops returns the executed flop count of a trace built by
// RFFTTrace or VFFTTrace (for cross-checks against Program.Flops).
func TraceFlops(n, m int) int64 {
	var total int64
	for _, st := range stages(n) {
		b := n / (2 * st.radix)
		if b < 1 {
			b = 1
		}
		total += int64(b) * int64(butterflyFlops(st.radix))
	}
	return total * int64(m)
}

// RFFTLengths returns the paper's RFFT transform-axis lengths: pure
// powers of two (n=1..10), 3*2^n (n=0..8), and 5*2^n (n=0..8).
func RFFTLengths() map[string][]int {
	out := map[string][]int{}
	for n := 1; n <= 10; n++ {
		out["2^n"] = append(out["2^n"], 1<<n)
	}
	for n := 0; n <= 8; n++ {
		out["3*2^n"] = append(out["3*2^n"], 3<<n)
	}
	for n := 0; n <= 8; n++ {
		out["5*2^n"] = append(out["5*2^n"], 5<<n)
	}
	return out
}

// VFFTLengths returns the paper's VFFT transform-axis lengths.
func VFFTLengths() map[string][]int {
	out := map[string][]int{}
	for _, n := range []int{2, 4, 6, 7, 8, 9} {
		out["2^n"] = append(out["2^n"], 1<<n)
	}
	for _, n := range []int{0, 2, 4, 6, 8} {
		out["3*2^n"] = append(out["3*2^n"], 3<<n)
	}
	for _, n := range []int{0, 2, 4, 6, 8} {
		out["5*2^n"] = append(out["5*2^n"], 5<<n)
	}
	return out
}

// RFFTInstances returns the instance count for an RFFT length: chosen
// to keep the total element count near 10^6, clamped to the paper's
// range of 500,000 down to 800.
func RFFTInstances(n int) int {
	m := 1_000_000 / n
	if m > 500_000 {
		m = 500_000
	}
	if m < 800 {
		m = 800
	}
	return m
}

// VFFTInstanceCounts is the paper's VFFT instance-axis sweep.
var VFFTInstanceCounts = []int{1, 2, 5, 10, 20, 50, 100, 200, 500}

// NominalMFLOPS converts a measured time for m transforms of length n
// into the conventional FFT MFLOPS figure.
func NominalMFLOPS(n, m int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return NominalFlops(n) * float64(m) / seconds / 1e6
}

// ExecutedEfficiency returns executed/nominal flops, the mixed-radix
// overhead factor (1 for pure powers of two, >1 otherwise).
func ExecutedEfficiency(n int) float64 {
	if n < 2 {
		return 1
	}
	return float64(TraceFlops(n, 1)) / NominalFlops(n)
}
