package fftpack

import (
	"testing"

	"sx4bench/internal/sx4"
)

func TestTraceFlopsMatchProgram(t *testing.T) {
	for _, n := range []int{4, 16, 48, 80, 256, 1280} {
		for _, m := range []int{1, 10} {
			r := RFFTTrace(n, m)
			if got, want := r.Flops(), TraceFlops(n, m); got != want {
				t.Errorf("RFFTTrace(%d,%d).Flops = %d, want %d", n, m, got, want)
			}
			v := VFFTTrace(n, m)
			if got, want := v.Flops(), TraceFlops(n, m); got != want {
				t.Errorf("VFFTTrace(%d,%d).Flops = %d, want %d", n, m, got, want)
			}
		}
	}
}

func TestExecutedEfficiency(t *testing.T) {
	// Pure powers of two execute close to the nominal count; mixed
	// radices execute more work per nominal flop.
	p2 := ExecutedEfficiency(1024)
	if p2 < 0.9 || p2 > 1.1 {
		t.Errorf("2^n efficiency = %v, want ~1", p2)
	}
	if f3 := ExecutedEfficiency(768); f3 <= p2 {
		t.Errorf("3*2^n efficiency %v should exceed 2^n %v", f3, p2)
	}
}

func TestVFFTMuchFasterThanRFFT(t *testing.T) {
	// The central claim of Figures 6-7: vector-style FFT is about an
	// order of magnitude faster than scalar-style on the SX-4.
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	n := 256
	rm := RFFTInstances(n) // ~3900 instances
	rr := m.Run(RFFTTrace(n, rm), sx4.RunOpts{Procs: 1})
	rfftMF := NominalMFLOPS(n, rm, rr.Seconds)

	vm := 500
	vr := m.Run(VFFTTrace(n, vm), sx4.RunOpts{Procs: 1})
	vfftMF := NominalMFLOPS(n, vm, vr.Seconds)

	ratio := vfftMF / rfftMF
	if ratio < 5 || ratio > 30 {
		t.Errorf("VFFT/RFFT = %.0f/%.0f MFLOPS, ratio %.1f, want within [5,30] (paper: ~10x)",
			vfftMF, rfftMF, ratio)
	}
	// VFFT with long vectors should exceed 500 MFLOPS; RFFT should sit
	// an order of magnitude below peak.
	if vfftMF < 500 || vfftMF > 2000 {
		t.Errorf("VFFT = %.0f MFLOPS, want within [500, 2000]", vfftMF)
	}
	if rfftMF > 300 {
		t.Errorf("RFFT = %.0f MFLOPS, want < 300", rfftMF)
	}
}

func TestRFFTPerformanceGrowsWithN(t *testing.T) {
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	prev := 0.0
	for _, n := range []int{8, 32, 128, 512, 1024} {
		inst := RFFTInstances(n)
		r := m.Run(RFFTTrace(n, inst), sx4.RunOpts{Procs: 1})
		mf := NominalMFLOPS(n, inst, r.Seconds)
		if mf < prev*0.8 {
			t.Errorf("RFFT MFLOPS dropped sharply at n=%d: %.1f < %.1f", n, mf, prev)
		}
		prev = mf
	}
}

func TestVFFTPerformanceGrowsWithM(t *testing.T) {
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	n := 256
	prev := 0.0
	for _, inst := range VFFTInstanceCounts {
		r := m.Run(VFFTTrace(n, inst), sx4.RunOpts{Procs: 1})
		mf := NominalMFLOPS(n, inst, r.Seconds)
		if mf <= prev {
			t.Errorf("VFFT MFLOPS not increasing at M=%d: %.1f <= %.1f", inst, mf, prev)
		}
		prev = mf
	}
}

func TestMixedRadixSlowerPerNominalFlop(t *testing.T) {
	// At matched sizes the 3*2^n and 5*2^n families report lower
	// nominal MFLOPS than pure powers of two (the separate curve
	// families in Figures 6 and 7).
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	mf := func(n int) float64 {
		r := m.Run(VFFTTrace(n, 200), sx4.RunOpts{Procs: 1})
		return NominalMFLOPS(n, 200, r.Seconds)
	}
	pow2 := mf(256)
	f3 := mf(192) // 3*2^6
	f5 := mf(320) // 5*2^6
	if f3 >= pow2 {
		t.Errorf("3*2^n family (%.0f) should be below 2^n (%.0f)", f3, pow2)
	}
	if f5 >= pow2 {
		t.Errorf("5*2^n family (%.0f) should be below 2^n (%.0f)", f5, pow2)
	}
}

func TestRFFTFamilySeparation(t *testing.T) {
	// In the RFFT figure the mixed-radix families track the 2^n curve
	// from slightly below: the radix-3 family pays its extra executed
	// work, and no family beats 2^n by more than measurement slack.
	m := sx4.New(sx4.BenchmarkedSingleCPU())
	mf := func(n int) float64 {
		inst := RFFTInstances(n)
		r := m.Run(RFFTTrace(n, inst), sx4.RunOpts{Procs: 1})
		return NominalMFLOPS(n, inst, r.Seconds)
	}
	p1024 := mf(1024)
	if f3 := mf(768); f3 >= mf(512)+0.9*(p1024-mf(512)) {
		t.Errorf("3*2^n at 768 (%.1f) should sit below the 2^n trend (512: %.1f, 1024: %.1f)",
			f3, mf(512), p1024)
	}
	if f5 := mf(1280); f5 > 1.1*p1024 {
		t.Errorf("5*2^n at 1280 (%.1f) runs ahead of 2^n at 1024 (%.1f)", f5, p1024)
	}
}

func TestPaperLengthFamilies(t *testing.T) {
	r := RFFTLengths()
	if got := r["2^n"]; len(got) != 10 || got[0] != 2 || got[9] != 1024 {
		t.Errorf("RFFT 2^n lengths = %v", got)
	}
	if got := r["3*2^n"]; got[0] != 3 || got[len(got)-1] != 768 {
		t.Errorf("RFFT 3*2^n lengths = %v", got)
	}
	if got := r["5*2^n"]; got[0] != 5 || got[len(got)-1] != 1280 {
		t.Errorf("RFFT 5*2^n lengths = %v", got)
	}
	v := VFFTLengths()
	if got := v["2^n"]; got[0] != 4 || got[len(got)-1] != 512 {
		t.Errorf("VFFT 2^n lengths = %v", got)
	}
	for fam, ns := range v {
		for _, n := range ns {
			if !Supported(n) {
				t.Errorf("family %s has unsupported length %d", fam, n)
			}
		}
	}
}

func TestRFFTInstancesRange(t *testing.T) {
	if got := RFFTInstances(2); got != 500_000 {
		t.Errorf("RFFTInstances(2) = %d, want 500000", got)
	}
	if got := RFFTInstances(1280); got != 800 {
		t.Errorf("RFFTInstances(1280) = %d, want 800", got)
	}
	if got := RFFTInstances(1000); got != 1000 {
		t.Errorf("RFFTInstances(1000) = %d, want 1000", got)
	}
}

func TestTracePanicsOnUnsupported(t *testing.T) {
	for _, f := range []func(){
		func() { RFFTTrace(7, 1) },
		func() { VFFTTrace(14, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unsupported length did not panic")
				}
			}()
			f()
		}()
	}
}
