package fftpack

import (
	"math"
)

// StockhamMulti computes the forward complex DFT of m independent
// sequences of length n simultaneously, in the "vector" (VFFT) loop
// order: the innermost loops run over the instance axis, so every
// arithmetic statement is a vector operation of length m.
//
// Data layout is a(M,N): element (instance j, position p) lives at
// index p*m+j, i.e. the instance axis is contiguous. The transform is
// an autosorting Stockham formulation, so no bit-reversal pass is
// needed. re and im are overwritten with the transform.
func StockhamMulti(re, im []float64, n, m int, inverse bool) {
	if len(re) != n*m || len(im) != n*m {
		panic("fftpack: StockhamMulti shape mismatch")
	}
	if n == 1 {
		return
	}
	fs, err := Factorize(n)
	if err != nil {
		panic(err)
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Ping-pong buffers.
	are, aim := re, im
	bre := make([]float64, n*m)
	bim := make([]float64, n*m)

	l := 1   // length of already-combined sub-transforms
	rem := n // elements not yet combined: rem = n / l
	for _, r := range fs {
		rem /= r
		lr := l * r
		// Combine r sub-transforms of length l into transforms of
		// length l*r. Input block (q, k, j): index ((q*rem+k)*l + j);
		// output block (k, p, j): index ((k*r+p)*l + j).
		for k := 0; k < rem; k++ {
			for j := 0; j < l; j++ {
				for p := 0; p < r; p++ {
					outIdx := ((k*r+p)*l + j) * m
					// zero the accumulator row
					for t := 0; t < m; t++ { // vector axis
						bre[outIdx+t] = 0
						bim[outIdx+t] = 0
					}
					for q := 0; q < r; q++ {
						ang := sign * 2 * math.Pi * float64(q*(j+p*l)) / float64(lr)
						wr, wi := math.Cos(ang), math.Sin(ang)
						inIdx := ((q*rem+k)*l + j) * m
						for t := 0; t < m; t++ { // vector axis
							xr, xi := are[inIdx+t], aim[inIdx+t]
							bre[outIdx+t] += xr*wr - xi*wi
							bim[outIdx+t] += xr*wi + xi*wr
						}
					}
				}
			}
		}
		are, bre = bre, are
		aim, bim = bim, aim
		l = lr
	}
	if &are[0] != &re[0] {
		copy(re, are)
		copy(im, aim)
	}
}

// TransformColsVector computes the real forward transform of m
// instances stored in the a(M,N) layout (instance axis contiguous,
// index p*m+j), returning the Hermitian half-spectra as separate real
// and imaginary planes of shape (n/2+1) x m in the same layout.
func TransformColsVector(data []float64, n, m int) (hre, him []float64) {
	if len(data) != n*m {
		panic("fftpack: data shape mismatch")
	}
	re := make([]float64, n*m)
	im := make([]float64, n*m)
	copy(re, data)
	StockhamMulti(re, im, n, m, false)
	keep := n/2 + 1
	hre = re[:keep*m]
	him = im[:keep*m]
	return hre, him
}
