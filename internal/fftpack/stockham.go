package fftpack

// StockhamMulti computes the forward complex DFT of m independent
// sequences of length n simultaneously, in the "vector" (VFFT) loop
// order: the innermost loops run over the instance axis, so every
// arithmetic statement is a vector operation of length m.
//
// Data layout is a(M,N): element (instance j, position p) lives at
// index p*m+j, i.e. the instance axis is contiguous. The transform is
// an autosorting Stockham formulation, so no bit-reversal pass is
// needed. re and im are overwritten with the transform.
//
// The twiddle tables and scratch buffers come from the shared plan
// cache, so repeated transforms of one length neither re-factorize nor
// re-allocate.
func StockhamMulti(re, im []float64, n, m int, inverse bool) {
	if len(re) != n*m || len(im) != n*m {
		panic("fftpack: StockhamMulti shape mismatch")
	}
	if n == 1 {
		return
	}
	PlanFor(n).execute(re, im, m, inverse)
}

// TransformColsVector computes the real forward transform of m
// instances stored in the a(M,N) layout (instance axis contiguous,
// index p*m+j), returning the Hermitian half-spectra as separate real
// and imaginary planes of shape (n/2+1) x m in the same layout.
func TransformColsVector(data []float64, n, m int) (hre, him []float64) {
	if len(data) != n*m {
		panic("fftpack: data shape mismatch")
	}
	re := make([]float64, n*m)
	im := make([]float64, n*m)
	copy(re, data)
	StockhamMulti(re, im, n, m, false)
	keep := n/2 + 1
	hre = re[:keep*m]
	him = im[:keep*m]
	return hre, him
}
