// Package fftpack implements the mixed-radix (factors 2, 3, 5) fast
// Fourier transforms behind the NCAR RFFT and VFFT benchmarks, modeled
// on P. N. Swarztrauber's FFTPACK.
//
// Two genuinely different loop orders are provided, mirroring the
// paper's coding-style comparison:
//
//   - the "scalar" style (RFFT): instances in the outer loop, the
//     transform axis innermost — the order suited to cache-based
//     processors;
//   - the "vector" style (VFFT): an iterative Stockham transform whose
//     innermost loops run over the instance axis — the order suited to
//     vector processors.
//
// Both compute identical results (the tests cross-check them and both
// against a naive DFT). MFLOPS reporting follows the standard nominal
// count of 2.5*N*log2(N) real flops per real transform.
package fftpack

import (
	"fmt"
	"math"
)

// Factorize returns the radix decomposition of n into factors of 5, 3,
// and 2 (largest first), or an error if other prime factors remain.
func Factorize(n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("fftpack: non-positive length %d", n)
	}
	var fs []int
	for _, r := range []int{5, 3, 2} {
		for n%r == 0 {
			fs = append(fs, r)
			n /= r
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("fftpack: length has unsupported factor %d", n)
	}
	return fs, nil
}

// Supported reports whether n factors into 2s, 3s and 5s.
func Supported(n int) bool {
	_, err := Factorize(n)
	return err == nil
}

// cfft computes the complex DFT of x through the plan cache. It
// returns a new slice and leaves x unchanged.
func cfft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 1 {
		out[0] = x[0]
		return out
	}
	p := PlanFor(n)
	sb := getScratch(n)
	defer putScratch(sb)
	re, im := sb.a, sb.b
	for i, v := range x {
		re[i], im[i] = real(v), imag(v)
	}
	p.execute(re, im, 1, inverse)
	for i := range out {
		out[i] = complex(re[i], im[i])
	}
	return out
}

// Forward computes the forward complex DFT of x.
func Forward(x []complex128) []complex128 { return cfft(x, false) }

// Inverse computes the unnormalized inverse complex DFT of x; dividing
// by len(x) recovers the original sequence.
func Inverse(x []complex128) []complex128 { return cfft(x, true) }

// RealForward computes the forward transform of a real sequence,
// returning the n/2+1 non-redundant (Hermitian) coefficients.
func RealForward(x []float64) []complex128 {
	return PlanFor(len(x)).RealForward(x)
}

// RealInverse reconstructs the real sequence of length n from its
// Hermitian half-spectrum, including the 1/n normalization.
func RealInverse(h []complex128, n int) []float64 {
	return PlanFor(n).RealInverse(h)
}

// NominalFlops returns the conventional flop count credited to one real
// transform of length n: 2.5 n log2 n.
func NominalFlops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 2.5 * float64(n) * math.Log2(float64(n))
}

// TransformRowsScalar applies RealForward to each of m instances in the
// "scalar" (RFFT) loop order: instance loop outermost, transform axis
// innermost. data holds m rows of n contiguous values, a(N,M) in the
// paper's Fortran notation.
func TransformRowsScalar(data []float64, n, m int) [][]complex128 {
	if len(data) != n*m {
		panic("fftpack: data shape mismatch")
	}
	out := make([][]complex128, m)
	for j := 0; j < m; j++ { // instance loop (outer)
		out[j] = RealForward(data[j*n : (j+1)*n])
	}
	return out
}
