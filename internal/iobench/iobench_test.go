package iobench

import (
	"testing"

	"sx4bench/internal/ccm2"
	"sx4bench/internal/sx4/iop"
)

func TestHistoryWriteScalesWithResolution(t *testing.T) {
	d := iop.NewDisk()
	sweep := IOSweep(d)
	if len(sweep) != len(ccm2.Resolutions) {
		t.Fatalf("sweep covers %d resolutions", len(sweep))
	}
	prev := 0.0
	for _, h := range sweep {
		if h.Seconds <= prev {
			t.Errorf("%s write (%v s) should exceed the coarser resolution (%v s)",
				h.Resolution.Name, h.Seconds, prev)
		}
		prev = h.Seconds
		if h.MBps < 10 || h.MBps > 60 {
			t.Errorf("%s effective rate = %.1f MB/s, want within [10, 60] for a 60 MB/s array",
				h.Resolution.Name, h.MBps)
		}
		if h.Records != h.Resolution.NLat {
			t.Errorf("%s has %d records, want one per latitude (%d)",
				h.Resolution.Name, h.Records, h.Resolution.NLat)
		}
	}
}

func TestConcurrentWritersReleaseCPUsFaster(t *testing.T) {
	sub := iop.New()
	res, _ := ccm2.ResolutionByName("T63L18")
	prev := ConcurrentIOResult{}
	for i, writers := range []int{1, 2, 4, 8, 16, 32} {
		r := ConcurrentHistoryWrite(sub, res, writers)
		if i > 0 {
			if r.CPUSeconds > prev.CPUSeconds*1.0001 {
				t.Errorf("%d writers: CPU time %v grew from %v", writers, r.CPUSeconds, prev.CPUSeconds)
			}
			// The disk is the shared sink: its time does not improve.
			if r.DiskSeconds < prev.DiskSeconds*0.9999 {
				t.Errorf("%d writers: disk time %v improved from %v (one array!)",
					writers, r.DiskSeconds, prev.DiskSeconds)
			}
		}
		prev = r
	}
	// CPUs detach long before the disk finishes: the IOPs are
	// asynchronous engines.
	r32 := ConcurrentHistoryWrite(sub, res, 32)
	if r32.CPUSeconds >= r32.DiskSeconds {
		t.Errorf("CPU-blocked time %v should be far below disk time %v", r32.CPUSeconds, r32.DiskSeconds)
	}
}

func TestConcurrentWritersClamped(t *testing.T) {
	sub := iop.New()
	res, _ := ccm2.ResolutionByName("T42L18")
	a := ConcurrentHistoryWrite(sub, res, 0)
	if a.Writers != 1 {
		t.Errorf("writers clamped to %d, want 1", a.Writers)
	}
	b := ConcurrentHistoryWrite(sub, res, 1000)
	if b.Writers != res.NLat {
		t.Errorf("writers clamped to %d, want %d (one per record)", b.Writers, res.NLat)
	}
}

func TestHIPPISweepShape(t *testing.T) {
	s := iop.New()
	pts := HIPPISweep(s, 256<<20)
	if len(pts) != 12 {
		t.Fatalf("sweep has %d points, want 12", len(pts))
	}
	for _, p := range pts {
		if p.AggregateMBps <= 0 || p.PerTransferMBps <= 0 {
			t.Errorf("zero throughput at %+v", p)
		}
		if p.AggregateMBps > 2*95*1.01 {
			t.Errorf("aggregate %v exceeds two channels", p.AggregateMBps)
		}
	}
	// Largest packets, single transfer: near channel rate.
	var single64k float64
	for _, p := range pts {
		if p.PacketBytes == 64<<10 && p.Concurrent == 1 {
			single64k = p.PerTransferMBps
		}
	}
	if single64k < 60 || single64k > 95 {
		t.Errorf("64KB single-transfer rate = %.1f MB/s, want most of the 95 MB/s link", single64k)
	}
}

func TestHIPPITestSeconds(t *testing.T) {
	s := iop.New()
	secs := HIPPITestSeconds(s, 10<<30)
	// 10 GiB at ~95 MB/s is around two minutes.
	if secs < 90 || secs > 200 {
		t.Errorf("HIPPI component = %.0f s, want within [90, 200]", secs)
	}
}

func TestNetworkScript(t *testing.T) {
	rs := RunNetwork(NewFDDI(), StandardScript())
	if len(rs) != len(StandardScript()) {
		t.Fatal("missing results")
	}
	for _, r := range rs {
		if r.Seconds <= 0 {
			t.Errorf("%s took %v", r.Name, r.Seconds)
		}
	}
	// Data transfers report bandwidth, non-data commands don't.
	byName := map[string]NetResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	if byName["ping"].MBps != 0 {
		t.Error("ping reported a bandwidth")
	}
	big := byName["rcp-256MB"]
	if big.MBps < 5 || big.MBps > 12.5 {
		t.Errorf("FDDI bulk rate = %.1f MB/s, want most of a 100 Mbit ring", big.MBps)
	}
	// Bigger transfers amortize setup better.
	if byName["ftp-put-64MB"].MBps <= byName["ftp-put-1MB"].MBps {
		t.Error("large ftp should beat small ftp in MB/s")
	}
}
